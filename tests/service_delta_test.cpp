// SsspService::apply_delta — the service layer of the live-delta
// pipeline: child publication with lineage, warm repair of cached trees
// on the rebuilder, typed bounded-stale serving from the parent during
// the repair window, typed cold-solve fallback under injected repair
// faults, and parent retirement (with cache invalidation along lineage)
// once every repair settles.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "oracle_util.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

ServiceConfig small_service(uint32_t engines = 1) {
  ServiceConfig cfg;
  cfg.num_engines = engines;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;
  return cfg;
}

IntGraph test_graph(uint64_t seed = 1) {
  return make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 200}, seed);
}

/// Polls until every scheduled repair settled (or the budget elapses).
bool wait_repairs_settled(SsspService<uint32_t>& svc, int budget_ms = 10000) {
  for (int waited = 0; waited < budget_ms; waited += 5) {
    if (svc.report().repairs_pending == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return svc.report().repairs_pending == 0;
}

TEST(ServiceDelta, RepairsCachedTreesAndRetiresParent) {
  const auto g = test_graph();
  SsspService<uint32_t> svc(small_service());
  const uint64_t parent_fp = svc.set_graph(g);
  const std::vector<VertexId> sources = {0, 3, 5, 9};
  for (VertexId s : sources) svc.query(s);  // populate the parent cache

  const auto delta = oracle::make_test_delta(g, 12, 3, 2);
  const auto out = svc.apply_delta(0, delta);  // 0 routes to the default
  EXPECT_EQ(out.parent_fp, parent_fp);
  EXPECT_NE(out.child_fp, parent_fp);
  EXPECT_FALSE(out.unchanged);
  EXPECT_TRUE(out.was_default);
  EXPECT_EQ(out.repairs_scheduled, sources.size());
  EXPECT_GT(out.stats.total(), 0u);

  ASSERT_TRUE(wait_repairs_settled(svc));
  const auto rep = svc.report();
  EXPECT_EQ(rep.deltas_applied, 1u);
  EXPECT_EQ(rep.repairs_scheduled, sources.size());
  EXPECT_EQ(rep.repairs_ok, sources.size());
  EXPECT_EQ(rep.repair_fallbacks, 0u);

  // The parent generation retired once the last repair settled.
  const auto residents = svc.resident_graphs();
  EXPECT_EQ(residents.size(), 1u);
  EXPECT_EQ(residents[0], out.child_fp);
  QueryOptions target_parent;
  target_parent.graph_fp = parent_fp;
  EXPECT_EQ(svc.submit(0, target_parent).get().status,
            QueryStatus::kUnknownGraph);

  // Every repaired tree is served fresh from cache under the CHILD
  // fingerprint and matches a cold Dijkstra solve on the child graph.
  const auto child = apply_delta(g, delta).graph;
  for (VertexId s : sources) {
    const auto q = svc.query(s);  // fp-less: default moved to the child
    EXPECT_TRUE(q.cache_hit) << "repair result was not cached for " << s;
    EXPECT_FALSE(q.stale);
    EXPECT_EQ(q.graph_fp, out.child_fp);
    EXPECT_EQ(oracle::distance_defect(child, *q.result, s), "");
  }

  // Per-tenant accounting landed on the child generation's row.
  bool found = false;
  for (const auto& ts : svc.report().tenants) {
    if (ts.graph_fp != out.child_fp) continue;
    found = true;
    EXPECT_EQ(ts.repairs_ok, sources.size());
    EXPECT_EQ(ts.repairs_pending, 0u);
    EXPECT_TRUE(ts.is_default);
  }
  EXPECT_TRUE(found);
}

TEST(ServiceDelta, UnchangedDeltaIsANoOp) {
  const auto g = test_graph(5);
  SsspService<uint32_t> svc(small_service());
  const uint64_t parent_fp = svc.set_graph(g);
  svc.query(0);

  VertexId u = 0;
  while (g.edge_begin(u) == g.edge_end(u)) ++u;
  GraphDelta<uint32_t> same;
  same.changes.push_back({u, g.edge_target(g.edge_begin(u)),
                          g.edge_weight(g.edge_begin(u))});
  const auto out = svc.apply_delta(0, same);
  EXPECT_TRUE(out.unchanged);
  EXPECT_EQ(out.child_fp, parent_fp);
  EXPECT_EQ(out.repairs_scheduled, 0u);
  EXPECT_EQ(svc.report().deltas_applied, 0u);
  EXPECT_EQ(svc.resident_graphs().size(), 1u);
  EXPECT_EQ(svc.query(0).graph_fp, parent_fp);
}

TEST(ServiceDelta, NoCachedTreesMeansImmediateHandover) {
  const auto g = test_graph(7);
  SsspService<uint32_t> svc(small_service());
  const uint64_t parent_fp = svc.set_graph(g);
  // No queries — nothing cached, nothing to repair.
  const auto delta = oracle::make_test_delta(g, 6, 1, 3);
  const auto out = svc.apply_delta(parent_fp, delta);
  EXPECT_EQ(out.repairs_scheduled, 0u);
  const auto residents = svc.resident_graphs();
  ASSERT_EQ(residents.size(), 1u);
  EXPECT_EQ(residents[0], out.child_fp);

  const auto child = apply_delta(g, delta).graph;
  const auto q = svc.query(4);
  EXPECT_FALSE(q.stale);
  EXPECT_EQ(q.graph_fp, out.child_fp);
  EXPECT_EQ(oracle::distance_defect(child, *q.result, VertexId{4}), "");
}

TEST(ServiceDelta, InjectedRepairFaultFallsBackTypedToColdSolve) {
  const auto g = test_graph(9);
  SsspService<uint32_t> svc(small_service());
  svc.set_graph(g);
  const std::vector<VertexId> sources = {1, 8};
  for (VertexId s : sources) svc.query(s);

  fault::FaultPlan plan(3);
  plan.set(fault::Site::kDeltaRepair, {1.0, ~0ull, 0});
  const auto delta = oracle::make_test_delta(g, 8, 2, 11);
  DeltaOutcome out;
  {
    fault::FaultScope scope(plan);
    out = svc.apply_delta(0, delta);
    EXPECT_EQ(out.repairs_scheduled, sources.size());
    ASSERT_TRUE(wait_repairs_settled(svc));
  }
  EXPECT_GT(plan.fires(fault::Site::kDeltaRepair), 0u);

  // Every repair failed typed and was replaced by a cold child solve —
  // counted, flight-recorded, and still correct.
  const auto rep = svc.report();
  EXPECT_EQ(rep.repairs_ok, 0u);
  EXPECT_EQ(rep.repair_fallbacks, sources.size());
  uint64_t fallback_events = 0;
  for (const auto& e : svc.flight_dump())
    if (FlightKind(e.ev.kind) == FlightKind::kRepairFallback)
      ++fallback_events;
  EXPECT_EQ(fallback_events, sources.size());

  const auto child = apply_delta(g, delta).graph;
  for (VertexId s : sources) {
    const auto q = svc.query(s);
    EXPECT_TRUE(q.cache_hit) << "fallback result was not cached for " << s;
    EXPECT_FALSE(q.stale);
    EXPECT_EQ(q.graph_fp, out.child_fp);
    EXPECT_EQ(oracle::distance_defect(child, *q.result, s), "");
  }
}

TEST(ServiceDelta, ParentServesTypedStaleDuringRepairWindow) {
  const auto g = test_graph(13);
  auto cfg = small_service();
  cfg.delta.stale_serve_ms = 10000.0;  // a window the test cannot outrun
  cfg.delta.repair_deadline_ms = 30000.0;  // the stalls below must not expire it
  SsspService<uint32_t> svc(cfg);
  const uint64_t parent_fp = svc.set_graph(g);
  svc.query(0);  // the parent tree the window will serve

  // Slow the repair solve down (every manager sweep stalls 5ms) so the
  // stale window is reliably open when the probe query lands.
  fault::FaultPlan plan(1);
  plan.set(fault::Site::kManagerScanStall, {1.0, ~0ull, 5000});
  const auto delta = oracle::make_test_delta(g, 10, 2, 17);
  DeltaOutcome out;
  {
    fault::FaultScope scope(plan);
    out = svc.apply_delta(0, delta);
    ASSERT_EQ(out.repairs_scheduled, 1u);

    const auto stale = svc.query(0);  // miss on the child, repair in flight
    EXPECT_TRUE(stale.stale);
    EXPECT_TRUE(stale.cache_hit);
    EXPECT_EQ(stale.graph_fp, parent_fp);
    EXPECT_EQ(oracle::distance_defect(g, *stale.result, VertexId{0}), "")
        << "stale answer must match the graph version it claims (parent)";

    ASSERT_TRUE(wait_repairs_settled(svc));
  }

  const auto rep = svc.report();
  EXPECT_GE(rep.delta_stale_hits, 1u);
  EXPECT_EQ(rep.repairs_ok, 1u);

  // Window closed: the same query now serves the repaired child tree.
  const auto child = apply_delta(g, delta).graph;
  const auto fresh = svc.query(0);
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.graph_fp, out.child_fp);
  EXPECT_EQ(oracle::distance_defect(child, *fresh.result, VertexId{0}), "");
}

TEST(ServiceDelta, ChainedDeltasConvergeToTheFinalChild) {
  const auto g = test_graph(21);
  SsspService<uint32_t> svc(small_service());
  svc.set_graph(g);
  svc.query(0);

  const auto d1 = oracle::make_test_delta(g, 6, 1, 31);
  const auto c1 = apply_delta(g, d1).graph;
  const auto d2 = oracle::make_test_delta(c1, 6, 1, 32);
  const auto c2 = apply_delta(c1, d2).graph;

  const auto o1 = svc.apply_delta(0, d1);
  const auto o2 = svc.apply_delta(0, d2);  // default already moved to c1
  EXPECT_EQ(o2.parent_fp, o1.child_fp);
  ASSERT_TRUE(wait_repairs_settled(svc));

  // Whatever the repair/retire interleaving, the fleet converges: only
  // the final child resident, and its answers match its own oracle.
  for (int waited = 0; waited < 5000 && svc.resident_graphs().size() > 1;
       waited += 5)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto residents = svc.resident_graphs();
  ASSERT_EQ(residents.size(), 1u);
  EXPECT_EQ(residents[0], o2.child_fp);
  const auto q = svc.query(0);
  EXPECT_EQ(q.graph_fp, o2.child_fp);
  EXPECT_EQ(oracle::distance_defect(c2, *q.result, VertexId{0}), "");
}

TEST(ServiceDelta, MalformedAndMisroutedDeltasThrowTyped) {
  const auto g = test_graph(23);
  SsspService<uint32_t> svc(small_service());
  GraphDelta<uint32_t> d;
  d.changes.push_back({0, 1, 5});
  // No graph set yet.
  EXPECT_THROW(svc.apply_delta(0, d), Error);
  svc.set_graph(g);
  // Unknown parent fingerprint.
  EXPECT_THROW(svc.apply_delta(0xdeadbeefull, d), CatalogError);
  // Malformed delta (self loop) — rejected before anything is published.
  GraphDelta<uint32_t> bad;
  bad.changes.push_back({2, 2, 1});
  EXPECT_THROW(svc.apply_delta(0, bad), Error);
  EXPECT_EQ(svc.resident_graphs().size(), 1u);
  // The service still answers.
  const auto q = svc.query(0);
  EXPECT_EQ(oracle::distance_defect(g, *q.result, VertexId{0}), "");
}

}  // namespace
}  // namespace adds
