// A* point-to-point tests: exactness vs Dijkstra, admissible-heuristic
// work savings, path validity, and degenerate cases.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sssp/astar.hpp"
#include "sssp/dijkstra.hpp"

namespace adds {
namespace {

TEST(AStar, ExactOnSmallGraph) {
  GraphBuilder<uint32_t> b{4};
  b.add_undirected_edge(0, 1, 1);
  b.add_undirected_edge(1, 2, 1);
  b.add_undirected_edge(0, 3, 1);
  b.add_undirected_edge(3, 2, 5);
  const auto g = b.build();
  const auto r = point_to_point_dijkstra(g, 0, 2);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.distance, 2u);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(r.path[1], 1u);
}

TEST(AStar, UnreachableTarget) {
  GraphBuilder<uint32_t> b{3};
  b.add_undirected_edge(0, 1, 1);
  const auto g = b.build();
  const auto r = point_to_point_dijkstra(g, 0, 2);
  EXPECT_FALSE(r.reachable);
  EXPECT_TRUE(r.path.empty());
}

TEST(AStar, SourceEqualsTarget) {
  GraphBuilder<uint32_t> b{2};
  b.add_undirected_edge(0, 1, 3);
  const auto g = b.build();
  const auto r = point_to_point_dijkstra(g, 1, 1);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.distance, 0u);
  ASSERT_EQ(r.path.size(), 1u);
}

class AStarGrid : public testing::TestWithParam<uint64_t> {};

TEST_P(AStarGrid, MatchesDijkstraAndSavesWork) {
  const uint64_t width = 40;
  const auto g = make_grid_road<uint32_t>(
      width, width, {WeightDist::kUniform, 100}, GetParam());
  // Find the true minimum edge weight for an admissible heuristic.
  uint32_t min_w = ~0u;
  for (const auto w : g.weights()) min_w = std::min(min_w, w);

  const VertexId source = 0;
  // Route to the grid centre: a corner target has zero manhattan detour
  // everywhere, which makes any admissible grid heuristic non-pruning.
  const VertexId target = VertexId((width / 2) * width + width / 2);
  const auto full = dijkstra(g, source);

  const GridManhattanHeuristic h(width, target, min_w);
  const auto goal_directed = astar(g, source, target, h);
  const auto undirected = point_to_point_dijkstra(g, source, target);

  ASSERT_TRUE(goal_directed.reachable);
  EXPECT_EQ(goal_directed.distance, full.dist[target]);
  EXPECT_EQ(undirected.distance, full.dist[target]);

  // The path must be a real path with the right total weight.
  uint64_t total = 0;
  for (size_t i = 0; i + 1 < goal_directed.path.size(); ++i) {
    bool found = false;
    for (EdgeIndex e = g.edge_begin(goal_directed.path[i]);
         e < g.edge_end(goal_directed.path[i]); ++e) {
      if (g.edge_target(e) == goal_directed.path[i + 1]) {
        total += g.edge_weight(e);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
  }
  EXPECT_EQ(total, goal_directed.distance);

  // Goal direction must prune strictly on a centre-target grid query.
  EXPECT_LT(goal_directed.work.items_processed,
            undirected.work.items_processed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarGrid, testing::Values(1u, 2u, 3u),
                         [](const auto& param_info) {
                           return "seed_" +
                                  std::to_string(param_info.param);
                         });

TEST(AStar, FloatWeightsExact) {
  const auto g =
      make_grid_road<float>(20, 20, {WeightDist::kUniform, 50}, 5);
  const auto full = dijkstra(g, VertexId{0});
  const auto r = point_to_point_dijkstra(g, 0, 399);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.distance, full.dist[399]);
}

TEST(AStar, EndpointsValidated) {
  GraphBuilder<uint32_t> b{2};
  b.add_edge(0, 1, 1);
  const auto g = b.build();
  EXPECT_THROW(point_to_point_dijkstra(g, 0, 9), Error);
  EXPECT_THROW(point_to_point_dijkstra(g, 9, 0), Error);
}

}  // namespace
}  // namespace adds
