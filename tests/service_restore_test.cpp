// SsspService save/restore: a warm restart must serve only VERIFIED state.
// Happy path: restored tenants answer bit-equal to Dijkstra, the landmark
// oracle is kReady without a single rebuild, restored cache entries hit.
// Corruption path: checksum-level damage AND checksum-clean tampering
// (payload modified with digests recomputed) are both caught — the first
// by the store, the second by the service's ground-truth verify phase
// (fingerprint recompute, Dijkstra spot check, exactness certificate) —
// and each resolves to a typed cold rebuild, never a wrong answer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "persist/state_store.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"

namespace adds {
namespace {

namespace fs = std::filesystem;

using IntGraph = CsrGraph<uint32_t>;

constexpr size_t kPrologueBytes = 28;
constexpr size_t kFrameBytes = 32;

IntGraph test_graph(uint64_t seed = 1, uint32_t side = 14) {
  return make_grid_road<uint32_t>(side, side, {WeightDist::kUniform, 200},
                                  seed);
}

ServiceConfig small_service() {
  ServiceConfig cfg;
  cfg.num_engines = 2;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;
  cfg.landmark.num_landmarks = 4;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  const fs::path d = fs::path(testing::TempDir()) / ("adds_restore_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d.string();
}

LandmarkTableStatus table_status(SsspService<uint32_t>& svc, uint64_t fp) {
  for (const auto& ts : svc.report().tenants)
    if (ts.graph_fp == fp) return ts.oracle_status;
  return LandmarkTableStatus::kNone;
}

bool wait_table(SsspService<uint32_t>& svc, uint64_t fp,
                LandmarkTableStatus want, int budget_ms = 15000) {
  for (int waited = 0; waited < budget_ms; waited += 5) {
    if (table_status(svc, fp) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return table_status(svc, fp) == want;
}

bool flight_has(SsspService<uint32_t>& svc, FlightKind kind) {
  for (const auto& e : svc.flight_dump())
    if (FlightKind(e.ev.kind) == kind) return true;
  return false;
}

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.is_open()) << path;
  std::vector<uint8_t> bytes(size_t(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         std::streamsize(bytes.size()));
  return bytes;
}

void write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          std::streamsize(bytes.size()));
}

struct Section {
  uint32_t kind = 0;
  size_t frame_off = 0;    // offset of the frame header
  size_t payload_off = 0;  // offset of the payload
  size_t payload_len = 0;
};

std::vector<Section> walk_sections(const std::vector<uint8_t>& bytes) {
  std::vector<Section> out;
  uint32_t declared = 0;
  std::memcpy(&declared, bytes.data() + 16, sizeof(declared));
  size_t pos = kPrologueBytes;
  for (uint32_t i = 0; i < declared; ++i) {
    Section s;
    s.frame_off = pos;
    std::memcpy(&s.kind, bytes.data() + pos, 4);
    uint64_t len = 0;
    std::memcpy(&len, bytes.data() + pos + 8, sizeof(len));
    s.payload_off = pos + kFrameBytes;
    s.payload_len = size_t(len);
    out.push_back(s);
    pos = s.payload_off + s.payload_len;
  }
  return out;
}

/// Every section's payload begins with the graph fingerprint it belongs
/// to — section order follows catalog MRU order, so tests target sections
/// by (kind, fp), never by index.
const Section* find_section(const std::vector<uint8_t>& bytes,
                            const std::vector<Section>& sections,
                            uint32_t kind, uint64_t fp) {
  for (const auto& s : sections) {
    if (s.kind != kind) continue;
    uint64_t got = 0;
    std::memcpy(&got, bytes.data() + s.payload_off, 8);
    if (got == fp) return &s;
  }
  return nullptr;
}

/// Checksum-CLEAN tamper: modifies one payload byte, then recomputes the
/// payload digest and the frame digest so the store's own integrity layer
/// cannot see it. What catches this is the service's verify phase — the
/// whole point of "the store is a cache of truth, never a source of it".
void tamper_and_recompute(std::vector<uint8_t>& bytes, const Section& s,
                          size_t byte_in_payload, uint8_t xor_mask) {
  bytes[s.payload_off + byte_in_payload] ^= xor_mask;
  const uint64_t payload_digest =
      fnv1a_bytes(bytes.data() + s.payload_off, s.payload_len);
  std::memcpy(bytes.data() + s.frame_off + 16, &payload_digest, 8);
  const uint64_t frame_digest =
      fnv1a_bytes(bytes.data() + s.frame_off, kFrameBytes - 8);
  std::memcpy(bytes.data() + s.frame_off + kFrameBytes - 8, &frame_digest, 8);
}

/// Warm service with two tenants (default + secondary), a READY table on
/// the default, and a few cached full trees; saves to `dir`.
uint64_t warm_and_save(const std::string& dir, uint64_t& second_fp_out) {
  SsspService<uint32_t> svc(small_service());
  const uint64_t fp = svc.set_graph(test_graph(1));
  second_fp_out = svc.publish_graph(
      std::make_shared<const IntGraph>(test_graph(2, 10)), /*pinned=*/true);
  EXPECT_TRUE(wait_table(svc, fp, LandmarkTableStatus::kReady));
  EXPECT_TRUE(wait_table(svc, second_fp_out, LandmarkTableStatus::kReady));
  for (const VertexId s : {VertexId{0}, VertexId{42}, VertexId{195}})
    EXPECT_EQ(svc.query(s).status, QueryStatus::kOk);
  QueryOptions q2;
  q2.graph_fp = second_fp_out;
  EXPECT_EQ(svc.query(5, q2).status, QueryStatus::kOk);
  const SaveOutcome out = svc.save(dir);
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.graphs, 2u);
  EXPECT_EQ(out.tables, 2u);
  EXPECT_GE(out.cache_entries, 4u);
  EXPECT_EQ(svc.report().state_saves_ok, 1u);
  return fp;
}

// ---- happy path ------------------------------------------------------------

TEST(ServiceRestore, WarmRestartServesVerifiedStateWithoutRebuilds) {
  const std::string dir = fresh_dir("happy");
  uint64_t second_fp = 0;
  const uint64_t fp = warm_and_save(dir, second_fp);

  SsspService<uint32_t> svc(small_service());
  const RestoreOutcome out = svc.restore(dir);
  EXPECT_TRUE(out.store_found);
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.graphs_restored, 2u);
  EXPECT_EQ(out.tables_restored, 2u);
  EXPECT_GE(out.cache_restored, 4u);
  EXPECT_EQ(out.corrupt_sections, 0u);
  EXPECT_EQ(out.cold_rebuilds, 0u);
  EXPECT_GT(out.load_ms + out.verify_ms, 0.0);

  // The oracle is READY from the restored (verified) table — no build ran
  // and none is queued.
  auto rep = svc.report();
  EXPECT_EQ(rep.state_restores_ok, 1u);
  EXPECT_EQ(rep.state_tables_restored, out.tables_restored);
  EXPECT_EQ(rep.landmark_builds_ok, 0u);
  EXPECT_EQ(rep.landmark_builds_pending, 0u);
  EXPECT_EQ(table_status(svc, fp), LandmarkTableStatus::kReady);
  EXPECT_TRUE(flight_has(svc, FlightKind::kStateLoaded));
  EXPECT_FALSE(flight_has(svc, FlightKind::kColdRebuild));

  // Restored answers are bit-equal to ground truth. Source 42 was cached
  // pre-save: it must hit the restored cache, not an engine.
  const auto g = test_graph(1);
  const auto truth = dijkstra(g, 42);
  const auto q = svc.query(42);  // default routing also survived
  EXPECT_TRUE(q.cache_hit);
  ASSERT_NE(q.result, nullptr);
  EXPECT_EQ(q.result->dist, truth.dist);
  EXPECT_EQ(q.graph_fp, fp);

  // The secondary tenant restored too (pinned, explicit routing).
  const auto g2 = test_graph(2, 10);
  QueryOptions opts;
  opts.graph_fp = second_fp;
  const auto q2 = svc.query(5, opts);
  EXPECT_EQ(q2.result->dist, dijkstra(g2, 5).dist);

  // Point-to-point rides the restored table with zero engine dispatch.
  QueryOptions p2p;
  p2p.target = 57;
  const auto qp = svc.query(0, p2p);
  ASSERT_TRUE(qp.p2p_serve == P2pServe::kOracleExact ||
              qp.p2p_serve == P2pServe::kAltSearch);
  EXPECT_EQ(qp.p2p_distance, dijkstra(g, 0).dist[57]);
}

TEST(ServiceRestore, MissingStoreIsACleanColdStart) {
  SsspService<uint32_t> svc(small_service());
  const RestoreOutcome out = svc.restore(fresh_dir("missing"));
  EXPECT_FALSE(out.store_found);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.error.empty());
  const auto rep = svc.report();
  EXPECT_EQ(rep.state_restores_ok, 0u);
  EXPECT_EQ(rep.state_restores_failed, 0u);
}

TEST(ServiceRestore, SaveOnEmptyServiceAndRestoreRoundTrips) {
  const std::string dir = fresh_dir("empty");
  {
    SsspService<uint32_t> svc(small_service());
    const SaveOutcome out = svc.save(dir);
    EXPECT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.graphs, 0u);
  }
  SsspService<uint32_t> svc(small_service());
  const RestoreOutcome out = svc.restore(dir);
  EXPECT_TRUE(out.store_found);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.graphs_restored, 0u);
}

// ---- whole-store corruption ------------------------------------------------

TEST(ServiceRestore, GarbageStoreFailsTypedAndServiceStaysServable) {
  const std::string dir = fresh_dir("garbage");
  write_file((fs::path(dir) / "state.adds").string(),
             std::vector<uint8_t>(256, 0xab));

  SsspService<uint32_t> svc(small_service());
  const RestoreOutcome out = svc.restore(dir);
  EXPECT_TRUE(out.store_found);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.error.empty());
  EXPECT_GT(out.corrupt_sections, 0u);
  EXPECT_EQ(svc.report().state_restores_failed, 1u);
  EXPECT_TRUE(flight_has(svc, FlightKind::kStateCorrupt));

  // Cold rebuild is the operator republish — the service is fully
  // functional afterwards.
  const auto g = test_graph(1);
  svc.set_graph(g);
  EXPECT_EQ(svc.query(0).result->dist, dijkstra(g, 0).dist);
}

// ---- checksum-clean tampering (the verify phase's job) ---------------------

TEST(ServiceRestore, TamperedGraphCaughtByFingerprintRecompute) {
  const std::string dir = fresh_dir("tamper_graph");
  uint64_t second_fp = 0;
  const uint64_t fp = warm_and_save(dir, second_fp);

  const std::string path = (fs::path(dir) / "state.adds").string();
  auto bytes = read_file(path);
  const auto sections = walk_sections(bytes);
  // Graph payload: fp(8) parent(8) pinned(1) default(1) n(8) m(8)
  // offsets... — flip a byte deep in the CSR arrays of the DEFAULT
  // tenant's graph section, digests recomputed.
  const Section* gsec = find_section(bytes, sections, 1, fp);
  ASSERT_NE(gsec, nullptr);
  tamper_and_recompute(bytes, *gsec, gsec->payload_len - 3, 0x20);
  write_file(path, bytes);

  SsspService<uint32_t> svc(small_service());
  const RestoreOutcome out = svc.restore(dir);
  EXPECT_TRUE(out.ok);
  EXPECT_GE(out.corrupt_sections, 1u);
  EXPECT_GE(out.cold_rebuilds, 1u);
  EXPECT_TRUE(flight_has(svc, FlightKind::kColdRebuild));
  EXPECT_TRUE(flight_has(svc, FlightKind::kStateCorrupt));

  // The tampered tenant is NOT resident — nothing unverified serves. The
  // untampered secondary tenant restored normally.
  const auto residents = svc.resident_graphs();
  for (const uint64_t r : residents) EXPECT_NE(r, fp);
  QueryOptions opts;
  opts.graph_fp = second_fp;
  EXPECT_EQ(svc.query(5, opts).result->dist,
            dijkstra(test_graph(2, 10), 5).dist);
}

TEST(ServiceRestore, TamperedLandmarkRowCaughtByDijkstraSpotCheck) {
  const std::string dir = fresh_dir("tamper_table");
  uint64_t second_fp = 0;
  const uint64_t fp = warm_and_save(dir, second_fp);

  const std::string path = (fs::path(dir) / "state.adds").string();
  auto bytes = read_file(path);
  const auto sections = walk_sections(bytes);
  const Section* lm = find_section(bytes, sections, 2, fp);
  ASSERT_NE(lm, nullptr);
  // Landmark payload: fp(8) nv(8) K(4) repaired(1) build_ms(8)
  // landmarks(K*4) rows(K*V*8). Poison a cell of the AUDITED row
  // (k = fp % K) that is not the landmark's zero self-distance.
  uint64_t nv = 0;
  uint32_t K = 0;
  std::memcpy(&nv, bytes.data() + lm->payload_off + 8, 8);
  std::memcpy(&K, bytes.data() + lm->payload_off + 16, 4);
  const uint32_t k = uint32_t(fp % K);
  VertexId audited_lm = 0;
  std::memcpy(&audited_lm, bytes.data() + lm->payload_off + 29 + k * 4, 4);
  const size_t cell = audited_lm == 0 ? 1 : 0;  // any non-self cell
  const size_t off = 29 + size_t(K) * 4 + (size_t(k) * nv + cell) * 8;
  tamper_and_recompute(bytes, *lm, off, 0x08);
  write_file(path, bytes);

  SsspService<uint32_t> svc(small_service());
  const RestoreOutcome out = svc.restore(dir);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.graphs_restored, 2u);  // graphs themselves verified fine
  EXPECT_EQ(out.tables_restored, 1u);  // the untampered tenant's table
  EXPECT_GE(out.corrupt_sections, 1u);
  EXPECT_GE(out.cold_rebuilds, 1u);
  EXPECT_TRUE(flight_has(svc, FlightKind::kColdRebuild));

  // The poisoned table never serves: the tenant rebuilds COLD and comes
  // back READY with a fresh (correct) table.
  ASSERT_TRUE(wait_table(svc, fp, LandmarkTableStatus::kReady));
  EXPECT_EQ(svc.report().landmark_builds_ok, 1u);
  const auto g = test_graph(1);
  QueryOptions p2p;
  p2p.target = 31;
  const auto q = svc.query(3, p2p);
  EXPECT_EQ(q.p2p_distance, dijkstra(g, 3).dist[31]);
}

TEST(ServiceRestore, TamperedCacheEntryCaughtByExactnessCertificate) {
  const std::string dir = fresh_dir("tamper_cache");
  uint64_t second_fp = 0;
  const uint64_t fp = warm_and_save(dir, second_fp);

  const std::string path = (fs::path(dir) / "state.adds").string();
  auto bytes = read_file(path);
  const auto sections = walk_sections(bytes);
  const Section* cache_sec = find_section(bytes, sections, 3, fp);
  ASSERT_NE(cache_sec, nullptr);
  // Cache payload: fp(8) source(4) config(8) n(8) dist(n*8). Flip a low
  // bit of a non-source distance — feasibility or support breaks, the
  // certificate rejects it.
  VertexId source = 0;
  std::memcpy(&source, bytes.data() + cache_sec->payload_off + 8, 4);
  const size_t cell = source == 0 ? 1 : 0;
  tamper_and_recompute(bytes, *cache_sec, 28 + cell * 8, 0x01);
  write_file(path, bytes);

  SsspService<uint32_t> svc(small_service());
  const RestoreOutcome out = svc.restore(dir);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.graphs_restored, 2u);
  EXPECT_GE(out.corrupt_sections, 1u);
  EXPECT_GE(out.cold_rebuilds, 1u);

  // The poisoned entry is gone; the query recomputes fresh and is right.
  const auto g = test_graph(1);
  const auto q = svc.query(source);
  EXPECT_FALSE(q.cache_hit);
  EXPECT_EQ(q.result->dist, dijkstra(g, source).dist);
  EXPECT_EQ(q.graph_fp, fp);
}

// ---- checksum-level section damage through the service ----------------------

TEST(ServiceRestore, BitflippedSectionDegradesToColdRebuildNeverWrong) {
  const std::string dir = fresh_dir("bitflip");
  uint64_t second_fp = 0;
  const uint64_t fp = warm_and_save(dir, second_fp);

  const std::string path = (fs::path(dir) / "state.adds").string();
  auto bytes = read_file(path);
  const auto sections = walk_sections(bytes);
  const Section* lm = find_section(bytes, sections, 2, fp);
  ASSERT_NE(lm, nullptr);
  // Plain bitflip WITHOUT recomputed digests: the store itself skips the
  // section; the service schedules the typed cold rebuild.
  bytes[lm->payload_off + lm->payload_len / 2] ^= 0x10;
  write_file(path, bytes);

  SsspService<uint32_t> svc(small_service());
  const RestoreOutcome out = svc.restore(dir);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.graphs_restored, 2u);
  EXPECT_EQ(out.tables_restored, 1u);
  EXPECT_GE(out.corrupt_sections, 1u);
  EXPECT_TRUE(flight_has(svc, FlightKind::kStateCorrupt));
  ASSERT_TRUE(wait_table(svc, fp, LandmarkTableStatus::kReady));
  const auto g = test_graph(1);
  EXPECT_EQ(svc.query(7).result->dist, dijkstra(g, 7).dist);
}

// ---- config digest discipline ----------------------------------------------

TEST(ServiceRestore, CacheRestoredOnlyUnderMatchingSolverConfig) {
  const std::string dir = fresh_dir("config");
  uint64_t second_fp = 0;
  warm_and_save(dir, second_fp);

  // A different solver config must not inherit the old config's cache
  // entries (the cache key digest would never match at lookup anyway —
  // restore refuses to resurrect them at all).
  ServiceConfig cfg = small_service();
  cfg.engine.num_workers = 3;  // part of options_digest
  SsspService<uint32_t> svc(cfg);
  const RestoreOutcome out = svc.restore(dir);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.graphs_restored, 2u);
  EXPECT_EQ(out.cache_restored, 0u);
  const auto q = svc.query(42);
  EXPECT_FALSE(q.cache_hit);
  EXPECT_EQ(q.result->dist, dijkstra(test_graph(1), 42).dist);
}

}  // namespace
}  // namespace adds
