// Analytics layer tests: closeness, eccentricity, distance histograms,
// connected components, and sampled average path length.
#include <gtest/gtest.h>

#include "core/analytics.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"

namespace adds {
namespace {

TEST(Analytics, ClosenessOnPath) {
  // Path 0-1-2 with unit weights, from vertex 0: distances {0,1,2}.
  GraphBuilder<uint32_t> b{3};
  b.add_undirected_edge(0, 1, 1);
  b.add_undirected_edge(1, 2, 1);
  const auto g = b.build();
  const auto res = dijkstra(g, VertexId{0});
  EXPECT_DOUBLE_EQ(closeness_centrality<uint32_t>(res.dist, 0), 2.0 / 3.0);
  // Middle vertex is more central.
  const auto mid = dijkstra(g, VertexId{1});
  EXPECT_DOUBLE_EQ(closeness_centrality<uint32_t>(mid.dist, 1), 2.0 / 2.0);
}

TEST(Analytics, ClosenessDegenerateCases) {
  std::vector<uint64_t> isolated{0, DistTraits<uint32_t>::infinity()};
  EXPECT_DOUBLE_EQ(closeness_centrality<uint32_t>(isolated, 0), 0.0);
}

TEST(Analytics, Eccentricity) {
  std::vector<uint64_t> dist{0, 5, 17, DistTraits<uint32_t>::infinity()};
  EXPECT_DOUBLE_EQ(eccentricity<uint32_t>(dist), 17.0);
  std::vector<uint64_t> zeros{0};
  EXPECT_DOUBLE_EQ(eccentricity<uint32_t>(zeros), 0.0);
}

TEST(Analytics, DistanceHistogramPartitionsReachable) {
  std::vector<uint64_t> dist{0, 10, 20, 90, 100,
                             DistTraits<uint32_t>::infinity()};
  const auto h = distance_histogram<uint32_t>(dist, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0] + h[1], 5u);  // infinity excluded
  EXPECT_EQ(h[0], 3u);         // 0, 10, 20 in [0, 50)
  EXPECT_EQ(h[1], 2u);         // 90, 100
}

TEST(Analytics, DistanceHistogramDegenerate) {
  std::vector<uint64_t> dist{0, 0, DistTraits<uint32_t>::infinity()};
  const auto h = distance_histogram<uint32_t>(dist, 4);
  EXPECT_EQ(h[0], 2u);
}

TEST(Analytics, ConnectedComponentsOnForest) {
  GraphBuilder<uint32_t> b{7};
  b.add_undirected_edge(0, 1, 1);
  b.add_undirected_edge(1, 2, 1);
  b.add_edge(3, 4, 1);  // directed edge still connects a component
  // 5, 6 isolated
  const auto g = b.build();
  const auto [comp, sizes] = connected_components(g);
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[6]);
  std::vector<uint64_t> sorted(sizes);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint64_t>{1, 1, 2, 3}));
}

TEST(Analytics, ComponentsCoverAllVertices) {
  const auto g = make_erdos_renyi<uint32_t>(
      2000, 1.5, {WeightDist::kUniform, 10}, 6);  // sparse: many components
  const auto [comp, sizes] = connected_components(g);
  uint64_t total = 0;
  for (const auto s : sizes) total += s;
  EXPECT_EQ(total, g.num_vertices());
  for (const auto c : comp) EXPECT_LT(c, sizes.size());
}

TEST(Analytics, AvgPathLengthSamplingIsDeterministic) {
  const auto g =
      make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 10}, 4);
  EngineConfig cfg;
  const auto a =
      estimate_avg_path_length<uint32_t>(g, SolverKind::kAdds, cfg, 3, 42);
  const auto b =
      estimate_avg_path_length<uint32_t>(g, SolverKind::kAdds, cfg, 3, 42);
  EXPECT_EQ(a.ssps_run, 3u);
  EXPECT_DOUBLE_EQ(a.mean_distance, b.mean_distance);
  EXPECT_GT(a.mean_distance, 0.0);
  EXPECT_GT(a.mean_eccentricity, a.mean_distance);
  EXPECT_NEAR(a.mean_reach_fraction, 1.0, 1e-9);  // grid is connected
}

TEST(Analytics, AvgPathLengthAgreesAcrossSolvers) {
  const auto g =
      make_erdos_renyi<uint32_t>(1500, 8, {WeightDist::kUniform, 100}, 9);
  EngineConfig cfg;
  const auto a = estimate_avg_path_length<uint32_t>(g, SolverKind::kDijkstra,
                                                    cfg, 2, 7);
  const auto b =
      estimate_avg_path_length<uint32_t>(g, SolverKind::kAdds, cfg, 2, 7);
  EXPECT_DOUBLE_EQ(a.mean_distance, b.mean_distance);
  EXPECT_DOUBLE_EQ(a.mean_eccentricity, b.mean_eccentricity);
}

}  // namespace
}  // namespace adds
