// Batched multi-source solves: K query lanes through one traversal.
//
// The contract under test: every lane of solve_batch produces exactly the
// distances (and a valid shortest-path tree) that K independent solves
// would, lanes complete and cancel independently, the engine stays warm
// and reusable across batched and single-source queries, and the
// combiner.lane-split fault site cannot make lanes lose or cross items.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "oracle_util.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/host_engine.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

AddsHostOptions small_opts() {
  AddsHostOptions o;
  o.num_workers = 3;
  o.chunk_items = 32;
  o.block_words = 256;
  return o;
}

std::vector<LaneQuery> make_lanes(const std::vector<VertexId>& sources) {
  std::vector<LaneQuery> lanes(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) lanes[i].source = sources[i];
  return lanes;
}

/// Parent-tree oracle check, shared with the repair/service suites
/// (tests/oracle_util.hpp holds the one implementation).
template <WeightType W>
void check_parent_tree(const CsrGraph<W>& g, const SsspResult<W>& r,
                       VertexId source) {
  EXPECT_EQ(oracle::parent_tree_defect(g, r, source), "");
}

TEST(BatchSolve, EveryLaneMatchesItsDijkstraOracle) {
  const auto g =
      make_grid_road<uint32_t>(24, 24, {WeightDist::kUniform, 200}, 5);
  HostEngine<uint32_t> engine(small_opts());
  const std::vector<VertexId> sources = {0, 17, 203, 511, pick_source(g), 42};
  const auto br = engine.solve_batch(g, make_lanes(sources));

  ASSERT_EQ(br.lanes.size(), sources.size());
  EXPECT_GT(br.work.items_processed, 0u);
  for (size_t l = 0; l < sources.size(); ++l) {
    const auto& o = br.lanes[l];
    EXPECT_EQ(o.status, LaneStatus::kOk);
    EXPECT_EQ(o.result.solver, "adds-host-batch");
    const auto oracle = dijkstra(g, sources[l]);
    const auto rep = validate_distances(o.result, oracle);
    EXPECT_TRUE(rep.ok()) << "lane " << l << ": " << rep.summary();
    check_parent_tree(g, o.result, sources[l]);
    // Per-lane slice of the shared traversal: each lane did real work.
    EXPECT_GT(o.result.work.items_processed, 0u) << "lane " << l;
    EXPECT_GT(o.result.work.pushes, 0u) << "lane " << l;
  }
  EXPECT_EQ(engine.queries_served(), 1u);
  // The shared traversal ran the multisplit (write combining is on).
  EXPECT_GT(br.work.lane_splits, 0u);
}

TEST(BatchSolve, FloatLanesMatchOracle) {
  const auto g = make_grid_road<float>(16, 16, {WeightDist::kUniform, 100}, 3);
  HostEngine<float> engine(small_opts());
  const std::vector<VertexId> sources = {0, 99, 255};
  const auto br = engine.solve_batch(g, make_lanes(sources));
  for (size_t l = 0; l < sources.size(); ++l) {
    const auto oracle = dijkstra(g, sources[l]);
    EXPECT_TRUE(validate_distances(br.lanes[l].result, oracle).ok())
        << "lane " << l;
  }
}

TEST(BatchSolve, DuplicateSourcesYieldIdenticalLanes) {
  // The engine does not dedup (the service does); duplicate sources are
  // simply independent lanes that must agree exactly.
  const auto g =
      make_grid_road<uint32_t>(16, 16, {WeightDist::kUniform, 150}, 7);
  HostEngine<uint32_t> engine(small_opts());
  const auto br = engine.solve_batch(g, make_lanes({5, 5, 5}));
  ASSERT_EQ(br.lanes.size(), 3u);
  for (const auto& o : br.lanes) {
    ASSERT_EQ(o.status, LaneStatus::kOk);
    EXPECT_EQ(o.result.dist, br.lanes[0].result.dist);
  }
}

TEST(BatchSolve, SingleLaneBatchMatchesSingleSourceSolve) {
  const auto g =
      make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 300}, 2);
  HostEngine<uint32_t> engine(small_opts());
  const VertexId s = pick_source(g);
  const auto br = engine.solve_batch(g, make_lanes({s}));
  const auto single = engine.solve(g, s);
  ASSERT_EQ(br.lanes.size(), 1u);
  EXPECT_EQ(br.lanes[0].result.dist, single.dist);
  // Batched solves certify a parent tree even for one lane; the classic
  // path stays distance-only.
  check_parent_tree(g, br.lanes[0].result, s);
  EXPECT_TRUE(single.parent.empty());
  EXPECT_EQ(engine.queries_served(), 2u);
}

TEST(BatchSolve, WarmEngineInterleavesBatchedAndSingleQueries) {
  // Lane-count changes force combiner rebuilds on the warm workers; state
  // must never leak between a K-lane batch and the single-source query
  // that follows it on the same threads.
  const auto g =
      make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 250}, 9);
  HostEngine<uint32_t> engine(small_opts());
  const auto oracle0 = dijkstra(g, VertexId{0});
  const auto oracle7 = dijkstra(g, VertexId{7});

  for (int round = 0; round < 3; ++round) {
    const auto br = engine.solve_batch(g, make_lanes({0, 7, 200, 399}));
    EXPECT_TRUE(validate_distances(br.lanes[0].result, oracle0).ok());
    EXPECT_TRUE(validate_distances(br.lanes[1].result, oracle7).ok());
    const auto single = engine.solve(g, 0);
    EXPECT_TRUE(validate_distances(single, oracle0).ok());
    // Single-source runs must not carry batch accounting.
    EXPECT_EQ(single.work.lane_splits, 0u);
    EXPECT_EQ(single.work.lane_dropped, 0u);
  }
  EXPECT_EQ(engine.queries_served(), 6u);
}

TEST(BatchSolve, PerLaneCancelDetachesOnlyThatLane) {
  const auto g =
      make_grid_road<uint32_t>(32, 32, {WeightDist::kUniform, 400}, 4);
  HostEngine<uint32_t> engine(small_opts());
  std::atomic<bool> cancel_lane1{true};  // fired before the batch starts
  auto lanes = make_lanes({3, 700, 512});
  lanes[1].cancel = &cancel_lane1;

  const auto br = engine.solve_batch(g, lanes);
  ASSERT_EQ(br.lanes.size(), 3u);
  EXPECT_EQ(br.lanes[1].status, LaneStatus::kCancelled);
  EXPECT_TRUE(br.lanes[1].result.dist.empty());
  for (size_t l : {size_t{0}, size_t{2}}) {
    ASSERT_EQ(br.lanes[l].status, LaneStatus::kOk) << "lane " << l;
    const auto oracle = dijkstra(g, lanes[l].source);
    EXPECT_TRUE(validate_distances(br.lanes[l].result, oracle).ok())
        << "lane " << l;
  }
  // The engine absorbed the detach and stays warm.
  const auto after = engine.solve(g, 3);
  EXPECT_TRUE(validate_distances(after, dijkstra(g, VertexId{3})).ok());
}

TEST(BatchSolve, BatchDeadlineFailsTheWholeBatch) {
  const auto g =
      make_grid_road<uint32_t>(120, 120, {WeightDist::kUniform, 1000}, 6);
  AddsHostOptions o = small_opts();
  o.num_workers = 1;  // slow it down so the deadline reliably lands mid-run
  HostEngine<uint32_t> engine(o);
  QueryControl ctl;
  ctl.deadline_ms = 0.01;
  EXPECT_THROW(engine.solve_batch(g, make_lanes({0, 1, 2, 3}), ctl),
               DeadlineError);
  // Reusable after the failure path.
  const auto r = engine.solve_batch(g, make_lanes({0, 9}));
  EXPECT_EQ(r.lanes[0].status, LaneStatus::kOk);
}

TEST(BatchSolve, RejectsOversizedAndOutOfRangeBatches) {
  const auto g =
      make_grid_road<uint32_t>(8, 8, {WeightDist::kUniform, 50}, 1);
  HostEngine<uint32_t> engine(small_opts());
  std::vector<VertexId> too_many(kMaxLanes + 1, 0);
  EXPECT_THROW(engine.solve_batch(g, make_lanes(too_many)), Error);
  EXPECT_THROW(engine.solve_batch(g, {}), Error);
  EXPECT_THROW(engine.solve_batch(g, make_lanes({g.num_vertices()})), Error);
}

// ---- Fault-matrix rows for the lane-split site ------------------------------
//
// combiner.lane-split stalls a worker between the multisplit histogram and
// its scatter — the widest window in which the half-built permutation
// exists. Across seeds, every lane of a batched run under the armed site
// must still match its oracle: the stall may cost time, never items and
// never lane isolation.

class LaneSplitFaultMatrix : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LaneSplitFaultMatrix, BatchSurvivesInjectedSplitStall) {
  const auto g =
      make_grid_road<uint32_t>(24, 24, {WeightDist::kUniform, 500}, 3);
  const std::vector<VertexId> sources = {0, 111, 333, 555};
  std::vector<SsspResult<uint32_t>> oracles;
  for (VertexId s : sources) oracles.push_back(dijkstra(g, s));

  fault::FaultPlan plan(GetParam());
  plan.set(fault::Site::kLaneSplit, {0.3, ~0ull, 500});
  fault::FaultScope scope(plan);

  AddsHostOptions o = small_opts();
  o.combine_capacity = 16;  // frequent flushes: many split windows
  HostEngine<uint32_t> engine(o);
  const auto br = engine.solve_batch(g, make_lanes(sources));
  EXPECT_GT(plan.fires(fault::Site::kLaneSplit), 0u);
  for (size_t l = 0; l < sources.size(); ++l) {
    ASSERT_EQ(br.lanes[l].status, LaneStatus::kOk);
    EXPECT_TRUE(validate_distances(br.lanes[l].result, oracles[l]).ok())
        << "seed " << GetParam() << " lane " << l;
    check_parent_tree(g, br.lanes[l].result, sources[l]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaneSplitFaultMatrix,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BatchSolve, OneShotEntryPointMatchesOracles) {
  const auto g =
      make_grid_road<uint32_t>(12, 12, {WeightDist::kUniform, 100}, 8);
  const std::vector<VertexId> sources = {0, 70, 143};
  const auto br = adds_host_batch(g, sources, small_opts());
  for (size_t l = 0; l < sources.size(); ++l)
    EXPECT_TRUE(
        validate_distances(br.lanes[l].result, dijkstra(g, sources[l])).ok())
        << "lane " << l;
}

}  // namespace
}  // namespace adds
