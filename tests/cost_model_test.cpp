// Virtual machine model tests: spec presets (Table 1), scaling, throughput
// curves, BSP timeline accumulation, and parallelism traces.
#include <gtest/gtest.h>

#include "sim/bsp_timeline.hpp"
#include "sim/cost_model.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/trace.hpp"

namespace adds {
namespace {

TEST(GpuSpec, PresetsMatchPaperTable1) {
  const auto ti = GpuSpec::rtx2080ti();
  EXPECT_EQ(ti.sm_count, 68u);
  EXPECT_EQ(ti.threads_per_sm, 1024u);
  EXPECT_DOUBLE_EQ(ti.clock_ghz, 1.75);
  EXPECT_DOUBLE_EQ(ti.dram_bandwidth_gbps, 616.0);
  EXPECT_EQ(ti.hardware_threads(), 68u * 1024u);

  const auto ga = GpuSpec::rtx3090();
  EXPECT_EQ(ga.sm_count, 82u);
  EXPECT_EQ(ga.threads_per_sm, 1536u);
  EXPECT_DOUBLE_EQ(ga.dram_bandwidth_gbps, 936.0);
  EXPECT_GT(ga.hardware_threads(), ti.hardware_threads());
}

TEST(GpuSpec, ScaledShrinksProportionally) {
  const auto ti = GpuSpec::rtx2080ti();
  const auto quarter = ti.scaled(0.25);
  EXPECT_EQ(quarter.sm_count, 17u);
  EXPECT_DOUBLE_EQ(quarter.dram_bandwidth_gbps, 154.0);
  EXPECT_EQ(quarter.threads_per_sm, ti.threads_per_sm);  // unchanged
  EXPECT_NE(quarter.name, ti.name);
}

TEST(GpuSpec, WorkerBlocksLeaveRoomForManager) {
  const auto ti = GpuSpec::rtx2080ti();
  EXPECT_EQ(ti.worker_blocks(256), ti.hardware_threads() / 256 - 1);
  GpuSpec tiny = ti;
  tiny.sm_count = 1;
  tiny.threads_per_sm = 256;
  EXPECT_EQ(tiny.worker_blocks(256), 1u);  // never zero
}

TEST(CostModel, EdgeRateIsLatencyBoundThenCapped) {
  const GpuCostModel m(GpuSpec::rtx2080ti());
  // Few threads: latency bound, linear in T.
  EXPECT_NEAR(m.edge_rate(550), 100.0, 1.0);  // 550 / 5.5us
  // Many threads: bandwidth cap.
  EXPECT_DOUBLE_EQ(m.edge_rate(1e9), m.cap_edges_per_us());
  // Saturation point is where the two regimes meet.
  EXPECT_NEAR(m.edge_rate(m.saturation_threads()), m.cap_edges_per_us(),
              1e-6);
}

TEST(CostModel, BandwidthCapScalesWithBoard) {
  const GpuCostModel ti(GpuSpec::rtx2080ti());
  const GpuCostModel ga(GpuSpec::rtx3090());
  EXPECT_NEAR(ga.cap_edges_per_us() / ti.cap_edges_per_us(), 936.0 / 616.0,
              1e-9);
}

TEST(CostModel, BspKernelHasLaunchFloorAndLatencyFloor) {
  const GpuCostModel m(GpuSpec::rtx2080ti());
  EXPECT_DOUBLE_EQ(m.bsp_kernel_us(0, 0), m.kernel_launch_us);
  // One edge still pays launch + one latency round.
  EXPECT_NEAR(m.bsp_kernel_us(1, 1), m.kernel_launch_us + m.edge_latency_us,
              1e-9);
}

TEST(CostModel, BspKernelMonotoneInEdges) {
  const GpuCostModel m(GpuSpec::rtx2080ti());
  double prev = 0.0;
  for (uint64_t edges = 1; edges <= uint64_t(1) << 26; edges <<= 2) {
    const double t = m.bsp_kernel_us(edges, edges);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CostModel, CpuModelCalibration) {
  const CpuCostModel cpu(CpuSpec::i9_7900x());
  EXPECT_EQ(cpu.spec().threads, 20u);
  // Delta-stepping on all threads must beat one serial core for the same
  // relaxation count but by less than the thread count (imperfect scaling).
  const double serial = cpu.dijkstra_us(1'000'000, 0);
  const double parallel = cpu.delta_stepping_us(1'000'000, 100);
  EXPECT_LT(parallel, serial);
  EXPECT_GT(parallel, serial / 20.0);
}

TEST(BspTimeline, AccumulatesKernelsAndScans) {
  const GpuCostModel m(GpuSpec::rtx2080ti());
  BspTimeline tl(m);
  EXPECT_DOUBLE_EQ(tl.now_us(), 0.0);
  tl.add_kernel(100, 1000);
  const double after_kernel = tl.now_us();
  EXPECT_NEAR(after_kernel, m.bsp_kernel_us(100, 1000), 1e-9);
  tl.add_scan(5000);
  EXPECT_NEAR(tl.now_us(), after_kernel + m.scan_pass_us(5000), 1e-9);
  tl.add_overhead_us(3.0);
  EXPECT_NEAR(tl.now_us(), after_kernel + m.scan_pass_us(5000) + 3.0, 1e-9);
  EXPECT_EQ(tl.kernels_launched(), 2u);
  EXPECT_FALSE(tl.trace().empty());
}

TEST(Trace, MeanAndPeak) {
  ParallelismTrace t;
  t.record(0, 10);
  t.record(10, 30);   // 10 units of parallelism for 10us
  t.record(20, 0);    // 30 for 10us
  EXPECT_DOUBLE_EQ(t.peak_parallelism(), 30.0);
  EXPECT_DOUBLE_EQ(t.mean_parallelism(), 20.0);
  EXPECT_DOUBLE_EQ(t.duration_us(), 20.0);
}

TEST(Trace, MinDtMergesKeepingMax) {
  ParallelismTrace t(5.0);
  t.record(0, 10);
  t.record(1, 50);  // merged into previous sample, max kept
  t.record(2, 20);  // merged
  ASSERT_EQ(t.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(t.samples()[0].edges_in_flight, 50.0);
  t.record(7, 5);  // far enough: new sample
  EXPECT_EQ(t.samples().size(), 2u);
}

TEST(Trace, ResampleStepInterpolates) {
  ParallelismTrace t;
  t.record(0, 10);
  t.record(10, 20);
  t.record(20, 30);
  const auto rs = t.resample(5);
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_DOUBLE_EQ(rs[0].t_us, 0.0);
  EXPECT_DOUBLE_EQ(rs[0].edges_in_flight, 10.0);
  EXPECT_DOUBLE_EQ(rs[2].t_us, 10.0);
  EXPECT_DOUBLE_EQ(rs[2].edges_in_flight, 20.0);
  EXPECT_DOUBLE_EQ(rs[4].edges_in_flight, 30.0);
}

TEST(Trace, ResampleEdgeCases) {
  ParallelismTrace empty;
  EXPECT_TRUE(empty.resample(10).empty());
  ParallelismTrace one;
  one.record(5, 42);
  const auto rs = one.resample(3);
  ASSERT_EQ(rs.size(), 3u);
  for (const auto& s : rs) EXPECT_DOUBLE_EQ(s.edges_in_flight, 42.0);
}

}  // namespace
}  // namespace adds
