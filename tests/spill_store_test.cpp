// SpillStore unit tests plus the overload-governor acceptance tests: an
// adds-host run on a pool a quarter of its measured peak demand (with and
// without fault injection) must complete in-run through spill/replay — no
// restart, no fallback — and validate against the Dijkstra oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/resilience.hpp"
#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "queue/spill_store.hpp"
#include "sssp/adds.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

TEST(SpillStore, StartsEmpty) {
  SpillStore s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.peak_size(), 0u);
  EXPECT_FALSE(s.ready(~0ull));
  EXPECT_EQ(s.drain_any(10, [](uint32_t) { FAIL(); }), 0u);
}

TEST(SpillStore, ReadyTracksLowestBandAgainstHead) {
  SpillStore s;
  s.add(7, 100);
  s.add(9, 200);
  EXPECT_FALSE(s.ready(6));  // window not there yet
  EXPECT_TRUE(s.ready(7));
  EXPECT_TRUE(s.ready(42));
}

TEST(SpillStore, DrainReadyTakesLowestBandsOnly) {
  SpillStore s;
  s.add(3, 30);
  s.add(3, 31);
  s.add(5, 50);
  s.add(9, 90);
  std::vector<uint32_t> out;
  const auto take = [&](uint32_t v) { out.push_back(v); };
  EXPECT_EQ(s.drain_ready(5, 100, take), 3u);  // bands 3 and 5, not 9
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_FALSE(s.ready(5));
  EXPECT_TRUE(s.ready(9));
}

TEST(SpillStore, DrainRespectsMaxItemsAcrossCalls) {
  SpillStore s;
  for (uint32_t i = 0; i < 10; ++i) s.add(1, i);
  std::vector<uint32_t> out;
  const auto take = [&](uint32_t v) { out.push_back(v); };
  EXPECT_EQ(s.drain_ready(1, 4, take), 4u);
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.drain_any(4, take), 4u);
  EXPECT_EQ(s.drain_any(100, take), 2u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(s.peak_size(), 10u);  // high-water mark survives the drain
}

TEST(SpillStore, DrainAnyIgnoresWindowPosition) {
  SpillStore s;
  s.add(100, 1);
  s.add(200, 2);
  uint64_t n = 0;
  EXPECT_EQ(s.drain_any(10, [&](uint32_t) { ++n; }), 2u);
  EXPECT_EQ(n, 2u);
  EXPECT_TRUE(s.empty());
}

// --- Governor acceptance: quarter-of-peak pool completes in-run ------------

// Measures peak block demand of a healthy auto-sized run, then re-runs on
// a pool clamped to a quarter of that peak. The governed engine must
// finish by itself (adds_host throws on failure — there is no fallback
// here), spill machinery must have engaged, and the result must be exact.
// Callers may arm a FaultScope before calling.
void run_quarter_pool(bool combining) {
  const auto g =
      make_grid_road<uint32_t>(50, 50, {WeightDist::kUniform, 1000}, 3);
  const auto oracle = dijkstra(g, VertexId{0});

  AddsHostOptions opts;
  opts.num_workers = 4;
  opts.num_buckets = 8;
  opts.block_words = 64;  // small blocks: real allocator traffic
  opts.write_combining = combining;

  const auto healthy = adds_host(g, 0, opts);
  ASSERT_TRUE(validate_distances(healthy, oracle).ok());
  const uint32_t peak = healthy.health.peak_blocks_in_use;
  ASSERT_GT(peak, 0u);

  opts.pool_blocks = std::max(opts.num_buckets + 4, peak / 4);
  ASSERT_LT(opts.pool_blocks, peak);  // genuinely undersized

  const auto res = adds_host(g, 0, opts);
  EXPECT_TRUE(validate_distances(res, oracle).ok());
  EXPECT_EQ(res.health.pool_blocks, opts.pool_blocks);
  EXPECT_GT(res.health.spill_events, 0u);
  EXPECT_GT(res.health.spilled_items, 0u);
  EXPECT_GT(res.health.spilled_blocks_freed, 0u);
  EXPECT_GE(res.health.peak_pressure, PoolPressure::kElevated);
  EXPECT_LE(res.health.peak_blocks_in_use, opts.pool_blocks);
}

TEST(SpillGovernor, QuarterPeakPoolCompletesInRun) { run_quarter_pool(true); }

TEST(SpillGovernor, QuarterPeakPoolCompletesWithoutCombining) {
  run_quarter_pool(false);
}

TEST(SpillGovernor, QuarterPeakPoolSurvivesExhaustionInjection) {
  // On top of the undersized pool, 20% of try_allocate calls report an
  // empty pool: the governor must still carry the run to completion.
  fault::FaultPlan plan(17);
  plan.set(fault::Site::kPoolExhausted, {0.2, ~0ull, 0});
  fault::FaultScope scope(plan);
  run_quarter_pool(true);
}

TEST(SpillGovernor, GuardedQuarterPoolRunNeedsNoFallback) {
  // Same shape under the resilient runtime: the report must show zero
  // retries and zero fallbacks — the governor, not the guard stack,
  // absorbed the overload — and the attempt record carries the health.
  const auto g =
      make_grid_road<uint32_t>(50, 50, {WeightDist::kUniform, 1000}, 3);
  const auto oracle = dijkstra(g, VertexId{0});

  EngineConfig cfg;
  cfg.adds_host.num_workers = 4;
  cfg.adds_host.block_words = 64;
  const auto healthy = adds_host(g, 0, cfg.adds_host);
  const uint32_t peak = healthy.health.peak_blocks_in_use;
  ASSERT_GT(peak, 0u);
  cfg.adds_host.pool_blocks =
      std::max(cfg.adds_host.num_buckets + 4, peak / 4);

  ResiliencePolicy policy;
  policy.retry_backoff_ms = 1.0;
  policy.watchdog_min_ms = 5000.0;  // tiny blocks are slow; bound hangs only
  const auto res =
      run_solver_guarded(SolverKind::kAddsHost, g, 0, cfg, policy);
  EXPECT_TRUE(validate_distances(res, oracle).ok());
  ASSERT_NE(res.resilience, nullptr);
  const RunReport& rep = *res.resilience;
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.final_solver, "adds-host");
  EXPECT_EQ(rep.retries, 0u);
  EXPECT_EQ(rep.fallbacks, 0u);
  EXPECT_EQ(rep.resized_pool_blocks, 0u);  // the resize path never fired
  ASSERT_EQ(rep.attempts.size(), 1u);
  EXPECT_GT(rep.attempts[0].health.spilled_items, 0u);
  EXPECT_NE(rep.summary().find("spilled_items="), std::string::npos);
}

}  // namespace
}  // namespace adds
