// Failure injection: resource exhaustion and degenerate inputs must fail
// loudly and cleanly (exceptions, no hangs, no std::terminate from joinable
// threads), never silently corrupt results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "queue/work_queue.hpp"
#include "sssp/adds.hpp"

namespace adds {
namespace {

TEST(FailureInjection, HostEnginePoolExhaustionThrowsCleanly) {
  // With the overload governor disabled, a pool far too small for the
  // workload is fail-fast: the manager's ensure_capacity must throw
  // adds::Error, and adds_host must unwind without hanging its worker
  // threads (workers could be parked in wait_allocated).
  const auto g = make_grid_road<uint32_t>(60, 60,
                                          {WeightDist::kUniform, 1000}, 3);
  AddsHostOptions opts;
  opts.num_workers = 4;
  opts.num_buckets = 8;
  opts.block_words = 64;
  opts.pool_blocks = 9;  // 8 buckets + 1 block: exhausts immediately
  opts.pool_governor = false;
  EXPECT_THROW(adds_host(g, 0, opts), Error);
  // The process is still healthy: a correctly sized run succeeds afterwards.
  opts.pool_blocks = 0;  // auto sizing
  const auto res = adds_host(g, 0, opts);
  const auto oracle = dijkstra(g, VertexId{0});
  EXPECT_TRUE(validate_distances(res, oracle).ok());
}

TEST(FailureInjection, GovernorSurvivesUndersizedPoolInRun) {
  // Same undersized workload with the governor on: instead of throwing,
  // the manager spills cold tail buckets to heap, replays them as the
  // window advances, and the run completes correctly in-process.
  const auto g = make_grid_road<uint32_t>(60, 60,
                                          {WeightDist::kUniform, 1000}, 3);
  AddsHostOptions opts;
  opts.num_workers = 4;
  opts.num_buckets = 8;
  opts.block_words = 64;
  opts.pool_blocks = 12;  // 8 buckets + a handful of spare blocks
  const auto res = adds_host(g, 0, opts);
  const auto oracle = dijkstra(g, VertexId{0});
  EXPECT_TRUE(validate_distances(res, oracle).ok());
  EXPECT_EQ(res.health.pool_blocks, 12u);
  EXPECT_GE(res.health.peak_pressure, PoolPressure::kElevated);
  EXPECT_GT(res.health.spill_events, 0u);
  EXPECT_GT(res.health.spilled_items, 0u);
  EXPECT_EQ(res.health.replayed_items, res.health.spilled_items);
}

TEST(FailureInjection, QueueAbortUnblocksWriters) {
  BlockPool pool(4, 64);
  WorkQueue::Config cfg;
  cfg.num_buckets = 2;
  cfg.bucket.segment_words = 8;
  cfg.bucket.table_size = 4;
  WorkQueue queue(pool, cfg);
  // No capacity anywhere; a writer blocks...
  std::atomic<bool> returned{false};
  std::thread writer([&] {
    queue.push(7, 0.0);
    returned.store(true, std::memory_order_release);
  });
  for (int i = 0; i < 1000 && !returned.load(); ++i)
    std::this_thread::yield();
  EXPECT_FALSE(returned.load());
  // ...until the queue aborts.
  queue.request_abort();
  writer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_TRUE(queue.aborted());
}

TEST(FailureInjection, AbortLatencyBounded) {
  // wait_allocated spins with a capped exponential backoff (yields, then
  // sleeps of at most 128us). A writer parked deep in the sleep phase must
  // still observe request_abort quickly — the cap bounds reaction latency.
  BlockPool pool(4, 64);
  WorkQueue::Config cfg;
  cfg.num_buckets = 2;
  cfg.bucket.segment_words = 8;
  cfg.bucket.table_size = 4;
  WorkQueue queue(pool, cfg);

  std::atomic<bool> returned{false};
  std::thread writer([&] {
    queue.push(7, 0.0);
    returned.store(true, std::memory_order_release);
  });
  // Let the writer's backoff escalate to its longest sleeps.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_FALSE(returned.load());

  const auto t0 = std::chrono::steady_clock::now();
  queue.request_abort();
  writer.join();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_TRUE(returned.load());
  // Worst case is one max-length sleep (~128us) plus scheduling noise; a
  // 250ms bound leaves two orders of magnitude of slack for slow CI.
  EXPECT_LT(ms, 250.0);
}

TEST(FailureInjection, EmptyGraphsAreHandledByAllSolvers) {
  GraphBuilder<uint32_t> b{0};
  const auto g = b.build();
  EngineConfig cfg;
  for (const SolverKind k : all_solvers()) {
    const auto res = run_solver(k, g, 0, cfg);
    EXPECT_TRUE(res.dist.empty()) << solver_name(k);
  }
}

TEST(FailureInjection, EdgelessGraphTerminatesQuickly) {
  GraphBuilder<uint32_t> b{100};
  const auto g = b.build();  // 100 isolated vertices
  EngineConfig cfg;
  for (const SolverKind k : all_solvers()) {
    const auto res = run_solver(k, g, 42, cfg);
    EXPECT_EQ(res.reached(), 1u) << solver_name(k);
    EXPECT_EQ(res.dist[42], 0u) << solver_name(k);
  }
}

TEST(FailureInjection, SelfLoopHeavyGraphIsCorrect) {
  // Self loops never improve distances; builders drop them by default, but
  // a graph built with them kept must still converge.
  GraphBuilder<uint32_t> b{4};
  GraphBuilder<uint32_t>::BuildOptions keep;
  keep.drop_self_loops = false;
  keep.dedup_parallel_edges = false;
  b.add_edge(0, 0, 1);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 1, 1);
  b.add_edge(1, 2, 3);
  const auto g = b.build(keep);
  EngineConfig cfg;
  const auto oracle = dijkstra(g, VertexId{0});
  EXPECT_EQ(oracle.dist[2], 5u);
  for (const SolverKind k : {SolverKind::kAdds, SolverKind::kAddsHost,
                             SolverKind::kNf, SolverKind::kGunBf}) {
    const auto res = run_solver(k, g, 0, cfg);
    EXPECT_TRUE(validate_distances(res, oracle).ok()) << solver_name(k);
  }
}

TEST(FailureInjection, ParallelEdgeMultigraphIsCorrect) {
  GraphBuilder<uint32_t> b{3};
  GraphBuilder<uint32_t>::BuildOptions keep;
  keep.dedup_parallel_edges = false;
  b.add_edge(0, 1, 9);
  b.add_edge(0, 1, 2);  // lighter parallel arc must win
  b.add_edge(1, 2, 1);
  const auto g = b.build(keep);
  EngineConfig cfg;
  for (const SolverKind k : {SolverKind::kAdds, SolverKind::kNf}) {
    const auto res = run_solver(k, g, 0, cfg);
    EXPECT_EQ(res.dist[1], 2u) << solver_name(k);
    EXPECT_EQ(res.dist[2], 3u) << solver_name(k);
  }
}

TEST(FailureInjection, ZeroishFloatWeightsStayPositive) {
  // The float lane's generators guarantee strictly positive weights; the
  // DIMACS reader clamps to positive too. Verify the invariant end to end.
  const auto g = generate_graph<float>([] {
    GraphSpec s;
    s.family = GraphFamily::kErdosRenyi;
    s.scale = 500;
    s.a = 6;
    s.weights = {WeightDist::kLongTail, 10};
    s.seed = 77;
    return s;
  }());
  for (const float w : g.weights()) EXPECT_GT(w, 0.0f);
}

}  // namespace
}  // namespace adds
