// Path reconstruction, validation reporting, experiment helpers, and the
// records CSV cache round-trip.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/experiment.hpp"
#include "core/paths.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace adds {
namespace {

TEST(Paths, ExtractsKnownRoute) {
  // 0 -1- 1 -1- 2 with a heavy shortcut 0 -5- 2: route must go via 1.
  GraphBuilder<uint32_t> b{3};
  b.add_undirected_edge(0, 1, 1);
  b.add_undirected_edge(1, 2, 1);
  b.add_undirected_edge(0, 2, 5);
  const auto g = b.build();
  const auto res = dijkstra(g, VertexId{0});
  const auto path = extract_path(g, res.dist, 0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
}

TEST(Paths, UnreachableTargetGivesEmptyPath) {
  GraphBuilder<uint32_t> b{3};
  b.add_undirected_edge(0, 1, 1);
  const auto g = b.build();
  const auto res = dijkstra(g, VertexId{0});
  EXPECT_TRUE(extract_path(g, res.dist, 0, 2).empty());
}

TEST(Paths, SourceToItself) {
  GraphBuilder<uint32_t> b{2};
  b.add_undirected_edge(0, 1, 1);
  const auto g = b.build();
  const auto res = dijkstra(g, VertexId{0});
  const auto path = extract_path(g, res.dist, 0, 0);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 0u);
}

TEST(Paths, DirectedGraphNeedsReverse) {
  GraphBuilder<uint32_t> b{3};
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  const auto g = b.build();
  const auto rev = reverse_graph(g);
  const auto res = dijkstra(g, VertexId{0});
  const auto path = extract_path(rev, res.dist, 0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 1u);
}

TEST(Paths, PathWeightsSumToDistance) {
  const auto g =
      make_grid_road<uint32_t>(15, 15, {WeightDist::kUniform, 100}, 3);
  const auto res = dijkstra(g, VertexId{0});
  const VertexId target = 15 * 15 - 1;
  const auto path = extract_path(g, res.dist, 0, target);
  ASSERT_GE(path.size(), 2u);
  uint64_t total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    // Find the edge path[i] -> path[i+1] and add its weight.
    bool found = false;
    for (EdgeIndex e = g.edge_begin(path[i]); e < g.edge_end(path[i]); ++e) {
      if (g.edge_target(e) == path[i + 1]) {
        total += g.edge_weight(e);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "path uses a non-edge";
  }
  EXPECT_EQ(total, res.dist[target]);
}

TEST(Paths, ShortestPathTreeIsConsistent) {
  const auto g =
      make_erdos_renyi<uint32_t>(500, 6, {WeightDist::kUniform, 100}, 8);
  const VertexId source = pick_source(g);
  const auto res = dijkstra(g, source);
  const auto parent = shortest_path_tree(g, res.dist, source);
  EXPECT_EQ(parent[source], kInvalidVertex);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == source) continue;
    if (res.dist[v] == DistTraits<uint32_t>::infinity()) {
      EXPECT_EQ(parent[v], kInvalidVertex);
    } else {
      ASSERT_NE(parent[v], kInvalidVertex);
      EXPECT_LT(res.dist[parent[v]], res.dist[v]);
    }
  }
}

TEST(Paths, BogusDistanceArrayThrows) {
  GraphBuilder<uint32_t> b{3};
  b.add_undirected_edge(0, 1, 1);
  b.add_undirected_edge(1, 2, 1);
  const auto g = b.build();
  std::vector<uint64_t> bogus{0, 5, 7};  // not a fixed point
  EXPECT_THROW(extract_path(g, bogus, 0, 2), Error);
  std::vector<uint64_t> wrong_size{0};
  EXPECT_THROW(extract_path(g, wrong_size, 0, 2), Error);
}

TEST(Validate, ReportsMismatches) {
  SsspResult<uint32_t> a, b;
  a.dist = {0, 5, 9};
  b.dist = {0, 5, 9};
  EXPECT_TRUE(validate_distances(a, b).ok());
  b.dist[2] = 10;
  const auto rep = validate_distances(a, b);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.mismatches, 1u);
  EXPECT_EQ(rep.first_mismatch, 2u);
  EXPECT_NE(rep.summary().find("1 mismatches"), std::string::npos);
  b.dist.pop_back();
  EXPECT_THROW(validate_distances(a, b), Error);
}

TEST(Experiment, RatioHelpers) {
  GraphRunRecord r;
  r.spec.name = "g";
  SolverOutcome fast, slow;
  fast.time_us = 10;
  fast.work.items_processed = 200;
  slow.time_us = 40;
  slow.work.items_processed = 100;
  r.outcomes["adds"] = fast;
  r.outcomes["nf"] = slow;
  const std::vector<GraphRunRecord> recs{r};
  const auto speed = speedup_ratios(recs, "adds", "nf");
  ASSERT_EQ(speed.size(), 1u);
  EXPECT_DOUBLE_EQ(speed[0], 4.0);
  const auto work = work_ratios(recs, "adds", "nf");
  ASSERT_EQ(work.size(), 1u);
  EXPECT_DOUBLE_EQ(work[0], 2.0);
  // Missing solver -> skipped, not a crash.
  EXPECT_TRUE(speedup_ratios(recs, "adds", "nv").empty());
}

TEST(Experiment, RecordsCsvRoundTrip) {
  const std::string dir = "test_tmp_records";
  std::filesystem::create_directories(dir);
  std::vector<GraphRunRecord> recs(2);
  recs[0].spec.name = "alpha";
  recs[0].spec.family = GraphFamily::kGridRoad;
  recs[0].summary.num_vertices = 100;
  recs[0].summary.num_edges = 400;
  recs[0].summary.avg_degree = 4.0;
  recs[0].summary.diameter = 17;
  SolverOutcome o;
  o.time_us = 123.5;
  o.work.items_processed = 999;
  o.work.relaxations = 4321;
  o.supersteps = 7;
  o.valid = true;
  recs[0].outcomes["adds"] = o;
  o.time_us = 400.25;
  o.valid = false;
  recs[0].outcomes["nf"] = o;
  recs[1].spec.name = "beta";
  recs[1].spec.family = GraphFamily::kRmat;
  recs[1].outcomes["adds"] = o;

  const std::string path = dir + "/r.csv";
  save_records_csv(path, recs);
  const auto loaded = load_records_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].spec.name, "alpha");
  EXPECT_EQ(loaded[0].spec.family, GraphFamily::kGridRoad);
  EXPECT_EQ(loaded[0].summary.num_edges, 400u);
  EXPECT_EQ(loaded[0].summary.diameter, 17u);
  ASSERT_EQ(loaded[0].outcomes.size(), 2u);
  EXPECT_NEAR(loaded[0].outcomes.at("adds").time_us, 123.5, 1e-3);
  EXPECT_EQ(loaded[0].outcomes.at("adds").work.items_processed, 999u);
  EXPECT_EQ(loaded[0].outcomes.at("adds").supersteps, 7u);
  EXPECT_TRUE(loaded[0].outcomes.at("adds").valid);
  EXPECT_FALSE(loaded[0].outcomes.at("nf").valid);
  EXPECT_TRUE(load_records_csv(dir + "/missing.csv").empty());
  std::filesystem::remove_all(dir);
}

TEST(Experiment, ConfigTagChangesWithModel) {
  CorpusRunOptions a, b;
  a.config = corpus_config();
  b.config = corpus_config();
  EXPECT_EQ(config_tag(a), config_tag(b));
  b.config.adds.num_buckets = 2;
  EXPECT_NE(config_tag(a), config_tag(b));
  CorpusRunOptions c;
  c.config = corpus_config(GpuSpec::rtx3090());
  EXPECT_NE(config_tag(a), config_tag(c));
}

}  // namespace
}  // namespace adds
