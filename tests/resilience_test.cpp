// Resilient runtime tests: watchdog recovery from an injected hang, retry
// with pool re-sizing, the relaxation audit, fallback-chain construction,
// and the RunReport surfaced through SsspResult.
#include <gtest/gtest.h>

#include "core/resilience.hpp"
#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

using fault::FaultPlan;
using fault::FaultScope;
using fault::Site;

IntGraph small_grid() {
  return make_grid_road<uint32_t>(30, 30, {WeightDist::kUniform, 1000}, 3);
}

TEST(Resilience, GuardedRunWithoutFaultsIsPlain) {
  const auto g = small_grid();
  const auto oracle = dijkstra(g, VertexId{0});
  EngineConfig cfg;
  const auto res = run_solver_guarded(SolverKind::kAddsHost, g, 0, cfg);
  EXPECT_TRUE(validate_distances(res, oracle).ok());
  ASSERT_NE(res.resilience, nullptr);
  const RunReport& rep = *res.resilience;
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.final_solver, "adds-host");
  ASSERT_EQ(rep.attempts.size(), 1u);
  EXPECT_EQ(rep.attempts[0].outcome, AttemptOutcome::kOk);
  EXPECT_EQ(rep.retries, 0u);
  EXPECT_EQ(rep.fallbacks, 0u);
  EXPECT_EQ(rep.watchdog_fires, 0u);
  EXPECT_GT(rep.attempts[0].audit_checked, 0u);
  EXPECT_NE(rep.summary().find("ok"), std::string::npos);
}

TEST(Resilience, WatchdogRecoversFromManagerStall) {
  // The manager wedges on every sweep (30s injected stall, p=1): the
  // attempt can only end through the watchdog -> cancel -> abort -> throw
  // path, after which the chain degrades to an engine with no fault sites
  // and still produces Dijkstra-exact output.
  const auto g = small_grid();
  const auto oracle = dijkstra(g, VertexId{0});

  EngineConfig cfg;
  cfg.adds_host.num_workers = 3;
  ResiliencePolicy policy;
  policy.max_attempts_per_engine = 1;
  policy.watchdog_min_ms = 300.0;
  policy.retry_backoff_ms = 1.0;

  FaultPlan plan(99);
  plan.set(Site::kManagerScanStall, {1.0, ~0ull, 30'000'000});
  FaultScope scope(plan);

  const auto res =
      run_solver_guarded(SolverKind::kAddsHost, g, 0, cfg, policy);
  EXPECT_TRUE(validate_distances(res, oracle).ok());
  ASSERT_NE(res.resilience, nullptr);
  const RunReport& rep = *res.resilience;
  EXPECT_TRUE(rep.ok);
  EXPECT_GE(rep.watchdog_fires, 1u);
  EXPECT_GE(rep.fallbacks, 1u);
  EXPECT_NE(rep.final_solver, "adds-host");
  ASSERT_GE(rep.attempts.size(), 2u);
  EXPECT_EQ(rep.attempts[0].outcome, AttemptOutcome::kWatchdogAbort);
  EXPECT_TRUE(rep.attempts[0].watchdog_fired);
}

TEST(Resilience, UndersizedPoolIsRetriedWithAutoSizing) {
  const auto g =
      make_grid_road<uint32_t>(60, 60, {WeightDist::kUniform, 1000}, 3);
  const auto oracle = dijkstra(g, VertexId{0});

  EngineConfig cfg;
  cfg.adds_host.num_workers = 4;
  cfg.adds_host.block_words = 64;
  cfg.adds_host.pool_blocks = 9;  // exhausts immediately
  // Fail-fast mode: this test exercises the *restart* path. With the
  // governor on the engine would instead spill in-run and never throw
  // (covered by FailureInjection.GovernorSurvivesUndersizedPoolInRun).
  cfg.adds_host.pool_governor = false;
  ResiliencePolicy policy;
  policy.max_attempts_per_engine = 2;
  policy.retry_backoff_ms = 1.0;
  // The tiny 64-word blocks make even a healthy run allocator-bound and
  // slower than the default 200ms deadline floor; give it real headroom so
  // the watchdog only sees genuine wedges here.
  policy.watchdog_min_ms = 5000.0;

  const auto res =
      run_solver_guarded(SolverKind::kAddsHost, g, 0, cfg, policy);
  EXPECT_TRUE(validate_distances(res, oracle).ok());
  ASSERT_NE(res.resilience, nullptr);
  const RunReport& rep = *res.resilience;
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.final_solver, "adds-host");  // recovered, not fallen back
  EXPECT_EQ(rep.retries, 1u);
  ASSERT_EQ(rep.attempts.size(), 2u);
  EXPECT_EQ(rep.attempts[0].outcome, AttemptOutcome::kError);
  EXPECT_EQ(rep.attempts[1].outcome, AttemptOutcome::kOk);
  // The report records the pool size the retry ran with.
  EXPECT_EQ(rep.resized_pool_blocks,
            auto_pool_blocks(g.num_edges(), cfg.adds_host.block_words,
                             cfg.adds_host.num_buckets));
}

TEST(Resilience, AuditAcceptsCorrectDistances) {
  const auto g = small_grid();
  const auto oracle = dijkstra(g, VertexId{0});
  const auto full =
      audit_relaxation(g, 0, oracle.dist, ~0ull, 1);
  EXPECT_TRUE(full.ok());
  EXPECT_EQ(full.edges_checked, g.num_edges());
  // Sampled mode checks a subset and still accepts.
  const auto sampled = audit_relaxation(g, 0, oracle.dist, 128, 1);
  EXPECT_TRUE(sampled.ok());
  EXPECT_GE(sampled.edges_checked, 128u);
}

TEST(Resilience, AuditRejectsCorruptedDistances) {
  const auto g = small_grid();
  auto res = dijkstra(g, VertexId{0});

  // Inflate one reached non-source vertex: the in-edge that defined its
  // distance now violates d[v] <= d[u] + w.
  auto corrupt = res.dist;
  VertexId victim = kInvalidVertex;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (corrupt[v] != DistTraits<uint32_t>::infinity()) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidVertex);
  corrupt[victim] += 1000000;
  const auto audit = audit_relaxation(g, 0, corrupt, ~0ull, 1);
  EXPECT_FALSE(audit.ok());
  EXPECT_GT(audit.violations, 0u);
  EXPECT_FALSE(audit.first_violation.empty());

  // A reached vertex marked unreached is also caught (inf > d[u] + w).
  auto lost = res.dist;
  lost[victim] = DistTraits<uint32_t>::infinity();
  EXPECT_FALSE(audit_relaxation(g, 0, lost, ~0ull, 1).ok());

  // Corrupted source.
  auto bad_source = res.dist;
  bad_source[0] = 5;
  EXPECT_FALSE(audit_relaxation(g, 0, bad_source, ~0ull, 1).ok());

  // Wrong-sized array.
  std::vector<DistT<uint32_t>> short_dist(g.num_vertices() - 1, 0);
  EXPECT_FALSE(audit_relaxation(g, 0, short_dist, ~0ull, 1).ok());
}

TEST(Resilience, WatchdogDeadlineScalesAndClamps) {
  EngineConfig cfg;
  ResiliencePolicy policy;
  policy.watchdog_min_ms = 10.0;
  policy.watchdog_max_ms = 1000.0;
  const auto small = make_grid_road<uint32_t>(10, 10, {}, 1);
  const auto big = make_grid_road<uint32_t>(200, 200, {}, 1);
  const double d_small = watchdog_deadline_ms(small, cfg, policy);
  const double d_big = watchdog_deadline_ms(big, cfg, policy);
  EXPECT_GE(d_small, policy.watchdog_min_ms);
  EXPECT_LE(d_big, policy.watchdog_max_ms);
  EXPECT_LE(d_small, d_big);
}

TEST(Resilience, DefaultFallbackChains) {
  using K = SolverKind;
  EXPECT_EQ(default_fallback_chain(K::kAddsHost),
            (std::vector<K>{K::kAddsHost, K::kAdds, K::kCpuDs,
                            K::kDijkstra}));
  EXPECT_EQ(default_fallback_chain(K::kAdds),
            (std::vector<K>{K::kAdds, K::kCpuDs, K::kDijkstra}));
  EXPECT_EQ(default_fallback_chain(K::kDijkstra),
            (std::vector<K>{K::kDijkstra}));
  // Kinds outside the canonical chain degrade to the CPU engines.
  EXPECT_EQ(default_fallback_chain(K::kNf),
            (std::vector<K>{K::kNf, K::kCpuDs, K::kDijkstra}));
}

TEST(Resilience, DisabledFallbackExhaustsAndThrows) {
  // Permanent allocation failure with fallback off: bounded attempts, then
  // a clean adds::Error carrying the report summary — never a hang.
  const auto g = small_grid();
  EngineConfig cfg;
  ResiliencePolicy policy;
  policy.enable_fallback = false;
  policy.max_attempts_per_engine = 2;
  policy.retry_backoff_ms = 1.0;

  FaultPlan plan(5);
  plan.set(Site::kPoolAllocFail, {1.0, ~0ull, 0});
  FaultScope scope(plan);
  try {
    run_solver_guarded(SolverKind::kAddsHost, g, 0, cfg, policy);
    FAIL() << "expected adds::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("pool.alloc_fail"),
              std::string::npos);
  }
}

TEST(Resilience, FloatLaneGuardedRun) {
  const auto g = generate_graph<float>([] {
    GraphSpec s;
    s.family = GraphFamily::kErdosRenyi;
    s.scale = 400;
    s.a = 6;
    s.weights = {WeightDist::kUniform, 10};
    s.seed = 21;
    return s;
  }());
  const auto oracle = dijkstra(g, VertexId{0});
  EngineConfig cfg;
  const auto res = run_solver_guarded(SolverKind::kAddsHost, g, 0, cfg);
  EXPECT_TRUE(validate_distances(res, oracle).ok());
  ASSERT_NE(res.resilience, nullptr);
  EXPECT_TRUE(res.resilience->ok);
}

}  // namespace
}  // namespace adds
