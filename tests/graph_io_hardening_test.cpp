// Malformed-input hardening for the graph readers (DIMACS text and Galois
// binary GR). Every case is a file a fuzzer or a corrupted download could
// hand the service: the contract under test is a typed adds::Error from
// the reader — never an assert, a silent mis-parse, an allocation bomb or
// an out-of-bounds CSR that a solver would crash on later.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/gr_format.hpp"

namespace adds {
namespace {

class GraphIoHardeningTest : public testing::Test {
 protected:
  void SetUp() override { std::filesystem::create_directories(dir_); }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string write_text(const std::string& name, const std::string& body) {
    std::ofstream out(path(name));
    out << body;
    return path(name);
  }

  std::string write_bytes(const std::string& name,
                          const std::vector<uint8_t>& bytes) {
    std::ofstream out(path(name), std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    return path(name);
  }

  const std::string dir_ = "test_tmp_io_hardening";
};

// ---------------------------------------------------------------------------
// DIMACS text format
// ---------------------------------------------------------------------------

struct DimacsCase {
  const char* name;
  const char* body;
  bool uint32_only = false;  // overflow cases that a float weight absorbs
};

// Every entry must throw adds::Error out of read_dimacs.
const DimacsCase kBadDimacs[] = {
    {"empty file", ""},
    {"comments only", "c nothing here\nc still nothing\n"},
    {"arc before problem", "a 1 2 3\np sp 2 1\n"},
    {"duplicate problem line", "p sp 2 1\np sp 2 1\na 1 2 3\n"},
    {"bad problem tag", "p xx 2 1\na 1 2 3\n"},
    {"problem line missing counts", "p sp 2\na 1 2 3\n"},
    {"vertex count too large", "p sp 99999999999 1\na 1 2 3\n"},
    {"zero vertex id", "p sp 2 1\na 0 2 3\n"},
    {"source out of range", "p sp 2 1\na 9 1 3\n"},
    {"target out of range", "p sp 2 1\na 1 9 3\n"},
    {"negative source id", "p sp 2 1\na -1 2 3\n"},
    {"negative weight", "p sp 2 1\na 1 2 -5\n"},
    {"overflowing weight", "p sp 2 1\na 1 2 5000000000\n",
     /*uint32_only=*/true},
    {"non-numeric weight", "p sp 2 1\na 1 2 cheap\n"},
    {"arc line missing fields", "p sp 2 1\na 1\n"},
    {"fewer arcs than declared", "p sp 3 2\na 1 2 3\n"},
    {"more arcs than declared", "p sp 2 1\na 1 2 3\na 2 1 3\n"},
    {"unknown line type", "p sp 2 1\nq bogus\na 1 2 3\n"},
};

TEST_F(GraphIoHardeningTest, MalformedDimacsThrowsTyped) {
  for (const DimacsCase& c : kBadDimacs) {
    SCOPED_TRACE(c.name);
    const std::string p = write_text("bad.dimacs", c.body);
    EXPECT_THROW(read_dimacs<uint32_t>(p), Error) << c.name;
    if (!c.uint32_only) EXPECT_THROW(read_dimacs<float>(p), Error) << c.name;
  }
}

TEST_F(GraphIoHardeningTest, WellFormedDimacsStillParses) {
  // Positive control: the hardening must not reject a clean file. Zero
  // weights keep their documented map-to-one behaviour.
  const std::string p = write_text(
      "good.dimacs", "c ok\np sp 3 3\na 1 2 5\na 2 3 0\na 3 1 7\n");
  const auto g = read_dimacs<uint32_t>(p);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge_weight(g.edge_begin(1)), 1u);  // 0 -> smallest positive
}

TEST_F(GraphIoHardeningTest, MatrixMarketKeepsPermissiveNegativeWeights) {
  // The |w| conversion is documented paper behaviour for MatrixMarket and
  // must survive the DIMACS-side strictness.
  const std::string p = write_text(
      "neg.mtx", "%%MatrixMarket matrix coordinate real general\n"
                 "2 2 1\n1 2 -7.0\n");
  const auto g = read_matrix_market<uint32_t>(p);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_weight(0), 7u);
}

// ---------------------------------------------------------------------------
// Galois binary GR format
// ---------------------------------------------------------------------------

std::vector<uint8_t> file_bytes(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void poke_u64(std::vector<uint8_t>& bytes, size_t offset, uint64_t v) {
  ASSERT_LE(offset + sizeof(v), bytes.size());
  std::memcpy(bytes.data() + offset, &v, sizeof(v));
}

void poke_u32(std::vector<uint8_t>& bytes, size_t offset, uint32_t v) {
  ASSERT_LE(offset + sizeof(v), bytes.size());
  std::memcpy(bytes.data() + offset, &v, sizeof(v));
}

TEST_F(GraphIoHardeningTest, GrCorruptionsThrowTyped) {
  // Start from a valid file and corrupt one field at a time. Layout:
  // header[4] x u64 (version, edge size, nodes, edges), then nodes x u64
  // end-offsets, then edges x u32 targets (+pad), then edges x u32 weights.
  const auto g =
      make_grid_road<uint32_t>(4, 4, {WeightDist::kUniform, 50}, 7);
  write_gr(g, path("base.gr"));
  const std::vector<uint8_t> base = file_bytes(path("base.gr"));
  const uint64_t nodes = g.num_vertices();
  const size_t out_idx_at = 32;
  const size_t targets_at = out_idx_at + size_t(nodes) * 8;

  struct Corruption {
    const char* name;
    std::function<void(std::vector<uint8_t>&)> apply;
  };
  const Corruption cases[] = {
      {"bad version", [](auto& b) { poke_u64(b, 0, 9); }},
      {"bad edge size", [](auto& b) { poke_u64(b, 8, 8); }},
      {"node count too large",
       [](auto& b) { poke_u64(b, 16, uint64_t(kInvalidVertex) + 1); }},
      {"node count beyond file",
       [](auto& b) { poke_u64(b, 16, 1u << 20); }},
      {"edge count beyond file",
       [](auto& b) { poke_u64(b, 24, 1u << 20); }},
      {"edge count absurd",
       [](auto& b) { poke_u64(b, 24, uint64_t(1) << 60); }},
      {"non-monotonic out_idx",
       [&](auto& b) { poke_u64(b, out_idx_at + 8, 1u << 30); }},
      {"out_idx regression",
       [&](auto& b) {
         // offsets ...[2] smaller than ...[1]: degree underflow risk.
         uint64_t first;
         std::memcpy(&first, b.data() + out_idx_at, 8);
         poke_u64(b, out_idx_at + 8, first > 0 ? first - 1 : 0);
         poke_u64(b, out_idx_at, first + 1);
       }},
      {"target out of range",
       [&](auto& b) { poke_u32(b, targets_at, uint32_t(nodes)); }},
  };
  for (const Corruption& c : cases) {
    SCOPED_TRACE(c.name);
    std::vector<uint8_t> bytes = base;
    c.apply(bytes);
    const std::string p = write_bytes("corrupt.gr", bytes);
    EXPECT_THROW(read_gr<uint32_t>(p), Error) << c.name;
  }
}

TEST_F(GraphIoHardeningTest, GrTruncationAtEveryRegionThrowsTyped) {
  const auto g =
      make_grid_road<uint32_t>(4, 4, {WeightDist::kUniform, 50}, 7);
  write_gr(g, path("base.gr"));
  const auto full = std::filesystem::file_size(path("base.gr"));
  // Cut inside the header, the offsets, the targets and the weights.
  for (const uint64_t keep :
       {uint64_t(0), uint64_t(16), uint64_t(40),
        uint64_t(32 + g.num_vertices() * 8 + 4), full - 4}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    std::filesystem::copy_file(
        path("base.gr"), path("cut.gr"),
        std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(path("cut.gr"), keep);
    EXPECT_THROW(read_gr<uint32_t>(path("cut.gr")), Error);
  }
}

TEST_F(GraphIoHardeningTest, GrRoundTripSurvivesHardening) {
  // Positive control: hardened reader still accepts what write_gr emits.
  const auto g =
      make_erdos_renyi<uint32_t>(300, 5.0, {WeightDist::kUniform, 100}, 3);
  write_gr(g, path("ok.gr"));
  const auto g2 = read_gr<uint32_t>(path("ok.gr"));
  ASSERT_EQ(g.num_vertices(), g2.num_vertices());
  ASSERT_EQ(g.num_edges(), g2.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(g.edge_begin(v), g2.edge_begin(v));
}

}  // namespace
}  // namespace adds
