// Generator property tests: sizes, degrees, determinism and weight
// distributions across all families (parameterized).
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace adds {
namespace {

const WeightParams kUni{WeightDist::kUniform, 100};

TEST(Generators, GridRoadShape) {
  const auto g = make_grid_road<uint32_t>(10, 7, kUni, 1);
  EXPECT_EQ(g.num_vertices(), 70u);
  // 4-neighbour grid: (w-1)*h + w*(h-1) undirected edges, stored twice.
  EXPECT_EQ(g.num_edges(), 2u * (9 * 7 + 10 * 6));
  EXPECT_TRUE(is_symmetric(g));
  // Corner degree 2, interior degree 4.
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(11), 4u);
}

TEST(Generators, KNeighborMeshDegree) {
  const auto g = make_kneighbor_mesh<uint32_t>(20, 20, 2, kUni, 1);
  EXPECT_EQ(g.num_vertices(), 400u);
  // Interior vertex (far from borders): full Moore neighbourhood radius 2.
  const VertexId interior = 10 * 20 + 10;
  EXPECT_EQ(g.out_degree(interior), 24u);
  EXPECT_TRUE(is_symmetric(g));
}

TEST(Generators, RmatIsPowerLawish) {
  const auto g = make_rmat<uint32_t>(12, 8, 0.57, 0.19, 0.19, kUni, 3);
  EXPECT_EQ(g.num_vertices(), 4096u);
  // Undirected storage of ~8*4096 samples (minus dedup/self-loops).
  EXPECT_GT(g.num_edges(), 40000u);
  EXPECT_LE(g.num_edges(), 2u * 8 * 4096);
  uint64_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    max_deg = std::max<uint64_t>(max_deg, g.out_degree(v));
  // A hub far above the mean is the power-law signature.
  EXPECT_GT(max_deg, 8 * g.average_degree());
}

TEST(Generators, ErdosRenyiDegreeConcentrates) {
  const auto g = make_erdos_renyi<uint32_t>(20000, 10.0, kUni, 5);
  EXPECT_EQ(g.num_vertices(), 20000u);
  EXPECT_NEAR(g.average_degree(), 10.0, 0.5);
}

TEST(Generators, WattsStrogatzShape) {
  const auto g = make_watts_strogatz<uint32_t>(1000, 6, 0.1, kUni, 7);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_NEAR(g.average_degree(), 6.0, 0.5);
}

TEST(Generators, CliqueChainShape) {
  const auto g = make_clique_chain<uint32_t>(10, 8, kUni, 9);
  EXPECT_EQ(g.num_vertices(), 80u);
  // 10 cliques of C(8,2)=28 undirected edges + 9 bridges, stored twice.
  EXPECT_EQ(g.num_edges(), 2u * (10 * 28 + 9));
  const auto diam = pseudo_diameter(g);
  EXPECT_GE(diam, 10u);  // must cross every clique
}

TEST(Generators, StarShape) {
  const auto g = make_star<uint32_t>(100, kUni, 1);
  EXPECT_EQ(g.out_degree(0), 99u);
  for (VertexId v = 1; v < 100; ++v) EXPECT_EQ(g.out_degree(v), 1u);
  EXPECT_EQ(pseudo_diameter(g), 2u);
}

TEST(Generators, ChainShape) {
  const auto g = make_chain<uint32_t>(50, kUni, 1);
  EXPECT_EQ(g.num_edges(), 2u * 49);
  EXPECT_EQ(pseudo_diameter(g), 49u);
}

TEST(Generators, BinaryTreeShape) {
  const auto g = make_binary_tree<uint32_t>(127, kUni, 1);
  EXPECT_EQ(g.num_edges(), 2u * 126);
  const auto diam = pseudo_diameter(g);
  EXPECT_GE(diam, 10u);  // two leaf-to-leaf depths
  EXPECT_LE(diam, 14u);
}

TEST(Generators, BadParametersThrow) {
  EXPECT_THROW(make_grid_road<uint32_t>(0, 5, kUni, 1), Error);
  EXPECT_THROW(make_rmat<uint32_t>(0, 8, 0.57, 0.19, 0.19, kUni, 1), Error);
  EXPECT_THROW(make_rmat<uint32_t>(10, 8, 0.5, 0.3, 0.3, kUni, 1), Error);
  EXPECT_THROW(make_erdos_renyi<uint32_t>(1, 2.0, kUni, 1), Error);
  EXPECT_THROW(make_watts_strogatz<uint32_t>(100, 3, 0.1, kUni, 1), Error);
  EXPECT_THROW(make_clique_chain<uint32_t>(3, 1, kUni, 1), Error);
  EXPECT_THROW(make_kneighbor_mesh<uint32_t>(5, 5, 0, kUni, 1), Error);
}

// --- Parameterized determinism & weight-distribution sweep ----------------

struct GenCase {
  GraphFamily family;
  WeightDist dist;
};

class GeneratorSweep : public testing::TestWithParam<GenCase> {
 protected:
  static GraphSpec spec_for(const GenCase& c, uint64_t seed) {
    GraphSpec s;
    s.family = c.family;
    s.weights.dist = c.dist;
    s.weights.max_weight = 1000;
    s.seed = seed;
    switch (c.family) {
      case GraphFamily::kGridRoad:
        s.scale = 20;
        s.a = 20;
        break;
      case GraphFamily::kKNeighborMesh:
        s.scale = 16;
        s.a = 16;
        s.b = 2;
        break;
      case GraphFamily::kRmat:
        s.scale = 10;
        s.a = 8;
        break;
      case GraphFamily::kErdosRenyi:
        s.scale = 1000;
        s.a = 6;
        break;
      case GraphFamily::kWattsStrogatz:
        s.scale = 512;
        s.a = 6;
        s.b = 0.1;
        break;
      case GraphFamily::kCliqueChain:
        s.scale = 16;
        s.a = 8;
        break;
      case GraphFamily::kStar:
      case GraphFamily::kChain:
      case GraphFamily::kBinaryTree:
        s.scale = 500;
        break;
    }
    return s;
  }
};

std::string sweep_name(const testing::TestParamInfo<GenCase>& info) {
  std::string n = std::string(family_name(info.param.family)) + "_" +
                  weight_dist_name(info.param.dist);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n;
}

TEST_P(GeneratorSweep, DeterministicForSameSeed) {
  const auto s = spec_for(GetParam(), 77);
  const auto a = generate_graph<uint32_t>(s);
  const auto b = generate_graph<uint32_t>(s);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeIndex e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge_target(e), b.edge_target(e));
    ASSERT_EQ(a.edge_weight(e), b.edge_weight(e));
  }
}

TEST_P(GeneratorSweep, WeightsRespectDistribution) {
  const auto s = spec_for(GetParam(), 78);
  const auto g = generate_graph<uint32_t>(s);
  ASSERT_GT(g.num_edges(), 0u);
  uint32_t min_w = ~0u, max_w = 0;
  for (const uint32_t w : g.weights()) {
    min_w = std::min(min_w, w);
    max_w = std::max(max_w, w);
  }
  EXPECT_GE(min_w, 1u);
  switch (GetParam().dist) {
    case WeightDist::kUnit:
      EXPECT_EQ(max_w, 1u);
      break;
    case WeightDist::kUniform:
    case WeightDist::kLongTail:
      EXPECT_LE(max_w, 1000u);
      EXPECT_GT(max_w, 1u);
      break;
  }
  if (GetParam().dist == WeightDist::kLongTail && g.num_edges() > 500) {
    // Long tail: median far below max.
    std::vector<uint32_t> ws(g.weights().begin(), g.weights().end());
    std::nth_element(ws.begin(), ws.begin() + ws.size() / 2, ws.end());
    EXPECT_LT(ws[ws.size() / 2], 200u);
  }
}

TEST_P(GeneratorSweep, FloatVariantMatchesTopology) {
  const auto s = spec_for(GetParam(), 79);
  const auto gi = generate_graph<uint32_t>(s);
  const auto gf = generate_graph<float>(s);
  ASSERT_EQ(gi.num_vertices(), gf.num_vertices());
  ASSERT_EQ(gi.num_edges(), gf.num_edges());
  for (EdgeIndex e = 0; e < gi.num_edges(); e += 17)
    ASSERT_EQ(gi.edge_target(e), gf.edge_target(e));
}

std::vector<GenCase> sweep_cases() {
  std::vector<GenCase> out;
  for (const GraphFamily f :
       {GraphFamily::kGridRoad, GraphFamily::kKNeighborMesh,
        GraphFamily::kRmat, GraphFamily::kErdosRenyi,
        GraphFamily::kWattsStrogatz, GraphFamily::kCliqueChain,
        GraphFamily::kStar, GraphFamily::kChain, GraphFamily::kBinaryTree}) {
    for (const WeightDist d :
         {WeightDist::kUnit, WeightDist::kUniform, WeightDist::kLongTail}) {
      out.push_back({f, d});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratorSweep,
                         testing::ValuesIn(sweep_cases()), sweep_name);

}  // namespace
}  // namespace adds
