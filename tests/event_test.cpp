// Event (eventcount) unit and race tests. The primitive backs every idle
// wait in the queue protocol — worker assignment flags, writer capacity
// waits, manager parking — so the invariants under test are:
//
//   * a notify_all after the state change is never lost (no missed-wakeup
//     race between the predicate re-check and the cv wait);
//   * await returns promptly once the predicate holds;
//   * await_for respects its timeout when the predicate never holds;
//   * state flipped *without* a notify is still observed within the safety
//     tick (legacy code paths poke atomics directly).
//
// The ping-pong and multi-waiter tests are the TSan targets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/event.hpp"

namespace adds {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

TEST(Event, AwaitReturnsImmediatelyWhenPredicateHolds) {
  Event e;
  std::atomic<bool> flag{true};
  e.await([&] { return flag.load(std::memory_order_acquire); });
  EXPECT_TRUE(
      e.await_for([&] { return flag.load(std::memory_order_acquire); },
                  std::chrono::microseconds(1)));
}

TEST(Event, NotifyWithNoWaitersIsCheapAndSafe) {
  Event e;
  for (int i = 0; i < 1000; ++i) e.notify_all();
}

TEST(Event, AwaitForTimesOutWhenNeverNotified) {
  Event e;
  std::atomic<bool> flag{false};
  const auto t0 = Clock::now();
  const bool ok = e.await_for(
      [&] { return flag.load(std::memory_order_acquire); },
      std::chrono::microseconds(20'000));
  EXPECT_FALSE(ok);
  EXPECT_GE(ms_since(t0), 15.0);  // waited (almost) the whole timeout
}

TEST(Event, NotifiedAwaitWakesPromptly) {
  Event e;
  std::atomic<bool> flag{false};
  std::atomic<double> waited_ms{-1.0};
  std::thread waiter([&] {
    const auto t0 = Clock::now();
    e.await([&] { return flag.load(std::memory_order_acquire); });
    waited_ms.store(ms_since(t0), std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  flag.store(true, std::memory_order_release);
  e.notify_all();
  waiter.join();
  EXPECT_GE(waited_ms.load(std::memory_order_acquire), 0.0);
}

TEST(Event, UnnotifiedStateChangeObservedViaSafetyTick) {
  // External code flips the atomic without calling notify_all — the wait
  // must still return within a few safety ticks, not hang.
  Event e;
  std::atomic<bool> flag{false};
  std::thread waiter(
      [&] { e.await([&] { return flag.load(std::memory_order_acquire); }); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  flag.store(true, std::memory_order_release);  // no notify on purpose
  waiter.join();  // hangs here (and times the test out) on a miss
}

TEST(Event, ManyWaitersAllReleased) {
  Event e;
  std::atomic<bool> flag{false};
  std::atomic<uint32_t> released{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 8; ++i) {
    waiters.emplace_back([&] {
      e.await([&] { return flag.load(std::memory_order_acquire); });
      released.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  flag.store(true, std::memory_order_release);
  e.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(released.load(), 8u);
}

TEST(Event, PingPongNeverMissesAWakeup) {
  // Two threads hand a token back and forth through two events. Any missed
  // wakeup would stall a round for a full safety tick; many would time the
  // test out. Run enough rounds to stress the register/notify race windows.
  constexpr int kRounds = 20'000;
  Event ping, pong;
  std::atomic<int> turn{0};
  std::thread a([&] {
    for (int i = 0; i < kRounds; ++i) {
      ping.await([&] { return turn.load(std::memory_order_acquire) % 2 == 0; });
      turn.fetch_add(1, std::memory_order_acq_rel);
      pong.notify_all();
    }
  });
  std::thread b([&] {
    for (int i = 0; i < kRounds; ++i) {
      pong.await([&] { return turn.load(std::memory_order_acquire) % 2 == 1; });
      turn.fetch_add(1, std::memory_order_acq_rel);
      ping.notify_all();
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(turn.load(), 2 * kRounds);
}

TEST(Event, ConcurrentNotifiersAndWaitersRace) {
  // Hammer the registration/notification handshake from several threads at
  // once; under TSan this exercises the fence pair and the epoch protocol.
  Event e;
  std::atomic<uint64_t> counter{0};
  std::atomic<bool> stop{false};
  constexpr uint64_t kTarget = 4000;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      uint64_t seen = 0;
      while (seen < kTarget) {
        e.await([&] {
          return counter.load(std::memory_order_acquire) > seen ||
                 stop.load(std::memory_order_acquire);
        });
        seen = counter.load(std::memory_order_acquire);
      }
    });
  }
  std::vector<std::thread> notifiers;
  for (int i = 0; i < 2; ++i) {
    notifiers.emplace_back([&] {
      while (counter.load(std::memory_order_acquire) < kTarget) {
        counter.fetch_add(1, std::memory_order_acq_rel);
        e.notify_all();
      }
    });
  }
  for (auto& t : notifiers) t.join();
  stop.store(true, std::memory_order_release);
  e.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_GE(counter.load(), kTarget);
}

}  // namespace
}  // namespace adds
