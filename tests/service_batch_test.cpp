// Batched dispatch at the service layer: same-graph queue coalescing into
// one HostEngine::solve_batch, per-member fan-out, duplicate-source lane
// sharing, and the batches/batched_queries/batch_fills accounting.
//
// The recipe every test uses to make coalescing deterministic: a fault
// plan stalls the FIRST query's manager sweep (Site::kManagerScanStall,
// one fire), the test submits the batch members while the lone engine is
// pinned inside that stall, and the dispatcher then drains the whole
// same-fingerprint backlog as one batch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

ServiceConfig batch_service() {
  ServiceConfig cfg;
  cfg.num_engines = 1;  // one slot => everything behind the blocker queues
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;
  cfg.max_batch_lanes = 8;
  return cfg;
}

IntGraph batch_graph(uint64_t seed = 11) {
  return make_grid_road<uint32_t>(40, 40, {WeightDist::kUniform, 200}, seed);
}

void expect_valid(const QueryOutcome<uint32_t>& out, const IntGraph& g,
                  VertexId s) {
  ASSERT_EQ(out.status, QueryStatus::kOk);
  ASSERT_NE(out.result, nullptr);
  const auto rep = validate_distances(*out.result, dijkstra(g, s));
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

/// One 60ms manager-sweep stall: long enough to queue every member while
/// the blocker runs, far too short to flake a CI timeout.
void arm_blocker(fault::FaultPlan& plan) {
  plan.set(fault::Site::kManagerScanStall, {1.0, 1, 60000});
}

/// Waits until the dispatcher has dequeued the blocker (queue empty), so
/// members submitted next are what the post-blocker dispatch coalesces —
/// without this the blocker itself would join the batch.
void wait_until_picked(SsspService<uint32_t>& svc) {
  while (svc.report().queue_depth != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST(ServiceBatch, CoalescesQueuedSameGraphQueriesIntoOneSolve) {
  const auto g = batch_graph();
  fault::FaultPlan plan(3);
  arm_blocker(plan);
  fault::FaultScope scope(plan);

  SsspService<uint32_t> svc(batch_service());
  svc.set_graph(g);

  auto blocker = svc.submit(0);
  wait_until_picked(svc);
  std::vector<std::future<QueryOutcome<uint32_t>>> futs;
  for (VertexId s = 1; s <= 6; ++s) futs.push_back(svc.submit(s));

  expect_valid(blocker.get(), g, 0);
  for (VertexId s = 1; s <= 6; ++s) expect_valid(futs[s - 1].get(), g, s);

  const ServiceReport rep = svc.report();
  EXPECT_EQ(rep.completed, 7u);
  EXPECT_EQ(rep.batches, 1u);
  EXPECT_EQ(rep.batched_queries, 6u);
  EXPECT_EQ(rep.batch_fills, 6u);  // six distinct sources, six entries
  // The batch charged the engine once: blocker + one batched dispatch.
  EXPECT_EQ(rep.engine_queries, 2u);

  // Every member's result is now cached individually: a re-query of any
  // batched source is a submit-time hit.
  const auto again = svc.submit(3).get();
  EXPECT_EQ(again.status, QueryStatus::kOk);
  EXPECT_TRUE(again.cache_hit);
}

TEST(ServiceBatch, DuplicateSourcesShareOneLaneAndOneResult) {
  const auto g = batch_graph();
  fault::FaultPlan plan(4);
  arm_blocker(plan);
  fault::FaultScope scope(plan);

  SsspService<uint32_t> svc(batch_service());
  svc.set_graph(g);

  auto blocker = svc.submit(0);
  wait_until_picked(svc);
  const std::vector<VertexId> sources{7, 7, 9, 9, 9};
  std::vector<std::future<QueryOutcome<uint32_t>>> futs;
  for (VertexId s : sources) futs.push_back(svc.submit(s));

  expect_valid(blocker.get(), g, 0);
  std::vector<QueryOutcome<uint32_t>> outs;
  for (size_t i = 0; i < sources.size(); ++i) {
    outs.push_back(futs[i].get());
    expect_valid(outs.back(), g, sources[i]);
  }
  // Same source => same lane => the SAME immutable result object.
  EXPECT_EQ(outs[0].result.get(), outs[1].result.get());
  EXPECT_EQ(outs[2].result.get(), outs[3].result.get());
  EXPECT_EQ(outs[3].result.get(), outs[4].result.get());
  EXPECT_NE(outs[0].result.get(), outs[2].result.get());

  const ServiceReport rep = svc.report();
  EXPECT_EQ(rep.batches, 1u);
  EXPECT_EQ(rep.batched_queries, 5u);
  EXPECT_EQ(rep.batch_fills, 2u);  // one entry per distinct lane
}

TEST(ServiceBatch, PreCancelledMemberResolvesWithoutDisturbingTheBatch) {
  const auto g = batch_graph();
  fault::FaultPlan plan(5);
  arm_blocker(plan);
  fault::FaultScope scope(plan);

  SsspService<uint32_t> svc(batch_service());
  svc.set_graph(g);

  std::atomic<bool> cancel{false};
  auto blocker = svc.submit(0);
  wait_until_picked(svc);
  QueryOptions q;
  q.cancel = &cancel;
  auto f1 = svc.submit(1);
  auto f2 = svc.submit(2, q);
  auto f3 = svc.submit(3);
  cancel.store(true, std::memory_order_release);  // fires while queued

  expect_valid(blocker.get(), g, 0);
  expect_valid(f1.get(), g, 1);
  EXPECT_EQ(f2.get().status, QueryStatus::kCancelled);
  expect_valid(f3.get(), g, 3);

  const ServiceReport rep = svc.report();
  EXPECT_EQ(rep.cancelled, 1u);
  EXPECT_EQ(rep.completed, 3u);
}

TEST(ServiceBatch, MaxBatchLanesOneDisablesCoalescing) {
  const auto g = batch_graph();
  fault::FaultPlan plan(6);
  arm_blocker(plan);
  fault::FaultScope scope(plan);

  ServiceConfig cfg = batch_service();
  cfg.max_batch_lanes = 1;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  auto blocker = svc.submit(0);
  wait_until_picked(svc);
  std::vector<std::future<QueryOutcome<uint32_t>>> futs;
  for (VertexId s = 1; s <= 3; ++s) futs.push_back(svc.submit(s));

  expect_valid(blocker.get(), g, 0);
  for (VertexId s = 1; s <= 3; ++s) expect_valid(futs[s - 1].get(), g, s);

  const ServiceReport rep = svc.report();
  EXPECT_EQ(rep.batches, 0u);
  EXPECT_EQ(rep.batched_queries, 0u);
  EXPECT_EQ(rep.batch_fills, 0u);
  EXPECT_EQ(rep.engine_queries, 4u);  // every query ran alone
}

}  // namespace
}  // namespace adds
