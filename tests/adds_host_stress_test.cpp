// Host-thread ADDS engine stress: the full MTB/WTB protocol under real
// concurrency across worker counts, window sizes, tiny pool blocks (forced
// wrap-around and allocation back-pressure) and the dynamic-Δ controller.
#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sssp/adds.hpp"
#include "sssp/dijkstra.hpp"

namespace adds {
namespace {

struct HostCase {
  uint32_t workers;
  uint32_t buckets;
  uint32_t block_words;
  bool dynamic_delta;
};

std::string case_name(const testing::TestParamInfo<HostCase>& info) {
  const auto& c = info.param;
  return "w" + std::to_string(c.workers) + "_b" + std::to_string(c.buckets) +
         "_blk" + std::to_string(c.block_words) +
         (c.dynamic_delta ? "_dyn" : "_static");
}

class AddsHostStress : public testing::TestWithParam<HostCase> {};

TEST_P(AddsHostStress, MatchesDijkstraOnMixedGraphs) {
  const auto& c = GetParam();
  AddsHostOptions opts;
  opts.num_workers = c.workers;
  opts.num_buckets = c.buckets;
  opts.block_words = c.block_words;
  opts.dynamic_delta = c.dynamic_delta;
  opts.chunk_items = 32;

  const WeightParams wp{WeightDist::kUniform, 500};
  const std::vector<IntGraph> graphs = {
      make_grid_road<uint32_t>(30, 30, wp, 1),
      make_rmat<uint32_t>(10, 8, 0.57, 0.19, 0.19, wp, 2),
      make_clique_chain<uint32_t>(20, 12, wp, 3),
  };
  for (const auto& g : graphs) {
    const VertexId source = pick_source(g);
    const auto res = adds_host(g, source, opts);
    const auto oracle = dijkstra(g, source);
    const auto rep = validate_distances(res, oracle);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GE(res.work.items_processed, oracle.work.items_processed);
  }
}

std::vector<HostCase> host_cases() {
  return {
      {1, 4, 1024, false},  {2, 4, 1024, false}, {4, 4, 1024, false},
      {8, 4, 1024, false},  {4, 2, 1024, false}, {4, 8, 1024, false},
      {4, 32, 1024, false}, {4, 4, 256, false},  // tiny blocks: heavy wrap
      {4, 4, 64, false},                         // extreme wrap pressure
      {4, 8, 1024, true},                        // dynamic delta on host
      {2, 32, 256, true},
  };
}

INSTANTIATE_TEST_SUITE_P(Configs, AddsHostStress,
                         testing::ValuesIn(host_cases()), case_name);

TEST(AddsHost, RepeatedRunsAreAllCorrect) {
  // Re-run the same instance many times to expose interleaving-dependent
  // bugs (different thread schedules each run).
  const auto g = make_rmat<uint32_t>(
      9, 8, 0.57, 0.19, 0.19, {WeightDist::kUniform, 100}, 7);
  const VertexId source = pick_source(g);
  const auto oracle = dijkstra(g, source);
  AddsHostOptions opts;
  opts.num_workers = 4;
  opts.chunk_items = 16;
  opts.block_words = 256;
  for (int run = 0; run < 20; ++run) {
    const auto res = adds_host(g, source, opts);
    ASSERT_TRUE(validate_distances(res, oracle).ok()) << "run " << run;
  }
}

TEST(AddsHost, ManualPoolSizingWorks) {
  const auto g =
      make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 100}, 9);
  AddsHostOptions opts;
  opts.pool_blocks = 256;
  opts.block_words = 64;
  opts.num_workers = 2;
  const auto res = adds_host(g, 0, opts);
  const auto oracle = dijkstra(g, VertexId{0});
  EXPECT_TRUE(validate_distances(res, oracle).ok());
}

TEST(AddsHost, ReportsWallClockAndDeltaHistory) {
  const auto g =
      make_grid_road<uint32_t>(25, 25, {WeightDist::kUniform, 100}, 4);
  AddsHostOptions opts;
  opts.num_workers = 2;
  opts.dynamic_delta = true;
  const auto res = adds_host(g, 0, opts);
  EXPECT_GT(res.wall_ms, 0.0);
  EXPECT_GE(res.delta_history.size(), 1u);
  EXPECT_EQ(res.solver, "adds-host");
}

TEST(AddsHost, SingleWorkerDegeneratesGracefully) {
  // One worker serializes processing; the protocol must still terminate and
  // be exact.
  const auto g = make_chain<uint32_t>(2000, {WeightDist::kUniform, 50}, 2);
  AddsHostOptions opts;
  opts.num_workers = 1;
  opts.num_buckets = 2;
  const auto res = adds_host(g, 0, opts);
  const auto oracle = dijkstra(g, VertexId{0});
  EXPECT_TRUE(validate_distances(res, oracle).ok());
}

}  // namespace
}  // namespace adds
