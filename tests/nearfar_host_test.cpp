// Real-thread BSP Near-Far engine tests: correctness across thread counts
// and graph shapes, overflow failure mode, and repeated-run race exposure.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sssp/nearfar_host.hpp"

namespace adds {
namespace {

class NearFarHost : public testing::TestWithParam<uint32_t> {};

TEST_P(NearFarHost, MatchesDijkstraOnMixedGraphs) {
  NearFarHostOptions opts;
  opts.num_threads = GetParam();
  const WeightParams wp{WeightDist::kUniform, 500};
  const std::vector<IntGraph> graphs = {
      make_grid_road<uint32_t>(30, 30, wp, 1),
      make_rmat<uint32_t>(10, 8, 0.57, 0.19, 0.19, wp, 2),
      make_watts_strogatz<uint32_t>(2048, 8, 0.05, wp, 3),
  };
  for (const auto& g : graphs) {
    const VertexId source = pick_source(g);
    const auto res = near_far_host(g, source, opts);
    const auto oracle = dijkstra(g, source);
    EXPECT_TRUE(validate_distances(res, oracle).ok());
    EXPECT_GT(res.supersteps, 1u);
    EXPECT_GE(res.work.items_processed, oracle.work.items_processed);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, NearFarHost, testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& param_info) {
                           return "threads_" +
                                  std::to_string(param_info.param);
                         });

TEST(NearFarHostEngine, RepeatedRunsAllCorrect) {
  const auto g = make_rmat<uint32_t>(9, 8, 0.57, 0.19, 0.19,
                                     {WeightDist::kUniform, 100}, 7);
  const VertexId source = pick_source(g);
  const auto oracle = dijkstra(g, source);
  NearFarHostOptions opts;
  opts.num_threads = 4;
  for (int run = 0; run < 15; ++run) {
    const auto res = near_far_host(g, source, opts);
    ASSERT_TRUE(validate_distances(res, oracle).ok()) << "run " << run;
  }
}

TEST(NearFarHostEngine, OverflowThrowsCleanly) {
  const auto g =
      make_grid_road<uint32_t>(40, 40, {WeightDist::kUniform, 1000}, 4);
  NearFarHostOptions opts;
  opts.num_threads = 2;
  opts.capacity_factor = 0.001;  // worklists of ~2 items: must overflow
  EXPECT_THROW(near_far_host(g, 0, opts), Error);
}

TEST(NearFarHostEngine, ExplicitDeltaRespected) {
  const auto g =
      make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 100}, 5);
  const auto oracle = dijkstra(g, VertexId{0});
  for (const double delta : {10.0, 1000.0, 1e9}) {
    NearFarHostOptions opts;
    opts.delta = delta;
    const auto res = near_far_host(g, 0, opts);
    EXPECT_TRUE(validate_distances(res, oracle).ok()) << "delta " << delta;
  }
  // A huge delta degenerates to Bellman-Ford: everything stays in Near.
  NearFarHostOptions bf;
  bf.delta = 1e12;
  const auto res = near_far_host(g, 0, bf);
  EXPECT_TRUE(validate_distances(res, oracle).ok());
}

TEST(NearFarHostEngine, RegisteredInSolverFrontend) {
  const auto g =
      make_grid_road<uint32_t>(15, 15, {WeightDist::kUniform, 50}, 6);
  EngineConfig cfg;
  const auto res = run_solver(SolverKind::kNfHost, g, 0, cfg);
  EXPECT_EQ(res.solver, "nf-host");
  const auto oracle = dijkstra(g, VertexId{0});
  EXPECT_TRUE(validate_distances(res, oracle).ok());
  EXPECT_EQ(parse_solver("nf-host"), SolverKind::kNfHost);
}

TEST(NearFarHostEngine, FloatVariantMatches) {
  const auto g = make_watts_strogatz<float>(1024, 6, 0.1,
                                            {WeightDist::kUniform, 100}, 8);
  const VertexId source = pick_source(g);
  const auto res = near_far_host(g, source, {});
  const auto oracle = dijkstra(g, source);
  EXPECT_TRUE(validate_distances(res, oracle).ok());
}

}  // namespace
}  // namespace adds
