// Engine-option matrix tests: every configuration knob must preserve
// correctness, and the simulator must be fully deterministic.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"

namespace adds {
namespace {

IntGraph test_graph(uint64_t seed = 17) {
  return make_kneighbor_mesh<uint32_t>(24, 24, 2,
                                       {WeightDist::kUniform, 500}, seed);
}

TEST(AddsOptions, BucketCountSweepStaysCorrect) {
  const auto g = test_graph();
  const VertexId src = pick_source(g);
  EngineConfig cfg;
  const auto oracle = dijkstra(g, src, &cfg.cpu);
  for (const uint32_t buckets : {2u, 4u, 8u, 16u, 32u, 64u}) {
    cfg.adds.num_buckets = buckets;
    const auto res = run_solver(SolverKind::kAdds, g, src, cfg);
    EXPECT_TRUE(validate_distances(res, oracle).ok())
        << buckets << " buckets";
  }
}

TEST(AddsOptions, StaticDeltaAblationStaysCorrect) {
  const auto g = test_graph();
  const VertexId src = pick_source(g);
  EngineConfig cfg;
  const auto oracle = dijkstra(g, src, &cfg.cpu);
  cfg.adds.dynamic_delta = false;
  for (const double delta : {1.0, 50.0, 5000.0, 1e9}) {
    cfg.adds.delta = delta;
    const auto res = run_solver(SolverKind::kAdds, g, src, cfg);
    EXPECT_TRUE(validate_distances(res, oracle).ok()) << "delta " << delta;
  }
}

TEST(AddsOptions, ChunkingKnobsStayCorrect) {
  const auto g = test_graph();
  const VertexId src = pick_source(g);
  EngineConfig cfg;
  const auto oracle = dijkstra(g, src, &cfg.cpu);
  for (const uint32_t chunk : {1u, 16u, 1024u}) {
    for (const uint32_t budget : {64u, 512u, 1u << 20}) {
      cfg.adds.chunk_items = chunk;
      cfg.adds.chunk_edge_budget = budget;
      const auto res = run_solver(SolverKind::kAdds, g, src, cfg);
      EXPECT_TRUE(validate_distances(res, oracle).ok())
          << chunk << "/" << budget;
    }
  }
}

TEST(AddsOptions, SimulatorIsDeterministic) {
  const auto g = test_graph();
  const VertexId src = pick_source(g);
  EngineConfig cfg;
  const auto a = run_solver(SolverKind::kAdds, g, src, cfg);
  const auto b = run_solver(SolverKind::kAdds, g, src, cfg);
  EXPECT_DOUBLE_EQ(a.time_us, b.time_us);
  EXPECT_EQ(a.work.items_processed, b.work.items_processed);
  EXPECT_EQ(a.work.relaxations, b.work.relaxations);
  EXPECT_EQ(a.window_advances, b.window_advances);
  EXPECT_EQ(a.delta_history, b.delta_history);
}

TEST(AddsOptions, BaselinesAreDeterministic) {
  const auto g = test_graph();
  const VertexId src = pick_source(g);
  EngineConfig cfg;
  for (const SolverKind k : {SolverKind::kNf, SolverKind::kGunBf,
                             SolverKind::kNv, SolverKind::kCpuDs}) {
    const auto a = run_solver(k, g, src, cfg);
    const auto b = run_solver(k, g, src, cfg);
    EXPECT_DOUBLE_EQ(a.time_us, b.time_us) << a.solver;
    EXPECT_EQ(a.work.items_processed, b.work.items_processed) << a.solver;
    EXPECT_EQ(a.supersteps, b.supersteps) << a.solver;
  }
}

TEST(NearFarOptions, FilterAndLaunchKnobsPreserveDistances) {
  const auto g = test_graph();
  const VertexId src = pick_source(g);
  EngineConfig cfg;
  const auto oracle = dijkstra(g, src, &cfg.cpu);
  NearFarOptions opts;
  for (const bool dedup : {true, false}) {
    for (const double mult : {1.0, 3.0}) {
      opts.dedup_filter = dedup;
      opts.launch_multiplier = mult;
      const auto res = near_far(g, src, cfg.gpu, opts);
      EXPECT_TRUE(validate_distances(res, oracle).ok());
    }
  }
  // The dedup filter reduces work but never changes distances; launch
  // multiplier only adds time.
  opts.dedup_filter = true;
  opts.launch_multiplier = 1.0;
  const auto filtered = near_far(g, src, cfg.gpu, opts);
  opts.dedup_filter = false;
  const auto unfiltered = near_far(g, src, cfg.gpu, opts);
  EXPECT_LE(filtered.work.items_processed, unfiltered.work.items_processed);
  opts.launch_multiplier = 3.0;
  const auto deep = near_far(g, src, cfg.gpu, opts);
  EXPECT_GT(deep.time_us, unfiltered.time_us);
}

TEST(MachineModels, ScaledBoardsPreserveCorrectnessAndSlowDown) {
  const auto g = test_graph();
  const VertexId src = pick_source(g);
  EngineConfig full;
  EngineConfig eighth;
  eighth.gpu = GpuCostModel(GpuSpec::rtx2080ti().scaled(1.0 / 8.0));
  const auto oracle = dijkstra(g, src, &full.cpu);
  const auto fast = run_solver(SolverKind::kNf, g, src, full);
  const auto slow = run_solver(SolverKind::kNf, g, src, eighth);
  EXPECT_TRUE(validate_distances(slow, oracle).ok());
  EXPECT_GE(slow.time_us, fast.time_us);
}

TEST(MachineModels, Rtx3090IsNeverSlowerOnSaturatedWork) {
  // A dense, low-diameter graph saturates bandwidth; the 3090's extra
  // bandwidth must help (or at least not hurt).
  const auto g =
      make_erdos_renyi<uint32_t>(20000, 64, {WeightDist::kUniform, 100}, 3);
  const VertexId src = pick_source(g);
  EngineConfig ti;
  EngineConfig ga;
  ga.gpu = GpuCostModel(GpuSpec::rtx3090());
  const auto a = run_solver(SolverKind::kNf, g, src, ti);
  const auto b = run_solver(SolverKind::kNf, g, src, ga);
  EXPECT_LE(b.time_us, a.time_us * 1.02);
}

TEST(SolverRegistry, NamesRoundTrip) {
  for (const SolverKind k : all_solvers()) {
    const auto parsed = parse_solver(solver_name(k));
    ASSERT_TRUE(parsed.has_value()) << solver_name(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_solver("nope").has_value());
  EXPECT_EQ(gpu_baselines().size(), 4u);
}

}  // namespace
}  // namespace adds
