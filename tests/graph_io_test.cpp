// File format tests: Galois binary GR, DIMACS text, MatrixMarket.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/builder.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/gr_format.hpp"

namespace adds {
namespace {

class GraphIoTest : public testing::Test {
 protected:
  void SetUp() override { std::filesystem::create_directories(dir_); }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }
  const std::string dir_ = "test_tmp_io";
};

template <WeightType W>
void expect_graphs_equal(const CsrGraph<W>& a, const CsrGraph<W>& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.edge_begin(v), b.edge_begin(v));
    for (EdgeIndex e = a.edge_begin(v); e < a.edge_end(v); ++e) {
      EXPECT_EQ(a.edge_target(e), b.edge_target(e));
      EXPECT_EQ(a.edge_weight(e), b.edge_weight(e));
    }
  }
}

TEST_F(GraphIoTest, GrRoundTripInt) {
  const auto g =
      make_erdos_renyi<uint32_t>(500, 6.0, {WeightDist::kUniform, 100}, 11);
  write_gr(g, path("g.gr"));
  const auto g2 = read_gr<uint32_t>(path("g.gr"));
  expect_graphs_equal(g, g2);
}

TEST_F(GraphIoTest, GrRoundTripFloat) {
  const auto g =
      make_erdos_renyi<float>(300, 4.0, {WeightDist::kUniform, 10}, 13);
  write_gr(g, path("g.gr"));
  const auto g2 = read_gr<float>(path("g.gr"));
  expect_graphs_equal(g, g2);
}

TEST_F(GraphIoTest, GrRoundTripOddEdgeCount) {
  // Odd edge counts exercise the 4-byte padding word.
  GraphBuilder<uint32_t> b{3};
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 2);
  b.add_edge(1, 2, 3);
  const auto g = b.build();
  ASSERT_EQ(g.num_edges() % 2, 1u);
  write_gr(g, path("odd.gr"));
  expect_graphs_equal(g, read_gr<uint32_t>(path("odd.gr")));
}

TEST_F(GraphIoTest, GrMissingFileThrows) {
  EXPECT_THROW(read_gr<uint32_t>(path("nope.gr")), Error);
}

TEST_F(GraphIoTest, GrTruncatedThrows) {
  const auto g =
      make_erdos_renyi<uint32_t>(100, 4.0, {WeightDist::kUniform, 10}, 5);
  write_gr(g, path("t.gr"));
  // Truncate the file in the middle of the edge data.
  const auto full = std::filesystem::file_size(path("t.gr"));
  std::filesystem::resize_file(path("t.gr"), full - 32);
  EXPECT_THROW(read_gr<uint32_t>(path("t.gr")), Error);
}

TEST_F(GraphIoTest, GrBadVersionThrows) {
  std::ofstream out(path("bad.gr"), std::ios::binary);
  const uint64_t header[4] = {9, 4, 0, 0};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.close();
  EXPECT_THROW(read_gr<uint32_t>(path("bad.gr")), Error);
}

TEST_F(GraphIoTest, DimacsRoundTrip) {
  const auto g = make_grid_road<uint32_t>(6, 6, {WeightDist::kUniform, 50}, 3);
  write_dimacs(g, path("g.dimacs"));
  const auto g2 = read_dimacs<uint32_t>(path("g.dimacs"));
  expect_graphs_equal(g, g2);
}

TEST_F(GraphIoTest, DimacsParsesHandWritten) {
  std::ofstream out(path("hand.gr"));
  out << "c a comment line\n"
      << "p sp 3 2\n"
      << "a 1 2 10\n"
      << "a 2 3 20\n";
  out.close();
  const auto g = read_dimacs<uint32_t>(path("hand.gr"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge_target(g.edge_begin(0)), 1u);  // 1-based -> 0-based
  EXPECT_EQ(g.edge_weight(g.edge_begin(0)), 10u);
}

TEST_F(GraphIoTest, DimacsEdgeCountMismatchThrows) {
  std::ofstream out(path("bad.gr"));
  out << "p sp 3 5\na 1 2 10\n";
  out.close();
  EXPECT_THROW(read_dimacs<uint32_t>(path("bad.gr")), Error);
}

TEST_F(GraphIoTest, DimacsArcBeforeProblemThrows) {
  std::ofstream out(path("bad2.gr"));
  out << "a 1 2 10\n";
  out.close();
  EXPECT_THROW(read_dimacs<uint32_t>(path("bad2.gr")), Error);
}

TEST_F(GraphIoTest, DimacsOutOfRangeVertexThrows) {
  std::ofstream out(path("bad3.gr"));
  out << "p sp 2 1\na 1 9 10\n";
  out.close();
  EXPECT_THROW(read_dimacs<uint32_t>(path("bad3.gr")), Error);
}

TEST_F(GraphIoTest, MatrixMarketGeneral) {
  std::ofstream out(path("m.mtx"));
  out << "%%MatrixMarket matrix coordinate real general\n"
      << "% comment\n"
      << "3 3 3\n"
      << "1 2 5.0\n"
      << "2 3 -7.0\n"  // negative weights become positive
      << "1 1 9.0\n";  // self loop dropped
  out.close();
  const auto g = read_matrix_market<uint32_t>(path("m.mtx"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge_weight(g.edge_begin(0)), 5u);
  EXPECT_EQ(g.edge_weight(g.edge_begin(1)), 7u);
}

TEST_F(GraphIoTest, MatrixMarketSymmetricExpands) {
  std::ofstream out(path("s.mtx"));
  out << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "3 3 2\n"
      << "2 1 4.0\n"
      << "3 1 6.0\n";
  out.close();
  const auto g = read_matrix_market<uint32_t>(path("s.mtx"));
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST_F(GraphIoTest, MatrixMarketPatternGetsUnitWeights) {
  std::ofstream out(path("p.mtx"));
  out << "%%MatrixMarket matrix coordinate pattern general\n"
      << "2 2 1\n"
      << "1 2\n";
  out.close();
  const auto g = read_matrix_market<uint32_t>(path("p.mtx"));
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_weight(0), 1u);
}

TEST_F(GraphIoTest, MatrixMarketMissingBannerThrows) {
  std::ofstream out(path("b.mtx"));
  out << "3 3 0\n";
  out.close();
  EXPECT_THROW(read_matrix_market<uint32_t>(path("b.mtx")), Error);
}

}  // namespace
}  // namespace adds
