// Model-based randomized testing of the Bucket protocol: a reference FIFO
// model executes the same randomized operation sequence as the real bucket;
// every observable (scan bounds, read values, drained state, block
// accounting) must agree at every step. Catches protocol bugs that
// hand-written scenarios miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "queue/bucket.hpp"
#include "queue/wrap.hpp"
#include "util/rng.hpp"

namespace adds {
namespace {

constexpr uint32_t kBlockWords = 64;

BucketConfig model_cfg() {
  BucketConfig cfg;
  cfg.segment_words = 8;
  cfg.table_size = 4;  // tiny window: 256 items, frequent wrap
  return cfg;
}

/// Reference model: a plain FIFO plus the protocol counters.
struct ModelBucket {
  std::deque<uint32_t> published;  // written+published, not yet read
  uint64_t pushed = 0;             // == resv == wcc sum (fully published)
  uint64_t read = 0;
  uint64_t completed = 0;

  bool drained() const { return completed == pushed && read == pushed; }
};

class QueueModelTest : public testing::TestWithParam<uint64_t> {};

TEST_P(QueueModelTest, RandomOpSequencesAgreeWithModel) {
  Xoshiro256 rng(GetParam());
  BlockPool pool(8, kBlockWords);
  Bucket bucket(pool, model_cfg());
  ModelBucket model;
  uint32_t next_value = 1;

  // Items the real bucket has handed out (assigned, not completed) — kept
  // so "complete" steps can mirror the model.
  uint64_t outstanding = 0;
  uint32_t recycled_frontier = 0;  // completed prefix (indices)

  for (int step = 0; step < 20000; ++step) {
    switch (rng.next_below(5)) {
      case 0: {  // ensure capacity
        bucket.ensure_capacity(uint32_t(rng.next_range(1, 2 * kBlockWords)));
        break;
      }
      case 1: {  // push a small batch (bounded by writable capacity —
                 // push() would otherwise block this single thread forever)
        bucket.ensure_capacity(12);
        const uint32_t n = std::min(
            uint32_t(rng.next_range(1, 12)), bucket.writable_slack());
        for (uint32_t i = 0; i < n; ++i) {
          bucket.push(next_value);
          model.published.push_back(next_value);
          ++next_value;
          ++model.pushed;
        }
        break;
      }
      case 2: {  // scan + consume everything provably written
        const uint32_t bound = bucket.scan_written_bound();
        uint32_t count = 0;
        for (uint32_t idx = bucket.read_ptr(); wrap_lt(idx, bound); ++idx) {
          ASSERT_FALSE(model.published.empty());
          ASSERT_EQ(bucket.read_item(idx), model.published.front())
              << "FIFO order violated at step " << step;
          model.published.pop_front();
          ++model.read;
          ++count;
        }
        bucket.advance_read(bound);
        outstanding += count;
        break;
      }
      case 3: {  // complete some outstanding work
        if (outstanding == 0) break;
        const uint32_t k =
            uint32_t(rng.next_range(1, std::min<uint64_t>(outstanding, 16)));
        bucket.complete(k);
        model.completed += k;
        outstanding -= k;
        // Completion is FIFO in this single-threaded model, so the
        // completed prefix advances exactly by k.
        recycled_frontier += k;
        break;
      }
      case 4: {  // recycle below the completed prefix
        bucket.recycle_below(recycled_frontier);
        break;
      }
    }
    // Invariants after every step.
    ASSERT_EQ(bucket.pending_estimate(), model.published.size());
    ASSERT_EQ(bucket.drained(), model.drained()) << "step " << step;
    ASSERT_LE(bucket.mapped_blocks(), model_cfg().table_size);
    ASSERT_LE(pool.blocks_in_use(), pool.num_blocks());
  }

  // Drain to completion and verify final accounting.
  const uint32_t bound = bucket.scan_written_bound();
  uint32_t count = 0;
  for (uint32_t idx = bucket.read_ptr(); wrap_lt(idx, bound); ++idx) {
    ASSERT_EQ(bucket.read_item(idx), model.published.front());
    model.published.pop_front();
    ++count;
  }
  bucket.advance_read(bound);
  bucket.complete(count + uint32_t(outstanding));
  EXPECT_TRUE(bucket.drained());
  EXPECT_TRUE(model.published.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueModelTest,
                         testing::Values(1ull, 7ull, 42ull, 1234ull,
                                         99999ull),
                         [](const auto& param_info) {
                           return "seed_" +
                                  std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace adds
