// Concurrency stress tests for the SRMW bucket protocol: many real writer
// threads race against one manager thread. Every pushed value must be
// observed exactly once and in a state the scan proved fully written —
// whether it arrived through single-item pushes or write-combined batches.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "queue/bucket.hpp"
#include "queue/wrap.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

constexpr uint32_t kBlockWords = 256;

BucketConfig stress_cfg() {
  BucketConfig cfg;
  cfg.segment_words = 16;
  cfg.table_size = 8;  // window of 2048 items — forces wrap + recycling
  return cfg;
}

/// Writers push disjoint value ranges; the manager scans, consumes, marks
/// complete, and retires when drained. Returns per-value observation counts.
/// With `batched`, writers stage values locally and emit them through
/// push_batch with cycling batch sizes (1..23, crossing segment and block
/// boundaries) — the write-combined flush path under full contention.
std::vector<uint32_t> run_stress(uint32_t num_writers,
                                 uint32_t items_per_writer,
                                 bool batched = false) {
  BlockPool pool(16, kBlockWords);
  Bucket bucket(pool, stress_cfg());
  bucket.ensure_capacity(4 * kBlockWords);

  const uint32_t total = num_writers * items_per_writer;
  std::vector<uint32_t> seen(total, 0);
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> writers;
  writers.reserve(num_writers);
  for (uint32_t w = 0; w < num_writers; ++w) {
    writers.emplace_back([&, w] {
      if (batched) {
        std::vector<uint32_t> stage;
        uint32_t batch = 1 + (w % 23);
        for (uint32_t i = 0; i < items_per_writer; ++i) {
          stage.push_back(w * items_per_writer + i);
          if (stage.size() >= batch) {
            ASSERT_GT(bucket.push_batch(stage.data(),
                                        uint32_t(stage.size())),
                      0u);
            stage.clear();
            batch = 1 + (batch % 23);
            std::this_thread::yield();
          }
        }
        if (!stage.empty()) {
          ASSERT_GT(
              bucket.push_batch(stage.data(), uint32_t(stage.size())), 0u);
        }
      } else {
        for (uint32_t i = 0; i < items_per_writer; ++i) {
          bucket.push(w * items_per_writer + i);
          if ((i & 63) == 0) std::this_thread::yield();
        }
      }
    });
  }

  // Manager loop: keep capacity ahead of writers, consume published ranges.
  std::thread manager([&] {
    uint64_t consumed = 0;
    while (true) {
      bucket.ensure_capacity(2 * kBlockWords);
      const uint32_t bound = bucket.scan_written_bound();
      uint32_t count = 0;
      for (uint32_t idx = bucket.read_ptr(); wrap_lt(idx, bound); ++idx) {
        const uint32_t v = bucket.read_item(idx);
        ASSERT_LT(v, total);
        ++seen[v];
        ++count;
      }
      if (count > 0) {
        bucket.advance_read(bound);
        bucket.complete(count);
        consumed += count;
      }
      // The manager completes items as it consumes them, so everything
      // below read_ptr is recyclable immediately — this is what keeps
      // writers live across translation-window wrap.
      bucket.recycle_below(bucket.read_ptr());
      if (writers_done.load(std::memory_order_acquire) && consumed == total &&
          bucket.drained())
        break;
      std::this_thread::yield();
    }
  });

  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  manager.join();
  return seen;
}

class BucketStress : public testing::TestWithParam<uint32_t> {};

TEST_P(BucketStress, EveryItemSeenExactlyOnce) {
  const uint32_t writers = GetParam();
  const auto seen = run_stress(writers, 4000);
  for (size_t v = 0; v < seen.size(); ++v) {
    ASSERT_EQ(seen[v], 1u) << "value " << v << " seen " << seen[v]
                           << " times";
  }
}

INSTANTIATE_TEST_SUITE_P(WriterCounts, BucketStress,
                         testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& param_info) {
                           return "writers_" +
                                  std::to_string(param_info.param);
                         });

class BucketBatchStress : public testing::TestWithParam<uint32_t> {};

TEST_P(BucketBatchStress, BatchedWritersEveryItemSeenExactlyOnce) {
  const uint32_t writers = GetParam();
  const auto seen = run_stress(writers, 4000, /*batched=*/true);
  for (size_t v = 0; v < seen.size(); ++v) {
    ASSERT_EQ(seen[v], 1u) << "value " << v << " seen " << seen[v]
                           << " times";
  }
}

INSTANTIATE_TEST_SUITE_P(WriterCounts, BucketBatchStress,
                         testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& param_info) {
                           return "writers_" +
                                  std::to_string(param_info.param);
                         });

TEST(BucketConcurrent, WriterBlocksUntilManagerAllocates) {
  BlockPool pool(4, kBlockWords);
  Bucket bucket(pool, stress_cfg());
  // No capacity yet: a writer must spin in wait_allocated.
  std::atomic<bool> wrote{false};
  std::thread writer([&] {
    bucket.push(99);
    wrote.store(true, std::memory_order_release);
  });
  // Give the writer a moment: it must NOT complete.
  for (int i = 0; i < 1000 && !wrote.load(); ++i) std::this_thread::yield();
  EXPECT_FALSE(wrote.load());
  bucket.ensure_capacity(16);
  writer.join();
  EXPECT_TRUE(wrote.load());
  EXPECT_EQ(bucket.scan_written_bound(), 1u);
  EXPECT_EQ(bucket.read_item(0), 99u);
}

TEST(BucketConcurrent, ScanNeverExposesUnwrittenSlots) {
  // Writers publish batches with deliberate delay between reserve and
  // publish; the manager continuously scans and asserts that every exposed
  // slot carries the sentinel-complete value.
  BlockPool pool(16, kBlockWords);
  Bucket bucket(pool, stress_cfg());
  bucket.ensure_capacity(4 * kBlockWords);
  constexpr uint32_t kMarker = 0xC0FFEE;
  constexpr uint32_t kRounds = 1500;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (uint32_t i = 0; i < kRounds; ++i) {
      const uint32_t start = bucket.reserve(3);
      ASSERT_TRUE(bucket.wait_allocated(start + 3));
      // Write back-to-front so a premature scan would see gaps.
      bucket.write(start + 2, kMarker);
      std::this_thread::yield();
      bucket.write(start + 1, kMarker);
      bucket.write(start + 0, kMarker);
      bucket.publish(start, 3);
    }
    stop.store(true, std::memory_order_release);
  });

  uint64_t consumed = 0;
  while (!stop.load(std::memory_order_acquire) || consumed < 3 * kRounds) {
    bucket.ensure_capacity(2 * kBlockWords);
    const uint32_t bound = bucket.scan_written_bound();
    uint32_t count = 0;
    for (uint32_t idx = bucket.read_ptr(); wrap_lt(idx, bound); ++idx) {
      ASSERT_EQ(bucket.read_item(idx), kMarker)
          << "scan exposed an unwritten slot at " << idx;
      ++count;
    }
    if (count) {
      bucket.advance_read(bound);
      bucket.complete(count);
      consumed += count;
    }
    bucket.recycle_below(bucket.read_ptr());
  }
  writer.join();
  EXPECT_EQ(consumed, 3u * kRounds);
}

}  // namespace
}  // namespace adds
