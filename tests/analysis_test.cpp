// Graph analysis tests: BFS, reachability, pseudo-diameter, source
// selection, summaries, corpus integrity.
#include <gtest/gtest.h>

#include <set>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/corpus.hpp"
#include "graph/generators.hpp"

namespace adds {
namespace {

const WeightParams kUni{WeightDist::kUniform, 100};

TEST(Analysis, BfsHopsOnChain) {
  const auto g = make_chain<uint32_t>(10, kUni, 1);
  const auto hops = bfs_hops(g, 0);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(hops[v], v);
}

TEST(Analysis, BfsUnreachedMarked) {
  GraphBuilder<uint32_t> b{4};
  b.add_undirected_edge(0, 1, 1);
  const auto g = b.build();
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], kUnreachedHops);
  EXPECT_EQ(hops[3], kUnreachedHops);
  EXPECT_EQ(count_reachable(g, 0), 2u);
}

TEST(Analysis, PseudoDiameterChain) {
  const auto g = make_chain<uint32_t>(100, kUni, 1);
  // Double sweep finds the true diameter on a path even from the middle.
  EXPECT_EQ(pseudo_diameter(g, 50), 99u);
}

TEST(Analysis, PseudoDiameterGrid) {
  const auto g = make_grid_road<uint32_t>(10, 10, kUni, 1);
  const auto d = pseudo_diameter(g);
  EXPECT_GE(d, 18u);  // manhattan corner-to-corner
  EXPECT_LE(d, 19u);
}

TEST(Analysis, PickSourceFindsWellConnectedVertex) {
  // Vertex 0 is isolated; the rest form a clique.
  GraphBuilder<uint32_t> b{10};
  for (VertexId u = 1; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) b.add_undirected_edge(u, v, 1);
  const auto g = b.build();
  const VertexId s = pick_source(g);
  EXPECT_NE(s, 0u);
  EXPECT_EQ(count_reachable(g, s), 9u);
}

TEST(Analysis, SummarizeFields) {
  const auto g = make_grid_road<uint32_t>(8, 8, kUni, 2);
  const auto s = summarize(g);
  EXPECT_EQ(s.num_vertices, 64u);
  EXPECT_EQ(s.num_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(s.avg_degree, g.average_degree());
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_GT(s.avg_weight, 0.0);
  EXPECT_DOUBLE_EQ(s.reach_fraction, 1.0);
  EXPECT_GE(s.diameter, 14u);
}

TEST(Corpus, FullTierHas226Graphs) {
  const auto specs = corpus_specs(CorpusTier::kFull);
  EXPECT_EQ(specs.size(), 226u) << "the paper evaluates 226 graphs";
}

TEST(Corpus, NamesAreUnique) {
  const auto specs = corpus_specs(CorpusTier::kFull);
  std::set<std::string> names;
  for (const auto& s : specs) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate: " << s.name;
  }
}

TEST(Corpus, SeedsAreUnique) {
  const auto specs = corpus_specs(CorpusTier::kFull);
  std::set<uint64_t> seeds;
  for (const auto& s : specs) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), specs.size());
}

TEST(Corpus, TiersAreOrderedBySize) {
  EXPECT_LT(corpus_specs(CorpusTier::kSmoke).size(),
            corpus_specs(CorpusTier::kDefault).size());
  EXPECT_LT(corpus_specs(CorpusTier::kDefault).size(),
            corpus_specs(CorpusTier::kFull).size());
}

TEST(Corpus, SmokeGraphsAreSmall) {
  for (const auto& spec : corpus_specs(CorpusTier::kSmoke)) {
    const auto g = generate_graph<uint32_t>(spec);
    EXPECT_LE(g.num_vertices(), 10000u) << spec.name;
    EXPECT_GT(g.num_edges(), 0u) << spec.name;
  }
}

TEST(Corpus, NamedAnaloguesGenerate) {
  for (const auto& spec : {road_usa_like(), benelechi_like(), msdoor_like(),
                           rmat22_like(), cbig_like()}) {
    const auto g = generate_graph<uint32_t>(spec);
    EXPECT_GT(g.num_edges(), 100000u) << spec.name;
    const VertexId s = pick_source(g);
    EXPECT_GT(double(count_reachable(g, s)), 0.5 * double(g.num_vertices()))
        << spec.name;
  }
}

TEST(Corpus, ParseTier) {
  EXPECT_EQ(parse_tier("smoke"), CorpusTier::kSmoke);
  EXPECT_EQ(parse_tier("default"), CorpusTier::kDefault);
  EXPECT_EQ(parse_tier("full"), CorpusTier::kFull);
  EXPECT_THROW(parse_tier("bogus"), Error);
  EXPECT_STREQ(tier_name(CorpusTier::kFull), "full");
}

TEST(Corpus, MostGraphsMeetReachabilityCriterion) {
  // The paper requires >= 75% reachability; spot-check a sample of the
  // default tier (every 6th graph keeps this test fast).
  const auto specs = corpus_specs(CorpusTier::kDefault);
  size_t checked = 0, ok = 0;
  for (size_t i = 0; i < specs.size(); i += 6) {
    const auto g = generate_graph<uint32_t>(specs[i]);
    const VertexId s = pick_source(g);
    ++checked;
    if (double(count_reachable(g, s)) >= 0.70 * double(g.num_vertices()))
      ++ok;
  }
  EXPECT_GE(ok * 10, checked * 9)
      << "fewer than 90% of sampled corpus graphs meet reachability";
}

}  // namespace
}  // namespace adds
