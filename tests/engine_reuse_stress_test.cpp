// Warm-engine endurance under fault injection: one HostEngine serves many
// back-to-back queries while every injection site fires. A query may fail
// (that is what injections are for — the deadline acts as the watchdog),
// but every result that IS returned must match Dijkstra, and the engine
// must stay serviceable afterwards: a single warm engine is the unit the
// whole service's availability rests on.
#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/host_engine.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

using fault::FaultPlan;
using fault::FaultScope;
using fault::FaultSpec;
using fault::Site;

struct ReuseCase {
  Site site;
  FaultSpec spec;
};

std::string case_name(const testing::TestParamInfo<ReuseCase>& info) {
  std::string n = fault::site_name(info.param.site);
  for (char& c : n)
    if (c == '.' || c == '-') c = '_';
  return n;
}

class EngineReuseStress : public testing::TestWithParam<ReuseCase> {};

TEST_P(EngineReuseStress, WarmEngineSurvivesInjectedQueries) {
  const ReuseCase& c = GetParam();
  const auto g = make_grid_road<uint32_t>(30, 30,
                                          {WeightDist::kUniform, 1000}, 3);
  const auto oracle = dijkstra(g, VertexId{0});

  AddsHostOptions opts;
  opts.num_workers = 3;
  opts.block_words = 256;  // small blocks: more allocator traffic
  opts.combine_capacity = 16;
  HostEngine<uint32_t> engine(opts);

  // The per-query deadline plays the watchdog: a wedged attempt (e.g. a
  // dropped publication stalling termination) is cut loose and the engine
  // quiesces for the next query.
  QueryControl ctl;
  ctl.deadline_ms = 2000.0;

  constexpr int kQueries = 8;
  uint64_t fired = 0;
  int succeeded = 0, failed = 0;
  for (int i = 0; i < kQueries; ++i) {
    FaultPlan plan(uint64_t(i) + 1);
    plan.set(c.site, c.spec);
    {
      FaultScope scope(plan);
      try {
        const auto res = engine.solve(g, 0, ctl);
        ++succeeded;
        EXPECT_TRUE(validate_distances(res, oracle).ok())
            << fault::site_name(c.site) << " query " << i;
      } catch (const Error&) {
        ++failed;  // injected failure: allowed, engine must recover
      }
    }
    fired += plan.total_fires();
  }
  EXPECT_EQ(succeeded + failed, kQueries);
  // The schedule must have actually exercised the site across the seeds.
  EXPECT_GT(fired, 0u) << fault::site_name(c.site);

  // Endurance: after all injected queries — including any aborted ones —
  // the same warm engine answers a clean query correctly.
  const auto clean = engine.solve(g, 0);
  EXPECT_TRUE(validate_distances(clean, oracle).ok());
  EXPECT_EQ(engine.queries_served(), uint64_t(succeeded) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, EngineReuseStress,
    testing::Values(
        // Hard allocator fault: the attempt throws; reuse must recover.
        ReuseCase{Site::kPoolAllocFail, {0.3, ~0ull, 0}},
        // Widened write->publish window across reuse cycles.
        ReuseCase{Site::kPushDelay, {0.05, ~0ull, 200}},
        // Lost publication: wedges termination; the deadline frees the
        // engine and the next query must start from a clean reset.
        ReuseCase{Site::kPushDropBeforePublish, {0.05, ~0ull, 0}},
        // Manager preemption jitter.
        ReuseCase{Site::kManagerScanStall, {0.2, ~0ull, 1000}},
        // Late assignment-flag delivery.
        ReuseCase{Site::kAfDeliveryDelay, {0.1, ~0ull, 500}},
        // Worker preemption with an assignment in flight.
        ReuseCase{Site::kWorkerStall, {0.1, ~0ull, 1000}},
        // Dry-pool reports: the governor spills/replays, run after run.
        ReuseCase{Site::kPoolExhausted, {0.4, ~0ull, 0}}),
    case_name);

}  // namespace
}  // namespace adds
