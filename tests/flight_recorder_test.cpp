// FlightRecorder: the lock-free event ring behind the service postmortems.
// The contracts under test: events survive in order, the ring wraps by
// dropping the oldest, concurrent writers never lose or corrupt a
// published slot, and a dump racing the writers returns only well-formed
// events (torn slots skipped, never invented).
#include "util/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace adds {
namespace {

FlightEvent make_event(uint16_t kind, uint64_t b, uint32_t a = 0) {
  FlightEvent e;
  e.t_ms = float(b) * 0.5f;
  e.kind = kind;
  e.engine = uint16_t(b % 7);
  e.a = a;
  e.c = ~a;
  e.b = b;
  return e;
}

TEST(FlightRecorder, RoundTripsSingleEvent) {
  FlightRecorder rec(8);
  FlightEvent e = make_event(3, 42, 7);
  rec.record(e);
  const auto d = rec.dump();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].seq, 0u);
  EXPECT_EQ(d[0].ev.kind, 3);
  EXPECT_EQ(d[0].ev.engine, e.engine);
  EXPECT_EQ(d[0].ev.a, 7u);
  EXPECT_EQ(d[0].ev.c, ~7u);
  EXPECT_EQ(d[0].ev.b, 42u);
  EXPECT_FLOAT_EQ(d[0].ev.t_ms, e.t_ms);
}

TEST(FlightRecorder, EmptyDumpIsEmpty) {
  FlightRecorder rec(16);
  EXPECT_TRUE(rec.dump().empty());
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
}

TEST(FlightRecorder, DumpIsOldestFirstAndContiguous) {
  FlightRecorder rec(16);
  for (uint64_t i = 0; i < 10; ++i) rec.record(make_event(1, i));
  const auto d = rec.dump();
  ASSERT_EQ(d.size(), 10u);
  for (uint64_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].seq, i);
    EXPECT_EQ(d[i].ev.b, i);
  }
}

TEST(FlightRecorder, WrapKeepsTheMostRecentCapacityEvents) {
  FlightRecorder rec(8);
  const uint64_t n = 100;
  for (uint64_t i = 0; i < n; ++i) rec.record(make_event(1, i));
  EXPECT_EQ(rec.recorded(), n);
  const auto d = rec.dump();
  ASSERT_EQ(d.size(), rec.capacity());
  // The survivors are exactly the last `capacity` tickets, in order.
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].seq, n - rec.capacity() + i);
    EXPECT_EQ(d[i].ev.b, d[i].seq);
  }
}

// Many writers, no reader: every one of the last `capacity` tickets must
// survive with its payload intact (payload mirrors the writer id + local
// counter, so corruption or cross-slot mixing is detectable).
TEST(FlightRecorder, ConcurrentWritersLoseNothingWithinTheWindow) {
  FlightRecorder rec(1024);
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 2000;
  std::vector<std::thread> ts;
  for (int w = 0; w < kWriters; ++w) {
    ts.emplace_back([&rec, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        FlightEvent e;
        e.kind = uint16_t(w + 1);
        e.a = uint32_t(i);
        e.b = (uint64_t(w) << 32) | i;
        rec.record(e);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(rec.recorded(), uint64_t(kWriters) * kPerWriter);

  const auto d = rec.dump();
  ASSERT_EQ(d.size(), rec.capacity());  // quiescent: every slot readable
  std::set<uint64_t> seqs;
  for (const auto& s : d) {
    seqs.insert(s.seq);
    // Payload self-consistency: kind names the writer, b embeds (writer,
    // counter), a mirrors the counter.
    const uint64_t writer = s.ev.b >> 32;
    EXPECT_EQ(s.ev.kind, uint16_t(writer + 1));
    EXPECT_EQ(s.ev.a, uint32_t(s.ev.b));
    EXPECT_LT(writer, uint64_t(kWriters));
    EXPECT_LT(uint32_t(s.ev.b), kPerWriter);
  }
  EXPECT_EQ(seqs.size(), rec.capacity());  // all distinct tickets
}

// Writers and a dumping reader racing: dumps may be partial (torn slots
// skipped) but every returned event must be well-formed and every seq
// unique. This is the TSan target for the seqlock protocol.
TEST(FlightRecorder, DumpRacingWritersReturnsOnlyWellFormedEvents) {
  FlightRecorder rec(64);  // small ring -> constant lapping
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> ts;
  for (int w = 0; w < kWriters; ++w) {
    ts.emplace_back([&rec, &stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        FlightEvent e;
        e.kind = uint16_t(w + 1);
        e.a = uint32_t(i);
        e.b = (uint64_t(w) << 32) | (i & 0xffffffffu);
        rec.record(e);
        ++i;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    const auto d = rec.dump();
    std::set<uint64_t> seqs;
    for (const auto& s : d) {
      EXPECT_TRUE(seqs.insert(s.seq).second) << "duplicate seq in dump";
      const uint64_t writer = s.ev.b >> 32;
      EXPECT_LT(writer, uint64_t(kWriters));
      EXPECT_EQ(s.ev.kind, uint16_t(writer + 1));
      EXPECT_EQ(s.ev.a, uint32_t(s.ev.b));
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();
}

}  // namespace
}  // namespace adds
