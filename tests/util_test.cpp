// Unit tests for the utility substrate: RNG determinism, statistics,
// distribution bins, tables, CSV, and CLI parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace adds {
namespace {

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, SplitMixKnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroSameSeedSameStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDifferentSeedsDiverge) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(2);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.next_below(8)];
  for (int b = 0; b < 8; ++b) EXPECT_GT(seen[b], 700) << "bucket " << b;
}

TEST(Rng, NextRangeInclusive) {
  Xoshiro256 rng(3);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    lo |= v == 5;
    hi |= v == 8;
  }
  EXPECT_TRUE(lo && hi);
}

TEST(Rng, DoublesInUnitInterval) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, MixSeedChangesWithBothArguments) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(1, 3));
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 2));
  EXPECT_EQ(mix_seed(5, 9), mix_seed(5, 9));
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

TEST(Stats, RunningStatBasics) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
}

TEST(Stats, RunningStatMergeMatchesCombined) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, GeomeanKnownValues) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, SpeedupBinsMatchPaperLayout) {
  auto bins = BinnedDistribution::speedup_bins();
  ASSERT_EQ(bins.num_bins(), 7u);
  EXPECT_EQ(bins.label(0), "<0.9x");
  EXPECT_EQ(bins.label(1), "0.9x-1.1x");
  EXPECT_EQ(bins.label(6), ">=5x");
  bins.add(0.5);   // bin 0
  bins.add(1.0);   // bin 1
  bins.add(1.1);   // bin 2 (half-open: 1.1 belongs to [1.1, 1.5))
  bins.add(7.0);   // bin 6
  EXPECT_EQ(bins.count(0), 1u);
  EXPECT_EQ(bins.count(1), 1u);
  EXPECT_EQ(bins.count(2), 1u);
  EXPECT_EQ(bins.count(6), 1u);
  EXPECT_EQ(bins.total(), 4u);
  EXPECT_EQ(bins.percent(0), 25);
  EXPECT_EQ(bins.cell(0), "1 (25%)");
}

TEST(Stats, WorkBinsMatchPaperLayout) {
  auto bins = BinnedDistribution::work_bins();
  ASSERT_EQ(bins.num_bins(), 7u);
  EXPECT_EQ(bins.label(0), "<0.25x");
  EXPECT_EQ(bins.label(6), ">=3x");
}

TEST(Stats, Log2HistogramBins) {
  Log2Histogram h(8, 64);  // <8, 8-16, 16-32, 32-64, >=64
  ASSERT_EQ(h.num_bins(), 5u);
  h.add(1);
  h.add(8);
  h.add(15.9);
  h.add(32);
  h.add(100);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.label(0), "<8");
  EXPECT_EQ(h.label(1), "8-16");
  EXPECT_EQ(h.label(4), ">=64");
}

// ---------------------------------------------------------------------------
// Table / formatting
// ---------------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  TextTable t("demo");
  t.set_header({"a", "long-header"});
  t.add_row({"xxxx", "y"});
  const std::string s = t.render();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| a    | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| xxxx | y           |"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_ratio(2.934), "2.93x");
  EXPECT_EQ(fmt_time_us(999.0), "999.0 us");
  EXPECT_EQ(fmt_time_us(1500.0), "1.50 ms");
  EXPECT_EQ(fmt_time_us(2.5e6), "2.500 s");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(12), "12");
  EXPECT_EQ(fmt_count(123), "123");
  EXPECT_EQ(fmt_count(1234), "1,234");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WritesFileWithDirectories) {
  const std::string path = "test_tmp/csv/deep/file.csv";
  {
    CsvWriter w(path);
    w.write_header({"a", "b"});
    w.write_row({"1", "x,y"});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,\"x,y\"");
  std::filesystem::remove_all("test_tmp");
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

TEST(Cli, ParsesFlagsAndOptions) {
  CliParser cli("prog", "desc");
  cli.add_flag("verbose", "be loud");
  cli.add_option("count", "how many", "5");
  cli.add_option("name", "a name", "");
  const char* argv[] = {"prog", "--verbose", "--count=12", "--name", "bob",
                        "positional"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_EQ(cli.integer("count"), 12);
  EXPECT_EQ(cli.str("name"), "bob");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("prog", "desc");
  cli.add_option("count", "how many", "5");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.integer("count"), 5);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("prog", "desc");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("prog", "desc");
  cli.add_option("count", "how many", "5");
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, NonNumericValueThrows) {
  CliParser cli("prog", "desc");
  cli.add_option("count", "how many", "5");
  const char* argv[] = {"prog", "--count=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.integer("count"), Error);
  EXPECT_THROW(cli.real("count"), Error);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "desc");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RealValues) {
  CliParser cli("prog", "desc");
  cli.add_option("scale", "factor", "0.25");
  const char* argv[] = {"prog", "--scale=1.5"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.real("scale"), 1.5);
}

}  // namespace
}  // namespace adds
