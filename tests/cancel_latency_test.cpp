// Cancellation-latency regression tests: with the event-driven wakeup
// path, a cancel against a wedged adds-host run — workers parked on their
// assignment flags, nothing published — must be observed and fully torn
// down in single-digit milliseconds. The old capped-backoff poll put a
// ~128us floor under *each* wait in the teardown chain; the budget here
// (5ms) has slack for scheduler noise but fails if any wait regresses to
// safety-tick polling (~1ms per hop) or worse.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/resilience.hpp"
#include "graph/generators.hpp"
#include "sssp/adds.hpp"
#include "util/event.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

constexpr double kBudgetMs = 5.0;

TEST(CancelLatency, ParkedRunCancelsWithinBudget) {
  // Drop the very first push (the source seed) before publication: the
  // reservation keeps the queue logically non-empty so the run can never
  // terminate, but nothing is ever published, so every worker parks on its
  // assignment flag and the manager finds no work — the deepest-idle state
  // the engine has. A cancel must cut through it.
  const auto g =
      make_grid_road<uint32_t>(40, 40, {WeightDist::kUniform, 1000}, 3);
  fault::FaultPlan plan(1);
  plan.set(fault::Site::kPushDropBeforePublish, {1.0, 1, 0});
  fault::FaultScope scope(plan);

  std::atomic<bool> cancel{false};
  Event cancel_event;
  AddsHostOptions opts;
  opts.num_workers = 4;
  opts.cancel = &cancel;
  opts.cancel_event = &cancel_event;

  std::atomic<bool> threw{false};
  std::thread run([&] {
    EXPECT_THROW(adds_host(g, 0, opts), Error);
    threw.store(true, std::memory_order_release);
  });
  // Let the run reach the parked steady state.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_FALSE(threw.load(std::memory_order_acquire));

  const auto t0 = Clock::now();
  cancel.store(true, std::memory_order_release);
  cancel_event.notify_all();
  run.join();  // returns only after full teardown (workers joined)
  const double latency = ms_since(t0);
  EXPECT_TRUE(threw.load(std::memory_order_acquire));
  EXPECT_LT(latency, kBudgetMs) << "cancel->teardown took " << latency
                                << " ms";
}

TEST(CancelLatency, WatchdogRecordsCancelLatency) {
  // Same wedge under the guarded runtime: the watchdog fires, notifies the
  // engine's cancel event, and the attempt record must carry a measured
  // fire->teardown latency within the same budget.
  const auto g =
      make_grid_road<uint32_t>(40, 40, {WeightDist::kUniform, 1000}, 3);
  fault::FaultPlan plan(1);
  plan.set(fault::Site::kPushDropBeforePublish, {1.0, 1, 0});
  fault::FaultScope scope(plan);

  EngineConfig cfg;
  cfg.adds_host.num_workers = 4;
  ResiliencePolicy policy;
  policy.max_attempts_per_engine = 1;
  policy.watchdog_min_ms = 150.0;  // fire quickly; the run is wedged anyway
  policy.retry_backoff_ms = 1.0;

  const auto res =
      run_solver_guarded(SolverKind::kAddsHost, g, 0, cfg, policy);
  ASSERT_NE(res.resilience, nullptr);
  const RunReport& rep = *res.resilience;
  ASSERT_GE(rep.attempts.size(), 1u);
  const AttemptRecord& first = rep.attempts[0];
  EXPECT_EQ(first.outcome, AttemptOutcome::kWatchdogAbort);
  EXPECT_TRUE(first.watchdog_fired);
  EXPECT_GE(first.cancel_latency_ms, 0.0);
  EXPECT_LT(first.cancel_latency_ms, kBudgetMs);
  // The wedged engine was cancelled; the chain still produced a result.
  EXPECT_TRUE(rep.ok);
  EXPECT_NE(rep.final_solver, "adds-host");
}

}  // namespace
}  // namespace adds
