// Cross-tenant blast-radius containment: a tenant whose queries wedge
// engines, trip its circuit breaker, or flood its admission quota damages
// ONLY itself — every other tenant stays kHealthy with zero sheds and a
// closed breaker, and its queries keep validating against its own oracle.
// These are the invariants docs/RESILIENCE.md promises; this file and the
// soak suite's --tenant-chaos phase are their enforcement.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "service/sssp_service.hpp"
#include "service/supervisor.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

std::shared_ptr<const IntGraph> shared_grid(uint64_t seed, uint32_t side) {
  return std::make_shared<const IntGraph>(
      make_grid_road<uint32_t>(side, side, {WeightDist::kUniform, 200}, seed));
}

bool dump_has(const std::vector<StampedFlightEvent>& events, FlightKind k) {
  for (const auto& e : events)
    if (e.ev.kind == uint16_t(k)) return true;
  return false;
}

template <typename Pred>
bool poll_until(Pred&& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

const TenantStatus* tenant_row(const ServiceReport& rep, uint64_t fp) {
  for (const auto& t : rep.tenants)
    if (t.graph_fp == fp) return &t;
  return nullptr;
}

// ---- wedge containment -------------------------------------------------------

TEST(TenantIsolation, WedgingTenantLeavesOthersHealthyAndServing) {
  const auto ga = shared_grid(1, 20);
  const auto gb = shared_grid(2, 20);
  const uint64_t fp_a = graph_fingerprint(*ga);
  const uint64_t fp_b = graph_fingerprint(*gb);
  const auto oracle_b = dijkstra(*gb, VertexId{0});

  ServiceConfig cfg;
  cfg.num_engines = 2;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;
  cfg.supervisor.tick_ms = 1.0;
  cfg.supervisor.wedge_ms = 100.0;
  cfg.supervisor.quarantine_after_errors = 1;
  cfg.tenant.engine_share = 0.5;  // A may hold at most 1 of the 2 slots
  cfg.tenant.breaker_open_after = 3;
  cfg.tenant.breaker_cooldown_ms = 60000.0;  // no half-open inside this test
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(ga);
  ASSERT_EQ(svc.publish_graph(gb), fp_b);

  // Chaos scoped to tenant A: every solve of A's graph wedges; B's solves
  // (and rebuild probes, which run in domain 0) never see the plan.
  fault::FaultPlan plan(7);
  plan.set(fault::Site::kPushDropBeforePublish, {1.0, ~0ull, 0});
  plan.restrict_domain(fp_a);
  fault::FaultScope scope(plan);

  QueryOptions qa, qb;
  qa.graph_fp = fp_a;
  qa.bypass_cache = true;
  qb.graph_fp = fp_b;
  qb.bypass_cache = true;

  // Drive A into its breaker while B keeps serving. B is checked BETWEEN
  // every A failure — containment during the blast, not just after it.
  uint32_t a_failures = 0;
  for (int round = 0; round < 3; ++round) {
    auto fut = svc.submit(0, qa);
    for (int i = 0; i < 3; ++i) {
      const auto out_b = svc.submit(0, qb).get();
      ASSERT_EQ(out_b.status, QueryStatus::kOk) << out_b.error;
      EXPECT_TRUE(validate_distances(*out_b.result, oracle_b).ok());
      const auto mid_rep = svc.report();
      const auto* row_b = tenant_row(mid_rep, fp_b);
      ASSERT_NE(row_b, nullptr);
      EXPECT_EQ(row_b->health, ServiceHealth::kHealthy)
          << "tenant B degraded while tenant A wedged";
    }
    const auto out_a = fut.get();
    ASSERT_EQ(out_a.status, QueryStatus::kFailed) << out_a.error;
    ++a_failures;
    // The poisoned slot must finish rebuilding before the next round so
    // A's next query has capacity inside its bulkhead share.
    ASSERT_TRUE(poll_until(
        [&] { return svc.report().engines_available == 2; }, 30000))
        << "wedged slot never returned";
  }

  // Third consecutive failure opened A's breaker: typed rejection now.
  const auto rejected = svc.submit(0, qa).get();
  EXPECT_EQ(rejected.status, QueryStatus::kTenantQuarantined);

  const auto rep = svc.report();
  const auto* row_a = tenant_row(rep, fp_a);
  const auto* row_b = tenant_row(rep, fp_b);
  ASSERT_NE(row_a, nullptr);
  ASSERT_NE(row_b, nullptr);
  EXPECT_EQ(row_a->breaker, BreakerState::kOpen);
  EXPECT_GE(row_a->breaker_opens, 1u);
  EXPECT_EQ(row_a->failed, a_failures);
  EXPECT_GE(row_a->quarantined, 1u);
  // The blast radius: B took NO typed damage of any kind.
  EXPECT_EQ(row_b->health, ServiceHealth::kHealthy);
  EXPECT_EQ(row_b->breaker, BreakerState::kClosed);
  EXPECT_EQ(row_b->failed, 0u);
  EXPECT_EQ(row_b->shed, 0u);
  EXPECT_EQ(row_b->quarantined, 0u);
  EXPECT_GE(rep.quarantines, 1u);  // A really did poison slots
  EXPECT_EQ(rep.tenant_quarantined, 1u);

  const auto events = svc.flight_dump();
  EXPECT_TRUE(dump_has(events, FlightKind::kBreakerOpen));
  EXPECT_TRUE(dump_has(events, FlightKind::kQueryQuarantined));
}

// ---- breaker recovery --------------------------------------------------------

TEST(TenantIsolation, BreakerHalfOpensAfterCooldownAndClosesOnSuccess) {
  const auto g = shared_grid(3, 20);
  const uint64_t fp = graph_fingerprint(*g);
  const auto oracle = dijkstra(*g, VertexId{0});

  ServiceConfig cfg;
  cfg.num_engines = 2;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;
  cfg.supervisor.tick_ms = 1.0;
  cfg.supervisor.wedge_ms = 100.0;
  cfg.supervisor.quarantine_after_errors = 1;
  cfg.tenant.breaker_open_after = 1;      // one failure opens
  cfg.tenant.breaker_cooldown_ms = 100.0; // then a short quarantine
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  QueryOptions q;
  q.bypass_cache = true;

  {
    // Exactly one wedge: the fault is spent after the first solve, so the
    // half-open trial later proves the tenant genuinely recovered.
    fault::FaultPlan plan(11);
    plan.set(fault::Site::kPushDropBeforePublish, {1.0, /*max_fires=*/1, 0});
    plan.restrict_domain(fp);
    fault::FaultScope scope(plan);
    const auto failed = svc.submit(0, q).get();
    ASSERT_EQ(failed.status, QueryStatus::kFailed) << failed.error;
  }

  // Open: rejects typed while the cooldown runs.
  const auto rejected = svc.submit(0, q).get();
  EXPECT_EQ(rejected.status, QueryStatus::kTenantQuarantined);

  // After the cooldown the next submit is the half-open trial; it succeeds
  // and closes the breaker for everything that follows.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto trial = svc.submit(0, q).get();
  ASSERT_EQ(trial.status, QueryStatus::kOk) << trial.error;
  EXPECT_TRUE(validate_distances(*trial.result, oracle).ok());

  const auto rep = svc.report();
  const auto* row = tenant_row(rep, fp);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->breaker, BreakerState::kClosed);
  EXPECT_EQ(row->breaker_opens, 1u);
  EXPECT_EQ(row->breaker_failures, 0u);

  const auto out = svc.submit(0, q).get();
  EXPECT_EQ(out.status, QueryStatus::kOk);

  const auto events = svc.flight_dump();
  EXPECT_TRUE(dump_has(events, FlightKind::kBreakerOpen));
  EXPECT_TRUE(dump_has(events, FlightKind::kBreakerHalfOpen));
  EXPECT_TRUE(dump_has(events, FlightKind::kBreakerClosed));
}

// ---- admission quota ----------------------------------------------------------

TEST(TenantIsolation, QuotaFloodShedsOnlyTheFloodingTenant) {
  const auto ga = shared_grid(4, 60);  // big enough that solves queue up
  const auto gb = shared_grid(5, 12);
  const uint64_t fp_a = graph_fingerprint(*ga);
  const uint64_t fp_b = graph_fingerprint(*gb);

  ServiceConfig cfg;
  cfg.num_engines = 1;
  cfg.engine.num_workers = 2;
  cfg.max_queue_depth = 8;
  cfg.tenant.queue_share = 0.25;  // each tenant may queue at most 2
  cfg.guarded_fallback = false;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(ga);
  ASSERT_EQ(svc.publish_graph(gb), fp_b);

  QueryOptions qa, qb;
  qa.graph_fp = fp_a;
  qa.bypass_cache = true;
  qb.graph_fp = fp_b;
  qb.bypass_cache = true;

  // Flood A far past its quota in one burst.
  std::vector<std::future<QueryOutcome<uint32_t>>> futs;
  for (int i = 0; i < 12; ++i) futs.push_back(svc.submit(0, qa));

  // B submits into the SAME (globally non-full) queue: its quota is its
  // own, so A's flood cannot starve it of admission.
  for (int i = 0; i < 3; ++i) {
    const auto out = svc.submit(0, qb).get();
    EXPECT_EQ(out.status, QueryStatus::kOk) << out.error;
  }

  uint32_t a_ok = 0, a_shed = 0;
  for (auto& f : futs) {
    const auto out = f.get();
    if (out.status == QueryStatus::kOk) {
      ++a_ok;
    } else {
      ASSERT_EQ(out.status, QueryStatus::kOverloaded) << out.error;
      EXPECT_NE(out.error.find("quota"), std::string::npos) << out.error;
      ++a_shed;
    }
  }
  EXPECT_GE(a_ok, 1u);
  EXPECT_GE(a_shed, 1u) << "the flood should overrun a quota of 2";

  const auto rep = svc.report();
  const auto* row_a = tenant_row(rep, fp_a);
  const auto* row_b = tenant_row(rep, fp_b);
  ASSERT_NE(row_a, nullptr);
  ASSERT_NE(row_b, nullptr);
  EXPECT_EQ(row_a->queue_quota, 2u);
  EXPECT_EQ(row_a->shed, a_shed);
  EXPECT_EQ(row_b->shed, 0u);
  EXPECT_EQ(row_b->completed, 3u);
  EXPECT_TRUE(dump_has(svc.flight_dump(), FlightKind::kTenantShed));
}

// ---- report plumbing -----------------------------------------------------------

TEST(TenantIsolation, ReportCarriesPerTenantCacheSliceAndBindings) {
  const auto ga = shared_grid(6, 12);
  const auto gb = shared_grid(7, 12);
  const uint64_t fp_a = graph_fingerprint(*ga);
  const uint64_t fp_b = graph_fingerprint(*gb);

  ServiceConfig cfg;
  cfg.num_engines = 1;
  cfg.engine.num_workers = 2;
  cfg.tenant.cache_entries_per_tenant = 2;
  cfg.guarded_fallback = false;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(ga);
  ASSERT_EQ(svc.publish_graph(gb), fp_b);
  EXPECT_EQ(svc.resident_graphs().size(), 2u);

  QueryOptions qa, qb;
  qa.graph_fp = fp_a;
  qb.graph_fp = fp_b;
  // A: 4 distinct sources (cap 2 -> A recycles its own entries), then one
  // hit. B: one entry, which A's overflow must NOT evict.
  svc.query(0, qb);
  for (VertexId s = 0; s < 4; ++s) svc.query(s, qa);
  svc.query(3, qa);  // hit (most recent survives the per-tenant cap)
  const auto hit_b = svc.query(0, qb);
  EXPECT_TRUE(hit_b.cache_hit) << "A's overflow evicted B's entry";

  const auto rep = svc.report();
  const auto* row_a = tenant_row(rep, fp_a);
  const auto* row_b = tenant_row(rep, fp_b);
  ASSERT_NE(row_a, nullptr);
  ASSERT_NE(row_b, nullptr);
  EXPECT_LE(row_a->cache_entries, 2u);
  EXPECT_GE(row_a->cache_hits, 1u);
  EXPECT_EQ(row_a->cache_misses, 4u);
  EXPECT_EQ(row_b->cache_entries, 1u);
  EXPECT_GE(row_b->cache_hits, 1u);
  EXPECT_TRUE(row_b->is_default == false && row_a->is_default == true);
  // The single engine served both tenants: the keyed binding switched.
  EXPECT_GE(rep.engine_rebinds, 1u);
  ASSERT_EQ(rep.engine_status.size(), 1u);
  EXPECT_NE(rep.engine_status[0].bound_fp, 0u);
}

}  // namespace
}  // namespace adds
