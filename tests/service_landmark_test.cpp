// Landmark layer wired through SsspService: publish-time table builds on
// the rebuilder, point-to-point routing at submit (oracle-exact / ALT /
// typed engine fallback), the satellite cache-key fold of
// QueryOptions::target, delta lineage (warm table repair, typed rebuild
// fallback), asymmetric graphs typed kUnsupported, and injected
// landmark.build faults that fail typed — never a wrong distance.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "oracle_util.hpp"
#include "service/result_cache.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

using IntGraph = CsrGraph<uint32_t>;

IntGraph test_graph(uint64_t seed = 1) {
  return make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 200}, seed);
}

ServiceConfig small_service(uint32_t engines = 1) {
  ServiceConfig cfg;
  cfg.num_engines = engines;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;
  return cfg;
}

/// Mirrors every change so the child generation keeps the symmetry the
/// landmark layer requires.
GraphDelta<uint32_t> symmetric_delta(const IntGraph& g, size_t weight_changes,
                                     size_t inserts, uint64_t seed) {
  const GraphDelta<uint32_t> base =
      oracle::make_test_delta(g, weight_changes, inserts, seed);
  GraphDelta<uint32_t> out;
  for (const EdgeChange<uint32_t>& c : base.changes) {
    out.changes.push_back(c);
    out.changes.push_back(EdgeChange<uint32_t>{c.dst, c.src, c.weight});
  }
  return out;
}

LandmarkTableStatus table_status(SsspService<uint32_t>& svc, uint64_t fp) {
  for (const auto& ts : svc.report().tenants)
    if (ts.graph_fp == fp) return ts.oracle_status;
  return LandmarkTableStatus::kNone;
}

bool wait_table(SsspService<uint32_t>& svc, uint64_t fp,
                LandmarkTableStatus want, int budget_ms = 15000) {
  for (int waited = 0; waited < budget_ms; waited += 5) {
    if (table_status(svc, fp) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return table_status(svc, fp) == want;
}

TEST(ServiceLandmark, P2pServedWithoutEnginesMatchesDijkstra) {
  const auto g = test_graph();
  SsspService<uint32_t> svc(small_service());
  const uint64_t fp = svc.set_graph(g);
  ASSERT_TRUE(wait_table(svc, fp, LandmarkTableStatus::kReady));

  const std::vector<VertexId> sources = {0, 7, 123, 399};
  const std::vector<VertexId> targets = {0, 1, 57, 200, 398};
  uint64_t queries = 0;
  for (const VertexId s : sources) {
    const auto oracle = dijkstra(g, s);
    for (const VertexId t : targets) {
      QueryOptions opts;
      opts.target = t;
      const auto q = svc.query(s, opts);
      ++queries;
      ASSERT_TRUE(q.p2p_serve == P2pServe::kOracleExact ||
                  q.p2p_serve == P2pServe::kAltSearch)
          << "pair (" << s << "," << t << ") served "
          << p2p_serve_name(q.p2p_serve);
      EXPECT_EQ(q.result, nullptr) << "oracle serves carry no full tree";
      ASSERT_TRUE(q.p2p_reachable);
      EXPECT_EQ(q.p2p_distance, oracle.dist[t])
          << "pair (" << s << "," << t << ")";
    }
  }

  // Every answer came from the table or the submit-thread A* — the engine
  // fleet never ran a query.
  const auto rep = svc.report();
  EXPECT_EQ(rep.engine_queries, 0u);
  EXPECT_EQ(rep.oracle_exact_hits + rep.alt_searches, queries);
  EXPECT_EQ(rep.p2p_engine_fallbacks, 0u);
  EXPECT_GT(rep.oracle_exact_hits, 0u);  // s==t and landmark pairs are tight
  EXPECT_EQ(rep.landmark_builds_ok, 1u);
  EXPECT_EQ(rep.landmark_tables, 1u);
  bool found = false;
  for (const auto& ts : rep.tenants) {
    if (ts.graph_fp != fp) continue;
    found = true;
    EXPECT_EQ(ts.oracle_status, LandmarkTableStatus::kReady);
    EXPECT_GT(ts.oracle_landmarks, 0u);
    EXPECT_EQ(ts.oracle_exact_hits + ts.alt_searches, queries);
  }
  EXPECT_TRUE(found);
}

TEST(ServiceLandmark, DisabledLayerFallsThroughToEngineTyped) {
  const auto g = test_graph(3);
  auto cfg = small_service();
  cfg.landmark.enabled = false;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  const VertexId s = 5, t = 333;
  const auto oracle = dijkstra(g, s);
  QueryOptions opts;
  opts.target = t;
  const auto q = svc.query(s, opts);
  EXPECT_EQ(q.p2p_serve, P2pServe::kEngineFallback);
  ASSERT_NE(q.result, nullptr);  // the fallback carries the full tree
  EXPECT_TRUE(q.p2p_reachable);
  EXPECT_EQ(q.p2p_distance, oracle.dist[t]);

  const auto rep = svc.report();
  EXPECT_EQ(rep.p2p_engine_fallbacks, 1u);
  EXPECT_EQ(rep.landmark_builds_ok, 0u);
  EXPECT_EQ(rep.landmark_tables, 0u);

  // A target out of range is caller misuse, same contract as the source.
  QueryOptions bad;
  bad.target = g.num_vertices();
  EXPECT_THROW(svc.query(0, bad), Error);
}

// Satellite regression: QueryOptions::target is folded into the cache
// digest, so a p2p fallback's tree and a plain full-SSSP tree from the
// same (graph, source) can never serve each other's keys.
TEST(ServiceLandmark, CacheKeyFoldsTargetIntoDigest) {
  EXPECT_EQ(p2p_digest(0x1234u, kInvalidVertex), 0x1234u);
  EXPECT_NE(p2p_digest(0x1234u, 7), 0x1234u);
  EXPECT_NE(p2p_digest(0x1234u, 7), p2p_digest(0x1234u, 8));
  EXPECT_NE(p2p_digest(0x1234u, 7), p2p_digest(0x4321u, 7));

  const auto g = test_graph(5);
  auto cfg = small_service();
  cfg.landmark.enabled = false;  // force every p2p through the engine path
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);
  const VertexId s = 2;
  const auto oracle = dijkstra(g, s);

  const auto full = svc.query(s);
  EXPECT_FALSE(full.cache_hit);

  QueryOptions p2p;
  p2p.target = 111;
  const auto first = svc.query(s, p2p);
  EXPECT_FALSE(first.cache_hit) << "p2p must not alias the full-SSSP key";
  EXPECT_EQ(first.p2p_distance, oracle.dist[111]);

  const auto twin = svc.query(s, p2p);
  EXPECT_TRUE(twin.cache_hit) << "identical p2p queries share their key";
  EXPECT_EQ(twin.p2p_serve, P2pServe::kEngineFallback);
  EXPECT_EQ(twin.p2p_distance, oracle.dist[111]);

  QueryOptions other;
  other.target = 112;
  EXPECT_FALSE(svc.query(s, other).cache_hit)
      << "distinct targets must not collide";
  EXPECT_TRUE(svc.query(s).cache_hit)
      << "the full-SSSP entry is still keyed on the base digest";
}

TEST(ServiceLandmark, DeltaLineageWarmRepairsTable) {
  const auto g = test_graph(7);
  SsspService<uint32_t> svc(small_service());
  const uint64_t parent_fp = svc.set_graph(g);
  ASSERT_TRUE(wait_table(svc, parent_fp, LandmarkTableStatus::kReady));

  const auto delta = symmetric_delta(g, 8, 2, 11);
  const auto out = svc.apply_delta(0, delta);
  ASSERT_NE(out.child_fp, parent_fp);
  ASSERT_TRUE(wait_table(svc, out.child_fp, LandmarkTableStatus::kReady));

  const auto rep = svc.report();
  EXPECT_EQ(rep.landmark_repairs_ok, 1u);
  EXPECT_EQ(rep.landmark_rebuild_fallbacks, 0u);
  EXPECT_EQ(rep.landmark_build_failures, 0u);
  // The parent generation retired along with its table: one resident
  // tenant, one resident table.
  EXPECT_EQ(rep.landmark_tables, 1u);
  ASSERT_EQ(svc.resident_graphs().size(), 1u);
  EXPECT_EQ(svc.resident_graphs()[0], out.child_fp);

  // Child p2p answers are exact against a cold Dijkstra on the child.
  const auto child = apply_delta(g, delta).graph;
  const VertexId s = 9;
  const auto oracle = dijkstra(child, s);
  for (const VertexId t : {VertexId(0), VertexId(111), VertexId(399)}) {
    QueryOptions opts;
    opts.target = t;
    const auto q = svc.query(s, opts);
    ASSERT_TRUE(q.p2p_serve == P2pServe::kOracleExact ||
                q.p2p_serve == P2pServe::kAltSearch);
    EXPECT_EQ(q.p2p_distance, oracle.dist[t]) << "target " << t;
  }
}

TEST(ServiceLandmark, RepairFaultFallsBackToTypedColdRebuild) {
  const auto g = test_graph(9);
  SsspService<uint32_t> svc(small_service());
  const uint64_t parent_fp = svc.set_graph(g);
  ASSERT_TRUE(wait_table(svc, parent_fp, LandmarkTableStatus::kReady));

  // One fault: the warm repair dies, the typed cold rebuild succeeds.
  fault::FaultPlan plan(5);
  plan.set(fault::Site::kLandmarkBuild, {1.0, 1, 0});
  const auto delta = symmetric_delta(g, 6, 1, 13);
  DeltaOutcome out;
  {
    fault::FaultScope scope(plan);
    out = svc.apply_delta(0, delta);
    ASSERT_TRUE(wait_table(svc, out.child_fp, LandmarkTableStatus::kReady));
  }
  EXPECT_GT(plan.fires(fault::Site::kLandmarkBuild), 0u);

  const auto rep = svc.report();
  EXPECT_EQ(rep.landmark_rebuild_fallbacks, 1u);
  EXPECT_EQ(rep.landmark_repairs_ok, 0u);
  EXPECT_EQ(rep.landmark_builds_ok, 2u);  // publish build + cold rebuild
  uint64_t fallback_events = 0;
  for (const auto& e : svc.flight_dump())
    if (FlightKind(e.ev.kind) == FlightKind::kTableRebuildFallback)
      ++fallback_events;
  EXPECT_EQ(fallback_events, 1u);

  // The rebuilt table still serves exact answers.
  const auto child = apply_delta(g, delta).graph;
  const auto oracle = dijkstra(child, 4);
  QueryOptions opts;
  opts.target = 250;
  const auto q = svc.query(4, opts);
  ASSERT_TRUE(q.p2p_serve == P2pServe::kOracleExact ||
              q.p2p_serve == P2pServe::kAltSearch);
  EXPECT_EQ(q.p2p_distance, oracle.dist[250]);
}

TEST(ServiceLandmark, BuildFaultIsTypedAndQueriesRideTheEnginePath) {
  const auto g = test_graph(11);
  SsspService<uint32_t> svc(small_service());

  fault::FaultPlan plan(3);
  plan.set(fault::Site::kLandmarkBuild, {1.0, ~0ull, 0});
  uint64_t fp = 0;
  {
    fault::FaultScope scope(plan);
    fp = svc.set_graph(g);
    ASSERT_TRUE(wait_table(svc, fp, LandmarkTableStatus::kFailed));
  }
  EXPECT_GT(plan.fires(fault::Site::kLandmarkBuild), 0u);

  const auto rep = svc.report();
  EXPECT_EQ(rep.landmark_build_failures, 1u);
  EXPECT_EQ(rep.landmark_builds_ok, 0u);
  EXPECT_EQ(rep.landmark_tables, 0u);

  // The failure is contained to the acceleration layer: p2p queries are
  // served exact through an engine, typed kEngineFallback.
  const auto oracle = dijkstra(g, 1);
  QueryOptions opts;
  opts.target = 300;
  const auto q = svc.query(1, opts);
  EXPECT_EQ(q.p2p_serve, P2pServe::kEngineFallback);
  EXPECT_EQ(q.p2p_distance, oracle.dist[300]);
  EXPECT_EQ(svc.report().p2p_engine_fallbacks, 1u);
}

TEST(ServiceLandmark, AsymmetricGraphIsTypedUnsupported) {
  GraphBuilder<uint32_t> b{16};
  for (VertexId v = 0; v + 1 < 16; ++v) b.add_undirected_edge(v, v + 1, 3);
  b.add_edge(0, 9, 1);  // one-way shortcut: ALT bounds would be unsound
  const auto g = b.build();

  SsspService<uint32_t> svc(small_service());
  const uint64_t fp = svc.set_graph(g);
  ASSERT_TRUE(wait_table(svc, fp, LandmarkTableStatus::kUnsupported));
  const auto rep = svc.report();
  EXPECT_EQ(rep.landmark_unsupported, 1u);
  EXPECT_EQ(rep.landmark_build_failures, 0u);
  EXPECT_EQ(rep.landmark_tables, 0u);

  // Still served — exactly — through the engine path.
  const auto oracle = dijkstra(g, 0);
  QueryOptions opts;
  opts.target = 12;
  const auto q = svc.query(0, opts);
  EXPECT_EQ(q.p2p_serve, P2pServe::kEngineFallback);
  EXPECT_EQ(q.p2p_distance, oracle.dist[12]);
}

}  // namespace
}  // namespace adds
