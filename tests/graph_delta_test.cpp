// GraphDelta / apply_delta: the graph layer of the live-delta pipeline.
//
// The contract under test: the parent snapshot is never mutated, the
// child carries exactly the requested edges (patched weights in place,
// inserts through a CSR rebuild), the classification reports the NET
// change versus the parent (last write wins), malformed deltas throw
// before anything is applied, and child fingerprints behave like any
// other graph's (distinct content, distinct fingerprint; weight-identical
// round trip restores the parent's fingerprint).
#include <gtest/gtest.h>

#include <vector>

#include "graph/delta.hpp"
#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "oracle_util.hpp"
#include "sssp/dijkstra.hpp"

namespace adds {
namespace {

IntGraph test_graph(uint64_t seed = 11) {
  return make_grid_road<uint32_t>(12, 12, {WeightDist::kUniform, 200}, seed);
}

uint32_t weight_of(const IntGraph& g, VertexId u, VertexId v) {
  for (EdgeIndex e = g.edge_begin(u); e < g.edge_end(u); ++e)
    if (g.edge_target(e) == v) return g.edge_weight(e);
  return 0;  // absent
}

/// First edge out of the lowest-numbered vertex with outdegree > 0.
std::pair<VertexId, VertexId> first_edge(const IntGraph& g) {
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    if (g.edge_begin(u) < g.edge_end(u))
      return {u, g.edge_target(g.edge_begin(u))};
  return {0, 0};
}

TEST(GraphDelta, WeightChangePatchesChildAndClassifies) {
  const auto g = test_graph();
  const auto [u, v] = first_edge(g);
  const uint32_t old_w = weight_of(g, u, v);
  ASSERT_GT(old_w, 0u);

  GraphDelta<uint32_t> d;
  d.changes.push_back({u, v, old_w + 7});
  const auto res = apply_delta(g, d);

  // Topology untouched, exactly one weight patched.
  ASSERT_EQ(res.graph.num_vertices(), g.num_vertices());
  ASSERT_EQ(res.graph.num_edges(), g.num_edges());
  EXPECT_EQ(weight_of(res.graph, u, v), old_w + 7);
  EXPECT_EQ(weight_of(g, u, v), old_w) << "parent mutated";

  ASSERT_EQ(res.increased.size(), 1u);
  EXPECT_EQ(res.increased[0].src, u);
  EXPECT_EQ(res.increased[0].dst, v);
  EXPECT_EQ(res.increased[0].old_weight, old_w);
  EXPECT_EQ(res.increased[0].new_weight, old_w + 7);
  EXPECT_TRUE(res.decreased.empty());
  EXPECT_TRUE(res.inserted.empty());
  EXPECT_EQ(res.stats.increases, 1u);
  EXPECT_EQ(res.stats.total(), 1u);

  // A distinct snapshot gets a distinct fingerprint; undoing the change
  // restores the parent's (content-addressed, not identity-addressed).
  EXPECT_NE(graph_fingerprint(res.graph), graph_fingerprint(g));
  GraphDelta<uint32_t> undo;
  undo.changes.push_back({u, v, old_w});
  EXPECT_EQ(graph_fingerprint(apply_delta(res.graph, undo).graph),
            graph_fingerprint(g));
}

TEST(GraphDelta, InsertRebuildsTopology) {
  const auto g = test_graph();
  // The road grid never carries a corner-to-corner edge.
  const VertexId u = 0, v = g.num_vertices() - 1;
  ASSERT_EQ(weight_of(g, u, v), 0u);

  GraphDelta<uint32_t> d;
  d.changes.push_back({u, v, 42});
  const auto res = apply_delta(g, d);

  EXPECT_EQ(res.graph.num_edges(), g.num_edges() + 1);
  EXPECT_EQ(weight_of(res.graph, u, v), 42u);
  ASSERT_EQ(res.inserted.size(), 1u);
  EXPECT_EQ(res.inserted[0].src, u);
  EXPECT_EQ(res.inserted[0].dst, v);
  EXPECT_EQ(res.inserted[0].new_weight, 42u);
  EXPECT_EQ(res.stats.inserts, 1u);
  // Every parent edge survives the rebuild with its weight.
  for (VertexId s = 0; s < g.num_vertices(); ++s)
    for (EdgeIndex e = g.edge_begin(s); e < g.edge_end(s); ++e)
      EXPECT_EQ(weight_of(res.graph, s, g.edge_target(e)), g.edge_weight(e));
}

TEST(GraphDelta, LastWriteWinsWithNetClassification) {
  const auto g = test_graph();
  const auto [u, v] = first_edge(g);
  const uint32_t old_w = weight_of(g, u, v);

  // Two writes to the same edge: the classification must carry one entry
  // with the PARENT's old weight, not the intermediate.
  GraphDelta<uint32_t> d;
  d.changes.push_back({u, v, old_w + 100});
  d.changes.push_back({u, v, old_w > 1 ? old_w - 1 : old_w + 1});
  const auto res = apply_delta(g, d);
  ASSERT_EQ(res.decreased.size() + res.increased.size(), 1u);
  const auto& ce = res.decreased.empty() ? res.increased[0] : res.decreased[0];
  EXPECT_EQ(ce.old_weight, old_w);

  // Net no-op: change away and back in one batch — no classified edge,
  // and the child is content-identical to the parent.
  GraphDelta<uint32_t> noop;
  noop.changes.push_back({u, v, old_w + 5});
  noop.changes.push_back({u, v, old_w});
  const auto back = apply_delta(g, noop);
  EXPECT_TRUE(back.decreased.empty());
  EXPECT_TRUE(back.increased.empty());
  EXPECT_EQ(graph_fingerprint(back.graph), graph_fingerprint(g));

  // Repeated insert of one edge: last weight wins, one classified insert.
  GraphDelta<uint32_t> ins;
  const VertexId far = g.num_vertices() - 1;
  ins.changes.push_back({u, far, 10});
  ins.changes.push_back({u, far, 20});
  const auto ri = apply_delta(g, ins);
  ASSERT_EQ(ri.inserted.size(), 1u);
  EXPECT_EQ(ri.inserted[0].new_weight, 20u);
  EXPECT_EQ(ri.graph.num_edges(), g.num_edges() + 1);
}

TEST(GraphDelta, UnchangedWriteCountsButDoesNotClassify) {
  const auto g = test_graph();
  const auto [u, v] = first_edge(g);
  GraphDelta<uint32_t> d;
  d.changes.push_back({u, v, weight_of(g, u, v)});
  const auto res = apply_delta(g, d);
  EXPECT_EQ(res.stats.unchanged, 1u);
  EXPECT_EQ(res.stats.decreases + res.stats.increases + res.stats.inserts, 0u);
  EXPECT_EQ(graph_fingerprint(res.graph), graph_fingerprint(g));
}

TEST(GraphDelta, MalformedDeltasThrowBeforeApplying) {
  const auto g = test_graph();
  const auto [u, v] = first_edge(g);
  const uint32_t old_w = weight_of(g, u, v);

  const auto expect_rejected = [&](GraphDelta<uint32_t> d) {
    // A valid change rides in front: validation must reject the WHOLE
    // batch before any edge is applied.
    d.changes.insert(d.changes.begin(), {u, v, old_w + 1});
    EXPECT_THROW(apply_delta(g, d), Error);
    EXPECT_EQ(weight_of(g, u, v), old_w);
  };
  GraphDelta<uint32_t> oob;
  oob.changes.push_back({g.num_vertices(), 0, 1});
  expect_rejected(oob);
  GraphDelta<uint32_t> self;
  self.changes.push_back({3, 3, 1});
  expect_rejected(self);
  GraphDelta<uint32_t> zero;
  zero.changes.push_back({u, v, 0});
  expect_rejected(zero);
}

TEST(GraphDelta, ChildSolvesLikeAnIndependentGraph) {
  const auto g = test_graph(29);
  const auto delta = oracle::make_test_delta(g, 12, 4, 7);
  ASSERT_FALSE(delta.empty());
  const auto res = apply_delta(g, delta);
  ASSERT_GT(res.stats.total(), 0u);
  // The child is a self-consistent graph: Dijkstra on it differs from the
  // parent oracle exactly where the delta says it should, and the parent
  // still solves to its own oracle (immutability, end to end).
  const auto child_oracle = dijkstra(res.graph, VertexId{0});
  EXPECT_EQ(oracle::distance_defect(res.graph, child_oracle, VertexId{0}), "");
  EXPECT_EQ(oracle::distance_defect(g, dijkstra(g, VertexId{0}), VertexId{0}),
            "");
}

TEST(GraphDelta, FloatWeightsClassifyAndPatch) {
  const auto g =
      make_grid_road<float>(8, 8, {WeightDist::kUniform, 100}, 5);
  VertexId u = 0;
  while (g.edge_begin(u) == g.edge_end(u)) ++u;
  const VertexId v = g.edge_target(g.edge_begin(u));
  const float old_w = g.edge_weight(g.edge_begin(u));
  GraphDelta<float> d;
  d.changes.push_back({u, v, old_w * 0.5f});
  const auto res = apply_delta(g, d);
  ASSERT_EQ(res.decreased.size(), 1u);
  EXPECT_FLOAT_EQ(res.decreased[0].new_weight, old_w * 0.5f);
  EXPECT_NE(graph_fingerprint(res.graph), graph_fingerprint(g));
}

}  // namespace
}  // namespace adds
