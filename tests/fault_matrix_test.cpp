// Fault matrix: every injection site, across several seeds, against the
// guarded runtime. The contract under any single armed site:
//
//   * run_solver_guarded never hangs (bounded by the watchdog deadline),
//   * it never returns distances that differ from the Dijkstra oracle
//     (the relaxation audit rejects corrupted attempts; the fallback chain
//     ends in engines with no injection sites, so the guarded run always
//     produces a validated result).
#include <gtest/gtest.h>

#include "core/resilience.hpp"
#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

using fault::FaultPlan;
using fault::FaultScope;
using fault::FaultSpec;
using fault::Site;

struct SiteCase {
  Site site;
  FaultSpec spec;
  // Write combining on (default) routes pushes through batched flushes, so
  // the push-site injections fire inside PushCombiner::flush_lane; off
  // exercises the legacy single-item path.
  bool combining = true;
  // Nonzero: run on a deliberately tiny pool (this many blocks). Used with
  // pool.exhausted to force real pressure onto the spill governor.
  uint32_t pool_blocks = 0;
  // The site must be absorbed in-run by the governor: the guarded run must
  // finish on adds-host itself with zero fallbacks, with spilled work.
  bool expect_no_fallback = false;
};

class FaultMatrix : public ::testing::TestWithParam<SiteCase> {};

TEST_P(FaultMatrix, GuardedRunSurvivesInjection) {
  const auto g =
      make_grid_road<uint32_t>(30, 30, {WeightDist::kUniform, 1000}, 3);
  const auto oracle = dijkstra(g, VertexId{0});

  const SiteCase& c = GetParam();

  EngineConfig cfg;
  cfg.adds_host.num_workers = 3;
  cfg.adds_host.block_words = 256;  // small blocks: more allocator traffic
  cfg.adds_host.write_combining = c.combining;
  cfg.adds_host.combine_capacity = 16;  // small lanes: frequent batch flushes
  if (c.pool_blocks != 0) cfg.adds_host.pool_blocks = c.pool_blocks;

  ResiliencePolicy policy;
  policy.max_attempts_per_engine = 1;  // go straight down the chain
  policy.watchdog_min_ms = 1500.0;     // hang bound per attempt
  policy.retry_backoff_ms = 1.0;
  policy.audit_sample_edges = ~0ull;   // full audit on these tiny graphs

  uint64_t total_fires = 0;
  uint64_t total_spilled = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FaultPlan plan(seed);
    plan.set(c.site, c.spec);
    FaultScope scope(plan);
    const auto res =
        run_solver_guarded(SolverKind::kAddsHost, g, 0, cfg, policy);
    EXPECT_TRUE(validate_distances(res, oracle).ok())
        << fault::site_name(c.site) << " seed " << seed;
    ASSERT_NE(res.resilience, nullptr);
    EXPECT_TRUE(res.resilience->ok);
    if (c.expect_no_fallback) {
      // The governor must absorb the overload in-run: same engine, no
      // retries down the chain, spill machinery actually engaged.
      EXPECT_EQ(res.resilience->fallbacks, 0u)
          << fault::site_name(c.site) << " seed " << seed;
      EXPECT_EQ(res.resilience->final_solver, "adds-host");
      total_spilled += res.health.spilled_items;
    }
    total_fires += plan.total_fires();
  }
  if (c.expect_no_fallback) {
    EXPECT_GT(total_spilled, 0u);
  }
  // The matrix must actually exercise the site: across 5 seeds at these
  // probabilities at least one injection fires.
  EXPECT_GT(total_fires, 0u) << fault::site_name(c.site);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, FaultMatrix,
    ::testing::Values(
        // Allocation failure: adds-host dies with adds::Error, chain falls
        // through to engines that never touch the pool.
        SiteCase{Site::kPoolAllocFail, {0.3, ~0ull, 0}},
        // Write->publish window widened: stresses the partial-segment scan;
        // results must stay exact.
        SiteCase{Site::kPushDelay, {0.05, ~0ull, 200}},
        // Lost publication: wedges the segment scan, termination hangs, the
        // watchdog must cut the attempt loose.
        SiteCase{Site::kPushDropBeforePublish, {0.05, ~0ull, 0}},
        // Manager preemption jitter.
        SiteCase{Site::kManagerScanStall, {0.2, ~0ull, 1000}},
        // Late assignment-flag delivery.
        SiteCase{Site::kAfDeliveryDelay, {0.1, ~0ull, 500}},
        // Worker preemption with an assignment in flight.
        SiteCase{Site::kWorkerStall, {0.1, ~0ull, 1000}},
        // The push sites again with combining disabled: the injections must
        // be survivable on the single-item path too.
        SiteCase{Site::kPushDelay, {0.05, ~0ull, 200}, false},
        SiteCase{Site::kPushDropBeforePublish, {0.05, ~0ull, 0}, false},
        // Soft pool exhaustion on an undersized pool: try_allocate reports
        // an empty pool, the spill governor absorbs the pressure, and the
        // run must finish on adds-host with no fallback at all.
        SiteCase{Site::kPoolExhausted, {0.3, ~0ull, 0}, true, 12, true},
        SiteCase{Site::kPoolExhausted, {0.3, ~0ull, 0}, false, 12, true}),
    [](const ::testing::TestParamInfo<SiteCase>& info) {
      std::string name = fault::site_name(info.param.site);
      for (char& ch : name)
        if (ch == '.' || ch == '-') ch = '_';
      if (!info.param.combining) name += "_single";
      return name;
    });

}  // namespace
}  // namespace adds
