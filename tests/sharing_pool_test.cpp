// SharingPool (processor-sharing virtual-time executor) tests: rate math,
// completion ordering, partial advancement, and utilization accounting.
#include <gtest/gtest.h>

#include "sim/sharing_pool.hpp"

namespace adds {
namespace {

TEST(SharingPool, SingleJobRunsAtServerRate) {
  SharingPool pool(4, /*server_rate=*/10.0, /*cap=*/100.0);
  pool.submit(50.0);  // 50 edge units at 10/us -> 5us
  std::vector<SharingPool::Completion> done;
  pool.advance_to(10.0, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].t_us, 5.0, 1e-9);
  EXPECT_EQ(pool.num_busy(), 0u);
  EXPECT_DOUBLE_EQ(pool.now_us(), 10.0);
}

TEST(SharingPool, BandwidthCapSharesEqually) {
  // 4 busy servers, cap 20/us -> each runs at 5/us (< server rate 10).
  SharingPool pool(4, 10.0, 20.0);
  for (int i = 0; i < 4; ++i) pool.submit(50.0);
  EXPECT_DOUBLE_EQ(pool.share_rate(), 5.0);
  std::vector<SharingPool::Completion> done;
  pool.advance_to(100.0, done);
  ASSERT_EQ(done.size(), 4u);
  EXPECT_NEAR(done.back().t_us, 10.0, 1e-9);  // 50/5
}

TEST(SharingPool, SurvivorsSpeedUpAfterCompletion) {
  SharingPool pool(2, 10.0, 10.0);  // cap shared: 5/us each while both busy
  pool.submit(10.0);  // finishes first
  pool.submit(20.0);
  std::vector<SharingPool::Completion> done;
  pool.advance_to(100.0, done);
  ASSERT_EQ(done.size(), 2u);
  // Job 1: 10 units at 5/us = 2us. Job 2: progressed 10 units by t=2, then
  // runs alone at min(10, 10) = 10/us: remaining 10 units -> t=3.
  EXPECT_NEAR(done[0].t_us, 2.0, 1e-9);
  EXPECT_NEAR(done[1].t_us, 3.0, 1e-9);
}

TEST(SharingPool, AdvanceStopsBetweenCompletions) {
  SharingPool pool(1, 10.0, 100.0);
  pool.submit(100.0);  // needs 10us
  std::vector<SharingPool::Completion> done;
  pool.advance_to(4.0, done);
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(pool.num_busy(), 1u);
  EXPECT_NEAR(pool.busy_edges_remaining(), 60.0, 1e-9);
  pool.advance_to(12.0, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].t_us, 10.0, 1e-9);
}

TEST(SharingPool, CompletionOrderIsDeterministicBySize) {
  SharingPool pool(3, 10.0, 1000.0);
  const uint64_t big = pool.submit(30.0);
  const uint64_t small = pool.submit(10.0);
  const uint64_t mid = pool.submit(20.0);
  std::vector<SharingPool::Completion> done;
  pool.advance_to(100.0, done);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].job_id, small);
  EXPECT_EQ(done[1].job_id, mid);
  EXPECT_EQ(done[2].job_id, big);
}

TEST(SharingPool, UtilizationAccounting) {
  SharingPool pool(4, 10.0, 100.0);
  EXPECT_TRUE(pool.has_idle());
  EXPECT_EQ(pool.num_idle(), 4u);
  pool.submit(8.0);
  pool.submit(12.0);
  EXPECT_EQ(pool.num_busy(), 2u);
  EXPECT_DOUBLE_EQ(pool.busy_edges_assigned(), 20.0);
  EXPECT_EQ(pool.peak_busy(), 2u);
  std::vector<SharingPool::Completion> done;
  pool.advance_to(100.0, done);
  EXPECT_DOUBLE_EQ(pool.busy_edges_assigned(), 0.0);
  EXPECT_EQ(pool.jobs_completed(), 2u);
  EXPECT_EQ(pool.peak_busy(), 2u);
}

TEST(SharingPool, NextCompletionTime) {
  SharingPool pool(2, 10.0, 100.0);
  EXPECT_EQ(pool.next_completion_time(), SharingPool::kInfinity);
  pool.submit(40.0);
  // Alone: min(10, 100/1) = 10/us -> completes at 4us.
  EXPECT_NEAR(pool.next_completion_time(), 4.0, 1e-9);
}

TEST(SharingPool, ZeroSizeJobCompletesImmediately) {
  SharingPool pool(1, 10.0, 100.0);
  pool.submit(0.0);
  std::vector<SharingPool::Completion> done;
  pool.advance_to(1.0, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].t_us, 0.0, 1e-9);
}

TEST(SharingPool, InvalidConstructionThrows) {
  EXPECT_THROW(SharingPool(0, 1.0, 1.0), Error);
  EXPECT_THROW(SharingPool(1, 0.0, 1.0), Error);
  EXPECT_THROW(SharingPool(1, 1.0, -1.0), Error);
}

}  // namespace
}  // namespace adds
