// SsspService: admission control, result cache, deadlines/cancel, report
// accounting, and concurrent dispatch over warm engines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "oracle_util.hpp"
#include "service/result_cache.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"

namespace adds {
namespace {

ServiceConfig small_service(uint32_t engines = 1) {
  ServiceConfig cfg;
  cfg.num_engines = engines;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;  // tests want the raw engine outcome
  return cfg;
}

IntGraph test_graph(uint64_t seed = 1) {
  return make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 200}, seed);
}

void expect_valid(const QueryOutcome<uint32_t>& out, const IntGraph& g,
                  VertexId s) {
  ASSERT_EQ(out.status, QueryStatus::kOk);
  ASSERT_NE(out.result, nullptr);
  EXPECT_EQ(oracle::distance_defect(g, *out.result, s), "");
}

// ---- Result cache (unit) ---------------------------------------------------

TEST(ResultCache, LruEvictsOldestAndCounts) {
  ResultCache<uint32_t> cache(2);
  const auto mk = [] {
    auto r = std::make_shared<SsspResult<uint32_t>>();
    return std::shared_ptr<const SsspResult<uint32_t>>(std::move(r));
  };
  const CacheKey a{1, 1, 1}, b{1, 2, 1}, c{1, 3, 1};
  EXPECT_EQ(cache.lookup(a), nullptr);  // miss
  cache.insert(a, mk());
  cache.insert(b, mk());
  EXPECT_NE(cache.lookup(a), nullptr);  // a is now most-recent
  cache.insert(c, mk());                // evicts b (LRU)
  EXPECT_EQ(cache.lookup(b), nullptr);
  EXPECT_NE(cache.lookup(a), nullptr);
  EXPECT_NE(cache.lookup(c), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().misses, 2u);
  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache<uint32_t> cache(0);
  const CacheKey k{1, 1, 1};
  cache.insert(k, std::make_shared<const SsspResult<uint32_t>>());
  EXPECT_EQ(cache.lookup(k), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, PerFingerprintCapRecyclesOwnEntriesOnly) {
  // Tenant-fair eviction: with a per-fp cap, a hot tenant that overflows
  // its slice recycles ITS OWN least-recent entry; quieter tenants'
  // entries survive even though global capacity had room to spare.
  ResultCache<uint32_t> cache(/*capacity=*/8, /*per_fp_cap=*/2);
  const auto mk = [] {
    return std::make_shared<const SsspResult<uint32_t>>();
  };
  const uint64_t hot = 1, quiet = 2;
  cache.insert({quiet, 1, 1}, mk());
  cache.insert({hot, 1, 1}, mk());
  cache.insert({hot, 2, 1}, mk());
  cache.insert({hot, 3, 1}, mk());  // over cap: recycles hot's LRU {hot,1}
  EXPECT_EQ(cache.lookup({hot, 1, 1}), nullptr);
  EXPECT_NE(cache.lookup({hot, 2, 1}), nullptr);
  EXPECT_NE(cache.lookup({hot, 3, 1}), nullptr);
  EXPECT_NE(cache.lookup({quiet, 1, 1}), nullptr);  // untouched by the flood
  EXPECT_EQ(cache.tenant_stats(hot).entries, 2u);
  EXPECT_EQ(cache.tenant_stats(quiet).entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Invalidating one fingerprint drops its entries but keeps its
  // hit/miss history (the counters describe traffic, not residency).
  const auto hot_hits = cache.tenant_stats(hot).hits;
  cache.invalidate_fp(hot);
  EXPECT_EQ(cache.tenant_stats(hot).entries, 0u);
  EXPECT_EQ(cache.tenant_stats(hot).hits, hot_hits);
  EXPECT_NE(cache.lookup({quiet, 1, 1}), nullptr);
}

TEST(ResultCache, OptionsDigestSeparatesConfigs) {
  AddsHostOptions a, b;
  b.delta = 42.0;
  EXPECT_NE(options_digest(a), options_digest(b));
  AddsHostOptions c;
  EXPECT_EQ(options_digest(a), options_digest(c));
}

TEST(GraphFingerprint, SensitiveToWeightsAndShape) {
  const auto g1 = test_graph(1);
  const auto g2 = test_graph(2);  // same shape, different weights
  EXPECT_NE(graph_fingerprint(g1), graph_fingerprint(g2));
  EXPECT_EQ(graph_fingerprint(g1), graph_fingerprint(test_graph(1)));
}

// ---- Service ---------------------------------------------------------------

TEST(SsspService, CacheHitServesSameResultAndCounts) {
  const auto g = test_graph();
  SsspService<uint32_t> svc(small_service());
  svc.set_graph(g);

  const auto first = svc.query(0);
  EXPECT_FALSE(first.cache_hit);
  expect_valid(first, g, 0);

  const auto second = svc.query(0);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.get(), first.result.get());  // shared entry

  const auto rep = svc.report();
  EXPECT_EQ(rep.cache_hits, 1u);
  EXPECT_EQ(rep.cache_misses, 1u);
  EXPECT_EQ(rep.completed, 2u);
  EXPECT_GT(rep.cache_hit_rate, 0.0);
  EXPECT_EQ(rep.engine_queries, 1u);  // the hit never touched an engine
}

TEST(SsspService, BypassCacheComputesFresh) {
  const auto g = test_graph();
  SsspService<uint32_t> svc(small_service());
  svc.set_graph(g);
  svc.query(3);
  QueryOptions q;
  q.bypass_cache = true;
  const auto out = svc.query(3, q);
  EXPECT_FALSE(out.cache_hit);
  expect_valid(out, g, 3);
}

TEST(SsspService, GraphSwapMissesOldCacheWithoutCrossTenantInvalidation) {
  const auto g1 = test_graph(1);
  const auto g2 = test_graph(2);
  const uint64_t fp1 = graph_fingerprint(g1);
  SsspService<uint32_t> svc(small_service());
  svc.set_graph(g1);
  svc.query(5);
  svc.set_graph(g2);

  // Same source, new graph: must be a miss AND the new graph's distances
  // (the cache keys on the fingerprint, so the old entry can never leak).
  const auto out = svc.query(5);
  EXPECT_FALSE(out.cache_hit);
  expect_valid(out, g2, 5);

  // Publishing g2 did NOT invalidate g1's result: the old generation stays
  // catalog-resident (unpinned) and its entry still serves queries that
  // target its fingerprint explicitly.
  EXPECT_EQ(svc.report().cache_invalidations, 0u);
  QueryOptions q;
  q.graph_fp = fp1;
  const auto old_gen = svc.query(5, q);
  EXPECT_TRUE(old_gen.cache_hit);
  EXPECT_EQ(old_gen.graph_fp, fp1);
  expect_valid(old_gen, g1, 5);

  // Retiring g1 takes exactly its entries with it, typed thereafter.
  EXPECT_TRUE(svc.retire_graph(fp1));
  EXPECT_EQ(svc.submit(5, q).get().status, QueryStatus::kUnknownGraph);
  EXPECT_GE(svc.report().cache_invalidations, 1u);
}

TEST(SsspService, CacheEvictionUnderTinyCapacity) {
  ServiceConfig cfg = small_service();
  cfg.cache_entries = 2;
  const auto g = test_graph();
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);
  for (VertexId s = 0; s < 5; ++s) svc.query(s);
  const auto rep = svc.report();
  EXPECT_GE(rep.cache_evictions, 3u);
  EXPECT_LE(rep.cache_entries, 2u);
}

TEST(SsspService, OverloadShedsWithTypedStatus) {
  // One engine, queue depth 1, a graph slow enough that a burst cannot
  // drain instantly: most of the burst must shed as kOverloaded.
  ServiceConfig cfg = small_service(1);
  cfg.max_queue_depth = 1;
  const auto g = make_grid_road<uint32_t>(120, 120,
                                          {WeightDist::kUniform, 500}, 3);
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  QueryOptions q;
  q.bypass_cache = true;
  std::vector<std::future<QueryOutcome<uint32_t>>> futs;
  for (int i = 0; i < 16; ++i) futs.push_back(svc.submit(0, q));
  uint32_t ok = 0, shed = 0;
  for (auto& f : futs) {
    auto out = f.get();
    if (out.status == QueryStatus::kOk) {
      ++ok;
      ASSERT_NE(out.result, nullptr);
    } else {
      ASSERT_EQ(out.status, QueryStatus::kOverloaded);
      EXPECT_EQ(out.result, nullptr);
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);
  const auto rep = svc.report();
  EXPECT_EQ(rep.shed, shed);
  EXPECT_EQ(rep.completed, ok);

  // The synchronous API reports shedding as a typed exception.
  bool typed = false;
  for (int i = 0; i < 64 && !typed; ++i) {
    // Re-fill the pipeline, then race one more in.
    std::vector<std::future<QueryOutcome<uint32_t>>> refill;
    for (int j = 0; j < 4; ++j) refill.push_back(svc.submit(0, q));
    try {
      svc.query(0, q);
    } catch (const ServiceError& e) {
      EXPECT_EQ(e.status(), QueryStatus::kOverloaded);
      typed = true;
    }
    for (auto& f : refill) f.get();
  }
  EXPECT_TRUE(typed);
}

TEST(SsspService, DeadlineExpiredInQueueOrSolve) {
  ServiceConfig cfg = small_service(1);
  cfg.default_deadline_ms = 1e-3;  // everything expires immediately
  const auto g = make_grid_road<uint32_t>(80, 80,
                                          {WeightDist::kUniform, 300}, 7);
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);
  QueryOptions q;
  q.bypass_cache = true;
  const auto out = svc.submit(0, q).get();
  EXPECT_EQ(out.status, QueryStatus::kDeadlineExpired);
  EXPECT_EQ(svc.report().deadline_expired, 1u);

  // Per-query override beats the default; the engine survived the abort.
  q.deadline_ms = 60000.0;
  const auto ok = svc.submit(0, q).get();
  expect_valid(ok, g, 0);
}

TEST(SsspService, PreCancelledQueryReportsCancelled) {
  const auto g = test_graph();
  SsspService<uint32_t> svc(small_service());
  svc.set_graph(g);
  std::atomic<bool> cancel{true};
  QueryOptions q;
  q.cancel = &cancel;
  q.bypass_cache = true;
  const auto out = svc.submit(0, q).get();
  EXPECT_EQ(out.status, QueryStatus::kCancelled);
  EXPECT_EQ(svc.report().cancelled, 1u);
}

TEST(SsspService, ConcurrentMixedQueriesAllValidate) {
  const auto g = make_rmat<uint32_t>(9, 8, 0.57, 0.19, 0.19,
                                     {WeightDist::kUniform, 300}, 19);
  ServiceConfig cfg = small_service(3);
  cfg.max_queue_depth = 256;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  // 48 queries over 8 sources from 4 submitting threads: engine
  // concurrency, cache hits and repeated sources all at once.
  constexpr int kThreads = 4, kPerThread = 12;
  std::vector<std::future<QueryOutcome<uint32_t>>> futs(kThreads *
                                                        kPerThread);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const VertexId s = VertexId((t * kPerThread + i) % 8);
        futs[size_t(t * kPerThread + i)] = svc.submit(s);
      }
    });
  }
  for (auto& th : submitters) th.join();

  std::vector<SsspResult<uint32_t>> oracles;
  for (VertexId s = 0; s < 8; ++s) oracles.push_back(dijkstra(g, s));
  for (size_t i = 0; i < futs.size(); ++i) {
    auto out = futs[i].get();
    ASSERT_EQ(out.status, QueryStatus::kOk) << out.error;
    const VertexId s = VertexId(i % 8);  // matches the submit rule above
    EXPECT_TRUE(validate_distances(*out.result, oracles[s]).ok())
        << "slot " << i;
  }
  const auto rep = svc.report();
  EXPECT_EQ(rep.submitted, uint64_t(kThreads * kPerThread));
  EXPECT_EQ(rep.completed, uint64_t(kThreads * kPerThread));
  EXPECT_EQ(rep.failed, 0u);
  // 48 queries over 8 sources must be served economically: either a
  // cache hit or a shared lane of a coalesced batch (repeated sources
  // that land in one dispatch never reach the cache — they fan out).
  EXPECT_GT(rep.cache_hits + rep.batched_queries, 0u);
  EXPECT_GE(rep.latency.count, uint64_t(kThreads * kPerThread));
  EXPECT_GE(rep.engine_utilization, 0.0);
  EXPECT_LE(rep.engine_utilization, 1.0);

  // Every cached distance vector equals the oracle for its source.
  for (VertexId s = 0; s < 8; ++s) {
    const auto out = svc.query(s);
    expect_valid(out, g, s);
  }
}

TEST(SsspService, ReportTracksQueueDepthAndEngines) {
  const auto g = test_graph();
  ServiceConfig cfg = small_service(2);
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);
  svc.query(0);
  const auto rep = svc.report();
  EXPECT_EQ(rep.engines, 2u);
  EXPECT_EQ(rep.queue_depth, 0u);
  EXPECT_GT(rep.uptime_ms, 0.0);
  EXPECT_GT(rep.engine_busy_ms, 0.0);
  EXPECT_GT(rep.last_health.pool_blocks, 0u);
  EXPECT_GT(rep.latency.p50, 0.0);
  EXPECT_GE(rep.latency.p99, rep.latency.p50);
}

TEST(SsspService, ShutdownRejectsNewQueries) {
  const auto g = test_graph();
  SsspService<uint32_t> svc(small_service());
  svc.set_graph(g);
  svc.query(0);
  svc.shutdown();
  const auto out = svc.submit(1).get();
  EXPECT_EQ(out.status, QueryStatus::kShutdown);
  try {
    svc.query(2);
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.status(), QueryStatus::kShutdown);
  }
  svc.shutdown();  // idempotent
}

TEST(SsspService, ShutdownRacingAdmissionNeverHangsOrDropsFutures) {
  // Regression for the shutdown-vs-admission race: a query admitted while
  // the service is draining must resolve with a typed status — never a
  // forever-pending future, a broken promise, or a use-after-drain. The
  // loop restarts the service each round so the race window (submitters
  // mid-push while shutdown() joins the dispatchers) is hit repeatedly;
  // run under TSan this also proves the teardown path is data-race free.
  const auto g = test_graph();
  for (int round = 0; round < 10; ++round) {
    ServiceConfig cfg = small_service(2);
    cfg.max_queue_depth = 8;
    SsspService<uint32_t> svc(cfg);
    svc.set_graph(g);

    std::vector<std::future<QueryOutcome<uint32_t>>> futs;
    std::mutex futs_m;
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        QueryOptions q;
        q.bypass_cache = true;
        for (int i = 0; i < 6; ++i) {
          auto f = svc.submit(VertexId((t * 6 + i) % 16), q);
          std::lock_guard<std::mutex> lk(futs_m);
          futs.push_back(std::move(f));
        }
      });
    }
    go.store(true, std::memory_order_release);
    svc.shutdown();  // races the submitters above
    for (auto& th : submitters) th.join();

    for (auto& f : futs) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "hung future in round " << round;
      const auto out = f.get();
      EXPECT_TRUE(out.status == QueryStatus::kOk ||
                  out.status == QueryStatus::kShutdown ||
                  out.status == QueryStatus::kOverloaded)
          << "round " << round << " status "
          << query_status_name(out.status);
      if (out.status == QueryStatus::kOk) {
        EXPECT_NE(out.result, nullptr);
      }
    }
  }
}

TEST(SsspService, GraphSwapRacingQueriesNeverMixesFingerprints) {
  // Two same-shape graphs with different weights: a distance vector
  // computed for one is silently wrong for the other, so the fingerprint
  // attached to every outcome is the only proof of which graph it belongs
  // to. While set_graph churns between them, every kOk result must carry
  // a fingerprint of one of the two graphs AND validate against exactly
  // that graph's oracle — a cache serving across the swap would fail here.
  const auto g1 = test_graph(1);
  const auto g2 = test_graph(2);
  const uint64_t fp1 = graph_fingerprint(g1);
  const uint64_t fp2 = graph_fingerprint(g2);
  ASSERT_EQ(g1.num_vertices(), g2.num_vertices());
  ASSERT_NE(fp1, fp2);

  ServiceConfig cfg = small_service(2);
  cfg.max_queue_depth = 256;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g1);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    bool one = false;
    while (!stop.load(std::memory_order_acquire)) {
      svc.set_graph(one ? g1 : g2);
      one = !one;
      std::this_thread::yield();
    }
  });

  constexpr int kQueries = 120, kSources = 6;
  std::vector<std::future<QueryOutcome<uint32_t>>> futs;
  for (int i = 0; i < kQueries; ++i)
    futs.push_back(svc.submit(VertexId(i % kSources)));
  stop.store(true, std::memory_order_release);
  swapper.join();
  svc.set_graph(g2);  // settle on g2 for the epilogue

  std::vector<SsspResult<uint32_t>> o1, o2;
  for (VertexId s = 0; s < kSources; ++s) {
    o1.push_back(dijkstra(g1, s));
    o2.push_back(dijkstra(g2, s));
  }
  for (int i = 0; i < kQueries; ++i) {
    const auto out = futs[size_t(i)].get();
    if (out.status != QueryStatus::kOk) continue;  // shed under churn: fine
    ASSERT_NE(out.result, nullptr);
    EXPECT_FALSE(out.stale);  // no brownout here, stale serving is off
    ASSERT_TRUE(out.graph_fp == fp1 || out.graph_fp == fp2)
        << "query " << i << " carries unknown fingerprint " << out.graph_fp;
    const auto& oracle = out.graph_fp == fp1 ? o1[size_t(i % kSources)]
                                             : o2[size_t(i % kSources)];
    EXPECT_TRUE(validate_distances(*out.result, oracle).ok())
        << "query " << i << " distances do not match its fingerprint";
  }

  // After the churn settles, every serve must be the current generation.
  for (VertexId s = 0; s < kSources; ++s) {
    const auto out = svc.query(s);
    ASSERT_EQ(out.status, QueryStatus::kOk);
    EXPECT_EQ(out.graph_fp, fp2);
    EXPECT_TRUE(validate_distances(*out.result, o2[s]).ok());
  }
}

TEST(SsspService, SubmitWithoutGraphThrows) {
  SsspService<uint32_t> svc(small_service());
  EXPECT_THROW(svc.submit(0), Error);
  const auto g = test_graph();
  svc.set_graph(g);
  EXPECT_THROW(svc.submit(g.num_vertices()), Error);  // out of range
}

TEST(SsspService, FloatWeightsServeCorrectly) {
  const auto g = make_grid_road<float>(15, 15, {WeightDist::kUniform, 100},
                                       23);
  ServiceConfig cfg;
  cfg.num_engines = 1;
  cfg.engine.num_workers = 2;
  SsspService<float> svc(cfg);
  svc.set_graph(g);
  const auto out = svc.query(0);
  ASSERT_EQ(out.status, QueryStatus::kOk);
  EXPECT_TRUE(validate_distances(*out.result, dijkstra(g, VertexId{0})).ok());
}

}  // namespace
}  // namespace adds
