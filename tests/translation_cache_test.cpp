// Translation cache tests: correctness vs direct reads, hit accounting,
// and reset behaviour.
#include <gtest/gtest.h>

#include "queue/translation_cache.hpp"

namespace adds {
namespace {

constexpr uint32_t kBlockWords = 64;

struct Harness {
  Harness() : pool(16, kBlockWords), bucket(pool, cfg()) {
    bucket.ensure_capacity(8 * kBlockWords);
    for (uint32_t i = 0; i < 6 * kBlockWords; ++i) bucket.push(i * 3 + 1);
  }
  static BucketConfig cfg() {
    BucketConfig c;
    c.segment_words = 8;
    c.table_size = 16;
    return c;
  }
  BlockPool pool;
  Bucket bucket;
};

TEST(TranslationCache, MatchesDirectReads) {
  Harness h;
  TranslationCache<8> cache;
  cache.reset();
  for (uint32_t i = 0; i < 6 * kBlockWords; ++i)
    ASSERT_EQ(cache.read(h.bucket, i), h.bucket.read_item(i));
}

TEST(TranslationCache, SequentialAccessHitsAlmostAlways) {
  Harness h;
  TranslationCache<8> cache;
  cache.reset();
  for (uint32_t i = 0; i < 6 * kBlockWords; ++i) cache.read(h.bucket, i);
  // One miss per block boundary.
  EXPECT_EQ(cache.misses(), 6u);
  EXPECT_EQ(cache.hits(), 6u * kBlockWords - 6);
}

TEST(TranslationCache, StridedAccessAcrossManyBlocksThrashes) {
  Harness h;
  // A 2-entry cache with a 6-block working set must miss on conflict.
  TranslationCache<2> cache;
  cache.reset();
  for (int round = 0; round < 3; ++round)
    for (uint32_t b = 0; b < 6; ++b) cache.read(h.bucket, b * kBlockWords);
  EXPECT_GT(cache.misses(), cache.hits());
}

TEST(TranslationCache, ResetClearsEverything) {
  Harness h;
  TranslationCache<8> cache;
  cache.reset();
  cache.read(h.bucket, 0);
  cache.read(h.bucket, 1);
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
  cache.reset();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // Still correct after reset.
  EXPECT_EQ(cache.read(h.bucket, 5), h.bucket.read_item(5));
}

}  // namespace
}  // namespace adds
