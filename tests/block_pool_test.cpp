// BlockPool (FIFO block allocator) unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "queue/block_pool.hpp"

namespace adds {
namespace {

TEST(BlockPool, AllocatesDistinctBlocks) {
  BlockPool pool(8, 64);
  std::vector<BlockId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(pool.allocate());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(pool.free_blocks(), 0u);
  EXPECT_EQ(pool.blocks_in_use(), 8u);
}

TEST(BlockPool, ExhaustionThrows) {
  BlockPool pool(2, 64);
  pool.allocate();
  pool.allocate();
  EXPECT_THROW(pool.allocate(), Error);
}

TEST(BlockPool, ExhaustionErrorCarriesUsageCounters) {
  // The operator-facing message must say how big the pool was and how much
  // of it was in use, not just that it ran dry.
  BlockPool pool(3, 64);
  pool.allocate();
  const auto b = pool.allocate();
  pool.allocate();
  pool.release(b);
  pool.allocate();
  try {
    pool.allocate();
    FAIL() << "allocate() past exhaustion did not throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("blocks_in_use=3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("peak_blocks_in_use=3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("num_blocks=3"), std::string::npos) << msg;
  }
}

TEST(BlockPool, TryAllocateReturnsInvalidWhenEmpty) {
  BlockPool pool(2, 64);
  const BlockId a = pool.try_allocate();
  const BlockId b = pool.try_allocate();
  EXPECT_NE(a, kInvalidBlock);
  EXPECT_NE(b, kInvalidBlock);
  EXPECT_EQ(pool.try_allocate(), kInvalidBlock);  // soft: no throw
  EXPECT_EQ(pool.blocks_in_use(), 2u);
  pool.release(a);
  EXPECT_NE(pool.try_allocate(), kInvalidBlock);
}

TEST(BlockPool, ReleaseMakesBlockReusable) {
  BlockPool pool(1, 64);
  const BlockId a = pool.allocate();
  pool.release(a);
  const BlockId b = pool.allocate();
  EXPECT_EQ(a, b);
}

TEST(BlockPool, PeakTracksHighWaterMark) {
  BlockPool pool(4, 64);
  const auto a = pool.allocate();
  const auto b = pool.allocate();
  pool.release(a);
  pool.release(b);
  pool.allocate();
  EXPECT_EQ(pool.peak_blocks_in_use(), 2u);
}

TEST(BlockPool, BlockDataIsIsolatedAndStable) {
  BlockPool pool(3, 64);
  const BlockId a = pool.allocate();
  const BlockId b = pool.allocate();
  uint32_t* da = pool.block_data(a);
  uint32_t* db = pool.block_data(b);
  ASSERT_NE(da, db);
  for (uint32_t i = 0; i < 64; ++i) {
    da[i] = 100 + i;
    db[i] = 900 + i;
  }
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(da[i], 100 + i);
    EXPECT_EQ(db[i], 900 + i);
  }
}

TEST(BlockPool, NonPowerOfTwoBlockWordsThrows) {
  EXPECT_THROW(BlockPool(4, 100), Error);
  EXPECT_THROW(BlockPool(0, 64), Error);
}

TEST(BlockPoolDeathTest, DoubleFreeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  BlockPool pool(2, 64);
  const BlockId a = pool.allocate();
  pool.release(a);
  EXPECT_DEATH(pool.release(a), "double free");
}

}  // namespace
}  // namespace adds
