// PushCombiner tests: staging/flush mechanics, the protocol flush points,
// drop-on-abort semantics, fault injection inside the batch flush path, and
// a multi-writer stress across window-rotation boundaries (no staged item
// may ever be lost or duplicated by a flush racing a rotation).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "queue/lane_codec.hpp"
#include "queue/push_combiner.hpp"
#include "queue/work_queue.hpp"
#include "queue/wrap.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

WorkQueue::Config small_cfg(uint32_t buckets = 4) {
  WorkQueue::Config cfg;
  cfg.num_buckets = buckets;
  cfg.bucket.segment_words = 8;
  cfg.bucket.table_size = 4;
  return cfg;
}

TEST(PushCombiner, StagesWithoutPublishingUntilCapacity) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(32);

  PushCombiner comb(q, 4);
  comb.push(1, 5.0);
  comb.push(2, 5.0);
  comb.push(3, 5.0);
  // Staged items are invisible to the manager: no reservation yet.
  EXPECT_EQ(q.total_pending(), 0u);
  EXPECT_EQ(comb.staged_pending(), 3u);
  EXPECT_EQ(comb.stats().flushes, 0u);

  comb.push(4, 5.0);  // lane hits capacity: one batched publication
  EXPECT_EQ(comb.staged_pending(), 0u);
  EXPECT_EQ(q.pending_of(0), 4u);
  EXPECT_EQ(comb.stats().flushes, 1u);
  EXPECT_EQ(comb.stats().flushed_items, 4u);
  EXPECT_EQ(comb.stats().reserve_ops, 1u);
  // Four items inside one 8-word segment: exactly one WCC increment.
  EXPECT_EQ(comb.stats().publish_ops, 1u);
}

TEST(PushCombiner, FlushAllDrainsEveryLane) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(32);

  PushCombiner comb(q, 64);
  comb.push(1, 5.0);    // logical 0
  comb.push(2, 15.0);   // logical 1
  comb.push(3, 25.0);   // logical 2
  comb.push(4, 999.0);  // clipped to tail
  EXPECT_EQ(q.total_pending(), 0u);
  comb.flush_all();
  EXPECT_EQ(comb.staged_pending(), 0u);
  EXPECT_EQ(q.pending_of(0), 1u);
  EXPECT_EQ(q.pending_of(1), 1u);
  EXPECT_EQ(q.pending_of(2), 1u);
  EXPECT_EQ(q.pending_of(3), 1u);
  EXPECT_EQ(comb.stats().flushed_items, 4u);
  EXPECT_EQ(comb.stats().dropped, 0u);
}

TEST(PushCombiner, AbortDropsStagedItems) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(32);

  PushCombiner comb(q, 64);
  comb.push(1, 5.0);
  comb.push(2, 15.0);
  q.request_abort();
  comb.flush_all();
  // Same semantics as the single-item kPushAborted no-op: nothing was
  // reserved or published, the items are gone.
  EXPECT_EQ(comb.stats().dropped, 2u);
  EXPECT_EQ(comb.stats().flushed_items, 0u);
  EXPECT_EQ(comb.stats().reserve_ops, 0u);
  EXPECT_EQ(q.total_pending(), 0u);
}

TEST(PushCombiner, DroppedBatchPublicationWedgesScanLikeCrashedWriter) {
  // `push.drop-before-publish` firing inside a batch flush must abandon
  // the whole reservation unpublished: the manager's segment scan wedges
  // at the hole exactly as if the writer crashed mid-batch, and later
  // publications behind the hole stay unexposed (watchdog territory, see
  // fault_matrix_test for end-to-end recovery).
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(64);

  fault::FaultPlan plan(3);
  plan.set(fault::Site::kPushDropBeforePublish, {1.0, 1, 0});  // first only
  fault::FaultScope scope(plan);

  PushCombiner comb(q, 8);
  for (uint32_t i = 0; i < 8; ++i) comb.push(i, 5.0);  // auto flush: dropped
  EXPECT_EQ(plan.fires(fault::Site::kPushDropBeforePublish), 1u);
  EXPECT_EQ(comb.stats().dropped, 8u);
  Bucket& head = q.logical_bucket(0);
  // The reservation exists (pending grew) but nothing is readable.
  EXPECT_EQ(head.pending_estimate(), 8u);
  EXPECT_EQ(head.scan_written_bound(), head.read_ptr());

  // A healthy batch behind the hole publishes but remains unreadable.
  for (uint32_t i = 0; i < 8; ++i) comb.push(100 + i, 5.0);
  EXPECT_EQ(comb.stats().flushed_items, 8u);
  EXPECT_EQ(head.pending_estimate(), 16u);
  EXPECT_EQ(head.scan_written_bound(), head.read_ptr());
  EXPECT_FALSE(head.drained());
}

TEST(PushCombiner, InjectedDelayFiresInsideBatchFlush) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(64);

  fault::FaultPlan plan(5);
  plan.set(fault::Site::kPushDelay, {1.0, ~0ull, 10});
  fault::FaultScope scope(plan);

  PushCombiner comb(q, 4);
  for (uint32_t i = 0; i < 4; ++i) comb.push(i, 5.0);
  EXPECT_GE(plan.fires(fault::Site::kPushDelay), 1u);
  // The delayed batch still publishes completely.
  EXPECT_EQ(q.logical_bucket(0).scan_written_bound(),
            q.logical_bucket(0).read_ptr() + 4u);
}

TEST(PushCombiner, MultisplitBinsLanesContiguouslyAndLosesNothing) {
  // Batched queries: a flushed staging lane must leave with its items
  // counting-sorted into per-query-lane contiguous segments, with every
  // item's lane bits exactly as staged.
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(64);

  PushCombiner comb(q, 64, /*query_lanes=*/4);
  EXPECT_EQ(comb.query_lanes(), 4u);
  std::vector<uint32_t> pushed;
  for (uint32_t i = 0; i < 32; ++i) {
    const uint32_t item = lane_encode(i % 4, 1000 + i);
    pushed.push_back(item);
    comb.push(item, 5.0);  // one logical bucket: one staging lane
  }
  comb.flush_all();
  EXPECT_EQ(comb.stats().lane_splits, 1u);
  EXPECT_EQ(comb.stats().flushed_items, 32u);
  EXPECT_EQ(comb.stats().dropped, 0u);

  Bucket& head = q.logical_bucket(0);
  const uint32_t start = head.read_ptr();
  ASSERT_EQ(head.scan_written_bound() - start, 32u);
  std::vector<uint32_t> seen;
  for (uint32_t i = 0; i < 32; ++i) seen.push_back(head.read_item(start + i));
  // Per-lane contiguous: lane ids are non-decreasing across the batch.
  for (uint32_t i = 1; i < 32; ++i)
    EXPECT_LE(lane_of(seen[i - 1]), lane_of(seen[i])) << "position " << i;
  // No loss, no duplication, no bit rewrites: same multiset.
  std::sort(pushed.begin(), pushed.end());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(pushed, seen);
}

TEST(PushCombiner, SingleQueryLaneNeverSplits) {
  // The classic single-source configuration must not pay (or count) any
  // multisplit work, whatever bit patterns the items carry.
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(64);

  PushCombiner comb(q, 8);
  for (uint32_t i = 0; i < 16; ++i) comb.push(0xF0000000u | i, 5.0);
  comb.flush_all();
  EXPECT_EQ(comb.stats().lane_splits, 0u);
  EXPECT_EQ(comb.stats().flushed_items, 16u);
}

TEST(PushCombiner, WedgedLaneSplitLosesNoLaneAndCrossesNone) {
  // A writer stalled mid-multisplit (between histogram and scatter) while
  // the manager rotates the window underneath: every item must still be
  // observed exactly once WITH the lane bits it was staged with. Losing an
  // item starves a query lane; rewriting lane bits leaks one query's
  // relaxation into another's distance row — both are protocol violations,
  // not schedule noise.
  constexpr uint32_t kWriters = 4;  // writer w pushes only lane-w items
  constexpr uint32_t kPerWriter = 2000;
  constexpr uint32_t kTotal = kWriters * kPerWriter;

  BlockPool pool(64, 256);
  WorkQueue::Config cfg;
  cfg.num_buckets = 4;
  cfg.bucket.segment_words = 16;
  cfg.bucket.table_size = 8;
  WorkQueue q(pool, cfg);
  q.set_delta(50.0);
  q.ensure_capacity_all(512);

  fault::FaultPlan plan(9);
  plan.set(fault::Site::kLaneSplit, {0.25, ~0ull, 300});
  fault::FaultScope scope(plan);

  std::vector<uint32_t> seen(kTotal, 0);
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (uint32_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      PushCombiner comb(q, 16, /*query_lanes=*/kWriters);
      for (uint32_t i = 0; i < kPerWriter; ++i) {
        const uint32_t node = w * kPerWriter + i;
        comb.push(lane_encode(w, node), double(i % 400));
        if ((i & 255) == 0) std::this_thread::yield();
      }
      comb.flush_all();
      EXPECT_EQ(comb.stats().dropped, 0u);
      EXPECT_EQ(comb.stats().flushed_items, uint64_t(kPerWriter));
      EXPECT_GT(comb.stats().lane_splits, 0u);
    });
  }

  std::thread manager([&] {
    uint64_t consumed = 0;
    while (true) {
      q.ensure_capacity_all(512);
      for (uint32_t logical = 0; logical < cfg.num_buckets; ++logical) {
        Bucket& b = q.logical_bucket(logical);
        const uint32_t bound = b.scan_written_bound();
        uint32_t count = 0;
        for (uint32_t idx = b.read_ptr(); wrap_lt(idx, bound); ++idx) {
          const uint32_t item = b.read_item(idx);
          const uint32_t node = node_of(item);
          ASSERT_LT(node, kTotal);
          // Lane bits must match the writer that owns this node range:
          // a mismatch means the split crossed lanes.
          ASSERT_EQ(lane_of(item), node / kPerWriter) << "node " << node;
          ++seen[node];
          ++count;
        }
        if (count > 0) {
          b.advance_read(bound);
          b.complete(count);
          consumed += count;
        }
        b.recycle_below(b.read_ptr());
      }
      if (q.head_drained() && q.total_pending() + q.total_in_flight() > 0)
        q.advance_window();
      if (writers_done.load(std::memory_order_acquire) &&
          consumed >= kTotal && q.total_pending() == 0)
        break;
      std::this_thread::yield();
    }
  });

  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  manager.join();

  EXPECT_GT(plan.fires(fault::Site::kLaneSplit), 0u);
  for (size_t v = 0; v < seen.size(); ++v)
    ASSERT_EQ(seen[v], 1u) << "node " << v << " seen " << seen[v] << " times";
}

TEST(PushCombiner, RotationBoundaryStressLosesNothing) {
  // Writers combine pushes across the whole priority range while a manager
  // thread consumes and rotates the window as heads drain. Every pushed
  // value must be observed exactly once: a flush racing a rotation may
  // misplace a batch by a priority band, never lose or duplicate it.
  constexpr uint32_t kWriters = 4;
  constexpr uint32_t kPerWriter = 20000;
  constexpr uint32_t kTotal = kWriters * kPerWriter;

  BlockPool pool(64, 256);
  WorkQueue::Config cfg;
  cfg.num_buckets = 4;
  cfg.bucket.segment_words = 16;
  cfg.bucket.table_size = 8;  // 2048-item window: wrap + recycling pressure
  WorkQueue q(pool, cfg);
  q.set_delta(50.0);
  q.ensure_capacity_all(512);

  std::vector<uint32_t> seen(kTotal, 0);
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (uint32_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      PushCombiner comb(q, 16);
      for (uint32_t i = 0; i < kPerWriter; ++i) {
        const uint32_t value = w * kPerWriter + i;
        // Distances sweep upward so work spreads over all buckets and the
        // manager keeps rotating underneath the combiner.
        comb.push(value, double(i % 400));
        if ((i & 255) == 0) std::this_thread::yield();
      }
      comb.flush_all();
      EXPECT_EQ(comb.stats().dropped, 0u);
      EXPECT_EQ(comb.stats().staged, uint64_t(kPerWriter));
      EXPECT_EQ(comb.stats().flushed_items, uint64_t(kPerWriter));
    });
  }

  std::thread manager([&] {
    uint64_t consumed = 0;
    while (true) {
      q.ensure_capacity_all(512);
      // Consume from every logical bucket (completion == consumption here,
      // so read_ptr is also the completion frontier).
      for (uint32_t logical = 0; logical < cfg.num_buckets; ++logical) {
        Bucket& b = q.logical_bucket(logical);
        const uint32_t bound = b.scan_written_bound();
        uint32_t count = 0;
        for (uint32_t idx = b.read_ptr(); wrap_lt(idx, bound); ++idx) {
          const uint32_t v = b.read_item(idx);
          ASSERT_LT(v, kTotal);
          ++seen[v];
          ++count;
        }
        if (count > 0) {
          b.advance_read(bound);
          b.complete(count);
          consumed += count;
        }
        b.recycle_below(b.read_ptr());
      }
      // Rotate whenever the head is drained; the window keeps sliding
      // under the writers' racy snapshots.
      if (q.head_drained() && q.total_pending() + q.total_in_flight() > 0)
        q.advance_window();
      if (writers_done.load(std::memory_order_acquire) &&
          consumed >= kTotal && q.total_pending() == 0)
        break;
      std::this_thread::yield();
    }
  });

  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  manager.join();

  for (size_t v = 0; v < seen.size(); ++v)
    ASSERT_EQ(seen[v], 1u) << "value " << v << " seen " << seen[v]
                           << " times";
}

}  // namespace
}  // namespace adds
