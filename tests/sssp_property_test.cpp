// Property-based SSSP tests: for randomized graphs across families and
// seeds, every engine's output must be a valid SSSP fixed point, identical
// to Dijkstra's, and the engines' work/structure counters must satisfy
// basic sanity invariants.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace adds {
namespace {

struct PropCase {
  GraphFamily family;
  uint64_t seed;
};

GraphSpec spec_for(const PropCase& c) {
  GraphSpec s;
  s.family = c.family;
  s.seed = c.seed;
  s.weights = {WeightDist::kUniform, 1000};
  switch (c.family) {
    case GraphFamily::kGridRoad:
      s.scale = 40;
      s.a = 40;
      break;
    case GraphFamily::kRmat:
      s.scale = 11;
      s.a = 8;
      break;
    case GraphFamily::kErdosRenyi:
      s.scale = 3000;
      s.a = 7;
      break;
    case GraphFamily::kWattsStrogatz:
      s.scale = 2048;
      s.a = 6;
      s.b = 0.1;
      break;
    case GraphFamily::kCliqueChain:
      s.scale = 50;
      s.a = 12;
      break;
    default:
      s.scale = 2000;
      break;
  }
  return s;
}

/// A distance array is a valid SSSP fixed point iff dist[source] == 0,
/// every edge satisfies the triangle inequality dist[v] <= dist[u] + w, and
/// every finite-distance vertex other than the source has a witness
/// predecessor edge achieving equality.
template <WeightType W>
void expect_fixed_point(const CsrGraph<W>& g, VertexId source,
                        const std::vector<DistT<W>>& dist) {
  using Dist = DistT<W>;
  ASSERT_EQ(dist.size(), g.num_vertices());
  ASSERT_EQ(dist[source], Dist{0});
  std::vector<bool> has_witness(g.num_vertices(), false);
  has_witness[source] = true;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] == DistTraits<W>::infinity()) continue;
    for (EdgeIndex e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const VertexId v = g.edge_target(e);
      const Dist nd = dist[u] + Dist(g.edge_weight(e));
      ASSERT_LE(dist[v], nd) << "triangle inequality violated at edge " << u
                             << "->" << v;
      if (dist[v] == nd) has_witness[v] = true;
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] != DistTraits<W>::infinity()) {
      ASSERT_TRUE(has_witness[v]) << "vertex " << v << " lacks a witness";
    }
  }
}

class SsspProperties : public testing::TestWithParam<PropCase> {};

TEST_P(SsspProperties, AllEnginesProduceTheUniqueFixedPoint) {
  const auto g = generate_graph<uint32_t>(spec_for(GetParam()));
  const VertexId source = pick_source(g, GetParam().seed);
  EngineConfig cfg;

  const auto oracle = dijkstra(g, source, &cfg.cpu);
  expect_fixed_point(g, source, oracle.dist);

  for (const SolverKind k :
       {SolverKind::kAdds, SolverKind::kAddsHost, SolverKind::kNf,
        SolverKind::kGunNf, SolverKind::kGunBf, SolverKind::kNv,
        SolverKind::kCpuDs}) {
    const auto res = run_solver(k, g, source, cfg);
    expect_fixed_point(g, source, res.dist);
    EXPECT_TRUE(validate_distances(res, oracle).ok()) << res.solver;
  }
}

TEST_P(SsspProperties, WorkCountersAreConsistent) {
  const auto g = generate_graph<uint32_t>(spec_for(GetParam()));
  const VertexId source = pick_source(g, GetParam().seed);
  EngineConfig cfg;

  const auto oracle = dijkstra(g, source, &cfg.cpu);
  const uint64_t reached = oracle.reached();
  // Dijkstra processes each reached vertex exactly once.
  EXPECT_EQ(oracle.work.items_processed, reached);
  EXPECT_GE(oracle.work.pushes, reached);
  EXPECT_GT(oracle.work.heap_ops, 0u);

  for (const SolverKind k : {SolverKind::kAdds, SolverKind::kNf,
                             SolverKind::kGunBf, SolverKind::kCpuDs}) {
    const auto res = run_solver(k, g, source, cfg);
    // No algorithm can settle all vertices with less work than Dijkstra.
    EXPECT_GE(res.work.items_processed, reached - 1) << res.solver;
    // Improvements at least cover first-time settlement of each vertex.
    EXPECT_GE(res.work.improvements + 1, reached) << res.solver;
    EXPECT_GT(res.work.relaxations, 0u) << res.solver;
    EXPECT_GT(res.time_us, 0.0) << res.solver;
  }
}

TEST_P(SsspProperties, FloatEnginesAgreeExactly) {
  const auto spec = spec_for(GetParam());
  const auto g = generate_graph<float>(spec);
  const VertexId source = pick_source(g, GetParam().seed);
  EngineConfig cfg;
  const auto oracle = dijkstra(g, source, &cfg.cpu);
  for (const SolverKind k :
       {SolverKind::kAdds, SolverKind::kAddsHost, SolverKind::kNf}) {
    const auto res = run_solver(k, g, source, cfg);
    // The SSSP fixed point is unique even in float arithmetic: distances
    // are min-over-paths of identically-ordered sums.
    EXPECT_TRUE(validate_distances(res, oracle).ok()) << res.solver;
  }
}

std::vector<PropCase> prop_cases() {
  std::vector<PropCase> out;
  for (const GraphFamily f :
       {GraphFamily::kGridRoad, GraphFamily::kRmat, GraphFamily::kErdosRenyi,
        GraphFamily::kWattsStrogatz, GraphFamily::kCliqueChain}) {
    for (uint64_t seed : {101, 202, 303}) out.push_back({f, seed});
  }
  return out;
}

std::string prop_name(const testing::TestParamInfo<PropCase>& info) {
  std::string n = std::string(family_name(info.param.family)) + "_s" +
                  std::to_string(info.param.seed);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(FamiliesXSeeds, SsspProperties,
                         testing::ValuesIn(prop_cases()), prop_name);

// Weight-distribution edge cases exercised on one engine pair.
TEST(SsspWeights, UnitWeightsReduceToBfs) {
  GraphSpec s;
  s.family = GraphFamily::kGridRoad;
  s.scale = 30;
  s.a = 30;
  s.weights = {WeightDist::kUnit, 1};
  s.seed = 5;
  const auto g = generate_graph<uint32_t>(s);
  EngineConfig cfg;
  const auto res = run_solver(SolverKind::kAdds, g, 0, cfg);
  const auto hops = bfs_hops(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (hops[v] == kUnreachedHops) {
      EXPECT_EQ(res.dist[v], DistTraits<uint32_t>::infinity());
    } else {
      EXPECT_EQ(res.dist[v], hops[v]);
    }
  }
}

TEST(SsspWeights, LargeWeightsDoNotOverflow) {
  // Chain of max-weight edges: total distance ~ n * 2^32 exceeds 32 bits;
  // 64-bit distances must carry it.
  GraphBuilder<uint32_t> b{1000};
  const uint32_t w = std::numeric_limits<uint32_t>::max();
  for (VertexId v = 0; v + 1 < 1000; ++v) b.add_undirected_edge(v, v + 1, w);
  const auto g = b.build();
  EngineConfig cfg;
  const auto res = run_solver(SolverKind::kAdds, g, 0, cfg);
  EXPECT_EQ(res.dist[999], uint64_t(999) * w);
  const auto oracle = dijkstra(g, VertexId{0});
  EXPECT_TRUE(validate_distances(res, oracle).ok());
}

}  // namespace
}  // namespace adds
