// CSR graph and GraphBuilder unit tests.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/transform.hpp"

namespace adds {
namespace {

TEST(GraphBuilder, BuildsSimpleCsr) {
  GraphBuilder<uint32_t> b{4};
  b.add_edge(0, 1, 10);
  b.add_edge(0, 2, 20);
  b.add_edge(2, 3, 30);
  const auto g = b.build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.edge_target(g.edge_begin(2)), 3u);
  EXPECT_EQ(g.edge_weight(g.edge_begin(2)), 30u);
}

TEST(GraphBuilder, NeighborsSpanMatchesEdges) {
  GraphBuilder<uint32_t> b{3};
  b.add_edge(1, 0, 7);
  b.add_edge(1, 2, 9);
  const auto g = b.build();
  const auto n = g.neighbors(1);
  const auto w = g.neighbor_weights(1);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0], 0u);
  EXPECT_EQ(n[1], 2u);
  EXPECT_EQ(w[0], 7u);
  EXPECT_EQ(w[1], 9u);
}

TEST(GraphBuilder, DedupKeepsLightestParallelEdge) {
  GraphBuilder<uint32_t> b{2};
  b.add_edge(0, 1, 50);
  b.add_edge(0, 1, 10);
  b.add_edge(0, 1, 30);
  const auto g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_weight(0), 10u);
}

TEST(GraphBuilder, DedupDisabledKeepsAll) {
  GraphBuilder<uint32_t> b{2};
  b.add_edge(0, 1, 50);
  b.add_edge(0, 1, 10);
  GraphBuilder<uint32_t>::BuildOptions opts;
  opts.dedup_parallel_edges = false;
  const auto g = b.build(opts);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilder, SelfLoopsDroppedByDefault) {
  GraphBuilder<uint32_t> b{2};
  b.add_edge(0, 0, 5);
  b.add_edge(0, 1, 5);
  EXPECT_EQ(b.build().num_edges(), 1u);
}

TEST(GraphBuilder, SelfLoopsKeptWhenRequested) {
  GraphBuilder<uint32_t> b{2};
  b.add_edge(0, 0, 5);
  GraphBuilder<uint32_t>::BuildOptions opts;
  opts.drop_self_loops = false;
  opts.dedup_parallel_edges = false;
  EXPECT_EQ(b.build(opts).num_edges(), 1u);
}

TEST(GraphBuilder, UndirectedAddsBothArcs) {
  GraphBuilder<uint32_t> b{2};
  b.add_undirected_edge(0, 1, 3);
  const auto g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(CsrGraph, AveragesAndMax) {
  GraphBuilder<uint32_t> b{4};
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 20);
  b.add_edge(2, 3, 60);
  const auto g = b.build();
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.75);
  EXPECT_DOUBLE_EQ(g.average_weight(), 30.0);
  EXPECT_EQ(g.max_weight(), 60u);
  EXPECT_GT(g.footprint_bytes(), 0u);
}

TEST(CsrGraph, EmptyGraph) {
  GraphBuilder<uint32_t> b{0};
  const auto g = b.build();
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
  EXPECT_DOUBLE_EQ(g.average_weight(), 0.0);
}

TEST(CsrGraph, RawConstructorValidates) {
  // targets out of range
  EXPECT_THROW(CsrGraph<uint32_t>({0, 1}, {5}, {1u}), Error);
  // offsets not ending at edge count
  EXPECT_THROW(CsrGraph<uint32_t>({0, 2}, {0}, {1u}), Error);
  // decreasing offsets
  EXPECT_THROW(CsrGraph<uint32_t>({0, 2, 1}, {0, 0}, {1u, 1u}), Error);
  // weights size mismatch
  EXPECT_THROW(CsrGraph<uint32_t>({0, 1}, {0}, {}), Error);
}

TEST(CsrGraph, FloatWeightsWork) {
  GraphBuilder<float> b{2};
  b.add_edge(0, 1, 1.5f);
  const auto g = b.build();
  EXPECT_FLOAT_EQ(g.edge_weight(0), 1.5f);
  EXPECT_DOUBLE_EQ(g.average_weight(), 1.5);
}

TEST(Transform, ReverseGraphInvertsArcs) {
  GraphBuilder<uint32_t> b{3};
  b.add_edge(0, 1, 5);
  b.add_edge(0, 2, 7);
  b.add_edge(1, 2, 9);
  const auto g = b.build();
  const auto r = reverse_graph(g);
  EXPECT_EQ(r.num_edges(), 3u);
  EXPECT_EQ(r.out_degree(0), 0u);
  EXPECT_EQ(r.out_degree(1), 1u);
  EXPECT_EQ(r.out_degree(2), 2u);
  EXPECT_EQ(r.edge_target(r.edge_begin(1)), 0u);
  EXPECT_EQ(r.edge_weight(r.edge_begin(1)), 5u);
}

TEST(Transform, DoubleReverseIsIdentityShape) {
  GraphBuilder<uint32_t> b{5};
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 2);
  b.add_edge(3, 1, 3);
  const auto g = b.build();
  const auto rr = reverse_graph(reverse_graph(g));
  ASSERT_EQ(rr.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(rr.out_degree(v), g.out_degree(v));
}

TEST(Transform, SymmetryDetection) {
  GraphBuilder<uint32_t> sym{3};
  sym.add_undirected_edge(0, 1, 4);
  sym.add_undirected_edge(1, 2, 6);
  EXPECT_TRUE(is_symmetric(sym.build()));

  GraphBuilder<uint32_t> asym{3};
  asym.add_edge(0, 1, 4);
  EXPECT_FALSE(is_symmetric(asym.build()));

  // Same topology but asymmetric weights is NOT symmetric.
  GraphBuilder<uint32_t> wasym{2};
  wasym.add_edge(0, 1, 4);
  wasym.add_edge(1, 0, 5);
  EXPECT_FALSE(is_symmetric(wasym.build()));
}

}  // namespace
}  // namespace adds
