// End-to-end correctness: every engine must produce exactly Dijkstra's
// distances on every smoke-corpus graph (the artifact's verify_against_*
// step as a parameterized test matrix).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/corpus.hpp"
#include "graph/generators.hpp"

namespace adds {
namespace {

struct Case {
  SolverKind solver;
  size_t graph_index;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const auto specs = corpus_specs(CorpusTier::kSmoke);
  std::string name = std::string(solver_name(info.param.solver)) + "_" +
                     specs[info.param.graph_index].name.substr(6);
  for (auto& c : name)
    if (c == '-') c = '_';
  return name;
}

class SolverCorrectness : public testing::TestWithParam<Case> {};

TEST_P(SolverCorrectness, MatchesDijkstraInt) {
  const auto specs = corpus_specs(CorpusTier::kSmoke);
  const GraphSpec& spec = specs[GetParam().graph_index];
  const auto g = generate_graph<uint32_t>(spec);
  const VertexId source = pick_source(g);

  EngineConfig cfg;
  const auto oracle = dijkstra(g, source, &cfg.cpu);
  const auto res = run_solver(GetParam().solver, g, source, cfg);

  const auto rep = validate_distances(res, oracle);
  EXPECT_TRUE(rep.ok()) << res.solver << " on " << spec.name << ": "
                        << rep.summary();
  EXPECT_GT(res.reached(), 0u);
}

TEST_P(SolverCorrectness, MatchesDijkstraFloat) {
  const auto specs = corpus_specs(CorpusTier::kSmoke);
  const GraphSpec& spec = specs[GetParam().graph_index];
  const auto g = generate_graph<float>(spec);
  const VertexId source = pick_source(g);

  EngineConfig cfg;
  const auto oracle = dijkstra(g, source, &cfg.cpu);
  const auto res = run_solver(GetParam().solver, g, source, cfg);

  const auto rep = validate_distances(res, oracle);
  EXPECT_TRUE(rep.ok()) << res.solver << " on " << spec.name << ": "
                        << rep.summary();
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const size_t n = corpus_specs(CorpusTier::kSmoke).size();
  for (const SolverKind k :
       {SolverKind::kAdds, SolverKind::kAddsHost, SolverKind::kNf,
        SolverKind::kGunNf, SolverKind::kGunBf, SolverKind::kNv,
        SolverKind::kCpuDs}) {
    for (size_t i = 0; i < n; ++i) cases.push_back({k, i});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSolversAllGraphs, SolverCorrectness,
                         testing::ValuesIn(all_cases()), case_name);

// Unreachable vertices must stay at infinity for every solver.
TEST(SsspEdgeCases, DisconnectedComponent) {
  GraphBuilder<uint32_t> b{6};
  b.add_undirected_edge(0, 1, 5);
  b.add_undirected_edge(1, 2, 7);
  b.add_undirected_edge(3, 4, 2);  // separate component
  const auto g = b.build();

  EngineConfig cfg;
  for (const SolverKind k : all_solvers()) {
    const auto res = run_solver(k, g, 0, cfg);
    EXPECT_EQ(res.dist[0], 0u) << solver_name(k);
    EXPECT_EQ(res.dist[1], 5u) << solver_name(k);
    EXPECT_EQ(res.dist[2], 12u) << solver_name(k);
    EXPECT_EQ(res.dist[3], DistTraits<uint32_t>::infinity())
        << solver_name(k);
    EXPECT_EQ(res.dist[5], DistTraits<uint32_t>::infinity())
        << solver_name(k);
    EXPECT_EQ(res.reached(), 3u) << solver_name(k);
  }
}

TEST(SsspEdgeCases, SingleVertex) {
  GraphBuilder<uint32_t> b{1};
  const auto g = b.build();
  EngineConfig cfg;
  for (const SolverKind k : all_solvers()) {
    const auto res = run_solver(k, g, 0, cfg);
    ASSERT_EQ(res.dist.size(), 1u);
    EXPECT_EQ(res.dist[0], 0u) << solver_name(k);
  }
}

TEST(SsspEdgeCases, SourceOutOfRangeThrows) {
  GraphBuilder<uint32_t> b{3};
  b.add_edge(0, 1, 1);
  const auto g = b.build();
  EngineConfig cfg;
  EXPECT_THROW(run_solver(SolverKind::kAdds, g, 7, cfg), Error);
  EXPECT_THROW(run_solver(SolverKind::kDijkstra, g, 3, cfg), Error);
}

}  // namespace
}  // namespace adds
