// Dynamic-Δ controller tests (paper §5.5): clip guard, settle timing,
// grow/shrink steering, fine-grained active-bucket control, ablation mode.
#include <gtest/gtest.h>

#include "sssp/delta_controller.hpp"
#include "util/error.hpp"

namespace adds {
namespace {

DeltaControllerOptions opts_with(uint32_t settle = 2,
                                 uint32_t settle_updates = 10) {
  DeltaControllerOptions o;
  o.settle_head_switches = settle;
  o.settle_max_updates = settle_updates;
  return o;
}

DeltaController::Signals sig(double util_x_saturation, double tail = 0.0,
                             uint64_t switches = 0, bool pending = true) {
  DeltaController::Signals s;
  s.assigned_edges = util_x_saturation * 1000.0;  // saturation = 1000
  s.tail_share = tail;
  s.head_switches = switches;
  s.work_pending = pending;
  return s;
}

TEST(DeltaController, ClipGuardGrowsImmediately) {
  DeltaController c(opts_with(), 1000.0, 100.0);
  EXPECT_TRUE(c.update(sig(1.0, /*tail=*/0.70)));
  EXPECT_DOUBLE_EQ(c.delta(), 200.0);
  // And again — no settle wait for clip protection.
  EXPECT_TRUE(c.update(sig(1.0, 0.70)));
  EXPECT_DOUBLE_EQ(c.delta(), 400.0);
}

TEST(DeltaController, GrowsWhenUnderutilizedAfterSettle) {
  DeltaController c(opts_with(/*settle=*/2), 1000.0, 100.0);
  // Fine control exhausts first (active buckets ramp to max), then the
  // fallback settle clock expires (no head switches) and Δ grows once.
  bool changed = false;
  int iters = 0;
  while (!changed && iters < 50) {
    changed = c.update(sig(0.1, 0.0, 0));
    ++iters;
  }
  EXPECT_TRUE(changed);
  EXPECT_DOUBLE_EQ(c.delta(), 200.0);
  EXPECT_EQ(c.active_buckets(),
            DeltaControllerOptions{}.max_active_buckets);
}

TEST(DeltaController, ShrinksWhenOversaturatedAfterHeadSwitches) {
  DeltaController c(opts_with(/*settle=*/2), 1000.0, 100.0);
  EXPECT_FALSE(c.update(sig(2.0, 0.0, /*switches=*/0)));
  EXPECT_FALSE(c.update(sig(2.0, 0.0, 1)));
  EXPECT_TRUE(c.update(sig(2.0, 0.0, 2)));
  EXPECT_DOUBLE_EQ(c.delta(), 50.0);
}

TEST(DeltaController, ShrinkRespectsFloor) {
  auto o = opts_with(1, 2);
  o.shrink_floor_factor = 2.0;  // floor = initial / 2
  DeltaController c(o, 1000.0, 100.0);
  uint64_t switches = 0;
  for (int i = 0; i < 40; ++i) c.update(sig(3.0, 0.0, switches += 2));
  EXPECT_GE(c.delta(), 50.0);
}

TEST(DeltaController, ShrinkAvoidedNearClipPoint) {
  DeltaController c(opts_with(1), 1000.0, 100.0);
  // Oversaturated but tail already holds a large share: shrinking would
  // clip, so delta must hold.
  for (int i = 0; i < 20; ++i) {
    c.update(sig(3.0, /*tail=*/0.5, uint64_t(i)));
  }
  EXPECT_DOUBLE_EQ(c.delta(), 100.0);
}

TEST(DeltaController, FineControlAdjustsActiveBuckets) {
  DeltaController c(opts_with(100, 1000000), 1000.0, 100.0);  // no delta moves
  const uint32_t min_b = DeltaControllerOptions{}.min_active_buckets;
  EXPECT_EQ(c.active_buckets(), min_b);
  c.update(sig(0.1));
  EXPECT_EQ(c.active_buckets(), min_b + 1);
  c.update(sig(0.1));
  EXPECT_EQ(c.active_buckets(), min_b + 2);
  c.update(sig(5.0));  // oversaturated -> narrow again
  EXPECT_EQ(c.active_buckets(), min_b + 1);
  // Never below the minimum.
  for (int i = 0; i < 10; ++i) c.update(sig(5.0, 0.5));
  EXPECT_EQ(c.active_buckets(), min_b);
}

TEST(DeltaController, NoGrowWithoutPendingWork) {
  DeltaController c(opts_with(1, 2), 1000.0, 100.0);
  // Drain phase: utilization low but nothing pending — growing would be
  // pointless churn.
  for (int i = 0; i < 10; ++i)
    c.update(sig(0.05, 0.0, uint64_t(i), /*pending=*/false));
  EXPECT_DOUBLE_EQ(c.delta(), 100.0);
}

TEST(DeltaController, DisabledControllerNeverMoves) {
  auto o = opts_with(1, 1);
  o.enabled = false;
  DeltaController c(o, 1000.0, 100.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(c.update(sig(i % 2 ? 5.0 : 0.01, 0.9, uint64_t(i))));
  }
  EXPECT_DOUBLE_EQ(c.delta(), 100.0);
  EXPECT_EQ(c.history().size(), 1u);
}

TEST(DeltaController, HistoryRecordsEveryChange) {
  DeltaController c(opts_with(1, 2), 1000.0, 100.0);
  c.update(sig(1.0, 0.9, 0));  // clip grow
  uint64_t switches = 5;
  for (int i = 0; i < 6; ++i) c.update(sig(2.0, 0.0, switches += 2));
  EXPECT_GE(c.history().size(), 3u);  // initial + grow + >=1 shrink
  EXPECT_DOUBLE_EQ(c.history()[0].second, 100.0);
  EXPECT_DOUBLE_EQ(c.history()[1].second, 200.0);
}

TEST(DeltaController, InitialDeltaClamped) {
  auto o = opts_with();
  o.min_delta = 10.0;
  o.max_delta = 1000.0;
  EXPECT_DOUBLE_EQ(DeltaController(o, 100.0, 0.5).delta(), 10.0);
  EXPECT_DOUBLE_EQ(DeltaController(o, 100.0, 1e9).delta(), 1000.0);
}

TEST(DeltaController, InvalidConstructionThrows) {
  auto o = opts_with();
  EXPECT_THROW(DeltaController(o, 0.0, 100.0), Error);
  o.util_low = 2.0;
  o.util_high = 1.0;
  EXPECT_THROW(DeltaController(o, 100.0, 100.0), Error);
}

}  // namespace
}  // namespace adds
