// GraphCatalog: refcounted snapshot lifetime (publish/retire/evict never
// free a graph someone still holds), typed kUnknownGraph lookups, pinned
// tenants surviving LRU eviction — plus the service-level contract that
// every query result matches the oracle of the graph its fingerprint names
// even while the catalog churns underneath. The churn tests are in the
// TSan/ASan set; the lifetime rules are what they verify.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "service/graph_catalog.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"

namespace adds {
namespace {

std::shared_ptr<const IntGraph> shared_grid(uint64_t seed, uint32_t side = 12) {
  return std::make_shared<const IntGraph>(
      make_grid_road<uint32_t>(side, side, {WeightDist::kUniform, 100}, seed));
}

// ---- lifecycle -------------------------------------------------------------

TEST(GraphCatalog, PublishLookupRetireLifecycle) {
  GraphCatalog<uint32_t> cat;
  const auto g = shared_grid(1);
  const uint64_t fp = cat.publish(g);
  EXPECT_EQ(fp, graph_fingerprint(*g));
  EXPECT_TRUE(cat.contains(fp));
  EXPECT_EQ(cat.size(), 1u);

  const auto snap = cat.lookup(fp);
  EXPECT_EQ(snap.get(), g.get());  // the same snapshot, not a copy

  EXPECT_TRUE(cat.retire(fp));
  EXPECT_FALSE(cat.contains(fp));
  EXPECT_FALSE(cat.retire(fp));  // second retire: already gone
  EXPECT_EQ(cat.try_lookup(fp), nullptr);

  const auto st = cat.stats();
  EXPECT_EQ(st.publishes, 1u);
  EXPECT_EQ(st.retires, 1u);
  EXPECT_EQ(st.unknown_lookups, 1u);
}

TEST(GraphCatalog, UnknownLookupThrowsTyped) {
  GraphCatalog<uint32_t> cat;
  try {
    cat.lookup(0xdeadbeef);
    FAIL() << "lookup of a never-published fingerprint must throw";
  } catch (const CatalogError& e) {
    EXPECT_EQ(e.status(), CatalogStatus::kUnknownGraph);
  }
  EXPECT_EQ(cat.stats().unknown_lookups, 1u);
}

TEST(GraphCatalog, SnapshotOutlivesRetireWhileHeld) {
  GraphCatalog<uint32_t> cat;
  const auto g = shared_grid(2);
  const uint64_t vertices = g->num_vertices();
  const uint64_t fp = cat.publish(g);

  GraphCatalog<uint32_t>::Snapshot held = cat.lookup(fp);
  ASSERT_TRUE(cat.retire(fp));
  // The catalog dropped ITS reference only: the held snapshot still reads.
  EXPECT_EQ(held->num_vertices(), vertices);
  EXPECT_GE(held.use_count(), 1);
}

TEST(GraphCatalog, RepublishRefreshesInsteadOfDuplicating) {
  GraphCatalog<uint32_t> cat;
  const auto g = shared_grid(3);
  const uint64_t fp = cat.publish(g);
  EXPECT_EQ(cat.publish(shared_grid(3)), fp);  // same content, same key
  EXPECT_EQ(cat.size(), 1u);
  EXPECT_EQ(cat.stats().publishes, 1u);
  EXPECT_EQ(cat.stats().republishes, 1u);
  const auto entries = cat.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].publishes, 2u);
}

// ---- residency / eviction ---------------------------------------------------

TEST(GraphCatalog, LruEvictionSkipsPinnedAndRunsHook) {
  GraphCatalog<uint32_t> cat(/*max_graphs=*/2);
  std::vector<uint64_t> evicted;
  cat.set_evict_hook([&](uint64_t fp) { evicted.push_back(fp); });

  const uint64_t fp_a = cat.publish(shared_grid(10), /*pinned=*/true);
  const uint64_t fp_b = cat.publish(shared_grid(11));
  // b is more recent than a, but a is pinned: publishing c evicts b.
  const uint64_t fp_c = cat.publish(shared_grid(12));
  EXPECT_TRUE(cat.contains(fp_a));
  EXPECT_FALSE(cat.contains(fp_b));
  EXPECT_TRUE(cat.contains(fp_c));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], fp_b);
  EXPECT_EQ(cat.stats().evictions, 1u);
}

TEST(GraphCatalog, FullyPinnedCatalogRefusesTyped) {
  GraphCatalog<uint32_t> cat(/*max_graphs=*/2);
  cat.publish(shared_grid(20), /*pinned=*/true);
  cat.publish(shared_grid(21), /*pinned=*/true);
  try {
    cat.publish(shared_grid(22));
    FAIL() << "publish into a fully-pinned catalog must throw";
  } catch (const CatalogError& e) {
    EXPECT_EQ(e.status(), CatalogStatus::kCatalogFull);
  }
  EXPECT_EQ(cat.size(), 2u);
  EXPECT_EQ(cat.stats().pin_refusals, 1u);
  // Unpinning reopens capacity.
  const uint64_t fp_a = cat.entries().back().graph_fp;
  EXPECT_TRUE(cat.set_pinned(fp_a, false));
  EXPECT_NO_THROW(cat.publish(shared_grid(22)));
  EXPECT_FALSE(cat.contains(fp_a));
}

TEST(GraphCatalog, EntriesAreMruFirstAndLookupPromotes) {
  GraphCatalog<uint32_t> cat;
  const uint64_t fp_a = cat.publish(shared_grid(30));
  const uint64_t fp_b = cat.publish(shared_grid(31));
  ASSERT_EQ(cat.entries()[0].graph_fp, fp_b);
  cat.lookup(fp_a);
  EXPECT_EQ(cat.entries()[0].graph_fp, fp_a);
  EXPECT_EQ(cat.entries()[1].graph_fp, fp_b);
  EXPECT_EQ(cat.entries()[0].lookups, 1u);
}

// ---- concurrency (ASan/TSan target) ----------------------------------------

TEST(GraphCatalog, ConcurrentChurnNeverFreesHeldSnapshots) {
  // Writers publish/retire a rotating set of fingerprints while readers
  // grab snapshots and immediately touch their payload. Under ASan any
  // catalog-freed-while-held bug is a use-after-free; under TSan a locking
  // hole is a race report.
  GraphCatalog<uint32_t> cat(/*max_graphs=*/3);
  constexpr int kGraphs = 5;
  std::vector<std::shared_ptr<const IntGraph>> graphs;
  std::vector<uint64_t> fps;
  for (int i = 0; i < kGraphs; ++i) {
    graphs.push_back(shared_grid(uint64_t(100 + i), /*side=*/6));
    fps.push_back(graph_fingerprint(*graphs.back()));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const int k = (i + w) % kGraphs;
        if (i % 3 == 2) {
          cat.retire(fps[size_t(k)]);
        } else {
          cat.publish(graphs[size_t(k)], /*pinned=*/false, fps[size_t(k)]);
        }
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < kGraphs; ++k) {
          if (auto snap = cat.try_lookup(fps[size_t((k + r) % kGraphs)])) {
            // Touch the payload: this is the use-after-free probe.
            EXPECT_EQ(snap->num_vertices(), 36u);
            reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_LE(cat.size(), 3u);
}

// ---- service-level: results match their own graph's oracle -------------------

TEST(GraphCatalog, ServiceChurnValidatesEveryResultAgainstItsOwnGraph) {
  // Three tenants with distinct weights, queried concurrently while one of
  // them is retired and republished in a loop. Every kOk outcome must
  // carry a resident fingerprint and distances matching THAT graph's
  // Dijkstra oracle — never a neighbour's, never a freed snapshot's.
  constexpr int kTenants = 3;
  std::vector<std::shared_ptr<const IntGraph>> graphs;
  std::vector<uint64_t> fps;
  std::unordered_map<uint64_t, std::vector<SsspResult<uint32_t>>> oracles;
  constexpr VertexId kSources = 3;
  for (int i = 0; i < kTenants; ++i) {
    graphs.push_back(shared_grid(uint64_t(200 + i), /*side=*/10));
    fps.push_back(graph_fingerprint(*graphs.back()));
    for (VertexId s = 0; s < kSources; ++s)
      oracles[fps.back()].push_back(dijkstra(*graphs.back(), s));
  }

  ServiceConfig cfg;
  cfg.num_engines = 2;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(graphs[0]);
  for (int i = 1; i < kTenants; ++i)
    EXPECT_EQ(svc.publish_graph(graphs[size_t(i)]), fps[size_t(i)]);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    // Tenant 2 flaps: retired, then republished, over and over.
    while (!stop.load(std::memory_order_relaxed)) {
      svc.retire_graph(fps[2]);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      svc.publish_graph(graphs[2]);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::atomic<uint64_t> ok_count{0}, unknown_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 40; ++i) {
        const size_t k = size_t((i + c) % kTenants);
        QueryOptions q;
        q.graph_fp = fps[k];
        q.bypass_cache = (i % 2 == 0);
        const VertexId src = VertexId(i) % kSources;
        const auto out = svc.submit(src, q).get();
        if (out.status == QueryStatus::kOk) {
          ASSERT_EQ(out.graph_fp, fps[k]);
          const auto& oracle = oracles[out.graph_fp][src];
          EXPECT_TRUE(validate_distances(*out.result, oracle).ok())
              << "result does not match its own graph's oracle";
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          // The only acceptable non-OK during the churn is the typed miss
          // while tenant 2 is between retire and republish.
          ASSERT_EQ(out.status, QueryStatus::kUnknownGraph) << out.error;
          ASSERT_EQ(fps[k], fps[2]) << "stable tenants must never miss";
          unknown_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  churn.join();

  EXPECT_GT(ok_count.load(), 0u);
  const auto rep = svc.report();
  EXPECT_EQ(rep.unknown_graph, unknown_count.load());
  EXPECT_GE(rep.catalog_retires, 1u);
}

}  // namespace
}  // namespace adds
