// Shared Dijkstra-oracle helpers for tests and bench suites.
//
// The batch, service and soak suites all grew their own copies of "solve
// the reference oracle, then explain exactly how the candidate diverged" —
// this header is the one implementation. It is deliberately gtest-free
// (defect checks return an empty string on success, a human-readable
// defect otherwise) so the chaos/bench binaries can share it: tests wrap
// the calls in EXPECT_EQ(..., ""), bench phases turn a non-empty string
// into a violation.
//
// It also hosts the deterministic delta generator the live-delta work
// uses everywhere a "random but replayable" GraphDelta is needed: the
// repair-vs-oracle matrix, the delta-chaos soak phase, the delta bench
// phase and the server's `delta` script command all derive their patches
// from the same (graph, seed) function.
#pragma once

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/validate.hpp"
#include "graph/csr_graph.hpp"
#include "graph/delta.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/result.hpp"
#include "util/rng.hpp"

namespace adds {
namespace oracle {

/// "" when `r` carries exactly the oracle's distances, else the validator
/// summary. Overload for callers that precomputed the oracle (a loop over
/// sources amortizes the Dijkstra runs).
template <WeightType W>
std::string distance_defect(const SsspResult<W>& r,
                            const SsspResult<W>& oracle_result) {
  const auto rep = validate_distances(r, oracle_result);
  return rep.ok() ? std::string() : rep.summary();
}

/// "" when `r` matches a fresh Dijkstra solve of `g` from `s`.
template <WeightType W>
std::string distance_defect(const CsrGraph<W>& g, const SsspResult<W>& r,
                            VertexId s) {
  return distance_defect(r, dijkstra(g, s));
}

/// Parent-tree certificate: parent[source] == source, unreached vertices
/// carry kInvalidVertex, every other reached vertex records a TIGHT
/// predecessor edge (dist[p] + w(p,v) == dist[v] for an actual edge), and
/// walking parents from any vertex reaches the source in < V hops. Returns
/// "" on success, the first defect otherwise.
template <WeightType W>
std::string parent_tree_defect(const CsrGraph<W>& g, const SsspResult<W>& r,
                               VertexId source) {
  std::ostringstream why;
  if (r.parent.size() != size_t(g.num_vertices())) {
    why << "parent array size " << r.parent.size() << " != V "
        << g.num_vertices();
    return why.str();
  }
  if (r.parent[source] != source) {
    why << "parent[source] != source (" << r.parent[source] << ")";
    return why.str();
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.dist[v] == DistTraits<W>::infinity()) {
      if (r.parent[v] != kInvalidVertex) {
        why << "unreached vertex " << v << " has parent " << r.parent[v];
        return why.str();
      }
      continue;
    }
    if (v == source) continue;
    const VertexId p = r.parent[v];
    if (p == kInvalidVertex || p >= g.num_vertices()) {
      why << "reached vertex " << v << " has invalid parent";
      return why.str();
    }
    bool tight = false;
    for (EdgeIndex e = g.edge_begin(p); e < g.edge_end(p); ++e)
      if (g.edge_target(e) == v &&
          r.dist[p] + DistT<W>(g.edge_weight(e)) == r.dist[v])
        tight = true;
    if (!tight) {
      why << "recorded parent edge " << p << " -> " << v << " not tight";
      return why.str();
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.dist[v] == DistTraits<W>::infinity()) continue;
    VertexId cur = v;
    uint32_t hops = 0;
    while (cur != source) {
      cur = r.parent[cur];
      if (cur == kInvalidVertex || ++hops > g.num_vertices()) {
        why << "parent chain from " << v << " does not reach the source";
        return why.str();
      }
    }
  }
  return std::string();
}

/// Deterministic mixed GraphDelta over `g`: `weight_changes` existing
/// edges re-weighted (alternating halve / double, so the batch carries
/// both decreases and increases) plus `inserts` edges verified absent from
/// the parent. Pure function of (g, counts, seed) — the same call replays
/// the same patch everywhere.
template <WeightType W>
GraphDelta<W> make_test_delta(const CsrGraph<W>& g, size_t weight_changes,
                              size_t inserts, uint64_t seed) {
  GraphDelta<W> delta;
  Xoshiro256 rng(mix_seed(seed, 0xde17a));
  const VertexId n = g.num_vertices();
  if (n < 2) return delta;

  size_t changed = 0;
  for (size_t attempt = 0; changed < weight_changes && attempt < 64 * weight_changes + 64;
       ++attempt) {
    const VertexId u = VertexId(rng.next_below(n));
    const EdgeIndex deg = g.edge_end(u) - g.edge_begin(u);
    if (deg == 0) continue;
    const EdgeIndex e = g.edge_begin(u) + EdgeIndex(rng.next_below(deg));
    const W old_w = g.edge_weight(e);
    const W new_w = (changed % 2 == 0) ? std::max(W(old_w / W{2}), W{1})
                                       : W(old_w + old_w + W{1});
    if (new_w == old_w) continue;
    delta.changes.push_back(EdgeChange<W>{u, g.edge_target(e), new_w});
    ++changed;
  }

  size_t added = 0;
  for (size_t attempt = 0; added < inserts && attempt < 64 * inserts + 64;
       ++attempt) {
    const VertexId u = VertexId(rng.next_below(n));
    const VertexId v = VertexId(rng.next_below(n));
    if (u == v) continue;
    bool exists = false;
    for (EdgeIndex e = g.edge_begin(u); e < g.edge_end(u); ++e)
      if (g.edge_target(e) == v) exists = true;
    for (const EdgeChange<W>& c : delta.changes)
      if (c.src == u && c.dst == v) exists = true;
    if (exists) continue;
    delta.changes.push_back(EdgeChange<W>{u, v, W(rng.next_range(1, 300))});
    ++added;
  }
  return delta;
}

}  // namespace oracle
}  // namespace adds
