// Warm HostEngine: correctness and accounting across reuse — the invariant
// the whole serving layer leans on is that query N+1 on a warm engine is
// indistinguishable (results AND stats) from query N+1 on a cold one.
#include <gtest/gtest.h>

#include <atomic>

#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/host_engine.hpp"

namespace adds {
namespace {

AddsHostOptions small_opts() {
  AddsHostOptions o;
  o.num_workers = 3;
  o.chunk_items = 32;
  o.block_words = 256;
  return o;
}

TEST(HostEngine, WarmReuseMatchesDijkstraAcrossQueries) {
  const auto g = make_rmat<uint32_t>(10, 8, 0.57, 0.19, 0.19,
                                     {WeightDist::kUniform, 500}, 11);
  HostEngine<uint32_t> engine(small_opts());
  const VertexId sources[] = {pick_source(g), 0, 1, 7, pick_source(g), 3};
  for (VertexId s : sources) {
    const auto res = engine.solve(g, s);
    const auto oracle = dijkstra(g, s);
    const auto rep = validate_distances(res, oracle);
    EXPECT_TRUE(rep.ok()) << "source " << s << ": " << rep.summary();
  }
  EXPECT_EQ(engine.queries_served(), 6u);
  EXPECT_GT(engine.pool_blocks(), 0u);
}

TEST(HostEngine, WorkStatsDoNotAccumulateAcrossQueries) {
  // Regression: with per-worker stats objects living as long as the
  // engine, a missing reset (or a combiner merged only at thread exit)
  // doubles every counter on the second run. Identical queries must report
  // statistically identical work.
  const auto g = make_grid_road<uint32_t>(24, 24, {WeightDist::kUniform, 200},
                                          5);
  HostEngine<uint32_t> engine(small_opts());
  const VertexId s = pick_source(g);
  const auto r1 = engine.solve(g, s);
  const auto r2 = engine.solve(g, s);
  EXPECT_TRUE(validate_distances(r1, r2).ok());

  ASSERT_GT(r1.work.items_processed, 0u);
  ASSERT_GT(r1.work.pushes, 0u);
  ASSERT_GT(r1.work.queue_publish_ops, 0u);
  // A leak shows up as ~2x; scheduling noise stays well under 1.5x.
  EXPECT_LE(r2.work.items_processed, r1.work.items_processed * 3 / 2);
  EXPECT_LE(r2.work.pushes, r1.work.pushes * 3 / 2);
  EXPECT_LE(r2.work.relaxations, r1.work.relaxations * 3 / 2);
  EXPECT_LE(r2.work.queue_publish_ops, r1.work.queue_publish_ops * 3 / 2);
  EXPECT_LE(r2.work.combined_items, r1.work.combined_items * 3 / 2 + 64);
  // Per-query pool peaks, not engine-lifetime peaks.
  EXPECT_GT(r2.health.peak_blocks_in_use, 0u);
  EXPECT_LE(r2.health.peak_blocks_in_use, r1.health.pool_blocks);
}

TEST(HostEngine, WorkStatsResetZeroesEveryCounter) {
  WorkStats s;
  s.items_processed = 1;
  s.relaxations = 2;
  s.improvements = 3;
  s.pushes = 4;
  s.queue_reserve_ops = 5;
  s.queue_publish_ops = 6;
  s.batch_flushes = 7;
  s.combined_items = 8;
  s.assigned_items = 9;
  s.inline_ranges = 10;
  s.inline_items = 11;
  s.stale_skipped = 12;
  s.heap_ops = 13;
  s.reset();
  WorkStats fresh;
  fresh.merge(s);
  EXPECT_EQ(fresh.items_processed, 0u);
  EXPECT_EQ(fresh.relaxations, 0u);
  EXPECT_EQ(fresh.improvements, 0u);
  EXPECT_EQ(fresh.pushes, 0u);
  EXPECT_EQ(fresh.queue_reserve_ops, 0u);
  EXPECT_EQ(fresh.queue_publish_ops, 0u);
  EXPECT_EQ(fresh.batch_flushes, 0u);
  EXPECT_EQ(fresh.combined_items, 0u);
  EXPECT_EQ(fresh.assigned_items, 0u);
  EXPECT_EQ(fresh.inline_ranges, 0u);
  EXPECT_EQ(fresh.inline_items, 0u);
  EXPECT_EQ(fresh.stale_skipped, 0u);
  EXPECT_EQ(fresh.heap_ops, 0u);
}

TEST(HostEngine, ReusesAcrossDifferentGraphsAndRegrowsPool) {
  HostEngine<uint32_t> engine(small_opts());
  const auto small = make_grid_road<uint32_t>(10, 10,
                                              {WeightDist::kUniform, 100}, 1);
  const auto big = make_rmat<uint32_t>(11, 8, 0.57, 0.19, 0.19,
                                       {WeightDist::kUniform, 500}, 2);

  const auto r1 = engine.solve(small, 0);
  const uint32_t small_pool = engine.pool_blocks();
  EXPECT_TRUE(validate_distances(r1, dijkstra(small, VertexId{0})).ok());

  const auto r2 = engine.solve(big, 0);
  EXPECT_GE(engine.pool_blocks(), small_pool);  // regrown for the big graph
  EXPECT_TRUE(validate_distances(r2, dijkstra(big, VertexId{0})).ok());

  // Back to the small graph on the big pool: no rebuild, still correct.
  const auto r3 = engine.solve(small, 5);
  EXPECT_TRUE(validate_distances(r3, dijkstra(small, VertexId{5})).ok());
  EXPECT_EQ(engine.queries_served(), 3u);
}

TEST(HostEngine, RecoversAfterCancelledQuery) {
  const auto g = make_grid_road<uint32_t>(30, 30, {WeightDist::kUniform, 300},
                                          9);
  HostEngine<uint32_t> engine(small_opts());
  std::atomic<bool> cancel{true};  // pre-set: aborts on the first sweep
  QueryControl ctl;
  ctl.cancel = &cancel;
  EXPECT_THROW(engine.solve(g, 0, ctl), Error);

  // The abort is cleared by the next query's reset; the same warm engine
  // must produce a correct result.
  const auto res = engine.solve(g, 0);
  EXPECT_TRUE(validate_distances(res, dijkstra(g, VertexId{0})).ok());
}

TEST(HostEngine, DeadlineThrowsDistinctTypeAndEngineSurvives) {
  const auto g = make_grid_road<uint32_t>(60, 60, {WeightDist::kUniform, 500},
                                          13);
  HostEngine<uint32_t> engine(small_opts());
  QueryControl ctl;
  ctl.deadline_ms = 1e-3;  // expires on the first manager sweep
  bool deadline_seen = false;
  try {
    engine.solve(g, 0, ctl);
  } catch (const DeadlineError&) {
    deadline_seen = true;
  }
  EXPECT_TRUE(deadline_seen);

  const auto res = engine.solve(g, 0);
  EXPECT_TRUE(validate_distances(res, dijkstra(g, VertexId{0})).ok());
}

TEST(HostEngine, ManagerInlineExecutionFiresAndStaysCorrect) {
  // One worker + tiny chunks: the manager regularly finds sub-threshold
  // leftovers with nobody idle, so the inline path gets real traffic.
  AddsHostOptions opts;
  opts.num_workers = 1;
  opts.chunk_items = 16;
  opts.manager_inline_items = 16;
  const auto g = make_rmat<uint32_t>(10, 8, 0.57, 0.19, 0.19,
                                     {WeightDist::kUniform, 400}, 17);
  HostEngine<uint32_t> engine(opts);
  const VertexId s = pick_source(g);
  const auto res = engine.solve(g, s);
  EXPECT_TRUE(validate_distances(res, dijkstra(g, s)).ok());
  EXPECT_GT(res.work.inline_ranges, 0u);
  EXPECT_GT(res.work.inline_items, 0u);
  EXPECT_GE(res.work.inline_items, res.work.inline_ranges);

  // And with the knob off, the counters stay silent.
  opts.manager_inline_items = 0;
  HostEngine<uint32_t> off(opts);
  const auto res_off = off.solve(g, s);
  EXPECT_TRUE(validate_distances(res_off, dijkstra(g, s)).ok());
  EXPECT_EQ(res_off.work.inline_ranges, 0u);
  EXPECT_EQ(res_off.work.inline_items, 0u);
}

TEST(HostEngine, FloatVariantReusesCorrectly) {
  const auto g = make_grid_road<float>(20, 20, {WeightDist::kUniform, 100}, 3);
  HostEngine<float> engine;
  for (VertexId s : {VertexId{0}, VertexId{17}, VertexId{0}}) {
    const auto res = engine.solve(g, s);
    EXPECT_TRUE(validate_distances(res, dijkstra(g, s)).ok());
  }
}

TEST(HostEngine, OneShotWrapperStillWorks) {
  // adds_host() is now a thin wrapper over a throwaway engine; its
  // semantics must be unchanged.
  const auto g = make_grid_road<uint32_t>(15, 15, {WeightDist::kUniform, 50},
                                          21);
  const auto res = adds_host(g, 0, small_opts());
  EXPECT_EQ(res.solver, "adds-host");
  EXPECT_TRUE(validate_distances(res, dijkstra(g, VertexId{0})).ok());
}

}  // namespace
}  // namespace adds
