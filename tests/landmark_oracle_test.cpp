// LandmarkOracle bound soundness — the subsystem's one non-negotiable
// invariant, checked against the Dijkstra oracle:
//
//   lower(s,t) <= dist(s,t) <= upper(s,t)   for every pair,
//
// across every graph class in the corpus generator, for all landmark
// selections (K from 1 to the lane cap), and across graph deltas (warm
// per-lane repair). An answer() that claims exactness must BE exact —
// bit-equal distance, matching reachability — and the LandmarkFaultMatrix
// proves that an injected landmark.build fault yields a typed failure,
// never a table that serves a wrong bound.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "graph/csr_graph.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "landmark/landmark_oracle.hpp"
#include "oracle_util.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/host_engine.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

using fault::FaultPlan;
using fault::FaultScope;
using fault::FaultSpec;
using fault::Site;

AddsHostOptions small_opts() {
  AddsHostOptions o;
  o.num_workers = 3;
  o.chunk_items = 32;
  o.block_words = 256;
  return o;
}

LandmarkConfig table_cfg(uint32_t k) {
  LandmarkConfig cfg;
  cfg.num_landmarks = k;
  return cfg;
}

/// "" when every (source, t) bound brackets the oracle distance and every
/// answered pair is bit-equal to it; first defect otherwise.
std::string bounds_defect(const CsrGraph<uint32_t>& g,
                          const LandmarkTable<uint32_t>& tbl,
                          VertexId source) {
  constexpr DistT<uint32_t> kInf = DistTraits<uint32_t>::infinity();
  const auto oracle = dijkstra(g, source);
  std::ostringstream why;
  for (VertexId t = 0; t < g.num_vertices(); ++t) {
    const DistT<uint32_t> d = oracle.dist[t];
    const OracleBounds<uint32_t> b = tbl.bounds(source, t);
    if (d == kInf) {
      // An unreachable pair must never get a finite upper bound: a finite
      // upper means some landmark reaches both endpoints, which on a
      // symmetric graph implies connectivity.
      if (b.upper != kInf) {
        why << "pair (" << source << "," << t
            << ") unreachable but upper=" << b.upper;
        return why.str();
      }
    } else {
      if (b.lower > d || d > b.upper) {
        why << "pair (" << source << "," << t << "): bounds [" << b.lower
            << "," << b.upper << "] do not bracket dist " << d;
        return why.str();
      }
    }
    const OracleAnswer<uint32_t> a = tbl.answer(source, t);
    if (a.answered) {
      if (a.reachable != (d != kInf)) {
        why << "pair (" << source << "," << t
            << "): answered reachable=" << a.reachable << " oracle says "
            << (d != kInf);
        return why.str();
      }
      if (a.reachable && a.distance != d) {
        why << "pair (" << source << "," << t << "): answered " << a.distance
            << " != oracle " << d;
        return why.str();
      }
    }
  }
  return std::string();
}

/// Mirrors every change of a deterministic test delta so the child stays
/// symmetric: weight changes patch both arcs of the undirected edge,
/// inserts add both directions.
GraphDelta<uint32_t> symmetric_delta(const CsrGraph<uint32_t>& g,
                                     size_t weight_changes, size_t inserts,
                                     uint64_t seed) {
  const GraphDelta<uint32_t> base =
      oracle::make_test_delta(g, weight_changes, inserts, seed);
  GraphDelta<uint32_t> out;
  for (const EdgeChange<uint32_t>& c : base.changes) {
    out.changes.push_back(c);
    out.changes.push_back(EdgeChange<uint32_t>{c.dst, c.src, c.weight});
  }
  return out;
}

// --- bound soundness across every corpus graph class ----------------------

TEST(LandmarkOracle, BoundsSoundAcrossCorpus) {
  HostEngine<uint32_t> engine(small_opts());
  for (const GraphSpec& spec : corpus_specs(CorpusTier::kSmoke)) {
    const auto g = generate_graph<uint32_t>(spec);
    ASSERT_TRUE(LandmarkOracle<uint32_t>::is_symmetric(g)) << spec.name;
    const auto tbl = LandmarkOracle<uint32_t>::build(g, /*graph_fp=*/1,
                                                     engine, table_cfg(4));
    ASSERT_NE(tbl, nullptr) << spec.name;
    EXPECT_GE(tbl->num_landmarks(), 1u) << spec.name;
    const VertexId sources[] = {pick_source(g),
                                VertexId(g.num_vertices() - 1)};
    for (const VertexId s : sources)
      EXPECT_EQ(bounds_defect(g, *tbl, s), "") << spec.name;
  }
}

// Every landmark count from a single landmark to the lane cap must give
// sound (if looser) bounds — the invariant cannot depend on K.
TEST(LandmarkOracle, BoundsSoundForAllSelections) {
  const auto g =
      make_grid_road<uint32_t>(14, 11, {WeightDist::kUniform, 900}, 5);
  HostEngine<uint32_t> engine(small_opts());
  for (const uint32_t k : {1u, 2u, 3u, 5u, 8u, 16u, 32u}) {
    const auto tbl =
        LandmarkOracle<uint32_t>::build(g, k, engine, table_cfg(k));
    ASSERT_NE(tbl, nullptr);
    EXPECT_EQ(tbl->num_landmarks(), std::min(k, uint32_t(kMaxLanes)));
    EXPECT_EQ(bounds_defect(g, *tbl, pick_source(g)), "") << "k=" << k;
  }
}

// Landmark endpoints always produce tight bounds: querying from a
// landmark must be answered exactly with zero traversal.
TEST(LandmarkOracle, LandmarkEndpointsAnswerExact) {
  const auto g = make_chain<uint32_t>(64, {WeightDist::kUniform, 50}, 9);
  HostEngine<uint32_t> engine(small_opts());
  const auto tbl =
      LandmarkOracle<uint32_t>::build(g, 2, engine, table_cfg(4));
  ASSERT_NE(tbl, nullptr);
  for (const VertexId L : tbl->landmarks()) {
    const auto oracle = dijkstra(g, L);
    for (VertexId t = 0; t < g.num_vertices(); t += 7) {
      const auto a = tbl->answer(L, t);
      ASSERT_TRUE(a.answered) << "landmark " << L << " -> " << t;
      EXPECT_TRUE(a.reachable);
      EXPECT_EQ(a.distance, oracle.dist[t]);
    }
  }
  // Same-vertex queries are answered 0 without any landmark involvement.
  const auto self = tbl->answer(5, 5);
  ASSERT_TRUE(self.answered);
  EXPECT_TRUE(self.reachable);
  EXPECT_EQ(self.distance, 0u);
}

// --- landmark selection ---------------------------------------------------

TEST(LandmarkOracle, SelectionDeterministicSortedUnique) {
  const auto g =
      make_grid_road<uint32_t>(12, 12, {WeightDist::kUniform, 100}, 7);
  const auto a = LandmarkOracle<uint32_t>::select_landmarks(g, 8, 42);
  const auto b = LandmarkOracle<uint32_t>::select_landmarks(g, 8, 42);
  EXPECT_EQ(a, b);  // pure function of (graph, k, seed)
  EXPECT_EQ(a.size(), 8u);
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
  for (const VertexId v : a) EXPECT_LT(v, g.num_vertices());
  // K above the lane cap clamps; K above V clamps harder.
  EXPECT_EQ(LandmarkOracle<uint32_t>::select_landmarks(g, 64, 42).size(),
            size_t(kMaxLanes));
  const auto tiny = make_chain<uint32_t>(3, {WeightDist::kUnit, 1}, 1);
  EXPECT_EQ(LandmarkOracle<uint32_t>::select_landmarks(tiny, 8, 42).size(),
            3u);
}

// The farthest-point sweep treats unreached vertices as infinitely far,
// so with K >= component count every component gets a landmark — the
// oracle can then prove unreachability decisively.
TEST(LandmarkOracle, SelectionCoversComponents) {
  GraphBuilder<uint32_t> b{12};
  for (VertexId v = 0; v < 5; ++v) b.add_undirected_edge(v, v + 1, 3);
  for (VertexId v = 6; v < 11; ++v) b.add_undirected_edge(v, v + 1, 4);
  const auto g = b.build();
  const auto picks = LandmarkOracle<uint32_t>::select_landmarks(g, 2, 42);
  ASSERT_EQ(picks.size(), 2u);
  const bool first_low = picks[0] <= 5;
  const bool second_low = picks[1] <= 5;
  EXPECT_NE(first_low, second_low) << "both landmarks in one component";

  HostEngine<uint32_t> engine(small_opts());
  const auto tbl =
      LandmarkOracle<uint32_t>::build(g, 3, engine, table_cfg(2));
  ASSERT_NE(tbl, nullptr);
  // Cross-component pairs are decisively unreachable — answered, not
  // guessed.
  const auto a = tbl->answer(0, 7);
  ASSERT_TRUE(a.answered);
  EXPECT_FALSE(a.reachable);
  EXPECT_EQ(bounds_defect(g, *tbl, 0), "");
  EXPECT_EQ(bounds_defect(g, *tbl, 7), "");
}

// --- symmetry gate --------------------------------------------------------

TEST(LandmarkOracle, AsymmetricGraphIsTypedUnsupported) {
  GraphBuilder<uint32_t> b{4};
  b.add_edge(0, 1, 5);  // one-way arc: ALT bounds are unsound here
  b.add_undirected_edge(1, 2, 2);
  b.add_undirected_edge(2, 3, 2);
  const auto g = b.build();
  EXPECT_FALSE(LandmarkOracle<uint32_t>::is_symmetric(g));
  HostEngine<uint32_t> engine(small_opts());
  EXPECT_THROW(
      LandmarkOracle<uint32_t>::build(g, 9, engine, table_cfg(4)),
      LandmarkUnsupportedError);
}

TEST(LandmarkOracle, SymmetryIsMultisetExact) {
  // Same endpoints, different weights per direction: every arc has a
  // reverse arc, but the weights disagree — still asymmetric.
  GraphBuilder<uint32_t> b{3};
  b.add_edge(0, 1, 5);
  b.add_edge(1, 0, 6);
  b.add_undirected_edge(1, 2, 2);
  EXPECT_FALSE(LandmarkOracle<uint32_t>::is_symmetric(b.build()));
  // Parallel undirected edges with distinct weights are symmetric.
  GraphBuilder<uint32_t> p{2};
  p.add_undirected_edge(0, 1, 3);
  p.add_undirected_edge(0, 1, 7);
  EXPECT_TRUE(LandmarkOracle<uint32_t>::is_symmetric(p.build()));
}

// --- warm repair across deltas --------------------------------------------

TEST(LandmarkOracle, RepairedTableSoundAfterDelta) {
  const auto parent =
      make_grid_road<uint32_t>(13, 13, {WeightDist::kUniform, 800}, 21);
  HostEngine<uint32_t> engine(small_opts());
  const auto ptbl = LandmarkOracle<uint32_t>::build(parent, 1, engine,
                                                    table_cfg(6));
  ASSERT_NE(ptbl, nullptr);

  auto prev = std::make_shared<const CsrGraph<uint32_t>>(parent);
  auto prev_tbl = ptbl;
  // Chain three deltas, repairing the table in place each generation.
  for (uint64_t gen = 1; gen <= 3; ++gen) {
    const GraphDelta<uint32_t> delta = symmetric_delta(*prev, 6, 2, gen);
    const auto applied = apply_delta(*prev, delta);
    auto child = std::make_shared<const CsrGraph<uint32_t>>(applied.graph);
    const auto ctbl = LandmarkOracle<uint32_t>::repair(
        *prev_tbl, *prev, *child, /*child_fp=*/gen + 1, applied, engine,
        table_cfg(6));
    ASSERT_NE(ctbl, nullptr) << "generation " << gen;
    EXPECT_TRUE(ctbl->repaired());
    EXPECT_EQ(ctbl->landmarks(), prev_tbl->landmarks())
        << "repair must keep the parent's landmark set";
    EXPECT_EQ(bounds_defect(*child, *ctbl, pick_source(*child)), "")
        << "generation " << gen;
    EXPECT_EQ(bounds_defect(*child, *ctbl, 0), "") << "generation " << gen;
    prev = std::move(child);
    prev_tbl = ctbl;
  }
}

TEST(LandmarkOracle, RepairRejectsSymmetryLoss) {
  const auto parent =
      make_grid_road<uint32_t>(8, 8, {WeightDist::kUniform, 100}, 3);
  HostEngine<uint32_t> engine(small_opts());
  const auto ptbl = LandmarkOracle<uint32_t>::build(parent, 1, engine,
                                                    table_cfg(4));
  ASSERT_NE(ptbl, nullptr);
  // A one-way insert breaks the symmetry precondition on the child: the
  // repair must refuse typed rather than produce unsound bounds.
  GraphDelta<uint32_t> delta;
  delta.changes.push_back(EdgeChange<uint32_t>{0, 17, 5});
  auto applied = apply_delta(parent, delta);
  EXPECT_THROW(LandmarkOracle<uint32_t>::repair(*ptbl, parent, applied.graph,
                                                2, applied, engine,
                                                table_cfg(4)),
               LandmarkUnsupportedError);
}

// --- fault matrix over landmark.build -------------------------------------

// A certain fault yields a typed adds::Error (NOT kUnsupported — the graph
// is fine, the build is not), and no table escapes.
TEST(LandmarkFaultMatrix, CertainBuildFaultIsTypedError) {
  const auto g =
      make_grid_road<uint32_t>(9, 9, {WeightDist::kUniform, 200}, 11);
  HostEngine<uint32_t> engine(small_opts());
  FaultPlan plan(7);
  plan.set(Site::kLandmarkBuild, FaultSpec{1.0, ~0ull, 0});
  FaultScope scope(plan);
  try {
    LandmarkOracle<uint32_t>::build(g, 1, engine, table_cfg(4));
    FAIL() << "build must throw under a certain landmark.build fault";
  } catch (const LandmarkUnsupportedError&) {
    FAIL() << "a build fault is not an unsupported graph";
  } catch (const Error&) {
    // typed, as required
  }
  EXPECT_GT(plan.total_fires(), 0u);
}

// Probabilistic faults across seeds: every trial either fails typed or
// produces a table whose every bound brackets the oracle — a wrong answer
// is the one outcome the matrix forbids.
TEST(LandmarkFaultMatrix, BuildFaultsNeverYieldWrongBounds) {
  const auto g =
      make_grid_road<uint32_t>(9, 9, {WeightDist::kUniform, 200}, 11);
  HostEngine<uint32_t> engine(small_opts());
  uint64_t fires = 0, failures = 0, successes = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FaultPlan plan(seed);
    plan.set(Site::kLandmarkBuild, FaultSpec{0.5, ~0ull, 0});
    std::shared_ptr<const LandmarkTable<uint32_t>> tbl;
    {
      FaultScope scope(plan);
      try {
        tbl = LandmarkOracle<uint32_t>::build(g, seed, engine, table_cfg(4));
      } catch (const Error&) {
        ++failures;
      }
      fires += plan.total_fires();
    }
    if (tbl != nullptr) {
      ++successes;
      EXPECT_EQ(bounds_defect(g, *tbl, pick_source(g)), "")
          << "seed " << seed;
    }
  }
  EXPECT_GT(fires, 0u);
  EXPECT_GT(failures, 0u);  // 0.5 over 6 seeds: at least one must fire
}

// The warm-repair path rolls the same site per landmark lane: a fault
// mid-repair must throw typed, never hand back a partially repaired table.
TEST(LandmarkFaultMatrix, RepairFaultIsTypedNeverPartial) {
  const auto parent =
      make_grid_road<uint32_t>(8, 8, {WeightDist::kUniform, 100}, 3);
  HostEngine<uint32_t> engine(small_opts());
  const auto ptbl = LandmarkOracle<uint32_t>::build(parent, 1, engine,
                                                    table_cfg(4));
  ASSERT_NE(ptbl, nullptr);
  const GraphDelta<uint32_t> delta = symmetric_delta(parent, 4, 1, 13);
  auto applied = apply_delta(parent, delta);

  FaultPlan plan(3);
  plan.set(Site::kLandmarkBuild, FaultSpec{1.0, ~0ull, 0});
  FaultScope scope(plan);
  EXPECT_THROW(
      LandmarkOracle<uint32_t>::repair(*ptbl, parent, applied.graph, 2,
                                       applied, engine, table_cfg(4)),
      Error);
  EXPECT_GT(plan.total_fires(), 0u);
  // The parent table is untouched by the failed repair.
  EXPECT_EQ(bounds_defect(parent, *ptbl, 0), "");
}

// --- registry lifecycle ---------------------------------------------------

TEST(LandmarkRegistry, LifecycleStatusAndLru) {
  const auto g = make_chain<uint32_t>(16, {WeightDist::kUnit, 1}, 1);
  HostEngine<uint32_t> engine(small_opts());
  const auto mk = [&](uint64_t fp) {
    return LandmarkOracle<uint32_t>::build(g, fp, engine, table_cfg(2));
  };

  LandmarkRegistry<uint32_t> reg(/*max_tables=*/2);
  EXPECT_EQ(reg.status(1), LandmarkTableStatus::kNone);
  reg.set_status(1, LandmarkTableStatus::kBuilding);
  EXPECT_EQ(reg.status(1), LandmarkTableStatus::kBuilding);
  EXPECT_EQ(reg.lookup(1), nullptr);  // not READY yet

  reg.install(1, mk(1));
  reg.install(2, mk(2));
  EXPECT_EQ(reg.resident_tables(), 2u);
  ASSERT_NE(reg.lookup(1), nullptr);  // touches recency: 1 now most recent

  reg.install(3, mk(3));  // evicts 2, the least recently used
  EXPECT_EQ(reg.resident_tables(), 2u);
  EXPECT_EQ(reg.evictions(), 1u);
  EXPECT_EQ(reg.lookup(2), nullptr);
  EXPECT_NE(reg.lookup(1), nullptr);
  EXPECT_NE(reg.lookup(3), nullptr);

  // info() reads status without perturbing recency: peeking 1 twice must
  // not save it from eviction order changes caused by a later lookup(3).
  const auto i1 = reg.info(1);
  EXPECT_EQ(i1.status, LandmarkTableStatus::kReady);
  EXPECT_EQ(i1.landmarks, reg.lookup(1)->num_landmarks());

  // A reader holding a snapshot survives a drop.
  const auto held = reg.lookup(3);
  reg.drop(3);
  EXPECT_EQ(reg.lookup(3), nullptr);
  EXPECT_EQ(reg.status(3), LandmarkTableStatus::kNone);
  EXPECT_EQ(bounds_defect(g, *held, 0), "");

  // Statuses without tables occupy no residency.
  reg.set_status(9, LandmarkTableStatus::kUnsupported);
  EXPECT_EQ(reg.status(9), LandmarkTableStatus::kUnsupported);
  EXPECT_EQ(reg.resident_tables(), 1u);
}

}  // namespace
}  // namespace adds
