// Self-healing service: supervision policy units (HealthGovernor,
// beacon_wedged, flight-event formatting) plus end-to-end recovery — a
// fault-wedged engine is killed, quarantined and rebuilt while the pool
// keeps serving, a persistently failing engine is permanently retired,
// and brownout serves bounded-staleness results with typed fingerprints.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "service/result_cache.hpp"
#include "service/sssp_service.hpp"
#include "service/supervisor.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

// ---- HealthGovernor (pure policy) -----------------------------------------

SupervisorConfig governor_cfg() {
  SupervisorConfig cfg;
  cfg.brownout_enter_load = 0.75;
  cfg.brownout_exit_load = 0.50;
  return cfg;
}

HealthSignals signals(double load, uint32_t avail, uint32_t fleet,
                      double p99 = 0.0) {
  HealthSignals s;
  s.load = load;
  s.engines_available = avail;
  s.engines_in_fleet = fleet;
  s.p99_ms = p99;
  return s;
}

TEST(HealthGovernor, LoadDrivesBrownoutWithHysteresis) {
  HealthGovernor g(governor_cfg());
  EXPECT_EQ(g.state(), ServiceHealth::kHealthy);
  EXPECT_FALSE(g.update(signals(0.5, 2, 2)));  // below enter: no change
  EXPECT_TRUE(g.update(signals(0.8, 2, 2)));   // >= enter
  EXPECT_EQ(g.state(), ServiceHealth::kBrownout);
  // Between exit and enter: hysteresis holds the brownout band.
  EXPECT_FALSE(g.update(signals(0.6, 2, 2)));
  EXPECT_EQ(g.state(), ServiceHealth::kBrownout);
  // Drained to the exit watermark with a full fleet: healthy again.
  EXPECT_TRUE(g.update(signals(0.4, 2, 2)));
  EXPECT_EQ(g.state(), ServiceHealth::kHealthy);
  EXPECT_EQ(g.transitions(), 2u);
}

TEST(HealthGovernor, DegradedFleetForcesBrownout) {
  HealthGovernor g(governor_cfg());
  EXPECT_TRUE(g.update(signals(0.0, 1, 2)));  // one engine quarantined
  EXPECT_EQ(g.state(), ServiceHealth::kBrownout);
  EXPECT_TRUE(g.update(signals(0.0, 2, 2)));  // fleet restored
  EXPECT_EQ(g.state(), ServiceHealth::kHealthy);
}

TEST(HealthGovernor, SheddingAlwaysReEntersThroughBrownout) {
  HealthGovernor g(governor_cfg());
  EXPECT_TRUE(g.update(signals(0.0, 0, 2)));
  EXPECT_EQ(g.state(), ServiceHealth::kShedding);
  // Capacity returns with zero load: still brownout first, never a jump
  // straight to healthy.
  EXPECT_TRUE(g.update(signals(0.0, 2, 2)));
  EXPECT_EQ(g.state(), ServiceHealth::kBrownout);
  EXPECT_TRUE(g.update(signals(0.0, 2, 2)));
  EXPECT_EQ(g.state(), ServiceHealth::kHealthy);
}

TEST(HealthGovernor, LatencySignalOnlyWhenConfigured) {
  SupervisorConfig cfg = governor_cfg();
  HealthGovernor off(cfg);
  EXPECT_FALSE(off.update(signals(0.0, 2, 2, /*p99=*/1e9)));  // disabled
  cfg.brownout_p99_ms = 100.0;
  HealthGovernor on(cfg);
  EXPECT_TRUE(on.update(signals(0.0, 2, 2, /*p99=*/250.0)));
  EXPECT_EQ(on.state(), ServiceHealth::kBrownout);
}

TEST(HealthGovernor, ZeroEnterLoadIsPermanentBrownout) {
  // The deterministic test hook used by the stale-serve tests below: with
  // enter load 0 every snapshot (load >= 0) engages brownout.
  SupervisorConfig cfg = governor_cfg();
  cfg.brownout_enter_load = 0.0;
  HealthGovernor g(cfg);
  EXPECT_TRUE(g.update(signals(0.0, 2, 2)));
  EXPECT_EQ(g.state(), ServiceHealth::kBrownout);
  EXPECT_FALSE(g.update(signals(0.0, 2, 2)));
  EXPECT_EQ(g.state(), ServiceHealth::kBrownout);
}

// ---- beacon_wedged (pure policy) ------------------------------------------

TEST(BeaconWedged, QuietBusySlotWedgesOnlyPastThreshold) {
  EngineSupervision slot;
  slot.state = EngineState::kBusy;
  slot.busy_since_ms = 100.0;
  slot.last_pulse_ms = 100.0;
  slot.pulse_seen = slot.beacon.pulse.load();
  EXPECT_FALSE(beacon_wedged(slot, 150.0, 100.0));  // 50ms quiet
  EXPECT_FALSE(beacon_wedged(slot, 200.0, 100.0));  // exactly at bound
  EXPECT_TRUE(beacon_wedged(slot, 201.0, 100.0));   // past it
}

TEST(BeaconWedged, PulseAdvanceRefreshesTheClock) {
  EngineSupervision slot;
  slot.state = EngineState::kBusy;
  slot.busy_since_ms = 0.0;
  slot.last_pulse_ms = 0.0;
  slot.pulse_seen = slot.beacon.pulse.load();
  slot.beacon.pulse.fetch_add(1);  // the engine made progress
  EXPECT_FALSE(beacon_wedged(slot, 500.0, 100.0));  // refresh, not wedge
  EXPECT_EQ(slot.last_pulse_ms, 500.0);
  EXPECT_FALSE(beacon_wedged(slot, 590.0, 100.0));
  EXPECT_TRUE(beacon_wedged(slot, 601.0, 100.0));
}

TEST(BeaconWedged, FreshDispatchIsNotJudgedByOldTimestamps) {
  // A slot re-dispatched moments ago must be measured from busy_since, not
  // the previous query's pulse bookkeeping.
  EngineSupervision slot;
  slot.state = EngineState::kBusy;
  slot.last_pulse_ms = 0.0;     // stale, from the previous query
  slot.busy_since_ms = 1000.0;  // dispatched just now
  slot.pulse_seen = slot.beacon.pulse.load();
  EXPECT_FALSE(beacon_wedged(slot, 1050.0, 100.0));
  EXPECT_TRUE(beacon_wedged(slot, 1101.0, 100.0));
}

// ---- flight-event formatting ----------------------------------------------

TEST(FlightFormat, NamesAndFormatterCoverTheVocabulary) {
  EXPECT_STREQ(flight_kind_name(FlightKind::kEngineRetired),
               "engine-retired");
  EXPECT_STREQ(flight_kind_name(FlightKind::kQueryStaleHit),
               "query-stale-hit");

  StampedFlightEvent e{};
  e.seq = 42;
  e.ev.t_ms = 12.5f;
  e.ev.kind = uint16_t(FlightKind::kEngineWedged);
  e.ev.engine = 1;
  e.ev.a = 310;  // pulse age ms
  e.ev.b = 17;   // query id
  const std::string line = format_flight_event(e);
  EXPECT_NE(line.find("#42"), std::string::npos) << line;
  EXPECT_NE(line.find("engine 1"), std::string::npos) << line;
  EXPECT_NE(line.find("engine-wedged"), std::string::npos) << line;
  EXPECT_NE(line.find("q=17"), std::string::npos) << line;

  e.ev.kind = uint16_t(FlightKind::kHealthTransition);
  e.ev.engine = FlightEvent::kNoEngine;
  e.ev.a = (uint32_t(ServiceHealth::kHealthy) << 8) |
           uint32_t(ServiceHealth::kBrownout);
  e.ev.c = 2;
  const std::string h = format_flight_event(e);
  EXPECT_NE(h.find("healthy -> brownout"), std::string::npos) << h;
}

// ---- end-to-end recovery ---------------------------------------------------

IntGraph supervisor_graph() {
  return make_grid_road<uint32_t>(30, 30, {WeightDist::kUniform, 200}, 11);
}

bool dump_has(const std::vector<StampedFlightEvent>& events, FlightKind k) {
  for (const auto& e : events)
    if (e.ev.kind == uint16_t(k)) return true;
  return false;
}

template <typename Pred>
bool poll_until(Pred&& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

TEST(SupervisorRecovery, WedgedEngineIsKilledQuarantinedAndRebuilt) {
  const auto g = supervisor_graph();
  const auto oracle = dijkstra(g, VertexId{0});

  ServiceConfig cfg;
  cfg.num_engines = 2;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;  // the supervisor is the recovery story
  cfg.supervisor.tick_ms = 1.0;
  cfg.supervisor.wedge_ms = 100.0;  // well inside the engine's own 250ms
  cfg.supervisor.quarantine_after_errors = 1;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  QueryOptions q;
  q.bypass_cache = true;

  // One dropped publication wedges exactly one solve's termination scan.
  fault::FaultPlan plan(7);
  plan.set(fault::Site::kPushDropBeforePublish, {1.0, /*max_fires=*/1, 0});
  QueryOutcome<uint32_t> wedged;
  {
    fault::FaultScope scope(plan);
    wedged = svc.submit(0, q).get();
  }
  ASSERT_EQ(plan.fires(fault::Site::kPushDropBeforePublish), 1u);
  EXPECT_EQ(wedged.status, QueryStatus::kFailed) << wedged.error;

  // The pool keeps answering on the surviving engine while the rebuilder
  // works, and the rebuilt slot returns: full availability again.
  ASSERT_TRUE(poll_until(
      [&] {
        const auto rep = svc.report();
        return rep.rebuilds >= 1 && rep.engines_available == 2;
      },
      20000))
      << "engine never returned to service";

  for (int i = 0; i < 6; ++i) {
    const auto out = svc.submit(0, q).get();
    ASSERT_EQ(out.status, QueryStatus::kOk) << out.error;
    EXPECT_TRUE(validate_distances(*out.result, oracle).ok());
  }

  const auto rep = svc.report();
  EXPECT_GE(rep.supervisor_kills, 1u);  // the beacon, not luck, caught it
  EXPECT_GE(rep.quarantines, 1u);
  EXPECT_GE(rep.rebuilds, 1u);
  EXPECT_EQ(rep.engines_retired, 0u);
  EXPECT_EQ(rep.failed, 1u);

  // The whole episode is reconstructible from the flight recorder.
  const auto events = svc.flight_dump();
  EXPECT_TRUE(dump_has(events, FlightKind::kQueryAdmit));
  EXPECT_TRUE(dump_has(events, FlightKind::kEngineWedged));
  EXPECT_TRUE(dump_has(events, FlightKind::kEngineQuarantined));
  EXPECT_TRUE(dump_has(events, FlightKind::kEngineRecovered));
  EXPECT_TRUE(dump_has(events, FlightKind::kFaultObserved));
  for (const auto& e : events)
    EXPECT_FALSE(format_flight_event(e).empty());
}

TEST(SupervisorRecovery, PersistentlyFailingEngineIsRetiredTyped) {
  const auto g = supervisor_graph();

  ServiceConfig cfg;
  cfg.num_engines = 1;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.guarded_fallback = false;
  cfg.supervisor.tick_ms = 1.0;
  cfg.supervisor.wedge_ms = 80.0;
  cfg.supervisor.quarantine_after_errors = 1;
  cfg.supervisor.max_probe_failures = 2;
  cfg.supervisor.probe_deadline_ms = 150.0;  // probes fail fast
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  // Every solve — including each post-rebuild probe — wedges, so the
  // rebuilder burns through max_probe_failures and retires the slot.
  fault::FaultPlan plan(11);
  plan.set(fault::Site::kPushDropBeforePublish, {1.0, ~0ull, 0});
  fault::FaultScope scope(plan);

  QueryOptions q;
  q.bypass_cache = true;
  const auto out = svc.submit(0, q).get();
  EXPECT_EQ(out.status, QueryStatus::kFailed) << out.error;

  ASSERT_TRUE(poll_until(
      [&] { return svc.report().engines_retired == 1; }, 30000))
      << "engine was never retired";

  const auto rep = svc.report();
  ASSERT_EQ(rep.engine_status.size(), 1u);
  EXPECT_EQ(rep.engine_status[0].state, EngineState::kRetired);
  EXPECT_GE(rep.probe_failures, 2u);
  EXPECT_GE(rep.quarantines, 1u);
  EXPECT_EQ(rep.engines_available, 0u);

  // With zero capacity the governor sheds new work typed, never hangs it.
  ASSERT_TRUE(poll_until(
      [&] { return svc.report().health == ServiceHealth::kShedding; }, 5000));
  const auto shed = svc.submit(0, q).get();
  EXPECT_EQ(shed.status, QueryStatus::kOverloaded);

  const auto events = svc.flight_dump();
  EXPECT_TRUE(dump_has(events, FlightKind::kEngineProbeFailed));
  EXPECT_TRUE(dump_has(events, FlightKind::kEngineRetired));
  svc.shutdown();
}

TEST(SupervisorBrownout, StaleServeCarriesOldFingerprintWithinWindow) {
  const auto g1 = make_grid_road<uint32_t>(20, 20,
                                           {WeightDist::kUniform, 200}, 1);
  const auto g2 = make_grid_road<uint32_t>(20, 20,
                                           {WeightDist::kUniform, 200}, 2);
  const uint64_t fp1 = graph_fingerprint(g1);
  const uint64_t fp2 = graph_fingerprint(g2);
  ASSERT_NE(fp1, fp2);
  const auto oracle1 = dijkstra(g1, VertexId{0});
  const auto oracle2 = dijkstra(g2, VertexId{0});

  ServiceConfig cfg;
  cfg.num_engines = 1;
  cfg.engine.num_workers = 2;
  cfg.supervisor.tick_ms = 1.0;
  cfg.supervisor.brownout_enter_load = 0.0;  // permanent brownout (hook)
  cfg.supervisor.stale_serve_ms = 60000.0;
  cfg.supervisor.brownout_deadline_clamp_ms = 30000.0;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g1);
  ASSERT_TRUE(poll_until(
      [&] { return svc.report().health == ServiceHealth::kBrownout; }, 5000));

  // Populate the cache on generation 1 (the clamp applies: no deadline was
  // given, brownout imposes one).
  const auto first = svc.query(0);
  EXPECT_FALSE(first.stale);
  EXPECT_EQ(first.graph_fp, fp1);
  EXPECT_TRUE(validate_distances(*first.result, oracle1).ok());
  EXPECT_GE(svc.report().brownout_clamped, 1u);

  // Swap graphs: inside the stale window a brownout miss on the current
  // generation serves the old one, and says so.
  svc.set_graph(g2);
  const auto stale = svc.query(0);
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(stale.graph_fp, fp1);
  EXPECT_TRUE(validate_distances(*stale.result, oracle1).ok());
  EXPECT_EQ(svc.report().stale_hits, 1u);

  // A source never cached for generation 1 cannot be served stale: it is
  // computed fresh on generation 2.
  const auto fresh = svc.query(7);
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.graph_fp, fp2);

  EXPECT_TRUE(dump_has(svc.flight_dump(), FlightKind::kQueryStaleHit));
}

TEST(SupervisorBrownout, StaleWindowExpiryForcesFreshResults) {
  const auto g1 = make_grid_road<uint32_t>(15, 15,
                                           {WeightDist::kUniform, 100}, 3);
  const auto g2 = make_grid_road<uint32_t>(15, 15,
                                           {WeightDist::kUniform, 100}, 4);
  const uint64_t fp2 = graph_fingerprint(g2);

  ServiceConfig cfg;
  cfg.num_engines = 1;
  cfg.engine.num_workers = 2;
  cfg.supervisor.tick_ms = 1.0;
  cfg.supervisor.brownout_enter_load = 0.0;
  cfg.supervisor.stale_serve_ms = 50.0;  // a window short enough to outlive
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g1);
  svc.query(0);
  svc.set_graph(g2);

  // After the window closes the supervisor purges the old generation; the
  // same source now computes fresh on the new graph.
  ASSERT_TRUE(poll_until(
      [&] {
        return dump_has(svc.flight_dump(), FlightKind::kStaleWindowExpired);
      },
      5000))
      << "stale window never expired";
  const auto out = svc.query(0);
  EXPECT_FALSE(out.stale);
  EXPECT_EQ(out.graph_fp, fp2);
  EXPECT_TRUE(
      validate_distances(*out.result, dijkstra(g2, VertexId{0})).ok());
}

TEST(SupervisorDisabled, ConfigOffMeansNoSupervisionMachinery) {
  // The master switch preserves pre-supervision behavior: no health
  // machine (always kHealthy), no beacon wiring, queries still serve.
  const auto g = supervisor_graph();
  ServiceConfig cfg;
  cfg.num_engines = 1;
  cfg.engine.num_workers = 2;
  cfg.supervisor.enabled = false;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);
  const auto out = svc.query(0);
  EXPECT_EQ(out.status, QueryStatus::kOk);
  const auto rep = svc.report();
  EXPECT_EQ(rep.health, ServiceHealth::kHealthy);
  EXPECT_EQ(rep.supervisor_kills, 0u);
  EXPECT_EQ(rep.quarantines, 0u);
  EXPECT_EQ(rep.engines_available, 1u);
}

}  // namespace
}  // namespace adds
