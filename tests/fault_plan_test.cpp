// FaultPlan unit tests: seed-determinism, per-site isolation, fire caps,
// counters, arming semantics, and the disarmed fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/fault.hpp"

namespace adds {
namespace {

using fault::FaultPlan;
using fault::FaultScope;
using fault::FaultSpec;
using fault::Site;

std::vector<bool> roll_sequence(uint64_t seed, Site site, double p, int n) {
  FaultPlan plan(seed);
  plan.set(site, {p, ~0ull, 0});
  std::vector<bool> out;
  out.reserve(size_t(n));
  for (int i = 0; i < n; ++i) out.push_back(plan.roll(site));
  return out;
}

TEST(FaultPlan, SameSeedSameDecisionSequence) {
  const auto a = roll_sequence(42, Site::kPushDelay, 0.5, 200);
  const auto b = roll_sequence(42, Site::kPushDelay, 0.5, 200);
  EXPECT_EQ(a, b);
  // Sanity: p=0.5 over 200 rolls fires somewhere strictly inside (0, 200).
  const auto fires = size_t(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 200u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  const auto a = roll_sequence(1, Site::kPushDelay, 0.5, 200);
  const auto b = roll_sequence(2, Site::kPushDelay, 0.5, 200);
  EXPECT_NE(a, b);
}

TEST(FaultPlan, SitesRollIndependently) {
  // Same seed, different sites: independent decision streams.
  const auto a = roll_sequence(7, Site::kPushDelay, 0.5, 200);
  const auto b = roll_sequence(7, Site::kWorkerStall, 0.5, 200);
  EXPECT_NE(a, b);
}

TEST(FaultPlan, ProbabilityEndpoints) {
  FaultPlan plan(9);
  plan.set(Site::kPoolAllocFail, {1.0, ~0ull, 0});
  plan.set(Site::kPushDelay, {0.0, ~0ull, 0});
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(plan.roll(Site::kPoolAllocFail));
    EXPECT_FALSE(plan.roll(Site::kPushDelay));
  }
  // Unarmed sites never fire.
  EXPECT_FALSE(plan.roll(Site::kManagerScanStall));
  EXPECT_EQ(plan.hits(Site::kManagerScanStall), 0u);
}

TEST(FaultPlan, MaxFiresCapsTheSite) {
  FaultPlan plan(3);
  plan.set(Site::kPushDropBeforePublish, {1.0, 2, 0});
  int fires = 0;
  for (int i = 0; i < 100; ++i)
    if (plan.roll(Site::kPushDropBeforePublish)) ++fires;
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(plan.fires(Site::kPushDropBeforePublish), 2u);
}

TEST(FaultPlan, CountersTrackHitsAndFires) {
  FaultPlan plan(11);
  plan.set(Site::kAfDeliveryDelay, {0.25, ~0ull, 0});
  uint64_t fired = 0;
  for (int i = 0; i < 400; ++i)
    if (plan.roll(Site::kAfDeliveryDelay)) ++fired;
  EXPECT_EQ(plan.hits(Site::kAfDeliveryDelay), 400u);
  EXPECT_EQ(plan.fires(Site::kAfDeliveryDelay), fired);
  EXPECT_EQ(plan.total_fires(), fired);
}

TEST(FaultPlan, ArmDisarmGatesTheGlobalCheck) {
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::fire(Site::kPoolAllocFail));
  {
    FaultPlan plan(5);
    plan.set(Site::kPoolAllocFail, {1.0, ~0ull, 0});
    FaultScope scope(plan);
    EXPECT_TRUE(fault::armed());
    EXPECT_EQ(fault::active_plan(), &plan);
    EXPECT_TRUE(fault::fire(Site::kPoolAllocFail));
    EXPECT_EQ(fault::total_fires(), 1u);
  }
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::active_plan(), nullptr);
  EXPECT_FALSE(fault::fire(Site::kPoolAllocFail));
  EXPECT_EQ(fault::total_fires(), 0u);
}

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (size_t i = 0; i < fault::kNumSites; ++i) {
    const Site s = Site(i);
    const auto parsed = fault::parse_site(fault::site_name(s));
    ASSERT_TRUE(parsed.has_value()) << fault::site_name(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(fault::parse_site("no.such.site").has_value());
}

}  // namespace
}  // namespace adds
