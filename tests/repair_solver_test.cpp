// Warm-start SSSP repair: plan_repair + HostEngine::solve_repair +
// verify_repair against patched-graph Dijkstra oracles.
//
// The contract under test: a repaired tree is bit-identical in distances
// to a cold solve on the child graph — for decreases, increases, inserts
// and mixed batches across seeds; an untouched shortest-path structure
// yields an empty frontier and an exact fast path; the certificate
// accepts exactly the exact trees (and in particular rejects the
// all-zeros labeling that per-edge feasibility alone cannot); and the
// repair.delta fault site turns a repair into a typed adds::Error, never
// a silently wrong tree.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/analysis.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "oracle_util.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/host_engine.hpp"
#include "sssp/repair.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

AddsHostOptions small_opts() {
  AddsHostOptions o;
  o.num_workers = 3;
  o.chunk_items = 32;
  o.block_words = 256;
  return o;
}

IntGraph test_graph(uint64_t seed = 3) {
  return make_grid_road<uint32_t>(20, 20, {WeightDist::kUniform, 200}, seed);
}

/// An edge on a shortest path (tight) or strictly off every shortest path
/// (slack), by scanning the parent oracle. Returns (edge index, tail).
std::pair<EdgeIndex, VertexId> find_edge(const IntGraph& g,
                                         const SsspResult<uint32_t>& d,
                                         bool tight, VertexId source) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (d.dist[u] == DistTraits<uint32_t>::infinity()) continue;
    for (EdgeIndex e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const VertexId v = g.edge_target(e);
      if (v == source) continue;
      const bool is_tight =
          d.dist[u] + uint64_t(g.edge_weight(e)) == d.dist[v];
      if (is_tight == tight) return {e, u};
    }
  }
  return {EdgeIndex(-1), 0};
}

/// Runs the full pipeline and checks the repaired tree against a cold
/// Dijkstra solve of the child.
void expect_repair_exact(const IntGraph& parent, const GraphDelta<uint32_t>& d,
                         VertexId source, HostEngine<uint32_t>& engine,
                         uint64_t* invalidated = nullptr) {
  const auto parent_oracle = dijkstra(parent, source);
  const auto res = apply_delta(parent, d);
  const auto plan =
      plan_repair(parent, res.graph, res, parent_oracle.dist, source);
  if (invalidated != nullptr) *invalidated = plan.invalidated;
  const auto repaired = engine.solve_repair(res.graph, source, plan);
  EXPECT_EQ(repaired.solver, "adds-host-repair");
  EXPECT_EQ(oracle::distance_defect(res.graph, repaired, source), "");
  const auto verdict = verify_repair(res.graph, source, repaired.dist);
  EXPECT_TRUE(verdict.exact)
      << verdict.feasibility_violations << " infeasible, "
      << verdict.unsupported << " unsupported";
}

TEST(RepairSolver, DecreaseRepairsToChildOracle) {
  const auto g = test_graph();
  const VertexId source = 0;
  const auto d0 = dijkstra(g, source);
  const auto [e, u] = find_edge(g, d0, /*tight=*/true, source);
  ASSERT_NE(e, EdgeIndex(-1));
  GraphDelta<uint32_t> delta;
  delta.changes.push_back(
      {u, g.edge_target(e), std::max(g.edge_weight(e) / 4, 1u)});
  HostEngine<uint32_t> engine(small_opts());
  expect_repair_exact(g, delta, source, engine);
}

TEST(RepairSolver, IncreaseOnShortestPathInvalidatesAndRepairs) {
  const auto g = test_graph(7);
  const VertexId source = 0;
  const auto d0 = dijkstra(g, source);
  const auto [e, u] = find_edge(g, d0, /*tight=*/true, source);
  ASSERT_NE(e, EdgeIndex(-1));
  GraphDelta<uint32_t> delta;
  delta.changes.push_back({u, g.edge_target(e), g.edge_weight(e) * 8});
  HostEngine<uint32_t> engine(small_opts());
  uint64_t invalidated = 0;
  expect_repair_exact(g, delta, source, engine, &invalidated);
  // The head of a tight increased edge must have been reset.
  EXPECT_GT(invalidated, 0u);
}

TEST(RepairSolver, InsertRepairsToChildOracle) {
  const auto g = test_graph(9);
  GraphDelta<uint32_t> delta;
  // A cheap shortcut to the far corner: real distance drops.
  delta.changes.push_back({0, g.num_vertices() - 1, 1});
  HostEngine<uint32_t> engine(small_opts());
  expect_repair_exact(g, delta, 0, engine);
}

TEST(RepairSolver, SlackIncreaseYieldsEmptyFrontierFastPath) {
  const auto g = test_graph(13);
  const VertexId source = 0;
  const auto d0 = dijkstra(g, source);
  const auto [e, u] = find_edge(g, d0, /*tight=*/false, source);
  ASSERT_NE(e, EdgeIndex(-1));
  // Raising a slack edge cannot change any distance: the planner must
  // prove it (empty frontier, nothing invalidated) and the solver must
  // return the warm labels untouched.
  GraphDelta<uint32_t> delta;
  delta.changes.push_back({u, g.edge_target(e), g.edge_weight(e) + 1000});
  const auto res = apply_delta(g, delta);
  const auto plan = plan_repair(g, res.graph, res, d0.dist, source);
  EXPECT_TRUE(plan.frontier.empty());
  EXPECT_EQ(plan.invalidated, 0u);
  HostEngine<uint32_t> engine(small_opts());
  const auto repaired = engine.solve_repair(res.graph, source, plan);
  EXPECT_EQ(repaired.dist, d0.dist);
  EXPECT_TRUE(verify_repair(res.graph, source, repaired.dist).exact);
}

TEST(RepairSolver, MixedDeltasAcrossSeedsMatchOracle) {
  const auto g = test_graph(21);
  HostEngine<uint32_t> engine(small_opts());
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auto delta = oracle::make_test_delta(g, 16, 4, seed);
    ASSERT_FALSE(delta.empty());
    uint64_t invalidated = 0;
    expect_repair_exact(g, delta, pick_source(g), engine, &invalidated);
  }
  // The engine interleaves repairs with ordinary solves and stays warm.
  EXPECT_EQ(oracle::distance_defect(g, engine.solve(g, 5), VertexId{5}), "");
}

TEST(RepairSolver, FloatRepairMatchesOracle) {
  const auto g =
      make_grid_road<float>(14, 14, {WeightDist::kUniform, 100}, 17);
  const VertexId source = 0;
  const auto d0 = dijkstra(g, source);
  const auto delta = oracle::make_test_delta(g, 10, 2, 4);
  const auto res = apply_delta(g, delta);
  const auto plan = plan_repair(g, res.graph, res, d0.dist, source);
  HostEngine<float> engine(small_opts());
  const auto repaired = engine.solve_repair(res.graph, source, plan);
  EXPECT_EQ(oracle::distance_defect(res.graph, repaired, source), "");
  EXPECT_TRUE(verify_repair(res.graph, source, repaired.dist).exact);
}

TEST(RepairVerifier, CertificateAcceptsExactRejectsCorrupt) {
  const auto g = test_graph(31);
  const VertexId source = 0;
  const auto exact = dijkstra(g, source);
  EXPECT_TRUE(verify_repair(g, source, exact.dist).exact);

  // Lowering a reachable label leaves it without a tight in-edge.
  auto low = exact.dist;
  VertexId victim = 1;
  while (low[victim] == DistTraits<uint32_t>::infinity() || low[victim] == 0)
    ++victim;
  low[victim] -= 1;
  const auto vl = verify_repair(g, source, low);
  EXPECT_FALSE(vl.exact);

  // Raising it breaks feasibility on its (formerly tight) in-edge.
  auto high = exact.dist;
  high[victim] += 1;
  const auto vh = verify_repair(g, source, high);
  EXPECT_FALSE(vh.exact);
  EXPECT_GT(vh.feasibility_violations, 0u);

  // The all-zeros labeling is per-edge feasible (0 <= 0 + w); only the
  // support half of the certificate rejects it. This is the case that
  // makes feasibility-only verification unsound.
  std::vector<uint64_t> zeros(g.num_vertices(), 0);
  const auto vz = verify_repair(g, source, zeros);
  EXPECT_FALSE(vz.exact);
  EXPECT_EQ(vz.feasibility_violations, 0u);
  EXPECT_GT(vz.unsupported, 0u);

  // Structural garbage is rejected outright.
  EXPECT_FALSE(verify_repair(g, source, std::vector<uint64_t>(3, 0)).exact);
  auto bad_src = exact.dist;
  bad_src[source] = 5;
  EXPECT_FALSE(verify_repair(g, source, bad_src).exact);
}

TEST(RepairSolver, RejectsMalformedPlans) {
  const auto g = test_graph(37);
  HostEngine<uint32_t> engine(small_opts());
  RepairPlan<uint32_t> plan;
  plan.warm.assign(g.num_vertices() - 1, 0);  // wrong size
  EXPECT_THROW(engine.solve_repair(g, 0, plan), Error);
  plan.warm.assign(g.num_vertices(), 7);  // warm[source] != 0
  EXPECT_THROW(engine.solve_repair(g, 0, plan), Error);
  // plan_repair itself rejects labels that are not a solve of the source.
  const auto res = apply_delta(g, oracle::make_test_delta(g, 2, 0, 1));
  std::vector<uint64_t> not_a_solve(g.num_vertices(), 9);
  EXPECT_THROW(plan_repair(g, res.graph, res, not_a_solve, 0), Error);
  // And the engine still works after the rejections.
  EXPECT_EQ(oracle::distance_defect(g, engine.solve(g, 0), VertexId{0}), "");
}

// ---- Fault-matrix rows for the repair.delta site ----------------------------
//
// With the site armed, solve_repair either throws a typed adds::Error
// (the injected repair failure the service converts into a cold-solve
// fallback) or completes with a tree that matches the child oracle.
// There is no third outcome: never a silently wrong tree, never a hang.

class DeltaRepairFaultMatrix : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaRepairFaultMatrix, RepairFailsTypedOrExact) {
  const auto g = test_graph(43);
  const VertexId source = 0;
  const auto d0 = dijkstra(g, source);
  HostEngine<uint32_t> engine(small_opts());

  fault::FaultPlan plan(GetParam());
  plan.set(fault::Site::kDeltaRepair, {0.5, ~0ull, 0});
  {
    fault::FaultScope scope(plan);
    uint64_t survived = 0, failed_typed = 0;
    for (uint64_t round = 0; round < 6; ++round) {
      const auto delta =
          oracle::make_test_delta(g, 8, 2, GetParam() * 100 + round);
      const auto res = apply_delta(g, delta);
      const auto rp = plan_repair(g, res.graph, res, d0.dist, source);
      try {
        const auto repaired = engine.solve_repair(res.graph, source, rp);
        EXPECT_EQ(oracle::distance_defect(res.graph, repaired, source), "")
            << "seed " << GetParam() << " round " << round;
        EXPECT_TRUE(verify_repair(res.graph, source, repaired.dist).exact);
        ++survived;
      } catch (const Error&) {
        ++failed_typed;  // typed failure is the contract, not a bug
      }
    }
    EXPECT_EQ(survived + failed_typed, 6u);
    // At probability 0.5 over 6 rounds the site must actually exercise.
    EXPECT_GT(plan.fires(fault::Site::kDeltaRepair), 0u);
  }
  // The engine survives its own injected failures and stays warm.
  EXPECT_EQ(oracle::distance_defect(g, engine.solve(g, source), source), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaRepairFaultMatrix,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace adds
