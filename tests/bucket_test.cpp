// Single-threaded Bucket protocol tests: reservation, publication, the
// manager's segment scan (WCC == N and partial-segment resv comparison),
// completion/retirement, block recycling, and 32-bit index wrap-around.
#include <gtest/gtest.h>

#include "queue/bucket.hpp"
#include "queue/wrap.hpp"

namespace adds {
namespace {

constexpr uint32_t kBlockWords = 64;

BucketConfig small_cfg() {
  BucketConfig cfg;
  cfg.segment_words = 8;
  cfg.table_size = 4;  // capacity window: 4 * 64 = 256 items
  return cfg;
}

TEST(Wrap, OrderingAcrossOverflow) {
  EXPECT_TRUE(wrap_lt(0xfffffff0u, 0x10u));
  EXPECT_FALSE(wrap_lt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(wrap_le(5u, 5u));
  EXPECT_EQ(wrap_distance(0xfffffffeu, 2u), 4u);
}

TEST(Bucket, PushThenScanExposesItems) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(32);
  for (uint32_t i = 0; i < 10; ++i) b.push(100 + i);
  const uint32_t bound = b.scan_written_bound();
  EXPECT_EQ(bound, 10u);
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(b.read_item(i), 100 + i);
}

TEST(Bucket, ScanHandlesExactlyFullSegments) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(64);
  for (uint32_t i = 0; i < 16; ++i) b.push(i);  // exactly 2 segments of 8
  EXPECT_EQ(b.scan_written_bound(), 16u);
}

TEST(Bucket, ScanStopsAtUnwrittenHole) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(32);
  // Reserve 10 slots but publish only slots 0..4 and 6..9: slot 5 is a hole.
  const uint32_t start = b.reserve(10);
  ASSERT_EQ(start, 0u);
  ASSERT_TRUE(b.wait_allocated(10));
  for (uint32_t i = 0; i < 10; ++i) {
    if (i == 5) continue;
    b.write(i, i);
  }
  b.publish(0, 5);
  b.publish(6, 4);
  // Segment 0 covers 0..7 with WCC == 7 != 8, and 0 + 7 != resv (10), so
  // nothing in segment 0 can be trusted beyond read_ptr.
  EXPECT_EQ(b.scan_written_bound(), 0u);
  // Filling the hole completes the first segment (WCC == 8) and makes the
  // partial second segment provable via WCC + base == resv.
  b.write(5, 5);
  b.publish(5, 1);
  EXPECT_EQ(b.scan_written_bound(), 10u);
}

TEST(Bucket, PartialSegmentProvableViaResvComparison) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(32);
  for (uint32_t i = 0; i < 3; ++i) b.push(i);  // 3 of 8 slots in segment 0
  // WCC == 3, seg_base(0) + 3 == resv(3): provably fully written.
  EXPECT_EQ(b.scan_written_bound(), 3u);
}

TEST(Bucket, ScanFromMidSegmentReadPtr) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(32);
  for (uint32_t i = 0; i < 5; ++i) b.push(i);
  b.advance_read(b.scan_written_bound());
  EXPECT_EQ(b.read_ptr(), 5u);
  for (uint32_t i = 5; i < 12; ++i) b.push(i);
  EXPECT_EQ(b.scan_written_bound(), 12u);
}

TEST(Bucket, DrainedRequiresCompletion) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(32);
  EXPECT_TRUE(b.drained());  // empty bucket is drained
  b.push(7);
  EXPECT_FALSE(b.drained());  // written but not read
  b.advance_read(b.scan_written_bound());
  EXPECT_FALSE(b.drained());  // read but not completed
  b.complete(1);
  EXPECT_TRUE(b.drained());
}

TEST(Bucket, PendingAndInFlightEstimates) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(32);
  for (uint32_t i = 0; i < 6; ++i) b.push(i);
  EXPECT_EQ(b.pending_estimate(), 6u);
  EXPECT_EQ(b.in_flight_estimate(), 0u);
  b.advance_read(b.scan_written_bound());
  EXPECT_EQ(b.pending_estimate(), 0u);
  EXPECT_EQ(b.in_flight_estimate(), 6u);
  b.complete(6);
  EXPECT_EQ(b.in_flight_estimate(), 0u);
}

TEST(Bucket, RetireRecyclesWholeConsumedBlocks) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(3 * kBlockWords);
  const uint32_t mapped_before = b.mapped_blocks();
  ASSERT_GE(mapped_before, 3u);
  // Consume 2.5 blocks worth of items.
  const uint32_t n = kBlockWords * 2 + kBlockWords / 2;
  for (uint32_t i = 0; i < n; ++i) b.push(i);
  b.advance_read(b.scan_written_bound());
  b.complete(n);
  ASSERT_TRUE(b.drained());
  const uint32_t freed = b.retire();
  EXPECT_EQ(freed, 2u);  // two whole blocks below read_ptr
  EXPECT_EQ(b.mapped_blocks(), mapped_before - 2);
}

TEST(Bucket, CapacityBoundedByTranslationTable) {
  BlockPool pool(64, kBlockWords);
  Bucket b(pool, small_cfg());  // table_size 4 -> at most 4 live blocks
  b.ensure_capacity(100 * kBlockWords);
  EXPECT_EQ(b.mapped_blocks(), 4u);
  // Consuming and retiring lets the window move forward again.
  for (uint32_t i = 0; i < 4 * kBlockWords; ++i) b.push(i);
  b.advance_read(b.scan_written_bound());
  b.complete(4 * kBlockWords);
  b.retire();
  const uint32_t mapped = b.ensure_capacity(2 * kBlockWords);
  EXPECT_GT(mapped, 0u);
}

TEST(Bucket, IndexWrapAroundPreservesFifo) {
  // Cycle far beyond the table window to exercise block recycling and index
  // wrap of WCC slots. 50 rounds x 192 items over a 256-item window.
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  uint32_t next_value = 0, next_expected = 0;
  for (int round = 0; round < 50; ++round) {
    b.ensure_capacity(3 * kBlockWords);
    const uint32_t n = 3 * kBlockWords;
    for (uint32_t i = 0; i < n; ++i) b.push(next_value++);
    const uint32_t bound = b.scan_written_bound();
    for (uint32_t idx = b.read_ptr(); wrap_lt(idx, bound); ++idx)
      ASSERT_EQ(b.read_item(idx), next_expected++);
    b.advance_read(bound);
    b.complete(n);
    ASSERT_TRUE(b.drained());
    b.retire();
  }
  EXPECT_EQ(next_expected, 50u * 3 * kBlockWords);
}

TEST(Bucket, BatchedReservePublish) {
  BlockPool pool(8, kBlockWords);
  Bucket b(pool, small_cfg());
  b.ensure_capacity(64);
  const uint32_t start = b.reserve(20);
  ASSERT_TRUE(b.wait_allocated(start + 20));
  for (uint32_t i = 0; i < 20; ++i) b.write(start + i, 1000 + i);
  b.publish(start, 20);  // spans 3 segments
  EXPECT_EQ(b.scan_written_bound(), 20u);
  for (uint32_t i = 0; i < 20; ++i) EXPECT_EQ(b.read_item(i), 1000 + i);
}

TEST(Bucket, ConfigValidation) {
  BlockPool pool(4, kBlockWords);
  BucketConfig bad;
  bad.segment_words = 7;  // not a power of two
  EXPECT_THROW(Bucket(pool, bad), Error);
  bad.segment_words = 128;  // larger than block
  EXPECT_THROW(Bucket(pool, bad), Error);
  BucketConfig bad_table;
  bad_table.segment_words = 8;
  bad_table.table_size = 3;
  EXPECT_THROW(Bucket(pool, bad_table), Error);
}

TEST(Bucket, DestructorReturnsBlocksToPool) {
  BlockPool pool(8, kBlockWords);
  {
    Bucket b(pool, small_cfg());
    b.ensure_capacity(3 * kBlockWords);
    EXPECT_LT(pool.free_blocks(), 8u);
  }
  EXPECT_EQ(pool.free_blocks(), 8u);
}

}  // namespace
}  // namespace adds
