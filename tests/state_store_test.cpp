// StateStore corruption matrix: the store must make every real-world
// failure shape DETECTABLE BY CONSTRUCTION — truncation at (and inside)
// every section boundary, a single bitflip in any section, magic/version/
// weight-kind mismatch, an empty or missing file, and the deterministic
// persist.io save-side modes. A corrupt byte is never decoded into a
// plausible-looking record: it is either a typed StoreError or a counted,
// skipped section, with every salvaged section still bit-true.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "persist/state_store.hpp"
#include "sssp/dijkstra.hpp"
#include "util/fault.hpp"

namespace adds {
namespace {

namespace fs = std::filesystem;
using persist::ByteReader;
using persist::LoadResult;
using persist::StateSnapshot;
using persist::StateStore;
using persist::StoreError;
using persist::StoreErrorKind;

// Mirrors the on-disk layout (state_store.cpp): magic(8) version(4)
// weight(1) pad(3) sections(4) digest(8); frames are kind(4) pad(4)
// len(8) payload_digest(8) frame_digest(8).
constexpr size_t kPrologueBytes = 28;
constexpr size_t kFrameBytes = 32;

std::string fresh_dir(const std::string& name) {
  const fs::path d = fs::path(testing::TempDir()) / ("adds_store_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d.string();
}

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.is_open()) << path;
  std::vector<uint8_t> bytes(size_t(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         std::streamsize(bytes.size()));
  return bytes;
}

void write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          std::streamsize(bytes.size()));
}

template <typename A, typename B>
void expect_range_eq(const A& a, const B& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

/// Byte offsets where each section ENDS (== where the next frame starts).
/// boundaries[0] is the end of the prologue.
std::vector<size_t> section_boundaries(const std::vector<uint8_t>& bytes) {
  std::vector<size_t> b{kPrologueBytes};
  uint32_t declared = 0;
  std::memcpy(&declared, bytes.data() + 16, sizeof(declared));
  size_t pos = kPrologueBytes;
  for (uint32_t i = 0; i < declared; ++i) {
    uint64_t len = 0;
    std::memcpy(&len, bytes.data() + pos + 8, sizeof(len));
    pos += kFrameBytes + len;
    b.push_back(pos);
  }
  EXPECT_EQ(pos, bytes.size());
  return b;
}

/// Three-tenant snapshot with a landmark table and two cache entries —
/// enough sections that "skip exactly the damaged one" is observable.
StateSnapshot<uint32_t> make_snapshot() {
  StateSnapshot<uint32_t> snap;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    persist::GraphRecord<uint32_t> gr;
    gr.graph = std::make_shared<const IntGraph>(make_grid_road<uint32_t>(
        8, 8, {WeightDist::kUniform, 100}, seed));
    gr.graph_fp = graph_fingerprint(*gr.graph);
    gr.pinned = seed == 1;
    gr.is_default = seed == 1;
    gr.parent_fp = seed == 3 ? snap.graphs[1].graph_fp : 0;
    snap.graphs.push_back(std::move(gr));
  }
  const auto& g0 = *snap.graphs[0].graph;
  const uint64_t fp0 = snap.graphs[0].graph_fp;
  auto lms = LandmarkOracle<uint32_t>::select_landmarks(g0, 4, 42);
  std::vector<DistT<uint32_t>> rows;
  for (const VertexId lm : lms) {
    const auto r = dijkstra(g0, lm);
    rows.insert(rows.end(), r.dist.begin(), r.dist.end());
  }
  persist::LandmarkRecord<uint32_t> lr;
  lr.graph_fp = fp0;
  lr.table = LandmarkOracle<uint32_t>::assemble(fp0, g0.num_vertices(), lms,
                                                std::move(rows), 1.5, false);
  snap.landmarks.push_back(std::move(lr));
  for (const VertexId src : {VertexId{0}, VertexId{7}}) {
    persist::CacheRecord<uint32_t> cr;
    cr.graph_fp = fp0;
    cr.source = src;
    cr.dist = dijkstra(g0, src).dist;
    snap.cache.push_back(std::move(cr));
  }
  return snap;
}

void expect_salvage_bit_true(const LoadResult<uint32_t>& got,
                             const StateSnapshot<uint32_t>& want) {
  // Whatever survived must be byte-for-byte what was saved — never a
  // partially decoded or reinterpreted record.
  for (const auto& g : got.snap.graphs) {
    EXPECT_EQ(graph_fingerprint(*g.graph), g.graph_fp);
    bool found = false;
    for (const auto& w : want.graphs) found |= w.graph_fp == g.graph_fp;
    EXPECT_TRUE(found);
  }
  for (const auto& t : got.snap.landmarks) {
    ASSERT_EQ(want.landmarks.size(), 1u);
    const auto& w = *want.landmarks[0].table;
    ASSERT_EQ(t.table->num_landmarks(), w.num_landmarks());
    const size_t cells = size_t(w.num_landmarks()) * w.num_vertices();
    EXPECT_EQ(std::memcmp(t.table->row(0), w.row(0),
                          cells * sizeof(DistT<uint32_t>)),
              0);
  }
  for (const auto& c : got.snap.cache) {
    bool found = false;
    for (const auto& w : want.cache)
      if (w.source == c.source) {
        found = true;
        EXPECT_EQ(c.dist, w.dist);
      }
    EXPECT_TRUE(found);
  }
}

// ---- round trip ------------------------------------------------------------

TEST(StateStore, RoundTripBitEqual) {
  const auto snap = make_snapshot();
  StateStore store(fresh_dir("roundtrip"));
  EXPECT_FALSE(store.exists());
  const auto st = store.save(snap);
  EXPECT_TRUE(store.exists());
  EXPECT_EQ(st.sections, 6u);  // 3 graphs + 1 table + 2 cache entries
  EXPECT_EQ(st.bytes, fs::file_size(store.path()));
  EXPECT_FALSE(fs::exists(store.path() + ".tmp"));  // staging file renamed

  const auto got = store.load<uint32_t>();
  EXPECT_EQ(got.sections_total, 6u);
  EXPECT_EQ(got.corrupt_sections, 0u);
  EXPECT_TRUE(got.errors.empty());
  ASSERT_EQ(got.snap.graphs.size(), 3u);
  ASSERT_EQ(got.snap.landmarks.size(), 1u);
  ASSERT_EQ(got.snap.cache.size(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    const auto& w = snap.graphs[i];
    const auto& g = got.snap.graphs[i];
    EXPECT_EQ(g.graph_fp, w.graph_fp);
    EXPECT_EQ(g.parent_fp, w.parent_fp);
    EXPECT_EQ(g.pinned, w.pinned);
    EXPECT_EQ(g.is_default, w.is_default);
    expect_range_eq(g.graph->offsets(), w.graph->offsets());
    expect_range_eq(g.graph->targets(), w.graph->targets());
    expect_range_eq(g.graph->weights(), w.graph->weights());
  }
  EXPECT_EQ(got.snap.landmarks[0].table->landmarks(),
            snap.landmarks[0].table->landmarks());
  EXPECT_EQ(got.snap.landmarks[0].table->build_ms(), 1.5);
  expect_salvage_bit_true(got, snap);
}

TEST(StateStore, SaveIsDeterministic) {
  const auto snap = make_snapshot();
  StateStore a(fresh_dir("det_a")), b(fresh_dir("det_b"));
  a.save(snap);
  b.save(snap);
  EXPECT_EQ(read_file(a.path()), read_file(b.path()));
}

TEST(StateStore, FloatRoundTrip) {
  StateSnapshot<float> snap;
  persist::GraphRecord<float> gr;
  gr.graph = std::make_shared<const CsrGraph<float>>(
      make_grid_road<float>(6, 6, {WeightDist::kUniform, 100}, 9));
  gr.graph_fp = graph_fingerprint(*gr.graph);
  snap.graphs.push_back(gr);
  persist::CacheRecord<float> cr;
  cr.graph_fp = gr.graph_fp;
  cr.source = 0;
  cr.dist = dijkstra(*gr.graph, 0).dist;
  snap.cache.push_back(cr);

  StateStore store(fresh_dir("float"));
  store.save(snap);
  const auto got = store.load<float>();
  EXPECT_EQ(got.corrupt_sections, 0u);
  ASSERT_EQ(got.snap.graphs.size(), 1u);
  expect_range_eq(got.snap.graphs[0].graph->weights(), gr.graph->weights());
  ASSERT_EQ(got.snap.cache.size(), 1u);
  EXPECT_EQ(got.snap.cache[0].dist, cr.dist);
}

TEST(StateStore, EmptySnapshotRoundTrip) {
  StateStore store(fresh_dir("empty_snap"));
  const auto st = store.save(StateSnapshot<uint32_t>{});
  EXPECT_EQ(st.sections, 0u);
  const auto got = store.load<uint32_t>();
  EXPECT_EQ(got.sections_total, 0u);
  EXPECT_EQ(got.corrupt_sections, 0u);
}

// ---- whole-store failures (typed) ------------------------------------------

TEST(StateStore, MissingFileThrowsIoError) {
  StateStore store(fresh_dir("missing"));
  EXPECT_FALSE(store.exists());
  try {
    store.load<uint32_t>();
    FAIL() << "load of a missing store must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreErrorKind::kIoError);
  }
}

TEST(StateStore, EmptyFileThrowsCorrupt) {
  StateStore store(fresh_dir("empty_file"));
  write_file(store.path(), {});
  try {
    store.load<uint32_t>();
    FAIL() << "empty store must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreErrorKind::kCorruptStore);
  }
}

TEST(StateStore, BadMagicThrowsCorrupt) {
  StateStore store(fresh_dir("magic"));
  store.save(make_snapshot());
  auto bytes = read_file(store.path());
  bytes[3] ^= 0xff;
  write_file(store.path(), bytes);
  try {
    store.load<uint32_t>();
    FAIL() << "bad magic must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreErrorKind::kCorruptStore);
  }
}

TEST(StateStore, HeaderDigestMismatchThrowsCorrupt) {
  StateStore store(fresh_dir("header"));
  store.save(make_snapshot());
  auto bytes = read_file(store.path());
  bytes[16] ^= 0x01;  // section count — inside the digested prologue
  write_file(store.path(), bytes);
  try {
    store.load<uint32_t>();
    FAIL() << "prologue damage must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreErrorKind::kCorruptStore);
  }
}

TEST(StateStore, VersionSkewTyped) {
  StateStore store(fresh_dir("version"));
  store.save(make_snapshot());
  auto bytes = read_file(store.path());
  // A future format number in an otherwise INTACT prologue: recompute the
  // header digest so only the version check can reject it.
  const uint32_t skewed = 99;
  std::memcpy(bytes.data() + 8, &skewed, sizeof(skewed));
  const uint64_t digest = fnv1a_bytes(bytes.data(), kPrologueBytes - 8);
  std::memcpy(bytes.data() + kPrologueBytes - 8, &digest, sizeof(digest));
  write_file(store.path(), bytes);
  try {
    store.load<uint32_t>();
    FAIL() << "version skew must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreErrorKind::kVersionSkew);
  }
}

TEST(StateStore, WeightKindMismatchTyped) {
  StateStore store(fresh_dir("weight_kind"));
  store.save(make_snapshot());  // uint32 store
  try {
    store.load<float>();
    FAIL() << "weight-kind mismatch must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreErrorKind::kVersionSkew);
  }
}

// ---- section-level damage (degraded, never wrong) --------------------------

TEST(StateStore, TruncationAtEverySectionBoundary) {
  const auto snap = make_snapshot();
  StateStore store(fresh_dir("trunc"));
  store.save(snap);
  const auto bytes = read_file(store.path());
  const auto bounds = section_boundaries(bytes);
  const size_t declared = bounds.size() - 1;

  for (size_t i = 0; i < bounds.size(); ++i) {
    // Cut exactly AT the boundary (clean prefix of i sections) and a few
    // bytes past it (mid-frame) and mid-payload of the next section.
    for (const size_t extra : {size_t{0}, size_t{5}, kFrameBytes + 3}) {
      const size_t cut = bounds[i] + extra;
      if (cut >= bytes.size()) continue;
      write_file(store.path(),
                 {bytes.begin(), bytes.begin() + std::streamsize(cut)});
      const auto got = store.load<uint32_t>();
      const size_t salvaged = got.snap.graphs.size() +
                              got.snap.landmarks.size() +
                              got.snap.cache.size();
      // Every section before the cut decodes; everything at/after it is
      // counted corrupt. Nothing is ever decoded from the damaged tail.
      EXPECT_EQ(salvaged, i) << "cut at " << cut;
      EXPECT_EQ(got.corrupt_sections, declared - i) << "cut at " << cut;
      EXPECT_FALSE(got.errors.empty());
      expect_salvage_bit_true(got, snap);
    }
  }
}

TEST(StateStore, SingleBitflipInEachSectionPayload) {
  const auto snap = make_snapshot();
  StateStore store(fresh_dir("bitflip"));
  store.save(snap);
  const auto bytes = read_file(store.path());
  const auto bounds = section_boundaries(bytes);
  const size_t declared = bounds.size() - 1;

  for (size_t i = 0; i < declared; ++i) {
    auto damaged = bytes;
    // Flip one bit in the middle of section i's PAYLOAD: the frame stays
    // trusted, so the loader skips exactly this section and keeps going.
    const size_t payload_start = bounds[i] + kFrameBytes;
    damaged[(payload_start + bounds[i + 1]) / 2] ^= 0x10;
    write_file(store.path(), damaged);
    const auto got = store.load<uint32_t>();
    EXPECT_EQ(got.corrupt_sections, 1u) << "section " << i;
    const size_t salvaged = got.snap.graphs.size() +
                            got.snap.landmarks.size() +
                            got.snap.cache.size();
    EXPECT_EQ(salvaged, declared - 1) << "section " << i;
    expect_salvage_bit_true(got, snap);
  }
}

TEST(StateStore, BitflipInFrameEndsWalkThere) {
  const auto snap = make_snapshot();
  StateStore store(fresh_dir("frameflip"));
  store.save(snap);
  auto bytes = read_file(store.path());
  const auto bounds = section_boundaries(bytes);
  const size_t declared = bounds.size() - 1;
  // Flip a byte of section 1's LENGTH field: without a trusted frame the
  // walk cannot resynchronize — it must stop, not misparse the rest.
  bytes[bounds[1] + 9] ^= 0x04;
  write_file(store.path(), bytes);
  const auto got = store.load<uint32_t>();
  EXPECT_EQ(got.snap.graphs.size(), 1u);
  EXPECT_EQ(got.corrupt_sections, declared - 1);
  expect_salvage_bit_true(got, snap);
}

// ---- persist.io fault site -------------------------------------------------

TEST(StateStore, PersistIoModesAreDeterministicAndAllDetected) {
  const auto before = make_snapshot();
  // Four dirs, each pre-seeded with a GOOD store, then one armed save
  // each: the fire count cycles torn-write / bitflip / version-skew /
  // no-rename deterministically.
  std::vector<std::string> dirs;
  for (int i = 0; i < 4; ++i) {
    dirs.push_back(fresh_dir("iomode" + std::to_string(i)));
    StateStore(dirs.back()).save(before);
  }
  const auto good_bytes = read_file(StateStore(dirs[3]).path());

  fault::FaultPlan plan(7);
  plan.set(fault::Site::kStateIo, {1.0, ~0ull, 0});
  {
    fault::FaultScope scope(plan);
    for (const auto& d : dirs) StateStore(d).save(before);
  }
  EXPECT_EQ(plan.fires(fault::Site::kStateIo), 4u);

  // Mode 0, torn write: published, detected at load as corrupt sections.
  {
    const auto got = StateStore(dirs[0]).load<uint32_t>();
    EXPECT_GT(got.corrupt_sections, 0u);
    expect_salvage_bit_true(got, before);
  }
  // Mode 1, single bitflip: either the prologue rejects the store whole
  // or exactly the damaged section is skipped — never a wrong record.
  try {
    const auto got = StateStore(dirs[1]).load<uint32_t>();
    EXPECT_GT(got.corrupt_sections, 0u);
    expect_salvage_bit_true(got, before);
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreErrorKind::kCorruptStore);
  }
  // Mode 2, version skew: intact prologue of an unreadable format.
  try {
    StateStore(dirs[2]).load<uint32_t>();
    FAIL() << "version-skewed store must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreErrorKind::kVersionSkew);
  }
  // Mode 3, crash before rename: the PREVIOUS store is untouched.
  EXPECT_EQ(read_file(StateStore(dirs[3]).path()), good_bytes);
  const auto got = StateStore(dirs[3]).load<uint32_t>();
  EXPECT_EQ(got.corrupt_sections, 0u);
}

TEST(StateStore, PersistIoShortReadDetected) {
  StateStore store(fresh_dir("shortread"));
  store.save(make_snapshot());
  fault::FaultPlan plan(11);
  plan.set(fault::Site::kStateIo, {1.0, ~0ull, 0});
  fault::FaultScope scope(plan);
  // The injected short read halves the byte stream; depending on where
  // that lands it is a truncated tail (corrupt sections) — never a
  // cleanly parsed half-store.
  try {
    const auto got = store.load<uint32_t>();
    EXPECT_GT(got.corrupt_sections, 0u);
  } catch (const StoreError& e) {
    EXPECT_NE(e.kind(), StoreErrorKind::kIoError);
  }
}

// ---- reader hygiene --------------------------------------------------------

TEST(StateStore, ByteReaderBoundsChecked) {
  const uint8_t buf[4] = {1, 2, 3, 4};
  ByteReader r(buf, sizeof(buf));
  EXPECT_EQ(r.u32(), 0x04030201u);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), StoreError);
  ByteReader r2(buf, sizeof(buf));
  EXPECT_THROW(r2.u64(), StoreError);
  ByteReader r3(buf, sizeof(buf));
  EXPECT_THROW(r3.vec<uint32_t>(2), StoreError);
}

}  // namespace
}  // namespace adds
