// WorkQueue (circular 32-bucket priority window) tests: priority mapping,
// clipping, rotation, Δ updates, and statistics.
#include <gtest/gtest.h>

#include "queue/work_queue.hpp"

namespace adds {
namespace {

WorkQueue::Config small_cfg(uint32_t buckets = 4) {
  WorkQueue::Config cfg;
  cfg.num_buckets = buckets;
  cfg.bucket.segment_words = 8;
  cfg.bucket.table_size = 4;
  return cfg;
}

TEST(LogicalIndex, MapsDistancesToBuckets) {
  // base 0, delta 10, 4 buckets: [0,10) [10,20) [20,30) [30,inf)
  EXPECT_EQ(WorkQueue::logical_index(0.0, 0.0, 10.0, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(9.99, 0.0, 10.0, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(10.0, 0.0, 10.0, 4), 1u);
  EXPECT_EQ(WorkQueue::logical_index(29.0, 0.0, 10.0, 4), 2u);
}

TEST(LogicalIndex, ClipsBeyondWindowToTail) {
  EXPECT_EQ(WorkQueue::logical_index(30.0, 0.0, 10.0, 4), 3u);
  EXPECT_EQ(WorkQueue::logical_index(1e12, 0.0, 10.0, 4), 3u);
}

TEST(LogicalIndex, BelowBaseMapsToHead) {
  // Stale/raced items with distances below the window go to the head.
  EXPECT_EQ(WorkQueue::logical_index(5.0, 100.0, 10.0, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(100.0, 100.0, 10.0, 4), 0u);
}

TEST(LogicalIndex, PaperExampleFigure6) {
  // Figure 6: distances {5, 23, 40, 46}, 4 buckets.
  // delta=20: [0,20)(5) [20,40)(23) [40,60)(40,46) — "best ordering" case
  EXPECT_EQ(WorkQueue::logical_index(5, 0, 20, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(23, 0, 20, 4), 1u);
  EXPECT_EQ(WorkQueue::logical_index(40, 0, 20, 4), 2u);
  EXPECT_EQ(WorkQueue::logical_index(46, 0, 20, 4), 2u);
  // delta=5: 23, 40, 46 all clip to the last bucket.
  EXPECT_EQ(WorkQueue::logical_index(5, 0, 5, 4), 1u);
  EXPECT_EQ(WorkQueue::logical_index(23, 0, 5, 4), 3u);
  EXPECT_EQ(WorkQueue::logical_index(40, 0, 5, 4), 3u);
  // delta=40: more items share the first bucket (parallelism).
  EXPECT_EQ(WorkQueue::logical_index(5, 0, 40, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(23, 0, 40, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(46, 0, 40, 4), 1u);
}

TEST(WorkQueue, PushPlacesByPriority) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  EXPECT_EQ(q.push(100, 5.0), 0u);
  EXPECT_EQ(q.push(101, 15.0), 1u);
  EXPECT_EQ(q.push(102, 35.0), 3u);
  EXPECT_EQ(q.push(103, 999.0), 3u);  // clipped
  EXPECT_EQ(q.pending_of(0), 1u);
  EXPECT_EQ(q.pending_of(1), 1u);
  EXPECT_EQ(q.pending_of(2), 0u);
  EXPECT_EQ(q.pending_of(3), 2u);
  EXPECT_EQ(q.total_pending(), 4u);
}

TEST(WorkQueue, AdvanceWindowRotatesAndShiftsBase) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(7, 15.0);  // logical 1
  EXPECT_TRUE(q.head_drained());
  const uint32_t phys_of_1 = q.logical_to_physical(1);
  q.advance_window();
  EXPECT_EQ(q.window_position(), 1u);
  EXPECT_DOUBLE_EQ(q.base_dist(), 10.0);
  // The old logical-1 bucket is now the head.
  EXPECT_EQ(q.logical_to_physical(0), phys_of_1);
  EXPECT_EQ(q.pending_of(0), 1u);
  // A push at distance 15 now lands in the head ([10, 20)).
  EXPECT_EQ(q.push(8, 15.0), 0u);
}

TEST(WorkQueue, FullRotationCycle) {
  BlockPool pool(64, 64);
  WorkQueue q(pool, small_cfg(4));
  q.set_delta(1.0);
  q.ensure_capacity_all(16);
  for (int round = 0; round < 10; ++round) {
    // Drain-and-advance an empty window; base marches by delta each time.
    ASSERT_TRUE(q.head_drained());
    q.advance_window();
  }
  EXPECT_EQ(q.window_position(), 10u);
  EXPECT_DOUBLE_EQ(q.base_dist(), 10.0);
}

TEST(WorkQueue, HeadDrainedTracksConsumption) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(1, 0.0);
  EXPECT_FALSE(q.head_drained());
  Bucket& head = q.logical_bucket(0);
  head.advance_read(head.scan_written_bound());
  EXPECT_FALSE(q.head_drained());  // read but not completed
  head.complete(1);
  EXPECT_TRUE(q.head_drained());
}

TEST(WorkQueue, RetireRecyclesBlocksOnRotation) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(3 * 64);
  Bucket& head = q.logical_bucket(0);
  for (uint32_t i = 0; i < 2 * 64; ++i) q.push(i, 0.0);
  head.advance_read(head.scan_written_bound());
  head.complete(2 * 64);
  const uint32_t freed = q.advance_window();
  EXPECT_EQ(freed, 2u);
}

TEST(WorkQueue, SetDeltaAffectsSubsequentPushes) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  EXPECT_EQ(q.push(1, 25.0), 2u);
  q.set_delta(100.0);
  EXPECT_EQ(q.push(2, 25.0), 0u);
  EXPECT_DOUBLE_EQ(q.delta(), 100.0);
}

TEST(WorkQueue, RequiresAtLeastTwoBuckets) {
  BlockPool pool(8, 64);
  WorkQueue::Config cfg = small_cfg(1);
  EXPECT_THROW(WorkQueue(pool, cfg), Error);
}

TEST(WorkQueue, PushAfterAbortIsNoOp) {
  // After request_abort the queue is tearing down: push must not reserve,
  // write, or publish anything — it returns the kPushAborted sentinel and
  // leaves all accounting untouched (docs/QUEUE_PROTOCOL.md, "Abort and
  // teardown").
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(1, 5.0);
  const uint64_t pending_before = q.total_pending();

  q.request_abort();
  EXPECT_TRUE(q.aborted());
  EXPECT_EQ(q.push(2, 5.0), WorkQueue::kPushAborted);
  EXPECT_EQ(q.push(3, 999.0), WorkQueue::kPushAborted);
  EXPECT_EQ(q.total_pending(), pending_before);
  EXPECT_EQ(q.total_in_flight(), 0u);
}

TEST(WorkQueue, InFlightAccounting) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(1, 0.0);
  q.push(2, 0.0);
  EXPECT_EQ(q.total_in_flight(), 0u);
  Bucket& head = q.logical_bucket(0);
  head.advance_read(head.scan_written_bound());
  EXPECT_EQ(q.total_in_flight(), 2u);
  EXPECT_EQ(q.total_pending(), 0u);
  head.complete(2);
  EXPECT_EQ(q.total_in_flight(), 0u);
}

// ---- Reset and reuse (docs/QUEUE_PROTOCOL.md §"Reset and reuse") ----------

TEST(WorkQueueReset, RewindsToFreshStateAndFreesEveryBlock) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  // Leave the queue mid-everything: pending items, an in-flight (read but
  // not completed) range, and an advanced window.
  for (uint32_t i = 0; i < 12; ++i) q.push(i, double(i) * 4.0);
  Bucket& head = q.logical_bucket(0);
  head.advance_read(head.read_ptr() + 1);
  ASSERT_GT(pool.blocks_in_use(), 0u);

  const uint32_t freed = q.reset();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(pool.blocks_in_use(), 0u);  // the reset-safety invariant
  EXPECT_EQ(q.total_pending(), 0u);
  EXPECT_EQ(q.total_in_flight(), 0u);
  EXPECT_EQ(q.window_position(), 0u);
  EXPECT_DOUBLE_EQ(q.base_dist(), 0.0);
  EXPECT_DOUBLE_EQ(q.delta(), 1.0);

  // The queue behaves exactly like a freshly constructed one.
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  EXPECT_EQ(q.push(100, 5.0), 0u);
  EXPECT_EQ(q.push(101, 15.0), 1u);
  EXPECT_EQ(q.push(102, 999.0), 3u);
  EXPECT_EQ(q.pending_of(0), 1u);
  EXPECT_EQ(q.pending_of(1), 1u);
  EXPECT_EQ(q.pending_of(3), 1u);
  EXPECT_EQ(q.total_pending(), 3u);
}

TEST(WorkQueueReset, ClearsTheOtherwiseIrreversibleAbort) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(1, 5.0);
  q.request_abort();
  ASSERT_TRUE(q.aborted());
  ASSERT_EQ(q.push(2, 5.0), WorkQueue::kPushAborted);

  q.reset();
  EXPECT_FALSE(q.aborted());
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  EXPECT_EQ(q.push(3, 5.0), 0u);
  EXPECT_EQ(q.total_pending(), 1u);
}

TEST(WorkQueueReset, ManyReuseCyclesNeverLeakBlocks) {
  // Warm-engine pattern: push / drain / rotate / reset, repeatedly. Every
  // cycle must hand the whole pool back; a single leaked block here
  // compounds across a service's lifetime.
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  for (int cycle = 0; cycle < 8; ++cycle) {
    q.set_delta(5.0);
    q.ensure_capacity_all(32);
    for (uint32_t i = 0; i < 40; ++i) q.push(i, double(i % 20));
    // Drain the head and rotate once, mid-stream like the manager does.
    Bucket& head = q.logical_bucket(0);
    const uint32_t bound = head.scan_written_bound();
    const uint32_t n = bound - head.read_ptr();
    head.advance_read(bound);
    head.complete(n);
    ASSERT_TRUE(q.head_drained());
    q.advance_window();
    q.reset();
    ASSERT_EQ(pool.blocks_in_use(), 0u) << "cycle " << cycle;
    ASSERT_EQ(pool.free_blocks(), pool.num_blocks()) << "cycle " << cycle;
    ASSERT_EQ(q.window_position(), 0u);
  }
}

}  // namespace
}  // namespace adds
