// WorkQueue (circular 32-bucket priority window) tests: priority mapping,
// clipping, rotation, Δ updates, and statistics.
#include <gtest/gtest.h>

#include "queue/work_queue.hpp"

namespace adds {
namespace {

WorkQueue::Config small_cfg(uint32_t buckets = 4) {
  WorkQueue::Config cfg;
  cfg.num_buckets = buckets;
  cfg.bucket.segment_words = 8;
  cfg.bucket.table_size = 4;
  return cfg;
}

TEST(LogicalIndex, MapsDistancesToBuckets) {
  // base 0, delta 10, 4 buckets: [0,10) [10,20) [20,30) [30,inf)
  EXPECT_EQ(WorkQueue::logical_index(0.0, 0.0, 10.0, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(9.99, 0.0, 10.0, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(10.0, 0.0, 10.0, 4), 1u);
  EXPECT_EQ(WorkQueue::logical_index(29.0, 0.0, 10.0, 4), 2u);
}

TEST(LogicalIndex, ClipsBeyondWindowToTail) {
  EXPECT_EQ(WorkQueue::logical_index(30.0, 0.0, 10.0, 4), 3u);
  EXPECT_EQ(WorkQueue::logical_index(1e12, 0.0, 10.0, 4), 3u);
}

TEST(LogicalIndex, BelowBaseMapsToHead) {
  // Stale/raced items with distances below the window go to the head.
  EXPECT_EQ(WorkQueue::logical_index(5.0, 100.0, 10.0, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(100.0, 100.0, 10.0, 4), 0u);
}

TEST(LogicalIndex, PaperExampleFigure6) {
  // Figure 6: distances {5, 23, 40, 46}, 4 buckets.
  // delta=20: [0,20)(5) [20,40)(23) [40,60)(40,46) — "best ordering" case
  EXPECT_EQ(WorkQueue::logical_index(5, 0, 20, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(23, 0, 20, 4), 1u);
  EXPECT_EQ(WorkQueue::logical_index(40, 0, 20, 4), 2u);
  EXPECT_EQ(WorkQueue::logical_index(46, 0, 20, 4), 2u);
  // delta=5: 23, 40, 46 all clip to the last bucket.
  EXPECT_EQ(WorkQueue::logical_index(5, 0, 5, 4), 1u);
  EXPECT_EQ(WorkQueue::logical_index(23, 0, 5, 4), 3u);
  EXPECT_EQ(WorkQueue::logical_index(40, 0, 5, 4), 3u);
  // delta=40: more items share the first bucket (parallelism).
  EXPECT_EQ(WorkQueue::logical_index(5, 0, 40, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(23, 0, 40, 4), 0u);
  EXPECT_EQ(WorkQueue::logical_index(46, 0, 40, 4), 1u);
}

TEST(WorkQueue, PushPlacesByPriority) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  EXPECT_EQ(q.push(100, 5.0), 0u);
  EXPECT_EQ(q.push(101, 15.0), 1u);
  EXPECT_EQ(q.push(102, 35.0), 3u);
  EXPECT_EQ(q.push(103, 999.0), 3u);  // clipped
  EXPECT_EQ(q.pending_of(0), 1u);
  EXPECT_EQ(q.pending_of(1), 1u);
  EXPECT_EQ(q.pending_of(2), 0u);
  EXPECT_EQ(q.pending_of(3), 2u);
  EXPECT_EQ(q.total_pending(), 4u);
}

TEST(WorkQueue, AdvanceWindowRotatesAndShiftsBase) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(7, 15.0);  // logical 1
  EXPECT_TRUE(q.head_drained());
  const uint32_t phys_of_1 = q.logical_to_physical(1);
  q.advance_window();
  EXPECT_EQ(q.window_position(), 1u);
  EXPECT_DOUBLE_EQ(q.base_dist(), 10.0);
  // The old logical-1 bucket is now the head.
  EXPECT_EQ(q.logical_to_physical(0), phys_of_1);
  EXPECT_EQ(q.pending_of(0), 1u);
  // A push at distance 15 now lands in the head ([10, 20)).
  EXPECT_EQ(q.push(8, 15.0), 0u);
}

TEST(WorkQueue, FullRotationCycle) {
  BlockPool pool(64, 64);
  WorkQueue q(pool, small_cfg(4));
  q.set_delta(1.0);
  q.ensure_capacity_all(16);
  for (int round = 0; round < 10; ++round) {
    // Drain-and-advance an empty window; base marches by delta each time.
    ASSERT_TRUE(q.head_drained());
    q.advance_window();
  }
  EXPECT_EQ(q.window_position(), 10u);
  EXPECT_DOUBLE_EQ(q.base_dist(), 10.0);
}

TEST(WorkQueue, HeadDrainedTracksConsumption) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(1, 0.0);
  EXPECT_FALSE(q.head_drained());
  Bucket& head = q.logical_bucket(0);
  head.advance_read(head.scan_written_bound());
  EXPECT_FALSE(q.head_drained());  // read but not completed
  head.complete(1);
  EXPECT_TRUE(q.head_drained());
}

TEST(WorkQueue, RetireRecyclesBlocksOnRotation) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(3 * 64);
  Bucket& head = q.logical_bucket(0);
  for (uint32_t i = 0; i < 2 * 64; ++i) q.push(i, 0.0);
  head.advance_read(head.scan_written_bound());
  head.complete(2 * 64);
  const uint32_t freed = q.advance_window();
  EXPECT_EQ(freed, 2u);
}

TEST(WorkQueue, SetDeltaAffectsSubsequentPushes) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  EXPECT_EQ(q.push(1, 25.0), 2u);
  q.set_delta(100.0);
  EXPECT_EQ(q.push(2, 25.0), 0u);
  EXPECT_DOUBLE_EQ(q.delta(), 100.0);
}

TEST(WorkQueue, RequiresAtLeastTwoBuckets) {
  BlockPool pool(8, 64);
  WorkQueue::Config cfg = small_cfg(1);
  EXPECT_THROW(WorkQueue(pool, cfg), Error);
}

TEST(WorkQueue, PushAfterAbortIsNoOp) {
  // After request_abort the queue is tearing down: push must not reserve,
  // write, or publish anything — it returns the kPushAborted sentinel and
  // leaves all accounting untouched (docs/QUEUE_PROTOCOL.md, "Abort and
  // teardown").
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(1, 5.0);
  const uint64_t pending_before = q.total_pending();

  q.request_abort();
  EXPECT_TRUE(q.aborted());
  EXPECT_EQ(q.push(2, 5.0), WorkQueue::kPushAborted);
  EXPECT_EQ(q.push(3, 999.0), WorkQueue::kPushAborted);
  EXPECT_EQ(q.total_pending(), pending_before);
  EXPECT_EQ(q.total_in_flight(), 0u);
}

TEST(WorkQueue, InFlightAccounting) {
  BlockPool pool(32, 64);
  WorkQueue q(pool, small_cfg());
  q.set_delta(10.0);
  q.ensure_capacity_all(16);
  q.push(1, 0.0);
  q.push(2, 0.0);
  EXPECT_EQ(q.total_in_flight(), 0u);
  Bucket& head = q.logical_bucket(0);
  head.advance_read(head.scan_written_bound());
  EXPECT_EQ(q.total_in_flight(), 2u);
  EXPECT_EQ(q.total_pending(), 0u);
  head.complete(2);
  EXPECT_EQ(q.total_in_flight(), 0u);
}

}  // namespace
}  // namespace adds
