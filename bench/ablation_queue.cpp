// Design-choice ablations beyond the paper's Table 5: how the scheduler's
// engineering knobs (manager tick period, assignment chunk size, bucket
// count, assignment edge budget) move the time/work tradeoff on the three
// contrast graphs. These quantify the design decisions DESIGN.md §5 calls
// out (delegation granularity and window sizing).
#include <cstdio>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "graph/generators.hpp"
#include "sssp/adds.hpp"

using namespace adds;

namespace {

struct Knob {
  std::string label;
  AddsOptions opts;
  double mtb_tick_us = 0;  // 0: model default
};

void run_block(const char* title, const std::vector<Knob>& knobs) {
  const EngineConfig base = corpus_config();
  TextTable t(title);
  t.set_header({"variant", "road time", "road work", "mesh time",
                "mesh work", "rmat time", "rmat work"});
  for (const auto& knob : knobs) {
    std::vector<std::string> row{knob.label};
    for (const GraphSpec& spec :
         {road_usa_like(), msdoor_like(), rmat22_like()}) {
      const auto g = generate_graph<uint32_t>(spec);
      const VertexId src = pick_source(g);
      GpuCostModel gpu = base.gpu;
      if (knob.mtb_tick_us > 0) gpu.mtb_tick_us = knob.mtb_tick_us;
      const auto r = adds_sim(g, src, gpu, knob.opts);
      row.push_back(fmt_time_us(r.time_us));
      row.push_back(fmt_count(r.work.items_processed));
      std::fprintf(stderr, "[ablation] %-24s %-16s %-10s\n",
                   knob.label.c_str(), spec.name.c_str(),
                   fmt_time_us(r.time_us).c_str());
    }
    t.add_row(row);
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = bench::make_cli("ablation_queue",
                             "scheduler design-choice ablations");
  if (!cli.parse(argc, argv)) return 0;

  {
    std::vector<Knob> knobs;
    for (const uint32_t buckets : {2u, 8u, 32u, 64u}) {
      Knob k;
      k.label = std::to_string(buckets) + " buckets";
      k.opts.num_buckets = buckets;
      knobs.push_back(k);
    }
    run_block("Ablation: priority-window size (dynamic delta on)", knobs);
  }
  {
    std::vector<Knob> knobs;
    for (const uint32_t chunk : {32u, 256u, 2048u}) {
      Knob k;
      k.label = "chunk " + std::to_string(chunk) + " items";
      k.opts.chunk_items = chunk;
      knobs.push_back(k);
    }
    run_block("Ablation: assignment chunk size", knobs);
  }
  {
    std::vector<Knob> knobs;
    for (const uint32_t budget : {128u, 512u, 4096u}) {
      Knob k;
      k.label = "edge budget " + std::to_string(budget);
      k.opts.chunk_edge_budget = budget;
      knobs.push_back(k);
    }
    run_block("Ablation: assignment edge budget (load balancing)", knobs);
  }
  {
    std::vector<Knob> knobs;
    for (const double tick : {0.5, 2.0, 8.0, 32.0}) {
      Knob k;
      k.label = "MTB tick " + fmt_double(tick, 1) + " us";
      k.mtb_tick_us = tick;
      knobs.push_back(k);
    }
    run_block("Ablation: manager tick period (scheduling latency)", knobs);
  }
  {
    std::vector<Knob> knobs;
    for (const uint32_t active : {1u, 4u, 8u, 16u}) {
      Knob k;
      k.label = "max " + std::to_string(active) + " active buckets";
      k.opts.controller.max_active_buckets = active;
      knobs.push_back(k);
    }
    run_block("Ablation: high-priority bucket fan-out", knobs);
  }
  std::printf("expected: windows >= 8 buckets and moderate chunking are near "
              "the sweet spot; very slow MTB ticks starve workers on "
              "high-diameter graphs (scheduling latency is on the critical "
              "path), and 1-bucket fan-out forfeits the fine-grained "
              "utilization control of paper §5.5.\n");
  return 0;
}
