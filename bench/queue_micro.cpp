// Microbenchmarks of the ADDS queue primitives (google-benchmark): the
// engineering §5 of the paper is about. Measures the host implementation of
// reservation/publication, the manager's segment scan, the FIFO block
// allocator, the translation cache, and the CAS distance update.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "queue/block_pool.hpp"
#include "queue/bucket.hpp"
#include "queue/translation_cache.hpp"
#include "queue/work_queue.hpp"
#include "sssp/atomic_dist.hpp"
#include "util/rng.hpp"

namespace {

using namespace adds;

constexpr uint32_t kBlockWords = 4096;

struct BucketHarness {
  BucketHarness(uint32_t blocks, uint32_t capacity_items)
      : pool(blocks, kBlockWords), bucket(pool, BucketConfig{32, 1024}) {
    bucket.ensure_capacity(capacity_items);
  }
  BlockPool pool;
  Bucket bucket;
};

std::unique_ptr<BucketHarness> g_harness;

/// Single and multi-writer push throughput: one atomic reservation + store +
/// WCC publication per item.
void BM_BucketPush(benchmark::State& state) {
  if (state.thread_index() == 0) {
    // Capacity for every thread's full iteration count.
    const uint32_t total =
        uint32_t(state.max_iterations) * uint32_t(state.threads()) + 64;
    g_harness = std::make_unique<BucketHarness>(
        total / kBlockWords + 4, total);
  }
  for (auto _ : state) {
    g_harness->bucket.push(42);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) g_harness.reset();
}
BENCHMARK(BM_BucketPush)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Iterations(1 << 18)
    ->UseRealTime();

/// Write-combined multi-writer push: each thread stages 64 items locally
/// and flushes them with one push_batch — the contended-path A/B against
/// BM_BucketPush (same items, ~1/64th of the resv_ptr traffic).
void BM_BucketPushCombined(benchmark::State& state) {
  constexpr uint32_t kBatch = 64;
  if (state.thread_index() == 0) {
    const uint32_t total =
        uint32_t(state.max_iterations) * uint32_t(state.threads()) + 64;
    g_harness = std::make_unique<BucketHarness>(
        total / kBlockWords + 4, total);
  }
  uint32_t stage[kBatch];
  uint32_t n = 0;
  for (auto _ : state) {
    stage[n++] = 42;
    if (n == kBatch) {
      g_harness->bucket.push_batch(stage, n);
      n = 0;
    }
  }
  if (n > 0) g_harness->bucket.push_batch(stage, n);
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) g_harness.reset();
}
BENCHMARK(BM_BucketPushCombined)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Iterations(1 << 18)
    ->UseRealTime();

/// Batched reservation: reserve(k) + k stores + one publish per segment.
void BM_BucketReservePublishBatch(benchmark::State& state) {
  const uint32_t batch = uint32_t(state.range(0));
  const uint32_t total = uint32_t(state.max_iterations) * batch + 64;
  BucketHarness h(total / kBlockWords + 4, total);
  for (auto _ : state) {
    const uint32_t start = h.bucket.reserve(batch);
    if (!h.bucket.wait_allocated(start + batch)) break;
    for (uint32_t i = 0; i < batch; ++i) h.bucket.write(start + i, i);
    h.bucket.publish(start, batch);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BucketReservePublishBatch)
    ->Arg(8)
    ->Arg(32)
    ->Arg(256)
    ->Iterations(1 << 14);

/// Manager-side scan: compute the known-written bound over published
/// segments (the SRMW read path).
void BM_BucketScan(benchmark::State& state) {
  const uint32_t items = uint32_t(state.range(0));
  BucketHarness h(items / kBlockWords + 4, items + 64);
  const uint32_t start = h.bucket.reserve(items);
  for (uint32_t i = 0; i < items; ++i) h.bucket.write(start + i, i);
  h.bucket.publish(start, items);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.bucket.scan_written_bound());
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_BucketScan)->Arg(1024)->Arg(65536);

/// FIFO block allocator: allocate + release cycle.
void BM_BlockPoolAllocRelease(benchmark::State& state) {
  BlockPool pool(1024, kBlockWords);
  for (auto _ : state) {
    const BlockId a = pool.allocate();
    const BlockId b = pool.allocate();
    pool.release(a);
    pool.release(b);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_BlockPoolAllocRelease);

/// Worker-side reads through the direct-mapped translation cache vs the
/// two-level lookup.
void BM_TranslationCacheRead(benchmark::State& state) {
  const uint32_t items = 1 << 16;
  BucketHarness h(items / kBlockWords + 4, items + 64);
  const uint32_t start = h.bucket.reserve(items);
  for (uint32_t i = 0; i < items; ++i) h.bucket.write(start + i, i);
  h.bucket.publish(start, items);

  TranslationCache<8> cache;
  cache.reset();
  uint32_t idx = 0;
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += cache.read(h.bucket, idx);
    idx = (idx + 1) & (items - 1);
  }
  benchmark::DoNotOptimize(sum);
  state.counters["hit_rate"] = benchmark::Counter(
      double(cache.hits()) /
      double(std::max<uint64_t>(1, cache.hits() + cache.misses())));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslationCacheRead);

void BM_BucketDirectRead(benchmark::State& state) {
  const uint32_t items = 1 << 16;
  BucketHarness h(items / kBlockWords + 4, items + 64);
  const uint32_t start = h.bucket.reserve(items);
  for (uint32_t i = 0; i < items; ++i) h.bucket.write(start + i, i);
  h.bucket.publish(start, items);

  uint32_t idx = 0;
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += h.bucket.read_item(idx);
    idx = (idx + 1) & (items - 1);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketDirectRead);

/// Priority mapping math used on every push.
void BM_LogicalIndexMapping(benchmark::State& state) {
  Xoshiro256 rng(7);
  std::vector<double> dists(4096);
  for (auto& d : dists) d = rng.next_double() * 1e6;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WorkQueue::logical_index(dists[i & 4095], 1000.0, 977.0, 32));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogicalIndexMapping);

/// The software atomicMin (CAS loop) both ADDS and the baselines rely on.
void BM_AtomicDistFetchMin(benchmark::State& state) {
  AtomicDistArray<uint64_t> dist(1 << 16, ~0ull);
  Xoshiro256 rng(9);
  for (auto _ : state) {
    const size_t v = size_t(rng.next_below(1 << 16));
    dist.fetch_min(v, rng.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicDistFetchMin);

}  // namespace

BENCHMARK_MAIN();
