// Table 2: the distribution of graph characteristics (average degree and
// pseudo-diameter) over the benchmark corpus — validates that the synthetic
// stand-in corpus spans the same classes as the paper's 226 inputs.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace adds;

int main(int argc, char** argv) {
  auto cli = bench::make_cli("table2_corpus",
                             "Table 2: corpus characteristic distribution");
  if (!cli.parse(argc, argv)) return 0;
  const auto tier = parse_tier(cli.str("tier"));
  const auto specs = corpus_specs(tier);

  Log2Histogram degree_hist(8, 64);    // <8, 8-16, 16-32, 32-64, >=64
  Log2Histogram diameter_hist(40, 640);
  RunningStat vertices, edges, reach;

  CsvWriter csv(cli.str("out") + "/table2_graphs.csv");
  csv.write_header({"graph", "family", "vertices", "edges", "avg_degree",
                    "diameter", "reach_fraction"});

  WallTimer timer;
  size_t i = 0;
  for (const auto& spec : specs) {
    const auto g = generate_graph<uint32_t>(spec);
    const auto s = summarize(g);
    degree_hist.add(s.avg_degree);
    diameter_hist.add(double(s.diameter));
    vertices.add(double(s.num_vertices));
    edges.add(double(s.num_edges));
    reach.add(s.reach_fraction);
    csv.write_row({spec.name, family_name(spec.family),
                   std::to_string(s.num_vertices),
                   std::to_string(s.num_edges), fmt_double(s.avg_degree, 2),
                   std::to_string(s.diameter),
                   fmt_double(s.reach_fraction, 3)});
    std::fprintf(stderr, "\r[table2 %3zu/%3zu] %-28s", ++i, specs.size(),
                 spec.name.c_str());
  }
  std::fprintf(stderr, "\n");

  const auto hist_table = [&](const char* title, const Log2Histogram& h) {
    TextTable t(title);
    std::vector<std::string> header, row;
    for (size_t b = 0; b < h.num_bins(); ++b) {
      header.push_back(h.label(b));
      const int pct = int(100.0 * double(h.count(b)) / double(h.total()) + 0.5);
      row.push_back(std::to_string(h.count(b)) + " (" + std::to_string(pct) +
                    "%)");
    }
    t.set_header(header);
    t.add_row(row);
    t.print();
  };

  std::printf("Table 2: distribution of graph characteristics (%zu graphs, "
              "tier=%s)\n",
              specs.size(), tier_name(tier));
  hist_table("Average degree", degree_hist);
  hist_table("Pseudo-diameter", diameter_hist);
  std::printf("corpus totals: |V| mean %s (max %s), |E| mean %s (max %s), "
              "mean reachability %.0f%% — generated+measured in %.1fs\n",
              fmt_count(uint64_t(vertices.mean())).c_str(),
              fmt_count(uint64_t(vertices.max())).c_str(),
              fmt_count(uint64_t(edges.mean())).c_str(),
              fmt_count(uint64_t(edges.max())).c_str(), 100.0 * reach.mean(),
              timer.elapsed_sec());
  return 0;
}
