// In-text claims from §3.1 and §6.4:
//   * On high-diameter graphs an ordered worklist (Dijkstra) can be orders
//     of magnitude more work-efficient than an unordered one (Bellman-Ford);
//     on power-law graphs the gap shrinks to ~2x (rmat).
//   * On road networks Gunrock's Bellman-Ford does ~78x ADDS's work while
//     being drastically slower — ADDS's dynamic Δ does not degenerate into
//     Bellman-Ford.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "graph/generators.hpp"

using namespace adds;

int main(int argc, char** argv) {
  auto cli = bench::make_cli("claims_workeff",
                             "in-text work-efficiency claims (3.1, 6.4)");
  if (!cli.parse(argc, argv)) return 0;
  const EngineConfig cfg = corpus_config();

  TextTable t("Ordering vs work (vertex counts; Dijkstra = 1.0)");
  t.set_header({"graph", "dijkstra", "gun-bf", "bf/dijkstra work",
                "adds", "bf/adds work", "bf/adds time"});

  for (const GraphSpec& spec : {road_usa_like(), rmat22_like()}) {
    const auto g = generate_graph<uint32_t>(spec);
    const VertexId source = pick_source(g);
    const auto d = run_solver(SolverKind::kDijkstra, g, source, cfg);
    const auto b = run_solver(SolverKind::kGunBf, g, source, cfg);
    const auto a = run_solver(SolverKind::kAdds, g, source, cfg);
    t.add_row({spec.name, fmt_count(d.work.items_processed),
               fmt_count(b.work.items_processed),
               fmt_ratio(double(b.work.items_processed) /
                         double(d.work.items_processed)),
               fmt_count(a.work.items_processed),
               fmt_ratio(double(b.work.items_processed) /
                         double(a.work.items_processed)),
               fmt_ratio(a.time_us > 0 ? b.time_us / a.time_us : 0)});
  }
  t.add_footer("paper 3.1: ordering can be ~1000x more efficient on "
               "high-diameter graphs, ~2x on rmat");
  t.add_footer("paper 6.4: on road networks Gun-BF does ~78x ADDS's work "
               "and is ~318x slower");
  t.print();
  return 0;
}
