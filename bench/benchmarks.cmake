# Bench binaries — one per paper table/figure (see DESIGN.md §4).
# Declared via include() from the top-level CMakeLists so that
# ${CMAKE_BINARY_DIR}/bench contains only runnable executables:
#   for b in build/bench/*; do $b; done
# regenerates every table and figure.

set(ADDS_BENCH_DIR ${CMAKE_SOURCE_DIR}/bench)

function(adds_add_bench name)
  add_executable(${name} ${ADDS_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE adds adds_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

adds_add_bench(table1_specs)
adds_add_bench(table2_corpus)
adds_add_bench(fig4_delta_constant)
adds_add_bench(fig7_delta_sweep)
adds_add_bench(table3_speedup)
adds_add_bench(table4_work)
adds_add_bench(table5_gpus_ablation)
adds_add_bench(fig10_correlation)
adds_add_bench(fig11_15_traces)
adds_add_bench(claims_workeff)
adds_add_bench(ablation_queue)

# Microbenchmarks of the queue primitives (google-benchmark).
add_executable(queue_micro ${ADDS_BENCH_DIR}/queue_micro.cpp)
target_link_libraries(queue_micro PRIVATE adds benchmark::benchmark
  adds_warnings)
set_target_properties(queue_micro PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Repeatable host-perf suite (push write-combining A/B + solver trajectory;
# emits BENCH_perf.json). The smoke tier doubles as a ctest entry so a crash
# is caught locally and in CI; it carries the `perf` label, which the
# sanitizer CI jobs exclude (timing under ASan/TSan is meaningless).
adds_add_bench(perf_suite)
add_test(NAME perf_smoke
  COMMAND perf_suite --smoke --reps=1
          --out=${CMAKE_BINARY_DIR}/BENCH_perf.json)
set_tests_properties(perf_smoke PROPERTIES LABELS perf TIMEOUT 600)

# Deterministic chaos soak: randomized faults x undersized pools x mid-run
# cancels x watchdog deadlines, every survivor validated against Dijkstra.
# The smoke tier runs a fixed seed so CI failures replay exactly; the `soak`
# label lets sanitizer jobs exclude it alongside `perf`.
adds_add_bench(soak_suite)
add_test(NAME soak_smoke COMMAND soak_suite --smoke --seed=42)
set_tests_properties(soak_smoke PROPERTIES LABELS "perf;soak" TIMEOUT 60)

# Service-level chaos: faults wedge k of 3 pooled engines mid-solve; the
# supervisor must quarantine + rebuild them while the pool keeps answering,
# and every post-recovery serve validates against Dijkstra. Separate ctest
# entry so CI's supervisor-chaos job runs exactly this phase under a hard
# wall-clock cap.
add_test(NAME supervisor_chaos_smoke
  COMMAND soak_suite --service-chaos --smoke --seed=42)
set_tests_properties(supervisor_chaos_smoke
  PROPERTIES LABELS "perf;soak" TIMEOUT 120)

# Multi-tenant blast-radius chaos: domain-scoped faults wedge 1 of 3 catalog
# tenants; the other two must take zero typed damage (no shed, quarantine,
# or brownout) while every survivor result validates against its own graph's
# Dijkstra oracle, and the victim must recover through its circuit breaker.
add_test(NAME tenant_chaos_smoke
  COMMAND soak_suite --tenant-chaos --smoke --seed=42)
set_tests_properties(tenant_chaos_smoke
  PROPERTIES LABELS "perf;soak" TIMEOUT 120)

# Live-delta chaos: the default graph is rewritten under a query burst while
# injected repair.delta faults fail half the warm repairs; every survivor is
# Dijkstra-validated on the exact graph generation its outcome claims (stale
# answers against the ancestor they name, fresh against the child), and the
# fleet must converge to the final generation once the storm passes.
add_test(NAME delta_chaos_smoke
  COMMAND soak_suite --delta-chaos --smoke --seed=42)
set_tests_properties(delta_chaos_smoke
  PROPERTIES LABELS "perf;soak" TIMEOUT 120)

# Landmark-oracle chaos: p2p bursts x symmetric delta churn x injected
# landmark.build faults (both cold builds and warm per-lane repairs).
# Every p2p answer is Dijkstra-validated on the generation it claims; a
# typed table failure may only downgrade the serve path to an engine,
# never bend a distance, and a fault-free delta must bring the table back
# to READY serving clean off the oracle.
add_test(NAME landmark_chaos_smoke
  COMMAND soak_suite --landmark-chaos --smoke --seed=42)
set_tests_properties(landmark_chaos_smoke
  PROPERTIES LABELS "perf;soak" TIMEOUT 120)

# Crash-safe persistence chaos: save/crash/restore cycles through the
# StateStore with persist.io armed on half the save and load paths (torn
# writes, bitflips, version skew, short reads). Every corruption must be
# detected typed and degrade to a cold republish/rebuild, every answer the
# revived service gives must match Dijkstra, and each round must end fully
# warm. CI's restart-chaos job runs this seed plus 1337.
add_test(NAME restart_chaos_smoke
  COMMAND soak_suite --restart-chaos --smoke --seed=42
          --state-dir=${CMAKE_BINARY_DIR}/soak_restart_state)
set_tests_properties(restart_chaos_smoke
  PROPERTIES LABELS "perf;soak" TIMEOUT 120)

# Serving-layer benchmark: warm-engine vs cold-start latency, result-cache
# hit rate and admission-control shedding, all Dijkstra-validated (emits
# BENCH_service.json). Fixed generator seeds; the smoke tier doubles as the
# ctest entry CI's service-smoke job runs.
adds_add_bench(service_suite)
add_test(NAME service_smoke
  COMMAND service_suite --smoke
          --out=${CMAKE_BINARY_DIR}/BENCH_service.json
          --batch-out=${CMAKE_BINARY_DIR}/BENCH_batch_all.json
          --delta-out=${CMAKE_BINARY_DIR}/BENCH_delta_all.json
          --landmark-out=${CMAKE_BINARY_DIR}/BENCH_landmark_all.json
          --persist-out=${CMAKE_BINARY_DIR}/BENCH_persist_all.json
          --state-dir=${CMAKE_BINARY_DIR}/bench_persist_state_all)
set_tests_properties(service_smoke PROPERTIES LABELS perf TIMEOUT 300)

# Batched multi-source phase alone: K independent solves vs one
# solve_batch on the serving-regime road grid, every lane
# Dijkstra-validated, exit nonzero unless the aggregate speedup clears 3x
# (emits BENCH_batch.json). Fixed seeds; CI's batch-smoke job runs
# exactly this.
add_test(NAME batch_smoke
  COMMAND service_suite --smoke --phase=batch
          --batch-out=${CMAKE_BINARY_DIR}/BENCH_batch.json)
set_tests_properties(batch_smoke PROPERTIES LABELS perf TIMEOUT 300)

# Delta-repair phase alone: warm in-place repair vs cold re-solve of the
# child snapshot across delta sizes, every round validated against the
# child's Dijkstra oracle and certified by verify_repair; exits nonzero
# unless a 1-edge delta repairs at least 2x faster than a full recompute
# (emits BENCH_delta.json). CI's delta-smoke job runs exactly this.
add_test(NAME delta_smoke
  COMMAND service_suite --smoke --phase=delta
          --delta-out=${CMAKE_BINARY_DIR}/BENCH_delta.json)
set_tests_properties(delta_smoke PROPERTIES LABELS perf TIMEOUT 300)

# Landmark p2p phase alone: each (src, dst) pair answered as a full
# single-source solve vs through the landmark layer (tight-bound oracle
# serve or ALT-guided A*), both sides checked bit-equal against a
# Dijkstra reference tree; exits nonzero unless p2p clears 5x over the
# full solve with zero engine fallbacks (emits BENCH_landmark.json).
# CI's landmark-smoke job runs exactly this.
add_test(NAME landmark_smoke
  COMMAND service_suite --smoke --phase=landmark
          --landmark-out=${CMAKE_BINARY_DIR}/BENCH_landmark.json)
set_tests_properties(landmark_smoke PROPERTIES LABELS perf TIMEOUT 300)

# Warm-restart phase alone: one service warms up and saves its state; two
# fresh services then race to their first VERIFIED p2p answer — cold
# (set_graph + full landmark build) vs restored (StateStore load +
# fingerprint recompute + Dijkstra spot check + exactness certificates).
# Exits nonzero unless the warm restart clears 5x over the cold start with
# zero cold rebuilds (emits BENCH_persist.json). CI's persist-smoke job
# runs exactly this.
add_test(NAME persist_smoke
  COMMAND service_suite --smoke --phase=persist
          --persist-out=${CMAKE_BINARY_DIR}/BENCH_persist.json
          --state-dir=${CMAKE_BINARY_DIR}/bench_persist_state)
set_tests_properties(persist_smoke PROPERTIES LABELS perf TIMEOUT 300)
