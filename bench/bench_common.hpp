// Shared helpers for the table/figure bench binaries.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace adds::bench {

inline constexpr const char* kOutDir = "bench_out";

/// Standard CLI shared by the corpus benches.
inline CliParser make_cli(const std::string& name, const std::string& what) {
  CliParser cli(name, what);
  cli.add_option("tier", "corpus tier: smoke|default|full", "full");
  cli.add_option("out", "output directory for CSV files", kOutDir);
  return cli;
}

/// Footer reminding readers what the numbers are.
inline std::string model_footer(const EngineConfig& cfg) {
  return "machine model: " + cfg.gpu.spec().name +
         " (virtual time; see DESIGN.md) — shapes/ratios are the "
         "reproduction target, not absolute ms";
}

}  // namespace adds::bench
