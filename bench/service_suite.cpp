// Serving-layer benchmark: what does a warm engine actually buy?
//
// The query-service story (docs/SERVICE.md) rests on three measurable
// claims, and this suite measures all of them deterministically (fixed
// generator seeds; wall numbers vary by machine, ratios are the signal):
//
//   1. warm vs cold: on small graphs — the regime an interactive query
//      service lives in — per-query setup (thread spawn, pool allocation,
//      first-touch faulting) dominates the solve itself. One-shot
//      construction per query (cold) is compared against a reused
//      HostEngine (warm) on the same query stream.
//   2. cache: the same stream through the full SsspService with the result
//      cache on — repeated sources collapse to O(1) lookups.
//   3. overload: a submit burst beyond the admission queue bound must shed
//      (typed kOverloaded), not stall or fail, and everything admitted
//      must still complete correctly.
//
// Every cold/warm/service result is validated against Dijkstra before its
// timing counts — a latency number for a wrong answer is worthless.
//
// Emits BENCH_service.json (schema adds-service-suite-v1): warm/cold
// latency percentiles per graph, aggregate speedup, cache hit rate, shed
// counts. CI's service-smoke job uploads it as an artifact.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/host_engine.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace adds;

namespace {

struct PhaseStats {
  std::vector<double> lat_ms;
  double wall_ms = 0;

  double p(double q) const {
    return lat_ms.empty() ? 0.0 : percentile(lat_ms, q);
  }
  double qps() const {
    return wall_ms > 0 ? double(lat_ms.size()) / (wall_ms / 1e3) : 0.0;
  }
};

std::string phase_json(const PhaseStats& s) {
  std::ostringstream o;
  o << "{\"queries\":" << s.lat_ms.size() << ",\"wall_ms\":" << s.wall_ms
    << ",\"p50_ms\":" << s.p(50) << ",\"p99_ms\":" << s.p(99)
    << ",\"qps\":" << s.qps() << "}";
  return o.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("service_suite",
                "warm-engine vs cold-start serving benchmark; emits "
                "BENCH_service.json");
  cli.add_flag("smoke", "short run for CI");
  cli.add_option("out", "JSON output path", "BENCH_service.json");
  cli.add_option("queries", "queries per graph (over 8 sources)", "0");
  cli.add_option("workers", "worker threads per engine", "4");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.flag("smoke");
  const uint32_t n_queries =
      cli.integer("queries") > 0 ? uint32_t(cli.integer("queries"))
                                 : (smoke ? 24u : 96u);
  constexpr uint32_t kSources = 8;

  AddsHostOptions eng_opts;
  eng_opts.num_workers = uint32_t(cli.integer("workers"));

  // The small-graph family: the serving regime. Fixed seeds throughout.
  struct Family {
    const char* name;
    uint64_t side;
    uint64_t seed;
  };
  const std::vector<Family> graphs = {
      {"grid_12x12", 12, 7}, {"grid_16x16", 16, 8}, {"grid_24x24", 24, 9}};

  std::vector<std::string> graph_json;
  double cold_total_ms = 0, warm_total_ms = 0;
  uint64_t total_queries = 0;
  bool all_valid = true;

  TextTable t("warm engine vs cold start (per-query latency, " +
              std::to_string(n_queries) + " queries/graph)");
  t.set_header({"graph", "cold p50", "cold p99", "warm p50", "warm p99",
                "speedup", "svc p50", "hit rate"});

  for (const Family& fam : graphs) {
    const auto g = make_grid_road<uint32_t>(
        uint32_t(fam.side), uint32_t(fam.side), {WeightDist::kUniform, 100},
        fam.seed);
    std::vector<SsspResult<uint32_t>> oracles;
    for (VertexId s = 0; s < kSources; ++s) oracles.push_back(dijkstra(g, s));
    const auto check = [&](const SsspResult<uint32_t>& r, VertexId s,
                           const char* phase) {
      if (!validate_distances(r, oracles[s]).ok()) {
        std::fprintf(stderr, "FATAL: %s/%s source %u diverged from Dijkstra\n",
                     fam.name, phase, s);
        all_valid = false;
      }
    };

    // Cold: a fresh engine per query — worker spawn + pool build + solve.
    PhaseStats cold;
    {
      WallTimer phase_timer;
      for (uint32_t i = 0; i < n_queries; ++i) {
        const VertexId s = VertexId(i % kSources);
        WallTimer qt;
        HostEngine<uint32_t> engine(eng_opts);
        const auto r = engine.solve(g, s);
        cold.lat_ms.push_back(qt.elapsed_ms());
        check(r, s, "cold");
      }
      cold.wall_ms = phase_timer.elapsed_ms();
    }

    // Warm: one engine, same stream. First query pays the build; it is
    // measured like the rest (an honest p99, not a trimmed one).
    PhaseStats warm;
    {
      HostEngine<uint32_t> engine(eng_opts);
      WallTimer phase_timer;
      for (uint32_t i = 0; i < n_queries; ++i) {
        const VertexId s = VertexId(i % kSources);
        WallTimer qt;
        const auto r = engine.solve(g, s);
        warm.lat_ms.push_back(qt.elapsed_ms());
        check(r, s, "warm");
      }
      warm.wall_ms = phase_timer.elapsed_ms();
    }

    // Full service with the result cache: the repeated-source stream
    // collapses onto kSources engine runs.
    PhaseStats svc_phase;
    double hit_rate = 0;
    {
      ServiceConfig cfg;
      cfg.num_engines = 1;
      cfg.engine = eng_opts;
      cfg.max_queue_depth = n_queries + 1;
      SsspService<uint32_t> svc(cfg);
      svc.set_graph(g);
      WallTimer phase_timer;
      for (uint32_t i = 0; i < n_queries; ++i) {
        const VertexId s = VertexId(i % kSources);
        const auto out = svc.query(s);  // throws on any non-ok status
        svc_phase.lat_ms.push_back(out.latency_ms);
        check(*out.result, s, "service");
      }
      svc_phase.wall_ms = phase_timer.elapsed_ms();
      hit_rate = svc.report().cache_hit_rate;
    }

    cold_total_ms += cold.wall_ms;
    warm_total_ms += warm.wall_ms;
    total_queries += n_queries;
    const double speedup =
        warm.wall_ms > 0 ? cold.wall_ms / warm.wall_ms : 0.0;
    t.add_row({fam.name, fmt_double(cold.p(50), 3), fmt_double(cold.p(99), 3),
               fmt_double(warm.p(50), 3), fmt_double(warm.p(99), 3),
               fmt_ratio(speedup), fmt_double(svc_phase.p(50), 3),
               fmt_double(hit_rate, 2)});

    std::ostringstream gj;
    gj << "{\"graph\":\"" << fam.name << "\",\"vertices\":"
       << g.num_vertices() << ",\"cold\":" << phase_json(cold)
       << ",\"warm\":" << phase_json(warm)
       << ",\"service\":" << phase_json(svc_phase)
       << ",\"warm_speedup\":" << speedup << ",\"cache_hit_rate\":"
       << hit_rate << "}";
    graph_json.push_back(gj.str());
  }
  const double agg_speedup =
      warm_total_ms > 0 ? cold_total_ms / warm_total_ms : 0.0;
  t.add_footer("all latencies Dijkstra-validated; cold = engine built per "
               "query, warm = one engine reused");
  t.print();
  std::printf("aggregate warm-vs-cold throughput speedup: %s\n",
              fmt_ratio(agg_speedup).c_str());

  // Overload burst: a medium graph keeps the single engine busy long
  // enough that an instant burst overruns the 4-deep admission queue.
  uint64_t burst_ok = 0, burst_shed = 0, burst_other = 0;
  {
    const auto big = make_grid_road<uint32_t>(
        smoke ? 80 : 160, smoke ? 80 : 160, {WeightDist::kUniform, 500}, 11);
    const auto oracle = dijkstra(big, VertexId{0});
    ServiceConfig cfg;
    cfg.num_engines = 1;
    cfg.engine = eng_opts;
    cfg.max_queue_depth = 4;
    cfg.cache_entries = 0;  // every accepted query must really run
    SsspService<uint32_t> svc(cfg);
    svc.set_graph(big);
    const uint32_t burst = smoke ? 24 : 64;
    std::vector<std::future<QueryOutcome<uint32_t>>> futs;
    futs.reserve(burst);
    for (uint32_t i = 0; i < burst; ++i) futs.push_back(svc.submit(0));
    for (auto& f : futs) {
      const auto out = f.get();
      if (out.status == QueryStatus::kOk) {
        ++burst_ok;
        if (!validate_distances(*out.result, oracle).ok()) {
          std::fprintf(stderr, "FATAL: overload survivor diverged\n");
          all_valid = false;
        }
      } else if (out.status == QueryStatus::kOverloaded) {
        ++burst_shed;
      } else {
        ++burst_other;
      }
    }
    std::printf(
        "overload burst: %u submitted -> %llu ok, %llu shed, %llu other\n",
        burst, (unsigned long long)burst_ok, (unsigned long long)burst_shed,
        (unsigned long long)burst_other);
  }

  std::ostringstream root;
  root << "{\"schema\":\"adds-service-suite-v1\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"queries_per_graph\":"
       << n_queries << ",\"workers\":" << eng_opts.num_workers
       << ",\"aggregate_warm_speedup\":" << agg_speedup
       << ",\"total_queries\":" << total_queries << ",\"graphs\":[";
  for (size_t i = 0; i < graph_json.size(); ++i)
    root << (i ? "," : "") << graph_json[i];
  root << "],\"overload\":{\"ok\":" << burst_ok << ",\"shed\":" << burst_shed
       << ",\"other\":" << burst_other << "}}";

  const std::string out_path = cli.str("out");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << root.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  // Correctness is the gate; a shed-free burst also means the overload
  // phase never actually exercised admission control.
  return (all_valid && burst_shed > 0 && burst_other == 0) ? 0 : 1;
}
