// Serving-layer benchmark: what does a warm engine actually buy?
//
// The query-service story (docs/SERVICE.md) rests on three measurable
// claims, and this suite measures all of them deterministically (fixed
// generator seeds; wall numbers vary by machine, ratios are the signal):
//
//   1. warm vs cold: on small graphs — the regime an interactive query
//      service lives in — per-query setup (thread spawn, pool allocation,
//      first-touch faulting) dominates the solve itself. One-shot
//      construction per query (cold) is compared against a reused
//      HostEngine (warm) on the same query stream.
//   2. cache: the same stream through the full SsspService with the result
//      cache on — repeated sources collapse to O(1) lookups.
//   3. overload: a submit burst beyond the admission queue bound must shed
//      (typed kOverloaded), not stall or fail, and everything admitted
//      must still complete correctly.
//
// Every cold/warm/service result is validated against Dijkstra before its
// timing counts — a latency number for a wrong answer is worthless.
//
// Emits BENCH_service.json (schema adds-service-suite-v1): warm/cold
// latency percentiles per graph, aggregate speedup, cache hit rate, shed
// counts. CI's service-smoke job uploads it as an artifact.
//
// --phase=delta runs the delta-repair phase alone (also part of `all`):
// warm in-place SSSP repair vs cold re-solve of the child snapshot across
// delta sizes, every round validated against the child's Dijkstra oracle
// and certified by verify_repair; emits BENCH_delta.json and gates on a
// small delta repairing at least 2x faster than a full recompute.
//
// --phase=landmark runs the point-to-point oracle phase (also part of
// `all`): the same service answers each (src, dst) pair twice — once as a
// full single-source solve, once through the landmark layer (tight-bound
// oracle serve or ALT-guided A*, never an engine). Every p2p answer must
// be bit-equal to the Dijkstra reference or the run fails; emits
// BENCH_landmark.json and gates on p2p serving at least 5x faster than
// the full solve on the serving-regime road grid, with zero engine
// fallbacks.
//
// --phase=persist runs the warm-restart phase (also part of `all`): one
// service warms up (landmark table READY, result cache populated), saves
// its state through the checksummed StateStore, and the suite then races
// two fresh services to their first VERIFIED p2p answer — one starting
// cold (set_graph + full landmark build), one restoring the store
// (load + fingerprint recompute + Dijkstra spot check + exactness
// certificates). Both answers must be bit-equal to Dijkstra before their
// timing counts; emits BENCH_persist.json and gates on the warm restart
// reaching its first verified answer at least 5x faster than the cold
// start, with every restored artifact verified and zero cold rebuilds.
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "../tests/oracle_util.hpp"
#include "bench_common.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/host_engine.hpp"
#include "sssp/repair.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace adds;

namespace {

struct PhaseStats {
  std::vector<double> lat_ms;
  double wall_ms = 0;

  double p(double q) const {
    return lat_ms.empty() ? 0.0 : percentile(lat_ms, q);
  }
  double qps() const {
    return wall_ms > 0 ? double(lat_ms.size()) / (wall_ms / 1e3) : 0.0;
  }
};

std::string phase_json(const PhaseStats& s) {
  std::ostringstream o;
  o << "{\"queries\":" << s.lat_ms.size() << ",\"wall_ms\":" << s.wall_ms
    << ",\"p50_ms\":" << s.p(50) << ",\"p99_ms\":" << s.p(99)
    << ",\"qps\":" << s.qps() << "}";
  return o.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("service_suite",
                "warm-engine vs cold-start serving benchmark; emits "
                "BENCH_service.json");
  cli.add_flag("smoke", "short run for CI");
  cli.add_option("out", "JSON output path", "BENCH_service.json");
  cli.add_option("batch-out", "batched-phase JSON output path",
                 "BENCH_batch.json");
  cli.add_option("delta-out", "delta-phase JSON output path",
                 "BENCH_delta.json");
  cli.add_option("landmark-out", "landmark-phase JSON output path",
                 "BENCH_landmark.json");
  cli.add_option("persist-out", "persist-phase JSON output path",
                 "BENCH_persist.json");
  cli.add_option("state-dir", "state directory for the persist phase",
                 "bench_persist_state");
  cli.add_option("phase",
                 "phases to run: all | batch | delta | landmark | persist",
                 "all");
  cli.add_option("queries", "queries per graph (over 8 sources)", "0");
  cli.add_option("workers", "worker threads per engine", "4");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.flag("smoke");
  const std::string phase_sel = cli.str("phase");
  ADDS_REQUIRE(phase_sel == "all" || phase_sel == "batch" ||
                   phase_sel == "delta" || phase_sel == "landmark" ||
                   phase_sel == "persist",
               "service_suite: --phase must be all, batch, delta, landmark "
               "or persist");
  const bool run_main = phase_sel == "all";
  const bool run_batch = phase_sel == "all" || phase_sel == "batch";
  const bool run_delta = phase_sel == "all" || phase_sel == "delta";
  const bool run_landmark = phase_sel == "all" || phase_sel == "landmark";
  const bool run_persist = phase_sel == "all" || phase_sel == "persist";
  const uint32_t n_queries =
      cli.integer("queries") > 0 ? uint32_t(cli.integer("queries"))
                                 : (smoke ? 24u : 96u);
  constexpr uint32_t kSources = 8;

  AddsHostOptions eng_opts;
  eng_opts.num_workers = uint32_t(cli.integer("workers"));

  // The small-graph family: the serving regime. Fixed seeds throughout.
  struct Family {
    const char* name;
    uint64_t side;
    uint64_t seed;
  };
  const std::vector<Family> graphs = {
      {"grid_12x12", 12, 7}, {"grid_16x16", 16, 8}, {"grid_24x24", 24, 9}};

  std::vector<std::string> graph_json;
  double cold_total_ms = 0, warm_total_ms = 0;
  uint64_t total_queries = 0;
  bool all_valid = true;

  TextTable t("warm engine vs cold start (per-query latency, " +
              std::to_string(n_queries) + " queries/graph)");
  t.set_header({"graph", "cold p50", "cold p99", "warm p50", "warm p99",
                "speedup", "svc p50", "hit rate"});

  if (run_main) for (const Family& fam : graphs) {
    const auto g = make_grid_road<uint32_t>(
        uint32_t(fam.side), uint32_t(fam.side), {WeightDist::kUniform, 100},
        fam.seed);
    std::vector<SsspResult<uint32_t>> oracles;
    for (VertexId s = 0; s < kSources; ++s) oracles.push_back(dijkstra(g, s));
    const auto check = [&](const SsspResult<uint32_t>& r, VertexId s,
                           const char* phase) {
      if (!validate_distances(r, oracles[s]).ok()) {
        std::fprintf(stderr, "FATAL: %s/%s source %u diverged from Dijkstra\n",
                     fam.name, phase, s);
        all_valid = false;
      }
    };

    // Cold: a fresh engine per query — worker spawn + pool build + solve.
    PhaseStats cold;
    {
      WallTimer phase_timer;
      for (uint32_t i = 0; i < n_queries; ++i) {
        const VertexId s = VertexId(i % kSources);
        WallTimer qt;
        HostEngine<uint32_t> engine(eng_opts);
        const auto r = engine.solve(g, s);
        cold.lat_ms.push_back(qt.elapsed_ms());
        check(r, s, "cold");
      }
      cold.wall_ms = phase_timer.elapsed_ms();
    }

    // Warm: one engine, same stream. First query pays the build; it is
    // measured like the rest (an honest p99, not a trimmed one).
    PhaseStats warm;
    {
      HostEngine<uint32_t> engine(eng_opts);
      WallTimer phase_timer;
      for (uint32_t i = 0; i < n_queries; ++i) {
        const VertexId s = VertexId(i % kSources);
        WallTimer qt;
        const auto r = engine.solve(g, s);
        warm.lat_ms.push_back(qt.elapsed_ms());
        check(r, s, "warm");
      }
      warm.wall_ms = phase_timer.elapsed_ms();
    }

    // Full service with the result cache: the repeated-source stream
    // collapses onto kSources engine runs.
    PhaseStats svc_phase;
    double hit_rate = 0;
    {
      ServiceConfig cfg;
      cfg.num_engines = 1;
      cfg.engine = eng_opts;
      cfg.max_queue_depth = n_queries + 1;
      SsspService<uint32_t> svc(cfg);
      svc.set_graph(g);
      WallTimer phase_timer;
      for (uint32_t i = 0; i < n_queries; ++i) {
        const VertexId s = VertexId(i % kSources);
        const auto out = svc.query(s);  // throws on any non-ok status
        svc_phase.lat_ms.push_back(out.latency_ms);
        check(*out.result, s, "service");
      }
      svc_phase.wall_ms = phase_timer.elapsed_ms();
      hit_rate = svc.report().cache_hit_rate;
    }

    cold_total_ms += cold.wall_ms;
    warm_total_ms += warm.wall_ms;
    total_queries += n_queries;
    const double speedup =
        warm.wall_ms > 0 ? cold.wall_ms / warm.wall_ms : 0.0;
    t.add_row({fam.name, fmt_double(cold.p(50), 3), fmt_double(cold.p(99), 3),
               fmt_double(warm.p(50), 3), fmt_double(warm.p(99), 3),
               fmt_ratio(speedup), fmt_double(svc_phase.p(50), 3),
               fmt_double(hit_rate, 2)});

    std::ostringstream gj;
    gj << "{\"graph\":\"" << fam.name << "\",\"vertices\":"
       << g.num_vertices() << ",\"cold\":" << phase_json(cold)
       << ",\"warm\":" << phase_json(warm)
       << ",\"service\":" << phase_json(svc_phase)
       << ",\"warm_speedup\":" << speedup << ",\"cache_hit_rate\":"
       << hit_rate << "}";
    graph_json.push_back(gj.str());
  }
  const double agg_speedup =
      warm_total_ms > 0 ? cold_total_ms / warm_total_ms : 0.0;
  if (run_main) {
    t.add_footer("all latencies Dijkstra-validated; cold = engine built per "
                 "query, warm = one engine reused");
    t.print();
    std::printf("aggregate warm-vs-cold throughput speedup: %s\n",
                fmt_ratio(agg_speedup).c_str());
  }

  // Overload burst: a medium graph keeps the single engine busy long
  // enough that an instant burst overruns the 4-deep admission queue.
  uint64_t burst_ok = 0, burst_shed = 0, burst_other = 0;
  if (run_main) {
    const auto big = make_grid_road<uint32_t>(
        smoke ? 80 : 160, smoke ? 80 : 160, {WeightDist::kUniform, 500}, 11);
    const auto oracle = dijkstra(big, VertexId{0});
    ServiceConfig cfg;
    cfg.num_engines = 1;
    cfg.engine = eng_opts;
    cfg.max_queue_depth = 4;
    cfg.cache_entries = 0;  // every accepted query must really run
    SsspService<uint32_t> svc(cfg);
    svc.set_graph(big);
    const uint32_t burst = smoke ? 24 : 64;
    std::vector<std::future<QueryOutcome<uint32_t>>> futs;
    futs.reserve(burst);
    for (uint32_t i = 0; i < burst; ++i) futs.push_back(svc.submit(0));
    for (auto& f : futs) {
      const auto out = f.get();
      if (out.status == QueryStatus::kOk) {
        ++burst_ok;
        if (!validate_distances(*out.result, oracle).ok()) {
          std::fprintf(stderr, "FATAL: overload survivor diverged\n");
          all_valid = false;
        }
      } else if (out.status == QueryStatus::kOverloaded) {
        ++burst_shed;
      } else {
        ++burst_other;
      }
    }
    std::printf(
        "overload burst: %u submitted -> %llu ok, %llu shed, %llu other\n",
        burst, (unsigned long long)burst_ok, (unsigned long long)burst_shed,
        (unsigned long long)burst_other);
  }

  // Batched multi-source phase: K independent solves — each paying its
  // own engine spin-up (manager + worker threads) and its own traversal's
  // fixed scheduling costs — vs ONE adds_host_batch relaxing the same K
  // sources as lanes of a single shared traversal. Small road grids are
  // the serving regime where those fixed per-query costs dominate the
  // actual relaxation work — exactly what lanes amortize, and where the
  // batch's aggregate-throughput win must show. Every lane of every
  // round is Dijkstra-validated before its timing counts.
  double batch_speedup = 0.0;
  if (run_batch) {
    const uint32_t side = smoke ? 8 : 12;
    const auto g = make_grid_road<uint32_t>(
        side, side, {WeightDist::kUniform, 200}, 13);
    std::vector<VertexId> sources;
    for (uint32_t l = 0; l < kSources; ++l)
      sources.push_back(
          VertexId((uint64_t(l) * g.num_vertices()) / kSources));
    std::vector<SsspResult<uint32_t>> oracles;
    for (const VertexId s : sources) oracles.push_back(dijkstra(g, s));
    const auto check_lane = [&](const SsspResult<uint32_t>& r, uint32_t l,
                                const char* ph) {
      if (!validate_distances(r, oracles[l]).ok()) {
        std::fprintf(stderr,
                     "FATAL: batch phase %s lane %u diverged from Dijkstra\n",
                     ph, l);
        all_valid = false;
      }
    };

    // Untimed warmup: one solve of each shape so code paths, the
    // allocator, and the page cache are primed before timing starts.
    { HostEngine<uint32_t> warm(eng_opts); warm.solve(g, sources[0]); }
    adds_host_batch(g, sources, eng_opts);

    const uint32_t rounds = smoke ? 5 : 8;
    double seq_ms = 0, batch_ms = 0;
    for (uint32_t round = 0; round < rounds; ++round) {
      WallTimer st;
      for (uint32_t l = 0; l < kSources; ++l) {
        HostEngine<uint32_t> one(eng_opts);
        const auto r = one.solve(g, sources[l]);
        check_lane(r, l, "independent");
      }
      seq_ms += st.elapsed_ms();
      WallTimer bt;
      const auto br = adds_host_batch(g, sources, eng_opts);
      batch_ms += bt.elapsed_ms();
      for (uint32_t l = 0; l < kSources; ++l)
        check_lane(br.lanes[l].result, l, "batched");
    }
    batch_speedup = batch_ms > 0 ? seq_ms / batch_ms : 0.0;
    std::printf(
        "batched phase (grid_%ux%u, %u lanes, %u rounds): independent "
        "%.1f ms, batched %.1f ms, aggregate speedup %s\n",
        side, side, kSources, rounds, seq_ms, batch_ms,
        fmt_ratio(batch_speedup).c_str());

    std::ostringstream bj;
    bj << "{\"schema\":\"adds-batch-suite-v1\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"graph\":\"grid_" << side << "x"
       << side << "\",\"vertices\":" << g.num_vertices()
       << ",\"lanes\":" << kSources << ",\"rounds\":" << rounds
       << ",\"workers\":" << eng_opts.num_workers
       << ",\"independent_wall_ms\":" << seq_ms
       << ",\"batched_wall_ms\":" << batch_ms
       << ",\"aggregate_speedup\":" << batch_speedup << "}";
    const std::string bpath = cli.str("batch-out");
    write_file_atomic(bpath, bj.str() + "\n");
    std::printf("wrote %s\n", bpath.c_str());
  }

  // Delta-repair phase: warm in-place repair vs cold re-solve of the child
  // snapshot, across delta sizes, on one warm engine (both sides reuse the
  // same threads and pools — the difference measured is relaxation work,
  // not spin-up). Every round's repaired tree is validated against a cold
  // Dijkstra solve of the child AND certified by verify_repair before its
  // timing counts. The gate: a small delta must repair at least 2x faster
  // than recomputing the child from scratch — otherwise the live-delta
  // pipeline's reason to exist (ISSUE 8) is gone.
  double delta_small_speedup = 0.0;
  if (run_delta) {
    const uint32_t side = smoke ? 64 : 128;
    const auto g = make_grid_road<uint32_t>(
        side, side, {WeightDist::kUniform, 200}, 17);
    const VertexId src = 0;
    const auto parent_oracle = dijkstra(g, src);
    HostEngine<uint32_t> engine(eng_opts);
    engine.solve(g, src);  // untimed warmup: threads, pools, page cache

    const uint32_t rounds = smoke ? 4 : 8;
    const std::vector<uint32_t> sizes = {1, 4, 16, 64};
    struct DeltaRow {
      uint32_t changes = 0;
      double repair_ms = 0, cold_ms = 0;
      uint64_t frontier = 0, invalidated = 0;
    };
    std::vector<DeltaRow> rows;
    bool all_exact = true;

    TextTable dt("delta repair vs cold re-solve (grid_" +
                 std::to_string(side) + "x" + std::to_string(side) + ", " +
                 std::to_string(rounds) + " rounds/size, warm engine)");
    dt.set_header({"delta edges", "repair ms", "cold ms", "speedup",
                   "avg frontier", "avg invalidated"});
    for (const uint32_t k : sizes) {
      DeltaRow row;
      row.changes = k;
      for (uint32_t round = 0; round < rounds; ++round) {
        const auto delta =
            oracle::make_test_delta(g, k, 0, 1000ull * k + round);
        const auto res = apply_delta(g, delta);
        const auto child_oracle = dijkstra(res.graph, src);

        WallTimer rt;
        const auto plan =
            plan_repair(g, res.graph, res, parent_oracle.dist, src);
        const auto repaired = engine.solve_repair(res.graph, src, plan);
        row.repair_ms += rt.elapsed_ms();
        row.frontier += plan.frontier.size();
        row.invalidated += plan.invalidated;

        WallTimer ct;
        const auto cold = engine.solve(res.graph, src);
        row.cold_ms += ct.elapsed_ms();

        if (!validate_distances(repaired, child_oracle).ok() ||
            !verify_repair(res.graph, src, repaired.dist).exact) {
          std::fprintf(stderr,
                       "FATAL: repair (k=%u round=%u) diverged from the "
                       "child oracle\n",
                       k, round);
          all_exact = false;
        }
        if (!validate_distances(cold, child_oracle).ok()) {
          std::fprintf(stderr,
                       "FATAL: cold re-solve (k=%u round=%u) diverged\n", k,
                       round);
          all_exact = false;
        }
      }
      dt.add_row({std::to_string(k), fmt_double(row.repair_ms, 2),
                  fmt_double(row.cold_ms, 2),
                  fmt_ratio(row.repair_ms > 0 ? row.cold_ms / row.repair_ms
                                              : 0.0),
                  std::to_string(row.frontier / rounds),
                  std::to_string(row.invalidated / rounds)});
      rows.push_back(row);
    }
    all_valid = all_valid && all_exact;
    delta_small_speedup =
        rows.front().repair_ms > 0
            ? rows.front().cold_ms / rows.front().repair_ms
            : 0.0;
    dt.add_footer("every repaired tree validated against the child's "
                  "Dijkstra oracle and certified by verify_repair");
    dt.print();
    std::printf("small-delta (1 edge) repair speedup over cold: %s\n",
                fmt_ratio(delta_small_speedup).c_str());

    std::ostringstream dj;
    dj << "{\"schema\":\"adds-delta-suite-v1\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"graph\":\"grid_" << side << "x"
       << side << "\",\"vertices\":" << g.num_vertices()
       << ",\"rounds\":" << rounds << ",\"workers\":" << eng_opts.num_workers
       << ",\"sizes\":[";
    for (size_t i = 0; i < rows.size(); ++i)
      dj << (i ? "," : "") << "{\"changes\":" << rows[i].changes
         << ",\"repair_wall_ms\":" << rows[i].repair_ms
         << ",\"cold_wall_ms\":" << rows[i].cold_ms << ",\"speedup\":"
         << (rows[i].repair_ms > 0 ? rows[i].cold_ms / rows[i].repair_ms : 0.0)
         << ",\"avg_frontier\":" << rows[i].frontier / rounds
         << ",\"avg_invalidated\":" << rows[i].invalidated / rounds << "}";
    dj << "],\"small_delta_speedup\":" << delta_small_speedup
       << ",\"gate_min_speedup\":2.0}";
    const std::string dpath = cli.str("delta-out");
    write_file_atomic(dpath, dj.str() + "\n");
    std::printf("wrote %s\n", dpath.c_str());
  }

  // Landmark p2p phase: one service, one tenant, landmark table READY.
  // Each (src, dst) pair is answered twice — a full single-source solve
  // through an engine vs the landmark layer (tight-bound oracle serve or
  // ALT-guided A*; the gate requires zero engine fallbacks, so no engine
  // ever runs on the p2p side). Both sides are checked against a Dijkstra
  // reference tree before their timing counts: the speedup of a wrong
  // answer is worthless, and the oracle's contract is bit-equality.
  double landmark_speedup = 0.0;
  uint64_t lm_exact = 0, lm_alt = 0, lm_engine = 0;
  if (run_landmark) {
    const uint32_t side = smoke ? 48 : 96;
    const auto g = make_grid_road<uint32_t>(
        side, side, {WeightDist::kUniform, 100}, 23);
    const uint32_t n_pairs = smoke ? 16 : 48;

    ServiceConfig cfg;
    cfg.num_engines = 1;
    cfg.engine = eng_opts;
    cfg.cache_entries = 0;  // every full solve must really run
    cfg.max_queue_depth = std::max(cfg.max_queue_depth, 2 * n_pairs + 2);
    SsspService<uint32_t> svc(cfg);
    const uint64_t fp = svc.set_graph(g);

    const auto oracle_status = [&] {
      for (const auto& ts : svc.report().tenants)
        if (ts.graph_fp == fp) return ts.oracle_status;
      return LandmarkTableStatus::kNone;
    };
    for (int waited = 0;
         waited < 30000 && oracle_status() != LandmarkTableStatus::kReady;
         waited += 10)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ADDS_REQUIRE(oracle_status() == LandmarkTableStatus::kReady,
                 "landmark phase: table never became ready");

    // Deterministic pair set spread across the grid; repeats are fine.
    std::vector<std::pair<VertexId, VertexId>> pairs;
    for (uint32_t i = 0; i < n_pairs; ++i) {
      const VertexId s =
          VertexId((uint64_t(i) * 2654435761ull) % g.num_vertices());
      VertexId d = VertexId(
          (uint64_t(i) * 40503ull + g.num_vertices() / 2) % g.num_vertices());
      if (d == s) d = VertexId((d + 1) % g.num_vertices());
      pairs.emplace_back(s, d);
    }
    std::map<VertexId, std::vector<DistT<uint32_t>>> ref;
    for (const auto& [s, d] : pairs)
      if (!ref.count(s)) ref.emplace(s, dijkstra(g, s).dist);

    // Untimed warmup on both sides: engine threads, pools, page cache.
    svc.query(pairs[0].first);
    {
      QueryOptions q;
      q.target = pairs[0].second;
      svc.query(pairs[0].first, q);
    }

    PhaseStats full, p2p;
    {
      WallTimer pt;
      for (const auto& [s, d] : pairs) {
        WallTimer qt;
        const auto out = svc.query(s);
        full.lat_ms.push_back(qt.elapsed_ms());
        if (out.result->dist[d] != ref[s][d]) {
          std::fprintf(stderr,
                       "FATAL: landmark phase full solve (%u,%u) diverged\n",
                       s, d);
          all_valid = false;
        }
      }
      full.wall_ms = pt.elapsed_ms();
    }
    {
      WallTimer pt;
      for (const auto& [s, d] : pairs) {
        QueryOptions q;
        q.target = d;
        WallTimer qt;
        const auto out = svc.query(s, q);
        p2p.lat_ms.push_back(qt.elapsed_ms());
        const DistT<uint32_t> want = ref[s][d];
        const bool want_reach = want != DistTraits<uint32_t>::infinity();
        if (out.p2p_reachable != want_reach ||
            (want_reach && out.p2p_distance != want)) {
          std::fprintf(stderr,
                       "FATAL: landmark phase p2p (%u,%u) diverged from "
                       "Dijkstra\n",
                       s, d);
          all_valid = false;
        }
      }
      p2p.wall_ms = pt.elapsed_ms();
    }
    landmark_speedup = p2p.wall_ms > 0 ? full.wall_ms / p2p.wall_ms : 0.0;
    {
      const auto rep = svc.report();
      lm_exact = rep.oracle_exact_hits;
      lm_alt = rep.alt_searches;
      lm_engine = rep.p2p_engine_fallbacks;
    }
    std::printf(
        "landmark phase (grid_%ux%u, %u pairs): full solve %.2f ms "
        "(p50 %.3f), p2p %.2f ms (p50 %.3f), speedup %s | serves: %llu "
        "exact, %llu alt, %llu engine\n",
        side, side, n_pairs, full.wall_ms, full.p(50), p2p.wall_ms,
        p2p.p(50), fmt_ratio(landmark_speedup).c_str(),
        (unsigned long long)lm_exact, (unsigned long long)lm_alt,
        (unsigned long long)lm_engine);

    std::ostringstream lj;
    lj << "{\"schema\":\"adds-landmark-suite-v1\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"graph\":\"grid_" << side << "x"
       << side << "\",\"vertices\":" << g.num_vertices()
       << ",\"pairs\":" << n_pairs << ",\"workers\":" << eng_opts.num_workers
       << ",\"full\":" << phase_json(full) << ",\"p2p\":" << phase_json(p2p)
       << ",\"oracle_exact\":" << lm_exact << ",\"alt_searches\":" << lm_alt
       << ",\"engine_fallbacks\":" << lm_engine
       << ",\"p2p_speedup\":" << landmark_speedup
       << ",\"gate_min_speedup\":5.0}";
    const std::string lpath = cli.str("landmark-out");
    write_file_atomic(lpath, lj.str() + "\n");
    std::printf("wrote %s\n", lpath.c_str());
  }

  // Warm-restart phase: time-to-first-VERIFIED-answer, cold vs restored.
  // Cold pays set_graph plus a full landmark build (num_landmarks Dijkstra
  // sweeps on the rebuilder); warm pays StateStore load + the restore
  // verification gauntlet (fingerprint recompute, one Dijkstra spot-check
  // row, exactness certificates on cache entries) — the whole point of the
  // store is that verifying state is much cheaper than recomputing it.
  // Both sides' first p2p answer is checked bit-equal against Dijkstra
  // before its clock stops, and the restored cache must serve the pre-save
  // tree bit-equal. Gate: warm at least 5x faster, zero cold rebuilds.
  double persist_speedup = 0.0;
  double persist_cold_ms = 0.0, persist_warm_ms = 0.0;
  uint32_t persist_tables = 0, persist_cache = 0, persist_rebuilds = 0;
  if (run_persist) {
    const uint32_t side = smoke ? 64 : 96;
    const auto g = make_grid_road<uint32_t>(
        side, side, {WeightDist::kUniform, 100}, 29);
    const VertexId src = 0;
    const VertexId dst = VertexId(g.num_vertices() - 1);
    const auto ref = dijkstra(g, src);
    const std::string state_dir = cli.str("state-dir");

    ServiceConfig cfg;
    cfg.num_engines = 1;
    cfg.engine = eng_opts;
    cfg.landmark.num_landmarks = 16;  // a cold start pays 16 Dijkstra sweeps

    const auto table_ready = [](SsspService<uint32_t>& svc, uint64_t fp) {
      for (const auto& ts : svc.report().tenants)
        if (ts.graph_fp == fp)
          return ts.oracle_status == LandmarkTableStatus::kReady;
      return false;
    };
    const auto wait_ready = [&](SsspService<uint32_t>& svc, uint64_t fp) {
      for (int waited = 0; waited < 60000 && !table_ready(svc, fp); ++waited)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ADDS_REQUIRE(table_ready(svc, fp),
                   "persist phase: landmark table never became ready");
    };
    const auto first_answer = [&](SsspService<uint32_t>& svc) {
      QueryOptions q;
      q.target = dst;
      const auto out = svc.query(src, q);
      if (out.p2p_serve == P2pServe::kNone || !out.p2p_reachable ||
          out.p2p_distance != ref.dist[dst]) {
        std::fprintf(stderr,
                     "FATAL: persist phase p2p answer diverged from "
                     "Dijkstra (or fell back to an engine)\n");
        all_valid = false;
      }
    };

    // Prep: warm one service end to end and persist its state.
    {
      SsspService<uint32_t> warm_svc(cfg);
      const uint64_t fp = warm_svc.set_graph(g);
      wait_ready(warm_svc, fp);
      warm_svc.query(src);  // populate the result cache
      warm_svc.query(VertexId(g.num_vertices() / 2));
      const auto saved = warm_svc.save(state_dir);
      ADDS_REQUIRE(saved.ok, "persist phase: save failed: " + saved.error);
    }

    const uint32_t rounds = smoke ? 2 : 4;
    for (uint32_t round = 0; round < rounds; ++round) {
      {
        WallTimer cold_t;
        SsspService<uint32_t> svc(cfg);
        const uint64_t fp = svc.set_graph(g);
        wait_ready(svc, fp);
        first_answer(svc);
        persist_cold_ms += cold_t.elapsed_ms();
      }
      {
        WallTimer warm_t;
        SsspService<uint32_t> svc(cfg);
        const auto rs = svc.restore(state_dir);
        first_answer(svc);  // no wait: restore verifies synchronously
        persist_warm_ms += warm_t.elapsed_ms();
        const auto rep = svc.report();
        persist_tables = uint32_t(rep.state_tables_restored);
        persist_cache = uint32_t(rep.state_cache_restored);
        persist_rebuilds += uint32_t(rep.state_cold_rebuilds);
        if (!rs.ok || rs.tables_restored != 1 || rs.corrupt_sections != 0 ||
            rep.landmark_builds_ok != 0) {
          std::fprintf(stderr,
                       "FATAL: persist phase restore was not fully warm "
                       "(tables=%u corrupt=%llu builds=%llu)\n",
                       rs.tables_restored,
                       (unsigned long long)rs.corrupt_sections,
                       (unsigned long long)rep.landmark_builds_ok);
          all_valid = false;
        }
        const auto cached = svc.query(src);
        if (!cached.cache_hit ||
            !validate_distances(*cached.result, ref).ok()) {
          std::fprintf(stderr,
                       "FATAL: persist phase restored cache entry "
                       "diverged from the pre-save tree\n");
          all_valid = false;
        }
      }
    }
    persist_speedup =
        persist_warm_ms > 0 ? persist_cold_ms / persist_warm_ms : 0.0;
    std::printf(
        "persist phase (grid_%ux%u, %u landmarks, %u rounds): cold "
        "start-to-verified-answer %.2f ms, warm restore %.2f ms, speedup "
        "%s | restored: %u tables, %u cache entries, %u cold rebuilds\n",
        side, side, cfg.landmark.num_landmarks, rounds, persist_cold_ms,
        persist_warm_ms, fmt_ratio(persist_speedup).c_str(), persist_tables,
        persist_cache, persist_rebuilds);

    std::ostringstream pj;
    pj << "{\"schema\":\"adds-persist-suite-v1\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"graph\":\"grid_" << side << "x"
       << side << "\",\"vertices\":" << g.num_vertices()
       << ",\"landmarks\":" << cfg.landmark.num_landmarks
       << ",\"rounds\":" << rounds << ",\"workers\":" << eng_opts.num_workers
       << ",\"cold_wall_ms\":" << persist_cold_ms
       << ",\"warm_wall_ms\":" << persist_warm_ms
       << ",\"warm_speedup\":" << persist_speedup
       << ",\"tables_restored\":" << persist_tables
       << ",\"cache_restored\":" << persist_cache
       << ",\"cold_rebuilds\":" << persist_rebuilds
       << ",\"gate_min_speedup\":5.0}";
    const std::string ppath = cli.str("persist-out");
    write_file_atomic(ppath, pj.str() + "\n");
    std::printf("wrote %s\n", ppath.c_str());
  }

  if (run_main) {
    std::ostringstream root;
    root << "{\"schema\":\"adds-service-suite-v1\",\"mode\":\""
         << (smoke ? "smoke" : "full") << "\",\"queries_per_graph\":"
         << n_queries << ",\"workers\":" << eng_opts.num_workers
         << ",\"aggregate_warm_speedup\":" << agg_speedup
         << ",\"total_queries\":" << total_queries << ",\"graphs\":[";
    for (size_t i = 0; i < graph_json.size(); ++i)
      root << (i ? "," : "") << graph_json[i];
    root << "],\"overload\":{\"ok\":" << burst_ok
         << ",\"shed\":" << burst_shed << ",\"other\":" << burst_other
         << "},\"batch_aggregate_speedup\":" << batch_speedup << "}";

    const std::string out_path = cli.str("out");
    write_file_atomic(out_path, root.str() + "\n");
    std::printf("wrote %s\n", out_path.c_str());
  }
  // Correctness is the gate; a shed-free burst means the overload phase
  // never exercised admission control, a batch below 3x aggregate
  // throughput means lane sharing stopped paying for itself, a small
  // delta repairing slower than 2x a full recompute means in-place repair
  // stopped paying for itself, a p2p serve below 5x a full solve (or
  // one that leaned on an engine) means the landmark oracle stopped
  // paying for itself, and a warm restart below 5x a cold start (or one
  // that had to cold-rebuild anything) means the state store stopped
  // paying for itself.
  bool gate = all_valid;
  if (run_batch) gate = gate && batch_speedup >= 3.0;
  if (run_delta) gate = gate && delta_small_speedup >= 2.0;
  if (run_landmark)
    gate = gate && landmark_speedup >= 5.0 && lm_engine == 0;
  if (run_persist)
    gate = gate && persist_speedup >= 5.0 && persist_rebuilds == 0;
  if (run_main) gate = gate && burst_shed > 0 && burst_other == 0;
  return gate ? 0 : 1;
}
