// Figure 10: correlation between ADDS-over-NF speedup and relative work
// efficiency (inverse vertex-count ratio). Points on the diagonal win by
// work efficiency alone; the upper-left region (more work AND faster) wins
// by parallelism; the lower-right trades work savings for reduced
// parallelism.
#include <cstdio>

#include "bench_common.hpp"

using namespace adds;

int main(int argc, char** argv) {
  auto cli = bench::make_cli(
      "fig10_correlation", "Figure 10: speedup vs work-efficiency scatter");
  if (!cli.parse(argc, argv)) return 0;
  const auto tier = parse_tier(cli.str("tier"));
  const std::string out = cli.str("out");

  CorpusRunOptions opts;
  opts.config = corpus_config();
  opts.solvers = {SolverKind::kAdds,  SolverKind::kNf,  SolverKind::kGunNf,
                  SolverKind::kGunBf, SolverKind::kNv,  SolverKind::kCpuDs,
                  SolverKind::kDijkstra};
  const auto records =
      run_corpus_cached(tier, opts, out, config_tag(opts));

  CsvWriter csv(out + "/fig10_correlation.csv");
  csv.write_header(
      {"graph", "family", "speedup", "work_efficiency", "region"});

  size_t diagonal = 0, upper_left = 0, lower_right = 0;
  for (const auto& r : records) {
    const auto a = r.outcomes.find("adds");
    const auto n = r.outcomes.find("nf");
    if (a == r.outcomes.end() || n == r.outcomes.end()) continue;
    const double s = n->second.time_us / a->second.time_us;
    // Work efficiency of ADDS relative to NF (inverse of vertex count
    // ratio): > 1 means ADDS processed fewer vertices.
    const double w = double(n->second.work.items_processed) /
                     double(a->second.work.items_processed);
    // Region classification around the diagonal s == w.
    const char* region = "diagonal";
    if (s > w * 1.5)
      region = "upper-left (parallelism win)";
    else if (w > s * 1.5)
      region = "lower-right (work win > speedup)";
    if (s > w * 1.5)
      ++upper_left;
    else if (w > s * 1.5)
      ++lower_right;
    else
      ++diagonal;
    csv.write_row({r.spec.name, family_name(r.spec.family), fmt_double(s, 3),
                   fmt_double(w, 3), region});
  }

  TextTable t("Figure 10: region summary (" + std::to_string(records.size()) +
              " graphs)");
  t.set_header({"region", "meaning", "count"});
  t.add_row({"diagonal", "speedup tracks work efficiency",
             std::to_string(diagonal)});
  t.add_row({"upper-left", "more work yet faster (parallelism win)",
             std::to_string(upper_left)});
  t.add_row({"lower-right", "work savings exceed speedup",
             std::to_string(lower_right)});
  t.add_footer("scatter data: " + out + "/fig10_correlation.csv");
  t.add_footer("paper: many graphs cluster upper-left (road-USA-like); "
               "lower-right is nearly empty (1 graph)");
  t.print();
  return 0;
}
