// Figure 7: execution time and work performed against a *fixed* Δ (dynamic
// selection disabled, 32 buckets) for the paper's three contrast graphs:
// RMAT (work-bound), ROAD (parallelism-bound) and MSDOOR (in between).
// For each graph the bench identifies the best-work point, the best-perf
// point, and the clip point, and checks the paper's orderings:
//   * ROAD: best-perf is much faster than best-work despite more work;
//   * RMAT: best-perf == best-work (time tracks work when saturated);
//   * clip point is always worse than best-work.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "graph/generators.hpp"
#include "sssp/adds.hpp"
#include "sssp/delta_heuristic.hpp"

using namespace adds;

int main(int argc, char** argv) {
  auto cli = bench::make_cli("fig7_delta_sweep",
                             "Figure 7: time and work vs fixed delta");
  cli.add_option("points", "number of delta points (powers of 2)", "17");
  if (!cli.parse(argc, argv)) return 0;

  const EngineConfig cfg = corpus_config();
  const int points = int(cli.integer("points"));

  CsvWriter csv(cli.str("out") + "/fig7_delta_sweep.csv");
  csv.write_header({"graph", "delta", "time_us", "items", "norm_time",
                    "norm_work", "clipped"});

  for (const GraphSpec& spec :
       {rmat22_like(), road_usa_like(), msdoor_like()}) {
    const auto g = generate_graph<uint32_t>(spec);
    const VertexId source = pick_source(g);
    // Sweep around the heuristic value: delta = heuristic * 2^(e - points/2).
    const double base = static_delta(g, 1.0);
    std::fprintf(stderr, "[fig7] %s base delta (C=1) = %.1f\n",
                 spec.name.c_str(), base);

    std::vector<double> deltas, times, works;
    for (int e = 0; e < points; ++e) {
      const double delta = base * std::pow(2.0, e - 5);
      AddsOptions opts;
      opts.dynamic_delta = false;  // fixed delta, as in the figure
      opts.delta = delta;
      const auto res = adds_sim(g, source, cfg.gpu, opts);
      deltas.push_back(delta);
      times.push_back(res.time_us);
      works.push_back(double(res.work.items_processed));
      std::fprintf(stderr, "  delta=%-10.0f time=%-12s work=%s\n", delta,
                   fmt_time_us(res.time_us).c_str(),
                   fmt_count(res.work.items_processed).c_str());
    }

    size_t best_time = 0, best_work = 0;
    for (size_t i = 1; i < deltas.size(); ++i) {
      if (times[i] < times[best_time]) best_time = i;
      if (works[i] < works[best_work]) best_work = i;
    }

    TextTable t("Figure 7: " + spec.name +
                " (normalized; lower is better; 32 buckets)");
    t.set_header({"delta", "time (norm)", "work (norm)", "note"});
    for (size_t i = 0; i < deltas.size(); ++i) {
      std::string note;
      if (i == best_time) note += " best-perf-point";
      if (i == best_work) note += " best-work-point";
      if (i == 0) note += " (clip region)";
      t.add_row({fmt_double(deltas[i], 0),
                 fmt_double(times[i] / times[best_time], 2),
                 fmt_double(works[i] / works[best_work], 2), note});
      csv.write_row({spec.name, fmt_double(deltas[i], 1),
                     fmt_double(times[i], 1), fmt_double(works[i], 0),
                     fmt_double(times[i] / times[best_time], 3),
                     fmt_double(works[i] / works[best_work], 3),
                     i == 0 ? "1" : "0"});
    }
    const double perf_gain = times[best_work] / times[best_time];
    const double work_cost = works[best_time] / works[best_work];
    t.add_footer("best-perf is " + fmt_ratio(perf_gain) +
                 " faster than best-work while doing " +
                 fmt_ratio(work_cost) + " the work");
    t.add_footer("clip-point (smallest delta) vs best-work: " +
                 fmt_ratio(times[0] / times[best_work]) + " slower, " +
                 fmt_ratio(works[0] / works[best_work]) + " the work");
    t.print();
  }
  return 0;
}
