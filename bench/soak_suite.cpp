// Chaos soak harness for the resilient host engine (ISSUE 3 tentpole).
//
// Draws a deterministic sequence of adversarial configurations — tiny and
// auto-sized pools, every fault-injection site (including pool.exhausted),
// aggressive and generous watchdog deadlines, write combining on/off, the
// overload governor on/off, mid-run cancels — runs each one, and holds the
// survivors to the only contract that matters:
//
//   * a run that returns a result must match the Dijkstra oracle exactly;
//   * a guarded run must return (the chain ends in engines with no
//     injection sites), and an unguarded run may only fail by throwing
//     adds::Error — never by hanging (the smoke tier is a ctest entry with
//     a hard timeout) and never by silent corruption.
//
// Fully deterministic per --seed: every run's configuration derives from a
// SoakRng stream, so a failure line like `run=17 seed=0x...` replays
// exactly. The summary table counts outcomes; the process exits nonzero on
// any contract violation.
//
// --service-chaos switches to the service-level phase (ISSUE 5): faults are
// injected into a pooled SsspService mid-solve and the supervisor must
// quarantine + rebuild the wedged engines while the pool keeps answering —
// zero hangs, zero wrong distances, recovery visible in ServiceReport and
// reconstructible from the flight-recorder dump.
//
// --tenant-chaos wedges 1 of 3 catalog tenants with domain-scoped faults and
// requires zero cross-tenant damage. --delta-chaos (ISSUE 8) rewrites the
// live graph under a query burst with injected repair faults and validates
// every survivor against the exact graph generation its outcome claims.
// --landmark-chaos (ISSUE 9) storms the landmark oracle: p2p bursts x
// symmetric delta churn x injected landmark.build faults — a typed table
// failure may downgrade serves to the engine path, never bend a distance.
// --restart-chaos (ISSUE 10) crash-cycles the service through the state
// store with persist.io armed on half the save/load paths: every
// corrupted artifact must be detected typed and cold-rebuilt, every
// served answer must still match Dijkstra, and the fleet must end every
// round fully warm.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <map>
#include <unordered_map>

#include "../tests/oracle_util.hpp"
#include "bench_common.hpp"
#include "core/resilience.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "service/sssp_service.hpp"
#include "sssp/adds.hpp"
#include "sssp/dijkstra.hpp"
#include "util/event.hpp"
#include "util/fault.hpp"

using namespace adds;

namespace {

// SplitMix64 under a local name (oracle_util pulls in adds::SplitMix64):
// tiny, deterministic, and good enough to decorrelate every configuration
// dimension from one master seed.
struct SoakRng {
  uint64_t state;
  uint64_t next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t below(uint64_t n) { return next() % n; }
  double unit() { return double(next() >> 11) / double(1ull << 53); }
};

enum class RunMode : uint8_t {
  kPlain,       // raw adds_host, no external interference
  kMidCancel,   // raw adds_host + a canceller thread firing mid-run
  kGuarded,     // run_solver_guarded (watchdog + retry + fallback + audit)
};

struct SoakConfig {
  uint64_t run_seed = 0;
  GraphSpec graph;
  AddsHostOptions host;
  RunMode mode = RunMode::kPlain;
  bool inject = false;  // false: fault-free control run
  fault::Site site = fault::Site::kPoolAllocFail;
  fault::FaultSpec spec;
  double watchdog_min_ms = 0;  // guarded mode only
  double cancel_after_ms = 0;  // mid-cancel mode only
};

SoakConfig draw_config(SoakRng& rng, bool smoke) {
  SoakConfig c;
  c.run_seed = rng.next();

  // Graph: small enough that a soak run takes milliseconds, varied enough
  // to move the bucket/window shapes around.
  switch (rng.below(3)) {
    case 0: {
      const uint64_t side = smoke ? 24 + rng.below(16) : 30 + rng.below(40);
      c.graph.name = "grid_" + std::to_string(side);
      c.graph.family = GraphFamily::kGridRoad;
      c.graph.scale = side;
      c.graph.a = double(side);
      break;
    }
    case 1: {
      const uint64_t scale = smoke ? 9 : 10 + rng.below(2);
      c.graph.name = "rmat_" + std::to_string(scale);
      c.graph.family = GraphFamily::kRmat;
      c.graph.scale = scale;
      c.graph.a = 8;
      break;
    }
    default: {
      const uint64_t side = smoke ? 16 + rng.below(12) : 24 + rng.below(24);
      c.graph.name = "mesh_" + std::to_string(side);
      c.graph.family = GraphFamily::kKNeighborMesh;
      c.graph.scale = side;
      c.graph.a = double(side);
      c.graph.b = 2;
      break;
    }
  }
  c.graph.weights = {WeightDist::kUniform, 1000, 1};
  c.graph.seed = rng.next();

  c.host.num_workers = 2 + uint32_t(rng.below(3));
  c.host.num_buckets = 8;
  c.host.block_words = uint32_t(64u << rng.below(3));  // 64/128/256
  c.host.write_combining = rng.below(2) == 0;
  c.host.pool_governor = rng.below(8) != 0;  // mostly governed
  // Pool: auto-sized, or deliberately tiny so the governor has to spill
  // (ungoverned tiny pools are expected to throw — that is part of the
  // matrix: fail-fast must stay clean under chaos too).
  if (rng.below(2) == 0)
    c.host.pool_blocks =
        c.host.num_buckets + 2 + uint32_t(rng.below(24));

  // Fault site (or a fault-free control run). pool.exhausted leans on the
  // governor; the others stress publication, scheduling and allocator
  // hard-failure paths.
  static constexpr fault::Site kSites[] = {
      fault::Site::kPoolExhausted, fault::Site::kPoolAllocFail,
      fault::Site::kPushDelay,     fault::Site::kPushDropBeforePublish,
      fault::Site::kManagerScanStall,
      fault::Site::kAfDeliveryDelay,
      fault::Site::kWorkerStall,
  };
  const uint64_t pick = rng.below(sizeof(kSites) / sizeof(kSites[0]) + 1);
  c.inject = pick != 0;
  if (c.inject) c.site = kSites[pick - 1];
  switch (c.inject ? c.site : fault::Site(0xff)) {
    case fault::Site::kPoolExhausted:
      c.spec = {0.1 + 0.4 * rng.unit(), ~0ull, 0};
      break;
    case fault::Site::kPoolAllocFail:
      c.spec = {0.1, 1 + rng.below(4), 0};
      break;
    case fault::Site::kPushDelay:
      c.spec = {0.05, ~0ull, uint32_t(100 + rng.below(400))};
      break;
    case fault::Site::kPushDropBeforePublish:
      c.spec = {0.02 + 0.05 * rng.unit(), 1 + rng.below(8), 0};
      break;
    case fault::Site::kManagerScanStall:
    case fault::Site::kAfDeliveryDelay:
    case fault::Site::kWorkerStall:
      c.spec = {0.1, ~0ull, uint32_t(200 + rng.below(smoke ? 300 : 1500))};
      break;
    default:
      break;
  }

  switch (rng.below(3)) {
    case 0: c.mode = RunMode::kPlain; break;
    case 1: c.mode = RunMode::kMidCancel; break;
    default: c.mode = RunMode::kGuarded; break;
  }
  c.watchdog_min_ms =
      rng.below(2) == 0 ? 50.0 : (smoke ? 400.0 : 2000.0);  // aggressive/normal
  c.cancel_after_ms = 1.0 + 20.0 * rng.unit();
  return c;
}

struct Tally {
  uint64_t ok = 0;             // returned and validated
  uint64_t clean_error = 0;    // threw adds::Error (accepted for raw modes)
  uint64_t cancelled = 0;      // mid-cancel runs observed the cancel
  uint64_t fault_fires = 0;
  uint64_t spilled_items = 0;
  uint64_t governed_spill_runs = 0;
  uint64_t violations = 0;     // wrong result / unexpected failure shape
};

const char* mode_name(RunMode m) {
  switch (m) {
    case RunMode::kPlain: return "plain";
    case RunMode::kMidCancel: return "mid-cancel";
    case RunMode::kGuarded: return "guarded";
  }
  return "?";
}

/// Runs one drawn configuration. Returns a violation description, or "".
std::string run_one(const SoakConfig& c, Tally& t) {
  const auto g = generate_graph<uint32_t>(c.graph);
  const VertexId src = pick_source(g);
  const auto oracle = dijkstra(g, src);

  fault::FaultPlan plan(c.run_seed);
  if (c.inject) plan.set(c.site, c.spec);
  fault::FaultScope scope(plan);

  const auto check = [&](const SsspResult<uint32_t>& res) -> std::string {
    if (!validate_distances(res, oracle).ok())
      return "result diverged from Dijkstra oracle";
    ++t.ok;
    t.spilled_items += res.health.spilled_items;
    if (res.health.spilled_items > 0) ++t.governed_spill_runs;
    return "";
  };

  std::string violation;
  switch (c.mode) {
    case RunMode::kPlain:
    case RunMode::kMidCancel: {
      // Raw adds_host has no watchdog, and several sites (dropped
      // publication, a starved tiny pool with the governor off) wedge the
      // termination protocol by design. A deadline canceller bounds every
      // raw run; mid-cancel mode additionally fires an early cancel to
      // exercise prompt teardown from deep-parked states.
      std::atomic<bool> cancel{false};
      std::atomic<bool> finished{false};
      Event cancel_event;
      AddsHostOptions opts = c.host;
      opts.cancel = &cancel;
      opts.cancel_event = &cancel_event;
      const double deadline_ms =
          c.mode == RunMode::kMidCancel ? c.cancel_after_ms : 2000.0;
      std::thread canceller([&] {
        const auto step = std::chrono::milliseconds(1);
        auto waited = std::chrono::duration<double, std::milli>(0);
        while (!finished.load(std::memory_order_acquire) &&
               waited.count() < deadline_ms) {
          std::this_thread::sleep_for(step);
          waited += step;
        }
        cancel.store(true, std::memory_order_release);
        cancel_event.notify_all();
      });
      try {
        // A fast run may legitimately finish before the cancel lands.
        violation = check(adds_host(g, src, opts));
      } catch (const Error&) {
        if (c.mode == RunMode::kMidCancel)
          ++t.cancelled;
        else
          ++t.clean_error;  // fail-fast/wedge/deadline: clean throw only
      }
      finished.store(true, std::memory_order_release);
      canceller.join();
      break;
    }
    case RunMode::kGuarded: {
      EngineConfig cfg;
      cfg.adds_host = c.host;
      ResiliencePolicy policy;
      policy.watchdog_min_ms = c.watchdog_min_ms;
      policy.retry_backoff_ms = 1.0;
      policy.max_attempts_per_engine = 2;
      try {
        violation = check(run_solver_guarded(SolverKind::kAddsHost, g, src,
                                             cfg, policy));
      } catch (const Error& e) {
        // The fallback chain ends in fault-free engines: a guarded run
        // must always produce a result.
        violation = std::string("guarded run threw: ") + e.what();
      }
      break;
    }
  }
  t.fault_fires += plan.total_fires();
  return violation;
}

// ---------------------------------------------------------------------------
// Service-level chaos: supervision under fire
// ---------------------------------------------------------------------------

void dump_flight(const SsspService<uint32_t>& svc) {
  const auto events = svc.flight_dump();
  std::fprintf(stderr, "flight recorder (%zu events):\n", events.size());
  for (const auto& e : events)
    std::fprintf(stderr, "  %s\n", format_flight_event(e).c_str());
}

template <typename Pred>
bool poll_until(Pred&& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

bool flight_has(const std::vector<StampedFlightEvent>& events, FlightKind k) {
  for (const auto& e : events)
    if (e.ev.kind == uint16_t(k)) return true;
  return false;
}

struct SupervisionTotals {
  uint64_t kills = 0;
  uint64_t quarantines = 0;
  uint64_t rebuilds = 0;
};

/// One round: arm faults, burst queries at a 3-engine service, require the
/// supervisor to kill/quarantine/rebuild the wedged engines while the pool
/// keeps answering; then disarm and require full recovery plus clean
/// serves. Returns the number of contract violations (and dumps the flight
/// recorder on the first one).
uint64_t service_chaos_round(uint64_t round, uint64_t seed, bool smoke,
                             bool verbose, Tally& t,
                             SupervisionTotals& totals) {
  const uint64_t side = smoke ? 28 : 36;
  GraphSpec spec;
  spec.name = "grid_" + std::to_string(side);
  spec.family = GraphFamily::kGridRoad;
  spec.scale = side;
  spec.a = double(side);
  spec.weights = {WeightDist::kUniform, 1000, 1};
  spec.seed = seed;
  const auto g = generate_graph<uint32_t>(spec);

  constexpr VertexId kSources = 6;
  std::vector<SsspResult<uint32_t>> oracles;
  for (VertexId s = 0; s < kSources; ++s) oracles.push_back(dijkstra(g, s));

  ServiceConfig cfg;
  cfg.num_engines = 3;
  cfg.max_queue_depth = 128;
  cfg.cache_entries = 0;      // every query must touch an engine
  cfg.guarded_fallback = false;  // the supervisor IS the recovery story
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.supervisor.tick_ms = 1.0;
  cfg.supervisor.wedge_ms = 120.0;
  cfg.supervisor.quarantine_after_errors = 1;
  cfg.supervisor.probe_deadline_ms = 500.0;
  cfg.supervisor.max_probe_failures = 100;  // recovery, not retirement
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  uint64_t violations = 0;
  const auto violation = [&](const std::string& what) {
    ++violations;
    std::fprintf(stderr, "VIOLATION service-chaos round=%llu seed=0x%llx: %s\n",
                 (unsigned long long)round, (unsigned long long)seed,
                 what.c_str());
    if (violations == 1) dump_flight(svc);
  };

  // Phase A — chaos burst. A limited budget of dropped publications wedges
  // k of the 3 engines mid-solve; stalls add scheduling noise. Every
  // future must resolve (hang = violation); every kOk must match Dijkstra.
  uint64_t ok_during = 0, failed_during = 0;
  {
    fault::FaultPlan plan(seed);
    plan.set(fault::Site::kPushDropBeforePublish, {1.0, /*max_fires=*/2, 0});
    plan.set(fault::Site::kWorkerStall, {0.05, ~0ull, 1000});
    fault::FaultScope scope(plan);

    const int burst = smoke ? 24 : 48;
    QueryOptions q;
    std::vector<std::future<QueryOutcome<uint32_t>>> futs;
    for (int i = 0; i < burst; ++i)
      futs.push_back(svc.submit(VertexId(i % kSources), q));
    for (int i = 0; i < burst; ++i) {
      if (futs[size_t(i)].wait_for(std::chrono::seconds(60)) !=
          std::future_status::ready) {
        violation("query hung under faults (future never resolved)");
        return violations;  // cannot safely continue this round
      }
      const auto out = futs[size_t(i)].get();
      if (out.status == QueryStatus::kOk) {
        ++ok_during;
        if (!validate_distances(*out.result,
                                oracles[size_t(i) % kSources]).ok())
          violation("chaos-phase result diverged from Dijkstra oracle");
      } else {
        ++failed_during;  // typed failure under injected faults: accepted
      }
    }
    t.fault_fires += plan.total_fires();
  }
  if (ok_during == 0)
    violation("pool stopped answering during the chaos burst");

  // Phase B — recovery. With faults disarmed the rebuilder must return
  // every quarantined slot to service: full availability, nothing retired.
  if (!poll_until(
          [&] {
            const auto rep = svc.report();
            return rep.engines_available == cfg.num_engines;
          },
          20000))
    violation("engines never returned to full availability after disarm");

  // Phase C — clean serves. Every source must now produce a validated
  // fresh result.
  for (VertexId s = 0; s < kSources; ++s) {
    const auto out = svc.submit(s).get();
    if (out.status != QueryStatus::kOk) {
      violation("post-recovery query failed: " + out.error);
      continue;
    }
    if (!validate_distances(*out.result, oracles[s]).ok())
      violation("post-recovery result diverged from Dijkstra oracle");
    ++t.ok;
  }

  const auto rep = svc.report();
  totals.kills += rep.supervisor_kills;
  totals.quarantines += rep.quarantines;
  totals.rebuilds += rep.rebuilds;
  if (verbose)
    std::fprintf(stderr,
                 "round=%llu kills=%llu quarantines=%llu rebuilds=%llu "
                 "ok_during=%llu failed_during=%llu flight_events=%llu\n",
                 (unsigned long long)round,
                 (unsigned long long)rep.supervisor_kills,
                 (unsigned long long)rep.quarantines,
                 (unsigned long long)rep.rebuilds,
                 (unsigned long long)ok_during,
                 (unsigned long long)failed_during,
                 (unsigned long long)rep.flight_events);

  // The episode must be reconstructible from the flight recorder.
  const auto events = svc.flight_dump();
  if (rep.quarantines > 0 &&
      (!flight_has(events, FlightKind::kEngineQuarantined) ||
       !flight_has(events, FlightKind::kEngineRecovered)))
    violation("flight recorder is missing the quarantine/recovery events");
  return violations;
}

// ---------------------------------------------------------------------------
// Tenant-level chaos: blast-radius containment under fire
// ---------------------------------------------------------------------------

/// One round: three tenants on one pool, domain-scoped faults wedge exactly
/// one of them. Contract: every future resolves; the two SURVIVOR tenants
/// take zero typed damage (no shed, no quarantine, no brownout transition,
/// breaker closed) and every survivor result matches its own graph's
/// Dijkstra oracle; after disarm the victim recovers through its breaker's
/// half-open trial and all three tenants serve clean.
uint64_t tenant_chaos_round(uint64_t round, uint64_t seed, bool smoke,
                            bool verbose, Tally& t,
                            SupervisionTotals& totals) {
  constexpr int kTenants = 3;
  constexpr VertexId kSources = 4;
  const uint64_t side = smoke ? 24 : 32;

  std::vector<std::shared_ptr<const IntGraph>> graphs;
  std::vector<uint64_t> fps;
  std::vector<std::vector<SsspResult<uint32_t>>> oracles(kTenants);
  for (int k = 0; k < kTenants; ++k) {
    GraphSpec spec;
    spec.name = "grid_t" + std::to_string(k);
    spec.family = GraphFamily::kGridRoad;
    spec.scale = side;
    spec.a = double(side);
    spec.weights = {WeightDist::kUniform, 1000, 1};
    spec.seed = seed + uint64_t(k);
    graphs.push_back(std::make_shared<const IntGraph>(
        generate_graph<uint32_t>(spec)));
    fps.push_back(graph_fingerprint(*graphs.back()));
    for (VertexId s = 0; s < kSources; ++s)
      oracles[size_t(k)].push_back(dijkstra(*graphs.back(), s));
  }

  ServiceConfig cfg;
  cfg.num_engines = 3;
  cfg.max_queue_depth = 128;
  cfg.cache_entries = 0;         // every query must touch an engine
  cfg.guarded_fallback = false;  // containment IS the recovery story
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.supervisor.tick_ms = 1.0;
  cfg.supervisor.wedge_ms = 120.0;
  cfg.supervisor.quarantine_after_errors = 1;
  cfg.supervisor.probe_deadline_ms = 500.0;
  cfg.supervisor.max_probe_failures = 100;  // recovery, not retirement
  cfg.tenant.engine_share = 0.34;  // each tenant: at most 1 of the 3 slots
  cfg.tenant.breaker_open_after = 3;
  cfg.tenant.breaker_cooldown_ms = 150.0;
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(graphs[0]);
  for (int k = 1; k < kTenants; ++k) svc.publish_graph(graphs[size_t(k)]);

  const size_t victim = size_t(round) % kTenants;

  uint64_t violations = 0;
  const auto violation = [&](const std::string& what) {
    ++violations;
    std::fprintf(stderr, "VIOLATION tenant-chaos round=%llu seed=0x%llx: %s\n",
                 (unsigned long long)round, (unsigned long long)seed,
                 what.c_str());
    if (violations == 1) dump_flight(svc);
  };

  // Phase A — scoped chaos burst. The plan only fires inside the victim's
  // fault domain: its queries wedge and stall, the survivors' solves (and
  // the rebuilder's probes, which run in domain 0) never see it.
  uint64_t victim_failures = 0, survivor_ok = 0;
  {
    fault::FaultPlan plan(seed);
    plan.set(fault::Site::kPushDropBeforePublish, {1.0, /*max_fires=*/3, 0});
    plan.set(fault::Site::kWorkerStall, {0.05, ~0ull, 500});
    plan.restrict_domain(fps[victim]);
    fault::FaultScope scope(plan);

    const int burst = (smoke ? 8 : 16) * kTenants;
    std::vector<std::future<QueryOutcome<uint32_t>>> futs;
    std::vector<size_t> owner;
    for (int i = 0; i < burst; ++i) {
      const size_t k = size_t(i) % kTenants;
      QueryOptions q;
      q.graph_fp = fps[k];
      futs.push_back(svc.submit(VertexId(i / kTenants) % kSources, q));
      owner.push_back(k);
    }
    for (int i = 0; i < burst; ++i) {
      if (futs[size_t(i)].wait_for(std::chrono::seconds(60)) !=
          std::future_status::ready) {
        violation("query hung under tenant-scoped faults");
        return violations;  // cannot safely continue this round
      }
      const auto out = futs[size_t(i)].get();
      const size_t k = owner[size_t(i)];
      if (k == victim) {
        // The victim may fail, quarantine or succeed — all typed, all
        // accepted; the blast just must not leave its bulkhead.
        if (out.status == QueryStatus::kOk) {
          if (!validate_distances(*out.result,
                                  oracles[k][size_t(i / kTenants) % kSources])
                   .ok())
            violation("victim kOk result diverged from its oracle");
        } else {
          ++victim_failures;
        }
        continue;
      }
      if (out.status != QueryStatus::kOk) {
        violation("survivor tenant took typed damage: " +
                  std::string(query_status_name(out.status)) +
                  (out.error.empty() ? "" : ": " + out.error));
        continue;
      }
      if (!validate_distances(*out.result,
                              oracles[k][size_t(i / kTenants) % kSources])
               .ok())
        violation("survivor result diverged from its own graph's oracle");
      ++survivor_ok;
    }
    t.fault_fires += plan.total_fires();
  }
  if (survivor_ok == 0)
    violation("survivor tenants stopped answering during the blast");
  if (victim_failures == 0)
    violation("chaos never bit the victim (round proves nothing)");

  // Phase B — recovery. Slots return; the victim's breaker half-opens
  // after its cooldown and the trial query closes it.
  if (!poll_until(
          [&] { return svc.report().engines_available == cfg.num_engines; },
          20000))
    violation("engines never returned to full availability after disarm");
  {
    QueryOptions q;
    q.graph_fp = fps[victim];
    bool recovered = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto out = svc.submit(0, q).get();
      if (out.status == QueryStatus::kOk) {
        if (!validate_distances(*out.result, oracles[victim][0]).ok())
          violation("victim post-recovery result diverged from its oracle");
        recovered = true;
        break;
      }
      // kTenantQuarantined while the cooldown runs is the breaker working.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!recovered) violation("victim tenant never recovered after disarm");
  }

  // Phase C — the containment ledger. Survivor rows must be pristine.
  const auto rep = svc.report();
  for (size_t k = 0; k < size_t(kTenants); ++k) {
    const TenantStatus* row = nullptr;
    for (const auto& ts : rep.tenants)
      if (ts.graph_fp == fps[k]) row = &ts;
    if (row == nullptr) {
      violation("tenant row missing from the report");
      continue;
    }
    if (k == victim) continue;
    if (row->health != ServiceHealth::kHealthy)
      violation("survivor ended degraded (cross-tenant brownout)");
    if (row->health_transitions != 0)
      violation("survivor's governor transitioned during the blast");
    if (row->breaker != BreakerState::kClosed || row->breaker_opens != 0)
      violation("survivor's circuit breaker was disturbed");
    if (row->shed != 0 || row->quarantined != 0 || row->failed != 0)
      violation("survivor counted typed damage (shed/quarantine/failure)");
  }

  totals.kills += rep.supervisor_kills;
  totals.quarantines += rep.quarantines;
  totals.rebuilds += rep.rebuilds;
  if (verbose)
    std::fprintf(stderr,
                 "round=%llu victim=%zu victim_failures=%llu survivor_ok=%llu "
                 "kills=%llu quarantines=%llu rebinds=%llu\n",
                 (unsigned long long)round, victim,
                 (unsigned long long)victim_failures,
                 (unsigned long long)survivor_ok,
                 (unsigned long long)rep.supervisor_kills,
                 (unsigned long long)rep.quarantines,
                 (unsigned long long)rep.engine_rebinds);
  t.ok += survivor_ok;
  return violations;
}

int run_tenant_chaos(uint64_t master_seed, uint64_t rounds, bool smoke,
                     bool verbose) {
  SoakRng rng{master_seed};
  Tally tally;
  SupervisionTotals totals;
  for (uint64_t r = 0; r < rounds; ++r)
    tally.violations +=
        tenant_chaos_round(r, rng.next(), smoke, verbose, tally, totals);

  // Containment only counts if the blast actually poisoned slots.
  if (totals.quarantines == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION tenant-chaos: the victim never poisoned an "
                 "engine (quarantines=0)\n");
  }

  TextTable table("Tenant chaos (" + std::to_string(rounds) +
                  " rounds, seed " + std::to_string(master_seed) + ")");
  table.set_header({"outcome", "count"});
  table.add_row({"validated survivor serves", std::to_string(tally.ok)});
  table.add_row({"contract violations", std::to_string(tally.violations)});
  table.add_row({"fault fires", std::to_string(tally.fault_fires)});
  table.add_row({"supervisor kills", std::to_string(totals.kills)});
  table.add_row({"quarantines", std::to_string(totals.quarantines)});
  table.add_row({"rebuilds", std::to_string(totals.rebuilds)});
  table.add_footer(
      "domain-scoped faults wedge 1 of 3 tenants; the other two must take "
      "zero typed damage and every survivor result validates");
  table.print();
  return tally.violations == 0 ? 0 : 1;
}

int run_service_chaos(uint64_t master_seed, uint64_t rounds, bool smoke,
                      bool verbose) {
  SoakRng rng{master_seed};
  Tally tally;
  SupervisionTotals totals;
  for (uint64_t r = 0; r < rounds; ++r)
    tally.violations +=
        service_chaos_round(r, rng.next(), smoke, verbose, tally, totals);

  // The suite's reason to exist: supervision must actually have engaged.
  // A plan that never wedged an engine proves nothing about recovery.
  if (totals.quarantines == 0 || totals.rebuilds == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION service-chaos: supervision never engaged "
                 "(quarantines=%llu rebuilds=%llu)\n",
                 (unsigned long long)totals.quarantines,
                 (unsigned long long)totals.rebuilds);
  }

  TextTable table("Service chaos (" + std::to_string(rounds) +
                  " rounds, seed " + std::to_string(master_seed) + ")");
  table.set_header({"outcome", "count"});
  table.add_row({"validated post-recovery serves", std::to_string(tally.ok)});
  table.add_row({"contract violations", std::to_string(tally.violations)});
  table.add_row({"fault fires", std::to_string(tally.fault_fires)});
  table.add_row({"supervisor kills", std::to_string(totals.kills)});
  table.add_row({"quarantines", std::to_string(totals.quarantines)});
  table.add_row({"rebuilds", std::to_string(totals.rebuilds)});
  table.add_footer(
      "faults wedge k of 3 pooled engines mid-solve; the supervisor must "
      "quarantine + rebuild while the pool keeps answering");
  table.print();
  return tally.violations == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Delta chaos: live graph rewrites under fire
// ---------------------------------------------------------------------------

struct DeltaTotals {
  uint64_t deltas = 0;
  uint64_t repair_fires = 0;
  uint64_t repairs_ok = 0;
  uint64_t repair_fallbacks = 0;
  uint64_t stale_hits = 0;
};

/// One round: concurrent queries x repeated deltas x injected repair
/// faults. The service's default graph is rewritten out from under a
/// query burst again and again while repair.delta makes half the warm
/// repairs fail. Contract: every future resolves (hang = violation);
/// every kOk survivor is Dijkstra-validated against the EXACT graph
/// generation its outcome claims (stale answers against the ancestor
/// they name, fresh answers against the then-current child); after the
/// storm the fleet converges to the final generation and serves it
/// clean. Returns the number of contract violations.
uint64_t delta_chaos_round(uint64_t round, uint64_t seed, bool smoke,
                           bool verbose, Tally& t, DeltaTotals& totals) {
  const uint64_t side = smoke ? 20 : 28;
  GraphSpec spec;
  spec.name = "grid_" + std::to_string(side);
  spec.family = GraphFamily::kGridRoad;
  spec.scale = side;
  spec.a = double(side);
  spec.weights = {WeightDist::kUniform, 1000, 1};
  spec.seed = seed;
  const auto g = generate_graph<uint32_t>(spec);
  constexpr VertexId kSources = 4;

  ServiceConfig cfg;
  cfg.num_engines = 2;
  cfg.max_queue_depth = 256;
  cfg.guarded_fallback = false;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.delta.stale_serve_ms = 5000.0;       // window open for the whole burst
  cfg.delta.repair_deadline_ms = 30000.0;  // injected stalls must not expire it
  SsspService<uint32_t> svc(cfg);
  const uint64_t root_fp = svc.set_graph(g);

  // Every generation this round ever publishes, keyed by fingerprint, so
  // a survivor can be validated on the graph version it claims — plus a
  // memoized Dijkstra oracle per (generation, source).
  std::unordered_map<uint64_t, IntGraph> versions;
  versions.emplace(root_fp, g);
  IntGraph cur = g;
  std::map<std::pair<uint64_t, VertexId>, SsspResult<uint32_t>> oracle_memo;
  const auto oracle_for =
      [&](uint64_t fp, VertexId s) -> const SsspResult<uint32_t>* {
    const auto key = std::make_pair(fp, s);
    auto it = oracle_memo.find(key);
    if (it == oracle_memo.end()) {
      const auto gv = versions.find(fp);
      if (gv == versions.end()) return nullptr;
      it = oracle_memo.emplace(key, dijkstra(gv->second, s)).first;
    }
    return &it->second;
  };

  uint64_t violations = 0;
  const auto violation = [&](const std::string& what) {
    ++violations;
    std::fprintf(stderr, "VIOLATION delta-chaos round=%llu seed=0x%llx: %s\n",
                 (unsigned long long)round, (unsigned long long)seed,
                 what.c_str());
    if (violations == 1) dump_flight(svc);
  };

  // Warm the root generation's cache so the first delta has trees to repair.
  for (VertexId s = 0; s < kSources; ++s) svc.query(s);

  uint64_t stale_served = 0, fresh_served = 0, typed_failures = 0;
  {
    fault::FaultPlan plan(seed);
    plan.set(fault::Site::kDeltaRepair, {0.5, ~0ull, 0});
    plan.set(fault::Site::kManagerScanStall, {0.2, ~0ull, 2000});
    fault::FaultScope scope(plan);

    SoakRng rng{seed ^ 0xde17ac4a05ull};
    const int deltas = smoke ? 4 : 8;
    std::vector<std::future<QueryOutcome<uint32_t>>> futs;
    std::vector<VertexId> srcs;
    const auto burst = [&] {
      for (VertexId s = 0; s < kSources; ++s) {
        futs.push_back(svc.submit(s));
        srcs.push_back(s);
      }
    };
    for (int dno = 0; dno < deltas; ++dno) {
      burst();  // queries in flight while the graph is rewritten under them
      const auto delta = oracle::make_test_delta(
          cur, 5 + rng.below(6), 1 + rng.below(3),
          seed * 1000 + uint64_t(dno));
      const auto out = svc.apply_delta(0, delta);
      cur = apply_delta(cur, delta).graph;
      if (graph_fingerprint(cur) != out.child_fp) {
        violation("service child fingerprint diverged from reference apply");
        return violations;  // the version map is useless from here on
      }
      versions.emplace(out.child_fp, cur);
      ++totals.deltas;
      burst();  // these race the repair window: stale serves are legal
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Zero hangs; every survivor validated on the generation it claims.
    for (size_t i = 0; i < futs.size(); ++i) {
      if (futs[i].wait_for(std::chrono::seconds(60)) !=
          std::future_status::ready) {
        violation("query hung during delta chaos (future never resolved)");
        return violations;  // cannot safely continue this round
      }
      const auto out = futs[i].get();
      if (out.status != QueryStatus::kOk) {
        ++typed_failures;  // typed shed/degradation under chaos: accepted
        continue;
      }
      const auto* ora = oracle_for(out.graph_fp, srcs[i]);
      if (ora == nullptr) {
        violation("survivor claims a graph generation that never existed");
        continue;
      }
      if (!validate_distances(*out.result, *ora).ok())
        violation(out.stale
                      ? "stale answer diverged from the ancestor it claims"
                      : "fresh answer diverged from the child it claims");
      if (out.stale)
        ++stale_served;
      else
        ++fresh_served;
      ++t.ok;
    }

    // Every repair settles while the plan is still armed (it must outlive
    // all threads inside solver code).
    if (!poll_until([&] { return svc.report().repairs_pending == 0; }, 30000)) {
      violation("repairs never settled after the delta storm");
      return violations;
    }
    t.fault_fires += plan.total_fires();
    totals.repair_fires += plan.fires(fault::Site::kDeltaRepair);
  }
  if (fresh_served == 0)
    violation("no fresh answer survived the storm (service stopped serving)");

  // Convergence: every superseded generation retires; only the final
  // child remains resident, and it serves clean validated answers.
  const uint64_t final_fp = graph_fingerprint(cur);
  if (!poll_until([&] { return svc.resident_graphs().size() == 1; }, 20000)) {
    violation("superseded graph generations never retired");
  } else {
    const auto residents = svc.resident_graphs();
    if (residents[0] != final_fp)
      violation("service converged to the wrong generation");
  }
  for (VertexId s = 0; s < kSources; ++s) {
    const auto q = svc.query(s);
    if (q.graph_fp != final_fp || q.stale) {
      violation("post-storm serve is not fresh on the final child");
      continue;
    }
    const auto* ora = oracle_for(final_fp, s);
    if (ora == nullptr || !validate_distances(*q.result, *ora).ok())
      violation("post-storm result diverged from the final child's oracle");
    ++t.ok;
  }

  const auto rep = svc.report();
  totals.repairs_ok += rep.repairs_ok;
  totals.repair_fallbacks += rep.repair_fallbacks;
  totals.stale_hits += rep.delta_stale_hits;

  // The episode must be reconstructible from the flight recorder.
  const auto events = svc.flight_dump();
  if (!flight_has(events, FlightKind::kDeltaPublished))
    violation("flight recorder is missing the delta-published events");
  if (rep.repair_fallbacks > 0 &&
      !flight_has(events, FlightKind::kRepairFallback))
    violation("flight recorder is missing the repair-fallback events");

  if (verbose)
    std::fprintf(stderr,
                 "round=%llu deltas=%llu repairs_ok=%llu fallbacks=%llu "
                 "stale=%llu fresh=%llu typed_failures=%llu stale_hits=%llu\n",
                 (unsigned long long)round, (unsigned long long)totals.deltas,
                 (unsigned long long)rep.repairs_ok,
                 (unsigned long long)rep.repair_fallbacks,
                 (unsigned long long)stale_served,
                 (unsigned long long)fresh_served,
                 (unsigned long long)typed_failures,
                 (unsigned long long)rep.delta_stale_hits);
  return violations;
}

int run_delta_chaos(uint64_t master_seed, uint64_t rounds, bool smoke,
                    bool verbose) {
  SoakRng rng{master_seed};
  Tally tally;
  DeltaTotals totals;
  for (uint64_t r = 0; r < rounds; ++r)
    tally.violations +=
        delta_chaos_round(r, rng.next(), smoke, verbose, tally, totals);

  // The suite's reason to exist: both repair outcomes must actually have
  // been exercised. A storm where the fault site never fired (or where no
  // repair ever survived) proves nothing about the pipeline.
  if (totals.repair_fires == 0 || totals.repair_fallbacks == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION delta-chaos: injected repair faults never bit "
                 "(fires=%llu fallbacks=%llu)\n",
                 (unsigned long long)totals.repair_fires,
                 (unsigned long long)totals.repair_fallbacks);
  }
  if (totals.repairs_ok == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION delta-chaos: no warm repair ever succeeded "
                 "(the repair path itself went unexercised)\n");
  }

  TextTable table("Delta chaos (" + std::to_string(rounds) +
                  " rounds, seed " + std::to_string(master_seed) + ")");
  table.set_header({"outcome", "count"});
  table.add_row({"validated serves", std::to_string(tally.ok)});
  table.add_row({"contract violations", std::to_string(tally.violations)});
  table.add_row({"deltas applied", std::to_string(totals.deltas)});
  table.add_row({"repairs ok", std::to_string(totals.repairs_ok)});
  table.add_row({"repair fallbacks", std::to_string(totals.repair_fallbacks)});
  table.add_row({"stale window hits", std::to_string(totals.stale_hits)});
  table.add_row({"fault fires", std::to_string(tally.fault_fires)});
  table.add_footer(
      "concurrent queries x repeated deltas x injected repair faults; "
      "every survivor validated on the graph generation it claims");
  table.print();
  return tally.violations == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Landmark chaos: oracle tables under build faults and delta churn
// ---------------------------------------------------------------------------

struct LandmarkTotals {
  uint64_t build_fires = 0;
  uint64_t builds_ok = 0;
  uint64_t repairs_ok = 0;
  uint64_t rebuild_fallbacks = 0;
  uint64_t build_failures = 0;
  uint64_t oracle_exact = 0;
  uint64_t alt_searches = 0;
  uint64_t engine_fallbacks = 0;
};

/// One round: p2p query bursts x symmetric delta churn x injected
/// landmark.build faults (which bite both cold table builds and warm
/// per-lane repairs). Contract: every future resolves; every kOk p2p
/// answer is bit-equal to the Dijkstra distance of the EXACT graph
/// generation its outcome claims, whatever the serve path — a failed
/// build may only ever downgrade serves to the engine path, never bend a
/// distance. After the storm a fault-free delta must bring the table
/// back to READY and the final generation must serve p2p clean off the
/// oracle. Returns the number of contract violations.
uint64_t landmark_chaos_round(uint64_t round, uint64_t seed, bool smoke,
                              bool verbose, Tally& t,
                              LandmarkTotals& totals) {
  const uint64_t side = smoke ? 16 : 24;
  GraphSpec spec;
  spec.name = "grid_" + std::to_string(side);
  spec.family = GraphFamily::kGridRoad;
  spec.scale = side;
  spec.a = double(side);
  spec.weights = {WeightDist::kUniform, 1000, 1};
  spec.seed = seed;
  const auto g = generate_graph<uint32_t>(spec);
  const VertexId n_v = g.num_vertices();

  ServiceConfig cfg;
  cfg.num_engines = 2;
  cfg.max_queue_depth = 256;
  cfg.guarded_fallback = false;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.delta.stale_serve_ms = 5000.0;
  cfg.delta.repair_deadline_ms = 30000.0;
  cfg.landmark.num_landmarks = 4;
  SsspService<uint32_t> svc(cfg);
  const uint64_t root_fp = svc.set_graph(g);

  // Every generation this round publishes, keyed by fingerprint, plus a
  // memoized Dijkstra tree per (generation, source) — a p2p survivor is
  // validated on the exact graph version its outcome claims.
  std::unordered_map<uint64_t, IntGraph> versions;
  versions.emplace(root_fp, g);
  IntGraph cur = g;
  std::map<std::pair<uint64_t, VertexId>, SsspResult<uint32_t>> oracle_memo;
  const auto oracle_for =
      [&](uint64_t fp, VertexId s) -> const SsspResult<uint32_t>* {
    const auto key = std::make_pair(fp, s);
    auto it = oracle_memo.find(key);
    if (it == oracle_memo.end()) {
      const auto gv = versions.find(fp);
      if (gv == versions.end()) return nullptr;
      it = oracle_memo.emplace(key, dijkstra(gv->second, s)).first;
    }
    return &it->second;
  };

  uint64_t violations = 0;
  const auto violation = [&](const std::string& what) {
    ++violations;
    std::fprintf(stderr,
                 "VIOLATION landmark-chaos round=%llu seed=0x%llx: %s\n",
                 (unsigned long long)round, (unsigned long long)seed,
                 what.c_str());
    if (violations == 1) dump_flight(svc);
  };

  const auto oracle_status = [&] {
    for (const auto& ts : svc.report().tenants)
      if (ts.graph_fp == svc.resident_graphs().front())
        return ts.oracle_status;
    return LandmarkTableStatus::kNone;
  };
  const auto table_settled = [&] {
    const auto rep = svc.report();
    if (rep.landmark_builds_pending > 0) return false;
    for (const auto& ts : rep.tenants)
      if (ts.oracle_status == LandmarkTableStatus::kBuilding ||
          ts.oracle_status == LandmarkTableStatus::kRepairing)
        return false;
    return true;
  };

  // Deterministic (src, dst) pairs; validation accepts any serve path.
  SoakRng rng{seed ^ 0x1a4dba6cull};
  const auto p2p_pair = [&] {
    const VertexId s = VertexId(rng.below(n_v));
    VertexId d = VertexId(rng.below(n_v));
    if (d == s) d = VertexId((d + 1) % n_v);
    return std::make_pair(s, d);
  };

  uint64_t exact_served = 0, alt_served = 0, engine_served = 0,
           typed_failures = 0;
  {
    // landmark.build bites BOTH cold builds and warm per-lane repairs at
    // 0.5, so across rounds the matrix covers: build fails typed, repair
    // falls back to a cold rebuild, rebuild fails typed, and everything
    // succeeding anyway. The root's initial build races this plan too.
    fault::FaultPlan plan(seed);
    plan.set(fault::Site::kLandmarkBuild, {0.5, ~0ull, 0});
    fault::FaultScope scope(plan);

    std::vector<std::future<QueryOutcome<uint32_t>>> futs;
    std::vector<std::pair<VertexId, VertexId>> asked;
    const auto burst = [&] {
      const int k = smoke ? 8 : 16;
      for (int i = 0; i < k; ++i) {
        const auto [s, d] = p2p_pair();
        QueryOptions q;
        q.target = d;
        futs.push_back(svc.submit(s, q));
        asked.emplace_back(s, d);
      }
    };
    const int deltas = smoke ? 3 : 6;
    for (int dno = 0; dno < deltas; ++dno) {
      burst();  // p2p in flight while the graph is rewritten under them
      auto delta = oracle::make_test_delta(cur, 4 + rng.below(4), 1,
                                           seed * 1000 + uint64_t(dno));
      {  // mirror every change: the oracle's symmetry precondition holds
        const size_t base = delta.changes.size();
        for (size_t ci = 0; ci < base; ++ci) {
          const auto c = delta.changes[ci];
          if (c.src != c.dst)
            delta.changes.push_back({c.dst, c.src, c.weight});
        }
      }
      const auto out = svc.apply_delta(0, delta);
      cur = apply_delta(cur, delta).graph;
      if (graph_fingerprint(cur) != out.child_fp) {
        violation("service child fingerprint diverged from reference apply");
        return violations;
      }
      versions.emplace(out.child_fp, cur);
      burst();  // these race the table repair window
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Zero hangs; every kOk p2p answer bit-equal on the generation it
    // claims, whatever path served it.
    for (size_t i = 0; i < futs.size(); ++i) {
      if (futs[i].wait_for(std::chrono::seconds(60)) !=
          std::future_status::ready) {
        violation("p2p query hung during landmark chaos");
        return violations;
      }
      const auto out = futs[i].get();
      if (out.status != QueryStatus::kOk) {
        ++typed_failures;  // typed shed/degradation under churn: accepted
        continue;
      }
      const auto [s, d] = asked[i];
      const auto* ora = oracle_for(out.graph_fp, s);
      if (ora == nullptr) {
        violation("p2p survivor claims a generation that never existed");
        continue;
      }
      const DistT<uint32_t> want = ora->dist[d];
      const bool want_reach = want != DistTraits<uint32_t>::infinity();
      if (out.p2p_reachable != want_reach ||
          (want_reach && out.p2p_distance != want)) {
        violation(std::string("p2p answer diverged from Dijkstra on its "
                              "claimed generation (serve=") +
                  p2p_serve_name(out.p2p_serve) + ")");
        continue;
      }
      switch (out.p2p_serve) {
        case P2pServe::kOracleExact: ++exact_served; break;
        case P2pServe::kAltSearch: ++alt_served; break;
        default: ++engine_served; break;
      }
      ++t.ok;
    }

    // Repairs and table builds settle while the plan is still armed (it
    // must outlive every thread inside build/repair code).
    if (!poll_until([&] { return svc.report().repairs_pending == 0; },
                    30000)) {
      violation("tree repairs never settled after the storm");
      return violations;
    }
    if (!poll_until(table_settled, 30000)) {
      violation("landmark builds never settled after the storm");
      return violations;
    }
    t.fault_fires += plan.total_fires();
    totals.build_fires += plan.fires(fault::Site::kLandmarkBuild);
  }
  if (exact_served + alt_served + engine_served == 0)
    violation("no p2p answer survived the storm (service stopped serving)");

  // Recovery: one fault-free symmetric delta must bring the final child's
  // table to READY — warm-repaired from a surviving parent table or cold
  // rebuilt from a failed one, both without an engine in the serve path
  // afterwards.
  {
    auto delta = oracle::make_test_delta(cur, 4, 1, seed * 7919);
    const size_t base = delta.changes.size();
    for (size_t ci = 0; ci < base; ++ci) {
      const auto c = delta.changes[ci];
      if (c.src != c.dst) delta.changes.push_back({c.dst, c.src, c.weight});
    }
    svc.apply_delta(0, delta);
    cur = apply_delta(cur, delta).graph;
    versions.emplace(graph_fingerprint(cur), cur);
  }
  if (!poll_until([&] { return svc.resident_graphs().size() == 1; }, 20000))
    violation("superseded generations never retired after the storm");
  if (!poll_until(
          [&] { return oracle_status() == LandmarkTableStatus::kReady; },
          20000)) {
    violation("table never reached READY after a fault-free delta");
  } else {
    const uint64_t final_fp = graph_fingerprint(cur);
    for (int i = 0; i < (smoke ? 6 : 12); ++i) {
      const auto [s, d] = p2p_pair();
      QueryOptions q;
      q.target = d;
      const auto out = svc.query(s, q);
      if (out.graph_fp != final_fp || out.stale) {
        violation("post-storm p2p serve is not fresh on the final child");
        continue;
      }
      if (out.p2p_serve == P2pServe::kEngineFallback) {
        violation("post-storm p2p rode an engine despite a READY table");
        continue;
      }
      const auto* ora = oracle_for(final_fp, s);
      const DistT<uint32_t> want = ora->dist[d];
      const bool want_reach = want != DistTraits<uint32_t>::infinity();
      if (out.p2p_reachable != want_reach ||
          (want_reach && out.p2p_distance != want)) {
        violation("post-storm oracle answer diverged from Dijkstra");
        continue;
      }
      ++t.ok;
    }
  }

  const auto rep = svc.report();
  totals.builds_ok += rep.landmark_builds_ok;
  totals.repairs_ok += rep.landmark_repairs_ok;
  totals.rebuild_fallbacks += rep.landmark_rebuild_fallbacks;
  totals.build_failures += rep.landmark_build_failures;
  totals.oracle_exact += rep.oracle_exact_hits;
  totals.alt_searches += rep.alt_searches;
  totals.engine_fallbacks += rep.p2p_engine_fallbacks;

  // The episode must be reconstructible from the flight recorder.
  const auto events = svc.flight_dump();
  if (!flight_has(events, FlightKind::kTableBuildStart))
    violation("flight recorder is missing the table-build-start events");
  if (rep.landmark_build_failures > 0 &&
      !flight_has(events, FlightKind::kTableBuildFailed))
    violation("flight recorder is missing the table-build-failed events");
  if (rep.landmark_rebuild_fallbacks > 0 &&
      !flight_has(events, FlightKind::kTableRebuildFallback))
    violation("flight recorder is missing the rebuild-fallback events");

  if (verbose)
    std::fprintf(stderr,
                 "round=%llu builds_ok=%llu repairs_ok=%llu fallbacks=%llu "
                 "failures=%llu exact=%llu alt=%llu engine=%llu "
                 "typed_failures=%llu\n",
                 (unsigned long long)round,
                 (unsigned long long)rep.landmark_builds_ok,
                 (unsigned long long)rep.landmark_repairs_ok,
                 (unsigned long long)rep.landmark_rebuild_fallbacks,
                 (unsigned long long)rep.landmark_build_failures,
                 (unsigned long long)exact_served,
                 (unsigned long long)alt_served,
                 (unsigned long long)engine_served,
                 (unsigned long long)typed_failures);
  return violations;
}

int run_landmark_chaos(uint64_t master_seed, uint64_t rounds, bool smoke,
                       bool verbose) {
  SoakRng rng{master_seed};
  Tally tally;
  LandmarkTotals totals;
  for (uint64_t r = 0; r < rounds; ++r)
    tally.violations +=
        landmark_chaos_round(r, rng.next(), smoke, verbose, tally, totals);

  // The suite's reason to exist: both arms of the typed-failure matrix
  // must actually have been exercised. A storm where landmark.build never
  // fired, never broke anything, or broke everything proves nothing.
  if (totals.build_fires == 0 ||
      totals.build_failures + totals.rebuild_fallbacks == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION landmark-chaos: injected build faults never bit "
                 "(fires=%llu failures=%llu fallbacks=%llu)\n",
                 (unsigned long long)totals.build_fires,
                 (unsigned long long)totals.build_failures,
                 (unsigned long long)totals.rebuild_fallbacks);
  }
  if (totals.builds_ok + totals.repairs_ok == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION landmark-chaos: no table build or repair ever "
                 "succeeded (the oracle path itself went unexercised)\n");
  }
  if (totals.oracle_exact + totals.alt_searches == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION landmark-chaos: every p2p rode an engine — the "
                 "oracle never actually served\n");
  }

  TextTable table("Landmark chaos (" + std::to_string(rounds) +
                  " rounds, seed " + std::to_string(master_seed) + ")");
  table.set_header({"outcome", "count"});
  table.add_row({"validated p2p serves", std::to_string(tally.ok)});
  table.add_row({"contract violations", std::to_string(tally.violations)});
  table.add_row({"table builds ok", std::to_string(totals.builds_ok)});
  table.add_row({"warm repairs ok", std::to_string(totals.repairs_ok)});
  table.add_row(
      {"rebuild fallbacks", std::to_string(totals.rebuild_fallbacks)});
  table.add_row({"typed build failures",
                 std::to_string(totals.build_failures)});
  table.add_row({"oracle-exact serves", std::to_string(totals.oracle_exact)});
  table.add_row({"alt-search serves", std::to_string(totals.alt_searches)});
  table.add_row(
      {"engine-fallback serves", std::to_string(totals.engine_fallbacks)});
  table.add_row({"fault fires", std::to_string(tally.fault_fires)});
  table.add_footer(
      "p2p bursts x symmetric delta churn x injected landmark.build "
      "faults; every answer validated on the generation it claims — a "
      "broken table may downgrade the serve path, never a distance");
  table.print();
  return tally.violations == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Restart chaos: crash-safe persistence under fire
// ---------------------------------------------------------------------------

struct RestartTotals {
  uint64_t saves_ok = 0;
  uint64_t saves_failed = 0;
  uint64_t restores_ok = 0;
  uint64_t restores_failed = 0;   // whole-store typed failures
  uint64_t clean_restores = 0;    // fully warm: every artifact verified
  uint64_t corrupt_sections = 0;
  uint64_t cold_rebuilds = 0;
  uint64_t tables_restored = 0;
  uint64_t cache_restored = 0;
  uint64_t republished = 0;       // tenants lost to corruption, republished
};

/// One crash cycle: warm a 2-tenant service (tables READY, caches hot),
/// save through the StateStore, destroy the service, and bring a fresh one
/// up from the store. persist.io is armed on alternating rounds — one in
/// four corrupts the save (torn write / bitflip / version skew, cycling
/// with the plan's fire count), one in four short-reads the load; the rest
/// are fault-free crash cycles. Contract: restore() never throws and never
/// serves unverified state; everything it rejects is counted typed
/// (corrupt_sections / a whole-store error) and replaced by a cold
/// republish or rebuild; every answer the revived service gives — cached,
/// fresh, or p2p off the restored table — matches the round's Dijkstra
/// oracles; and the round ends fully warm (both tables READY).
uint64_t restart_chaos_round(uint64_t round, uint64_t seed, bool smoke,
                             bool verbose, const std::string& state_dir,
                             fault::FaultPlan& save_plan,
                             fault::FaultPlan& load_plan, Tally& t,
                             RestartTotals& totals) {
  constexpr int kTenants = 2;
  constexpr VertexId kSources = 3;
  const uint64_t side = smoke ? 20 : 26;
  const bool arm_save = round % 4 == 1;
  const bool arm_load = round % 4 == 3;

  std::vector<std::shared_ptr<const IntGraph>> graphs;
  std::vector<uint64_t> fps;
  std::vector<std::vector<SsspResult<uint32_t>>> oracles(kTenants);
  for (int k = 0; k < kTenants; ++k) {
    GraphSpec spec;
    spec.name = "grid_t" + std::to_string(k);
    spec.family = GraphFamily::kGridRoad;
    spec.scale = side;
    spec.a = double(side);
    spec.weights = {WeightDist::kUniform, 1000, 1};
    spec.seed = seed + uint64_t(k);
    graphs.push_back(std::make_shared<const IntGraph>(
        generate_graph<uint32_t>(spec)));
    fps.push_back(graph_fingerprint(*graphs.back()));
    for (VertexId s = 0; s < kSources; ++s)
      oracles[size_t(k)].push_back(dijkstra(*graphs.back(), s));
  }

  ServiceConfig cfg;
  cfg.num_engines = 2;
  cfg.max_queue_depth = 64;
  cfg.cache_entries = 64;
  cfg.guarded_fallback = false;
  cfg.engine.num_workers = 2;
  cfg.engine.chunk_items = 32;
  cfg.landmark.num_landmarks = 4;

  uint64_t violations = 0;
  const auto violation = [&](SsspService<uint32_t>& svc,
                             const std::string& what) {
    ++violations;
    std::fprintf(stderr,
                 "VIOLATION restart-chaos round=%llu seed=0x%llx: %s\n",
                 (unsigned long long)round, (unsigned long long)seed,
                 what.c_str());
    if (violations == 1) dump_flight(svc);
  };
  const auto tables_ready = [&](SsspService<uint32_t>& svc) {
    int ready = 0;
    for (const auto& ts : svc.report().tenants)
      for (int k = 0; k < kTenants; ++k)
        if (ts.graph_fp == fps[size_t(k)] &&
            ts.oracle_status == LandmarkTableStatus::kReady)
          ++ready;
    return ready == kTenants;
  };

  // Phase A — warm a service end to end and save it (the "crash" is the
  // destructor at the end of this block: no drain, no goodbye).
  {
    SsspService<uint32_t> warm(cfg);
    warm.set_graph(graphs[0]);
    warm.publish_graph(graphs[1]);
    if (!poll_until([&] { return tables_ready(warm); }, 30000)) {
      violation(warm, "landmark tables never became ready before the save");
      return violations;
    }
    for (int k = 0; k < kTenants; ++k)
      for (VertexId s = 0; s < kSources; ++s) {
        QueryOptions q;
        q.graph_fp = fps[size_t(k)];
        const auto out = warm.query(s, q);
        if (!validate_distances(*out.result, oracles[size_t(k)][s]).ok())
          violation(warm, "pre-save result diverged from Dijkstra oracle");
        else
          ++t.ok;
      }
    SaveOutcome so;
    if (arm_save) {
      fault::FaultScope scope(save_plan);
      so = warm.save(state_dir);
    } else {
      so = warm.save(state_dir);
    }
    if (so.ok)
      ++totals.saves_ok;
    else
      ++totals.saves_failed;
    if (!so.ok && !arm_save)
      violation(warm, "fault-free save failed: " + so.error);
  }

  // Phase B — restart from the store. restore() must come back typed no
  // matter what the injected fault did to the bytes.
  SsspService<uint32_t> svc(cfg);
  RestoreOutcome ro;
  try {
    if (arm_load) {
      fault::FaultScope scope(load_plan);
      ro = svc.restore(state_dir);
      // Keep the plan installed until restore-scheduled cold builds settle
      // (threads inside build code may still consult it).
      poll_until([&] { return svc.report().landmark_builds_pending == 0; },
                 30000);
    } else {
      ro = svc.restore(state_dir);
    }
  } catch (const std::exception& e) {
    violation(svc,
              std::string("restore threw (contract: never): ") + e.what());
    return violations;
  }
  if (!ro.store_found) {
    violation(svc, "store file missing after a published save");
    return violations;
  }
  if (ro.ok)
    ++totals.restores_ok;
  else
    ++totals.restores_failed;
  totals.corrupt_sections += ro.corrupt_sections;
  totals.cold_rebuilds += ro.cold_rebuilds;
  totals.tables_restored += ro.tables_restored;
  totals.cache_restored += ro.cache_restored;
  const bool fully_warm_restore =
      ro.ok && ro.corrupt_sections == 0 && ro.cold_rebuilds == 0 &&
      ro.graphs_restored == uint32_t(kTenants) &&
      ro.tables_restored == uint32_t(kTenants);
  if (fully_warm_restore) ++totals.clean_restores;
  if (!arm_save && !arm_load && !fully_warm_restore)
    violation(svc, "fault-free restore was not fully warm (graphs=" +
                       std::to_string(ro.graphs_restored) + " tables=" +
                       std::to_string(ro.tables_restored) + " corrupt=" +
                       std::to_string(ro.corrupt_sections) + " error=" +
                       ro.error + ")");

  // Phase C — cold fallback: republish any tenant the verification
  // gauntlet refused to seat. This is the degraded path the store's
  // invariant promises: corruption costs startup latency, never answers.
  {
    const auto resident = svc.resident_graphs();
    for (int k = 0; k < kTenants; ++k) {
      bool found = false;
      for (const uint64_t r : resident) found = found || r == fps[size_t(k)];
      if (!found) {
        svc.publish_graph(graphs[size_t(k)]);
        ++totals.republished;
      }
    }
  }

  // Phase D — the fleet must return fully warm: restored tables serve as
  // they are, rejected ones finish their cold rebuilds.
  if (!poll_until([&] { return tables_ready(svc); }, 30000)) {
    violation(svc, "tables never reached READY after the restart");
    return violations;
  }

  // Phase E — zero wrong answers: full solves (cache hit or fresh) and
  // p2p serves off whatever table survived or got rebuilt.
  for (int k = 0; k < kTenants; ++k)
    for (VertexId s = 0; s < kSources; ++s) {
      QueryOptions q;
      q.graph_fp = fps[size_t(k)];
      try {
        const auto out = svc.query(s, q);
        if (!validate_distances(*out.result, oracles[size_t(k)][s]).ok()) {
          violation(svc, "post-restart result diverged from Dijkstra oracle");
          continue;
        }
        ++t.ok;
        const VertexId d =
            VertexId(graphs[size_t(k)]->num_vertices() - 1 - s);
        QueryOptions pq;
        pq.graph_fp = fps[size_t(k)];
        pq.target = d;
        const auto pout = svc.query(s, pq);
        const DistT<uint32_t> want = oracles[size_t(k)][s].dist[d];
        const bool want_reach = want != DistTraits<uint32_t>::infinity();
        if (pout.p2p_reachable != want_reach ||
            (want_reach && pout.p2p_distance != want)) {
          violation(svc, "post-restart p2p answer diverged from Dijkstra");
          continue;
        }
        ++t.ok;
      } catch (const Error& e) {
        violation(svc,
                  std::string("post-restart query failed: ") + e.what());
      }
    }

  // The episode must be typed end to end and reconstructible from the
  // flight recorder.
  const auto events = svc.flight_dump();
  if ((ro.corrupt_sections > 0 || !ro.ok) &&
      !flight_has(events, FlightKind::kStateCorrupt))
    violation(svc, "flight recorder is missing the state-corrupt event");
  if (ro.ok && !flight_has(events, FlightKind::kStateLoaded))
    violation(svc, "flight recorder is missing the state-loaded event");
  if (ro.cold_rebuilds > 0 && !flight_has(events, FlightKind::kColdRebuild))
    violation(svc, "flight recorder is missing the cold-rebuild event");

  if (verbose) {
    const auto rep = svc.report();
    std::fprintf(stderr,
                 "round=%llu arm_save=%d arm_load=%d restored: graphs=%u "
                 "tables=%u cache=%u corrupt=%llu rebuilds=%u "
                 "republished=%llu load_ms=%.2f verify_ms=%.2f "
                 "builds_ok=%llu\n",
                 (unsigned long long)round, int(arm_save), int(arm_load),
                 ro.graphs_restored, ro.tables_restored, ro.cache_restored,
                 (unsigned long long)ro.corrupt_sections, ro.cold_rebuilds,
                 (unsigned long long)totals.republished, ro.load_ms,
                 ro.verify_ms, (unsigned long long)rep.landmark_builds_ok);
  }
  return violations;
}

int run_restart_chaos(uint64_t master_seed, uint64_t rounds, bool smoke,
                      bool verbose, const std::string& state_dir) {
  SoakRng rng{master_seed};
  Tally tally;
  RestartTotals totals;
  // One plan per side, alive across every round, so the save-side fault
  // mode cycles with its fire count (torn write, then bitflip, then
  // version skew) instead of re-rolling the first mode each round.
  // Probability 1.0: WHICH rounds are armed is the round alternation in
  // restart_chaos_round, not a coin flip — half the crash cycles see
  // persist.io, deterministically per seed.
  fault::FaultPlan save_plan(master_seed);
  save_plan.set(fault::Site::kStateIo, {1.0, ~0ull, 0});
  fault::FaultPlan load_plan(master_seed ^ 0x9e3779b97f4a7c15ull);
  load_plan.set(fault::Site::kStateIo, {1.0, ~0ull, 0});

  for (uint64_t r = 0; r < rounds; ++r)
    tally.violations +=
        restart_chaos_round(r, rng.next(), smoke, verbose, state_dir,
                            save_plan, load_plan, tally, totals);
  const uint64_t io_fires = save_plan.total_fires() + load_plan.total_fires();
  tally.fault_fires += io_fires;

  // The suite's reason to exist: both arms must actually have been
  // exercised — at least one fully warm restore (the store pays off) and
  // at least one injected corruption resolved typed (the verification
  // gauntlet caught it). A run where persist.io never bit proves nothing.
  if (io_fires == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION restart-chaos: persist.io never fired\n");
  }
  if (totals.clean_restores == 0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION restart-chaos: no crash cycle ever came back "
                 "fully warm from the store\n");
  }
  if (totals.corrupt_sections + totals.restores_failed +
          totals.republished ==
      0) {
    ++tally.violations;
    std::fprintf(stderr,
                 "VIOLATION restart-chaos: injected persist.io faults "
                 "never produced a typed corruption (fires=%llu)\n",
                 (unsigned long long)io_fires);
  }

  TextTable table("Restart chaos (" + std::to_string(rounds) +
                  " rounds, seed " + std::to_string(master_seed) + ")");
  table.set_header({"outcome", "count"});
  table.add_row({"validated answers", std::to_string(tally.ok)});
  table.add_row({"contract violations", std::to_string(tally.violations)});
  table.add_row({"saves ok", std::to_string(totals.saves_ok)});
  table.add_row({"restores ok", std::to_string(totals.restores_ok)});
  table.add_row({"whole-store failures (typed)",
                 std::to_string(totals.restores_failed)});
  table.add_row({"fully warm restores",
                 std::to_string(totals.clean_restores)});
  table.add_row({"corrupt sections (typed)",
                 std::to_string(totals.corrupt_sections)});
  table.add_row({"cold rebuilds", std::to_string(totals.cold_rebuilds)});
  table.add_row({"tables restored", std::to_string(totals.tables_restored)});
  table.add_row({"cache entries restored",
                 std::to_string(totals.cache_restored)});
  table.add_row({"tenants republished cold",
                 std::to_string(totals.republished)});
  table.add_row({"persist.io fires", std::to_string(io_fires)});
  table.add_footer(
      "crash cycles through the StateStore with persist.io armed on half "
      "the save/load paths; recovered state is verified or rebuilt — "
      "never served on trust");
  table.print();
  return tally.violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("soak_suite",
                "deterministic chaos soak for the resilient host engine "
                "(faults x tiny pools x cancels x deadlines)");
  cli.add_flag("smoke", "short CI tier (fits the 60s soak_smoke budget)");
  cli.add_flag("verbose", "print each run's drawn configuration to stderr");
  cli.add_flag("service-chaos",
               "service-level phase: fault k of N pooled engines mid-solve "
               "and require supervised quarantine + rebuild + clean serves");
  cli.add_flag("tenant-chaos",
               "multi-tenant phase: wedge 1 of 3 catalog tenants with "
               "domain-scoped faults and require zero cross-tenant damage");
  cli.add_flag("delta-chaos",
               "live-delta phase: rewrite the graph under a query burst "
               "with injected repair faults; every survivor validated on "
               "the generation it claims");
  cli.add_flag("landmark-chaos",
               "landmark-oracle phase: p2p bursts x delta churn x injected "
               "landmark.build faults; typed table failures may downgrade "
               "the serve path but never bend a distance");
  cli.add_flag("restart-chaos",
               "crash-safe persistence phase: save/crash/restore cycles "
               "with persist.io armed on half the save and load paths; "
               "corruption must resolve typed and every answer validate");
  cli.add_option("runs", "number of randomized runs (0: tier default)", "0");
  cli.add_option("seed", "master seed for the configuration stream", "42");
  cli.add_option("state-dir", "state directory for --restart-chaos",
                 "soak_restart_state");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.flag("smoke");
  const uint64_t master_seed = uint64_t(cli.integer("seed"));
  uint64_t runs = uint64_t(cli.integer("runs"));

  if (cli.flag("service-chaos")) {
    if (runs == 0) runs = smoke ? 2 : 6;
    return run_service_chaos(master_seed, runs, smoke, cli.flag("verbose"));
  }
  if (cli.flag("tenant-chaos")) {
    if (runs == 0) runs = smoke ? 2 : 6;
    return run_tenant_chaos(master_seed, runs, smoke, cli.flag("verbose"));
  }
  if (cli.flag("delta-chaos")) {
    if (runs == 0) runs = smoke ? 2 : 6;
    return run_delta_chaos(master_seed, runs, smoke, cli.flag("verbose"));
  }
  if (cli.flag("landmark-chaos")) {
    if (runs == 0) runs = smoke ? 2 : 6;
    return run_landmark_chaos(master_seed, runs, smoke, cli.flag("verbose"));
  }
  if (cli.flag("restart-chaos")) {
    if (runs == 0) runs = smoke ? 4 : 8;
    return run_restart_chaos(master_seed, runs, smoke, cli.flag("verbose"),
                             cli.str("state-dir"));
  }
  if (runs == 0) runs = smoke ? 40 : 400;

  SoakRng rng{master_seed};
  Tally tally;
  std::vector<std::string> failures;

  const bool verbose = cli.flag("verbose");
  for (uint64_t i = 0; i < runs; ++i) {
    const SoakConfig c = draw_config(rng, smoke);
    if (verbose) {
      std::fprintf(stderr,
                   "run=%llu seed=0x%llx graph=%s mode=%s site=%s pool=%u "
                   "governor=%d combining=%d workers=%u block_words=%u\n",
                   (unsigned long long)i, (unsigned long long)c.run_seed,
                   c.graph.name.c_str(), mode_name(c.mode),
                   c.inject ? fault::site_name(c.site) : "none",
                   c.host.pool_blocks, int(c.host.pool_governor),
                   int(c.host.write_combining), c.host.num_workers,
                   c.host.block_words);
      std::fflush(stderr);
    }
    const std::string violation = run_one(c, tally);
    if (!violation.empty()) {
      ++tally.violations;
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "run=%llu seed=0x%llx graph=%s mode=%s site=%s "
                    "pool=%u governor=%d: %s",
                    (unsigned long long)i,
                    (unsigned long long)c.run_seed, c.graph.name.c_str(),
                    mode_name(c.mode), c.inject ? fault::site_name(c.site) : "none",
                    c.host.pool_blocks, int(c.host.pool_governor),
                    violation.c_str());
      failures.push_back(buf);
      std::fprintf(stderr, "VIOLATION %s\n", buf);
    }
  }

  TextTable table("Chaos soak (" + std::to_string(runs) + " runs, seed " +
                  std::to_string(master_seed) + ")");
  table.set_header({"outcome", "count"});
  table.add_row({"ok (validated)", std::to_string(tally.ok)});
  table.add_row({"clean adds::Error", std::to_string(tally.clean_error)});
  table.add_row({"cancelled mid-run", std::to_string(tally.cancelled)});
  table.add_row({"contract violations", std::to_string(tally.violations)});
  table.add_row({"fault fires", std::to_string(tally.fault_fires)});
  table.add_row({"runs that spilled", std::to_string(tally.governed_spill_runs)});
  table.add_row({"items spilled", std::to_string(tally.spilled_items)});
  table.add_footer(
      "every returned result validated against Dijkstra; nonzero "
      "violations fail the process");
  table.print();

  if (!failures.empty()) {
    std::fprintf(stderr, "\n%zu contract violation(s):\n", failures.size());
    for (const auto& f : failures) std::fprintf(stderr, "  %s\n", f.c_str());
    return 1;
  }
  return 0;
}
