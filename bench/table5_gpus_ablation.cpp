// Table 5: ADDS-over-NF speedup distributions on the RTX 2080 Ti and the
// RTX 3090 machine models, plus the two ablations on the 3090:
//   Static-Δ   — dynamic Δ selection disabled (static heuristic value);
//   2-Buckets  — static Δ and only two buckets (the remaining advantage is
//                the asynchronous delegation-based worklist alone).
#include <cstdio>

#include "bench_common.hpp"

using namespace adds;

namespace {

struct Variant {
  std::string label;
  GpuSpec board;
  bool dynamic_delta;
  uint32_t num_buckets;
};

}  // namespace

int main(int argc, char** argv) {
  auto cli = bench::make_cli("table5_gpus_ablation",
                             "Table 5: GPUs and ablations");
  if (!cli.parse(argc, argv)) return 0;
  const auto tier = parse_tier(cli.str("tier"));
  const std::string out = cli.str("out");

  const std::vector<Variant> variants = {
      {"RTX2080Ti", GpuSpec::rtx2080ti(), true, 32},
      {"RTX3090", GpuSpec::rtx3090(), true, 32},
      {"Static-delta (3090)", GpuSpec::rtx3090(), false, 32},
      {"2-Buckets (3090)", GpuSpec::rtx3090(), false, 2},
  };

  TextTable t("Table 5: speedup of ADDS over NF by machine and ablation (" +
              std::string(tier_name(tier)) + " corpus)");
  {
    auto bins = BinnedDistribution::speedup_bins();
    std::vector<std::string> header{"configuration"};
    for (size_t b = 0; b < bins.num_bins(); ++b)
      header.push_back(bins.label(b));
    header.push_back("geomean");
    t.set_header(header);
  }

  for (const auto& v : variants) {
    CorpusRunOptions opts;
    opts.config = corpus_config(v.board);
    opts.config.adds.dynamic_delta = v.dynamic_delta;
    opts.config.adds.num_buckets = v.num_buckets;
    opts.solvers = {SolverKind::kAdds, SolverKind::kNf};
    const auto records =
        run_corpus_cached(tier, opts, out, config_tag(opts));

    const auto ratios = speedup_ratios(records, "adds", "nf");
    const auto dist =
        bin_ratios(ratios, BinnedDistribution::speedup_bins());
    std::vector<std::string> row{v.label};
    for (size_t b = 0; b < dist.num_bins(); ++b) row.push_back(dist.cell(b));
    row.push_back(fmt_ratio(geomean(ratios)));
    t.add_row(row);
  }
  t.add_footer("paper: 2.9x (2080Ti), 3.5x (3090), 2.4x (Static-delta), "
               "2.2x (2-Buckets)");
  t.add_footer("expected ordering: 3090 >= 2080Ti > Static-delta > 2-Buckets");
  t.print();
  return 0;
}
