// Table 3: distribution of ADDS's speedup over NF, Gun-NF, Gun-BF, NV,
// CPU-DS and serial Dijkstra across the benchmark corpus, with the paper's
// speedup bins. Also emits the per-graph scatter data behind Figures 8
// (speedup vs average degree) and 9 (speedup vs diameter).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace adds;

int main(int argc, char** argv) {
  auto cli = bench::make_cli("table3_speedup",
                             "Table 3: speedup distribution of ADDS");
  cli.add_flag("float", "run the float-weight corpus lane");
  if (!cli.parse(argc, argv)) return 0;
  const auto tier = parse_tier(cli.str("tier"));
  const std::string out = cli.str("out");

  CorpusRunOptions opts;
  opts.config = corpus_config();
  opts.solvers = {SolverKind::kAdds,  SolverKind::kNf,  SolverKind::kGunNf,
                  SolverKind::kGunBf, SolverKind::kNv,  SolverKind::kCpuDs,
                  SolverKind::kDijkstra};
  opts.float_weights = cli.flag("float");
  const auto records =
      run_corpus_cached(tier, opts, out, config_tag(opts));

  TextTable t("Table 3: distribution of speedup of ADDS over each baseline "
              "(" + std::to_string(records.size()) + " graphs)");
  {
    auto bins = BinnedDistribution::speedup_bins();
    std::vector<std::string> header{"baseline"};
    for (size_t b = 0; b < bins.num_bins(); ++b)
      header.push_back(bins.label(b));
    header.push_back("geomean");
    header.push_back("mean");
    t.set_header(header);
  }
  for (const char* baseline :
       {"nf", "gun-nf", "gun-bf", "nv", "cpu-ds", "dijkstra"}) {
    const auto ratios = speedup_ratios(records, "adds", baseline);
    const auto dist =
        bin_ratios(ratios, BinnedDistribution::speedup_bins());
    std::vector<std::string> row{baseline};
    for (size_t b = 0; b < dist.num_bins(); ++b) row.push_back(dist.cell(b));
    row.push_back(fmt_ratio(geomean(ratios)));
    row.push_back(fmt_ratio(mean(ratios)));
    t.add_row(row);
  }
  t.add_footer(bench::model_footer(opts.config));
  t.add_footer("paper (2080 Ti, 226 graphs): avg 2.9x over NF, 5.8x Gun-NF, "
               "9.6x Gun-BF, 13.4x NV, 14.2x CPU-DS, 34.4x Dijkstra");
  t.print();

  // Figures 8 & 9 scatter series.
  CsvWriter f8(out + "/fig8_speedup_vs_degree.csv");
  f8.write_header({"graph", "avg_degree", "speedup_adds_over_nf"});
  CsvWriter f9(out + "/fig9_speedup_vs_diameter.csv");
  f9.write_header({"graph", "diameter", "speedup_adds_over_nf"});
  for (const auto& r : records) {
    const auto a = r.outcomes.find("adds");
    const auto n = r.outcomes.find("nf");
    if (a == r.outcomes.end() || n == r.outcomes.end()) continue;
    const double s = n->second.time_us / a->second.time_us;
    f8.write_row({r.spec.name, fmt_double(r.summary.avg_degree, 2),
                  fmt_double(s, 3)});
    f9.write_row({r.spec.name, std::to_string(r.summary.diameter),
                  fmt_double(s, 3)});
  }
  std::printf("Figures 8/9 scatter data: %s, %s\n",
              (out + "/fig8_speedup_vs_degree.csv").c_str(),
              (out + "/fig9_speedup_vs_diameter.csv").c_str());

  // Figure 8/9 claim: speedup is largely independent of degree/diameter.
  // Summarize by quartile of each characteristic.
  for (const auto& [name, key] :
       std::vector<std::pair<std::string, bool>>{{"degree", true},
                                                 {"diameter", false}}) {
    std::vector<std::pair<double, double>> pts;  // (characteristic, speedup)
    for (const auto& r : records) {
      const auto a = r.outcomes.find("adds");
      const auto n = r.outcomes.find("nf");
      if (a == r.outcomes.end() || n == r.outcomes.end()) continue;
      pts.push_back({key ? r.summary.avg_degree : double(r.summary.diameter),
                     n->second.time_us / a->second.time_us});
    }
    std::sort(pts.begin(), pts.end());
    TextTable q("ADDS-over-NF geomean speedup by " + name + " quartile");
    q.set_header({"quartile", "range", "geomean speedup"});
    for (int qi = 0; qi < 4; ++qi) {
      const size_t lo = pts.size() * size_t(qi) / 4;
      const size_t hi = pts.size() * size_t(qi + 1) / 4;
      std::vector<double> xs;
      for (size_t i = lo; i < hi; ++i) xs.push_back(pts[i].second);
      q.add_row({"Q" + std::to_string(qi + 1),
                 fmt_double(pts[lo].first, 1) + " - " +
                     fmt_double(pts[hi - 1].first, 1),
                 fmt_ratio(geomean(xs))});
    }
    q.print();
  }
  return 0;
}
