// Table 4: distribution of ADDS's normalized vertex-processing count (work)
// relative to each baseline, with the paper's work bins (lower is better
// for ADDS). NV is excluded, as in the paper (its work metric is the dense
// sweep count, not comparable).
#include <cstdio>

#include "bench_common.hpp"

using namespace adds;

int main(int argc, char** argv) {
  auto cli = bench::make_cli("table4_work",
                             "Table 4: work-ratio distribution of ADDS");
  cli.add_flag("float", "run the float-weight corpus lane");
  if (!cli.parse(argc, argv)) return 0;
  const auto tier = parse_tier(cli.str("tier"));
  const std::string out = cli.str("out");

  CorpusRunOptions opts;
  opts.config = corpus_config();
  opts.solvers = {SolverKind::kAdds,  SolverKind::kNf,  SolverKind::kGunNf,
                  SolverKind::kGunBf, SolverKind::kNv,  SolverKind::kCpuDs,
                  SolverKind::kDijkstra};
  opts.float_weights = cli.flag("float");
  const auto records =
      run_corpus_cached(tier, opts, out, config_tag(opts));

  TextTable t(
      "Table 4: distribution of ADDS's vertex processing count normalized "
      "to each baseline (lower is better for ADDS; " +
      std::to_string(records.size()) + " graphs)");
  {
    auto bins = BinnedDistribution::work_bins();
    std::vector<std::string> header{"baseline"};
    for (size_t b = 0; b < bins.num_bins(); ++b)
      header.push_back(bins.label(b));
    header.push_back("geomean");
    t.set_header(header);
  }
  for (const char* baseline :
       {"nf", "gun-nf", "gun-bf", "cpu-ds", "dijkstra"}) {
    const auto ratios = work_ratios(records, "adds", baseline);
    const auto dist = bin_ratios(ratios, BinnedDistribution::work_bins());
    std::vector<std::string> row{baseline};
    for (size_t b = 0; b < dist.num_bins(); ++b) row.push_back(dist.cell(b));
    row.push_back(fmt_ratio(geomean(ratios)));
    t.add_row(row);
  }
  t.add_footer(bench::model_footer(opts.config));

  // The paper's headline pairing: ADDS processes ~1.55x the vertices of NF
  // on average yet is ~2.9x faster.
  const auto work_nf = work_ratios(records, "adds", "nf");
  const auto speed_nf = speedup_ratios(records, "adds", "nf");
  t.add_footer("measured: ADDS processes " + fmt_ratio(geomean(work_nf)) +
               " the vertices of NF (geomean) while being " +
               fmt_ratio(geomean(speed_nf)) + " faster");
  t.add_footer("paper: 1.55x more vertices, 2.9x faster");
  t.print();
  return 0;
}
