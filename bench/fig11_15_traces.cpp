// Figures 11-15: parallelism (in-flight edge count) over execution time for
// ADDS vs NF on the five graphs the paper analyses in depth:
//   Fig 11  road-USA    (s:3.09x, w:0.19x)  — parallelism win
//   Fig 12  BenElechi1  (s:4x,    w:2.12x)  — both
//   Fig 13  msdoor      (s:5.57x, w:4x)     — work win, late-phase stall
//   Fig 14  rmat22      (s:2.29x, w:2.18x)  — pure work win
//   Fig 15  c-big       (s:1.6x,  w:3.35x)  — short run, delta can't adapt
#include <cstdio>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "graph/generators.hpp"

using namespace adds;

namespace {

/// Paper-scale variants (~4x the default analogues): slower to run, but the
/// power-law case reaches the throughput-bound regime where ADDS's work
/// advantage shows (see EXPERIMENTS.md "known gaps").
GraphSpec upscale(GraphSpec s) {
  switch (s.family) {
    case GraphFamily::kGridRoad:
    case GraphFamily::kKNeighborMesh:
      s.scale *= 2;
      s.a *= 2;
      break;
    case GraphFamily::kRmat:
      s.scale += 2;
      break;
    default:
      s.scale *= 4;
      break;
  }
  s.name += "-big";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = bench::make_cli("fig11_15_traces",
                             "Figures 11-15: parallelism over time");
  cli.add_flag("big", "use ~4x larger, paper-scale graph analogues");
  if (!cli.parse(argc, argv)) return 0;
  const std::string out = cli.str("out");
  const EngineConfig cfg = corpus_config();

  CsvWriter csv(out + "/fig11_15_traces.csv");
  csv.write_header({"figure", "graph", "solver", "t_us", "edges_in_flight"});

  std::vector<std::pair<std::string, GraphSpec>> figures = {
      {"fig11", road_usa_like()}, {"fig12", benelechi_like()},
      {"fig13", msdoor_like()},   {"fig14", rmat22_like()},
      {"fig15", cbig_like()},
  };
  if (cli.flag("big")) {
    for (auto& [name, spec] : figures) spec = upscale(spec);
  }
  const std::vector<std::pair<std::string, std::pair<double, double>>>
      paper = {{"fig11", {3.09, 0.19}},
               {"fig12", {4.00, 2.12}},
               {"fig13", {5.57, 4.00}},
               {"fig14", {2.29, 2.18}},
               {"fig15", {1.60, 3.35}}};

  TextTable t("Figures 11-15: per-graph speedup and work efficiency");
  t.set_header({"figure", "graph", "s (ours)", "w (ours)", "s (paper)",
                "w (paper)", "adds time", "nf time", "mean par adds",
                "mean par nf"});

  for (size_t i = 0; i < figures.size(); ++i) {
    const auto& [fig, spec] = figures[i];
    const auto g = generate_graph<uint32_t>(spec);
    const VertexId source = pick_source(g);
    std::fprintf(stderr, "[%s] %s |V|=%llu |E|=%llu\n", fig.c_str(),
                 spec.name.c_str(), (unsigned long long)g.num_vertices(),
                 (unsigned long long)g.num_edges());

    const auto a = run_solver(SolverKind::kAdds, g, source, cfg);
    const auto n = run_solver(SolverKind::kNf, g, source, cfg);

    for (const auto* res : {&a, &n}) {
      for (const auto& s : res->trace.resample(300)) {
        csv.write_row({fig, spec.name, res->solver, fmt_double(s.t_us, 2),
                       fmt_double(s.edges_in_flight, 0)});
      }
    }

    const double s = n.time_us / a.time_us;
    const double w = double(n.work.items_processed) /
                     double(a.work.items_processed);
    t.add_row({fig, spec.name, fmt_ratio(s), fmt_ratio(w),
               fmt_ratio(paper[i].second.first),
               fmt_ratio(paper[i].second.second), fmt_time_us(a.time_us),
               fmt_time_us(n.time_us),
               fmt_count(uint64_t(a.trace.mean_parallelism())),
               fmt_count(uint64_t(n.trace.mean_parallelism()))});
  }
  t.add_footer("w = NF vertex count / ADDS vertex count (as in the paper's "
               "figure captions; > 1 means ADDS does less work)");
  t.add_footer("trace series: " + out + "/fig11_15_traces.csv");
  t.print();
  return 0;
}
