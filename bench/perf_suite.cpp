// Repeatable host-performance suite — the trajectory benchmark for the
// real-thread engines (ROADMAP: every PR makes a hot path measurably
// faster, and leaves an artifact trail to prove it).
//
// Two layers, both fully deterministic in their inputs (fixed generator
// seeds; wall-clock numbers vary with the machine, ratios are the signal):
//
//   1. Contended push micro: N writer threads race items into one bucket
//      while a manager thread allocates/consumes/recycles — once with
//      single-item pushes (two shared-cache-line atomics per item), once
//      write-combined (Bucket::push_batch, one reservation + one WCC
//      increment per segment per 64-item batch). This is the paper's
//      warp-aggregation argument reproduced on host silicon.
//
//   2. Solver suite: adds-host (combining A/B via AddsHostOptions),
//      nearfar-host and cpu-ds over generator graphs at 1/2/4 workers,
//      reporting items/s, pushes/s and queue-atomics-per-relaxation.
//      Every measured adds-host run is validated against Dijkstra first —
//      a perf number for a wrong answer is worthless.
//
// Emits BENCH_perf.json (schema adds-perf-suite-v1) so future PRs can
// compare trend points; CI's perf-smoke job uploads it as an artifact.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "queue/assignment.hpp"
#include "queue/block_pool.hpp"
#include "queue/bucket.hpp"
#include "queue/push_combiner.hpp"
#include "queue/work_queue.hpp"
#include "queue/wrap.hpp"
#include "util/backoff.hpp"
#include "sssp/adds.hpp"
#include "sssp/cpu_delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/nearfar_host.hpp"
#include "util/timer.hpp"

using namespace adds;

namespace {

// ---- Minimal JSON emission (no dependency; values we emit need no
// escaping beyond quoting) ---------------------------------------------------

struct JsonObj {
  std::ostringstream out;
  bool first = true;
  void sep() {
    if (!first) out << ",";
    first = false;
  }
  JsonObj& field(const std::string& k, const std::string& v) {
    sep();
    out << "\"" << k << "\":\"" << v << "\"";
    return *this;
  }
  JsonObj& field(const std::string& k, double v) {
    sep();
    out << "\"" << k << "\":" << v;
    return *this;
  }
  JsonObj& field(const std::string& k, uint64_t v) {
    sep();
    out << "\"" << k << "\":" << v;
    return *this;
  }
  JsonObj& field(const std::string& k, bool v) {
    sep();
    out << "\"" << k << "\":" << (v ? "true" : "false");
    return *this;
  }
  JsonObj& raw(const std::string& k, const std::string& json) {
    sep();
    out << "\"" << k << "\":" << json;
    return *this;
  }
  std::string str() const {
    std::string s = "{";
    s += out.str();
    s += "}";
    return s;
  }
};

std::string json_array(const std::vector<std::string>& elems) {
  std::string s = "[";
  for (size_t i = 0; i < elems.size(); ++i) {
    if (i) s += ",";
    s += elems[i];
  }
  return s + "]";
}

// ---- 1. Contended push micro ------------------------------------------------

struct PushMicroResult {
  uint32_t writers = 0;
  bool combined = false;
  uint64_t items = 0;
  double wall_ms = 0;
  double pushes_per_s = 0;
  double atomics_per_push = 0;
};

/// N writers push `items_per_writer` each into one bucket; a manager
/// thread keeps capacity ahead and consumes/recycles behind, so the run
/// exercises the steady-state protocol, not an unbounded array fill.
PushMicroResult run_push_micro(uint32_t writers, uint64_t items_per_writer,
                               bool combined, uint32_t batch) {
  constexpr uint32_t kBlockWords = 4096;
  BlockPool pool(64, kBlockWords);
  BucketConfig cfg;
  cfg.segment_words = 32;
  cfg.table_size = 16;
  Bucket bucket(pool, cfg);
  bucket.ensure_capacity(8 * kBlockWords);

  const uint64_t total = uint64_t(writers) * items_per_writer;
  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> publish_ops{0};

  std::thread manager([&] {
    uint64_t consumed = 0;
    while (true) {
      bucket.ensure_capacity(4 * kBlockWords);
      const uint32_t bound = bucket.scan_written_bound();
      const uint32_t count = bound - bucket.read_ptr();
      if (count > 0) {
        bucket.advance_read(bound);
        bucket.complete(count);
        consumed += count;
        bucket.recycle_below(bucket.read_ptr());
      }
      if (writers_done.load(std::memory_order_acquire) && consumed >= total)
        break;
      std::this_thread::yield();
    }
  });

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (uint32_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      uint64_t ops = 0;
      if (combined) {
        std::vector<uint32_t> stage(batch);
        uint32_t n = 0;
        for (uint64_t i = 0; i < items_per_writer; ++i) {
          stage[n++] = uint32_t(w);
          if (n == batch) {
            ops += bucket.push_batch(stage.data(), n);
            n = 0;
          }
        }
        if (n > 0) ops += bucket.push_batch(stage.data(), n);
      } else {
        for (uint64_t i = 0; i < items_per_writer; ++i) {
          bucket.push(uint32_t(w));
          ++ops;  // one WCC increment per single push
        }
      }
      publish_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = timer.elapsed_ms();
  writers_done.store(true, std::memory_order_release);
  manager.join();

  PushMicroResult r;
  r.writers = writers;
  r.combined = combined;
  r.items = total;
  r.wall_ms = wall_ms;
  r.pushes_per_s = double(total) / (wall_ms / 1e3);
  // One resv_ptr fetch-add per push/flush + the counted WCC increments.
  const uint64_t reserves =
      combined ? (total + batch - 1) / batch * 1 : total;
  r.atomics_per_push =
      double(reserves + publish_ops.load()) / double(total);
  return r;
}

// ---- 1b. Manager->worker handoff latency ------------------------------------

struct HandoffResult {
  std::string mode;  // "poll-backoff" (PR-2 baseline) | "event"
  uint64_t rounds = 0;
  double mean_us = 0;
  double p99_us = 0;
};

/// One manager thread assigns a range to one idle worker every ~200us (so
/// the worker is parked/deep in its idle wait when the assignment lands —
/// the ROADMAP's idle-handoff case), and the worker timestamps how long
/// assign() -> observation took. `event_driven` uses AssignmentFlag::wait
/// (the engine's real path); the baseline reproduces the old poll loop:
/// poll() under a capped-backoff sleep, whose ~128us cap was the latency
/// floor this PR removes.
HandoffResult run_handoff_micro(bool event_driven, uint32_t rounds) {
  AssignmentFlag flag;
  std::atomic<int64_t> assigned_at_ns{0};
  std::vector<double> lat_us;
  lat_us.reserve(rounds);

  std::thread worker([&] {
    bool should_exit = false;
    while (!should_exit) {
      std::optional<Assignment> a;
      if (event_driven) {
        a = flag.wait(should_exit);
      } else {
        Backoff backoff;
        while (!(a = flag.poll(should_exit)) && !should_exit)
          backoff.pause();
      }
      if (!a) continue;
      const auto now = std::chrono::steady_clock::now()
                           .time_since_epoch()
                           .count();
      lat_us.push_back(
          double(now - assigned_at_ns.load(std::memory_order_relaxed)) /
          1e3);
      flag.done();
    }
  });

  for (uint32_t i = 0; i < rounds; ++i) {
    while (!flag.is_idle()) std::this_thread::yield();
    // Let the worker sink all the way into steady-state idle (past the
    // poll loop's backoff ramp, ~260us cumulative) before assigning — the
    // regime where PR-2's capped backoff pays its 128us sleep quantum on
    // every handoff. The park is jittered (deterministically) so the
    // assign lands at varying phases of the sleep schedule instead of
    // phase-locking to it.
    std::this_thread::sleep_for(
        std::chrono::microseconds(500 + (i * 37) % 400));
    assigned_at_ns.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
    flag.assign({0, 0, 1});
  }
  while (!flag.is_idle()) std::this_thread::yield();
  flag.terminate();
  worker.join();

  std::sort(lat_us.begin(), lat_us.end());
  HandoffResult r;
  r.mode = event_driven ? "event" : "poll-backoff";
  r.rounds = rounds;
  double sum = 0;
  for (const double v : lat_us) sum += v;
  r.mean_us = lat_us.empty() ? 0 : sum / double(lat_us.size());
  r.p99_us =
      lat_us.empty() ? 0 : lat_us[size_t(double(lat_us.size() - 1) * 0.99)];
  return r;
}

std::string handoff_json(const HandoffResult& r) {
  JsonObj o;
  o.field("mode", r.mode)
      .field("rounds", r.rounds)
      .field("mean_us", r.mean_us)
      .field("p99_us", r.p99_us);
  return o.str();
}

// ---- 2. Solver suite --------------------------------------------------------

struct SolverRun {
  std::string graph;
  std::string solver;
  uint32_t workers = 0;
  bool combining = false;
  double wall_ms = 0;
  uint64_t items_processed = 0;
  uint64_t relaxations = 0;
  uint64_t pushes = 0;
  double items_per_s = 0;
  double pushes_per_s = 0;
  double atomics_per_relaxation = 0;  // adds-host only (0 elsewhere)
  uint64_t batch_flushes = 0;
  uint64_t combined_items = 0;
};

template <typename RunFn>
SolverRun measure(const std::string& graph, const std::string& solver,
                  uint32_t workers, bool combining, uint32_t reps,
                  RunFn&& run) {
  SolverRun out;
  out.graph = graph;
  out.solver = solver;
  out.workers = workers;
  out.combining = combining;
  out.wall_ms = 1e300;
  for (uint32_t rep = 0; rep < reps; ++rep) {
    const auto r = run();
    if (r.wall_ms < out.wall_ms) {
      out.wall_ms = r.wall_ms;
      out.items_processed = r.work.items_processed;
      out.relaxations = r.work.relaxations;
      out.pushes = r.work.pushes;
      out.batch_flushes = r.work.batch_flushes;
      out.combined_items = r.work.combined_items;
      const uint64_t atomics =
          r.work.queue_reserve_ops + r.work.queue_publish_ops;
      out.atomics_per_relaxation =
          r.work.relaxations > 0
              ? double(atomics) / double(r.work.relaxations)
              : 0.0;
    }
  }
  const double s = out.wall_ms / 1e3;
  out.items_per_s = s > 0 ? double(out.items_processed) / s : 0;
  out.pushes_per_s = s > 0 ? double(out.pushes) / s : 0;
  return out;
}

std::string run_json(const SolverRun& r) {
  JsonObj o;
  o.field("graph", r.graph)
      .field("solver", r.solver)
      .field("workers", uint64_t(r.workers))
      .field("combining", r.combining)
      .field("wall_ms", r.wall_ms)
      .field("items_processed", r.items_processed)
      .field("relaxations", r.relaxations)
      .field("pushes", r.pushes)
      .field("items_per_s", r.items_per_s)
      .field("pushes_per_s", r.pushes_per_s)
      .field("atomics_per_relaxation", r.atomics_per_relaxation)
      .field("batch_flushes", r.batch_flushes)
      .field("combined_items", r.combined_items);
  return o.str();
}

std::string micro_json(const PushMicroResult& r) {
  JsonObj o;
  o.field("writers", uint64_t(r.writers))
      .field("combined", r.combined)
      .field("items", r.items)
      .field("wall_ms", r.wall_ms)
      .field("pushes_per_s", r.pushes_per_s)
      .field("atomics_per_push", r.atomics_per_push);
  return o.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_suite",
                "deterministic host-perf suite (push micro + solver A/B); "
                "emits BENCH_perf.json");
  cli.add_flag("smoke", "small graphs and short micro runs (CI tier)");
  cli.add_option("out", "JSON output path", "BENCH_perf.json");
  cli.add_option("reps", "repetitions per measurement (best-of)", "3");
  cli.add_option("batch", "combiner lane capacity for the A/B", "64");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.flag("smoke");
  const uint32_t reps = uint32_t(std::max<int64_t>(1, cli.integer("reps")));
  const uint32_t batch = uint32_t(std::max<int64_t>(2, cli.integer("batch")));

  // --- Push micro -----------------------------------------------------------
  const uint64_t per_writer = smoke ? 100'000 : 400'000;
  std::vector<PushMicroResult> micro;
  TextTable micro_table("Contended multi-writer push (single vs combined)");
  micro_table.set_header({"writers", "mode", "pushes/s", "atomics/push",
                          "speedup"});
  double best_single = 0, best_combined = 0;
  for (const uint32_t writers : {1u, 2u, 4u}) {
    PushMicroResult single, comb;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      const auto s = run_push_micro(writers, per_writer, false, batch);
      const auto c = run_push_micro(writers, per_writer, true, batch);
      if (s.pushes_per_s > single.pushes_per_s) single = s;
      if (c.pushes_per_s > comb.pushes_per_s) comb = c;
    }
    micro.push_back(single);
    micro.push_back(comb);
    const double speedup = comb.pushes_per_s / single.pushes_per_s;
    micro_table.add_row({std::to_string(writers), "single",
                         fmt_count(uint64_t(single.pushes_per_s)),
                         fmt_double(single.atomics_per_push, 3), ""});
    micro_table.add_row({std::to_string(writers), "combined",
                         fmt_count(uint64_t(comb.pushes_per_s)),
                         fmt_double(comb.atomics_per_push, 3),
                         fmt_ratio(speedup)});
    if (writers == 4) {
      best_single = single.pushes_per_s;
      best_combined = comb.pushes_per_s;
    }
  }
  const double contended_speedup =
      best_single > 0 ? best_combined / best_single : 0;
  micro_table.add_footer("batch = " + std::to_string(batch) +
                         " items; manager consumes concurrently");
  micro_table.print();

  // --- Handoff latency ------------------------------------------------------
  const uint32_t handoff_rounds = smoke ? 300 : 2000;
  const auto handoff_poll = run_handoff_micro(false, handoff_rounds);
  const auto handoff_event = run_handoff_micro(true, handoff_rounds);
  TextTable handoff_table(
      "Manager->worker assignment handoff latency (idle worker)");
  handoff_table.set_header({"mode", "rounds", "mean", "p99"});
  for (const auto& h : {handoff_poll, handoff_event})
    handoff_table.add_row({h.mode, std::to_string(h.rounds),
                           fmt_time_us(h.mean_us), fmt_time_us(h.p99_us)});
  handoff_table.add_footer(
      "poll-backoff reproduces the PR-2 idle loop (128us sleep cap)");
  handoff_table.print();

  // --- Manager-inline micro -------------------------------------------------
  // Tail-latency datapoint for manager self-execution: with one worker and
  // tiny chunks, end-of-bucket leftovers are frequent, and relaying each
  // through a worker handoff costs two flag round-trips. A/B the
  // manager_inline_items knob on a small road grid (the leftover-heavy
  // shape) and record how much traffic the inline path absorbed.
  struct InlineAB {
    bool enabled = false;
    double wall_ms = 0;
    uint64_t inline_ranges = 0;
    uint64_t inline_items = 0;
  };
  std::vector<InlineAB> inline_ab;
  {
    const auto g = make_grid_road<uint32_t>(smoke ? 48 : 128,
                                            smoke ? 48 : 128,
                                            {WeightDist::kUniform, 100}, 5);
    const VertexId src = pick_source(g);
    const auto oracle = dijkstra(g, src);
    TextTable it("Manager inline execution of tiny leftovers (1 worker)");
    it.set_header({"inline", "wall", "inline ranges", "inline items"});
    for (const bool enabled : {false, true}) {
      AddsHostOptions opts;
      opts.num_workers = 1;
      opts.chunk_items = 16;
      opts.manager_inline_items = enabled ? 16 : 0;
      InlineAB ab;
      ab.enabled = enabled;
      ab.wall_ms = 1e300;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        const auto r = adds_host(g, src, opts);
        if (!validate_distances(r, oracle).ok()) {
          std::fprintf(stderr, "FATAL: manager-inline A/B diverged\n");
          return 1;
        }
        if (r.wall_ms < ab.wall_ms) {
          ab.wall_ms = r.wall_ms;
          ab.inline_ranges = r.work.inline_ranges;
          ab.inline_items = r.work.inline_items;
        }
      }
      inline_ab.push_back(ab);
      it.add_row({enabled ? "on" : "off", fmt_time_us(ab.wall_ms * 1e3),
                  fmt_count(ab.inline_ranges), fmt_count(ab.inline_items)});
    }
    it.add_footer("threshold = 16 items; governed mode, spill on dry pool");
    it.print();
  }

  // --- Solver suite ---------------------------------------------------------
  std::vector<GraphSpec> specs;
  {
    GraphSpec road;
    road.name = smoke ? "grid_60x60" : "grid_250x250";
    road.family = GraphFamily::kGridRoad;
    road.scale = smoke ? 60 : 250;
    road.a = double(road.scale);
    road.seed = 1;
    specs.push_back(road);

    GraphSpec rmat;
    rmat.name = smoke ? "rmat11" : "rmat15";
    rmat.family = GraphFamily::kRmat;
    rmat.scale = smoke ? 11 : 15;
    rmat.a = 8;  // edge factor (generate_graph uses standard partitions)
    rmat.seed = 2;
    specs.push_back(rmat);

    GraphSpec mesh;
    mesh.name = smoke ? "mesh_40x40r2" : "mesh_120x120r2";
    mesh.family = GraphFamily::kKNeighborMesh;
    mesh.scale = smoke ? 40 : 120;
    mesh.a = double(mesh.scale);
    mesh.b = 2;
    mesh.seed = 3;
    specs.push_back(mesh);
  }

  std::vector<SolverRun> runs;
  const std::vector<uint32_t> worker_counts{1, 2, 4};
  for (const GraphSpec& spec : specs) {
    const auto g = generate_graph<uint32_t>(spec);
    const VertexId src = pick_source(g);
    const auto oracle = dijkstra(g, src);
    std::fprintf(stderr, "[perf] %-14s |V|=%u |E|=%zu\n", spec.name.c_str(),
                 g.num_vertices(), size_t(g.num_edges()));

    for (const bool combining : {true, false}) {
      for (const uint32_t workers : worker_counts) {
        AddsHostOptions opts;
        opts.num_workers = workers;
        opts.write_combining = combining;
        opts.combine_capacity = batch;
        // Correctness gate: measured configurations must be exact.
        const auto check = adds_host(g, src, opts);
        if (!validate_distances(check, oracle).ok()) {
          std::fprintf(stderr,
                       "FATAL: adds-host(%s combining=%d workers=%u) "
                       "diverged from Dijkstra\n",
                       spec.name.c_str(), int(combining), workers);
          return 1;
        }
        runs.push_back(measure(
            spec.name,
            combining ? "adds-host" : "adds-host-nocombine", workers,
            combining, reps, [&] { return adds_host(g, src, opts); }));
      }
    }
    for (const uint32_t workers : worker_counts) {
      NearFarHostOptions nf;
      nf.num_threads = workers;
      runs.push_back(measure(spec.name, "nearfar-host", workers, false,
                             reps,
                             [&] { return near_far_host(g, src, nf); }));
    }
    const CpuCostModel cpu{CpuSpec::i9_7900x()};
    runs.push_back(measure(spec.name, "cpu-ds", 1, false, reps, [&] {
      return cpu_delta_stepping(g, src, cpu, {});
    }));
  }

  TextTable solver_table("Host solver throughput (best of " +
                         std::to_string(reps) + ")");
  solver_table.set_header({"graph", "solver", "workers", "wall",
                           "items/s", "pushes/s", "atomics/relax"});
  for (const SolverRun& r : runs) {
    solver_table.add_row(
        {r.graph, r.solver, std::to_string(r.workers),
         fmt_time_us(r.wall_ms * 1e3), fmt_count(uint64_t(r.items_per_s)),
         fmt_count(uint64_t(r.pushes_per_s)),
         r.atomics_per_relaxation > 0
             ? fmt_double(r.atomics_per_relaxation, 4)
             : "-"});
  }
  solver_table.add_footer(
      "adds-host validated against Dijkstra before every measurement");
  solver_table.print();

  std::printf("contended 4-writer push speedup (combined vs single): %s\n",
              fmt_ratio(contended_speedup).c_str());

  // --- JSON artifact --------------------------------------------------------
  std::vector<std::string> micro_elems, run_elems;
  for (const auto& m : micro) micro_elems.push_back(micro_json(m));
  for (const auto& r : runs) run_elems.push_back(run_json(r));
  JsonObj root;
  root.field("schema", std::string("adds-perf-suite-v1"))
      .field("mode", std::string(smoke ? "smoke" : "full"))
      .field("reps", uint64_t(reps))
      .field("combine_batch", uint64_t(batch))
      .field("hw_threads",
             uint64_t(std::thread::hardware_concurrency()))
      .field("contended_push_speedup_4w", contended_speedup)
      .raw("push_micro", json_array(micro_elems))
      .raw("handoff_latency",
           json_array({handoff_json(handoff_poll),
                       handoff_json(handoff_event)}))
      .raw("manager_inline", [&] {
        std::vector<std::string> elems;
        for (const auto& ab : inline_ab) {
          JsonObj o;
          o.field("enabled", ab.enabled)
              .field("wall_ms", ab.wall_ms)
              .field("inline_ranges", ab.inline_ranges)
              .field("inline_items", ab.inline_items);
          elems.push_back(o.str());
        }
        return json_array(elems);
      }())
      .raw("solver_runs", json_array(run_elems));

  // Crash-safe publish: stage + rename so a crash mid-write can never leave
  // a torn BENCH_perf.json behind (the previous run's artifact survives).
  const std::string out_path = cli.str("out");
  write_file_atomic(out_path, root.str() + "\n");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
