// Figure 4: Near-Far execution time against the heuristic constant C
// (Δ = C * avg_weight / avg_degree) for two structurally different graphs.
// The paper's point: both curves are deep U-shapes and their optima are far
// apart, so no static C works for all graphs (§4.3).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "graph/generators.hpp"
#include "sssp/nearfar.hpp"

using namespace adds;

int main(int argc, char** argv) {
  auto cli = bench::make_cli(
      "fig4_delta_constant",
      "Figure 4: NF execution time vs heuristic constant C");
  cli.add_option("max-c-exp", "sweep C over 2^0 .. 2^this", "14");
  if (!cli.parse(argc, argv)) return 0;

  const EngineConfig cfg = corpus_config();
  const int max_exp = int(cli.integer("max-c-exp"));

  CsvWriter csv(cli.str("out") + "/fig4_delta_constant.csv");
  csv.write_header({"graph", "c", "delta", "time_us", "normalized"});

  // The paper uses a road network and an msdoor-like FEM mesh.
  for (const GraphSpec& spec : {road_usa_like(), msdoor_like()}) {
    const auto g = generate_graph<uint32_t>(spec);
    const VertexId source = pick_source(g);
    std::fprintf(stderr, "[fig4] %s: |V|=%llu |E|=%llu\n", spec.name.c_str(),
                 (unsigned long long)g.num_vertices(),
                 (unsigned long long)g.num_edges());

    std::vector<double> cs, times;
    for (int e = 0; e <= max_exp; e += 2) {
      const double c = std::pow(2.0, e);
      NearFarOptions opts;
      opts.heuristic_c = c;
      const auto res = near_far(g, source, cfg.gpu, opts);
      cs.push_back(c);
      times.push_back(res.time_us);
      std::fprintf(stderr, "  C=2^%-2d -> %s\n", e,
                   fmt_time_us(res.time_us).c_str());
    }

    double best = times[0];
    size_t best_i = 0;
    for (size_t i = 1; i < times.size(); ++i)
      if (times[i] < best) best = times[best_i = i];

    TextTable t("Figure 4 series: " + spec.name +
                " (normalized NF time vs C; x labels are powers of 2)");
    std::vector<std::string> header, row;
    for (size_t i = 0; i < cs.size(); ++i) {
      header.push_back("2^" + std::to_string(int(std::log2(cs[i]))));
      row.push_back(fmt_double(times[i] / best, 2));
      csv.write_row({spec.name, fmt_double(cs[i], 0),
                     fmt_double(cs[i] * g.average_weight() /
                                    std::max(1.0, g.average_degree()),
                                1),
                     fmt_double(times[i], 1),
                     fmt_double(times[i] / best, 3)});
    }
    t.set_header(header);
    t.add_row(row);
    t.add_footer("optimal C = " + header[best_i] +
                 "; min time = " + fmt_time_us(best));
    t.print();
  }
  std::printf("Paper's claim: the two optima differ by orders of magnitude "
              "(no single C fits all graphs).\n");
  return 0;
}
