#!/usr/bin/env python3
"""Render the paper's figures from the bench CSV outputs.

Usage:
    python3 bench/plot_figures.py [--out bench_out/plots] [--dir bench_out]

Reads the CSVs written by the bench binaries (run them first) and produces
PNGs mirroring the paper's Figures 4, 7, 8, 9, 10 and 11-15. Requires
matplotlib; everything else in the repository is dependency-free, so this
script degrades to a clear error message when matplotlib is unavailable.
"""
import argparse
import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    if not os.path.exists(path):
        print(f"  [skip] {path} not found — run the bench first")
        return None
    with open(path) as f:
        return list(csv.DictReader(f))


def plot_fig4(plt, rows, out):
    series = defaultdict(list)
    for r in rows:
        series[r["graph"]].append((float(r["c"]), float(r["normalized"])))
    fig, ax = plt.subplots(figsize=(6, 4))
    for name, pts in series.items():
        pts.sort()
        ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                label=name)
    ax.set_xscale("log", base=2)
    ax.set_xlabel("heuristic constant C")
    ax.set_ylabel("NF time (normalized to min)")
    ax.set_title("Figure 4: NF execution time vs constant C")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out)


def plot_fig7(plt, rows, out):
    graphs = sorted({r["graph"] for r in rows})
    fig, axes = plt.subplots(1, len(graphs), figsize=(5 * len(graphs), 4))
    if len(graphs) == 1:
        axes = [axes]
    for ax, g in zip(axes, graphs):
        pts = [(float(r["delta"]), float(r["norm_time"]),
                float(r["norm_work"])) for r in rows if r["graph"] == g]
        pts.sort()
        ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                label="time")
        ax.plot([p[0] for p in pts], [p[2] for p in pts], marker="s",
                label="work")
        ax.set_xscale("log", base=2)
        ax.set_yscale("log")
        ax.set_title(g)
        ax.set_xlabel("delta")
        ax.legend()
    fig.suptitle("Figure 7: time and work vs fixed delta")
    fig.tight_layout()
    fig.savefig(out)


def plot_scatter(plt, rows, xkey, xlabel, title, out, logx=True):
    xs = [float(r[xkey]) for r in rows]
    ys = [float(r["speedup_adds_over_nf"]) for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.scatter(xs, ys, s=12, alpha=0.6)
    ax.axhline(1.0, color="gray", linestyle="--", linewidth=1)
    if logx:
        ax.set_xscale("log")
    ax.set_yscale("log")
    ax.set_xlabel(xlabel)
    ax.set_ylabel("ADDS speedup over NF")
    ax.set_title(title)
    fig.tight_layout()
    fig.savefig(out)


def plot_fig10(plt, rows, out):
    fig, ax = plt.subplots(figsize=(5.5, 5.5))
    xs = [float(r["work_efficiency"]) for r in rows]
    ys = [float(r["speedup"]) for r in rows]
    ax.scatter(xs, ys, s=12, alpha=0.6)
    lo = min(min(xs), min(ys), 0.05)
    hi = max(max(xs), max(ys), 10)
    ax.plot([lo, hi], [lo, hi], color="gray", linestyle="--", linewidth=1,
            label="speedup == work efficiency")
    ax.set_xscale("log")
    ax.set_yscale("log")
    ax.set_xlabel("work efficiency vs NF (inverse vertex-count ratio)")
    ax.set_ylabel("speedup vs NF")
    ax.set_title("Figure 10: speedup vs work efficiency")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out)


def plot_traces(plt, rows, out):
    figs = sorted({r["figure"] for r in rows})
    fig, axes = plt.subplots(len(figs), 1, figsize=(7, 2.6 * len(figs)))
    if len(figs) == 1:
        axes = [axes]
    for ax, f in zip(axes, figs):
        for solver, style in (("adds", "-"), ("nf", "--")):
            pts = [(float(r["t_us"]), float(r["edges_in_flight"]))
                   for r in rows if r["figure"] == f and r["solver"] == solver]
            pts.sort()
            ax.plot([p[0] for p in pts], [p[1] for p in pts], style,
                    label=solver)
        graph = next(r["graph"] for r in rows if r["figure"] == f)
        ax.set_title(f"{f}: {graph}")
        ax.set_ylabel("edges in flight")
        ax.set_yscale("symlog")
        ax.legend()
    axes[-1].set_xlabel("virtual time (us)")
    fig.tight_layout()
    fig.savefig(out)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--dir", default="bench_out")
    ap.add_argument("--out", default=None)
    args = ap.parse_args()
    out_dir = args.out or os.path.join(args.dir, "plots")

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(out_dir, exist_ok=True)
    jobs = [
        ("fig4_delta_constant.csv", plot_fig4, "fig4.png", {}),
        ("fig7_delta_sweep.csv", plot_fig7, "fig7.png", {}),
        ("fig8_speedup_vs_degree.csv",
         lambda plt, rows, out: plot_scatter(
             plt, rows, "avg_degree", "average degree",
             "Figure 8: speedup vs degree", out),
         "fig8.png", {}),
        ("fig9_speedup_vs_diameter.csv",
         lambda plt, rows, out: plot_scatter(
             plt, rows, "diameter", "pseudo-diameter",
             "Figure 9: speedup vs diameter", out),
         "fig9.png", {}),
        ("fig10_correlation.csv", plot_fig10, "fig10.png", {}),
        ("fig11_15_traces.csv", plot_traces, "fig11_15.png", {}),
    ]
    for csv_name, fn, png, _ in jobs:
        rows = read_csv(os.path.join(args.dir, csv_name))
        if rows:
            fn(plt, rows, os.path.join(out_dir, png))
            print(f"  wrote {os.path.join(out_dir, png)}")


if __name__ == "__main__":
    main()
