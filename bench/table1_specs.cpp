// Table 1: hardware specifications of the two evaluation GPUs, plus the
// derived virtual-machine parameters every other bench runs on.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/cost_model.hpp"

using namespace adds;

int main(int argc, char** argv) {
  CliParser cli("table1_specs", "Table 1: hardware specifications");
  if (!cli.parse(argc, argv)) return 0;

  const GpuSpec ti = GpuSpec::rtx2080ti();
  const GpuSpec ga = GpuSpec::rtx3090();

  TextTable t("Table 1: Hardware specifications");
  t.set_header({"", ti.name, ga.name});
  auto row = [&](const std::string& label, auto get) {
    t.add_row({label, get(ti), get(ga)});
  };
  row("SM Count", [](const GpuSpec& s) { return std::to_string(s.sm_count); });
  row("Threads Per SM",
      [](const GpuSpec& s) { return std::to_string(s.threads_per_sm); });
  row("Max Clock Rate",
      [](const GpuSpec& s) { return fmt_double(s.clock_ghz, 2) + " GHz"; });
  row("GDDR6 Bandwidth", [](const GpuSpec& s) {
    return fmt_double(s.dram_bandwidth_gbps, 0) + " GB/s";
  });
  row("DRAM Size",
      [](const GpuSpec& s) { return fmt_double(s.dram_gb, 0) + " GB"; });
  row("L2 Size",
      [](const GpuSpec& s) { return fmt_double(s.l2_mb, 1) + " MB"; });
  row("Scratchpad Per SM", [](const GpuSpec& s) {
    return fmt_double(s.scratchpad_kb_per_sm, 0) + " KB";
  });
  row("Compute Capability",
      [](const GpuSpec& s) { return fmt_double(s.compute_capability, 1); });
  t.print();

  TextTable m("Derived virtual-machine model parameters");
  m.set_header({"", ti.name, ga.name});
  const GpuCostModel mt(ti), mg(ga);
  m.add_row({"hardware threads", fmt_count(ti.hardware_threads()),
             fmt_count(ga.hardware_threads())});
  m.add_row({"worker blocks (256-wide)", fmt_count(ti.worker_blocks()),
             fmt_count(ga.worker_blocks())});
  m.add_row({"peak relaxations/us", fmt_double(mt.cap_edges_per_us(), 0),
             fmt_double(mg.cap_edges_per_us(), 0)});
  m.add_row({"saturation (in-flight edges)",
             fmt_count(uint64_t(mt.saturation_threads())),
             fmt_count(uint64_t(mg.saturation_threads()))});
  m.add_row({"kernel launch overhead", fmt_time_us(mt.kernel_launch_us),
             fmt_time_us(mg.kernel_launch_us)});
  m.print();
  return 0;
}
