# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_builder_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/block_pool_test[1]_include.cmake")
include("/root/repo/build/tests/bucket_test[1]_include.cmake")
include("/root/repo/build/tests/bucket_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/work_queue_test[1]_include.cmake")
include("/root/repo/build/tests/translation_cache_test[1]_include.cmake")
include("/root/repo/build/tests/sharing_pool_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/delta_controller_test[1]_include.cmake")
include("/root/repo/build/tests/sssp_correctness_test[1]_include.cmake")
include("/root/repo/build/tests/sssp_property_test[1]_include.cmake")
include("/root/repo/build/tests/adds_host_stress_test[1]_include.cmake")
include("/root/repo/build/tests/paths_validate_test[1]_include.cmake")
include("/root/repo/build/tests/engine_options_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/queue_model_test[1]_include.cmake")
include("/root/repo/build/tests/astar_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/nearfar_host_test[1]_include.cmake")
