file(REMOVE_RECURSE
  "CMakeFiles/paths_validate_test.dir/paths_validate_test.cpp.o"
  "CMakeFiles/paths_validate_test.dir/paths_validate_test.cpp.o.d"
  "paths_validate_test"
  "paths_validate_test.pdb"
  "paths_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paths_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
