# Empty dependencies file for paths_validate_test.
# This may be replaced when dependencies are built.
