file(REMOVE_RECURSE
  "CMakeFiles/translation_cache_test.dir/translation_cache_test.cpp.o"
  "CMakeFiles/translation_cache_test.dir/translation_cache_test.cpp.o.d"
  "translation_cache_test"
  "translation_cache_test.pdb"
  "translation_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
