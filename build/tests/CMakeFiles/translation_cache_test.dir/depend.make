# Empty dependencies file for translation_cache_test.
# This may be replaced when dependencies are built.
