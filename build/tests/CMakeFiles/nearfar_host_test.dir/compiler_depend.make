# Empty compiler generated dependencies file for nearfar_host_test.
# This may be replaced when dependencies are built.
