file(REMOVE_RECURSE
  "CMakeFiles/nearfar_host_test.dir/nearfar_host_test.cpp.o"
  "CMakeFiles/nearfar_host_test.dir/nearfar_host_test.cpp.o.d"
  "nearfar_host_test"
  "nearfar_host_test.pdb"
  "nearfar_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearfar_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
