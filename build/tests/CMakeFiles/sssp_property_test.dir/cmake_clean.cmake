file(REMOVE_RECURSE
  "CMakeFiles/sssp_property_test.dir/sssp_property_test.cpp.o"
  "CMakeFiles/sssp_property_test.dir/sssp_property_test.cpp.o.d"
  "sssp_property_test"
  "sssp_property_test.pdb"
  "sssp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
