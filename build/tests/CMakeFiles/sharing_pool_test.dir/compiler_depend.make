# Empty compiler generated dependencies file for sharing_pool_test.
# This may be replaced when dependencies are built.
