file(REMOVE_RECURSE
  "CMakeFiles/sharing_pool_test.dir/sharing_pool_test.cpp.o"
  "CMakeFiles/sharing_pool_test.dir/sharing_pool_test.cpp.o.d"
  "sharing_pool_test"
  "sharing_pool_test.pdb"
  "sharing_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
