# Empty compiler generated dependencies file for bucket_concurrent_test.
# This may be replaced when dependencies are built.
