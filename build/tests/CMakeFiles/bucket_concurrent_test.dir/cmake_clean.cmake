file(REMOVE_RECURSE
  "CMakeFiles/bucket_concurrent_test.dir/bucket_concurrent_test.cpp.o"
  "CMakeFiles/bucket_concurrent_test.dir/bucket_concurrent_test.cpp.o.d"
  "bucket_concurrent_test"
  "bucket_concurrent_test.pdb"
  "bucket_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
