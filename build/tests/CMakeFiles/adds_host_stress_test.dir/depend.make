# Empty dependencies file for adds_host_stress_test.
# This may be replaced when dependencies are built.
