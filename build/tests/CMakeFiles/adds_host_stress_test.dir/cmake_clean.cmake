file(REMOVE_RECURSE
  "CMakeFiles/adds_host_stress_test.dir/adds_host_stress_test.cpp.o"
  "CMakeFiles/adds_host_stress_test.dir/adds_host_stress_test.cpp.o.d"
  "adds_host_stress_test"
  "adds_host_stress_test.pdb"
  "adds_host_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adds_host_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
