
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/work_queue_test.cpp" "tests/CMakeFiles/work_queue_test.dir/work_queue_test.cpp.o" "gcc" "tests/CMakeFiles/work_queue_test.dir/work_queue_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sssp/CMakeFiles/adds_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/adds_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
