file(REMOVE_RECURSE
  "CMakeFiles/work_queue_test.dir/work_queue_test.cpp.o"
  "CMakeFiles/work_queue_test.dir/work_queue_test.cpp.o.d"
  "work_queue_test"
  "work_queue_test.pdb"
  "work_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
