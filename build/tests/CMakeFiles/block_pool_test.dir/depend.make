# Empty dependencies file for block_pool_test.
# This may be replaced when dependencies are built.
