file(REMOVE_RECURSE
  "CMakeFiles/block_pool_test.dir/block_pool_test.cpp.o"
  "CMakeFiles/block_pool_test.dir/block_pool_test.cpp.o.d"
  "block_pool_test"
  "block_pool_test.pdb"
  "block_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
