# Empty dependencies file for delta_controller_test.
# This may be replaced when dependencies are built.
