file(REMOVE_RECURSE
  "CMakeFiles/delta_controller_test.dir/delta_controller_test.cpp.o"
  "CMakeFiles/delta_controller_test.dir/delta_controller_test.cpp.o.d"
  "delta_controller_test"
  "delta_controller_test.pdb"
  "delta_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
