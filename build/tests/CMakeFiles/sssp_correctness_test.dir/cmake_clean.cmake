file(REMOVE_RECURSE
  "CMakeFiles/sssp_correctness_test.dir/sssp_correctness_test.cpp.o"
  "CMakeFiles/sssp_correctness_test.dir/sssp_correctness_test.cpp.o.d"
  "sssp_correctness_test"
  "sssp_correctness_test.pdb"
  "sssp_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
