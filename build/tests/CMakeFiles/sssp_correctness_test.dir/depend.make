# Empty dependencies file for sssp_correctness_test.
# This may be replaced when dependencies are built.
