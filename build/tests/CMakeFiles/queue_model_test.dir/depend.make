# Empty dependencies file for queue_model_test.
# This may be replaced when dependencies are built.
