file(REMOVE_RECURSE
  "CMakeFiles/adds_core.dir/analytics.cpp.o"
  "CMakeFiles/adds_core.dir/analytics.cpp.o.d"
  "CMakeFiles/adds_core.dir/experiment.cpp.o"
  "CMakeFiles/adds_core.dir/experiment.cpp.o.d"
  "CMakeFiles/adds_core.dir/paths.cpp.o"
  "CMakeFiles/adds_core.dir/paths.cpp.o.d"
  "CMakeFiles/adds_core.dir/solver.cpp.o"
  "CMakeFiles/adds_core.dir/solver.cpp.o.d"
  "CMakeFiles/adds_core.dir/validate.cpp.o"
  "CMakeFiles/adds_core.dir/validate.cpp.o.d"
  "libadds_core.a"
  "libadds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
