# Empty compiler generated dependencies file for adds_core.
# This may be replaced when dependencies are built.
