file(REMOVE_RECURSE
  "libadds_core.a"
)
