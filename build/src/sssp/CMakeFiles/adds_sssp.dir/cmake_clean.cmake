file(REMOVE_RECURSE
  "CMakeFiles/adds_sssp.dir/adds_host.cpp.o"
  "CMakeFiles/adds_sssp.dir/adds_host.cpp.o.d"
  "CMakeFiles/adds_sssp.dir/adds_sim.cpp.o"
  "CMakeFiles/adds_sssp.dir/adds_sim.cpp.o.d"
  "CMakeFiles/adds_sssp.dir/bellman_ford.cpp.o"
  "CMakeFiles/adds_sssp.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/adds_sssp.dir/cpu_delta_stepping.cpp.o"
  "CMakeFiles/adds_sssp.dir/cpu_delta_stepping.cpp.o.d"
  "CMakeFiles/adds_sssp.dir/delta_controller.cpp.o"
  "CMakeFiles/adds_sssp.dir/delta_controller.cpp.o.d"
  "CMakeFiles/adds_sssp.dir/dijkstra.cpp.o"
  "CMakeFiles/adds_sssp.dir/dijkstra.cpp.o.d"
  "CMakeFiles/adds_sssp.dir/nearfar.cpp.o"
  "CMakeFiles/adds_sssp.dir/nearfar.cpp.o.d"
  "CMakeFiles/adds_sssp.dir/nearfar_host.cpp.o"
  "CMakeFiles/adds_sssp.dir/nearfar_host.cpp.o.d"
  "libadds_sssp.a"
  "libadds_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adds_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
