file(REMOVE_RECURSE
  "libadds_sssp.a"
)
