
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sssp/adds_host.cpp" "src/sssp/CMakeFiles/adds_sssp.dir/adds_host.cpp.o" "gcc" "src/sssp/CMakeFiles/adds_sssp.dir/adds_host.cpp.o.d"
  "/root/repo/src/sssp/adds_sim.cpp" "src/sssp/CMakeFiles/adds_sssp.dir/adds_sim.cpp.o" "gcc" "src/sssp/CMakeFiles/adds_sssp.dir/adds_sim.cpp.o.d"
  "/root/repo/src/sssp/bellman_ford.cpp" "src/sssp/CMakeFiles/adds_sssp.dir/bellman_ford.cpp.o" "gcc" "src/sssp/CMakeFiles/adds_sssp.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/sssp/cpu_delta_stepping.cpp" "src/sssp/CMakeFiles/adds_sssp.dir/cpu_delta_stepping.cpp.o" "gcc" "src/sssp/CMakeFiles/adds_sssp.dir/cpu_delta_stepping.cpp.o.d"
  "/root/repo/src/sssp/delta_controller.cpp" "src/sssp/CMakeFiles/adds_sssp.dir/delta_controller.cpp.o" "gcc" "src/sssp/CMakeFiles/adds_sssp.dir/delta_controller.cpp.o.d"
  "/root/repo/src/sssp/dijkstra.cpp" "src/sssp/CMakeFiles/adds_sssp.dir/dijkstra.cpp.o" "gcc" "src/sssp/CMakeFiles/adds_sssp.dir/dijkstra.cpp.o.d"
  "/root/repo/src/sssp/nearfar.cpp" "src/sssp/CMakeFiles/adds_sssp.dir/nearfar.cpp.o" "gcc" "src/sssp/CMakeFiles/adds_sssp.dir/nearfar.cpp.o.d"
  "/root/repo/src/sssp/nearfar_host.cpp" "src/sssp/CMakeFiles/adds_sssp.dir/nearfar_host.cpp.o" "gcc" "src/sssp/CMakeFiles/adds_sssp.dir/nearfar_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/adds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/adds_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
