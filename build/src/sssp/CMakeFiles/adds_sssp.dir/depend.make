# Empty dependencies file for adds_sssp.
# This may be replaced when dependencies are built.
