file(REMOVE_RECURSE
  "libadds_graph.a"
)
