file(REMOVE_RECURSE
  "CMakeFiles/adds_graph.dir/analysis.cpp.o"
  "CMakeFiles/adds_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/adds_graph.dir/corpus.cpp.o"
  "CMakeFiles/adds_graph.dir/corpus.cpp.o.d"
  "CMakeFiles/adds_graph.dir/dimacs.cpp.o"
  "CMakeFiles/adds_graph.dir/dimacs.cpp.o.d"
  "CMakeFiles/adds_graph.dir/generators.cpp.o"
  "CMakeFiles/adds_graph.dir/generators.cpp.o.d"
  "CMakeFiles/adds_graph.dir/gr_format.cpp.o"
  "CMakeFiles/adds_graph.dir/gr_format.cpp.o.d"
  "CMakeFiles/adds_graph.dir/transform.cpp.o"
  "CMakeFiles/adds_graph.dir/transform.cpp.o.d"
  "libadds_graph.a"
  "libadds_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adds_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
