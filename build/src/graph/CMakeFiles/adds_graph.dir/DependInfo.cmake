
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analysis.cpp" "src/graph/CMakeFiles/adds_graph.dir/analysis.cpp.o" "gcc" "src/graph/CMakeFiles/adds_graph.dir/analysis.cpp.o.d"
  "/root/repo/src/graph/corpus.cpp" "src/graph/CMakeFiles/adds_graph.dir/corpus.cpp.o" "gcc" "src/graph/CMakeFiles/adds_graph.dir/corpus.cpp.o.d"
  "/root/repo/src/graph/dimacs.cpp" "src/graph/CMakeFiles/adds_graph.dir/dimacs.cpp.o" "gcc" "src/graph/CMakeFiles/adds_graph.dir/dimacs.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/adds_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/adds_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/gr_format.cpp" "src/graph/CMakeFiles/adds_graph.dir/gr_format.cpp.o" "gcc" "src/graph/CMakeFiles/adds_graph.dir/gr_format.cpp.o.d"
  "/root/repo/src/graph/transform.cpp" "src/graph/CMakeFiles/adds_graph.dir/transform.cpp.o" "gcc" "src/graph/CMakeFiles/adds_graph.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
