# Empty dependencies file for adds_graph.
# This may be replaced when dependencies are built.
