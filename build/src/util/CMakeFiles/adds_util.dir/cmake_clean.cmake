file(REMOVE_RECURSE
  "CMakeFiles/adds_util.dir/cli.cpp.o"
  "CMakeFiles/adds_util.dir/cli.cpp.o.d"
  "CMakeFiles/adds_util.dir/csv.cpp.o"
  "CMakeFiles/adds_util.dir/csv.cpp.o.d"
  "CMakeFiles/adds_util.dir/log.cpp.o"
  "CMakeFiles/adds_util.dir/log.cpp.o.d"
  "CMakeFiles/adds_util.dir/stats.cpp.o"
  "CMakeFiles/adds_util.dir/stats.cpp.o.d"
  "CMakeFiles/adds_util.dir/table.cpp.o"
  "CMakeFiles/adds_util.dir/table.cpp.o.d"
  "libadds_util.a"
  "libadds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
