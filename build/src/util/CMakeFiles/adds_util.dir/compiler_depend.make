# Empty compiler generated dependencies file for adds_util.
# This may be replaced when dependencies are built.
