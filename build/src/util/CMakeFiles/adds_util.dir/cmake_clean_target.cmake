file(REMOVE_RECURSE
  "libadds_util.a"
)
