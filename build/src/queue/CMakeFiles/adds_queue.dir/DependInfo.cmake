
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queue/block_pool.cpp" "src/queue/CMakeFiles/adds_queue.dir/block_pool.cpp.o" "gcc" "src/queue/CMakeFiles/adds_queue.dir/block_pool.cpp.o.d"
  "/root/repo/src/queue/bucket.cpp" "src/queue/CMakeFiles/adds_queue.dir/bucket.cpp.o" "gcc" "src/queue/CMakeFiles/adds_queue.dir/bucket.cpp.o.d"
  "/root/repo/src/queue/work_queue.cpp" "src/queue/CMakeFiles/adds_queue.dir/work_queue.cpp.o" "gcc" "src/queue/CMakeFiles/adds_queue.dir/work_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
