file(REMOVE_RECURSE
  "CMakeFiles/adds_queue.dir/block_pool.cpp.o"
  "CMakeFiles/adds_queue.dir/block_pool.cpp.o.d"
  "CMakeFiles/adds_queue.dir/bucket.cpp.o"
  "CMakeFiles/adds_queue.dir/bucket.cpp.o.d"
  "CMakeFiles/adds_queue.dir/work_queue.cpp.o"
  "CMakeFiles/adds_queue.dir/work_queue.cpp.o.d"
  "libadds_queue.a"
  "libadds_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adds_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
