# Empty compiler generated dependencies file for adds_queue.
# This may be replaced when dependencies are built.
