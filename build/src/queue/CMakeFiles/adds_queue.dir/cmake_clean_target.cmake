file(REMOVE_RECURSE
  "libadds_queue.a"
)
