file(REMOVE_RECURSE
  "libadds_sim.a"
)
