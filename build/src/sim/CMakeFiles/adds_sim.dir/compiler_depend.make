# Empty compiler generated dependencies file for adds_sim.
# This may be replaced when dependencies are built.
