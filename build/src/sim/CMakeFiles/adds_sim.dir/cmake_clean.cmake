file(REMOVE_RECURSE
  "CMakeFiles/adds_sim.dir/gpu_spec.cpp.o"
  "CMakeFiles/adds_sim.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/adds_sim.dir/trace.cpp.o"
  "CMakeFiles/adds_sim.dir/trace.cpp.o.d"
  "libadds_sim.a"
  "libadds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
