# Empty dependencies file for table5_gpus_ablation.
# This may be replaced when dependencies are built.
