file(REMOVE_RECURSE
  "CMakeFiles/table5_gpus_ablation.dir/bench/table5_gpus_ablation.cpp.o"
  "CMakeFiles/table5_gpus_ablation.dir/bench/table5_gpus_ablation.cpp.o.d"
  "bench/table5_gpus_ablation"
  "bench/table5_gpus_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_gpus_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
