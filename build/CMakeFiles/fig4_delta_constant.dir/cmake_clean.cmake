file(REMOVE_RECURSE
  "CMakeFiles/fig4_delta_constant.dir/bench/fig4_delta_constant.cpp.o"
  "CMakeFiles/fig4_delta_constant.dir/bench/fig4_delta_constant.cpp.o.d"
  "bench/fig4_delta_constant"
  "bench/fig4_delta_constant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_delta_constant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
