# Empty dependencies file for table4_work.
# This may be replaced when dependencies are built.
