file(REMOVE_RECURSE
  "CMakeFiles/table4_work.dir/bench/table4_work.cpp.o"
  "CMakeFiles/table4_work.dir/bench/table4_work.cpp.o.d"
  "bench/table4_work"
  "bench/table4_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
