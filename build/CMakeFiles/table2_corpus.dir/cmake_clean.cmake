file(REMOVE_RECURSE
  "CMakeFiles/table2_corpus.dir/bench/table2_corpus.cpp.o"
  "CMakeFiles/table2_corpus.dir/bench/table2_corpus.cpp.o.d"
  "bench/table2_corpus"
  "bench/table2_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
