file(REMOVE_RECURSE
  "CMakeFiles/fig11_15_traces.dir/bench/fig11_15_traces.cpp.o"
  "CMakeFiles/fig11_15_traces.dir/bench/fig11_15_traces.cpp.o.d"
  "bench/fig11_15_traces"
  "bench/fig11_15_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_15_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
