file(REMOVE_RECURSE
  "CMakeFiles/table3_speedup.dir/bench/table3_speedup.cpp.o"
  "CMakeFiles/table3_speedup.dir/bench/table3_speedup.cpp.o.d"
  "bench/table3_speedup"
  "bench/table3_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
