file(REMOVE_RECURSE
  "CMakeFiles/fig7_delta_sweep.dir/bench/fig7_delta_sweep.cpp.o"
  "CMakeFiles/fig7_delta_sweep.dir/bench/fig7_delta_sweep.cpp.o.d"
  "bench/fig7_delta_sweep"
  "bench/fig7_delta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_delta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
