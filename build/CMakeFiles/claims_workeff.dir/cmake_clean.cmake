file(REMOVE_RECURSE
  "CMakeFiles/claims_workeff.dir/bench/claims_workeff.cpp.o"
  "CMakeFiles/claims_workeff.dir/bench/claims_workeff.cpp.o.d"
  "bench/claims_workeff"
  "bench/claims_workeff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_workeff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
