# Empty compiler generated dependencies file for claims_workeff.
# This may be replaced when dependencies are built.
