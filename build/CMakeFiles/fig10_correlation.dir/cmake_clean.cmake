file(REMOVE_RECURSE
  "CMakeFiles/fig10_correlation.dir/bench/fig10_correlation.cpp.o"
  "CMakeFiles/fig10_correlation.dir/bench/fig10_correlation.cpp.o.d"
  "bench/fig10_correlation"
  "bench/fig10_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
