# Empty dependencies file for queue_micro.
# This may be replaced when dependencies are built.
