file(REMOVE_RECURSE
  "CMakeFiles/queue_micro.dir/bench/queue_micro.cpp.o"
  "CMakeFiles/queue_micro.dir/bench/queue_micro.cpp.o.d"
  "bench/queue_micro"
  "bench/queue_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
