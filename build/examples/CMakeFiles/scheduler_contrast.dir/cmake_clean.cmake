file(REMOVE_RECURSE
  "CMakeFiles/scheduler_contrast.dir/scheduler_contrast.cpp.o"
  "CMakeFiles/scheduler_contrast.dir/scheduler_contrast.cpp.o.d"
  "scheduler_contrast"
  "scheduler_contrast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_contrast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
