# Empty dependencies file for scheduler_contrast.
# This may be replaced when dependencies are built.
