file(REMOVE_RECURSE
  "CMakeFiles/worklist_demo.dir/worklist_demo.cpp.o"
  "CMakeFiles/worklist_demo.dir/worklist_demo.cpp.o.d"
  "worklist_demo"
  "worklist_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worklist_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
