# Empty compiler generated dependencies file for worklist_demo.
# This may be replaced when dependencies are built.
