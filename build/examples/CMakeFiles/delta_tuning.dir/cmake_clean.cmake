file(REMOVE_RECURSE
  "CMakeFiles/delta_tuning.dir/delta_tuning.cpp.o"
  "CMakeFiles/delta_tuning.dir/delta_tuning.cpp.o.d"
  "delta_tuning"
  "delta_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
