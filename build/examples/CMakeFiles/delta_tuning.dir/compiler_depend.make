# Empty compiler generated dependencies file for delta_tuning.
# This may be replaced when dependencies are built.
