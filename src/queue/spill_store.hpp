// Heap-backed overflow store for pool-pressure spills (manager-private).
//
// The block pool is a fixed pre-allocated slab; when it runs low, the
// pressure governor in the host engine drains *published but unassigned*
// ranges out of the coldest tail buckets into this store and recycles
// their blocks — bucket memory degrades from slab to ordinary heap vectors
// instead of the run dying on `BlockPool exhausted`. (Related stepping-
// algorithm queue designs treat bucket memory as elastic for the same
// reason; here elasticity is an overload mode, not the steady state.)
//
// Items are keyed by their absolute priority band: the queue's window
// position plus the logical bucket index at spill time. A band is *ready*
// once the window position has advanced to it — every distance that mapped
// to the band now lies at or below the head bucket's range, so replaying
// its items into the head preserves the schedule up to the approximation
// the queue already accepts (see docs/QUEUE_PROTOCOL.md). Forced drains
// (drain_any) exist for the endgame where only spilled work remains and
// the window has nothing left to advance over.
//
// Single-threaded by contract: only the manager (MTB) touches the store,
// exactly like the allocator it backstops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace adds {

class SpillStore {
 public:
  void add(uint64_t band, uint32_t item) {
    bands_[band].push_back(item);
    ++size_;
    if (size_ > peak_size_) peak_size_ = size_;
  }

  bool empty() const noexcept { return size_ == 0; }
  uint64_t size() const noexcept { return size_; }
  /// High-water mark of heap-resident items (QueueHealth).
  uint64_t peak_size() const noexcept { return peak_size_; }

  /// True when at least one band at or below `head_band` holds items.
  bool ready(uint64_t head_band) const noexcept {
    return size_ > 0 && bands_.begin()->first <= head_band;
  }

  /// Pops up to `max_items` items from ready bands (<= head_band), lowest
  /// band first, invoking fn(item) for each. Returns items drained.
  template <class Fn>
  uint64_t drain_ready(uint64_t head_band, uint64_t max_items, Fn&& fn) {
    uint64_t drained = 0;
    while (drained < max_items && ready(head_band))
      drained += drain_front(max_items - drained, fn);
    return drained;
  }

  /// Pops up to `max_items` items from the lowest bands regardless of the
  /// window position (forced replay when the queue has fully drained and
  /// only spilled work remains). Returns items drained.
  template <class Fn>
  uint64_t drain_any(uint64_t max_items, Fn&& fn) {
    uint64_t drained = 0;
    while (drained < max_items && size_ > 0)
      drained += drain_front(max_items - drained, fn);
    return drained;
  }

 private:
  /// Drains up to `max_items` from the lowest band; erases it when empty.
  template <class Fn>
  uint64_t drain_front(uint64_t max_items, Fn&& fn) {
    auto it = bands_.begin();
    std::vector<uint32_t>& v = it->second;
    uint64_t drained = 0;
    while (drained < max_items && !v.empty()) {
      fn(v.back());
      v.pop_back();
      ++drained;
    }
    size_ -= drained;
    if (v.empty()) bands_.erase(it);
    return drained;
  }

  std::map<uint64_t, std::vector<uint32_t>> bands_;
  uint64_t size_ = 0;
  uint64_t peak_size_ = 0;
};

}  // namespace adds
