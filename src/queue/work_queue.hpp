// The ADDS ordered work queue: a circular window of priority buckets
// (paper §5.1, §5.4).
//
// A fixed set of K buckets (32 in the paper) forms a circular priority
// window. Logical priority 0 (the head) holds the highest-priority work —
// distances in [base_dist, base_dist + delta) — and logical K-1 (the tail)
// additionally absorbs everything beyond the window (*clipping*). When the
// head bucket drains, the window rotates: the head's physical bucket is
// retired (its blocks recycled) and immediately becomes the new tail.
//
// Concurrency: workers push with a racy read of the window parameters
// (base_dist / delta / position). A stale read can only misplace an item
// into a neighbouring priority — the queue is *approximate* by design — and
// the retirement protocol (CWC == resv_ptr) guarantees no item is ever lost:
// a push that lands in a bucket mid-rotation simply joins the new tail.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "queue/bucket.hpp"

namespace adds {

/// Window parameters shared between the manager (writer) and the worker
/// threads (readers). Fields are individually atomic; readers tolerate
/// mixed-version reads (a misplaced priority, never a safety issue).
struct WindowParams {
  std::atomic<uint64_t> position{0};   // total head advances so far
  std::atomic<double> base_dist{0.0};  // lower distance bound of the head
  std::atomic<double> delta{1.0};      // priority range per bucket
};

class WorkQueue {
 public:
  struct Config {
    uint32_t num_buckets = 32;
    BucketConfig bucket;
  };

  WorkQueue(BlockPool& pool, const Config& cfg);

  uint32_t num_buckets() const noexcept {
    return static_cast<uint32_t>(buckets_.size());
  }

  // ---- Priority mapping (shared with the simulator) -----------------------

  /// Logical bucket for a distance under the given window parameters:
  /// floor((dist - base) / delta) clamped to [0, K-1]. Distances below the
  /// window map to the head; distances beyond it clip to the tail.
  static uint32_t logical_index(double dist, double base, double delta,
                                uint32_t num_buckets) noexcept {
    if (!(dist > base)) return 0;
    const double raw = (dist - base) / delta;
    if (raw >= double(num_buckets - 1)) return num_buckets - 1;  // clipped
    return static_cast<uint32_t>(raw);
  }

  // ---- Worker (writer) side -----------------------------------------------

  /// Returned by push() after request_abort(): the item was dropped, no
  /// slot was reserved, nothing was published.
  static constexpr uint32_t kPushAborted = 0xffffffffu;

  /// Pushes a work item with priority `dist` using a racy snapshot of the
  /// window parameters. Returns the logical index used (for stats/tests).
  /// After request_abort() this is a no-op returning kPushAborted — an
  /// aborted queue is in teardown and must not accept new publications.
  uint32_t push(uint32_t item, double dist) noexcept {
    if (abort_.load(std::memory_order_acquire)) return kPushAborted;
    const uint64_t pos = params_.position.load(std::memory_order_acquire);
    const double base = params_.base_dist.load(std::memory_order_relaxed);
    const double delta = params_.delta.load(std::memory_order_relaxed);
    const uint32_t logical =
        logical_index(dist, base, delta, num_buckets());
    physical(pos, logical).push(item);
    return logical;
  }

  /// Outcome of a batched push: which logical bucket the batch landed in
  /// and the atomic-op cost actually paid (for write-combining stats).
  struct BatchToken {
    uint32_t logical = 0;      // logical bucket used (tail-clipped)
    uint32_t published = 0;    // items published (0 when the batch dropped)
    uint32_t publish_ops = 0;  // WCC increments performed
    bool reserved = false;     // a resv_ptr fetch-add was issued
  };

  /// Pushes `count` items that share one priority band in a single
  /// reserve/write/publish round trip (see PushCombiner). The batch is
  /// placed by `dist` under the same racy window snapshot as push(); all
  /// items land in that one bucket, so callers must group items by
  /// priority *before* flushing. After request_abort() this is a no-op
  /// (`published == 0`, `reserved == false`), matching kPushAborted
  /// single-push semantics; a batch dropped mid-flush (abort while waiting
  /// for storage, or an injected fault) reports `reserved` with
  /// `published == 0` — the reservation is abandoned unpublished.
  BatchToken push_batch(const uint32_t* items, uint32_t count,
                        double dist) noexcept {
    BatchToken t;
    if (count == 0) return t;
    if (abort_.load(std::memory_order_acquire)) return t;
    const uint64_t pos = params_.position.load(std::memory_order_acquire);
    const double base = params_.base_dist.load(std::memory_order_relaxed);
    const double delta = params_.delta.load(std::memory_order_relaxed);
    t.logical = logical_index(dist, base, delta, num_buckets());
    t.reserved = true;
    t.publish_ops = physical(pos, t.logical).push_batch(items, count);
    if (t.publish_ops > 0) t.published = count;
    return t;
  }

  /// Direct access for engines that computed the bucket themselves.
  Bucket& physical_bucket(uint32_t phys) noexcept { return *buckets_[phys]; }
  const Bucket& physical_bucket(uint32_t phys) const noexcept {
    return *buckets_[phys];
  }

  // ---- Manager side --------------------------------------------------------

  /// Physical bucket currently holding logical priority `logical`.
  Bucket& logical_bucket(uint32_t logical) noexcept {
    return physical(params_.position.load(std::memory_order_relaxed),
                    logical);
  }
  uint32_t logical_to_physical(uint32_t logical) const noexcept {
    return static_cast<uint32_t>(
        (params_.position.load(std::memory_order_relaxed) + logical) %
        buckets_.size());
  }

  double base_dist() const noexcept {
    return params_.base_dist.load(std::memory_order_relaxed);
  }
  double delta() const noexcept {
    return params_.delta.load(std::memory_order_relaxed);
  }
  uint64_t window_position() const noexcept {
    return params_.position.load(std::memory_order_relaxed);
  }

  /// Manager adjusts Δ (dynamic Δ selection). Takes effect for subsequent
  /// pushes; items already queued keep their buckets (the paper accepts the
  /// resulting priority mixing).
  void set_delta(double delta) noexcept {
    ADDS_ASSERT(delta > 0);
    params_.delta.store(delta, std::memory_order_relaxed);
  }

  void set_base_dist(double base) noexcept {
    params_.base_dist.store(base, std::memory_order_relaxed);
  }

  /// True when the head bucket has no pending, in-flight, or unread work.
  bool head_drained() noexcept { return logical_bucket(0).drained(); }

  /// Retires the drained head bucket and rotates the window: the head's
  /// physical bucket becomes the new tail and base_dist advances by delta.
  /// Returns blocks recycled.
  uint32_t advance_window();

  /// Ensures each bucket has at least `slack` writable slots.
  void ensure_capacity_all(uint32_t slack) {
    for (auto& b : buckets_) b->ensure_capacity(slack);
  }

  /// Error-path teardown: unblocks every writer parked in
  /// wait_allocated (their pending items are dropped) and turns every
  /// subsequent push() into a kPushAborted no-op. The per-bucket event
  /// notification makes the wakeup immediate rather than waiting out a
  /// poll quantum. Irreversible; see docs/QUEUE_PROTOCOL.md §"Abort and
  /// teardown".
  void request_abort() noexcept {
    abort_.store(true, std::memory_order_release);
    for (auto& b : buckets_) b->notify_waiters();
  }
  bool aborted() const noexcept {
    return abort_.load(std::memory_order_acquire);
  }

  /// Quiesced-only reuse hook (docs/QUEUE_PROTOCOL.md §"Reset and reuse"):
  /// rewinds the window to position 0 / base 0 / delta 1, resets every
  /// bucket (returning all mapped blocks to the pool) and clears the abort
  /// flag — including after an aborted run, which is otherwise
  /// irreversible. The caller must guarantee no writer or reader thread
  /// touches the queue concurrently; warm engines reset between queries
  /// with every worker idle-parked. Returns blocks freed.
  uint32_t reset() noexcept;
  /// The shared abort flag (for watchdogs and abort-observing fault
  /// delays; the flag outlives every worker by construction).
  const std::atomic<bool>& abort_flag() const noexcept { return abort_; }

  // ---- Whole-queue statistics (manager side) -------------------------------

  /// Items reserved but not yet handed out, across all buckets.
  uint64_t total_pending() const noexcept;
  /// Items handed out but not completed, across all buckets.
  uint64_t total_in_flight() const noexcept;
  /// Pending estimate for one logical bucket.
  uint32_t pending_of(uint32_t logical) noexcept {
    return logical_bucket(logical).pending_estimate();
  }

 private:
  Bucket& physical(uint64_t pos, uint32_t logical) noexcept {
    return *buckets_[(pos + logical) % buckets_.size()];
  }

  std::vector<std::unique_ptr<Bucket>> buckets_;
  WindowParams params_;
  std::atomic<bool> abort_{false};
};

}  // namespace adds
