// FIFO block memory allocator for bucket storage (paper §5.3).
//
// The queue performs its own memory management out of one large
// pre-allocated slab, split into fixed-size blocks of 32-bit words (64 Ki
// words in the paper; configurable here so tests can exercise wrap-around
// cheaply). Because blocks are only ever used as segments of FIFO queues,
// allocation needs no size classes, no coalescing and no per-block headers —
// just a free stack owned by the single manager thread (the MTB performs all
// memory management; workers never touch the allocator).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/error.hpp"

namespace adds {

/// Identifies one block within the pool. 16 bits, matching the high half of
/// the paper's 32-bit bucket index.
using BlockId = uint16_t;
inline constexpr BlockId kInvalidBlock = 0xffff;

class BlockPool {
 public:
  /// `block_words` must be a power of two (the index split relies on it).
  /// Total slab = num_blocks * block_words * 4 bytes, allocated up front.
  BlockPool(uint32_t num_blocks, uint32_t block_words);

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  uint32_t block_words() const noexcept { return block_words_; }
  uint32_t num_blocks() const noexcept { return num_blocks_; }
  uint32_t free_blocks() const noexcept {
    return static_cast<uint32_t>(free_.size());
  }
  uint32_t blocks_in_use() const noexcept {
    return num_blocks_ - free_blocks();
  }
  /// High-water mark of simultaneously live blocks.
  uint32_t peak_blocks_in_use() const noexcept { return peak_in_use_; }

  /// Rewinds the high-water mark (manager-thread only). Warm engines call
  /// this between queries so each run's QueueHealth reports its own peak
  /// instead of the engine-lifetime maximum; live blocks are unaffected.
  void reset_stats() noexcept { peak_in_use_ = blocks_in_use(); }

  /// Manager-thread only. Throws adds::Error when the pool is exhausted —
  /// sizing the slab is the embedder's responsibility, as on the GPU.
  BlockId allocate();

  /// Manager-thread only. Like allocate() but reports exhaustion as
  /// kInvalidBlock instead of throwing — the pool-pressure governor's
  /// best-effort path, where an empty pool is a survivable state the
  /// caller degrades around (spill) rather than an error. The
  /// `pool.exhausted` fault site makes this path report a dry pool on
  /// demand; the hard-failure site `pool.alloc_fail` still throws here,
  /// preserving its contract of an unrecoverable allocator fault.
  BlockId try_allocate();

  /// Manager-thread only. Double-free is an assertion failure.
  void release(BlockId id);

  /// Raw word storage of a block. Stable for the pool's lifetime.
  uint32_t* block_data(BlockId id) noexcept {
    return slab_.get() + size_t(id) * block_words_;
  }
  const uint32_t* block_data(BlockId id) const noexcept {
    return slab_.get() + size_t(id) * block_words_;
  }

 private:
  uint32_t num_blocks_;
  uint32_t block_words_;
  std::unique_ptr<uint32_t[]> slab_;
  std::vector<BlockId> free_;
  std::vector<bool> live_;  // double-free / double-alloc detection
  uint32_t peak_in_use_ = 0;
};

}  // namespace adds
