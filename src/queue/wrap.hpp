// 32-bit wrapping index arithmetic.
//
// Every queue pointer (resv_ptr, read_ptr, alloc_limit, CWC) is a uint32_t
// that increases monotonically modulo 2^32, exactly as in the paper's GPU
// implementation. Comparisons must therefore be made on signed differences;
// these helpers keep that idiom in one place. The protocol requires that no
// two live pointers ever be more than 2^31 apart.
#pragma once

#include <cstdint>

namespace adds {

/// a < b in wrapping order.
constexpr bool wrap_lt(uint32_t a, uint32_t b) noexcept {
  return static_cast<int32_t>(a - b) < 0;
}

/// a <= b in wrapping order.
constexpr bool wrap_le(uint32_t a, uint32_t b) noexcept {
  return static_cast<int32_t>(a - b) <= 0;
}

/// Number of steps from a to b (b must not be wrap-behind a).
constexpr uint32_t wrap_distance(uint32_t a, uint32_t b) noexcept {
  return b - a;
}

}  // namespace adds
