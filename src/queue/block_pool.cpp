#include "queue/block_pool.hpp"

#include <algorithm>

#include "util/fault.hpp"

namespace adds {

namespace {
constexpr bool is_pow2(uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

BlockPool::BlockPool(uint32_t num_blocks, uint32_t block_words)
    : num_blocks_(num_blocks), block_words_(block_words) {
  ADDS_REQUIRE(num_blocks >= 1 && num_blocks <= kInvalidBlock,
               "block count out of range");
  ADDS_REQUIRE(is_pow2(block_words), "block_words must be a power of two");
  slab_ = std::make_unique<uint32_t[]>(size_t(num_blocks) * block_words);
  free_.reserve(num_blocks);
  // Pop order is ascending block id; purely cosmetic but keeps runs
  // deterministic.
  for (uint32_t i = num_blocks; i > 0; --i)
    free_.push_back(static_cast<BlockId>(i - 1));
  live_.assign(num_blocks, false);
}

BlockId BlockPool::allocate() {
  ADDS_REQUIRE(!fault::fire(fault::Site::kPoolAllocFail),
               "injected fault: pool.alloc_fail");
  ADDS_REQUIRE(!free_.empty(),
               "BlockPool exhausted: blocks_in_use=" +
                   std::to_string(blocks_in_use()) +
                   " peak_blocks_in_use=" + std::to_string(peak_in_use_) +
                   " num_blocks=" + std::to_string(num_blocks_) +
                   "; increase pool size (num_blocks)");
  const BlockId id = free_.back();
  free_.pop_back();
  ADDS_ASSERT_MSG(!live_[id], "allocator invariant: block already live");
  live_[id] = true;
  peak_in_use_ = std::max(peak_in_use_, blocks_in_use());
  return id;
}

BlockId BlockPool::try_allocate() {
  ADDS_REQUIRE(!fault::fire(fault::Site::kPoolAllocFail),
               "injected fault: pool.alloc_fail");
  if (free_.empty() || fault::fire(fault::Site::kPoolExhausted))
    return kInvalidBlock;
  return allocate();
}

void BlockPool::release(BlockId id) {
  ADDS_ASSERT(id < num_blocks_);
  ADDS_ASSERT_MSG(live_[id], "double free of pool block");
  live_[id] = false;
  free_.push_back(id);
}

}  // namespace adds
