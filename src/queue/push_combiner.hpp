// Per-worker push write combining — the host analog of the paper's
// warp-aggregated ENQUEUE (§5.2).
//
// On the GPU, threads of a warp that all improved a vertex elect a leader
// that performs one resv_ptr fetch-add for the whole warp; each thread then
// writes its own slot and the leader publishes once. On host threads the
// equivalent contention killer is temporal rather than spatial: a worker
// *stages* improved vertices in small per-logical-bucket lanes and flushes
// a full lane with a single reserve(B) + B plain stores + one WCC
// increment per covered segment (Bucket::push_batch), instead of paying
// two shared-cache-line atomics per item.
//
// Protocol obligations (docs/QUEUE_PROTOCOL.md §"Write combining"):
//
//   * A staged item is invisible to the manager — no reservation exists
//     for it yet. The worker MUST flush_all() before completing the
//     assignment that spawned the items (before Bucket::complete /
//     AssignmentFlag::done), so that "CWC == resv_ptr implies every
//     spawned item is published" keeps holding.
//   * Lanes are keyed by the logical bucket computed at staging time; a
//     flush re-maps the lane through the *current* window parameters
//     (via WorkQueue::push_batch with a representative distance), so a
//     rotation between staging and flushing misplaces the batch by at
//     most the usual racy-snapshot amount — schedule quality, never
//     correctness.
//   * After WorkQueue::request_abort() a flush drops its items, exactly
//     like the single-item kPushAborted no-op; results are being
//     discarded anyway.
//
// Batched multi-source solves add a lane-binning multisplit on the flush
// path (the host analog of the GPU multisplit primitive): when the query
// carries more than one lane (queue/lane_codec.hpp), a staging lane's
// items are counting-sorted into per-query-lane contiguous segments before
// the batched publish, so a consumer walking the published range relaxes
// runs of same-lane items against one contiguous dist row instead of
// ping-ponging across rows. The split permutes the staged words — it never
// rewrites one: every item leaves the flush with the lane bits it was
// staged with (the no-loss / no-cross-contamination invariant the
// combiner.lane-split fault site exists to attack).
//
// Not thread-safe: one combiner per worker thread, by design.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "queue/lane_codec.hpp"
#include "queue/work_queue.hpp"
#include "util/fault.hpp"

namespace adds {

/// Write-combining accounting, merged into WorkStats by the host engine.
struct CombinerStats {
  uint64_t staged = 0;         // items handed to push()
  uint64_t flushes = 0;        // batch publications attempted
  uint64_t flushed_items = 0;  // items actually published
  uint64_t dropped = 0;        // items lost to abort/fault drops
  uint64_t reserve_ops = 0;    // resv_ptr fetch-adds issued
  uint64_t publish_ops = 0;    // WCC fetch-adds issued
  uint64_t lane_splits = 0;    // multisplit passes (batched queries only)
};

class PushCombiner {
 public:
  /// One lane per logical bucket of `queue`, each holding up to
  /// `lane_capacity` staged items before it auto-flushes.
  /// `query_lanes` > 1 turns on the lane-binning multisplit at flush time
  /// (items carry lane bits per queue/lane_codec.hpp).
  explicit PushCombiner(WorkQueue& queue, uint32_t lane_capacity = 64,
                        uint32_t query_lanes = 1)
      : queue_(queue),
        capacity_(std::max(1u, lane_capacity)),
        query_lanes_(std::min(std::max(1u, query_lanes), kMaxLanes)),
        lanes_(queue.num_buckets()) {
    for (Lane& lane : lanes_) lane.items.resize(capacity_);
    if (query_lanes_ > 1) scratch_.resize(capacity_);
  }

  uint32_t lane_capacity() const noexcept { return capacity_; }
  uint32_t query_lanes() const noexcept { return query_lanes_; }

  /// Stages one item under the current window snapshot; flushes the lane
  /// when it reaches capacity.
  void push(uint32_t item, double dist) {
    const uint32_t logical = WorkQueue::logical_index(
        dist, queue_.base_dist(), queue_.delta(), queue_.num_buckets());
    Lane& lane = lanes_[logical];
    if (lane.count == 0) lane.rep_dist = dist;
    lane.items[lane.count++] = item;
    ++stats_.staged;
    if (lane.count >= capacity_) flush_lane(logical);
  }

  /// Mandatory flush point: publishes every staged item. Must run before
  /// the worker's CWC increment for the assignment that spawned them.
  void flush_all() {
    for (uint32_t l = 0; l < lanes_.size(); ++l) flush_lane(l);
  }

  /// Staged items not yet flushed (all lanes).
  uint32_t staged_pending() const noexcept {
    uint32_t n = 0;
    for (const Lane& lane : lanes_) n += lane.count;
    return n;
  }

  const CombinerStats& stats() const noexcept { return stats_; }

  /// Returns the accumulated counters and zeroes them. Warm engines merge
  /// combiner stats into the per-worker WorkStats after every assignment's
  /// flush_all(), so a combiner that outlives one query never leaks counts
  /// into the next query's accounting.
  CombinerStats take_stats() noexcept {
    CombinerStats s = stats_;
    stats_ = CombinerStats{};
    return s;
  }

  /// The queue the lanes publish into (warm engines re-create the combiner
  /// when the engine rebuilds its queue for a larger graph).
  const WorkQueue* queue() const noexcept { return &queue_; }

 private:
  struct Lane {
    std::vector<uint32_t> items;  // fixed capacity_, first `count` valid
    uint32_t count = 0;
    double rep_dist = 0.0;  // distance of the first staged item
  };

  /// Counting-sort multisplit: permutes `lane`'s first `count` items into
  /// per-query-lane contiguous segments (stable within a segment). The
  /// injected lane-split stall lands between the histogram and the
  /// scatter — the widest window in which a preemption could observe the
  /// half-built permutation — and observes the queue's abort flag so a
  /// chaos stall never out-waits a watchdog.
  void multisplit(Lane& lane) {
    uint32_t counts[kMaxLanes] = {0};
    for (uint32_t i = 0; i < lane.count; ++i)
      ++counts[lane_of(lane.items[i])];
    fault::delay(fault::Site::kLaneSplit, &queue_.abort_flag());
    uint32_t offsets[kMaxLanes];
    uint32_t running = 0;
    for (uint32_t l = 0; l < kMaxLanes; ++l) {
      offsets[l] = running;
      running += counts[l];
    }
    for (uint32_t i = 0; i < lane.count; ++i)
      scratch_[offsets[lane_of(lane.items[i])]++] = lane.items[i];
    lane.items.swap(scratch_);
    ++stats_.lane_splits;
  }

  void flush_lane(uint32_t logical) {
    Lane& lane = lanes_[logical];
    if (lane.count == 0) return;
    if (query_lanes_ > 1 && lane.count > 1) multisplit(lane);
    const WorkQueue::BatchToken t =
        queue_.push_batch(lane.items.data(), lane.count, lane.rep_dist);
    ++stats_.flushes;
    stats_.reserve_ops += t.reserved ? 1 : 0;
    stats_.publish_ops += t.publish_ops;
    stats_.flushed_items += t.published;
    stats_.dropped += lane.count - t.published;
    lane.count = 0;
  }

  WorkQueue& queue_;
  const uint32_t capacity_;
  const uint32_t query_lanes_;
  std::vector<Lane> lanes_;
  std::vector<uint32_t> scratch_;  // multisplit scatter target
  CombinerStats stats_;
};

}  // namespace adds
