#include "queue/work_queue.hpp"

namespace adds {

WorkQueue::WorkQueue(BlockPool& pool, const Config& cfg) {
  ADDS_REQUIRE(cfg.num_buckets >= 2, "work queue needs at least 2 buckets");
  buckets_.reserve(cfg.num_buckets);
  for (uint32_t i = 0; i < cfg.num_buckets; ++i) {
    buckets_.push_back(std::make_unique<Bucket>(pool, cfg.bucket));
    buckets_.back()->set_abort_flag(&abort_);
  }
}

uint32_t WorkQueue::advance_window() {
  Bucket& head = logical_bucket(0);
  const uint32_t freed = head.retire();
  // Order matters for racy pushers: advance the base distance first, then
  // the position. A pusher seeing the old position with the new base places
  // work one bucket too high (toward the head) — harmless; the reverse
  // order could clip fresh head work to the tail.
  params_.base_dist.store(base_dist() + delta(), std::memory_order_relaxed);
  params_.position.store(window_position() + 1, std::memory_order_release);
  return freed;
}

uint32_t WorkQueue::reset() noexcept {
  uint32_t freed = 0;
  for (auto& b : buckets_) freed += b->reset();
  params_.position.store(0, std::memory_order_relaxed);
  params_.base_dist.store(0.0, std::memory_order_relaxed);
  params_.delta.store(1.0, std::memory_order_relaxed);
  // Release-clear last: a writer that acquires a false abort flag must also
  // observe the rewound buckets and window parameters.
  abort_.store(false, std::memory_order_release);
  return freed;
}

uint64_t WorkQueue::total_pending() const noexcept {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b->pending_estimate();
  return total;
}

uint64_t WorkQueue::total_in_flight() const noexcept {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b->in_flight_estimate();
  return total;
}

}  // namespace adds
