// Lane encoding for batched multi-source solves.
//
// The queue layer treats a work item as an opaque uint32_t end to end —
// buckets, spill store, translation cache and combiner never interpret it.
// Batched solves exploit that: a work item becomes (lane, node) packed into
// the one word, where `lane` selects which query of the batch the node
// belongs to. The whole bucket structure is shared by every lane; only the
// endpoints (the relaxation loop and the seeds) encode and decode.
//
//   item = (lane << kLaneShift) | node
//
// kLaneBits = 4 caps a batch at 16 lanes and a batched graph at 2^28
// vertices (268M — far beyond the host engine's serving regime). A
// single-source solve never encodes: lane 0 with the full 32-bit node
// space, bit-for-bit the classic item, so the non-batched path is
// unchanged down to the stored words.
//
// Invariant (docs/QUEUE_PROTOCOL.md §"Lane items"): the scheduler may
// reorder, spill, replay or batch items freely, but nothing between a
// push and its pop rewrites the word — a lane bit pattern pushed is the
// lane bit pattern popped. Lanes cannot cross.
#pragma once

#include <cstdint>

namespace adds {

inline constexpr uint32_t kLaneBits = 4;
inline constexpr uint32_t kMaxLanes = 1u << kLaneBits;          // 16
inline constexpr uint32_t kLaneShift = 32 - kLaneBits;          // 28
inline constexpr uint32_t kLaneNodeMask = (1u << kLaneShift) - 1;
/// Largest vertex count a batched (multi-lane) solve can address.
inline constexpr uint64_t kMaxLaneVertices = uint64_t(kLaneNodeMask) + 1;

inline constexpr uint32_t lane_encode(uint32_t lane, uint32_t node) noexcept {
  return (lane << kLaneShift) | node;
}
inline constexpr uint32_t lane_of(uint32_t item) noexcept {
  return item >> kLaneShift;
}
inline constexpr uint32_t node_of(uint32_t item) noexcept {
  return item & kLaneNodeMask;
}

}  // namespace adds
