#include "queue/bucket.hpp"

#include <algorithm>

namespace adds {

namespace {
constexpr bool is_pow2(uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Bucket::Bucket(BlockPool& pool, const BucketConfig& cfg)
    : pool_(pool),
      block_words_(pool.block_words()),
      segment_words_(cfg.segment_words),
      table_size_(cfg.table_size),
      wcc_size_(cfg.table_size * (pool.block_words() / cfg.segment_words)),
      table_(cfg.table_size),
      wcc_(wcc_size_) {
  ADDS_REQUIRE(is_pow2(segment_words_) && segment_words_ <= block_words_,
               "segment_words must be a power of two <= block_words");
  ADDS_REQUIRE(is_pow2(table_size_), "table_size must be a power of two");
  for (auto& t : table_) t.store(kInvalidBlock, std::memory_order_relaxed);
  for (auto& w : wcc_) w.store(0, std::memory_order_relaxed);
}

Bucket::~Bucket() {
  // Return every still-mapped block so the pool can be reused.
  uint32_t alloc = alloc_limit_.load(std::memory_order_relaxed);
  for (uint32_t base = freed_limit_; wrap_lt(base, alloc);
       base += block_words_) {
    const BlockId b = table_[table_slot(base)].load(std::memory_order_relaxed);
    if (b != kInvalidBlock) pool_.release(b);
  }
}

uint32_t Bucket::reset() noexcept {
  // Same sweep as the destructor: everything mapped in [freed_limit_,
  // alloc_limit_) goes back to the pool. Quiesced by contract, so the
  // relaxed loads read the final values of the previous run.
  uint32_t freed = 0;
  const uint32_t alloc = alloc_limit_.load(std::memory_order_relaxed);
  for (uint32_t base = freed_limit_; wrap_lt(base, alloc);
       base += block_words_) {
    auto& slot = table_[table_slot(base)];
    const BlockId b = slot.load(std::memory_order_relaxed);
    if (b != kInvalidBlock) {
      pool_.release(b);
      ++freed;
    }
  }
  for (auto& t : table_) t.store(kInvalidBlock, std::memory_order_relaxed);
  for (auto& w : wcc_) w.store(0, std::memory_order_relaxed);
  resv_ptr_.store(0, std::memory_order_relaxed);
  cwc_.store(0, std::memory_order_relaxed);
  read_ptr_ = 0;
  freed_limit_ = 0;
  mapped_blocks_ = 0;
  // Release-publish the rewound limit last, mirroring construction order:
  // the next run's writers acquire alloc_limit_ before touching the table.
  alloc_limit_.store(0, std::memory_order_release);
  return freed;
}

uint32_t Bucket::publish(uint32_t start, uint32_t count) noexcept {
  // Fast path: the whole range lies inside one segment — true for every
  // single-item push and for most combiner flushes (lane capacity is
  // usually <= segment_words). One release-increment, no loop setup.
  const uint32_t first_seg_end =
      (start & ~(segment_words_ - 1)) + segment_words_;
  if (start + count <= first_seg_end) {
    wcc_[wcc_slot(start)].fetch_add(count, std::memory_order_release);
    return 1;
  }
  // General path: one release-increment per covered segment. The release
  // ordering makes the preceding item stores visible to whoever acquires
  // the WCC value.
  uint32_t ops = 0;
  while (count > 0) {
    const uint32_t seg_base = start & ~(segment_words_ - 1);
    const uint32_t in_seg =
        std::min(count, seg_base + segment_words_ - start);
    wcc_[wcc_slot(start)].fetch_add(in_seg, std::memory_order_release);
    start += in_seg;
    count -= in_seg;
    ++ops;
  }
  return ops;
}

uint32_t Bucket::ensure_capacity(uint32_t slack, bool best_effort) {
  uint32_t mapped = 0;
  const uint32_t resv = resv_ptr_.load(std::memory_order_relaxed);
  uint32_t alloc = alloc_limit_.load(std::memory_order_relaxed);
  // Signed headroom: writers may have *reserved beyond* the allocated limit
  // (they are spinning in wait_allocated) — that is negative headroom, not
  // a huge unsigned distance.
  while (static_cast<int64_t>(static_cast<int32_t>(alloc - resv)) <
         static_cast<int64_t>(slack)) {
    // The next region to map starts at alloc (always block aligned). Its
    // table slot must have been recycled: the slot's previous occupant
    // covered [alloc - table_size*block_words, ...), which is free iff
    // freed_limit_ has passed its end.
    const uint32_t wrap_span = table_size_ * block_words_;
    const uint32_t prev_region_end = alloc - wrap_span + block_words_;
    if (mapped_blocks_ >= table_size_ &&
        wrap_lt(freed_limit_, prev_region_end)) {
      break;  // table full: writers must wait for consumption to catch up
    }
    const BlockId b = best_effort ? pool_.try_allocate() : pool_.allocate();
    if (b == kInvalidBlock) break;  // pool dry: governed caller spills
    // Zero the WCCs of the region before exposing it to writers.
    const uint32_t first_wcc = wcc_slot(alloc);
    const uint32_t segs = block_words_ / segment_words_;
    for (uint32_t s = 0; s < segs; ++s)
      wcc_[(first_wcc + s) & (wcc_size_ - 1)].store(
          0, std::memory_order_relaxed);
    table_[table_slot(alloc)].store(b, std::memory_order_release);
    alloc += block_words_;
    ++mapped_blocks_;
    ++mapped;
    // Publish the new limit only after the table entry and WCCs are in
    // place; writers acquire alloc_limit_ before touching either.
    alloc_limit_.store(alloc, std::memory_order_release);
  }
  // Wake writers parked on the old limit (no-op when nobody waits).
  if (mapped > 0) notify_waiters();
  return mapped;
}

uint32_t Bucket::shrink_capacity(uint32_t keep_slack) {
  const uint32_t alloc = alloc_limit_.load(std::memory_order_relaxed);
  uint32_t resv = resv_ptr_.load(std::memory_order_relaxed);
  if (wrap_lt(alloc, resv)) return 0;  // starved: nothing above resv mapped
  // Keep the block containing resv + keep_slack; candidates are the whole
  // blocks strictly above it.
  const uint32_t keep_end = resv + keep_slack;
  const uint32_t new_alloc =
      (keep_end + block_words_ - 1) & ~(block_words_ - 1);
  if (!wrap_lt(new_alloc, alloc)) return 0;
  // Publish the lowered limit, then confirm no reservation reached the
  // region being reclaimed (see the handshake comment in the header).
  alloc_limit_.store(new_alloc, std::memory_order_seq_cst);
  resv = resv_ptr_.load(std::memory_order_seq_cst);
  if (wrap_lt(new_alloc, resv)) {
    // A writer raced into the region: restore and bail. Raising the limit
    // is always safe (the table entries were never touched).
    alloc_limit_.store(alloc, std::memory_order_seq_cst);
    notify_waiters();
    return 0;
  }
  uint32_t freed = 0;
  for (uint32_t base = new_alloc; wrap_lt(base, alloc);
       base += block_words_) {
    auto& slot = table_[table_slot(base)];
    const BlockId b = slot.load(std::memory_order_relaxed);
    ADDS_ASSERT(b != kInvalidBlock);
    slot.store(kInvalidBlock, std::memory_order_relaxed);
    pool_.release(b);
    --mapped_blocks_;
    ++freed;
  }
  return freed;
}

uint32_t Bucket::realign_drained() noexcept {
  const uint32_t resv = resv_ptr_.load(std::memory_order_acquire);
  if (resv == freed_limit_) return 0;  // nothing mapped was ever used
  const uint32_t boundary =
      (resv + block_words_ - 1) & ~(block_words_ - 1);
  const uint32_t pad = boundary - resv;
  if (pad == 0) return 0;  // already aligned; normal recycling applies
  if (cwc_.load(std::memory_order_acquire) != resv || read_ptr_ != resv)
    return 0;  // not drained
  // Coverage for the dead slots must exist before they are reserved:
  // a writer racing past the CAS starts exactly at `boundary` and must
  // not be left waiting on capacity accounting that skipped the pad.
  if (wrap_lt(alloc_limit_.load(std::memory_order_relaxed), boundary)) {
    // The straddling block is mapped (resv lies in it), so the limit can
    // always be raised to its end without allocating.
    alloc_limit_.store(boundary, std::memory_order_seq_cst);
  }
  uint32_t expected = resv;
  if (!resv_ptr_.compare_exchange_strong(expected, boundary,
                                         std::memory_order_seq_cst))
    return 0;  // a writer raced a real reservation in; try another tick
  read_ptr_ = boundary;
  complete(pad);  // keep CWC == resv so retire/drain accounting balances
  return pad;
}

uint32_t Bucket::scan_written_bound() noexcept {
  const uint32_t resv = resv_ptr_.load(std::memory_order_acquire);
  uint32_t bound = read_ptr_;
  while (wrap_lt(bound, resv)) {
    const uint32_t seg_base = bound & ~(segment_words_ - 1);
    const uint32_t wcc = wcc_[wcc_slot(bound)].load(std::memory_order_acquire);
    if (wcc == segment_words_) {
      // Fully written segment. WCC == N implies N reservations in this
      // segment, so seg_base + N <= resv and the advance cannot overshoot.
      bound = seg_base + segment_words_;
      continue;
    }
    // Partial segment: it is fully written exactly when every reservation
    // that exists in it has published, i.e. seg_base + WCC == resv_ptr with
    // resv_ptr re-read after a fence so the comparison is not stale
    // (paper §5.2).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const uint32_t resv2 = resv_ptr_.load(std::memory_order_acquire);
    if (seg_base + wcc == resv2 && wrap_le(bound, resv2)) bound = resv2;
    break;
  }
  return bound;
}

bool Bucket::drained() noexcept {
  const uint32_t cwc = cwc_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const uint32_t resv = resv_ptr_.load(std::memory_order_acquire);
  return cwc == resv && read_ptr_ == resv;
}

uint32_t Bucket::recycle_below(uint32_t completed_bound) {
  // No drained() precondition: a writer may race a push into a bucket that
  // the manager just observed drained (the paper's §5.4 head-retirement
  // race). That is safe because only blocks wholly below the completed
  // bound are freed — a racing reservation lands at resv_ptr >= read_ptr >=
  // bound, never in the freed region — and the bucket's counters continue
  // monotonically, so the raced item simply becomes lower-priority work.
  ADDS_ASSERT(wrap_le(completed_bound, read_ptr_));
  uint32_t freed = 0;
  // Every block that ends at or before the bound is consumed and completed.
  while (mapped_blocks_ > 0 &&
         wrap_le(freed_limit_ + block_words_, completed_bound)) {
    auto& slot = table_[table_slot(freed_limit_)];
    const BlockId b = slot.load(std::memory_order_relaxed);
    ADDS_ASSERT(b != kInvalidBlock);
    slot.store(kInvalidBlock, std::memory_order_relaxed);
    pool_.release(b);
    freed_limit_ += block_words_;
    --mapped_blocks_;
    ++freed;
  }
  return freed;
}

}  // namespace adds
