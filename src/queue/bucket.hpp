// One bucket of the ADDS work queue (paper §5.2–§5.4).
//
// A bucket is a circular FIFO of 32-bit work items addressed by a wrapping
// 32-bit index whose high bits select a block (through a translation table
// maintained by the manager) and whose low bits are an offset into that
// block. Concurrency contract — the heart of the paper's SRMW design:
//
//   * MANY writer threads (WTBs) add work: an atomic fetch-add on
//     `resv_ptr` hands each writer a private slot; the writer stores the
//     item and *publishes* it by incrementing the Write-Completed Counter
//     (WCC) of the N-word segment the slot belongs to (release ordering).
//   * ONE manager thread (MTB) reads: it never touches items directly from
//     racing writers; it walks segment WCCs from `read_ptr` to compute a
//     bound below which every slot is known fully written (a segment with
//     WCC == N is complete; a partial segment is complete exactly when
//     segment_base + WCC == resv_ptr re-read after a fence), then hands
//     [read_ptr, bound) ranges out to workers.
//   * Writers never wait for each other; writers wait for the manager only
//     when storage has not been allocated ahead of them (back-pressure).
//   * A Completed-Work Counter (CWC) counts items whose processing has
//     finished; the bucket is retire-able when CWC == resv_ptr (re-checked
//     after a fence) and everything written has been read.
//
// All memory management (mapping blocks into the translation table,
// recycling consumed blocks at retirement) is performed by the manager, as
// in the paper.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "queue/block_pool.hpp"
#include "queue/wrap.hpp"
#include "util/error.hpp"
#include "util/event.hpp"
#include "util/fault.hpp"

namespace adds {

struct BucketConfig {
  uint32_t segment_words = 32;  // N: words covered by one WCC
  uint32_t table_size = 256;    // translation table slots (power of two)
};

class Bucket {
 public:
  /// The pool must outlive the bucket. segment_words and table_size must be
  /// powers of two, with segment_words <= pool.block_words().
  Bucket(BlockPool& pool, const BucketConfig& cfg);
  ~Bucket();

  Bucket(const Bucket&) = delete;
  Bucket& operator=(const Bucket&) = delete;

  // ---- Writer (WTB) side — callable from any thread ----------------------

  /// Reserves `count` consecutive slots; returns the first index. Writers
  /// must then wait_allocated(start + count), write each slot, and publish.
  uint32_t reserve(uint32_t count) noexcept {
    return resv_ptr_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Waits until storage for indices < `end` has been mapped by the
  /// manager. Returns false if the queue was aborted while waiting (the
  /// caller must then drop its write — results are being discarded
  /// anyway). Blocked writers park on the bucket's capacity event:
  /// `ensure_capacity` and `notify_waiters` (the abort path) wake them in
  /// microseconds; the event's safety tick still bounds reaction latency
  /// when the abort flag is flipped without a notify.
  ///
  /// The coverage check loads alloc_limit_ seq_cst (free on mainstream
  /// ISAs): it is one side of the shrink_capacity handshake — see there.
  [[nodiscard]] bool wait_allocated(uint32_t end) const noexcept {
    if (!wrap_lt(alloc_limit_.load(std::memory_order_seq_cst), end))
      return true;
    bool aborted = false;
    capacity_event_.await([&]() noexcept {
      if (abort_flag_ != nullptr &&
          abort_flag_->load(std::memory_order_acquire)) {
        aborted = true;
        return true;
      }
      return !wrap_lt(alloc_limit_.load(std::memory_order_acquire), end);
    });
    return !aborted;
  }

  /// Wakes writers parked in wait_allocated so they re-check their
  /// predicate. Called by ensure_capacity after mapping and by the owner
  /// (WorkQueue) after setting the abort flag.
  void notify_waiters() const noexcept { capacity_event_.notify_all(); }

  /// Wires the shared abort flag (set by WorkQueue) that unblocks writers
  /// when the manager tears the queue down on an error path.
  void set_abort_flag(const std::atomic<bool>* flag) noexcept {
    abort_flag_ = flag;
  }

  /// Stores one item into a reserved slot (no ordering; publish() orders).
  void write(uint32_t idx, uint32_t item) noexcept {
    *slot_ptr(idx) = item;
  }

  /// Publishes `count` consecutive writes starting at `start`: one WCC
  /// increment per covered segment, release-ordered after the stores.
  /// Returns the number of WCC increments performed (the batch path's
  /// atomic-op accounting; a single-item push always returns 1).
  uint32_t publish(uint32_t start, uint32_t count) noexcept;

  /// reserve + wait + write + publish for a single item. On abort the item
  /// is dropped (a reserved-but-never-published slot; the scan will treat
  /// the segment as incomplete, which no longer matters once aborted).
  ///
  /// Fault sites (no-ops unless a FaultPlan is armed — util/fault.hpp):
  /// `push.drop-before-publish` loses the reservation without publishing,
  /// wedging the segment scan exactly like a crashed writer; `push.delay`
  /// widens the write→publish window to stress the partial-segment scan.
  void push(uint32_t item) noexcept {
    const uint32_t idx = reserve(1);
    if (!wait_allocated(idx + 1)) return;
    if (fault::fire(fault::Site::kPushDropBeforePublish)) return;
    write(idx, item);
    fault::delay(fault::Site::kPushDelay, abort_flag_);
    publish(idx, 1);
  }

  /// Batched push: one reserve(count) + `count` plain stores + one
  /// publish() covering every touched segment — the write-combined
  /// counterpart of push() (the CPU analog of the paper's warp-aggregated
  /// ENQUEUE). Returns the number of WCC increments performed, or 0 when
  /// the whole batch was dropped: either the queue aborted while waiting
  /// for storage, or `push.drop-before-publish` fired, which abandons the
  /// *entire* reservation unpublished — wedging the segment scan exactly
  /// like a writer that crashed mid-batch. `push.delay` widens the
  /// write→publish window for the whole batch at once.
  uint32_t push_batch(const uint32_t* items, uint32_t count) noexcept {
    if (count == 0) return 0;
    const uint32_t start = reserve(count);
    if (!wait_allocated(start + count)) return 0;
    if (fault::fire(fault::Site::kPushDropBeforePublish)) return 0;
    for (uint32_t i = 0; i < count; ++i) write(start + i, items[i]);
    fault::delay(fault::Site::kPushDelay, abort_flag_);
    return publish(start, count);
  }

  /// Work completion: processing of `count` previously assigned items done.
  void complete(uint32_t count) noexcept {
    cwc_.fetch_add(count, std::memory_order_release);
  }

  // ---- Manager (MTB) side — single thread only ----------------------------

  /// Ensures at least `slack` writable slots exist beyond resv_ptr by
  /// mapping new blocks. Limited by translation-table wrap (a slot can only
  /// be remapped once its previous block was recycled) and pool capacity.
  /// With `best_effort` an exhausted pool stops the mapping loop instead of
  /// throwing (the pressure governor's path: the manager spills and
  /// retries); without it exhaustion throws adds::Error as before.
  /// Returns the number of blocks newly mapped.
  uint32_t ensure_capacity(uint32_t slack, bool best_effort = false);

  /// Unmaps whole blocks of *unreserved* capacity from the top of the
  /// allocation window, keeping at least `keep_slack` writable slots, and
  /// returns them to the pool — the pressure governor's reclaim for slack
  /// that was mapped ahead of demand and then went cold. Returns blocks
  /// freed.
  ///
  /// Safety handshake with racing writers (all four operations seq_cst,
  /// which costs nothing on the coverage-check load): the manager lowers
  /// alloc_limit_ first, then re-reads resv_ptr_. A writer reserves
  /// (an RMW on resv_ptr_) and then checks coverage (a load of
  /// alloc_limit_). In the single total order of seq_cst operations either
  /// the writer's RMW precedes the manager's re-read — the manager sees the
  /// reservation, restores the old limit and frees nothing — or the
  /// manager's re-read precedes the RMW, in which case the lowered store
  /// also precedes the writer's coverage load, the writer observes the
  /// lowered limit and parks. Either way no writer ever holds coverage
  /// inside a freed block.
  uint32_t shrink_capacity(uint32_t keep_slack);

  /// Realigns a *drained* bucket (cwc == read == resv) to the next block
  /// boundary so the block containing resv_ptr — otherwise pinned forever,
  /// because recycling only frees blocks wholly below the completed bound —
  /// becomes recyclable. The dead slots in [old resv, boundary) are skipped:
  /// read_ptr jumps over them and the CWC is padded by the same amount, so
  /// the drained/retire accounting stays balanced. The caller must feed the
  /// returned pad through its completion-frontier bookkeeping (as a
  /// completed range starting at the pre-call read_ptr) and then recycle.
  ///
  /// Returns the pad (0: bucket not drained, already aligned, or a writer
  /// raced a reservation in — all no-ops). Safe against racing writers: the
  /// jump is a CAS on resv_ptr from the drained value, so a concurrent
  /// reservation either lands before (CAS fails, nothing happens) or after
  /// (it starts at the boundary, outside the region being retired).
  uint32_t realign_drained() noexcept;

  /// Manager-side non-blocking batched push, used to replay spilled items.
  /// Reserves via CAS only when `alloc_limit` already covers the whole
  /// batch, so the caller can never end up in wait_allocated — essential
  /// for the manager, which must not block on capacity only it can map.
  /// (A racing worker fetch-add just fails the CAS; `alloc_limit` is
  /// monotone, so a successful CAS implies coverage of the claimed range.)
  /// Returns the WCC increments performed, or 0 when capacity is currently
  /// insufficient — the caller maps more blocks or keeps the items spilled.
  uint32_t try_push_batch(const uint32_t* items, uint32_t count) noexcept {
    if (count == 0) return 0;
    uint32_t resv = resv_ptr_.load(std::memory_order_relaxed);
    for (;;) {
      if (wrap_lt(alloc_limit_.load(std::memory_order_acquire),
                  resv + count))
        return 0;
      if (resv_ptr_.compare_exchange_weak(resv, resv + count,
                                          std::memory_order_relaxed))
        break;
    }
    for (uint32_t i = 0; i < count; ++i) write(resv + i, items[i]);
    return publish(resv, count);
  }

  /// Computes the largest index bound such that every slot in
  /// [read_ptr, bound) is known fully written. Does not modify read_ptr.
  uint32_t scan_written_bound() noexcept;

  /// Marks [read_ptr, new_read) as handed out to workers.
  void advance_read(uint32_t new_read) noexcept {
    ADDS_ASSERT(wrap_le(read_ptr_, new_read));
    read_ptr_ = new_read;
  }

  /// True when every reserved item has been written, read, and completed.
  bool drained() noexcept;

  /// Recycles every block that lies wholly below `completed_bound`. The
  /// caller (manager) must guarantee that every item below the bound has
  /// been *completed* — i.e. no worker will read that range again. The
  /// bound must not exceed read_ptr. This is what keeps writers live when
  /// the translation window wraps mid-bucket: consumed-and-completed blocks
  /// are returned without waiting for a full drain. Returns blocks freed.
  uint32_t recycle_below(uint32_t completed_bound);

  /// Recycles every block wholly below read_ptr. Call when the window
  /// retires this bucket — the manager observed it drained, so no assigned
  /// range (all completed) still points below read_ptr. A concurrent racing
  /// push is tolerated: it lands at resv_ptr >= read_ptr, outside the freed
  /// region, and becomes tail work after rotation. Returns blocks freed.
  uint32_t retire() { return recycle_below(read_ptr_); }

  /// Quiesced-only reuse hook (warm engines — docs/QUEUE_PROTOCOL.md
  /// §"Reset and reuse"): returns every still-mapped block to the pool and
  /// rewinds all counters, translation entries and WCCs to the
  /// freshly-constructed state. The caller must guarantee that no writer
  /// or reader thread touches the bucket concurrently — there is no
  /// handshake here; reset between runs, with every worker idle-parked.
  /// The abort-flag wiring survives the reset. Returns blocks freed.
  uint32_t reset() noexcept;

  // ---- Shared read access -------------------------------------------------

  /// Reads a published item. Safe for the manager after scan_written_bound()
  /// covered `idx`, and for workers on ranges received through an
  /// assignment flag (the flag handshake transfers visibility).
  uint32_t read_item(uint32_t idx) const noexcept { return *slot_ptr(idx); }

  // ---- Introspection ------------------------------------------------------

  uint32_t read_ptr() const noexcept { return read_ptr_; }
  uint32_t resv_ptr_relaxed() const noexcept {
    return resv_ptr_.load(std::memory_order_relaxed);
  }
  uint32_t cwc_relaxed() const noexcept {
    return cwc_.load(std::memory_order_relaxed);
  }
  /// Items reserved but not yet handed to workers (size estimate).
  uint32_t pending_estimate() const noexcept {
    return wrap_distance(read_ptr_, resv_ptr_relaxed());
  }
  /// Items handed to workers but not completed.
  uint32_t in_flight_estimate() const noexcept {
    return wrap_distance(cwc_.load(std::memory_order_relaxed), read_ptr_);
  }
  /// Slots currently writable without waiting for the manager (0 when
  /// writers have reserved past the allocated limit).
  uint32_t writable_slack() const noexcept {
    const int32_t head =
        int32_t(alloc_limit_.load(std::memory_order_relaxed) -
                resv_ptr_.load(std::memory_order_relaxed));
    return head > 0 ? uint32_t(head) : 0;
  }
  /// True when writers have reserved past the allocated limit — they are
  /// parked in wait_allocated until the manager maps more blocks. The
  /// pressure governor treats a starved bucket as the strongest spill
  /// trigger.
  bool writers_starved() const noexcept {
    return wrap_lt(alloc_limit_.load(std::memory_order_relaxed),
                   resv_ptr_.load(std::memory_order_relaxed));
  }
  uint32_t mapped_blocks() const noexcept { return mapped_blocks_; }
  uint32_t segment_words() const noexcept { return segment_words_; }
  uint32_t block_words() const noexcept { return block_words_; }

  /// Base pointer of the block containing `idx` (for translation caches).
  const uint32_t* block_base(uint32_t idx) const noexcept {
    const BlockId b =
        table_[table_slot(idx)].load(std::memory_order_relaxed);
    return pool_.block_data(b);
  }

 private:
  // Index geometry. idx -> table slot via block number; idx -> WCC slot via
  // segment number. Both wrap with period table_size * block_words.
  uint32_t table_slot(uint32_t idx) const noexcept {
    return (idx / block_words_) & (table_size_ - 1);
  }
  uint32_t wcc_slot(uint32_t idx) const noexcept {
    return (idx / segment_words_) & (wcc_size_ - 1);
  }

  uint32_t* slot_ptr(uint32_t idx) const noexcept {
    const BlockId b =
        table_[table_slot(idx)].load(std::memory_order_relaxed);
    return pool_.block_data(b) + (idx & (block_words_ - 1));
  }

  BlockPool& pool_;
  const uint32_t block_words_;
  const uint32_t segment_words_;
  const uint32_t table_size_;
  const uint32_t wcc_size_;  // table_size * block_words / segment_words

  // Writer-shared state.
  std::atomic<uint32_t> resv_ptr_{0};
  std::atomic<uint32_t> alloc_limit_{0};
  std::atomic<uint32_t> cwc_{0};
  std::vector<std::atomic<BlockId>> table_;
  std::vector<std::atomic<uint32_t>> wcc_;

  // Manager-private state.
  uint32_t read_ptr_ = 0;
  uint32_t freed_limit_ = 0;  // block-aligned; blocks below are recycled
  uint32_t mapped_blocks_ = 0;

  // Optional shared teardown signal (see set_abort_flag).
  const std::atomic<bool>* abort_flag_ = nullptr;

  // Wakes writers parked in wait_allocated (capacity mapped, or abort).
  // Mutable: waiting on a const bucket does not change queue state.
  mutable Event capacity_event_;
};

}  // namespace adds
