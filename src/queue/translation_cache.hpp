// Direct-mapped index-translation cache (paper §5.3).
//
// Bucket item access costs an extra indirection through the translation
// table; on the GPU the paper amortizes it with small direct-mapped caches
// in scratchpad memory, one per WTB and one for the MTB, tagged by the high
// half of the 32-bit index. This is the host equivalent: it caches the
// resolved block base pointer per (index >> block_shift) tag.
//
// Validity: a cached block pointer is stable until the block is recycled,
// which only happens when the bucket retires; a worker therefore resets its
// cache at the start of each assignment (its bucket cannot retire while its
// own completion count is outstanding).
#pragma once

#include <array>
#include <cstdint>

#include "queue/bucket.hpp"

namespace adds {

template <uint32_t kEntries = 8>
class TranslationCache {
  static_assert((kEntries & (kEntries - 1)) == 0,
                "cache size must be a power of two");

 public:
  void reset() noexcept {
    tags_.fill(kEmptyTag);
    hits_ = 0;
    misses_ = 0;
  }

  /// Reads a published item of `bucket` at `idx`, caching the block
  /// resolution.
  uint32_t read(const Bucket& bucket, uint32_t idx) noexcept {
    const uint32_t block_words = bucket_block_words(bucket);
    const uint32_t tag = idx / block_words;
    const uint32_t way = tag & (kEntries - 1);
    if (tags_[way] != tag) {
      // Miss: resolve through the bucket's translation table.
      base_[way] = bucket_block_base(bucket, idx);
      tags_[way] = tag;
      ++misses_;
    } else {
      ++hits_;
    }
    return base_[way][idx & (block_words - 1)];
  }

  uint64_t hits() const noexcept { return hits_; }
  uint64_t misses() const noexcept { return misses_; }

 private:
  static constexpr uint32_t kEmptyTag = 0xffffffffu;

  // Thin accessors kept out of Bucket's public surface.
  static uint32_t bucket_block_words(const Bucket& b) noexcept {
    return b.block_words();
  }
  static const uint32_t* bucket_block_base(const Bucket& b,
                                           uint32_t idx) noexcept {
    return b.block_base(idx);
  }

  std::array<uint32_t, kEntries> tags_{};
  std::array<const uint32_t*, kEntries> base_{};
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace adds
