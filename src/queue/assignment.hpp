// Per-worker assignment flags (paper §5.1, Figure 5).
//
// The manager hands work to workers through a dedicated flag per worker
// thread block: besides the idle/busy state it carries the location and size
// of the assigned item range. Each worker polls only its own flag, so there
// is no contention between workers, and the acquire/release handshake on the
// state word transfers visibility of both the assignment fields and the
// published queue items.
//
// Waiting is event-driven: an idle worker parks on the flag's eventcount
// (util/event.hpp) in wait(), and assign()/terminate() wake it directly —
// a handoff costs microseconds instead of the old capped-backoff sleep
// quantum. The non-blocking poll() remains for callers that interleave the
// flag with other work.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "util/event.hpp"

namespace adds {

/// A contiguous range of published items in one physical bucket.
struct Assignment {
  uint32_t phys_bucket = 0;
  uint32_t start = 0;  // wrapping bucket index
  uint32_t count = 0;
};

class AssignmentFlag {
 public:
  enum State : uint32_t { kIdle = 0, kAssigned = 1, kTerminate = 2 };

  // ---- Manager side -------------------------------------------------------

  bool is_idle() const noexcept {
    return state_.load(std::memory_order_acquire) == kIdle;
  }

  /// Precondition: is_idle(). Publishes `a` to the worker and wakes it.
  void assign(const Assignment& a) noexcept {
    assignment_ = a;
    state_.store(kAssigned, std::memory_order_release);
    event_.notify_all();
  }

  /// Tells the worker to exit once it next polls; wakes a parked worker.
  void terminate() noexcept {
    state_.store(kTerminate, std::memory_order_release);
    event_.notify_all();
  }

  /// Optional event notified when the worker returns to idle, so a parked
  /// manager learns of completions without polling. The pointee must
  /// outlive the worker. Atomic because a warm engine rebinds it per query
  /// after observing idle, while the previous done()'s trailing notify
  /// read may still be in flight — the worker then notifies the *new*
  /// event, which is harmless (eventcount waiters re-check their
  /// predicate), but the pointer read/write itself must not tear.
  void set_done_event(Event* e) noexcept {
    done_event_.store(e, std::memory_order_release);
  }

  // ---- Worker side --------------------------------------------------------

  /// Non-blocking poll. nullopt when idle; an empty Assignment (count == 0
  /// convention is never used by the manager) signals nothing; termination
  /// is reported through `should_exit`.
  std::optional<Assignment> poll(bool& should_exit) noexcept {
    const uint32_t s = state_.load(std::memory_order_acquire);
    if (s == kTerminate) {
      should_exit = true;
      return std::nullopt;
    }
    should_exit = false;
    if (s != kAssigned) return std::nullopt;
    return assignment_;
  }

  /// Blocking poll: parks on the flag's event until the state leaves idle,
  /// then reports like poll(). The idle worker's wait loop.
  std::optional<Assignment> wait(bool& should_exit) noexcept {
    event_.await([this]() noexcept {
      return state_.load(std::memory_order_acquire) != kIdle;
    });
    return poll(should_exit);
  }

  /// Worker finished the current assignment; flag returns to idle. A CAS,
  /// not a store: terminate() may land while the worker is mid-assignment,
  /// and a blind kIdle store would clobber it — the worker would then park
  /// in wait() forever while the manager blocks in join. If the CAS loses
  /// to a racing terminate the flag stays kTerminate and the worker's next
  /// wait()/poll() reports should_exit.
  void done() noexcept {
    uint32_t expected = kAssigned;
    state_.compare_exchange_strong(expected, kIdle, std::memory_order_release,
                                   std::memory_order_relaxed);
    if (Event* ev = done_event_.load(std::memory_order_acquire))
      ev->notify_all();
  }

 private:
  std::atomic<uint32_t> state_{kIdle};
  Assignment assignment_{};
  Event event_;
  std::atomic<Event*> done_event_{nullptr};
};

}  // namespace adds
