// Per-worker assignment flags (paper §5.1, Figure 5).
//
// The manager hands work to workers through a dedicated flag per worker
// thread block: besides the idle/busy state it carries the location and size
// of the assigned item range. Each worker polls only its own flag, so there
// is no contention between workers, and the acquire/release handshake on the
// state word transfers visibility of both the assignment fields and the
// published queue items.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

namespace adds {

/// A contiguous range of published items in one physical bucket.
struct Assignment {
  uint32_t phys_bucket = 0;
  uint32_t start = 0;  // wrapping bucket index
  uint32_t count = 0;
};

class AssignmentFlag {
 public:
  enum State : uint32_t { kIdle = 0, kAssigned = 1, kTerminate = 2 };

  // ---- Manager side -------------------------------------------------------

  bool is_idle() const noexcept {
    return state_.load(std::memory_order_acquire) == kIdle;
  }

  /// Precondition: is_idle(). Publishes `a` to the worker.
  void assign(const Assignment& a) noexcept {
    assignment_ = a;
    state_.store(kAssigned, std::memory_order_release);
  }

  /// Tells the worker to exit once it next polls.
  void terminate() noexcept {
    state_.store(kTerminate, std::memory_order_release);
  }

  // ---- Worker side --------------------------------------------------------

  /// Non-blocking poll. nullopt when idle; an empty Assignment (count == 0
  /// convention is never used by the manager) signals nothing; termination
  /// is reported through `should_exit`.
  std::optional<Assignment> poll(bool& should_exit) noexcept {
    const uint32_t s = state_.load(std::memory_order_acquire);
    if (s == kTerminate) {
      should_exit = true;
      return std::nullopt;
    }
    should_exit = false;
    if (s != kAssigned) return std::nullopt;
    return assignment_;
  }

  /// Worker finished the current assignment; flag returns to idle.
  void done() noexcept { state_.store(kIdle, std::memory_order_release); }

 private:
  std::atomic<uint32_t> state_{kIdle};
  Assignment assignment_{};
};

}  // namespace adds
