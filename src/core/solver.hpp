// Unified solver interface over the seven SSSP engines.
//
// This is the main entry point for library users:
//
//   auto g = adds::make_grid_road<uint32_t>(...);
//   adds::EngineConfig cfg;                       // models default machines
//   auto res = adds::run_solver(adds::SolverKind::kAdds, g, source, cfg);
//
// Benches and examples select engines by SolverKind or by name.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sim/cost_model.hpp"
#include "sssp/adds.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/cpu_delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/nearfar.hpp"
#include "sssp/nearfar_host.hpp"

namespace adds {

enum class SolverKind : uint8_t {
  kAdds,      // this paper (sim engine)
  kAddsHost,  // this paper (real-thread engine)
  kNfHost,    // Near-Far on real threads (BSP, double buffered)
  kNf,        // LonestarGPU Near-Far
  kGunNf,     // Gunrock Near-Far
  kGunBf,     // Gunrock Bellman-Ford
  kNv,        // nvGRAPH-like dense SSSP
  kCpuDs,     // Galois CPU delta-stepping
  kDijkstra,  // serial Dijkstra
};

const char* solver_name(SolverKind k);
std::optional<SolverKind> parse_solver(const std::string& name);
/// All kinds, in the paper's table order.
std::vector<SolverKind> all_solvers();
/// The GPU baselines ADDS is compared against in Table 3.
std::vector<SolverKind> gpu_baselines();

/// Machine models + per-engine options used by run_solver.
struct EngineConfig {
  GpuCostModel gpu{GpuSpec::rtx2080ti()};
  CpuCostModel cpu{CpuSpec::i9_7900x()};
  AddsOptions adds;
  AddsHostOptions adds_host;
  NearFarOptions near_far;
  NearFarHostOptions near_far_host;
  BellmanFordOptions bellman_ford;
  CpuDeltaSteppingOptions cpu_ds;
};

template <WeightType W>
SsspResult<W> run_solver(SolverKind kind, const CsrGraph<W>& g,
                         VertexId source, const EngineConfig& cfg);

extern template SsspResult<uint32_t> run_solver<uint32_t>(
    SolverKind, const CsrGraph<uint32_t>&, VertexId, const EngineConfig&);
extern template SsspResult<float> run_solver<float>(SolverKind,
                                                    const CsrGraph<float>&,
                                                    VertexId,
                                                    const EngineConfig&);

}  // namespace adds
