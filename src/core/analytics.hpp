// Graph analytics built on SSSP — the downstream computations the paper's
// introduction motivates (routing, network analysis). All functions consume
// any engine's SsspResult distances, so the same analytics run on Dijkstra,
// ADDS-sim or the host-thread engine interchangeably.
#pragma once

#include <cstdint>
#include <vector>

#include "core/solver.hpp"
#include "graph/csr_graph.hpp"
#include "util/stats.hpp"

namespace adds {

/// Closeness centrality of `source`: (reached - 1) / sum of distances to
/// reached vertices (0 when nothing else is reached). Uses the standard
/// Wasserman-Faust form restricted to the reachable set.
template <WeightType W>
double closeness_centrality(const std::vector<DistT<W>>& dist,
                            VertexId source);

/// Weighted eccentricity of the source: max finite distance.
template <WeightType W>
double eccentricity(const std::vector<DistT<W>>& dist);

/// Histogram of finite distances in `bins` equal-width buckets over
/// [0, max]. Returns per-bin counts; unreachable vertices are excluded.
template <WeightType W>
std::vector<uint64_t> distance_histogram(const std::vector<DistT<W>>& dist,
                                         size_t bins);

/// Connected components of the *symmetrized* adjacency structure (union of
/// out-edges both ways). Returns component id per vertex (ids are dense,
/// smallest-vertex order) and sizes per component.
template <WeightType W>
std::pair<std::vector<uint32_t>, std::vector<uint64_t>>
connected_components(const CsrGraph<W>& g);

/// Sampling estimate of the weighted average shortest-path length: runs
/// `samples` SSSPs with the given solver from deterministic pseudo-random
/// sources and averages finite pairwise distances.
template <WeightType W>
struct AvgPathLength {
  double mean_distance = 0.0;
  double mean_eccentricity = 0.0;
  double mean_reach_fraction = 0.0;
  uint64_t ssps_run = 0;
};

template <WeightType W>
AvgPathLength<W> estimate_avg_path_length(const CsrGraph<W>& g,
                                          SolverKind solver,
                                          const EngineConfig& cfg,
                                          uint32_t samples, uint64_t seed);

#define ADDS_EXTERN_ANALYTICS(W)                                           \
  extern template double closeness_centrality<W>(                          \
      const std::vector<DistT<W>>&, VertexId);                             \
  extern template double eccentricity<W>(const std::vector<DistT<W>>&);    \
  extern template std::vector<uint64_t> distance_histogram<W>(             \
      const std::vector<DistT<W>>&, size_t);                               \
  extern template std::pair<std::vector<uint32_t>, std::vector<uint64_t>>  \
  connected_components<W>(const CsrGraph<W>&);                             \
  extern template AvgPathLength<W> estimate_avg_path_length<W>(            \
      const CsrGraph<W>&, SolverKind, const EngineConfig&, uint32_t,       \
      uint64_t);
ADDS_EXTERN_ANALYTICS(uint32_t)
ADDS_EXTERN_ANALYTICS(float)
#undef ADDS_EXTERN_ANALYTICS

}  // namespace adds
