#include "core/experiment.hpp"

#include <cctype>
#include <cstring>
#include <cstdio>
#include <fstream>

#include "core/validate.hpp"
#include "graph/generators.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace adds {

template <WeightType W>
std::vector<GraphRunRecord> run_corpus_t(const std::vector<GraphSpec>& specs,
                                         const CorpusRunOptions& opts) {
  std::vector<GraphRunRecord> records;
  records.reserve(specs.size());
  WallTimer total;

  size_t index = 0;
  for (const GraphSpec& spec : specs) {
    ++index;
    GraphRunRecord rec;
    rec.spec = spec;
    const auto graph = generate_graph<W>(spec);
    rec.summary = summarize(graph);
    const VertexId source = rec.summary.source;

    // Oracle first.
    const auto oracle = dijkstra(graph, source, &opts.config.cpu);
    {
      SolverOutcome o;
      o.time_us = oracle.time_us;
      o.work = oracle.work;
      rec.outcomes[oracle.solver] = o;
    }

    for (const SolverKind kind : opts.solvers) {
      if (kind == SolverKind::kDijkstra) continue;  // already run
      const auto res = run_solver(kind, graph, source, opts.config);
      SolverOutcome o;
      o.time_us = res.time_us;
      o.work = res.work;
      o.supersteps = res.supersteps;
      if (opts.validate) {
        const auto rep = validate_distances(res, oracle);
        o.valid = rep.ok();
        if (!o.valid)
          ADDS_LOG_ERROR("%s INVALID on %s: %s", res.solver.c_str(),
                         spec.name.c_str(), rep.summary().c_str());
      }
      rec.outcomes[res.solver] = o;
    }

    if (opts.progress) {
      std::fprintf(stderr,
                   "\r[corpus %3zu/%3zu] %-28s |V|=%-8llu |E|=%-9llu   ",
                   index, specs.size(), spec.name.c_str(),
                   static_cast<unsigned long long>(rec.summary.num_vertices),
                   static_cast<unsigned long long>(rec.summary.num_edges));
      std::fflush(stderr);
    }
    records.push_back(std::move(rec));
  }
  if (opts.progress)
    std::fprintf(stderr, "\ncorpus done in %.1fs\n", total.elapsed_sec());
  return records;
}

template std::vector<GraphRunRecord> run_corpus_t<uint32_t>(
    const std::vector<GraphSpec>&, const CorpusRunOptions&);
template std::vector<GraphRunRecord> run_corpus_t<float>(
    const std::vector<GraphSpec>&, const CorpusRunOptions&);

std::vector<double> speedup_ratios(const std::vector<GraphRunRecord>& records,
                                   const std::string& subject,
                                   const std::string& baseline) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    const auto s = r.outcomes.find(subject);
    const auto b = r.outcomes.find(baseline);
    if (s == r.outcomes.end() || b == r.outcomes.end()) continue;
    if (s->second.time_us <= 0.0) continue;
    out.push_back(b->second.time_us / s->second.time_us);
  }
  return out;
}

std::vector<double> work_ratios(const std::vector<GraphRunRecord>& records,
                                const std::string& subject,
                                const std::string& baseline) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    const auto s = r.outcomes.find(subject);
    const auto b = r.outcomes.find(baseline);
    if (s == r.outcomes.end() || b == r.outcomes.end()) continue;
    if (b->second.work.items_processed == 0) continue;
    out.push_back(double(s->second.work.items_processed) /
                  double(b->second.work.items_processed));
  }
  return out;
}

BinnedDistribution bin_ratios(const std::vector<double>& ratios,
                              BinnedDistribution bins) {
  for (const double x : ratios) bins.add(x);
  return bins;
}

void save_records_csv(const std::string& path,
                      const std::vector<GraphRunRecord>& records) {
  CsvWriter csv(path);
  csv.write_header({"graph", "family", "vertices", "edges", "avg_degree",
                    "max_degree", "avg_weight", "diameter", "reach",
                    "source", "solver", "time_us", "items", "relaxations",
                    "stale", "pushes", "supersteps", "valid"});
  for (const auto& r : records) {
    for (const auto& [solver, o] : r.outcomes) {
      csv.write_row(
          {r.spec.name, family_name(r.spec.family),
           std::to_string(r.summary.num_vertices),
           std::to_string(r.summary.num_edges),
           fmt_double(r.summary.avg_degree, 4),
           std::to_string(r.summary.max_degree),
           fmt_double(r.summary.avg_weight, 4),
           std::to_string(r.summary.diameter),
           fmt_double(r.summary.reach_fraction, 6),
           std::to_string(r.summary.source), solver,
           fmt_double(o.time_us, 4), std::to_string(o.work.items_processed),
           std::to_string(o.work.relaxations),
           std::to_string(o.work.stale_skipped),
           std::to_string(o.work.pushes), std::to_string(o.supersteps),
           o.valid ? "1" : "0"});
    }
  }
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  // Corpus records contain no quoted fields; a plain split suffices.
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

std::vector<GraphRunRecord> load_records_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return {};
  std::string line;
  ADDS_REQUIRE(bool(std::getline(in, line)), "empty records CSV: " + path);

  std::vector<GraphRunRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    ADDS_REQUIRE(f.size() == 18, "bad records CSV row in " + path);
    if (records.empty() || records.back().spec.name != f[0]) {
      GraphRunRecord rec;
      rec.spec.name = f[0];
      for (const auto fam :
           {GraphFamily::kGridRoad, GraphFamily::kKNeighborMesh,
            GraphFamily::kRmat, GraphFamily::kErdosRenyi,
            GraphFamily::kWattsStrogatz, GraphFamily::kCliqueChain,
            GraphFamily::kStar, GraphFamily::kChain,
            GraphFamily::kBinaryTree}) {
        if (f[1] == family_name(fam)) rec.spec.family = fam;
      }
      rec.summary.num_vertices = std::stoull(f[2]);
      rec.summary.num_edges = std::stoull(f[3]);
      rec.summary.avg_degree = std::stod(f[4]);
      rec.summary.max_degree = std::stoull(f[5]);
      rec.summary.avg_weight = std::stod(f[6]);
      rec.summary.diameter = uint32_t(std::stoul(f[7]));
      rec.summary.reach_fraction = std::stod(f[8]);
      rec.summary.source = VertexId(std::stoul(f[9]));
      records.push_back(std::move(rec));
    }
    SolverOutcome o;
    o.time_us = std::stod(f[11]);
    o.work.items_processed = std::stoull(f[12]);
    o.work.relaxations = std::stoull(f[13]);
    o.work.stale_skipped = std::stoull(f[14]);
    o.work.pushes = std::stoull(f[15]);
    o.supersteps = std::stoull(f[16]);
    o.valid = f[17] == "1";
    records.back().outcomes[f[10]] = o;
  }
  return records;
}

std::string config_tag(const CorpusRunOptions& opts) {
  // FNV-1a over the model constants and engine options that affect results.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  const GpuCostModel& g = opts.config.gpu;
  mix(g.bytes_per_edge);
  mix(g.edge_latency_us);
  mix(g.kernel_launch_us);
  mix(g.assignment_overhead_us);
  mix(g.mtb_tick_us);
  mix(double(g.wtb_width));
  mix(g.spec().dram_bandwidth_gbps);
  mix(double(g.spec().hardware_threads()));
  const CpuCostModel& c = opts.config.cpu;
  mix(c.seq_edge_us);
  mix(c.heap_op_us);
  mix(c.bucket_sync_us);
  mix(c.parallel_efficiency);
  const AddsOptions& a = opts.config.adds;
  mix(double(a.num_buckets));
  mix(a.dynamic_delta ? 1.0 : 0.0);
  mix(a.delta);
  mix(a.heuristic_c);
  mix(double(a.chunk_items));
  mix(double(a.chunk_edge_budget));
  mix(a.controller.util_low);
  mix(a.controller.util_high);
  mix(double(a.controller.settle_head_switches));
  mix(double(a.controller.settle_max_updates));
  mix(a.controller.shrink_floor_factor);
  mix(double(a.controller.max_active_buckets));
  mix(opts.config.near_far.heuristic_c);
  mix(double(opts.solvers.size()));
  mix(opts.float_weights ? 1.0 : 0.0);

  char buf[20];
  std::snprintf(buf, sizeof(buf), "%08x", uint32_t(h ^ (h >> 32)));
  return opts.config.gpu.spec().name + "_" + buf;
}

std::vector<GraphRunRecord> run_corpus_cached(CorpusTier tier,
                                              const CorpusRunOptions& opts,
                                              const std::string& cache_dir,
                                              const std::string& tag) {
  std::string safe_tag = tag;
  for (auto& c : safe_tag)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  const std::string path = cache_dir + "/corpus_" +
                           std::string(tier_name(tier)) + "_" + safe_tag +
                           ".csv";

  auto cached = load_records_csv(path);
  const auto specs = corpus_specs(tier);
  if (cached.size() == specs.size()) {
    std::fprintf(stderr, "[cache] reusing %s (%zu graphs)\n", path.c_str(),
                 cached.size());
    return cached;
  }
  auto records = opts.float_weights ? run_corpus_t<float>(specs, opts)
                                    : run_corpus_t<uint32_t>(specs, opts);
  save_records_csv(path, records);
  std::fprintf(stderr, "[cache] saved %s\n", path.c_str());
  return records;
}

}  // namespace adds
