#include "core/paths.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace adds {

namespace {

/// Predecessor of `v`: any in-neighbour u with dist[u] + w == dist[v].
/// Ties resolve to the smallest vertex id for determinism.
template <WeightType W>
VertexId predecessor(const CsrGraph<W>& reverse,
                     const std::vector<DistT<W>>& dist, VertexId v) {
  using Dist = DistT<W>;
  VertexId best = kInvalidVertex;
  for (EdgeIndex e = reverse.edge_begin(v); e < reverse.edge_end(v); ++e) {
    const VertexId u = reverse.edge_target(e);
    if (dist[u] == DistTraits<W>::infinity()) continue;
    if (dist[u] + Dist(reverse.edge_weight(e)) == dist[v] && u < best)
      best = u;
  }
  return best;
}

}  // namespace

template <WeightType W>
std::vector<VertexId> extract_path(const CsrGraph<W>& reverse,
                                   const std::vector<DistT<W>>& dist,
                                   VertexId source, VertexId target) {
  ADDS_REQUIRE(dist.size() == reverse.num_vertices(),
               "distance array does not match graph");
  ADDS_REQUIRE(source < reverse.num_vertices() &&
                   target < reverse.num_vertices(),
               "path endpoints out of range");
  if (dist[target] == DistTraits<W>::infinity()) return {};

  std::vector<VertexId> path{target};
  VertexId v = target;
  while (v != source) {
    const VertexId u = predecessor(reverse, dist, v);
    ADDS_REQUIRE(u != kInvalidVertex,
                 "no predecessor found: distance array is not a valid SSSP "
                 "fixed point for this graph");
    path.push_back(u);
    v = u;
    ADDS_REQUIRE(path.size() <= dist.size(), "predecessor cycle detected");
  }
  std::reverse(path.begin(), path.end());
  return path;
}

template <WeightType W>
std::vector<VertexId> shortest_path_tree(const CsrGraph<W>& reverse,
                                         const std::vector<DistT<W>>& dist,
                                         VertexId source) {
  ADDS_REQUIRE(dist.size() == reverse.num_vertices(),
               "distance array does not match graph");
  std::vector<VertexId> parent(reverse.num_vertices(), kInvalidVertex);
  for (VertexId v = 0; v < reverse.num_vertices(); ++v) {
    if (v == source || dist[v] == DistTraits<W>::infinity()) continue;
    parent[v] = predecessor(reverse, dist, v);
  }
  return parent;
}

#define ADDS_INSTANTIATE(W)                                           \
  template std::vector<VertexId> extract_path<W>(                     \
      const CsrGraph<W>&, const std::vector<DistT<W>>&, VertexId,     \
      VertexId);                                                      \
  template std::vector<VertexId> shortest_path_tree<W>(               \
      const CsrGraph<W>&, const std::vector<DistT<W>>&, VertexId);
ADDS_INSTANTIATE(uint32_t)
ADDS_INSTANTIATE(float)
#undef ADDS_INSTANTIATE

}  // namespace adds
