// Resilient solver runtime: watchdog, bounded retry, engine fallback and
// result audits around run_solver().
//
// The asynchronous host engine can fail in ways a production service must
// survive: pool exhaustion (adds::Error), a wedged termination sweep (hang),
// or — under injected faults (util/fault.hpp) — lost publications and
// stalled threads. run_solver_guarded() turns all of these into one
// contract:
//
//   * a watchdog thread with a deadline scaled from graph size via the CPU
//     cost model cancels a hung attempt (the host engine observes the
//     cancel token, aborts its queue and throws);
//   * failed attempts are retried a bounded number of times with the pool
//     re-sized and exponential backoff between attempts;
//   * when an engine keeps failing, an ordered fallback chain
//     (adds-host -> adds -> cpu-ds -> dijkstra) degrades toward simpler,
//     slower, harder-to-kill engines;
//   * every candidate result passes a sampled relaxation audit
//     (d[v] <= d[u] + w, source/unreached invariants) before being
//     returned — a corrupted result triggers retry instead of escaping.
//
// Every attempt is recorded in a RunReport reachable through
// SsspResult::resilience. See docs/RESILIENCE.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/solver.hpp"

namespace adds {

/// Tuning knobs for run_solver_guarded. Defaults are production-ish;
/// tests shrink the deadlines and attempt counts.
struct ResiliencePolicy {
  uint32_t max_attempts_per_engine = 2;

  bool enable_watchdog = true;
  /// Deadline = clamp(modelled serial Dijkstra time * factor, min, max).
  /// The model is EngineConfig::cpu — deliberately generous: it bounds
  /// *hangs*, not slowness.
  double watchdog_factor = 50.0;
  double watchdog_min_ms = 200.0;
  double watchdog_max_ms = 60000.0;

  bool enable_audit = true;
  /// Edge sample size per audit; >= num_edges() means a full scan.
  uint64_t audit_sample_edges = 1u << 16;
  uint64_t audit_seed = 0x5eed;

  bool enable_fallback = true;
  /// Explicit chain override; empty derives the default chain from the
  /// requested kind (adds-host -> adds -> cpu-ds -> dijkstra suffix).
  std::vector<SolverKind> fallback_chain;

  /// Base sleep before the first retry; doubles per subsequent retry.
  double retry_backoff_ms = 5.0;
  /// On retrying adds-host, re-run with an auto-sized pool (an explicitly
  /// undersized pool_blocks is the most common recoverable failure).
  bool resize_pool_on_retry = true;
};

enum class AttemptOutcome : uint8_t {
  kOk,             // returned and passed the audit
  kError,          // threw adds::Error
  kWatchdogAbort,  // hung; watchdog cancelled it
  kAuditFail,      // returned distances that violate relaxation invariants
};
const char* outcome_name(AttemptOutcome o) noexcept;

struct AttemptRecord {
  std::string solver;
  uint32_t attempt = 0;  // 1-based, per engine
  AttemptOutcome outcome = AttemptOutcome::kError;
  std::string error;     // exception text when outcome == kError/kWatchdogAbort
  double wall_ms = 0.0;
  double deadline_ms = 0.0;    // watchdog deadline for this attempt (0 = off)
  bool watchdog_fired = false;
  /// Watchdog fire -> attempt teardown complete, in ms (< 0: watchdog did
  /// not fire). Bounded by the event-driven cancel path: the watchdog
  /// notifies the engine's cancel event after setting the token.
  double cancel_latency_ms = -1.0;
  uint64_t fault_fires = 0;    // injected-fault fires observed during attempt
  uint64_t audit_checked = 0;  // edges checked by the audit
  uint64_t audit_violations = 0;
  /// Pool/spill health of the attempt (adds-host; zeros for other engines
  /// and for attempts that threw before producing a result).
  QueueHealth health;
};

/// Structured history of one guarded run.
struct RunReport {
  std::vector<AttemptRecord> attempts;
  uint32_t watchdog_fires = 0;
  uint32_t audit_failures = 0;
  uint32_t retries = 0;    // extra attempts on the same engine
  uint32_t fallbacks = 0;  // engine switches
  /// Pool size applied by resize_pool_on_retry (0: the resize never fired).
  uint32_t resized_pool_blocks = 0;
  bool ok = false;
  std::string final_solver;  // engine that produced the returned result

  /// One line: "ok solver=adds attempts=3 watchdog=1 audit_fail=0 ...".
  std::string summary() const;
};

/// Verdict of the sampled relaxation audit.
struct AuditReport {
  uint64_t edges_checked = 0;
  uint64_t violations = 0;
  std::string first_violation;  // human-readable description
  bool ok() const noexcept { return violations == 0; }
};

/// Cheap post-run result audit. Checks, over a deterministic sample of
/// `sample_edges` edges (full scan when >= num_edges):
///   * dist.size() == num_vertices and dist[source] == 0;
///   * triangle inequality at the fixed point: finite d[u] implies
///     d[v] <= d[u] + w(u,v) for every sampled edge (u,v) — in particular
///     v cannot be unreached when u is reached.
/// A violated sample proves the result is not the SSSP fixed point.
template <WeightType W>
AuditReport audit_relaxation(const CsrGraph<W>& g, VertexId source,
                             const std::vector<DistT<W>>& dist,
                             uint64_t sample_edges, uint64_t seed);

/// Watchdog deadline for one attempt, scaled from graph size through the
/// policy and the config's CPU cost model.
template <WeightType W>
double watchdog_deadline_ms(const CsrGraph<W>& g, const EngineConfig& cfg,
                            const ResiliencePolicy& policy);

/// The default fallback chain starting at `kind` (kind itself first).
std::vector<SolverKind> default_fallback_chain(SolverKind kind);

/// Runs `kind` under the full guard stack. On success the result carries
/// the RunReport in SsspResult::resilience. Throws adds::Error when every
/// engine in the chain exhausted its attempts (the report text is embedded
/// in the exception message); the call never hangs past the watchdog
/// deadlines and never returns distances that failed the audit.
template <WeightType W>
SsspResult<W> run_solver_guarded(SolverKind kind, const CsrGraph<W>& g,
                                 VertexId source, const EngineConfig& cfg,
                                 const ResiliencePolicy& policy = {});

#define ADDS_RESILIENCE_EXTERN(W)                                         \
  extern template AuditReport audit_relaxation<W>(                        \
      const CsrGraph<W>&, VertexId, const std::vector<DistT<W>>&,         \
      uint64_t, uint64_t);                                                \
  extern template double watchdog_deadline_ms<W>(                         \
      const CsrGraph<W>&, const EngineConfig&, const ResiliencePolicy&);  \
  extern template SsspResult<W> run_solver_guarded<W>(                    \
      SolverKind, const CsrGraph<W>&, VertexId, const EngineConfig&,      \
      const ResiliencePolicy&);
ADDS_RESILIENCE_EXTERN(uint32_t)
ADDS_RESILIENCE_EXTERN(float)
#undef ADDS_RESILIENCE_EXTERN

}  // namespace adds
