// Result validation: the artifact's verify_against_* step. Two engines are
// correct together when they produce identical final distances (the SSSP
// fixed point is unique, including for float weights, because every
// algorithm converges to the same min-over-paths value).
#pragma once

#include <string>

#include "graph/types.hpp"
#include "sssp/result.hpp"

namespace adds {

struct ValidationReport {
  uint64_t compared = 0;
  uint64_t mismatches = 0;
  VertexId first_mismatch = kInvalidVertex;
  bool ok() const noexcept { return mismatches == 0; }
  std::string summary() const;
};

template <WeightType W>
ValidationReport validate_distances(const SsspResult<W>& a,
                                    const SsspResult<W>& b);

extern template ValidationReport validate_distances<uint32_t>(
    const SsspResult<uint32_t>&, const SsspResult<uint32_t>&);
extern template ValidationReport validate_distances<float>(
    const SsspResult<float>&, const SsspResult<float>&);

}  // namespace adds
