#include "core/analytics.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace adds {

template <WeightType W>
double closeness_centrality(const std::vector<DistT<W>>& dist,
                            VertexId source) {
  ADDS_REQUIRE(source < dist.size(), "source out of range");
  double sum = 0.0;
  uint64_t reached = 0;
  for (size_t v = 0; v < dist.size(); ++v) {
    if (v == source || dist[v] == DistTraits<W>::infinity()) continue;
    sum += double(dist[v]);
    ++reached;
  }
  if (reached == 0 || sum == 0.0) return 0.0;
  return double(reached) / sum;
}

template <WeightType W>
double eccentricity(const std::vector<DistT<W>>& dist) {
  double ecc = 0.0;
  for (const auto d : dist) {
    if (d == DistTraits<W>::infinity()) continue;
    ecc = std::max(ecc, double(d));
  }
  return ecc;
}

template <WeightType W>
std::vector<uint64_t> distance_histogram(const std::vector<DistT<W>>& dist,
                                         size_t bins) {
  ADDS_REQUIRE(bins >= 1, "need at least one bin");
  std::vector<uint64_t> out(bins, 0);
  const double max_d = eccentricity<W>(dist);
  if (max_d <= 0.0) {
    // Degenerate: everything at distance 0 (or unreachable).
    for (const auto d : dist)
      if (d != DistTraits<W>::infinity()) ++out[0];
    return out;
  }
  for (const auto d : dist) {
    if (d == DistTraits<W>::infinity()) continue;
    size_t bin = size_t(double(d) / max_d * double(bins));
    if (bin >= bins) bin = bins - 1;
    ++out[bin];
  }
  return out;
}

template <WeightType W>
std::pair<std::vector<uint32_t>, std::vector<uint64_t>>
connected_components(const CsrGraph<W>& g) {
  constexpr uint32_t kNone = ~0u;
  std::vector<uint32_t> comp(g.num_vertices(), kNone);
  std::vector<uint64_t> sizes;
  // Undirected reachability needs in-edges too; build a one-shot reverse
  // adjacency index (counts + targets).
  std::vector<EdgeIndex> roff(size_t(g.num_vertices()) + 1, 0);
  for (const VertexId t : g.targets()) ++roff[size_t(t) + 1];
  for (size_t i = 1; i < roff.size(); ++i) roff[i] += roff[i - 1];
  std::vector<VertexId> rtargets(g.num_edges());
  {
    std::vector<EdgeIndex> cur(roff.begin(), roff.end() - 1);
    for (VertexId u = 0; u < g.num_vertices(); ++u)
      for (EdgeIndex e = g.edge_begin(u); e < g.edge_end(u); ++e)
        rtargets[cur[g.edge_target(e)]++] = u;
  }

  std::vector<VertexId> stack;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (comp[s] != kNone) continue;
    const uint32_t id = uint32_t(sizes.size());
    uint64_t size = 0;
    comp[s] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      ++size;
      for (const VertexId v : g.neighbors(u)) {
        if (comp[v] == kNone) {
          comp[v] = id;
          stack.push_back(v);
        }
      }
      for (EdgeIndex e = roff[u]; e < roff[size_t(u) + 1]; ++e) {
        const VertexId v = rtargets[e];
        if (comp[v] == kNone) {
          comp[v] = id;
          stack.push_back(v);
        }
      }
    }
    sizes.push_back(size);
  }
  return {std::move(comp), std::move(sizes)};
}

template <WeightType W>
AvgPathLength<W> estimate_avg_path_length(const CsrGraph<W>& g,
                                          SolverKind solver,
                                          const EngineConfig& cfg,
                                          uint32_t samples, uint64_t seed) {
  AvgPathLength<W> out;
  if (g.empty() || samples == 0) return out;
  Xoshiro256 rng(seed);
  double dist_sum = 0.0;
  uint64_t dist_count = 0;
  double ecc_sum = 0.0;
  double reach_sum = 0.0;
  for (uint32_t i = 0; i < samples; ++i) {
    const VertexId src = VertexId(rng.next_below(g.num_vertices()));
    const auto res = run_solver(solver, g, src, cfg);
    uint64_t reached = 0;
    for (size_t v = 0; v < res.dist.size(); ++v) {
      if (v == src || res.dist[v] == DistTraits<W>::infinity()) continue;
      dist_sum += double(res.dist[v]);
      ++dist_count;
      ++reached;
    }
    ecc_sum += eccentricity<W>(res.dist);
    reach_sum += double(reached + 1) / double(g.num_vertices());
    ++out.ssps_run;
  }
  out.mean_distance = dist_count ? dist_sum / double(dist_count) : 0.0;
  out.mean_eccentricity = ecc_sum / double(samples);
  out.mean_reach_fraction = reach_sum / double(samples);
  return out;
}

#define ADDS_INSTANTIATE_ANALYTICS(W)                                     \
  template double closeness_centrality<W>(const std::vector<DistT<W>>&,  \
                                          VertexId);                     \
  template double eccentricity<W>(const std::vector<DistT<W>>&);         \
  template std::vector<uint64_t> distance_histogram<W>(                  \
      const std::vector<DistT<W>>&, size_t);                             \
  template std::pair<std::vector<uint32_t>, std::vector<uint64_t>>       \
  connected_components<W>(const CsrGraph<W>&);                           \
  template AvgPathLength<W> estimate_avg_path_length<W>(                 \
      const CsrGraph<W>&, SolverKind, const EngineConfig&, uint32_t,     \
      uint64_t);
ADDS_INSTANTIATE_ANALYTICS(uint32_t)
ADDS_INSTANTIATE_ANALYTICS(float)
#undef ADDS_INSTANTIATE_ANALYTICS

}  // namespace adds
