#include "core/validate.hpp"

#include "util/error.hpp"

namespace adds {

std::string ValidationReport::summary() const {
  if (ok()) return "OK (" + std::to_string(compared) + " vertices)";
  return std::to_string(mismatches) + " mismatches of " +
         std::to_string(compared) + " (first at vertex " +
         std::to_string(first_mismatch) + ")";
}

template <WeightType W>
ValidationReport validate_distances(const SsspResult<W>& a,
                                    const SsspResult<W>& b) {
  ADDS_REQUIRE(a.dist.size() == b.dist.size(),
               "validate: result sizes differ");
  ValidationReport rep;
  rep.compared = a.dist.size();
  for (size_t v = 0; v < a.dist.size(); ++v) {
    if (a.dist[v] != b.dist[v]) {
      if (rep.mismatches == 0) rep.first_mismatch = VertexId(v);
      ++rep.mismatches;
    }
  }
  return rep;
}

template ValidationReport validate_distances<uint32_t>(
    const SsspResult<uint32_t>&, const SsspResult<uint32_t>&);
template ValidationReport validate_distances<float>(const SsspResult<float>&,
                                                    const SsspResult<float>&);

}  // namespace adds
