#include "core/solver.hpp"

namespace adds {

const char* solver_name(SolverKind k) {
  switch (k) {
    case SolverKind::kAdds: return "adds";
    case SolverKind::kAddsHost: return "adds-host";
    case SolverKind::kNfHost: return "nf-host";
    case SolverKind::kNf: return "nf";
    case SolverKind::kGunNf: return "gun-nf";
    case SolverKind::kGunBf: return "gun-bf";
    case SolverKind::kNv: return "nv";
    case SolverKind::kCpuDs: return "cpu-ds";
    case SolverKind::kDijkstra: return "dijkstra";
  }
  return "?";
}

std::optional<SolverKind> parse_solver(const std::string& name) {
  for (const SolverKind k :
       {SolverKind::kAdds, SolverKind::kAddsHost, SolverKind::kNfHost,
        SolverKind::kNf, SolverKind::kGunNf, SolverKind::kGunBf,
        SolverKind::kNv, SolverKind::kCpuDs, SolverKind::kDijkstra}) {
    if (name == solver_name(k)) return k;
  }
  return std::nullopt;
}

std::vector<SolverKind> all_solvers() {
  return {SolverKind::kAdds,  SolverKind::kNf,    SolverKind::kGunNf,
          SolverKind::kGunBf, SolverKind::kNv,    SolverKind::kCpuDs,
          SolverKind::kDijkstra};
}

std::vector<SolverKind> gpu_baselines() {
  return {SolverKind::kNf, SolverKind::kGunNf, SolverKind::kGunBf,
          SolverKind::kNv};
}

template <WeightType W>
SsspResult<W> run_solver(SolverKind kind, const CsrGraph<W>& g,
                         VertexId source, const EngineConfig& cfg) {
  switch (kind) {
    case SolverKind::kAdds:
      return adds_sim(g, source, cfg.gpu, cfg.adds);
    case SolverKind::kAddsHost:
      return adds_host(g, source, cfg.adds_host);
    case SolverKind::kNfHost:
      return near_far_host(g, source, cfg.near_far_host);
    case SolverKind::kNf:
      return near_far(g, source, cfg.gpu, cfg.near_far);
    case SolverKind::kGunNf:
      return gunrock_near_far(g, source, cfg.gpu, cfg.near_far.delta);
    case SolverKind::kGunBf:
      return bellman_ford(g, source, cfg.gpu, cfg.bellman_ford);
    case SolverKind::kNv:
      return nv_like(g, source, cfg.gpu);
    case SolverKind::kCpuDs:
      return cpu_delta_stepping(g, source, cfg.cpu, cfg.cpu_ds);
    case SolverKind::kDijkstra:
      return dijkstra(g, source, &cfg.cpu);
  }
  throw Error("unknown solver kind");
}

template SsspResult<uint32_t> run_solver<uint32_t>(SolverKind,
                                                   const CsrGraph<uint32_t>&,
                                                   VertexId,
                                                   const EngineConfig&);
template SsspResult<float> run_solver<float>(SolverKind,
                                             const CsrGraph<float>&, VertexId,
                                             const EngineConfig&);

}  // namespace adds
