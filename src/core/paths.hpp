// Shortest-path reconstruction from a distance array.
//
// SSSP engines return distances only (as on the GPU); applications that
// need actual routes reconstruct them here by walking predecessor edges:
// u precedes v exactly when dist[u] + w(u->v) == dist[v]. Enumerating a
// vertex's predecessors requires in-edges, i.e. the reverse graph (for
// symmetric/undirected graphs the graph itself works).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace adds {

/// The route source -> ... -> target (inclusive), or empty when target is
/// unreachable. `reverse` must be reverse_graph(g) — or g itself when g is
/// symmetric.
template <WeightType W>
std::vector<VertexId> extract_path(const CsrGraph<W>& reverse,
                                   const std::vector<DistT<W>>& dist,
                                   VertexId source, VertexId target);

/// Predecessor of every reachable vertex under `dist` (kInvalidVertex for
/// the source and unreachable vertices): the full shortest-path tree.
template <WeightType W>
std::vector<VertexId> shortest_path_tree(const CsrGraph<W>& reverse,
                                         const std::vector<DistT<W>>& dist,
                                         VertexId source);

#define ADDS_EXTERN(W)                                                     \
  extern template std::vector<VertexId> extract_path<W>(                   \
      const CsrGraph<W>&, const std::vector<DistT<W>>&, VertexId,          \
      VertexId);                                                           \
  extern template std::vector<VertexId> shortest_path_tree<W>(             \
      const CsrGraph<W>&, const std::vector<DistT<W>>&, VertexId);
ADDS_EXTERN(uint32_t)
ADDS_EXTERN(float)
#undef ADDS_EXTERN

}  // namespace adds
