// Corpus experiment runner shared by the evaluation benches.
//
// Runs a set of solvers over a list of graph specs (generating each graph
// on demand), validates every result against Dijkstra, and returns
// per-graph records from which the paper's distribution tables (3, 4, 5)
// and scatter figures (8, 9, 10) are tabulated.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "util/stats.hpp"

namespace adds {

struct SolverOutcome {
  double time_us = 0.0;
  WorkStats work;
  uint64_t supersteps = 0;
  bool valid = true;  // distances matched Dijkstra
};

struct GraphRunRecord {
  GraphSpec spec;
  GraphSummary summary;
  std::map<std::string, SolverOutcome> outcomes;  // keyed by solver_name()
};

struct CorpusRunOptions {
  std::vector<SolverKind> solvers;  // Dijkstra is always run (oracle)
  EngineConfig config;
  bool validate = true;
  bool progress = true;  // progress line per graph on stderr
  /// Run the float-weight variant of the corpus (the artifact's
  /// *_float lane) instead of the default int-weight lane.
  bool float_weights = false;
};

/// Runs all solvers over all specs. The paper's artifact ships int and
/// float variants of every implementation; `W` selects the weight flavour
/// (run_corpus() is the int shorthand the main tables use).
template <WeightType W>
std::vector<GraphRunRecord> run_corpus_t(const std::vector<GraphSpec>& specs,
                                         const CorpusRunOptions& opts);

inline std::vector<GraphRunRecord> run_corpus(
    const std::vector<GraphSpec>& specs, const CorpusRunOptions& opts) {
  return run_corpus_t<uint32_t>(specs, opts);
}

extern template std::vector<GraphRunRecord> run_corpus_t<uint32_t>(
    const std::vector<GraphSpec>&, const CorpusRunOptions&);
extern template std::vector<GraphRunRecord> run_corpus_t<float>(
    const std::vector<GraphSpec>&, const CorpusRunOptions&);

/// The corpus graphs are ~1/8 the edge count of the paper's inputs, so the
/// evaluation benches model proportionally shrunk boards (same launch
/// latency — that is a fixed hardware property): this keeps the
/// parallelism-vs-work regime aligned with the paper's (DESIGN.md §2).
inline constexpr double kCorpusGpuScale = 0.25;

/// EngineConfig for corpus benches: `board` at kCorpusGpuScale.
inline EngineConfig corpus_config(const GpuSpec& board = GpuSpec::rtx2080ti()) {
  EngineConfig cfg;
  cfg.gpu = GpuCostModel(board.scaled(kCorpusGpuScale));
  return cfg;
}

/// time(baseline) / time(subject): >1 means `subject` is faster.
std::vector<double> speedup_ratios(const std::vector<GraphRunRecord>& records,
                                   const std::string& subject,
                                   const std::string& baseline);

/// items(subject) / items(baseline): <1 means `subject` does less work.
std::vector<double> work_ratios(const std::vector<GraphRunRecord>& records,
                                const std::string& subject,
                                const std::string& baseline);

/// Bins ratios into a paper-style distribution row.
BinnedDistribution bin_ratios(const std::vector<double>& ratios,
                              BinnedDistribution bins);

// --- Result caching ---------------------------------------------------------
//
// A full corpus run over all solvers takes minutes; several benches tabulate
// different views of the same run (Tables 3 & 4, Figures 8-10). Records are
// therefore persisted as CSV next to the bench outputs and reloaded when the
// same (tier, machine, solver set) combination is requested again. Delete
// bench_out/ to force re-measurement.

void save_records_csv(const std::string& path,
                      const std::vector<GraphRunRecord>& records);
/// Returns empty if the file does not exist; throws on malformed content.
std::vector<GraphRunRecord> load_records_csv(const std::string& path);

/// Cache-aware corpus run. `cache_dir` is created if needed.
std::vector<GraphRunRecord> run_corpus_cached(CorpusTier tier,
                                              const CorpusRunOptions& opts,
                                              const std::string& cache_dir,
                                              const std::string& tag);

/// Cache tag for an engine configuration: machine name plus a short hash of
/// the model constants and engine options, so stale caches are never reused
/// after recalibration.
std::string config_tag(const CorpusRunOptions& opts);

}  // namespace adds
