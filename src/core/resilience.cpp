#include "core/resilience.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace adds {

namespace {

/// One-shot deadline timer. Arms on construction; if the attempt has not
/// disarmed it by the deadline it sets the cancel token (which the host
/// engine's manager loop polls and converts into queue abort + throw).
/// Engines without cancellation support simply ignore the token — they are
/// the deterministic fallback engines with no injected-hang sites.
class Watchdog {
 public:
  /// `cancel_event`, when given, is notified right after the cancel token
  /// is set so an engine parked on it observes the cancel immediately
  /// (the host engine's manager and workers are event-driven waits).
  Watchdog(double deadline_ms, std::atomic<bool>* cancel,
           Event* cancel_event = nullptr)
      : cancel_(cancel),
        cancel_event_(cancel_event),
        deadline_ms_(deadline_ms),
        thread_([this] { run(); }) {}

  ~Watchdog() { disarm(); }

  /// Idempotent: stops the timer and joins the thread.
  void disarm() {
    {
      std::lock_guard<std::mutex> lk(m_);
      done_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  bool fired() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }

  /// Valid only after fired() returned true (the release/acquire pair on
  /// fired_ orders the write).
  std::chrono::steady_clock::time_point fired_at() const noexcept {
    return fired_at_;
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lk(m_);
    const auto deadline = std::chrono::duration<double, std::milli>(
        deadline_ms_);
    if (cv_.wait_for(lk, deadline, [this] { return done_; })) return;
    fired_at_ = std::chrono::steady_clock::now();
    fired_.store(true, std::memory_order_release);
    cancel_->store(true, std::memory_order_release);
    if (cancel_event_ != nullptr) cancel_event_->notify_all();
  }

  std::atomic<bool>* cancel_;
  Event* cancel_event_;
  double deadline_ms_;
  std::mutex m_;
  std::condition_variable cv_;
  bool done_ = false;
  std::atomic<bool> fired_{false};
  std::chrono::steady_clock::time_point fired_at_{};
  std::thread thread_;
};

}  // namespace

const char* outcome_name(AttemptOutcome o) noexcept {
  switch (o) {
    case AttemptOutcome::kOk: return "ok";
    case AttemptOutcome::kError: return "error";
    case AttemptOutcome::kWatchdogAbort: return "watchdog-abort";
    case AttemptOutcome::kAuditFail: return "audit-fail";
  }
  return "?";
}

std::string RunReport::summary() const {
  uint64_t fault_fires = 0;
  uint64_t spilled = 0;
  for (const auto& a : attempts) {
    fault_fires += a.fault_fires;
    spilled += a.health.spilled_items;
  }
  std::ostringstream os;
  os << (ok ? "ok" : "failed")
     << " solver=" << (final_solver.empty() ? "-" : final_solver)
     << " attempts=" << attempts.size() << " retries=" << retries
     << " fallbacks=" << fallbacks << " watchdog_fires=" << watchdog_fires
     << " audit_failures=" << audit_failures
     << " fault_fires=" << fault_fires;
  if (spilled > 0) os << " spilled_items=" << spilled;
  if (resized_pool_blocks > 0)
    os << " resized_pool=" << resized_pool_blocks;
  return os.str();
}

std::vector<SolverKind> default_fallback_chain(SolverKind kind) {
  // Ordered from fastest/most fragile to slowest/hardest to kill. Kinds
  // outside the canonical chain (BSP baselines, A* etc.) degrade straight
  // to the reliable CPU engines.
  static constexpr SolverKind canon[] = {
      SolverKind::kAddsHost, SolverKind::kAdds, SolverKind::kCpuDs,
      SolverKind::kDijkstra};
  std::vector<SolverKind> chain{kind};
  bool seen = false;
  for (const SolverKind k : canon) {
    if (k == kind) {
      seen = true;
      continue;
    }
    if (seen) chain.push_back(k);
  }
  if (!seen) {
    chain.push_back(SolverKind::kCpuDs);
    chain.push_back(SolverKind::kDijkstra);
  }
  return chain;
}

template <WeightType W>
AuditReport audit_relaxation(const CsrGraph<W>& g, VertexId source,
                             const std::vector<DistT<W>>& dist,
                             uint64_t sample_edges, uint64_t seed) {
  using Dist = DistT<W>;
  AuditReport rep;
  const VertexId n = g.num_vertices();
  if (dist.size() != n) {
    rep.violations = 1;
    rep.first_violation = "distance array has " +
                          std::to_string(dist.size()) + " entries, graph has " +
                          std::to_string(n) + " vertices";
    return rep;
  }
  if (n == 0) return rep;
  if (dist[source] != Dist{0}) {
    ++rep.violations;
    rep.first_violation =
        "dist[source=" + std::to_string(source) + "] != 0";
  }

  const auto check_vertex = [&](VertexId u) {
    const Dist du = dist[u];
    if (du == DistTraits<W>::infinity()) return;  // vacuous
    const EdgeIndex end = g.edge_end(u);
    for (EdgeIndex e = g.edge_begin(u); e < end; ++e) {
      ++rep.edges_checked;
      const VertexId v = g.edge_target(e);
      // At the SSSP fixed point d[v] <= d[u] + w exactly (all engines
      // compute this very expression); infinity on the left always fails,
      // catching reached->unreached gaps too.
      const Dist bound = du + Dist(g.edge_weight(e));
      if (dist[v] > bound) {
        if (rep.violations == 0)
          rep.first_violation =
              "d[" + std::to_string(v) + "] > d[" + std::to_string(u) +
              "] + w on edge " + std::to_string(u) + "->" +
              std::to_string(v);
        ++rep.violations;
      }
    }
  };

  if (sample_edges >= g.num_edges()) {
    for (VertexId u = 0; u < n; ++u) check_vertex(u);
  } else {
    // Vertex-sampled: deterministic in (seed); the draw cap keeps sparse /
    // low-degree regions from spinning the sampler.
    Xoshiro256 rng(seed);
    const uint64_t max_draws = 4 * sample_edges + 64;
    for (uint64_t i = 0;
         i < max_draws && rep.edges_checked < sample_edges; ++i)
      check_vertex(VertexId(rng.next_below(n)));
  }
  return rep;
}

template <WeightType W>
double watchdog_deadline_ms(const CsrGraph<W>& g, const EngineConfig& cfg,
                            const ResiliencePolicy& policy) {
  // Modelled serial solve: every edge relaxed once, ~2 heap ops per vertex.
  // Any healthy engine beats this by a wide margin; factor 50 on top means
  // the watchdog only ever catches genuine wedges, not slow machines.
  const double modelled_us =
      cfg.cpu.dijkstra_us(g.num_edges(), 2ull * g.num_vertices());
  double ms = modelled_us * 1e-3 * policy.watchdog_factor;
  if (ms < policy.watchdog_min_ms) ms = policy.watchdog_min_ms;
  if (policy.watchdog_max_ms > 0 && ms > policy.watchdog_max_ms)
    ms = policy.watchdog_max_ms;
  return ms;
}

template <WeightType W>
SsspResult<W> run_solver_guarded(SolverKind kind, const CsrGraph<W>& g,
                                 VertexId source, const EngineConfig& cfg,
                                 const ResiliencePolicy& policy) {
  auto report = std::make_shared<RunReport>();
  const std::vector<SolverKind> chain =
      !policy.fallback_chain.empty()
          ? policy.fallback_chain
          : (policy.enable_fallback ? default_fallback_chain(kind)
                                    : std::vector<SolverKind>{kind});

  EngineConfig local = cfg;
  double backoff_ms = policy.retry_backoff_ms;
  uint32_t attempt_index = 0;

  for (size_t ci = 0; ci < chain.size(); ++ci) {
    const SolverKind k = chain[ci];
    if (ci > 0) ++report->fallbacks;
    for (uint32_t attempt = 1; attempt <= policy.max_attempts_per_engine;
         ++attempt) {
      if (attempt > 1) {
        ++report->retries;
        // The most common adds-host failure the governor cannot absorb is
        // a hopelessly undersized pool: retry with the auto sizing (scaled
        // from the graph) and record the size so the report shows what the
        // retry actually ran with.
        if (policy.resize_pool_on_retry && k == SolverKind::kAddsHost) {
          local.adds_host.pool_blocks = auto_pool_blocks(
              g.num_edges(), local.adds_host.block_words,
              local.adds_host.num_buckets);
          report->resized_pool_blocks = local.adds_host.pool_blocks;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        backoff_ms *= 2;
      }
      ++attempt_index;

      AttemptRecord rec;
      rec.solver = solver_name(k);
      rec.attempt = attempt;

      std::atomic<bool> cancel{false};
      Event cancel_event;
      local.adds_host.cancel = &cancel;
      local.adds_host.cancel_event = &cancel_event;
      if (policy.enable_watchdog)
        rec.deadline_ms = watchdog_deadline_ms(g, local, policy);

      const uint64_t fires_before = fault::total_fires();
      WallTimer timer;
      std::optional<Watchdog> dog;
      if (policy.enable_watchdog)
        dog.emplace(rec.deadline_ms, &cancel, &cancel_event);
      const auto cancel_latency_ms = [&]() {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - dog->fired_at())
            .count();
      };
      try {
        SsspResult<W> res = run_solver(k, g, source, local);
        if (dog) dog->disarm();
        rec.wall_ms = timer.elapsed_ms();
        rec.fault_fires = fault::total_fires() - fires_before;
        rec.watchdog_fired = dog.has_value() && dog->fired();
        if (rec.watchdog_fired) {
          ++report->watchdog_fires;
          rec.cancel_latency_ms = cancel_latency_ms();
        }
        rec.health = res.health;

        if (policy.enable_audit) {
          const AuditReport audit = audit_relaxation(
              g, source, res.dist, policy.audit_sample_edges,
              mix_seed(policy.audit_seed, attempt_index));
          rec.audit_checked = audit.edges_checked;
          rec.audit_violations = audit.violations;
          if (!audit.ok()) {
            rec.outcome = AttemptOutcome::kAuditFail;
            rec.error = audit.first_violation;
            ++report->audit_failures;
            report->attempts.push_back(rec);
            continue;  // corrupted result: retry, never return it
          }
        }

        rec.outcome = AttemptOutcome::kOk;
        report->attempts.push_back(rec);
        report->ok = true;
        report->final_solver = rec.solver;
        res.resilience = report;
        return res;
      } catch (const std::exception& e) {
        if (dog) dog->disarm();
        rec.wall_ms = timer.elapsed_ms();
        rec.fault_fires = fault::total_fires() - fires_before;
        rec.watchdog_fired = dog.has_value() && dog->fired();
        rec.outcome = rec.watchdog_fired ? AttemptOutcome::kWatchdogAbort
                                         : AttemptOutcome::kError;
        rec.error = e.what();
        if (rec.watchdog_fired) {
          ++report->watchdog_fires;
          // Fire -> teardown-complete: the unwound attempt has joined its
          // workers by the time the throw reaches us, so this measures the
          // full event-driven cancellation path.
          rec.cancel_latency_ms = cancel_latency_ms();
        }
        report->attempts.push_back(rec);
      }
    }
  }
  std::string detail = report->summary();
  if (!report->attempts.empty() && !report->attempts.back().error.empty())
    detail += "; last error: " + report->attempts.back().error;
  throw Error("run_solver_guarded: all engines exhausted [" + detail + "]");
}

#define ADDS_RESILIENCE_INST(W)                                           \
  template AuditReport audit_relaxation<W>(                               \
      const CsrGraph<W>&, VertexId, const std::vector<DistT<W>>&,         \
      uint64_t, uint64_t);                                                \
  template double watchdog_deadline_ms<W>(                                \
      const CsrGraph<W>&, const EngineConfig&, const ResiliencePolicy&);  \
  template SsspResult<W> run_solver_guarded<W>(                           \
      SolverKind, const CsrGraph<W>&, VertexId, const EngineConfig&,      \
      const ResiliencePolicy&);
ADDS_RESILIENCE_INST(uint32_t)
ADDS_RESILIENCE_INST(float)
#undef ADDS_RESILIENCE_INST

}  // namespace adds
