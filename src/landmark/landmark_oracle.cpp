#include "landmark/landmark_oracle.hpp"

#include <algorithm>
#include <tuple>

#include "graph/analysis.hpp"
#include "queue/lane_codec.hpp"
#include "sssp/repair.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace adds {

const char* landmark_status_name(LandmarkTableStatus s) noexcept {
  switch (s) {
    case LandmarkTableStatus::kNone: return "none";
    case LandmarkTableStatus::kBuilding: return "building";
    case LandmarkTableStatus::kRepairing: return "repairing";
    case LandmarkTableStatus::kReady: return "ready";
    case LandmarkTableStatus::kUnsupported: return "unsupported";
    case LandmarkTableStatus::kFailed: return "failed";
  }
  return "?";
}

const char* p2p_serve_name(P2pServe s) noexcept {
  switch (s) {
    case P2pServe::kNone: return "none";
    case P2pServe::kOracleExact: return "oracle-exact";
    case P2pServe::kAltSearch: return "alt-search";
    case P2pServe::kEngineFallback: return "engine-fallback";
  }
  return "?";
}

// ---- LandmarkTable ---------------------------------------------------------

template <WeightType W>
OracleBounds<W> LandmarkTable<W>::bounds(VertexId s, VertexId t) const {
  using Dist = DistT<W>;
  constexpr Dist kInf = DistTraits<W>::infinity();
  OracleBounds<W> b;
  b.lower = Dist{0};
  b.upper = kInf;
  for (uint32_t k = 0; k < num_landmarks(); ++k) {
    const Dist ds = row(k)[s];
    const Dist dt = row(k)[t];
    if (ds == kInf || dt == kInf) continue;
    const Dist lo = ds > dt ? ds - dt : dt - ds;
    if (lo > b.lower) b.lower = lo;
    const Dist hi = ds + dt;
    if (hi < b.upper) b.upper = hi;
  }
  return b;
}

template <WeightType W>
OracleAnswer<W> LandmarkTable<W>::answer(VertexId s, VertexId t) const {
  using Dist = DistT<W>;
  constexpr Dist kInf = DistTraits<W>::infinity();
  OracleAnswer<W> a;
  if (s == t) {
    a.answered = true;
    a.reachable = true;
    a.distance = Dist{0};
    return a;
  }
  // Decisive unreachability: on a symmetric graph a landmark's reach is
  // its component — one endpoint inside, the other outside proves the
  // pair disconnected.
  for (uint32_t k = 0; k < num_landmarks(); ++k) {
    const bool rs = row(k)[s] != kInf;
    const bool rt = row(k)[t] != kInf;
    if (rs != rt) {
      a.answered = true;
      a.reachable = false;
      return a;
    }
  }
  const OracleBounds<W> b = bounds(s, t);
  if (b.upper != kInf && b.lower == b.upper) {
    a.answered = true;
    a.reachable = true;
    a.distance = b.lower;
  }
  return a;
}

// ---- LandmarkOracle --------------------------------------------------------

template <WeightType W>
bool LandmarkOracle<W>::is_symmetric(const CsrGraph<W>& g) {
  using Arc = std::tuple<VertexId, VertexId, W>;
  std::vector<Arc> fwd, rev;
  fwd.reserve(g.num_edges());
  rev.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (EdgeIndex e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      fwd.emplace_back(u, g.edge_target(e), g.edge_weight(e));
      rev.emplace_back(g.edge_target(e), u, g.edge_weight(e));
    }
  std::sort(fwd.begin(), fwd.end());
  std::sort(rev.begin(), rev.end());
  // Multiset equality: every arc has its reverse with the same weight,
  // parallel edges matched one-for-one.
  return fwd == rev;
}

template <WeightType W>
std::vector<VertexId> LandmarkOracle<W>::select_landmarks(
    const CsrGraph<W>& g, uint32_t k, uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> chosen;
  if (n == 0 || k == 0) return chosen;
  const uint32_t want = std::min<uint32_t>(std::min<uint64_t>(k, n), kMaxLanes);

  // The analysis seed is an anchor, not a landmark: the first landmark is
  // the vertex hop-farthest from it (the periphery — central vertices make
  // poor landmarks because |d(L,s) - d(L,t)| collapses toward 0).
  {
    const VertexId anchor = pick_source(g, seed);
    const std::vector<uint32_t> hops = bfs_hops(g, anchor);
    VertexId far = anchor;
    uint32_t best = 0;
    for (VertexId v = 0; v < n; ++v)
      if (hops[v] != kUnreachedHops && hops[v] > best) {
        best = hops[v];
        far = v;
      }
    chosen.push_back(far);
  }

  // Farthest-point sweep: min_hops[v] = hop distance from v to the chosen
  // set; kUnreachedHops reads as "infinitely far", so the argmax jumps to
  // uncovered components before refining covered ones. Ties break toward
  // the smallest vertex id (the ascending scan with a strict compare).
  std::vector<uint32_t> min_hops(n, kUnreachedHops);
  VertexId last = chosen.back();
  while (true) {
    const std::vector<uint32_t> hops = bfs_hops(g, last);
    for (VertexId v = 0; v < n; ++v)
      if (hops[v] < min_hops[v]) min_hops[v] = hops[v];
    if (chosen.size() >= want) break;
    VertexId next = kInvalidVertex;
    uint32_t best = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (min_hops[v] == 0) continue;  // a chosen landmark itself
      if (next == kInvalidVertex || min_hops[v] > best) {
        next = v;
        best = min_hops[v];
      }
    }
    if (next == kInvalidVertex) break;  // every vertex is a landmark
    chosen.push_back(next);
    last = next;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

template <WeightType W>
std::shared_ptr<const LandmarkTable<W>> LandmarkOracle<W>::build(
    const CsrGraph<W>& g, uint64_t graph_fp, HostEngine<W>& engine,
    const LandmarkConfig& cfg, const QueryControl& ctl) {
  WallTimer timer;
  if (!is_symmetric(g))
    throw LandmarkUnsupportedError(
        "landmark: asymmetric graph — ALT bounds are unsound");
  if (fault::fire(fault::Site::kLandmarkBuild))
    throw Error("landmark.build fault injected (cold build)");

  auto table = std::make_shared<LandmarkTable<W>>();
  table->graph_fp_ = graph_fp;
  table->num_vertices_ = g.num_vertices();
  table->landmarks_ =
      select_landmarks(g, cfg.num_landmarks, cfg.selection_seed);
  ADDS_REQUIRE(!table->landmarks_.empty(),
               "landmark: no landmarks selectable (empty graph)");

  const size_t kcount = table->landmarks_.size();
  table->rows_.resize(kcount * g.num_vertices());
  if (kcount > 1 && g.num_vertices() > kMaxLaneVertices) {
    // Lane encoding cannot address this many vertices: solve rows one at
    // a time on the same warm engine.
    for (size_t k = 0; k < kcount; ++k) {
      SsspResult<W> r = engine.solve(g, table->landmarks_[k], ctl);
      std::copy(r.dist.begin(), r.dist.end(),
                table->rows_.begin() + k * g.num_vertices());
    }
  } else {
    std::vector<LaneQuery> lanes;
    lanes.reserve(kcount);
    for (const VertexId L : table->landmarks_) lanes.push_back({L, nullptr});
    BatchResult<W> batch = engine.solve_batch(g, lanes, ctl);
    for (size_t k = 0; k < kcount; ++k) {
      ADDS_REQUIRE(batch.lanes[k].status == LaneStatus::kOk,
                   "landmark: batch lane failed");
      std::copy(batch.lanes[k].result.dist.begin(),
                batch.lanes[k].result.dist.end(),
                table->rows_.begin() + k * g.num_vertices());
    }
  }
  table->build_ms_ = timer.elapsed_ms();
  return table;
}

template <WeightType W>
std::shared_ptr<const LandmarkTable<W>> LandmarkOracle<W>::repair(
    const LandmarkTable<W>& parent_table, const CsrGraph<W>& parent,
    const CsrGraph<W>& child, uint64_t child_fp,
    const DeltaResult<W>& classification, HostEngine<W>& engine,
    const LandmarkConfig& cfg, const QueryControl& ctl) {
  WallTimer timer;
  ADDS_REQUIRE(parent_table.num_vertices() == parent.num_vertices(),
               "landmark: table/parent size mismatch");
  if (child.num_vertices() != parent.num_vertices())
    throw Error("landmark: vertex count changed across delta");
  if (!is_symmetric(child))
    throw LandmarkUnsupportedError(
        "landmark: delta broke symmetry — ALT bounds are unsound");

  auto table = std::make_shared<LandmarkTable<W>>();
  table->graph_fp_ = child_fp;
  table->num_vertices_ = child.num_vertices();
  table->landmarks_ = parent_table.landmarks();
  table->repaired_ = true;
  const size_t kcount = table->landmarks_.size();
  table->rows_.resize(kcount * child.num_vertices());

  std::vector<DistT<W>> parent_row(parent.num_vertices());
  for (size_t k = 0; k < kcount; ++k) {
    if (fault::fire(fault::Site::kLandmarkBuild))
      throw Error("landmark.build fault injected (warm repair, lane " +
                  std::to_string(k) + ")");
    const VertexId L = table->landmarks_[k];
    const DistT<W>* src = parent_table.row(uint32_t(k));
    parent_row.assign(src, src + parent.num_vertices());
    RepairPlan<W> plan =
        plan_repair(parent, child, classification, parent_row, L);
    SsspResult<W> r = engine.solve_repair(child, L, plan, ctl);
    if (cfg.verify_repairs) {
      const RepairVerdict v = verify_repair(child, L, r.dist);
      if (!v.exact)
        throw Error("landmark: repaired lane " + std::to_string(k) +
                    " failed verification");
    }
    std::copy(r.dist.begin(), r.dist.end(),
              table->rows_.begin() + k * child.num_vertices());
  }
  table->build_ms_ = timer.elapsed_ms();
  return table;
}

template <WeightType W>
std::shared_ptr<const LandmarkTable<W>> LandmarkOracle<W>::assemble(
    uint64_t graph_fp, uint64_t num_vertices, std::vector<VertexId> landmarks,
    std::vector<DistT<W>> rows, double build_ms, bool repaired) {
  ADDS_REQUIRE(!landmarks.empty(), "landmark: assemble with zero landmarks");
  ADDS_REQUIRE(landmarks.size() <= kMaxLanes,
               "landmark: assemble with more landmarks than lanes");
  ADDS_REQUIRE(rows.size() == landmarks.size() * num_vertices,
               "landmark: assemble rows/landmarks size mismatch");
  for (const VertexId L : landmarks)
    ADDS_REQUIRE(L < num_vertices, "landmark: assemble landmark out of range");
  for (size_t k = 0; k < landmarks.size(); ++k)
    ADDS_REQUIRE(rows[k * num_vertices + landmarks[k]] == DistT<W>{0},
                 "landmark: assemble row has nonzero self-distance");
  auto table = std::make_shared<LandmarkTable<W>>();
  table->graph_fp_ = graph_fp;
  table->num_vertices_ = num_vertices;
  table->landmarks_ = std::move(landmarks);
  table->rows_ = std::move(rows);
  table->build_ms_ = build_ms;
  table->repaired_ = repaired;
  return table;
}

// ---- LandmarkRegistry ------------------------------------------------------

template <WeightType W>
LandmarkTableStatus LandmarkRegistry<W>::status(uint64_t fp) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = entries_.find(fp);
  return it == entries_.end() ? LandmarkTableStatus::kNone
                              : it->second.status;
}

template <WeightType W>
void LandmarkRegistry<W>::set_status(uint64_t fp, LandmarkTableStatus s) {
  std::lock_guard<std::mutex> lk(m_);
  Entry& e = entries_[fp];
  if (e.table != nullptr) {
    // Leaving kReady: the old table stops serving (readers keep their
    // refcounted snapshots).
    lru_.erase(e.lru_it);
    e.table.reset();
  }
  e.status = s;
}

template <WeightType W>
void LandmarkRegistry<W>::install(
    uint64_t fp, std::shared_ptr<const LandmarkTable<W>> table) {
  ADDS_REQUIRE(table != nullptr, "landmark-registry: null table");
  std::lock_guard<std::mutex> lk(m_);
  Entry& e = entries_[fp];
  if (e.table != nullptr) lru_.erase(e.lru_it);
  e.status = LandmarkTableStatus::kReady;
  e.table = std::move(table);
  lru_.push_front(fp);
  e.lru_it = lru_.begin();
  evict_excess_locked();
}

template <WeightType W>
std::shared_ptr<const LandmarkTable<W>> LandmarkRegistry<W>::lookup(
    uint64_t fp) {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = entries_.find(fp);
  if (it == entries_.end() || it->second.table == nullptr) return nullptr;
  lru_.erase(it->second.lru_it);
  lru_.push_front(fp);
  it->second.lru_it = lru_.begin();
  return it->second.table;
}

template <WeightType W>
typename LandmarkRegistry<W>::Info LandmarkRegistry<W>::info(
    uint64_t fp) const {
  std::lock_guard<std::mutex> lk(m_);
  Info i;
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return i;
  i.status = it->second.status;
  if (it->second.table != nullptr)
    i.landmarks = it->second.table->num_landmarks();
  return i;
}

template <WeightType W>
void LandmarkRegistry<W>::drop(uint64_t fp) {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return;
  if (it->second.table != nullptr) lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

template <WeightType W>
size_t LandmarkRegistry<W>::resident_tables() const {
  std::lock_guard<std::mutex> lk(m_);
  return lru_.size();
}

template <WeightType W>
uint64_t LandmarkRegistry<W>::evictions() const noexcept {
  std::lock_guard<std::mutex> lk(m_);
  return evictions_;
}

template <WeightType W>
void LandmarkRegistry<W>::evict_excess_locked() {
  while (lru_.size() > max_tables_) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
}

template class LandmarkTable<uint32_t>;
template class LandmarkTable<float>;
template class LandmarkOracle<uint32_t>;
template class LandmarkOracle<float>;
template class LandmarkRegistry<uint32_t>;
template class LandmarkRegistry<float>;

}  // namespace adds
