// Landmark distance oracle (ALT) — precomputed K×V distance tables that
// answer point-to-point queries with zero engine dispatch.
//
// The paper's serving regime (road-class graphs: low degree, high
// diameter) is exactly where goal-directed search wins. A landmark L with
// a precomputed distance row d(L, ·) gives, on a SYMMETRIC graph, the
// triangle-inequality bounds
//
//   |d(L,s) - d(L,t)|  <=  dist(s,t)  <=  d(L,s) + d(L,t)
//
// Maxing the lower bound and min-ing the upper over K landmarks yields an
// interval that is often tight (always when s or t IS a landmark); a tight
// interval IS the answer — no traversal at all. Otherwise the lower bound
// doubles as the admissible, consistent A* heuristic (sssp/astar.hpp's
// LandmarkHeuristic), which settles a fraction of the vertices a full
// solve would.
//
// Soundness discipline:
//   * Bounds are only valid on symmetric graphs, so a table is built only
//     after an exact symmetry check; asymmetric graphs get a typed
//     kUnsupported status and point-to-point queries ride the engine path.
//   * A table is published whole or not at all. The `landmark.build` fault
//     site (fault::Site::kLandmarkBuild) throws mid-construction; callers
//     observe a typed failure, never a partial row.
//   * An oracle answer is exact or the query falls through to a search /
//     an engine — bounds are never served as distances unless tight.
//
// Building the K×V table is one HostEngine::solve_batch over the landmark
// set (PR 7's lane-tagged traversal: K sources pay the scheduling cost
// once). After a graph delta, each landmark row is warm-repaired in place
// (plan_repair / solve_repair / verify_repair per lane) instead of
// recomputed — the same lineage machinery PR 8 built for the result cache.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/delta.hpp"
#include "sssp/host_engine.hpp"
#include "sssp/result.hpp"

namespace adds {

/// Service-level configuration for the landmark layer.
struct LandmarkConfig {
  /// Master switch: disabled means no tables are ever built and every
  /// point-to-point query rides the engine path.
  bool enabled = true;
  /// Landmarks per table, clamped to kMaxLanes (16) and to the number of
  /// distinct selectable vertices.
  uint32_t num_landmarks = 8;
  /// Wall-clock budget for one table build / repair on the rebuilder
  /// thread; <= 0 means unbounded.
  double build_deadline_ms = 10000.0;
  /// Certify every warm-repaired landmark row with verify_repair before
  /// accepting the repaired table (an inexact row falls back typed to a
  /// cold rebuild).
  bool verify_repairs = true;
  /// Registry residency cap: least-recently-used tables beyond this are
  /// dropped (in-flight readers keep their shared_ptr snapshots).
  size_t max_tables = 8;
  /// Deterministic seed for the farthest-point landmark sweep.
  uint64_t selection_seed = 42;
};

/// Lifecycle of a tenant's landmark table.
enum class LandmarkTableStatus : uint8_t {
  kNone = 0,     // no table and none scheduled
  kBuilding,     // cold build queued or running on the rebuilder
  kRepairing,    // warm per-lane repair in flight after a delta
  kReady,        // resident and serving
  kUnsupported,  // asymmetric graph: ALT bounds unsound, never built
  kFailed,       // build failed typed; p2p rides the engine path
};
const char* landmark_status_name(LandmarkTableStatus s) noexcept;

/// How a point-to-point query was answered (QueryOutcome::p2p_serve).
enum class P2pServe : uint8_t {
  kNone = 0,        // not a point-to-point query
  kOracleExact,     // tight table bounds: zero traversal, zero engine
  kAltSearch,       // ALT-guided A* on the submit thread (no engine)
  kEngineFallback,  // no usable table: full SSSP solved on an engine
};
const char* p2p_serve_name(P2pServe s) noexcept;

/// Triangle-inequality interval for one (s, t) pair. `upper` is infinity
/// when no landmark reaches both endpoints.
template <WeightType W>
struct OracleBounds {
  DistT<W> lower{};
  DistT<W> upper = DistTraits<W>::infinity();
};

/// Exact-or-decline answer. `answered` is true only when the table PROVES
/// the result: tight bounds, a landmark endpoint, or decisive
/// unreachability (one endpoint reaches a landmark the other cannot —
/// different components on a symmetric graph).
template <WeightType W>
struct OracleAnswer {
  bool answered = false;
  bool reachable = false;
  DistT<W> distance{};
};

/// Immutable K×V landmark distance table for one graph generation.
/// Construction goes through LandmarkOracle; once published the table is
/// read-only and shared by refcount (queries hold a snapshot across an A*
/// search while the registry drops or replaces the entry).
template <WeightType W>
class LandmarkTable {
 public:
  uint64_t graph_fp() const noexcept { return graph_fp_; }
  uint64_t num_vertices() const noexcept { return num_vertices_; }
  uint32_t num_landmarks() const noexcept {
    return uint32_t(landmarks_.size());
  }
  const std::vector<VertexId>& landmarks() const noexcept {
    return landmarks_;
  }
  double build_ms() const noexcept { return build_ms_; }
  /// True when this table was produced by warm per-lane repair rather
  /// than a cold batch build.
  bool repaired() const noexcept { return repaired_; }

  /// Row k: d(landmark_k, v) for every v. Lane-major storage.
  const DistT<W>* row(uint32_t k) const noexcept {
    return rows_.data() + size_t(k) * num_vertices_;
  }
  /// Borrowed row pointers for LandmarkHeuristic. Valid while this table
  /// is alive.
  std::vector<const DistT<W>*> row_ptrs() const {
    std::vector<const DistT<W>*> p;
    p.reserve(landmarks_.size());
    for (uint32_t k = 0; k < num_landmarks(); ++k) p.push_back(row(k));
    return p;
  }

  /// Triangle-inequality interval for dist(s, t).
  OracleBounds<W> bounds(VertexId s, VertexId t) const;

  /// Exact-or-decline point-to-point answer (see OracleAnswer).
  OracleAnswer<W> answer(VertexId s, VertexId t) const;

 private:
  template <WeightType W2>
  friend class LandmarkOracle;

  uint64_t graph_fp_ = 0;
  uint64_t num_vertices_ = 0;
  std::vector<VertexId> landmarks_;
  std::vector<DistT<W>> rows_;  // lane-major: rows_[k * V + v]
  double build_ms_ = 0.0;
  bool repaired_ = false;
};

/// Thrown when a graph fails the symmetry precondition — the caller maps
/// it to LandmarkTableStatus::kUnsupported (vs kFailed for build errors).
class LandmarkUnsupportedError : public Error {
 public:
  using Error::Error;
};

/// Stateless build/repair entry points (the service drives them from its
/// rebuilder thread; tests call them directly).
template <WeightType W>
class LandmarkOracle {
 public:
  /// Exact symmetry check: every arc (u, v, w) has a reverse (v, u, w),
  /// with multiset semantics for parallel edges. O(E log E).
  static bool is_symmetric(const CsrGraph<W>& g);

  /// Farthest-point landmark sweep: seeded from pick_source (the
  /// degree/reach analysis in graph/analysis.cpp), the first landmark is
  /// the hop-farthest vertex from the seed, each subsequent one maximizes
  /// the min hop distance to the chosen set. Unreached vertices count as
  /// infinitely far, so the sweep jumps to uncovered components first.
  /// Deterministic: ties break toward the smallest vertex id. Returns at
  /// most min(k, kMaxLanes, num_vertices) landmarks.
  static std::vector<VertexId> select_landmarks(const CsrGraph<W>& g,
                                                uint32_t k, uint64_t seed);

  /// Cold build: selects landmarks and solves all K rows with one
  /// solve_batch on `engine`. Throws LandmarkUnsupportedError for
  /// asymmetric graphs, adds::Error on an injected landmark.build fault
  /// or engine failure, DeadlineError past ctl.deadline_ms. The returned
  /// table is complete and immutable.
  static std::shared_ptr<const LandmarkTable<W>> build(
      const CsrGraph<W>& g, uint64_t graph_fp, HostEngine<W>& engine,
      const LandmarkConfig& cfg, const QueryControl& ctl = {});

  /// Warm repair across a delta: re-runs solve_repair per landmark lane
  /// from the parent table's rows (the same plan/solve/verify lineage the
  /// result-cache repair uses), keeping the parent's landmark set. Throws
  /// LandmarkUnsupportedError if the child lost symmetry, adds::Error on
  /// a landmark.build fault, a verification failure, or a vertex-count
  /// change — callers fall back to a cold build(). Never returns a
  /// partially repaired table.
  static std::shared_ptr<const LandmarkTable<W>> repair(
      const LandmarkTable<W>& parent_table, const CsrGraph<W>& parent,
      const CsrGraph<W>& child, uint64_t child_fp,
      const DeltaResult<W>& classification, HostEngine<W>& engine,
      const LandmarkConfig& cfg, const QueryControl& ctl = {});

  /// Reassembles a table from persisted parts (the state store's restore
  /// path, src/persist/). Validates shape only — sizes consistent,
  /// landmark ids in range, zero self-distances — and throws adds::Error
  /// on any mismatch. Shape is NOT truth: the caller must verify the rows
  /// against ground truth (a Dijkstra spot check) before serving bounds
  /// from them.
  static std::shared_ptr<const LandmarkTable<W>> assemble(
      uint64_t graph_fp, uint64_t num_vertices,
      std::vector<VertexId> landmarks, std::vector<DistT<W>> rows,
      double build_ms, bool repaired);
};

/// Thread-safe registry of landmark tables keyed on graph fingerprint,
/// with LRU residency like the catalog's CSR snapshots. The service owns
/// one and mirrors catalog lifecycle into it (publish schedules a build,
/// retire/evict drops, apply_delta moves the entry across the lineage).
/// Lookups return refcounted snapshots, so a drop never invalidates a
/// reader mid-search.
template <WeightType W>
class LandmarkRegistry {
 public:
  explicit LandmarkRegistry(size_t max_tables = 8) noexcept
      : max_tables_(max_tables) {}

  /// Status of `fp` (kNone when never seen).
  LandmarkTableStatus status(uint64_t fp) const;
  /// Sets the lifecycle status without touching any table (kBuilding /
  /// kRepairing / kUnsupported / kFailed transitions).
  void set_status(uint64_t fp, LandmarkTableStatus s);

  /// Publishes a completed table as kReady and bumps it most-recent.
  /// Evicts least-recently-used READY tables beyond max_tables (statuses
  /// without a table are exempt — they occupy no residency).
  void install(uint64_t fp, std::shared_ptr<const LandmarkTable<W>> table);

  /// The READY table for `fp` (nullptr otherwise). Touches LRU recency.
  std::shared_ptr<const LandmarkTable<W>> lookup(uint64_t fp);

  /// Status plus landmark count of the READY table, WITHOUT touching LRU
  /// recency — report scrapes must not perturb eviction order.
  struct Info {
    LandmarkTableStatus status = LandmarkTableStatus::kNone;
    uint32_t landmarks = 0;
  };
  Info info(uint64_t fp) const;

  /// Drops `fp` entirely (table and status). No-op when absent.
  void drop(uint64_t fp);

  size_t resident_tables() const;
  uint64_t evictions() const noexcept;

 private:
  void evict_excess_locked();

  struct Entry {
    LandmarkTableStatus status = LandmarkTableStatus::kNone;
    std::shared_ptr<const LandmarkTable<W>> table;
    std::list<uint64_t>::iterator lru_it;  // valid iff table != nullptr
  };
  mutable std::mutex m_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // front = most recent; READY tables only
  size_t max_tables_;
  uint64_t evictions_ = 0;
};

extern template class LandmarkTable<uint32_t>;
extern template class LandmarkTable<float>;
extern template class LandmarkOracle<uint32_t>;
extern template class LandmarkOracle<float>;
extern template class LandmarkRegistry<uint32_t>;
extern template class LandmarkRegistry<float>;

}  // namespace adds
