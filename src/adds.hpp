// Umbrella header: the complete public API of the ADDS library.
//
//   #include "adds.hpp"
//
// Pulls in the solver front-end (run_solver over all seven engines), the
// graph substrate (CSR graphs, generators, file formats, analysis), result
// validation / path extraction / analytics, the machine models, and — for
// advanced users — the concurrent work-queue primitives themselves.
#pragma once

// Graph substrate.
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/corpus.hpp"
#include "graph/csr_graph.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/gr_format.hpp"
#include "graph/transform.hpp"
#include "graph/types.hpp"

// Machine models and virtual time.
#include "sim/bsp_timeline.hpp"
#include "sim/cost_model.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/sharing_pool.hpp"
#include "sim/trace.hpp"

// The ADDS priority work queue (usable stand-alone; see worklist_demo).
#include "queue/assignment.hpp"
#include "queue/block_pool.hpp"
#include "queue/bucket.hpp"
#include "queue/translation_cache.hpp"
#include "queue/work_queue.hpp"

// SSSP engines and the solver front-end.
#include "core/analytics.hpp"
#include "core/experiment.hpp"
#include "core/paths.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "sssp/astar.hpp"
#include "sssp/delta_heuristic.hpp"

namespace adds {

/// Library version (matches the CMake project version).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace adds
