#include "sim/gpu_spec.hpp"

#include <algorithm>
#include <cmath>

namespace adds {

GpuSpec GpuSpec::rtx2080ti() {
  GpuSpec s;
  s.name = "RTX2080Ti";
  s.sm_count = 68;
  s.threads_per_sm = 1024;
  s.clock_ghz = 1.75;
  s.dram_bandwidth_gbps = 616.0;
  s.dram_gb = 11.0;
  s.l2_mb = 5.5;
  s.scratchpad_kb_per_sm = 48.0;
  s.compute_capability = 7.5;
  return s;
}

GpuSpec GpuSpec::rtx3090() {
  GpuSpec s;
  s.name = "RTX3090";
  s.sm_count = 82;
  s.threads_per_sm = 1536;
  s.clock_ghz = 1.8;
  s.dram_bandwidth_gbps = 936.0;
  s.dram_gb = 24.0;
  s.l2_mb = 6.0;
  s.scratchpad_kb_per_sm = 48.0;
  s.compute_capability = 8.6;
  return s;
}

GpuSpec GpuSpec::scaled(double factor) const {
  GpuSpec s = *this;
  s.name += "@1/" + std::to_string(int(std::lround(1.0 / factor)));
  s.sm_count = std::max(1u, uint32_t(std::lround(double(sm_count) * factor)));
  s.dram_bandwidth_gbps = dram_bandwidth_gbps * factor;
  s.dram_gb = dram_gb * factor;
  s.l2_mb = l2_mb * factor;
  return s;
}

CpuSpec CpuSpec::i9_7900x() {
  CpuSpec s;
  s.name = "i9-7900X";
  s.cores = 10;
  s.threads = 20;
  s.clock_ghz = 3.3;
  s.dram_bandwidth_gbps = 85.0;  // 4-channel DDR4-2666
  return s;
}

}  // namespace adds
