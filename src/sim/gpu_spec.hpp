// Machine descriptions for the virtual-time performance model.
//
// These mirror Table 1 of the paper (RTX 2080 Ti and RTX 3090) plus the
// Intel i9-7900X used for the CPU baselines. `scaled()` produces a
// proportionally smaller machine for running reduced-size corpora: shrinking
// the graph and the machine by the same factor preserves the
// parallelism-vs-work regime the paper analyses (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

namespace adds {

struct GpuSpec {
  std::string name;
  uint32_t sm_count = 0;
  uint32_t threads_per_sm = 0;
  double clock_ghz = 0.0;
  double dram_bandwidth_gbps = 0.0;  // GB/s
  double dram_gb = 0.0;
  double l2_mb = 0.0;
  double scratchpad_kb_per_sm = 0.0;
  double compute_capability = 0.0;

  uint32_t hardware_threads() const noexcept {
    return sm_count * threads_per_sm;
  }

  /// Worker thread blocks the ADDS runtime launches: the paper runs enough
  /// 256-thread worker blocks to fill the machine, minus one manager block.
  uint32_t worker_blocks(uint32_t block_width = 256) const noexcept {
    const uint32_t blocks = hardware_threads() / block_width;
    return blocks > 1 ? blocks - 1 : 1;
  }

  static GpuSpec rtx2080ti();
  static GpuSpec rtx3090();

  /// A machine shrunk by `factor` in SMs and bandwidth (>= 1 SM).
  GpuSpec scaled(double factor) const;
};

struct CpuSpec {
  std::string name;
  uint32_t cores = 0;
  uint32_t threads = 0;
  double clock_ghz = 0.0;
  double dram_bandwidth_gbps = 0.0;

  static CpuSpec i9_7900x();
};

}  // namespace adds
