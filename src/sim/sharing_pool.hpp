// Processor-sharing server pool: the virtual-time executor for the
// asynchronous ADDS worker thread blocks.
//
// Each server models one WTB. A submitted job carries its size in *edge
// units* (relaxations, plus small charges for stale items). A busy server
// progresses at
//
//     rate = min(server_rate, bandwidth_cap / busy_servers)
//
// i.e. WTBs run at their latency-bound speed until together they saturate
// DRAM bandwidth, after which bandwidth is shared equally — the processor-
// sharing idealization of a memory-bound GPU. Advancing virtual time is
// event-driven: rates only change when a job completes, so the pool
// advances exactly from completion to completion.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace adds {

class SharingPool {
 public:
  struct Completion {
    uint64_t job_id;
    double t_us;
  };

  SharingPool(uint32_t num_servers, double server_rate_edges_per_us,
              double cap_edges_per_us)
      : num_servers_(num_servers),
        server_rate_(server_rate_edges_per_us),
        cap_rate_(cap_edges_per_us) {
    ADDS_REQUIRE(num_servers >= 1, "pool needs at least one server");
    ADDS_REQUIRE(server_rate_ > 0 && cap_rate_ > 0, "rates must be positive");
  }

  double now_us() const noexcept { return now_us_; }
  uint32_t num_busy() const noexcept {
    return static_cast<uint32_t>(jobs_.size());
  }
  uint32_t num_idle() const noexcept { return num_servers_ - num_busy(); }
  bool has_idle() const noexcept { return num_busy() < num_servers_; }
  uint32_t num_servers() const noexcept { return num_servers_; }

  /// Sum of the *initially assigned* edge units of all in-flight jobs (the
  /// utilization signal the manager watches).
  double busy_edges_assigned() const noexcept { return assigned_edges_; }
  double busy_edges_remaining() const noexcept {
    double total = 0;
    for (const auto& j : jobs_) total += j.remaining;
    return total;
  }
  uint32_t peak_busy() const noexcept { return peak_busy_; }
  uint64_t jobs_completed() const noexcept { return jobs_completed_; }

  /// Submits a job at the current virtual time. Requires an idle server.
  uint64_t submit(double edge_units) {
    ADDS_ASSERT_MSG(has_idle(), "submit() with no idle server");
    ADDS_ASSERT(edge_units >= 0);
    const uint64_t id = next_job_id_++;
    jobs_.push_back({id, edge_units, edge_units});
    assigned_edges_ += edge_units;
    if (num_busy() > peak_busy_) peak_busy_ = num_busy();
    return id;
  }

  /// Current per-server progress rate.
  double share_rate() const noexcept {
    if (jobs_.empty()) return server_rate_;
    const double bw_share = cap_rate_ / double(jobs_.size());
    return bw_share < server_rate_ ? bw_share : server_rate_;
  }

  /// Advances virtual time to `t`, appending completions (in completion
  /// order) to `out`. `t` must be >= now_us().
  void advance_to(double t, std::vector<Completion>& out) {
    ADDS_ASSERT(t >= now_us_ - 1e-9);
    while (!jobs_.empty()) {
      const double rate = share_rate();
      // Earliest finisher under the current rate.
      size_t min_i = 0;
      for (size_t i = 1; i < jobs_.size(); ++i)
        if (jobs_[i].remaining < jobs_[min_i].remaining) min_i = i;
      const double dt_finish = jobs_[min_i].remaining / rate;
      if (now_us_ + dt_finish > t) {
        // No completion before t: drain partial progress and stop.
        const double dt = t - now_us_;
        for (auto& j : jobs_) j.remaining -= rate * dt;
        now_us_ = t;
        return;
      }
      now_us_ += dt_finish;
      for (auto& j : jobs_) j.remaining -= rate * dt_finish;
      const Job done = jobs_[min_i];
      assigned_edges_ -= done.size;
      jobs_.erase(jobs_.begin() + long(min_i));
      ++jobs_completed_;
      out.push_back({done.id, now_us_});
    }
    now_us_ = t;
  }

  /// Virtual time of the next completion with no further submissions
  /// (infinity when idle).
  double next_completion_time() const noexcept {
    if (jobs_.empty()) return kInfinity;
    const double rate = share_rate();
    double min_rem = jobs_[0].remaining;
    for (const auto& j : jobs_) min_rem = std::min(min_rem, j.remaining);
    return now_us_ + min_rem / rate;
  }

  static constexpr double kInfinity = 1e300;

 private:
  struct Job {
    uint64_t id;
    double size;       // edge units at submission
    double remaining;  // edge units left
  };

  uint32_t num_servers_;
  double server_rate_;
  double cap_rate_;
  double now_us_ = 0.0;
  double assigned_edges_ = 0.0;
  uint64_t next_job_id_ = 1;
  uint64_t jobs_completed_ = 0;
  uint32_t peak_busy_ = 0;
  std::vector<Job> jobs_;
};

}  // namespace adds
