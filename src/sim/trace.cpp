#include "sim/trace.hpp"

#include <algorithm>

namespace adds {

double ParallelismTrace::mean_parallelism() const {
  if (samples_.size() < 2) return samples_.empty() ? 0.0 : samples_[0].edges_in_flight;
  double area = 0.0;
  for (size_t i = 1; i < samples_.size(); ++i) {
    const double dt = samples_[i].t_us - samples_[i - 1].t_us;
    area += samples_[i - 1].edges_in_flight * dt;
  }
  const double span = samples_.back().t_us - samples_.front().t_us;
  return span > 0 ? area / span : samples_[0].edges_in_flight;
}

double ParallelismTrace::peak_parallelism() const {
  double peak = 0.0;
  for (const auto& s : samples_) peak = std::max(peak, s.edges_in_flight);
  return peak;
}

std::vector<ParallelismTrace::Sample> ParallelismTrace::resample(
    size_t points) const {
  std::vector<Sample> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  const double t0 = samples_.front().t_us;
  const double t1 = samples_.back().t_us;
  const double dt = points > 1 ? (t1 - t0) / double(points - 1) : 0.0;
  size_t cursor = 0;
  for (size_t i = 0; i < points; ++i) {
    const double t = t0 + dt * double(i);
    while (cursor + 1 < samples_.size() && samples_[cursor + 1].t_us <= t)
      ++cursor;
    out.push_back({t, samples_[cursor].edges_in_flight});
  }
  return out;
}

}  // namespace adds
