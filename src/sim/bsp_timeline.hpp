// Virtual clock for Bulk-Synchronous-Parallel executions (Near-Far,
// Bellman-Ford, nvGRAPH-like baselines).
//
// A BSP algorithm is a sequence of kernel launches separated by barriers.
// The engines call add_kernel()/add_scan() as they execute each superstep on
// the host; the timeline accumulates the modelled virtual time and feeds the
// parallelism trace (the per-superstep available work, which is what the
// paper plots for NF in Figures 11-15).
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/trace.hpp"

namespace adds {

class BspTimeline {
 public:
  explicit BspTimeline(const GpuCostModel& model, double trace_min_dt_us = 1.0)
      : model_(&model), trace_(trace_min_dt_us) {}

  double now_us() const noexcept { return now_us_; }
  uint64_t kernels_launched() const noexcept { return kernels_; }

  /// One relaxation kernel over `items` worklist entries / `edges` edges.
  void add_kernel(uint64_t items, uint64_t edges) {
    trace_.record(now_us_, double(edges));
    now_us_ += model_->bsp_kernel_us(items, edges);
    trace_.record(now_us_, double(edges));
    ++kernels_;
  }

  /// A streaming pass (compaction, dedup filter, near/far split).
  void add_scan(uint64_t items) {
    now_us_ += model_->scan_pass_us(items);
    ++kernels_;
  }

  /// Fixed host-side overhead (e.g. a cudaMemcpy of a counter).
  void add_overhead_us(double us) { now_us_ += us; }

  const ParallelismTrace& trace() const noexcept { return trace_; }

 private:
  const GpuCostModel* model_;
  double now_us_ = 0.0;
  uint64_t kernels_ = 0;
  ParallelismTrace trace_;
};

}  // namespace adds
