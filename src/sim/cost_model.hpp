// The virtual-time cost model (DESIGN.md §2 substitution for real CUDA
// hardware).
//
// The model reduces SSSP execution to the quantities the paper's analysis
// actually turns on:
//
//   * Edge-relaxation throughput is latency-bound at low parallelism and
//     bandwidth-bound at high parallelism:
//         rate(T active threads) = min(T / edge_latency_us,
//                                      bandwidth_cap_edges_per_us)
//     Each relaxation touches ~`bytes_per_edge` of poorly-coalesced DRAM
//     traffic (worklist entry, CSR row, neighbour ids + weights, atomicMin
//     on the distance array), so the cap scales with the board's bandwidth,
//     which is how the RTX 3090's larger gap over Near-Far emerges.
//   * BSP algorithms pay a fixed `kernel_launch_us` per kernel launch
//     (launch + barrier + buffer swap), the term that dominates
//     high-diameter graphs under double buffering.
//   * The asynchronous ADDS runtime instead pays a small per-assignment
//     pickup cost and a manager tick period.
//
// Calibration: constants are set so that a full-size RTX 2080 Ti saturates
// at a few times 10^4 active threads (the regime in the paper's Figures
// 11-15) with a peak of a few G edge-relaxations/s, consistent with the
// paper's road-USA discussion (~290M relaxations in ~40 ms).
#pragma once

#include <cstdint>

#include "sim/gpu_spec.hpp"

namespace adds {

struct GpuCostModel {
  // Tunables (defaults calibrated as described above).
  double bytes_per_edge = 85.0;       // effective DRAM bytes per relaxation
  double edge_latency_us = 5.5;       // dependent-latency per relaxation
  double kernel_launch_us = 12.0;     // BSP superstep fixed cost
  double scan_bytes_per_item = 8.0;   // worklist compaction / filter traffic
  double assignment_overhead_us = 0.5;  // WTB pickup of an assignment
  double mtb_tick_us = 2.0;           // manager scan period
  uint32_t wtb_width = 256;           // threads per worker block

  explicit GpuCostModel(const GpuSpec& spec) : spec_(spec) {}

  const GpuSpec& spec() const noexcept { return spec_; }

  /// Peak bandwidth-limited relaxation rate (edges per virtual microsecond).
  double cap_edges_per_us() const noexcept {
    return spec_.dram_bandwidth_gbps * 1e3 / bytes_per_edge;  // GB/s -> B/us
  }

  /// Latency-bound rate of T concurrently active threads.
  double thread_edges_per_us(double active_threads) const noexcept {
    return active_threads / edge_latency_us;
  }

  /// Effective relaxation rate with T active threads.
  double edge_rate(double active_threads) const noexcept {
    const double latency_bound = thread_edges_per_us(active_threads);
    const double cap = cap_edges_per_us();
    return latency_bound < cap ? latency_bound : cap;
  }

  /// Rate of one worker block with all lanes busy.
  double wtb_edge_rate() const noexcept {
    return thread_edges_per_us(double(wtb_width));
  }

  /// Virtual time of one BSP kernel processing `items` worklist entries
  /// with `edges` total relaxations. The NF/Gunrock kernels are
  /// edge-parallel (load-balanced gather), so the active thread count is the
  /// edge frontier size capped by the machine; a kernel can never finish
  /// faster than one dependent-latency round.
  double bsp_kernel_us(uint64_t items, uint64_t edges) const noexcept {
    (void)items;
    if (edges == 0) return kernel_launch_us;
    const double active =
        double(edges < spec_.hardware_threads() ? edges
                                                : spec_.hardware_threads());
    const double work_us = double(edges) / edge_rate(active);
    return kernel_launch_us +
           (work_us > edge_latency_us ? work_us : edge_latency_us);
  }

  /// Virtual time of a streaming pass over `items` words (compaction,
  /// dedup-filter, near/far split): bandwidth-bound, plus a launch.
  double scan_pass_us(uint64_t items) const noexcept {
    const double bytes = double(items) * scan_bytes_per_item;
    return kernel_launch_us +
           bytes / (spec_.dram_bandwidth_gbps * 1e3);
  }

  /// Number of active threads at which the machine saturates; the dynamic-Δ
  /// controller aims utilization at this point.
  double saturation_threads() const noexcept {
    return cap_edges_per_us() * edge_latency_us;
  }

 private:
  GpuSpec spec_;
};

/// Cost model for the CPU baselines (Galois delta-stepping and serial
/// Dijkstra). Work counts are measured by really running the algorithms;
/// this converts them to virtual time on the modelled 10-core machine.
struct CpuCostModel {
  double seq_edge_us = 0.040;     // cache-unfriendly relaxation, one thread
  double heap_op_us = 0.050;      // binary-heap push/pop (Dijkstra)
  double bucket_sync_us = 5.0;    // per delta-stepping bucket barrier
  /// Multicore scaling efficiency. Memory-bound graph traversal scales
  /// poorly on CPUs: the paper's own numbers put 20-thread Galois
  /// delta-stepping at only ~2.4x serial Dijkstra (34.4 / 14.2), which this
  /// value calibrates to.
  double parallel_efficiency = 0.15;

  explicit CpuCostModel(const CpuSpec& spec) : spec_(spec) {}

  const CpuSpec& spec() const noexcept { return spec_; }

  /// Parallel delta-stepping: edges spread over hardware threads with
  /// imperfect scaling, plus a barrier per bucket phase.
  double delta_stepping_us(uint64_t edges, uint64_t bucket_phases) const {
    const double threads = double(spec_.threads) * parallel_efficiency;
    return double(edges) * seq_edge_us / threads +
           double(bucket_phases) * bucket_sync_us;
  }

  /// Serial Dijkstra: every relaxation plus a heap operation per push/pop.
  double dijkstra_us(uint64_t edges, uint64_t heap_ops) const {
    return double(edges) * seq_edge_us + double(heap_ops) * heap_op_us;
  }

 private:
  CpuSpec spec_;
};

}  // namespace adds
