// Parallelism-over-time traces (paper Figures 11-15).
//
// The paper plots "the amount of parallelism (edge count) during the
// progress of execution". Engines record (virtual time, in-flight edge
// count) samples here; the recorder thins samples so multi-second runs stay
// small, and can resample onto a fixed grid for CSV output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adds {

class ParallelismTrace {
 public:
  struct Sample {
    double t_us;
    double edges_in_flight;
  };

  /// `min_dt_us`: samples closer together than this are merged (keeping the
  /// maximum) to bound memory.
  explicit ParallelismTrace(double min_dt_us = 0.0)
      : min_dt_us_(min_dt_us) {}

  void record(double t_us, double edges) {
    if (!samples_.empty() && t_us - samples_.back().t_us < min_dt_us_) {
      if (edges > samples_.back().edges_in_flight)
        samples_.back().edges_in_flight = edges;
      return;
    }
    samples_.push_back({t_us, edges});
  }

  const std::vector<Sample>& samples() const noexcept { return samples_; }
  bool empty() const noexcept { return samples_.empty(); }

  double duration_us() const noexcept {
    return samples_.empty() ? 0.0 : samples_.back().t_us;
  }

  /// Time-weighted mean parallelism.
  double mean_parallelism() const;
  double peak_parallelism() const;

  /// Resamples onto `points` equally spaced times (step interpolation),
  /// e.g. for compact CSV output.
  std::vector<Sample> resample(size_t points) const;

 private:
  double min_dt_us_;
  std::vector<Sample> samples_;
};

}  // namespace adds
