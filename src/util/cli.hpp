// Minimal command-line option parsing for examples and bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag` forms, with
// typed getters and an auto-generated --help text. Unknown options are an
// error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adds {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Declare an option before parse(). `help` appears in --help output.
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parses argv. Returns false (after printing help) if --help was given.
  /// Throws adds::Error on unknown options or missing values.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  /// Every occurrence of a repeatable option, in command-line order.
  /// Empty if the option was never given (the default value is NOT
  /// included — callers that want a fallback check empty() themselves).
  std::vector<std::string> list(const std::string& name) const;

  /// Positional arguments left over after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string help_text() const;

 private:
  struct Opt {
    std::string help;
    std::string value;   // current value (default until parsed; last wins)
    std::vector<std::string> values;  // every parsed occurrence, in order
    bool is_flag = false;
    bool seen = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> positional_;
};

}  // namespace adds
