// Deterministic pseudo-random number generation.
//
// Every generated graph and every randomized test in this repository is
// seeded through these generators so that the benchmark corpus and all
// experiment tables are reproducible bit-for-bit across runs and machines.
// We avoid std::mt19937 + std::uniform_int_distribution because their output
// is not specified identically across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace adds {

/// SplitMix64: tiny, fast 64-bit generator; also used to seed Xoshiro.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  constexpr uint64_t next() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — high quality, fast, deterministic across platforms.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept { return next(); }

  uint64_t next() noexcept {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (unbiased enough for graph generation; bound must be > 0).
  uint64_t next_below(uint64_t bound) noexcept {
    // 128-bit multiply keeps the mapping deterministic and nearly unbiased.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t next_range(uint64_t lo, uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() noexcept {
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
  }

  /// True with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<uint64_t, 4> state_{};
};

/// Stable 64-bit mix of two values; used to derive per-entity seeds
/// (e.g. seed-per-graph = mix(corpus_seed, graph_index)).
constexpr uint64_t mix_seed(uint64_t a, uint64_t b) noexcept {
  SplitMix64 sm(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
  return sm.next();
}

}  // namespace adds
