// Plain-text table rendering for bench output. Every bench binary prints the
// paper's tables in the paper's row/column layout using this formatter.
#pragma once

#include <string>
#include <vector>

namespace adds {

/// A simple column-aligned ASCII table with an optional title and footer.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  void add_footer(std::string line) { footers_.push_back(std::move(line)); }

  /// Render with box-drawing rules and column alignment.
  std::string render() const;
  /// Render and write to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footers_;
};

/// Format helpers used across bench binaries.
std::string fmt_ratio(double x);          // "2.93x"
std::string fmt_time_us(double us);       // "123.4 us" / "1.23 ms" / "2.1 s"
std::string fmt_count(uint64_t n);        // "1,234,567"
std::string fmt_double(double x, int prec = 3);

}  // namespace adds
