// Streaming statistics, histograms and the bucketed-distribution tables the
// paper's evaluation section is built from (Tables 3, 4, 5 are all
// "distribution of a ratio over named bins" tables).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace adds {

/// Single-pass mean/min/max/variance accumulator (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean of a set of positive ratios. The paper's "average speedup
/// of 2.9x" style numbers are reported this way (and we report both).
double geomean(const std::vector<double>& xs);

/// Arithmetic mean.
double mean(const std::vector<double>& xs);

/// p in [0,100]; linear interpolation between closest ranks.
double percentile(std::vector<double> xs, double p);

/// A distribution over half-open ratio bins, e.g. Table 3's
/// {<0.9, 0.9-1.1, 1.1-1.5, 1.5-2, 2-3, 3-5, >=5}. Bin i covers
/// [edges[i-1], edges[i]); bin 0 is (-inf, edges[0]); the last bin is
/// [edges.back(), +inf).
class BinnedDistribution {
 public:
  /// `edges` must be strictly increasing and non-empty.
  explicit BinnedDistribution(std::vector<double> edges);

  void add(double x) noexcept;

  size_t num_bins() const noexcept { return counts_.size(); }
  size_t count(size_t bin) const noexcept { return counts_[bin]; }
  size_t total() const noexcept { return total_; }
  /// Percentage of samples in `bin`, rounded like the paper ("24%").
  int percent(size_t bin) const noexcept;
  /// Human-readable label for a bin, e.g. "<0.9x", "1.5x-2x", ">=5x".
  std::string label(size_t bin) const;
  /// "n (p%)" cell text matching the paper's table formatting.
  std::string cell(size_t bin) const;

  /// The exact bin edges used by the paper's speedup tables (3 and 5).
  static BinnedDistribution speedup_bins();
  /// The exact bin edges used by the paper's work-ratio table (4).
  static BinnedDistribution work_bins();

 private:
  std::vector<double> edges_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Log2-spaced histogram for degree/diameter style summaries (Table 2).
class Log2Histogram {
 public:
  Log2Histogram(double lo, double hi);
  void add(double x) noexcept;
  size_t num_bins() const noexcept { return counts_.size(); }
  size_t count(size_t bin) const noexcept { return counts_[bin]; }
  size_t total() const noexcept { return total_; }
  std::string label(size_t bin) const;

 private:
  double lo_;
  std::vector<size_t> counts_;  // [ <lo, lo-2lo, ..., >=hi ]
  size_t total_ = 0;
};

}  // namespace adds
