// Lock-free fixed-size flight recorder: the last N structured events,
// always recordable, dumpable at any moment from any thread.
//
// The serving layer generates events on every hot path (query admitted,
// engine quarantined, health transition...). Recording must therefore be
// wait-free for writers — a mutex-protected log would serialize the very
// threads whose interleaving a postmortem needs to see. The ring gives up
// the opposite guarantee instead: a reader may observe a torn slot while a
// lap-behind writer is overwriting it, and simply skips it.
//
// Protocol (per slot, seqlock-flavoured):
//
//   writer: seq   = head.fetch_add(1)            // global ticket
//           slot  = slots[seq % capacity]
//           stamp = ((seq + 1) << 1) | 1         // odd: write in progress
//           ...store payload words (relaxed atomics)...
//           stamp = (seq + 1) << 1               // even: published
//
//   reader: s1 = stamp; skip if zero or odd
//           copy payload
//           s2 = stamp; keep only if s1 == s2    // no writer lapped us
//
// The payload is packed into three uint64 words stored with relaxed
// atomics, so a torn read is merely *stale*, never undefined behaviour —
// the stamp re-check discards it. This keeps the recorder clean under
// TSan, which a classic plain-write seqlock is not.
//
// Event semantics (what `kind`, `a`, `b` mean) belong to the layer that
// records them; the service's vocabulary lives in service/supervisor.hpp.
#pragma once

#include <atomic>
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace adds {

/// One structured event. POD on purpose: it must pack into three machine
/// words (see FlightRecorder::Slot) and carry no ownership.
struct FlightEvent {
  /// Recorder-relative timestamp supplied by the caller (the service uses
  /// its uptime clock). Float: 0.1ms resolution over days is plenty for
  /// ordering a postmortem, and it keeps the payload in three words.
  float t_ms = 0.0f;
  /// Caller-defined event vocabulary (e.g. service FlightKind).
  uint16_t kind = 0;
  /// Engine slot index, or kNoEngine for service-wide events.
  uint16_t engine = 0xffff;
  /// Small payloads; meaning is per-kind (source vertex, state pair...).
  uint32_t a = 0;
  uint32_t c = 0;
  /// Large payload; meaning is per-kind (query id, graph fingerprint...).
  uint64_t b = 0;

  static constexpr uint16_t kNoEngine = 0xffff;
};

/// A FlightEvent plus the global sequence number it was recorded under.
/// Dumps are ordered by `seq`; gaps mean the ring lapped those events.
struct StampedFlightEvent {
  uint64_t seq = 0;
  FlightEvent ev;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 2) so the slot index
  /// is a mask, not a division, on the record path.
  explicit FlightRecorder(size_t capacity = 4096) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const noexcept { return slots_.size(); }

  /// Lifetime events recorded (>= capacity means the ring has wrapped).
  uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Wait-free for practical purposes: one fetch_add plus five relaxed
  /// stores. Never blocks, never allocates, callable from any thread
  /// (including under locks — it takes none).
  void record(const FlightEvent& e) noexcept {
    const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[seq & mask_];
    const uint64_t published = (seq + 1) << 1;
    s.stamp.store(published | 1, std::memory_order_release);
    uint64_t w0 = 0;
    uint32_t t_bits;
    static_assert(sizeof(t_bits) == sizeof(e.t_ms));
    std::memcpy(&t_bits, &e.t_ms, sizeof(t_bits));
    w0 = uint64_t(t_bits) | (uint64_t(e.kind) << 32) |
         (uint64_t(e.engine) << 48);
    s.w0.store(w0, std::memory_order_relaxed);
    s.w1.store(uint64_t(e.a) | (uint64_t(e.c) << 32),
               std::memory_order_relaxed);
    s.w2.store(e.b, std::memory_order_relaxed);
    s.stamp.store(published, std::memory_order_release);
  }

  /// Snapshot of the surviving events, oldest first. O(capacity); intended
  /// for postmortems and shutdown dumps, not the hot path. Torn slots
  /// (a writer lapped the ring mid-copy) are skipped, not blocked on.
  std::vector<StampedFlightEvent> dump() const {
    std::vector<StampedFlightEvent> out;
    out.reserve(slots_.size());
    for (const Slot& s : slots_) {
      const uint64_t s1 = s.stamp.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1)) continue;  // empty or mid-write
      const uint64_t w0 = s.w0.load(std::memory_order_relaxed);
      const uint64_t w1 = s.w1.load(std::memory_order_relaxed);
      const uint64_t w2 = s.w2.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.stamp.load(std::memory_order_relaxed) != s1) continue;  // lapped
      StampedFlightEvent e;
      e.seq = (s1 >> 1) - 1;
      const uint32_t t_bits = uint32_t(w0);
      std::memcpy(&e.ev.t_ms, &t_bits, sizeof(e.ev.t_ms));
      e.ev.kind = uint16_t(w0 >> 32);
      e.ev.engine = uint16_t(w0 >> 48);
      e.ev.a = uint32_t(w1);
      e.ev.c = uint32_t(w1 >> 32);
      e.ev.b = w2;
      out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const StampedFlightEvent& x, const StampedFlightEvent& y) {
                return x.seq < y.seq;
              });
    return out;
  }

 private:
  struct Slot {
    /// 0 = never written; even = published, (stamp >> 1) - 1 is the seq;
    /// odd = a writer owns the slot right now.
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> w0{0}, w1{0}, w2{0};
  };

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
};

}  // namespace adds
