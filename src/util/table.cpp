#include "util/table.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace adds {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  // Compute column widths over header + all rows.
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  if (!header_.empty()) measure(header_);
  for (const auto& r : rows_) measure(r);

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (size_t c = 0; c < cols; ++c)
      out << std::string(width[c] + 2, '-') << '+';
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& r) {
    out << '|';
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
    }
    out << '\n';
  };

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
  for (const auto& f : footers_) out << f << '\n';
  return out.str();
}

void TextTable::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_ratio(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", x);
  return buf;
}

std::string fmt_time_us(double us) {
  char buf[48];
  if (us < 1e3)
    std::snprintf(buf, sizeof(buf), "%.1f us", us);
  else if (us < 1e6)
    std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.3f s", us / 1e6);
  return buf;
}

std::string fmt_count(uint64_t n) {
  char raw[32];
  std::snprintf(raw, sizeof(raw), "%" PRIu64, n);
  std::string s(raw);
  std::string out;
  out.reserve(s.size() + s.size() / 3);
  size_t lead = s.size() % 3 == 0 ? 3 : s.size() % 3;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += s[i];
  }
  return out;
}

std::string fmt_double(double x, int prec) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, x);
  return buf;
}

}  // namespace adds
