// Wall-clock timing helper. Bench binaries report *virtual* (modeled) time
// for GPU algorithms; WallTimer is used only for harness self-reporting and
// for the real host-thread engines.
#pragma once

#include <chrono>

namespace adds {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsed_sec() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_sec() * 1e3; }
  double elapsed_us() const { return elapsed_sec() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace adds
