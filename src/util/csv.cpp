#include "util/csv.hpp"

#include <exception>
#include <filesystem>

#include "util/error.hpp"

namespace adds {

namespace {

void ensure_parent_dirs(const std::filesystem::path& p) {
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path)
    : path_(path), tmp_path_(path + ".tmp") {
  ensure_parent_dirs(std::filesystem::path(path));
  out_.open(tmp_path_, std::ios::out | std::ios::trunc);
  ADDS_REQUIRE(out_.is_open(), "cannot open CSV staging file: " + tmp_path_);
}

CsvWriter::~CsvWriter() {
  if (published_) return;
  if (std::uncaught_exceptions() > 0) {
    // The scope is unwinding on a failure: discard the staged rows and
    // keep whatever CSV a previous successful run published.
    out_.close();
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
    return;
  }
  try {
    close();
  } catch (...) {
    // Destructor: swallow; the staging file stays behind as evidence.
  }
}

void CsvWriter::close() {
  if (published_) return;
  out_.flush();
  out_.close();
  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  ADDS_REQUIRE(!ec, "cannot publish CSV output file: " + path_ + ": " +
                        ec.message());
  published_ = true;
}

void CsvWriter::write_header(const std::vector<std::string>& cols) {
  write_row(cols);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  ensure_parent_dirs(std::filesystem::path(path));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::out | std::ios::trunc | std::ios::binary);
    ADDS_REQUIRE(f.is_open(), "cannot open staging file: " + tmp);
    f.write(content.data(), std::streamsize(content.size()));
    f.flush();
    ADDS_REQUIRE(f.good(), "write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  ADDS_REQUIRE(!ec, "cannot publish file: " + path + ": " + ec.message());
}

}  // namespace adds
