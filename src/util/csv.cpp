#include "util/csv.hpp"

#include <filesystem>

#include "util/error.hpp"

namespace adds {

CsvWriter::CsvWriter(const std::string& path) : path_(path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path, std::ios::out | std::ios::trunc);
  ADDS_REQUIRE(out_.is_open(), "cannot open CSV output file: " + path);
}

void CsvWriter::write_header(const std::vector<std::string>& cols) {
  write_row(cols);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace adds
