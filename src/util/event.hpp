// Eventcount: a blocking wait primitive for the queue's idle loops.
//
// The protocol's wait loops (a writer in `Bucket::wait_allocated`, an idle
// worker on its assignment flag, the manager between empty sweeps) used to
// poll with a capped-backoff sleep (util/backoff.hpp): robust, but the cap
// puts a ~128us floor under every manager→worker handoff and under
// abort/cancel reaction latency. `Event` replaces the sleep phase with a
// real block on a condition variable while keeping the poll loop's shape:
// the caller still owns its predicate over ordinary atomics, and the event
// only decides *when to re-check*.
//
// Design (a classic mutex+condvar eventcount):
//
//   * `notify_all()` is cheap when nobody waits: one seq_cst fence plus a
//     relaxed load of the waiter count — no lock, no syscall. Hot paths
//     (assignment delivery, capacity mapping) can call it unconditionally.
//   * A waiter registers itself (waiter count++), fences, and re-checks the
//     predicate before sleeping; a notifier changes state first, fences,
//     then checks for waiters. The two seq_cst fences form a Dekker-style
//     handshake: whichever side fences later sees the other's write, so a
//     waiter can never sleep through a notification that followed its
//     registration (see the comment in notify_all()).
//   * Sleeps take the epoch under the mutex and wait for it to change;
//     notify bumps the epoch under the same mutex. A notification between
//     the predicate re-check and the cv wait is therefore also never lost.
//   * Every sleep is additionally time-bounded (kSafetyTickUs). State in
//     this codebase is plain atomics that *external* code may flip without
//     knowing about the event (tests poking an abort flag, a cancel token
//     set by a watchdog built before events existed); the tick turns such
//     un-notified transitions from a hang into a bounded-latency wakeup,
//     exactly like the old capped backoff — but only as a safety net, not
//     as the expected wakeup path.
//
// All members are either atomics or accessed under the mutex; the type is
// TSan-clean by construction. Waiters may call await concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace adds {

class Event {
 public:
  Event() = default;
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Wakes every current waiter. Call *after* making the awaited state
  /// change visible (a release store or RMW on the predicate's atomics).
  void notify_all() noexcept {
    // Handshake with await(): the waiter does [waiters++; fence; pred?],
    // we do [state change; fence; waiters?]. In the seq_cst fence order
    // one side precedes the other. If our fence is first, the waiter's
    // predicate re-check (after its fence) sees the state change and it
    // never sleeps. If the waiter's fence is first, our load below sees
    // waiters > 0 and we take the slow path, whose epoch bump under the
    // mutex wakes (or forestalls) its cv wait.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    {
      std::lock_guard<std::mutex> lk(m_);
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
  }

  /// Blocks until `pred()` returns true. The predicate must be cheap,
  /// noexcept, and read only atomics (it runs on every wakeup, including
  /// spurious ones and safety ticks).
  template <class Pred>
  void await(Pred&& pred) noexcept {
    if (pred()) return;
    // Spin phase: short waits (the common handoff case) never pay for the
    // mutex. Mirrors Backoff's yield phase.
    for (uint32_t i = 0; i < kSpinIters; ++i) {
      std::this_thread::yield();
      if (pred()) return;
    }
    while (!sleep_once(pred, kSafetyTickUs)) {
    }
  }

  /// Blocks until `pred()` returns true or `timeout` elapses; returns the
  /// final pred(). No spin phase — callers on a timed wait are already
  /// latency-insensitive relative to the timeout.
  template <class Pred>
  bool await_for(Pred&& pred, std::chrono::microseconds timeout) noexcept {
    if (pred()) return true;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return pred();
      const auto left =
          std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                now);
      const uint32_t slice_us = static_cast<uint32_t>(
          left.count() < int64_t(kSafetyTickUs) ? left.count()
                                                : int64_t(kSafetyTickUs));
      if (sleep_once(pred, slice_us)) return true;
    }
  }

 private:
  /// One registered sleep of at most `max_us`. Returns pred().
  template <class Pred>
  bool sleep_once(Pred&& pred, uint32_t max_us) noexcept {
    // Epoch must be read before registration: a notify that lands after
    // this read either bumps the epoch (our cv wait predicate is already
    // satisfied) or skipped the bump because it saw no waiters — in which
    // case the fence pair below guarantees our predicate re-check sees its
    // state change.
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    waiters_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool satisfied = pred();
    if (!satisfied) {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait_for(lk, std::chrono::microseconds(max_us), [&]() noexcept {
        return epoch_.load(std::memory_order_relaxed) != e;
      });
      lk.unlock();
      satisfied = pred();
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return satisfied;
  }

  static constexpr uint32_t kSpinIters = 32;
  /// Upper bound on one un-notified sleep (the safety net for state flipped
  /// without notify_all); bounds worst-case reaction latency like the old
  /// backoff cap did, at ~1ms instead of 128us because it is not the
  /// expected wakeup path.
  static constexpr uint32_t kSafetyTickUs = 1000;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> waiters_{0};
  std::mutex m_;
  std::condition_variable cv_;
};

}  // namespace adds
