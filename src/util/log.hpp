// Lightweight leveled logging. Off-by-default debug channel so the MTB /
// controller can narrate decisions during development without polluting
// bench output.
#pragma once

#include <cstdarg>
#include <string>

namespace adds {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level prefix. Thread-safe.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace adds

#define ADDS_LOG_DEBUG(...) ::adds::logf(::adds::LogLevel::kDebug, __VA_ARGS__)
#define ADDS_LOG_INFO(...) ::adds::logf(::adds::LogLevel::kInfo, __VA_ARGS__)
#define ADDS_LOG_WARN(...) ::adds::logf(::adds::LogLevel::kWarn, __VA_ARGS__)
#define ADDS_LOG_ERROR(...) ::adds::logf(::adds::LogLevel::kError, __VA_ARGS__)
