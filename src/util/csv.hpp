// CSV emission for bench binaries: every figure bench writes its data series
// as CSV (next to the human-readable table) so plots can be regenerated.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace adds {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws adds::Error on failure.
  /// Creates parent directories if missing.
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& cols);
  void write_row(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

/// Quote a CSV field if needed.
std::string csv_escape(const std::string& s);

}  // namespace adds
