// CSV emission for bench binaries: every figure bench writes its data series
// as CSV (next to the human-readable table) so plots can be regenerated.
//
// Crash-safe: rows accumulate in `<path>.tmp` and the file is renamed over
// `path` on close() (or destruction after a clean scope). A bench killed
// mid-write — the restart-chaos suite does exactly that — leaves any
// previous CSV at `path` intact instead of a torn half-file; a destructor
// running because an exception is unwinding the stack discards the staging
// file rather than publish a series the run never finished.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace adds {

class CsvWriter {
 public:
  /// Opens the staging file `<path>.tmp` for writing; throws adds::Error
  /// on failure. Creates parent directories if missing.
  explicit CsvWriter(const std::string& path);

  /// Publishes the staging file over `path` unless the destructor runs
  /// during exception unwinding (the run failed; keep the previous file).
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_header(const std::vector<std::string>& cols);
  void write_row(const std::vector<std::string>& cells);

  /// Flushes and atomically publishes (rename) the staged rows to path().
  /// Idempotent; throws adds::Error when the rename fails.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool published_ = false;
};

/// Quote a CSV field if needed.
std::string csv_escape(const std::string& s);

/// Atomically replaces `path` with `content` (write `<path>.tmp`, rename).
/// The bench JSON summaries go through this so a crash mid-report never
/// leaves a torn BENCH_*.json. Creates parent directories; throws
/// adds::Error on failure.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace adds
