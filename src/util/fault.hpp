// Deterministic fault injection for the concurrent solver runtime.
//
// The queue protocol's failure modes (pool exhaustion, stalled workers,
// lost publications, wedged termination) are provoked *on demand* through
// named injection sites threaded into the hot layers. A seed-driven
// `FaultPlan` decides, per site and per hit, whether the fault fires; the
// decision sequence is a pure function of (seed, site, hit index), so a
// failing run is replayable bit-for-bit from its seed even though thread
// interleavings vary.
//
// Cost discipline: every site is a single relaxed load of `g_fault_armed`
// followed by a never-taken branch while no plan is armed — benches see a
// cold flag and nothing else. Arming is global and test/CLI scoped (see
// `FaultScope`); production paths never arm.
//
// Site catalogue (docs/RESILIENCE.md):
//   pool.alloc_fail          BlockPool::allocate throws adds::Error
//   push.delay               Bucket::push sleeps between write and publish
//   push.drop-before-publish Bucket::push drops a reserved slot unpublished
//                            (wedges the segment scan -> termination hang)
//   manager.scan.stall       adds_host MTB loop sleeps one sweep
//   af.delivery.delay        adds_host delays an assignment-flag delivery
//   worker.stall             adds_host WTB sleeps before processing a range
//   pool.exhausted           BlockPool::try_allocate reports an empty pool
//                            (soft pressure: the spill governor absorbs it)
//   combiner.lane-split      PushCombiner stalls mid-multisplit, between the
//                            lane histogram and the scatter (a preempted
//                            batched flush; staged items must neither be
//                            lost nor cross lanes)
//   repair.delta             HostEngine::solve_repair throws while seeding
//                            the warm frontier (a failed in-place delta
//                            repair; the service must fall back typed to a
//                            cold solve on the child graph, never serve the
//                            half-repaired tree)
//   landmark.build           LandmarkOracle table build / warm table repair
//                            throws mid-construction (the service must keep
//                            the table out of serving — p2p queries ride the
//                            engine path — and never expose a partial bound)
//   persist.io               StateStore save/load corrupts or truncates bytes
//                            (torn write, bitflip, version skew, short read;
//                            restore must detect every mode by checksum and
//                            degrade typed to a cold rebuild, never serve
//                            state it could not verify)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace adds::fault {

enum class Site : uint8_t {
  kPoolAllocFail = 0,
  kPushDelay,
  kPushDropBeforePublish,
  kManagerScanStall,
  kAfDeliveryDelay,
  kWorkerStall,
  kPoolExhausted,
  kLaneSplit,
  kDeltaRepair,
  kLandmarkBuild,
  kStateIo,
};
inline constexpr size_t kNumSites = 11;

const char* site_name(Site s) noexcept;
std::optional<Site> parse_site(const std::string& name);

/// Per-site behaviour. A site with probability 0 never fires.
struct FaultSpec {
  double probability = 0.0;  // chance each hit fires (deterministic roll)
  uint64_t max_fires = ~0ull;  // stop firing after this many fires
  uint32_t delay_us = 0;       // sleep duration for stall/delay sites
};

/// A seed-driven schedule of faults across all sites. Thread-safe: writers
/// and the manager roll concurrently; counters are relaxed atomics (exact
/// totals, ordering-free). The plan must outlive its armed scope *and* any
/// threads still inside solver code (arm around whole runs, not mid-run).
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 1) noexcept : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  FaultPlan& set(Site s, const FaultSpec& spec) noexcept {
    sites_[size_t(s)].spec = spec;
    return *this;
  }
  /// Arms every site with the same spec (CLI `--fault-site=all`).
  FaultPlan& set_all(const FaultSpec& spec) noexcept {
    for (auto& st : sites_) st.spec = spec;
    return *this;
  }

  /// Restricts the plan to one fault domain (0 = fire everywhere, the
  /// default). When non-zero, a site only fires on threads whose current
  /// fault domain (set_thread_domain) matches — the multi-tenant chaos
  /// harness keys domains by graph fingerprint so an armed plan wedges
  /// exactly one tenant's solves while every other tenant (and the
  /// rebuilder's probe queries, which run in domain 0) stays clean.
  FaultPlan& restrict_domain(uint64_t domain) noexcept {
    domain_ = domain;
    return *this;
  }
  uint64_t domain() const noexcept { return domain_; }

  uint64_t seed() const noexcept { return seed_; }
  const FaultSpec& spec(Site s) const noexcept {
    return sites_[size_t(s)].spec;
  }

  /// Rolls the site's dice for one hit. Called through fault::fire().
  bool roll(Site s) noexcept;

  // ---- Counters (relaxed; read for RunReport / assertions) ---------------
  uint64_t hits(Site s) const noexcept {
    return sites_[size_t(s)].hits.load(std::memory_order_relaxed);
  }
  uint64_t fires(Site s) const noexcept {
    return sites_[size_t(s)].fires.load(std::memory_order_relaxed);
  }
  uint64_t total_fires() const noexcept {
    uint64_t n = 0;
    for (const auto& st : sites_)
      n += st.fires.load(std::memory_order_relaxed);
    return n;
  }

 private:
  struct SiteState {
    FaultSpec spec;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
  };
  std::array<SiteState, kNumSites> sites_;
  uint64_t seed_;
  uint64_t domain_ = 0;  // 0 = all threads; set before arming, never after
};

// ---- Fault domains ---------------------------------------------------------

/// The calling thread's fault domain. Solver threads inherit the domain of
/// the query they execute (HostEngine sets it from QueryControl::
/// fault_domain on the manager and on every worker assignment); threads
/// that never touch it sit in domain 0 and match only unrestricted plans.
inline thread_local uint64_t t_fault_domain = 0;

inline void set_thread_domain(uint64_t domain) noexcept {
  t_fault_domain = domain;
}
inline uint64_t thread_domain() noexcept { return t_fault_domain; }

/// RAII domain override for a scope (the engine's manager loop).
class ThreadDomainScope {
 public:
  explicit ThreadDomainScope(uint64_t domain) noexcept
      : prev_(t_fault_domain) {
    t_fault_domain = domain;
  }
  ~ThreadDomainScope() { t_fault_domain = prev_; }
  ThreadDomainScope(const ThreadDomainScope&) = delete;
  ThreadDomainScope& operator=(const ThreadDomainScope&) = delete;

 private:
  uint64_t prev_;
};

// ---- Global arming ---------------------------------------------------------

/// Fast-path flag, inline so sites compile to one relaxed load + branch.
inline std::atomic<bool> g_fault_armed{false};

/// Arms `plan` globally. Only one plan may be armed at a time; the caller
/// owns the plan and must disarm before destroying it.
void arm(FaultPlan& plan) noexcept;
void disarm() noexcept;
inline bool armed() noexcept {
  return g_fault_armed.load(std::memory_order_relaxed);
}

/// The currently armed plan (nullptr when disarmed).
FaultPlan* active_plan() noexcept;

/// Total fires across all sites of the armed plan (0 when disarmed).
uint64_t total_fires() noexcept;

/// RAII arm/disarm for tests and the CLI.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan& plan) noexcept { arm(plan); }
  ~FaultScope() { disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

namespace detail {
bool fire_slow(Site s) noexcept;
/// Fires the site and, if it fires, sleeps spec.delay_us in short chunks,
/// returning early when either abort flag becomes true. Returns whether the
/// site fired.
bool delay_slow(Site s, const std::atomic<bool>* abort_a,
                const std::atomic<bool>* abort_b) noexcept;
}  // namespace detail

// ---- Hot-path site checks --------------------------------------------------

/// True when the site fires this hit. No-op (false) unless a plan is armed.
inline bool fire(Site s) noexcept {
  if (!armed()) return false;
  return detail::fire_slow(s);
}

/// Stall/delay site: rolls and, on fire, sleeps the site's delay_us while
/// observing up to two abort flags. No-op unless a plan is armed.
inline void delay(Site s, const std::atomic<bool>* abort_a = nullptr,
                  const std::atomic<bool>* abort_b = nullptr) noexcept {
  if (!armed()) return;
  detail::delay_slow(s, abort_a, abort_b);
}

}  // namespace adds::fault
