#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace adds {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const size_t n = n_ + o.n_;
  m2_ += o.m2_ + delta * delta * double(n_) * double(o.n_) / double(n);
  mean_ += delta * double(o.n_) / double(n);
  n_ = n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    ADDS_ASSERT_MSG(x > 0.0, "geomean requires positive inputs");
    acc += std::log(x);
  }
  return std::exp(acc / double(xs.size()));
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / double(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * double(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - double(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

BinnedDistribution::BinnedDistribution(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0) {
  ADDS_ASSERT(!edges_.empty());
  for (size_t i = 1; i < edges_.size(); ++i)
    ADDS_ASSERT_MSG(edges_[i - 1] < edges_[i], "bin edges must increase");
}

void BinnedDistribution::add(double x) noexcept {
  size_t bin = 0;
  while (bin < edges_.size() && x >= edges_[bin]) ++bin;
  ++counts_[bin];
  ++total_;
}

int BinnedDistribution::percent(size_t bin) const noexcept {
  if (total_ == 0) return 0;
  return static_cast<int>(
      std::lround(100.0 * double(counts_[bin]) / double(total_)));
}

namespace {
std::string trim_num(double v) {
  // "2" not "2.0"; "0.9" not "0.90".
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}
}  // namespace

std::string BinnedDistribution::label(size_t bin) const {
  if (bin == 0) return "<" + trim_num(edges_.front()) + "x";
  if (bin == edges_.size()) return ">=" + trim_num(edges_.back()) + "x";
  return trim_num(edges_[bin - 1]) + "x-" + trim_num(edges_[bin]) + "x";
}

std::string BinnedDistribution::cell(size_t bin) const {
  return std::to_string(counts_[bin]) + " (" + std::to_string(percent(bin)) +
         "%)";
}

BinnedDistribution BinnedDistribution::speedup_bins() {
  return BinnedDistribution({0.9, 1.1, 1.5, 2.0, 3.0, 5.0});
}

BinnedDistribution BinnedDistribution::work_bins() {
  return BinnedDistribution({0.25, 0.5, 0.75, 1.0, 1.5, 3.0});
}

Log2Histogram::Log2Histogram(double lo, double hi) : lo_(lo) {
  ADDS_ASSERT(lo > 0 && hi > lo);
  size_t bins = 2;  // <lo and >=hi
  for (double v = lo; v < hi; v *= 2) ++bins;
  counts_.assign(bins, 0);
}

void Log2Histogram::add(double x) noexcept {
  size_t bin = 0;
  double edge = lo_;
  while (bin + 1 < counts_.size() && x >= edge) {
    ++bin;
    edge *= 2;
  }
  ++counts_[bin];
  ++total_;
}

std::string Log2Histogram::label(size_t bin) const {
  if (bin == 0) return "<" + trim_num(lo_);
  double lo = lo_ * std::pow(2.0, double(bin - 1));
  if (bin == counts_.size() - 1) return ">=" + trim_num(lo);
  return trim_num(lo) + "-" + trim_num(lo * 2);
}

}  // namespace adds
