// Capped exponential backoff for spin-wait loops.
//
// The queue's wait loops (writers in `Bucket::wait_allocated`, the host
// engine's idle workers, the manager between empty sweeps) used to be pure
// `yield()` spins: cheap when the wait is short, but they burn a core for
// the whole wait and — worse — turn N stalled threads into N cores of
// scheduler pressure exactly when the system is wedged. Backoff keeps the
// first iterations as yields (short waits stay fast) and then sleeps with
// doubling duration capped low enough that abort/teardown signals are still
// observed within a bounded latency (the cap, ~128us by default, bounds the
// time between re-checks of whatever condition the loop polls).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace adds {

class Backoff {
 public:
  /// `max_sleep_us` bounds the sleep between condition re-checks, and hence
  /// the worst-case reaction latency of the loop to its exit condition.
  explicit Backoff(uint32_t max_sleep_us = 128) noexcept
      : max_sleep_us_(max_sleep_us) {}

  /// One wait step: yield for the first few iterations, then sleep with
  /// exponentially growing (capped) duration.
  void pause() noexcept {
    if (spins_ < kYieldPhase) {
      ++spins_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    if (sleep_us_ < max_sleep_us_) {
      sleep_us_ *= 2;
      if (sleep_us_ > max_sleep_us_) sleep_us_ = max_sleep_us_;
    }
  }

  /// Call when the awaited condition made progress.
  void reset() noexcept {
    spins_ = 0;
    sleep_us_ = 1;
  }

 private:
  static constexpr uint32_t kYieldPhase = 16;
  uint32_t max_sleep_us_;
  uint32_t spins_ = 0;
  uint32_t sleep_us_ = 1;
};

}  // namespace adds
