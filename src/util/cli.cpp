#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace adds {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "Show this help text");
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  Opt o;
  o.help = help;
  o.is_flag = true;
  o.value = "false";
  opts_[name] = std::move(o);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  Opt o;
  o.help = help;
  o.value = default_value;
  opts_[name] = std::move(o);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = opts_.find(name);
    ADDS_REQUIRE(it != opts_.end(), "unknown option --" + name);
    Opt& o = it->second;
    o.seen = true;
    if (o.is_flag) {
      o.value = has_value ? value : "true";
    } else if (has_value) {
      o.value = value;
    } else {
      ADDS_REQUIRE(i + 1 < argc, "missing value for --" + name);
      o.value = argv[++i];
    }
    if (!o.is_flag) o.values.push_back(o.value);
  }
  if (flag("help")) {
    std::fputs(help_text().c_str(), stdout);
    return false;
  }
  return true;
}

bool CliParser::flag(const std::string& name) const {
  auto it = opts_.find(name);
  ADDS_REQUIRE(it != opts_.end(), "flag not declared: --" + name);
  return it->second.value == "true" || it->second.value == "1";
}

std::string CliParser::str(const std::string& name) const {
  auto it = opts_.find(name);
  ADDS_REQUIRE(it != opts_.end(), "option not declared: --" + name);
  return it->second.value;
}

int64_t CliParser::integer(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  ADDS_REQUIRE(end && *end == '\0' && !v.empty(),
               "option --" + name + " expects an integer, got '" + v + "'");
  return out;
}

double CliParser::real(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  ADDS_REQUIRE(end && *end == '\0' && !v.empty(),
               "option --" + name + " expects a number, got '" + v + "'");
  return out;
}

std::vector<std::string> CliParser::list(const std::string& name) const {
  auto it = opts_.find(name);
  ADDS_REQUIRE(it != opts_.end(), "option not declared: --" + name);
  return it->second.values;
}

std::string CliParser::help_text() const {
  std::string out = program_ + " — " + description_ + "\n\nOptions:\n";
  for (const auto& [name, o] : opts_) {
    out += "  --" + name;
    if (!o.is_flag) out += "=<value> (default: " + o.value + ")";
    out += "\n      " + o.help + "\n";
  }
  return out;
}

}  // namespace adds
