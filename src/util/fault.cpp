#include "util/fault.hpp"

#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace adds::fault {

namespace {
std::atomic<FaultPlan*> g_active_plan{nullptr};
}  // namespace

const char* site_name(Site s) noexcept {
  switch (s) {
    case Site::kPoolAllocFail: return "pool.alloc_fail";
    case Site::kPushDelay: return "push.delay";
    case Site::kPushDropBeforePublish: return "push.drop-before-publish";
    case Site::kManagerScanStall: return "manager.scan.stall";
    case Site::kAfDeliveryDelay: return "af.delivery.delay";
    case Site::kWorkerStall: return "worker.stall";
    case Site::kPoolExhausted: return "pool.exhausted";
    case Site::kLaneSplit: return "combiner.lane-split";
    case Site::kDeltaRepair: return "repair.delta";
    case Site::kLandmarkBuild: return "landmark.build";
    case Site::kStateIo: return "persist.io";
  }
  return "?";
}

std::optional<Site> parse_site(const std::string& name) {
  for (size_t i = 0; i < kNumSites; ++i) {
    const Site s = Site(i);
    if (name == site_name(s)) return s;
  }
  return std::nullopt;
}

bool FaultPlan::roll(Site s) noexcept {
  SiteState& st = sites_[size_t(s)];
  if (st.spec.probability <= 0.0) return false;
  if (st.fires.load(std::memory_order_relaxed) >= st.spec.max_fires)
    return false;
  const uint64_t hit = st.hits.fetch_add(1, std::memory_order_relaxed);
  if (st.spec.probability < 1.0) {
    // Decision = f(seed, site, hit index): replayable regardless of which
    // thread took the hit.
    SplitMix64 sm(mix_seed(seed_ ^ (0x51731ull * (size_t(s) + 1)), hit));
    const double u = double(sm.next() >> 11) * 0x1.0p-53;
    if (u >= st.spec.probability) return false;
  }
  // The cap re-check is racy across threads (may overshoot by a few fires
  // under contention); the counter stays exact, the cap is best-effort.
  st.fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void arm(FaultPlan& plan) noexcept {
  g_active_plan.store(&plan, std::memory_order_release);
  g_fault_armed.store(true, std::memory_order_release);
}

void disarm() noexcept {
  g_fault_armed.store(false, std::memory_order_release);
  g_active_plan.store(nullptr, std::memory_order_release);
}

FaultPlan* active_plan() noexcept {
  return g_active_plan.load(std::memory_order_acquire);
}

uint64_t total_fires() noexcept {
  const FaultPlan* p = active_plan();
  return p != nullptr ? p->total_fires() : 0;
}

namespace detail {

namespace {
/// Domain gate: a restricted plan only fires on threads executing inside
/// the matching fault domain. Checked before roll() so filtered hits do
/// not perturb the deterministic decision sequence of the target domain.
inline bool domain_matches(const FaultPlan& p) noexcept {
  return p.domain() == 0 || p.domain() == thread_domain();
}
}  // namespace

bool fire_slow(Site s) noexcept {
  FaultPlan* p = g_active_plan.load(std::memory_order_acquire);
  return p != nullptr && domain_matches(*p) && p->roll(s);
}

bool delay_slow(Site s, const std::atomic<bool>* abort_a,
                const std::atomic<bool>* abort_b) noexcept {
  FaultPlan* p = g_active_plan.load(std::memory_order_acquire);
  if (p == nullptr || !domain_matches(*p) || !p->roll(s)) return false;
  // Sleep in short chunks so an injected multi-second stall still reacts to
  // abort within ~100us — the watchdog's request_abort must never be
  // out-waited by the fault it is recovering from.
  constexpr uint32_t kChunkUs = 100;
  uint32_t remaining = p->spec(s).delay_us;
  while (remaining > 0) {
    if ((abort_a != nullptr && abort_a->load(std::memory_order_acquire)) ||
        (abort_b != nullptr && abort_b->load(std::memory_order_acquire)))
      return true;
    const uint32_t step = remaining < kChunkUs ? remaining : kChunkUs;
    std::this_thread::sleep_for(std::chrono::microseconds(step));
    remaining -= step;
  }
  return true;
}

}  // namespace detail

}  // namespace adds::fault
