// Error handling primitives shared across the library.
//
// Library code throws `adds::Error` for recoverable misuse (bad files, bad
// arguments); internal invariants use ADDS_ASSERT which aborts with a
// location, since a broken queue-protocol invariant is never recoverable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace adds {

/// Exception type for all recoverable library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ADDS_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace adds

/// Hard invariant check; active in all build types. Queue-protocol and
/// allocator invariants must never be compiled out: a silent violation
/// corrupts SSSP results rather than failing loudly.
#define ADDS_ASSERT(expr)                                             \
  do {                                                                \
    if (!(expr)) ::adds::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define ADDS_ASSERT_MSG(expr, msg)                                 \
  do {                                                             \
    if (!(expr)) ::adds::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Recoverable precondition: throws adds::Error.
#define ADDS_REQUIRE(expr, msg)                     \
  do {                                              \
    if (!(expr)) throw ::adds::Error(msg);          \
  } while (0)
