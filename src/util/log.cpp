#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace adds {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed))
    return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[adds %s] ", level_name(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace adds
