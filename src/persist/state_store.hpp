// StateStore — crash-safe persistence for the serving layer's warm state.
//
// A restart used to lose everything the service had computed: graph
// snapshots, K×V landmark tables and cached shortest-path trees were all
// rebuilt cold on every deploy or crash. The store makes that state
// durable with two non-negotiable properties:
//
//   * Partial or torn writes are detectable BY CONSTRUCTION. The file is
//     published atomically (write `state.adds.tmp`, fsync-free rename over
//     `state.adds`), carries a magic + format version + checksummed
//     header, and every section is framed by its own checksummed header
//     (kind, length, payload digest) plus an FNV-1a digest of the payload.
//     A truncation lands mid-frame or mid-payload and fails the bounds
//     check; a bitflip fails a digest; an interrupted save leaves only the
//     `.tmp` file and the previous store intact.
//   * The store is a cache of truth, never a source of it. load() proves
//     integrity (framing + digests), not correctness — the service's
//     restore path re-verifies every artifact against ground truth
//     (fingerprint recompute, Dijkstra spot checks, exactness
//     certificates) before anything is served (docs/RESILIENCE.md).
//
// Corruption is degraded per section where framing allows: a payload
// digest mismatch skips exactly that section and keeps loading; damaged
// framing (header, frame checksum, truncated tail) ends the walk there
// and counts the undecodable remainder. Only an unusable prologue (bad
// magic, bad header digest, unknown version, wrong weight type) throws —
// StoreError, typed kCorruptStore / kVersionSkew / kIoError.
//
// The `persist.io` fault site (fault::Site::kStateIo) injects the four
// real-world failure shapes deterministically: save-side torn write,
// single bitflip and version skew (published — silent corruption, caught
// at load, exactly as a real torn write would be) plus crash-before-rename
// (the previous store survives untouched); load-side short read.
//
// Byte order is native: the store is a same-host warm-restart artifact,
// not an interchange format.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "landmark/landmark_oracle.hpp"
#include "util/error.hpp"

namespace adds::persist {

/// Typed store failure class.
enum class StoreErrorKind : uint8_t {
  kIoError = 0,    // open/read/write/rename failed (environment, not data)
  kCorruptStore,   // framing, digest or bounds failure — data untrustworthy
  kVersionSkew,    // intact prologue of a format this build cannot read
};

const char* store_error_kind_name(StoreErrorKind k) noexcept;

class StoreError : public Error {
 public:
  StoreError(StoreErrorKind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  StoreErrorKind kind() const noexcept { return kind_; }

 private:
  StoreErrorKind kind_;
};

/// One resident tenant: the CSR snapshot plus the catalog metadata needed
/// to re-publish it (pin state, default routing, lineage edge).
template <WeightType W>
struct GraphRecord {
  uint64_t graph_fp = 0;
  uint64_t parent_fp = 0;  // lineage (0 = no recorded parent)
  bool pinned = false;
  bool is_default = false;
  std::shared_ptr<const CsrGraph<W>> graph;
};

/// One READY landmark table, keyed to its graph generation.
template <WeightType W>
struct LandmarkRecord {
  uint64_t graph_fp = 0;
  std::shared_ptr<const LandmarkTable<W>> table;
};

/// One warm result-cache entry: the distance array of a full SSSP tree.
/// Only distances persist — they are what restore can certify exactly
/// (verify_repair needs nothing else), and everything beyond them is
/// per-run accounting a restarted process has no claim to.
template <WeightType W>
struct CacheRecord {
  uint64_t graph_fp = 0;
  VertexId source = 0;
  /// Solver-config digest the tree was computed under. Restore only
  /// resurrects entries whose digest matches the restoring service's —
  /// a cache entry reproduces the result of an identical configuration.
  uint64_t config_digest = 0;
  std::vector<DistT<W>> dist;
};

template <WeightType W>
struct StateSnapshot {
  std::vector<GraphRecord<W>> graphs;
  std::vector<LandmarkRecord<W>> landmarks;
  std::vector<CacheRecord<W>> cache;
};

struct SaveStats {
  std::string path;
  size_t sections = 0;
  uint64_t bytes = 0;
};

/// What load() salvaged. Sections that failed a digest or decode are
/// counted (with a diagnostic each), never partially decoded into `snap`.
template <WeightType W>
struct LoadResult {
  StateSnapshot<W> snap;
  size_t sections_total = 0;    // declared by the (digest-verified) header
  size_t corrupt_sections = 0;  // skipped or undecodable
  std::vector<std::string> errors;  // one line per corrupt section
};

class StateStore {
 public:
  /// `dir` is created on save if missing; the store file is
  /// `<dir>/state.adds` and its publish staging file `<dir>/state.adds.tmp`.
  explicit StateStore(std::string dir);

  const std::string& dir() const noexcept { return dir_; }
  const std::string& path() const noexcept { return path_; }

  /// True when a published store file exists (the `.tmp` staging file of an
  /// interrupted save does not count — that is the crash the rename
  /// protocol exists to survive).
  bool exists() const;

  /// Serializes `snap` and publishes it atomically (tmp + rename). Throws
  /// StoreError(kIoError) when the environment refuses; never leaves a
  /// half-written file at path(). The persist.io fault site corrupts the
  /// staged bytes (torn write / bitflip / version skew) or suppresses the
  /// rename (crash-before-rename) — deliberately WITHOUT failing the call,
  /// because real torn writes are silent until load.
  template <WeightType W>
  SaveStats save(const StateSnapshot<W>& snap) const;

  /// Reads and integrity-checks the store. Throws StoreError for a missing
  /// file (kIoError), unusable prologue (kCorruptStore) or a format/weight
  /// mismatch (kVersionSkew); section-level damage is degraded into
  /// LoadResult::corrupt_sections instead. The persist.io fault site
  /// truncates the in-memory read (short read).
  template <WeightType W>
  LoadResult<W> load() const;

 private:
  std::string dir_;
  std::string path_;
  std::string tmp_path_;
};

// ---------------------------------------------------------------------------
// Bounds-checked byte IO (exposed for tests that craft corrupt stores).
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  void u8(uint8_t v) { raw(&v, 1); }
  void u32(uint32_t v) { raw(&v, sizeof(v)); }
  void u64(uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  template <typename T>
  void span(const T* p, size_t count) {
    raw(p, count * sizeof(T));
  }

  const std::vector<uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Every read is bounds-checked; running past the end throws
/// StoreError(kCorruptStore) — a truncated payload can never decode into a
/// plausible-looking record.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) noexcept
      : data_(data), size_(size) {}

  uint8_t u8() { return read<uint8_t>(); }
  uint32_t u32() { return read<uint32_t>(); }
  uint64_t u64() { return read<uint64_t>(); }
  double f64() { return read<double>(); }

  template <typename T>
  std::vector<T> vec(size_t count) {
    need(count * sizeof(T));
    std::vector<T> out(count);
    std::memcpy(out.data(), data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return out;
  }

  size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

 private:
  template <typename T>
  T read() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(size_t n) const {
    if (size_ - pos_ < n)
      throw StoreError(StoreErrorKind::kCorruptStore,
                       "state store: short read (need " + std::to_string(n) +
                           " bytes, have " + std::to_string(size_ - pos_) +
                           ")");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace adds::persist
