#include "persist/state_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/fingerprint.hpp"
#include "util/fault.hpp"

namespace adds::persist {
namespace {

namespace fs = std::filesystem;

// File prologue: magic(8) version(4) weight(1) reserved(3) sections(4),
// then an FNV-1a digest (8) of those 20 bytes. A store whose prologue does
// not survive this gauntlet is unusable as a whole — there is no trustable
// frame to resynchronize on.
constexpr char kMagic[8] = {'A', 'D', 'D', 'S', 'S', 'T', 'R', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kPrologueBytes = 8 + 4 + 1 + 3 + 4 + 8;

// Section frame: kind(4) pad(4) payload_len(8) payload_digest(8), then an
// FNV-1a digest (8) of those 24 bytes. The frame digest makes the framing
// itself tamper-evident: a flipped length byte cannot silently shift the
// walk into the middle of the next payload.
constexpr size_t kFrameBytes = 4 + 4 + 8 + 8 + 8;

enum class SectionKind : uint32_t {
  kGraph = 1,
  kLandmark = 2,
  kCacheEntry = 3,
};

template <WeightType W>
constexpr uint8_t weight_kind() {
  return std::is_same_v<W, uint32_t> ? 0 : 1;
}

template <WeightType W>
const char* weight_name() {
  return std::is_same_v<W, uint32_t> ? "uint32" : "float";
}

void append_frame(ByteWriter& out, SectionKind kind,
                  const std::vector<uint8_t>& payload) {
  ByteWriter frame;
  frame.u32(uint32_t(kind));
  frame.u32(0);  // reserved
  frame.u64(payload.size());
  frame.u64(fnv1a_bytes(payload.data(), payload.size()));
  const uint64_t frame_digest =
      fnv1a_bytes(frame.bytes().data(), frame.bytes().size());
  out.raw(frame.bytes().data(), frame.bytes().size());
  out.u64(frame_digest);
  out.raw(payload.data(), payload.size());
}

template <WeightType W>
std::vector<uint8_t> encode_graph(const GraphRecord<W>& r) {
  ByteWriter w;
  w.u64(r.graph_fp);
  w.u64(r.parent_fp);
  w.u8(r.pinned ? 1 : 0);
  w.u8(r.is_default ? 1 : 0);
  const CsrGraph<W>& g = *r.graph;
  w.u64(g.num_vertices());
  w.u64(g.num_edges());
  w.span(g.offsets().data(), g.offsets().size());
  w.span(g.targets().data(), g.targets().size());
  w.span(g.weights().data(), g.weights().size());
  return w.take();
}

template <WeightType W>
GraphRecord<W> decode_graph(ByteReader& r) {
  GraphRecord<W> out;
  out.graph_fp = r.u64();
  out.parent_fp = r.u64();
  out.pinned = r.u8() != 0;
  out.is_default = r.u8() != 0;
  const uint64_t n = r.u64();
  const uint64_t m = r.u64();
  auto offsets = r.vec<EdgeIndex>(n + 1);
  auto targets = r.vec<VertexId>(m);
  auto weights = r.vec<W>(m);
  // CsrGraph's own validate() rejects structurally impossible arrays
  // (non-monotone offsets, out-of-range targets) — a digest-valid payload
  // can still be a writer bug, and a malformed CSR must never reach an
  // engine. adds::Error from it propagates as a corrupt section.
  out.graph = std::make_shared<const CsrGraph<W>>(
      std::move(offsets), std::move(targets), std::move(weights));
  return out;
}

template <WeightType W>
std::vector<uint8_t> encode_landmark(const LandmarkRecord<W>& r) {
  ByteWriter w;
  const LandmarkTable<W>& t = *r.table;
  w.u64(r.graph_fp);
  w.u64(t.num_vertices());
  w.u32(t.num_landmarks());
  w.u8(t.repaired() ? 1 : 0);
  w.f64(t.build_ms());
  w.span(t.landmarks().data(), t.landmarks().size());
  // Lane-major rows are contiguous: row(0) is the base of all K*V cells.
  w.span(t.row(0), size_t(t.num_landmarks()) * t.num_vertices());
  return w.take();
}

template <WeightType W>
LandmarkRecord<W> decode_landmark(ByteReader& r) {
  LandmarkRecord<W> out;
  out.graph_fp = r.u64();
  const uint64_t nv = r.u64();
  const uint32_t k = r.u32();
  const bool repaired = r.u8() != 0;
  const double build_ms = r.f64();
  auto landmarks = r.vec<VertexId>(k);
  auto rows = r.vec<DistT<W>>(size_t(k) * nv);
  out.table = LandmarkOracle<W>::assemble(out.graph_fp, nv,
                                          std::move(landmarks),
                                          std::move(rows), build_ms, repaired);
  return out;
}

template <WeightType W>
std::vector<uint8_t> encode_cache(const CacheRecord<W>& r) {
  ByteWriter w;
  w.u64(r.graph_fp);
  w.u32(r.source);
  w.u64(r.config_digest);
  w.u64(r.dist.size());
  w.span(r.dist.data(), r.dist.size());
  return w.take();
}

template <WeightType W>
CacheRecord<W> decode_cache(ByteReader& r) {
  CacheRecord<W> out;
  out.graph_fp = r.u64();
  out.source = r.u32();
  out.config_digest = r.u64();
  const uint64_t n = r.u64();
  out.dist = r.vec<DistT<W>>(n);
  return out;
}

/// Deterministic save-side corruption for the persist.io fault site. The
/// mode cycles with the plan's fire count, so one seeded soak round
/// exercises every failure shape. Modes 0-2 PUBLISH the damaged file —
/// real torn writes are silent until load; mode 3 never publishes (the
/// crash hit between write and rename, the previous store survives).
enum class SaveFault { kTornWrite = 0, kBitflip, kVersionSkew, kNoRename };

SaveFault roll_save_fault() {
  const fault::FaultPlan* plan = fault::active_plan();
  const uint64_t n = plan ? plan->fires(fault::Site::kStateIo) : 1;
  return SaveFault((n - 1) % 4);
}

void corrupt_staged_bytes(std::vector<uint8_t>& bytes, SaveFault mode) {
  if (bytes.empty()) return;
  switch (mode) {
    case SaveFault::kTornWrite:
      // The write made it ~60% of the way before the crash.
      bytes.resize(std::max<size_t>(1, bytes.size() * 3 / 5));
      break;
    case SaveFault::kBitflip: {
      const size_t off = size_t(
          fnv1a_bytes(bytes.data(), std::min<size_t>(bytes.size(), 64)) %
          bytes.size());
      bytes[off] ^= 0x40;
      break;
    }
    case SaveFault::kVersionSkew:
      // A future writer's format number in an otherwise intact prologue:
      // the version field sits right after the 8-byte magic, and the
      // header digest is recomputed so ONLY the skew check can catch it.
      if (bytes.size() >= kPrologueBytes) {
        const uint32_t skewed = kFormatVersion + 7;
        std::memcpy(bytes.data() + 8, &skewed, sizeof(skewed));
        const uint64_t digest =
            fnv1a_bytes(bytes.data(), kPrologueBytes - sizeof(uint64_t));
        std::memcpy(bytes.data() + kPrologueBytes - sizeof(uint64_t), &digest,
                    sizeof(digest));
      }
      break;
    case SaveFault::kNoRename:
      break;  // handled by the caller: staged bytes fine, publish skipped
  }
}

}  // namespace

const char* store_error_kind_name(StoreErrorKind k) noexcept {
  switch (k) {
    case StoreErrorKind::kIoError: return "io-error";
    case StoreErrorKind::kCorruptStore: return "corrupt-store";
    case StoreErrorKind::kVersionSkew: return "version-skew";
  }
  return "?";
}

StateStore::StateStore(std::string dir)
    : dir_(std::move(dir)),
      path_((fs::path(dir_) / "state.adds").string()),
      tmp_path_(path_ + ".tmp") {}

bool StateStore::exists() const {
  std::error_code ec;
  return fs::is_regular_file(path_, ec);
}

template <WeightType W>
SaveStats StateStore::save(const StateSnapshot<W>& snap) const {
  // Serialize everything into memory first: the file write is then a
  // single sequential pass, and the atomic-publish protocol (tmp + rename)
  // guarantees readers only ever observe a fully written byte sequence.
  ByteWriter body;
  size_t sections = 0;
  for (const auto& g : snap.graphs) {
    append_frame(body, SectionKind::kGraph, encode_graph(g));
    ++sections;
  }
  for (const auto& t : snap.landmarks) {
    append_frame(body, SectionKind::kLandmark, encode_landmark(t));
    ++sections;
  }
  for (const auto& c : snap.cache) {
    append_frame(body, SectionKind::kCacheEntry, encode_cache(c));
    ++sections;
  }

  ByteWriter out;
  out.raw(kMagic, sizeof(kMagic));
  out.u32(kFormatVersion);
  out.u8(weight_kind<W>());
  out.u8(0);
  out.u8(0);
  out.u8(0);
  out.u32(uint32_t(sections));
  out.u64(fnv1a_bytes(out.bytes().data(), out.bytes().size()));
  out.raw(body.bytes().data(), body.bytes().size());
  std::vector<uint8_t> bytes = out.take();

  SaveFault injected_mode = SaveFault::kNoRename;
  const bool injected = fault::fire(fault::Site::kStateIo);
  if (injected) {
    injected_mode = roll_save_fault();
    corrupt_staged_bytes(bytes, injected_mode);
  }

  std::error_code ec;
  fs::create_directories(dir_, ec);
  {
    std::ofstream f(tmp_path_, std::ios::binary | std::ios::trunc);
    if (!f.is_open())
      throw StoreError(StoreErrorKind::kIoError,
                       "state store: cannot open " + tmp_path_);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
    f.flush();
    if (!f.good())
      throw StoreError(StoreErrorKind::kIoError,
                       "state store: write failed: " + tmp_path_);
  }
  if (injected && injected_mode == SaveFault::kNoRename) {
    SaveStats st;
    st.path = path_;
    st.sections = sections;
    st.bytes = bytes.size();
    return st;  // "crashed" before publish; previous store stays current
  }
  fs::rename(tmp_path_, path_, ec);
  if (ec)
    throw StoreError(StoreErrorKind::kIoError,
                     "state store: rename to " + path_ +
                         " failed: " + ec.message());
  SaveStats st;
  st.path = path_;
  st.sections = sections;
  st.bytes = bytes.size();
  return st;
}

template <WeightType W>
LoadResult<W> StateStore::load() const {
  std::vector<uint8_t> bytes;
  {
    std::ifstream f(path_, std::ios::binary | std::ios::ate);
    if (!f.is_open())
      throw StoreError(StoreErrorKind::kIoError,
                       "state store: cannot open " + path_);
    const std::streamsize size = f.tellg();
    f.seekg(0);
    bytes.resize(size_t(size));
    if (size > 0)
      f.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!f.good())
      throw StoreError(StoreErrorKind::kIoError,
                       "state store: read failed: " + path_);
  }
  if (fault::fire(fault::Site::kStateIo))
    bytes.resize(bytes.size() / 2);  // short read

  if (bytes.size() < kPrologueBytes)
    throw StoreError(StoreErrorKind::kCorruptStore,
                     "state store: truncated header (" +
                         std::to_string(bytes.size()) + " bytes)");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw StoreError(StoreErrorKind::kCorruptStore,
                     "state store: bad magic");
  uint64_t stored_digest = 0;
  std::memcpy(&stored_digest, bytes.data() + kPrologueBytes - sizeof(uint64_t),
              sizeof(uint64_t));
  if (fnv1a_bytes(bytes.data(), kPrologueBytes - sizeof(uint64_t)) !=
      stored_digest)
    throw StoreError(StoreErrorKind::kCorruptStore,
                     "state store: header digest mismatch");
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  if (version != kFormatVersion)
    throw StoreError(StoreErrorKind::kVersionSkew,
                     "state store: format version " + std::to_string(version) +
                         " (this build reads " +
                         std::to_string(kFormatVersion) + ")");
  if (bytes[12] != weight_kind<W>())
    throw StoreError(StoreErrorKind::kVersionSkew,
                     std::string("state store: weight type mismatch "
                                 "(store is not ") +
                         weight_name<W>() + ")");
  uint32_t declared = 0;
  std::memcpy(&declared, bytes.data() + 16, sizeof(declared));

  LoadResult<W> out;
  out.sections_total = declared;
  size_t pos = kPrologueBytes;
  size_t parsed = 0;
  while (parsed < declared) {
    // Frame integrity first: without a trusted (kind, length) pair the
    // walk cannot resynchronize, so damaged framing ends the load here
    // and the undecodable remainder counts corrupt.
    if (bytes.size() - pos < kFrameBytes) {
      out.errors.push_back("truncated section frame at offset " +
                           std::to_string(pos));
      break;
    }
    uint64_t frame_digest = 0;
    std::memcpy(&frame_digest, bytes.data() + pos + kFrameBytes - 8, 8);
    if (fnv1a_bytes(bytes.data() + pos, kFrameBytes - 8) != frame_digest) {
      out.errors.push_back("section frame digest mismatch at offset " +
                           std::to_string(pos));
      break;
    }
    uint32_t kind = 0;
    uint64_t payload_len = 0, payload_digest = 0;
    std::memcpy(&kind, bytes.data() + pos, 4);
    std::memcpy(&payload_len, bytes.data() + pos + 8, 8);
    std::memcpy(&payload_digest, bytes.data() + pos + 16, 8);
    pos += kFrameBytes;
    if (bytes.size() - pos < payload_len) {
      out.errors.push_back("truncated section payload at offset " +
                           std::to_string(pos) + " (want " +
                           std::to_string(payload_len) + " bytes)");
      break;
    }
    const uint8_t* payload = bytes.data() + pos;
    pos += payload_len;
    ++parsed;
    if (fnv1a_bytes(payload, payload_len) != payload_digest) {
      ++out.corrupt_sections;
      out.errors.push_back("section " + std::to_string(parsed) +
                           " payload digest mismatch");
      continue;  // framing intact: skip exactly this section
    }
    try {
      ByteReader r(payload, payload_len);
      switch (SectionKind(kind)) {
        case SectionKind::kGraph:
          out.snap.graphs.push_back(decode_graph<W>(r));
          break;
        case SectionKind::kLandmark:
          out.snap.landmarks.push_back(decode_landmark<W>(r));
          break;
        case SectionKind::kCacheEntry:
          out.snap.cache.push_back(decode_cache<W>(r));
          break;
        default:
          throw StoreError(StoreErrorKind::kCorruptStore,
                           "unknown section kind " + std::to_string(kind));
      }
    } catch (const Error& e) {  // StoreError and CsrGraph validate failures
      ++out.corrupt_sections;
      out.errors.push_back("section " + std::to_string(parsed) +
                           " decode failed: " + e.what());
    }
  }
  // Anything the walk never reached (framing damage, truncated tail,
  // sections the header promised but the file lacks) is corrupt by
  // definition — the store claimed them and cannot produce them.
  out.corrupt_sections += declared - parsed;
  return out;
}

template SaveStats StateStore::save<uint32_t>(
    const StateSnapshot<uint32_t>&) const;
template SaveStats StateStore::save<float>(const StateSnapshot<float>&) const;
template LoadResult<uint32_t> StateStore::load<uint32_t>() const;
template LoadResult<float> StateStore::load<float>() const;

}  // namespace adds::persist
