#include "sssp/cpu_delta_stepping.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "sssp/delta_heuristic.hpp"
#include "util/timer.hpp"

namespace adds {

template <WeightType W>
SsspResult<W> cpu_delta_stepping(const CsrGraph<W>& g, VertexId source,
                                 const CpuCostModel& cpu,
                                 const CpuDeltaSteppingOptions& opts) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = "cpu-ds";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");

  const double delta =
      opts.delta > 0.0 ? opts.delta : static_delta(g, opts.heuristic_c);

  struct Item {
    VertexId vertex;
    Dist dist_at_push;
  };
  // Sparse ordered bucket map (Galois' OBIM is a sparse ordered sequence of
  // bags; std::map gives the same processing order).
  std::map<uint64_t, std::vector<Item>> buckets;
  const auto bucket_of = [delta](Dist d) {
    return static_cast<uint64_t>(double(d) / delta);
  };

  r.dist[source] = Dist{0};
  buckets[0].push_back({source, Dist{0}});
  ++r.work.pushes;

  uint64_t bucket_phases = 0;
  std::vector<Item> current;
  while (!buckets.empty()) {
    const auto first = buckets.begin();
    const uint64_t level = first->first;
    current.swap(first->second);
    buckets.erase(first);
    ++bucket_phases;

    // Process the bucket to fixpoint: re-insertions into the same level are
    // handled within this phase (the "light edge" inner loop).
    while (!current.empty()) {
      std::vector<Item> same_level;
      for (const auto& it : current) {
        if (it.dist_at_push > r.dist[it.vertex]) {
          ++r.work.stale_skipped;
          continue;
        }
        ++r.work.items_processed;
        const Dist du = r.dist[it.vertex];
        const EdgeIndex end = g.edge_end(it.vertex);
        for (EdgeIndex e = g.edge_begin(it.vertex); e < end; ++e) {
          ++r.work.relaxations;
          const VertexId v = g.edge_target(e);
          const Dist nd = du + Dist(g.edge_weight(e));
          if (nd < r.dist[v]) {
            r.dist[v] = nd;
            ++r.work.improvements;
            ++r.work.pushes;
            const uint64_t b = bucket_of(nd);
            if (b <= level)
              same_level.push_back({v, nd});
            else
              buckets[b].push_back({v, nd});
          }
        }
      }
      current.swap(same_level);
      if (!current.empty()) ++bucket_phases;
    }
  }

  r.supersteps = bucket_phases;
  r.time_us = cpu.delta_stepping_us(r.work.relaxations, bucket_phases);
  r.wall_ms = timer.elapsed_ms();
  return r;
}

template SsspResult<uint32_t> cpu_delta_stepping<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const CpuCostModel&,
    const CpuDeltaSteppingOptions&);
template SsspResult<float> cpu_delta_stepping<float>(
    const CsrGraph<float>&, VertexId, const CpuCostModel&,
    const CpuDeltaSteppingOptions&);

}  // namespace adds
