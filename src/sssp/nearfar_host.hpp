// Real-thread BSP Near-Far: the baseline's architecture on host threads.
//
// This is the structural counterpart to adds_host: where ADDS runs an
// asynchronous MTB/WTB queue, Near-Far runs bulk-synchronous supersteps over
// *pre-allocated arrays* with double buffering — exactly the three design
// choices the paper critiques (two buckets, BSP barriers, static Δ) — here
// with real std::thread workers and a std::barrier per superstep. Useful for
// an apples-to-apples host comparison (see the scheduler_contrast example)
// and as a second torture test of the engines' shared components.
#pragma once

#include "graph/csr_graph.hpp"
#include "sssp/result.hpp"

namespace adds {

struct NearFarHostOptions {
  uint32_t num_threads = 4;
  /// Δ for the threshold schedule; <= 0 uses the static heuristic.
  double delta = 0.0;
  double heuristic_c = 32.0;
  /// Capacity of each pre-allocated worklist array, as a multiple of |V|.
  /// Overflow throws adds::Error (the fixed-array design's failure mode).
  double capacity_factor = 8.0;
};

template <WeightType W>
SsspResult<W> near_far_host(const CsrGraph<W>& g, VertexId source,
                            const NearFarHostOptions& opts = {});

extern template SsspResult<uint32_t> near_far_host<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const NearFarHostOptions&);
extern template SsspResult<float> near_far_host<float>(
    const CsrGraph<float>&, VertexId, const NearFarHostOptions&);

}  // namespace adds
