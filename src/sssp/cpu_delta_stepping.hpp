// CPU delta-stepping (Meyer & Sanders) in the style of the Galois 4.0
// baseline the paper calls "CPU-DS": an ordered-by-Δ bucket map processed
// bucket-by-bucket with fine-grained buckets.
//
// The algorithm really runs (work counts are measured, and the distance
// output is validated against Dijkstra); virtual time charges the measured
// work against the modelled 20-thread CPU (see CpuCostModel).
#pragma once

#include "graph/csr_graph.hpp"
#include "sim/cost_model.hpp"
#include "sssp/result.hpp"

namespace adds {

struct CpuDeltaSteppingOptions {
  /// Bucket width; <= 0 uses the static heuristic (same policy as the
  /// paper applies to all parallel baselines).
  double delta = 0.0;
  double heuristic_c = 32.0;
};

template <WeightType W>
SsspResult<W> cpu_delta_stepping(const CsrGraph<W>& g, VertexId source,
                                 const CpuCostModel& cpu,
                                 const CpuDeltaSteppingOptions& opts = {});

extern template SsspResult<uint32_t> cpu_delta_stepping<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const CpuCostModel&,
    const CpuDeltaSteppingOptions&);
extern template SsspResult<float> cpu_delta_stepping<float>(
    const CsrGraph<float>&, VertexId, const CpuCostModel&,
    const CpuDeltaSteppingOptions&);

}  // namespace adds
