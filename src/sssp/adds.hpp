// ADDS — Asynchronous Dynamic Delta-Stepping, the paper's contribution.
//
// Two engines share the algorithm (bucket math, window policy, dynamic-Δ
// controller, MTB scheduling rules):
//
//   * adds_sim()  — executes the scheduling policy over the virtual GPU
//     (SharingPool of worker blocks + manager ticks), producing modelled
//     time, work counts and parallelism traces. This is the engine behind
//     every performance table/figure.
//
//   * adds_host() — the real thing at host scale: an MTB thread and N WTB
//     threads running the full lock-free queue protocol from src/queue
//     (resv_ptr reservation, WCC publication, SRMW scan, CWC retirement,
//     block recycling). This engine demonstrates the protocol's correctness
//     under true concurrency and doubles as a usable parallel CPU SSSP.
#pragma once

#include <atomic>

#include "graph/csr_graph.hpp"
#include "sim/cost_model.hpp"
#include "sssp/delta_controller.hpp"
#include "sssp/result.hpp"
#include "util/event.hpp"

namespace adds {

struct AddsOptions {
  uint32_t num_buckets = 32;  // the paper's fixed window size
  /// Initial Δ; <= 0 uses the static heuristic C * avg_weight / avg_degree.
  double delta = 0.0;
  double heuristic_c = 32.0;
  /// Dynamic Δ selection; the Static-Δ ablation (Table 5) turns this off.
  bool dynamic_delta = true;
  /// Items per worker assignment (the "array of work items" in an AF).
  uint32_t chunk_items = 256;
  /// Edge budget per assignment: the manager splits item ranges so one
  /// worker block is never handed a pathologically heavy range (the
  /// runtime's load-balanced assignment; keeps hub vertices from serializing
  /// on a single block).
  uint32_t chunk_edge_budget = 512;
  DeltaControllerOptions controller;
};

template <WeightType W>
SsspResult<W> adds_sim(const CsrGraph<W>& g, VertexId source,
                       const GpuCostModel& gpu, const AddsOptions& opts = {});

struct AddsHostOptions {
  uint32_t num_workers = 4;   // WTB threads
  uint32_t num_buckets = 8;   // window size (smaller defaults at host scale)
  double delta = 0.0;         // <= 0: static heuristic
  double heuristic_c = 32.0;
  bool dynamic_delta = false;
  uint32_t chunk_items = 64;
  uint32_t block_words = 4096;   // pool block size (64Ki on the GPU)
  uint32_t pool_blocks = 0;      // 0: sized automatically from the graph
  uint32_t segment_words = 32;
  /// Per-worker push write combining (queue/push_combiner.hpp): improved
  /// vertices are staged per logical bucket and flushed as one batched
  /// reserve/publish — the host analog of the paper's warp-aggregated
  /// enqueue. Results are identical either way; the toggle exists for A/B
  /// benchmarking (bench/perf_suite.cpp).
  bool write_combining = true;
  /// Staged items per combiner lane before it auto-flushes.
  uint32_t combine_capacity = 64;
  DeltaControllerOptions controller;
  /// Optional external cancellation (e.g. a watchdog — core/resilience.hpp).
  /// When it becomes true the manager aborts the queue, tears the run down
  /// and throws adds::Error; partial results are discarded. The pointee
  /// must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional wakeup paired with `cancel`: the canceller notifies it after
  /// setting the token and a parked manager observes the cancel in
  /// microseconds. Without it a cancel set silently is still picked up
  /// within the event safety tick (~1ms). The pointee must outlive the
  /// call. The engine also uses this event as its worker-completion wakeup.
  Event* cancel_event = nullptr;
  /// Manager-side self-execution of tiny assignments: when at most this
  /// many safely-readable items remain in an active bucket after the
  /// assignment pass and no worker is idle-parked, the manager relaxes the
  /// range itself instead of letting it wait a sweep for a worker to free
  /// up — the MTB "may execute small assignments itself" refinement at
  /// host scale. The manager's resulting pushes are buffered and published
  /// through the non-blocking batch path (it must never park in
  /// wait_allocated on capacity only it can map); items a dry pool cannot
  /// take spill to the heap store. Active in governed mode only; 0
  /// disables. Counted in WorkStats::inline_ranges / inline_items.
  uint32_t manager_inline_items = 16;
  /// In-run overload governance. On: the manager watches the pool's free-
  /// block low-water mark and, under pressure, spills cold tail buckets to
  /// heap (queue/spill_store.hpp) and replays them as the window advances —
  /// an undersized or fault-starved pool degrades to bounded slowdown
  /// instead of throwing, and restart-with-a-bigger-pool becomes the last
  /// resort. Off restores the fail-fast behavior (pool exhaustion throws).
  bool pool_governor = true;
};

/// The host engine's automatic pool sizing (pool_blocks == 0): capacity
/// for several generations of the edge set plus window slack. Exposed so
/// the resilient runtime can record the size it retries with.
inline uint32_t auto_pool_blocks(uint64_t num_edges, uint32_t block_words,
                                 uint32_t num_buckets) noexcept {
  const uint64_t want =
      4 * num_edges / block_words + 4ull * num_buckets + 16;
  return want < 65000 ? uint32_t(want) : 65000u;
}

template <WeightType W>
SsspResult<W> adds_host(const CsrGraph<W>& g, VertexId source,
                        const AddsHostOptions& opts = {});

#define ADDS_EXTERN(W)                                                 \
  extern template SsspResult<W> adds_sim<W>(                           \
      const CsrGraph<W>&, VertexId, const GpuCostModel&,               \
      const AddsOptions&);                                             \
  extern template SsspResult<W> adds_host<W>(const CsrGraph<W>&,       \
                                             VertexId,                \
                                             const AddsHostOptions&);
ADDS_EXTERN(uint32_t)
ADDS_EXTERN(float)
#undef ADDS_EXTERN

}  // namespace adds
