#include "sssp/delta_controller.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace adds {

DeltaController::DeltaController(const DeltaControllerOptions& opts,
                                 double saturation_edges,
                                 double initial_delta)
    : opts_(opts),
      saturation_edges_(saturation_edges),
      initial_delta_(std::clamp(initial_delta, opts.min_delta, opts.max_delta)),
      delta_(initial_delta_),
      active_buckets_(opts.min_active_buckets) {
  ADDS_REQUIRE(saturation_edges > 0, "saturation must be positive");
  ADDS_REQUIRE(opts.util_low < opts.util_high, "utilization limits inverted");
  history_.emplace_back(0, delta_);
}

void DeltaController::reset(double saturation_edges, double initial_delta) {
  ADDS_REQUIRE(saturation_edges > 0, "saturation must be positive");
  saturation_edges_ = saturation_edges;
  initial_delta_ =
      std::clamp(initial_delta, opts_.min_delta, opts_.max_delta);
  delta_ = initial_delta_;
  active_buckets_ = opts_.min_active_buckets;
  last_change_switch_ = 0;
  updates_since_change_ = 0;
  history_.clear();
  history_.emplace_back(0, delta_);
}

void DeltaController::set_delta(double d, uint64_t at_switch) {
  delta_ = std::clamp(d, opts_.min_delta, opts_.max_delta);
  last_change_switch_ = at_switch;
  updates_since_change_ = 0;
  history_.emplace_back(at_switch, delta_);
}

bool DeltaController::update(const Signals& s) {
  if (!opts_.enabled) return false;
  const double util = utilization(s.assigned_edges);

  // Fine-grained, high-frequency control: widen or narrow the set of
  // high-priority buckets the manager may draw from. This dampens
  // utilization fluctuations without disturbing Δ (paper §5.5, last ¶).
  if (util < opts_.util_low && s.work_pending) {
    active_buckets_ =
        std::min(active_buckets_ + 1, opts_.max_active_buckets);
  } else if (util > opts_.util_high) {
    active_buckets_ =
        std::max(active_buckets_ - 1, opts_.min_active_buckets);
  }

  // Clipping guard: when the tail bucket holds >= 65% of pending work the
  // window cannot represent the priority range — grow Δ immediately; this
  // is the empirical lower bound on Δ (paper §5.5).
  if (s.tail_share >= opts_.clip_tail_share) {
    set_delta(delta_ * opts_.grow_factor, s.head_switches);
    return true;
  }

  // Slow control: wait `settle_head_switches` head-bucket switches after
  // the previous change (settling time scales with Δ since bucket
  // population is proportional to Δ), then steer utilization into
  // [util_low, util_high].
  ++updates_since_change_;
  const bool settled_by_switches =
      s.head_switches - last_change_switch_ >= opts_.settle_head_switches;
  // When Δ is so coarse that the head bucket never drains, head switches
  // stall; a bounded number of updates also completes settling — but only
  // for *growing* Δ (the stalled-head case is precisely an
  // under-utilization / too-coarse situation). Shrinking without observed
  // head progress over-steers into starvation.
  const bool settled_by_updates =
      updates_since_change_ >= opts_.settle_max_updates;

  if (util < opts_.util_low && s.work_pending &&
      active_buckets_ == opts_.max_active_buckets &&
      (settled_by_switches || settled_by_updates)) {
    // Under-utilized even with the widest bucket set: coarsen.
    set_delta(delta_ * opts_.grow_factor, s.head_switches);
    return true;
  }
  if (util > opts_.util_high &&
      (settled_by_switches || settled_by_updates)) {
    // Over-saturated: extra parallelism is pointless work; refine Δ unless
    // that would immediately re-trigger the clip guard, and never below the
    // dynamic floor.
    const double floor_delta = initial_delta_ / opts_.shrink_floor_factor;
    const double next = delta_ * opts_.shrink_factor;
    if (s.tail_share < opts_.clip_tail_share * 0.6 && next >= floor_delta) {
      set_delta(next, s.head_switches);
      return true;
    }
  }
  return false;
}

}  // namespace adds
