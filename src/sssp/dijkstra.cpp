#include "sssp/dijkstra.hpp"

#include <vector>

#include "util/timer.hpp"

namespace adds {

namespace {

/// Minimal binary min-heap of (dist, vertex) pairs with an operation
/// counter. We implement it directly (rather than std::priority_queue) to
/// count sift operations the way the Galois baseline's heap does and to
/// keep pop order fully deterministic across platforms.
template <typename Dist>
class BinaryHeap {
 public:
  struct Entry {
    Dist dist;
    VertexId vertex;
  };

  bool empty() const noexcept { return heap_.empty(); }
  size_t size() const noexcept { return heap_.size(); }
  uint64_t ops() const noexcept { return ops_; }

  void push(Dist d, VertexId v) {
    heap_.push_back({d, v});
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!less(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
      ++ops_;
    }
    ++ops_;
  }

  Entry pop() {
    const Entry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    size_t i = 0;
    while (true) {
      const size_t l = 2 * i + 1, r = 2 * i + 2;
      size_t smallest = i;
      if (l < heap_.size() && less(heap_[l], heap_[smallest])) smallest = l;
      if (r < heap_.size() && less(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
      ++ops_;
    }
    ++ops_;
    return top;
  }

 private:
  static bool less(const Entry& a, const Entry& b) noexcept {
    // Tie-break on vertex id for determinism.
    return a.dist < b.dist || (a.dist == b.dist && a.vertex < b.vertex);
  }
  std::vector<Entry> heap_;
  uint64_t ops_ = 0;
};

}  // namespace

template <WeightType W>
SsspResult<W> dijkstra(const CsrGraph<W>& g, VertexId source,
                       const CpuCostModel* cpu) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = "dijkstra";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");

  BinaryHeap<Dist> heap;
  r.dist[source] = Dist{0};
  heap.push(Dist{0}, source);
  ++r.work.pushes;

  while (!heap.empty()) {
    const auto [d, u] = heap.pop();
    if (d > r.dist[u]) {
      ++r.work.stale_skipped;  // lazy-deletion duplicate
      continue;
    }
    ++r.work.items_processed;
    const EdgeIndex end = g.edge_end(u);
    for (EdgeIndex e = g.edge_begin(u); e < end; ++e) {
      ++r.work.relaxations;
      const VertexId v = g.edge_target(e);
      const Dist nd = d + Dist(g.edge_weight(e));
      if (nd < r.dist[v]) {
        r.dist[v] = nd;
        heap.push(nd, v);
        ++r.work.improvements;
        ++r.work.pushes;
      }
    }
  }
  r.work.heap_ops = heap.ops();

  if (cpu != nullptr)
    r.time_us = cpu->dijkstra_us(r.work.relaxations, r.work.heap_ops);
  r.wall_ms = timer.elapsed_ms();
  return r;
}

template SsspResult<uint32_t> dijkstra<uint32_t>(const CsrGraph<uint32_t>&,
                                                 VertexId,
                                                 const CpuCostModel*);
template SsspResult<float> dijkstra<float>(const CsrGraph<float>&, VertexId,
                                           const CpuCostModel*);

}  // namespace adds
