// Serial Dijkstra with a binary heap — the work-efficiency gold standard
// and the correctness oracle for every other engine (paper baseline
// "Dijkstra", from Galois 4.0).
#pragma once

#include "graph/csr_graph.hpp"
#include "sim/cost_model.hpp"
#include "sssp/result.hpp"

namespace adds {

/// Runs Dijkstra from `source`. Virtual time is charged against `cpu`
/// (relaxations + heap operations on one core); pass nullptr to skip the
/// time model (pure correctness use).
template <WeightType W>
SsspResult<W> dijkstra(const CsrGraph<W>& g, VertexId source,
                       const CpuCostModel* cpu = nullptr);

extern template SsspResult<uint32_t> dijkstra<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const CpuCostModel*);
extern template SsspResult<float> dijkstra<float>(const CsrGraph<float>&,
                                                  VertexId,
                                                  const CpuCostModel*);

}  // namespace adds
