// Common result and work-accounting types for all SSSP engines.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "sim/trace.hpp"

namespace adds {

struct RunReport;  // core/resilience.hpp — guarded-run attempt history

/// Pool-pressure severity observed by the host engine's overload governor
/// (thresholds on the allocator's free-block count; docs/RESILIENCE.md).
enum class PoolPressure : uint8_t {
  kNone = 0,      // free blocks comfortably above the watermarks
  kElevated = 1,  // free <= ~1/4 of the pool: tail capacity rationed
  kCritical = 2,  // free <= ~1/8 of the pool: tail buckets spilled to heap
};

inline const char* pool_pressure_name(PoolPressure p) noexcept {
  switch (p) {
    case PoolPressure::kNone: return "none";
    case PoolPressure::kElevated: return "elevated";
    case PoolPressure::kCritical: return "critical";
  }
  return "?";
}

/// Queue/pool health snapshot of one adds-host run — the overload
/// governor's observability surface (zeros for other engines). Reached
/// through SsspResult::health and copied into the guarded runtime's
/// AttemptRecord.
struct QueueHealth {
  uint32_t pool_blocks = 0;          // slab size the run used
  uint32_t peak_blocks_in_use = 0;   // allocator high-water mark
  uint32_t min_free_blocks = 0;      // allocator low-water mark
  PoolPressure peak_pressure = PoolPressure::kNone;
  uint64_t spill_events = 0;         // governor spill sweeps
  uint64_t spilled_items = 0;        // items moved slab -> heap
  uint64_t replayed_items = 0;       // items pushed back from the heap
  uint64_t spill_peak_items = 0;     // heap-resident item high-water mark
  uint64_t spilled_blocks_freed = 0; // blocks recycled by spill sweeps
};

/// Work counters. `items_processed` is the paper's work-efficiency metric:
/// the number of worklist entries whose edges were actually relaxed
/// (work efficiency = 1 / items_processed).
struct WorkStats {
  uint64_t items_processed = 0;  // vertices processed (incl. re-processing)
  uint64_t relaxations = 0;      // edge relaxations attempted
  uint64_t improvements = 0;     // distance updates that won
  uint64_t stale_skipped = 0;    // popped items dropped by the stale check
  uint64_t pushes = 0;           // worklist insertions
  uint64_t heap_ops = 0;         // Dijkstra only

  // Queue-cost accounting (adds-host): how many shared-cache-line atomics
  // the insertions actually cost, and how much write combining batched.
  uint64_t queue_reserve_ops = 0;  // resv_ptr fetch-adds issued
  uint64_t queue_publish_ops = 0;  // WCC fetch-adds issued
  uint64_t batch_flushes = 0;      // combiner batch publications
  uint64_t combined_items = 0;     // items pushed through batch flushes
  uint64_t assigned_items = 0;     // items handed to workers (manager side)
  uint64_t inline_ranges = 0;      // tiny ranges the manager ran itself
  uint64_t inline_items = 0;       // items relaxed inline by the manager

  // Batched multi-source accounting (zeros for single-source runs).
  uint64_t lane_splits = 0;    // combiner multisplit passes
  uint64_t lane_dropped = 0;   // items skipped because their lane detached
  uint64_t parent_repairs = 0; // parent entries fixed by the certify pass

  void merge(const WorkStats& o) noexcept {
    items_processed += o.items_processed;
    relaxations += o.relaxations;
    improvements += o.improvements;
    stale_skipped += o.stale_skipped;
    pushes += o.pushes;
    heap_ops += o.heap_ops;
    queue_reserve_ops += o.queue_reserve_ops;
    queue_publish_ops += o.queue_publish_ops;
    batch_flushes += o.batch_flushes;
    combined_items += o.combined_items;
    assigned_items += o.assigned_items;
    inline_ranges += o.inline_ranges;
    inline_items += o.inline_items;
    lane_splits += o.lane_splits;
    lane_dropped += o.lane_dropped;
    parent_repairs += o.parent_repairs;
  }

  /// Zeroes every counter. Warm engines reset the per-worker stats objects
  /// at the start of each query: the objects outlive a single run, and a
  /// stale counter would silently leak one query's work into the next
  /// result's accounting.
  void reset() noexcept { *this = WorkStats{}; }
};

template <WeightType W>
struct SsspResult {
  std::string solver;
  std::vector<DistT<W>> dist;  // per-vertex distance (infinity = unreached)
  /// Shortest-path-tree predecessor per vertex; parent[source] == source,
  /// kInvalidVertex for unreached. Populated by batched solves
  /// (HostEngine::solve_batch certifies it at extraction); empty for
  /// engines that only compute distances.
  std::vector<VertexId> parent;
  WorkStats work;
  QueueHealth health;  // adds-host pool/spill health (zeros elsewhere)

  double time_us = 0.0;   // modelled (virtual) execution time
  double wall_ms = 0.0;   // real host time spent producing the result

  // Engine-specific observability.
  uint64_t supersteps = 0;                       // BSP engines
  uint64_t window_advances = 0;                  // ADDS
  ParallelismTrace trace{};                      // Figures 11-15
  std::vector<std::pair<double, double>> delta_history;  // (t_us, delta)

  /// Attempt/watchdog/audit history; set only by run_solver_guarded
  /// (core/resilience.hpp), null for plain run_solver results.
  std::shared_ptr<const RunReport> resilience;

  uint64_t reached() const noexcept {
    uint64_t n = 0;
    for (const auto d : dist)
      if (d != DistTraits<W>::infinity()) ++n;
    return n;
  }
};

}  // namespace adds
