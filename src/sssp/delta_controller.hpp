// Dynamic Δ selection (paper §5.5).
//
// The manager periodically feeds this controller three run-time signals:
//
//   * assigned work (in edge units) — the utilization proxy: the paper
//     monitors "the number of work items that it currently has assigned",
//     correlated with average degree (hence edges);
//   * the share of pending work sitting in the tail bucket — the clipping
//     detector (>= 65% means Δ is below the clip point and must grow);
//   * the cumulative number of head-bucket switches — the controller's
//     clock: Δ adjustments wait a fixed number of head switches so the
//     settling time scales naturally with Δ.
//
// Between (slow) Δ adjustments the controller makes fast fine-grained
// corrections by varying how many high-priority buckets the manager may
// assign work from.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace adds {

struct DeltaControllerOptions {
  bool enabled = true;       // Static-Δ ablation turns the controller off
  double util_low = 0.50;    // lower utilization limit (x saturation)
  double util_high = 1.25;   // upper utilization limit (x saturation)
  double clip_tail_share = 0.65;
  uint32_t settle_head_switches = 4;  // wait between Δ adjustments
  /// Fallback settle clock: when Δ is so coarse that the head bucket never
  /// drains, head switches stop — after this many controller updates with
  /// no switch, the settling period is considered over anyway.
  uint32_t settle_max_updates = 192;
  double grow_factor = 2.0;
  double shrink_factor = 0.5;
  double min_delta = 1.0;
  double max_delta = 1e12;
  /// Dynamic shrinks never go below initial_delta / shrink_floor_factor:
  /// the initial heuristic is a reasonable order-of-magnitude estimate, and
  /// an unbounded descent starves the window once the coarse backlog
  /// drains.
  double shrink_floor_factor = 16.0;
  uint32_t min_active_buckets = 1;
  uint32_t max_active_buckets = 8;
};

class DeltaController {
 public:
  /// `saturation_edges`: in-flight edge count at which the machine is fully
  /// utilized (GpuCostModel::saturation_threads()).
  DeltaController(const DeltaControllerOptions& opts, double saturation_edges,
                  double initial_delta);

  struct Signals {
    double assigned_edges = 0;   // currently assigned work, edge units
    double tail_share = 0;       // tail-bucket share of pending items [0,1]
    uint64_t head_switches = 0;  // cumulative window advances
    bool work_pending = false;   // any unassigned work exists
  };

  /// One controller step; returns true if Δ changed.
  bool update(const Signals& s);

  /// Reuse hook for warm engines: re-initializes the controller for a new
  /// run (fresh Δ, minimum active buckets, cleared history/settle clocks)
  /// without reallocating it. Equivalent to constructing with the same
  /// options and the given saturation/initial Δ.
  void reset(double saturation_edges, double initial_delta);

  double delta() const noexcept { return delta_; }
  uint32_t active_buckets() const noexcept { return active_buckets_; }
  double utilization(double assigned_edges) const noexcept {
    return assigned_edges / saturation_edges_;
  }

  /// (head_switch_count, new_delta) for each adjustment, for Δ-history
  /// reporting.
  const std::vector<std::pair<uint64_t, double>>& history() const noexcept {
    return history_;
  }

 private:
  void set_delta(double d, uint64_t at_switch);

  DeltaControllerOptions opts_;
  double saturation_edges_;
  double initial_delta_;
  double delta_;
  uint32_t active_buckets_;
  uint64_t last_change_switch_ = 0;
  uint64_t updates_since_change_ = 0;
  std::vector<std::pair<uint64_t, double>> history_;
};

}  // namespace adds
