// The static Δ heuristic from the Near-Far paper (Davidson et al., IPDPS'14)
// as used by the paper for all parallel baselines and as ADDS's *initial*
// Δ: Δ = C * (avg_weight / avg_degree), with a single constant C for all
// graphs. Section 4.3 of the paper demonstrates why no constant C is right
// for every graph — which Figure 4's bench sweeps — and ADDS then adjusts Δ
// at run time from this starting point.
#pragma once

#include <algorithm>

#include "graph/csr_graph.hpp"

namespace adds {

/// The constant the baselines use. The Near-Far paper suggests values
/// around 32 for its int road inputs; we use it for every graph, exactly
/// the "one C for all graphs" policy the paper critiques.
inline constexpr double kNearFarDeltaC = 32.0;

/// Δ = C * avg_weight / avg_degree, floored at the smallest useful step.
template <WeightType W>
double static_delta(const CsrGraph<W>& g, double c = kNearFarDeltaC) {
  const double avg_w = g.average_weight();
  const double avg_d = std::max(1.0, g.average_degree());
  const double delta = c * avg_w / avg_d;
  return std::max(delta, 1.0);
}

}  // namespace adds
