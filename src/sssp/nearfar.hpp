// The Near-Far algorithm (Davidson et al., IPDPS'14) — the paper's primary
// baseline ("NF", from LonestarGPU) and its Gunrock variant ("Gun-NF").
//
// Near-Far is delta-stepping collapsed to two buckets: a Near worklist
// holding vertices below the current distance threshold and a Far pile for
// everything else. Execution is bulk-synchronous with double buffering:
// each superstep filters and relaxes the Near list; when Near drains, the
// Far pile is split against the advanced threshold. Both structures are
// pre-allocated arrays — the design whose three deficiencies (two buckets,
// BSP double buffering, static Δ) motivate ADDS.
#pragma once

#include "graph/csr_graph.hpp"
#include "sim/cost_model.hpp"
#include "sssp/result.hpp"

namespace adds {

struct NearFarOptions {
  /// Δ for the threshold schedule; <= 0 means use the static heuristic
  /// Δ = C * avg_weight / avg_degree.
  double delta = 0.0;
  double heuristic_c = 32.0;

  /// LonestarGPU's NF deduplicates each Near frontier with a filter pass
  /// before relaxing; Gunrock's variant does not.
  bool dedup_filter = true;

  /// Kernel launches per superstep beyond the relax kernel itself. Gunrock's
  /// advance/filter/compact pipeline issues more launches per superstep than
  /// the fused LonestarGPU implementation.
  double launch_multiplier = 1.0;
};

/// LonestarGPU-style Near-Far ("NF").
template <WeightType W>
SsspResult<W> near_far(const CsrGraph<W>& g, VertexId source,
                       const GpuCostModel& gpu,
                       const NearFarOptions& opts = {});

/// Gunrock 0.2-style Near-Far ("Gun-NF"): no dedup filter, deeper launch
/// pipeline.
template <WeightType W>
SsspResult<W> gunrock_near_far(const CsrGraph<W>& g, VertexId source,
                               const GpuCostModel& gpu, double delta = 0.0);

extern template SsspResult<uint32_t> near_far<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const GpuCostModel&,
    const NearFarOptions&);
extern template SsspResult<float> near_far<float>(const CsrGraph<float>&,
                                                  VertexId,
                                                  const GpuCostModel&,
                                                  const NearFarOptions&);
extern template SsspResult<uint32_t> gunrock_near_far<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const GpuCostModel&, double);
extern template SsspResult<float> gunrock_near_far<float>(
    const CsrGraph<float>&, VertexId, const GpuCostModel&, double);

}  // namespace adds
