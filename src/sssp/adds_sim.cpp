// The ADDS scheduling policy executed over the virtual GPU (DESIGN.md §2).
//
// Mapping from the paper's runtime to the model:
//   WTB                -> one SharingPool server (256 virtual threads)
//   MTB loop iteration -> a manager tick every mtb_tick_us of virtual time
//   work assignment    -> a pool job sized in edge units; relaxations are
//                         applied when the job completes (asynchronous:
//                         spawned work becomes assignable at the very next
//                         manager tick, never a BSP barrier later)
//   32-bucket window   -> deques rotated exactly like WorkQueue's window
#include "sssp/adds.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "queue/work_queue.hpp"  // for the shared logical_index() math
#include "sim/sharing_pool.hpp"
#include "sssp/delta_heuristic.hpp"
#include "util/timer.hpp"

namespace adds {

namespace {

template <typename Dist>
struct SimItem {
  VertexId vertex;
  Dist dist_at_push;
};

/// Per-assignment record: which physical bucket the items came from (for
/// the in-flight accounting that gates head retirement) and the items
/// themselves, relaxed at completion time.
template <typename Dist>
struct Job {
  uint64_t id;
  uint32_t phys_bucket;
  std::vector<SimItem<Dist>> items;
};

}  // namespace

template <WeightType W>
SsspResult<W> adds_sim(const CsrGraph<W>& g, VertexId source,
                       const GpuCostModel& gpu, const AddsOptions& opts) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = "adds";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");
  ADDS_REQUIRE(opts.num_buckets >= 2, "ADDS needs at least 2 buckets");

  const uint32_t K = opts.num_buckets;
  const double initial_delta =
      opts.delta > 0.0 ? opts.delta : static_delta(g, opts.heuristic_c);

  DeltaControllerOptions copts = opts.controller;
  copts.enabled = opts.dynamic_delta;
  copts.max_active_buckets =
      std::min<uint32_t>(copts.max_active_buckets, K - 1);
  DeltaController controller(copts, gpu.saturation_threads(), initial_delta);

  SharingPool pool(gpu.spec().worker_blocks(gpu.wtb_width),
                   gpu.wtb_edge_rate(), gpu.cap_edges_per_us());

  // The circular window: physical bucket = (window_pos + logical) % K.
  std::vector<std::deque<SimItem<Dist>>> buckets(K);
  std::vector<uint32_t> in_flight(K, 0);  // items assigned, not completed
  uint64_t window_pos = 0;
  double base_dist = 0.0;
  auto physical = [&](uint32_t logical) {
    return uint32_t((window_pos + logical) % K);
  };

  const double mean_degree = std::max(1.0, g.average_degree());
  ParallelismTrace trace(gpu.mtb_tick_us);

  uint64_t total_pending = 0;
  const auto push_item = [&](VertexId v, Dist d) {
    const uint32_t logical = WorkQueue::logical_index(
        double(d), base_dist, controller.delta(), K);
    buckets[physical(logical)].push_back({v, d});
    ++total_pending;
    ++r.work.pushes;
  };

  r.dist[source] = Dist{0};
  push_item(source, Dist{0});

  std::vector<Job<Dist>> jobs;  // in-flight assignments, keyed linearly
  std::vector<SharingPool::Completion> completions;

  const auto relax_items = [&](const Job<Dist>& job) {
    for (const auto& it : job.items) {
      if (it.dist_at_push > r.dist[it.vertex]) {
        ++r.work.stale_skipped;
        continue;
      }
      ++r.work.items_processed;
      const Dist du = r.dist[it.vertex];
      const EdgeIndex end = g.edge_end(it.vertex);
      for (EdgeIndex e = g.edge_begin(it.vertex); e < end; ++e) {
        ++r.work.relaxations;
        const VertexId v = g.edge_target(e);
        const Dist nd = du + Dist(g.edge_weight(e));
        if (nd < r.dist[v]) {
          r.dist[v] = nd;
          ++r.work.improvements;
          push_item(v, nd);
        }
      }
    }
    in_flight[job.phys_bucket] -= uint32_t(job.items.size());
  };

  uint64_t empty_sweeps = 0;
  uint64_t total_in_flight_items = 0;

  while (true) {
    // --- Workers run until the next manager tick -------------------------
    const double t_tick = pool.now_us() + gpu.mtb_tick_us;
    completions.clear();
    pool.advance_to(t_tick, completions);
    for (const auto& c : completions) {
      // Jobs complete in submission-independent order; find by id.
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].id == c.job_id) {
          total_in_flight_items -= jobs[i].items.size();
          relax_items(jobs[i]);
          jobs[i] = std::move(jobs.back());
          jobs.pop_back();
          break;
        }
      }
    }

    // --- Manager tick -----------------------------------------------------

    // 1. Retire drained head buckets (paper §5.4: only when the head's
    //    completed-work count matches its reservations, i.e. nothing pending
    //    and nothing in flight — otherwise spawned head work would cram into
    //    ever fewer buckets).
    uint32_t advances = 0;
    while (total_pending + total_in_flight_items > 0 && advances < K - 1 &&
           buckets[physical(0)].empty() && in_flight[physical(0)] == 0) {
      ++window_pos;
      base_dist += controller.delta();
      ++r.window_advances;
      ++advances;
    }

    // 2. Assign work from the active high-priority buckets to idle workers.
    const uint32_t active = controller.active_buckets();
    for (uint32_t logical = 0; logical < active && pool.has_idle();
         ++logical) {
      auto& bucket = buckets[physical(logical)];
      while (!bucket.empty() && pool.has_idle()) {
        Job<Dist> job;
        job.phys_bucket = physical(logical);
        const uint32_t max_take =
            std::min<uint32_t>(opts.chunk_items, uint32_t(bucket.size()));
        job.items.reserve(max_take);
        double edge_units = gpu.assignment_overhead_us *
                            gpu.wtb_edge_rate();  // pickup cost
        double edges_taken = 0.0;
        uint32_t take = 0;
        while (take < max_take) {
          const SimItem<Dist> it = bucket.front();
          // Cost: stale items only touch the distance array; live items
          // relax their whole edge list.
          const double cost = it.dist_at_push > r.dist[it.vertex]
                                  ? 0.25
                                  : double(g.out_degree(it.vertex));
          // Edge budget: never hand one block a pathologically heavy range
          // (but always take at least one item so progress is guaranteed).
          if (take > 0 &&
              edges_taken + cost > double(opts.chunk_edge_budget))
            break;
          bucket.pop_front();
          edges_taken += cost;
          edge_units += cost;
          job.items.push_back(it);
          ++take;
        }
        total_pending -= take;
        total_in_flight_items += take;
        in_flight[job.phys_bucket] += take;
        job.id = pool.submit(edge_units);
        jobs.push_back(std::move(job));
      }
    }

    // 3. Feed the Δ controller.
    DeltaController::Signals sig;
    sig.assigned_edges = pool.busy_edges_assigned();
    sig.head_switches = r.window_advances;
    sig.work_pending = total_pending > 0;
    if (total_pending > 0) {
      sig.tail_share =
          double(buckets[physical(K - 1)].size()) / double(total_pending);
    }
    controller.update(sig);

    trace.record(pool.now_us(), pool.busy_edges_assigned());

    // 4. Termination (paper §5.4): two consecutive sweeps with no work
    //    assigned anywhere and nothing in flight.
    if (total_pending == 0 && total_in_flight_items == 0 && jobs.empty()) {
      if (++empty_sweeps >= 2) break;
    } else {
      empty_sweeps = 0;
    }
  }

  r.time_us = pool.now_us();
  r.trace = trace;
  for (const auto& [sw, d] : controller.history())
    r.delta_history.emplace_back(double(sw), d);
  (void)mean_degree;
  r.wall_ms = timer.elapsed_ms();
  return r;
}

template SsspResult<uint32_t> adds_sim<uint32_t>(const CsrGraph<uint32_t>&,
                                                 VertexId,
                                                 const GpuCostModel&,
                                                 const AddsOptions&);
template SsspResult<float> adds_sim<float>(const CsrGraph<float>&, VertexId,
                                           const GpuCostModel&,
                                           const AddsOptions&);

}  // namespace adds
