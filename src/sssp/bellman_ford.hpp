// BSP Bellman-Ford baselines.
//
// `bellman_ford` models Gunrock 1.0's SSSP ("Gun-BF" in the paper): a
// frontier-based, double-buffered bulk-synchronous Bellman-Ford. Every
// superstep relaxes all edges of the current frontier and builds the next
// frontier from vertices whose distance improved; there is no priority
// ordering at all, which maximizes parallelism and redundant work.
//
// `nv_like` models the closed-source nvGRAPH SSSP ("NV"): the classic dense
// linear-algebra formulation that sweeps *every* vertex each iteration
// until distances stop changing (see DESIGN.md §2 for the substitution
// rationale).
#pragma once

#include "graph/csr_graph.hpp"
#include "sim/cost_model.hpp"
#include "sssp/result.hpp"

namespace adds {

struct BellmanFordOptions {
  /// Deduplicate the next frontier with a bitmap pass (Gunrock does; a
  /// naive implementation would not).
  bool dedup_frontier = true;
};

template <WeightType W>
SsspResult<W> bellman_ford(const CsrGraph<W>& g, VertexId source,
                           const GpuCostModel& gpu,
                           const BellmanFordOptions& opts = {});

template <WeightType W>
SsspResult<W> nv_like(const CsrGraph<W>& g, VertexId source,
                      const GpuCostModel& gpu);

extern template SsspResult<uint32_t> bellman_ford<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const GpuCostModel&,
    const BellmanFordOptions&);
extern template SsspResult<float> bellman_ford<float>(
    const CsrGraph<float>&, VertexId, const GpuCostModel&,
    const BellmanFordOptions&);
extern template SsspResult<uint32_t> nv_like<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const GpuCostModel&);
extern template SsspResult<float> nv_like<float>(const CsrGraph<float>&,
                                                 VertexId,
                                                 const GpuCostModel&);

}  // namespace adds
