// In-place SSSP repair planning for live graph deltas.
//
// Δ-stepping relaxation is correct from ANY over-approximate distance
// labels (the stepping-framework analysis in Dong et al., PAPERS.md): it
// monotonically lowers labels via relaxations and terminates with exact
// distances provided every vertex whose label must drop is reachable from
// the seeded frontier through relaxation. plan_repair builds exactly that
// starting state from a parent solve's labels and a delta classification
// (graph/delta.hpp):
//
//   * Decreases and inserts only LOWER child distances, so the parent
//     labels stay over-approximate as they are; seeding the changed edges'
//     tails (at their warm labels) suffices — any path that improved must
//     cross a changed edge, and the first such crossing relaxes from a
//     seeded, already-correct tail.
//   * Increases can RAISE child distances, which would make parent labels
//     under-approximate — fatal for monotone relaxation. The affected set
//     is invalidated to infinity first: starting from the heads of tight
//     increased edges (dist[u] + w_old == dist[v], i.e. the edge lay on a
//     shortest path), tightness is propagated through the PARENT graph's
//     tight edges. That reaches a superset of every vertex whose distance
//     could have grown (a vertex all of whose shortest parent paths used
//     an increased edge has an all-tight suffix from one of those heads);
//     over-invalidation only costs re-relaxation work, never correctness.
//     The invalidated region is then re-entered from its fringe: every
//     finite-label vertex with a CHILD edge into the region is seeded.
//
//   The source is never invalidated (its distance is 0 by definition) and
//   an empty frontier means the warm labels are already exact.
//
// verify_repair is the paired O(E) exactness certificate for positive
// weights: feasibility (d[v] <= d[u] + w on every child edge, d[src] == 0)
// bounds every label from above by the true distance, and support (every
// finite non-source label has a tight in-edge) grounds every label as a
// real path length — tight edges cannot cycle under positive weights, so
// support chains terminate at the source. Feasible + supported ==> exact.
// A repaired tree that fails the certificate is discarded and the caller
// falls back to a cold solve on the child graph (typed, never silent).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/delta.hpp"
#include "graph/types.hpp"
#include "util/error.hpp"

namespace adds {

/// One seeded frontier vertex: push `vertex` at priority `label` (its warm
/// distance — the queue bins it into the bucket its remaining relaxation
/// work belongs to).
template <WeightType W>
struct RepairSeed {
  VertexId vertex = 0;
  DistT<W> label = DistT<W>{0};
};

/// Warm-start state for HostEngine::solve_repair.
template <WeightType W>
struct RepairPlan {
  /// Per-vertex starting labels over the child graph: the parent's
  /// distances with the increase-affected region reset to infinity.
  /// Always over-approximate, which is the whole correctness contract.
  std::vector<DistT<W>> warm;
  /// Deduplicated frontier (changed-edge tails + invalidation fringe).
  /// Empty means the warm labels are already exact.
  std::vector<RepairSeed<W>> frontier;
  uint64_t invalidated = 0;  // labels reset to infinity
};

/// Builds the warm-start state for repairing `parent_dist` (an exact solve
/// of `source` on the parent graph) into an exact solve on `child`. The
/// classification must come from the apply_delta call that produced
/// `child` from `parent`.
template <WeightType W>
RepairPlan<W> plan_repair(const CsrGraph<W>& parent, const CsrGraph<W>& child,
                          const DeltaResult<W>& delta,
                          const std::vector<DistT<W>>& parent_dist,
                          VertexId source) {
  using Dist = DistT<W>;
  constexpr Dist kInf = DistTraits<W>::infinity();
  const VertexId n = child.num_vertices();
  ADDS_REQUIRE(parent.num_vertices() == n,
               "repair: parent/child vertex count mismatch");
  ADDS_REQUIRE(parent_dist.size() == size_t(n),
               "repair: distance array size mismatch");
  ADDS_REQUIRE(source < n && parent_dist[source] == Dist{0},
               "repair: parent labels are not a solve of this source");

  RepairPlan<W> plan;
  plan.warm = parent_dist;

  // Increase invalidation: tight-edge propagation on the PARENT graph with
  // the ORIGINAL labels (plan.warm still equals parent_dist here for every
  // vertex we test — invalidated vertices are marked, not yet reset).
  std::vector<uint8_t> invalid(n, 0);
  std::vector<VertexId> wave;
  for (const ClassifiedEdge<W>& e : delta.increased) {
    if (e.dst == source || invalid[e.dst]) continue;
    if (parent_dist[e.src] == kInf || parent_dist[e.dst] == kInf) continue;
    if (parent_dist[e.src] + Dist(e.old_weight) != parent_dist[e.dst])
      continue;  // the increased edge was not on a shortest path
    invalid[e.dst] = 1;
    wave.push_back(e.dst);
  }
  while (!wave.empty()) {
    const VertexId u = wave.back();
    wave.pop_back();
    for (EdgeIndex e = parent.edge_begin(u); e < parent.edge_end(u); ++e) {
      const VertexId v = parent.edge_target(e);
      if (invalid[v] || v == source) continue;
      if (parent_dist[v] == kInf) continue;
      if (parent_dist[u] + Dist(parent.edge_weight(e)) != parent_dist[v])
        continue;
      invalid[v] = 1;
      wave.push_back(v);
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!invalid[v]) continue;
    plan.warm[v] = kInf;
    ++plan.invalidated;
  }

  // Frontier: changed-edge tails (decreases + inserts) and the
  // invalidation fringe, each finite-label vertex at most once.
  std::vector<uint8_t> seeded(n, 0);
  const auto seed = [&](VertexId u) {
    if (seeded[u] || plan.warm[u] == kInf) return;
    seeded[u] = 1;
    plan.frontier.push_back(RepairSeed<W>{u, plan.warm[u]});
  };
  for (const ClassifiedEdge<W>& e : delta.decreased) seed(e.src);
  for (const ClassifiedEdge<W>& e : delta.inserted) seed(e.src);
  if (plan.invalidated > 0) {
    // Fringe = finite-label tails of CHILD edges into the invalidated
    // region (the child's adjacency, so inserted edges re-enter it too).
    for (VertexId u = 0; u < n; ++u) {
      if (plan.warm[u] == kInf || seeded[u]) continue;
      for (EdgeIndex e = child.edge_begin(u); e < child.edge_end(u); ++e) {
        if (invalid[child.edge_target(e)]) {
          seed(u);
          break;
        }
      }
    }
  }
  return plan;
}

/// Outcome of the post-repair certificate.
struct RepairVerdict {
  bool exact = false;
  uint64_t feasibility_violations = 0;  // edges with d[v] > d[u] + w
  uint64_t unsupported = 0;  // finite non-source labels with no tight in-edge
};

/// O(E) exactness certificate for positive weights: feasibility + support
/// (see the header comment for why the pair implies d == dist exactly).
/// The caller treats !exact as "repair failed — discard and cold-solve".
template <WeightType W>
RepairVerdict verify_repair(const CsrGraph<W>& child, VertexId source,
                            const std::vector<DistT<W>>& dist) {
  using Dist = DistT<W>;
  constexpr Dist kInf = DistTraits<W>::infinity();
  const VertexId n = child.num_vertices();
  RepairVerdict v;
  if (dist.size() != size_t(n) || source >= n || dist[source] != Dist{0}) {
    v.feasibility_violations = 1;
    return v;
  }
  std::vector<uint8_t> supported(n, 0);
  supported[source] = 1;
  for (VertexId u = 0; u < n; ++u) {
    if (dist[u] == kInf) continue;  // an infinite tail implies nothing
    for (EdgeIndex e = child.edge_begin(u); e < child.edge_end(u); ++e) {
      const VertexId t = child.edge_target(e);
      const Dist through = dist[u] + Dist(child.edge_weight(e));
      if (dist[t] > through) ++v.feasibility_violations;
      if (dist[t] == through) supported[t] = 1;
    }
  }
  for (VertexId u = 0; u < n; ++u)
    if (dist[u] != kInf && !supported[u]) ++v.unsupported;
  v.exact = v.feasibility_violations == 0 && v.unsupported == 0;
  return v;
}

}  // namespace adds
