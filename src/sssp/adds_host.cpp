// The host-threads ADDS engine: the full queue protocol under real
// concurrency.
//
// One manager thread (MTB) and `num_workers` worker threads (WTBs) execute
// the paper's runtime verbatim at host scale:
//
//   * workers push work items (vertex ids) straight into buckets via
//     atomic resv_ptr reservation and WCC publication;
//   * the manager alone scans segment metadata, computes safely-readable
//     ranges, hands them to idle workers through per-worker assignment
//     flags, performs all block allocation/recycling, rotates the bucket
//     window, and (optionally) adjusts Δ from run-time signals;
//   * termination requires two consecutive manager sweeps that find no
//     pending or in-flight work and all workers idle (paper §5.4).
//
// Distances live in a shared AtomicDistArray with CAS fetch-min. An item is
// just a vertex id (as in the paper); a popped vertex is relaxed against
// its *current* distance, so a stale pop costs redundant-but-correct work.
#include "sssp/adds.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "queue/assignment.hpp"
#include "queue/push_combiner.hpp"
#include "queue/spill_store.hpp"
#include "queue/translation_cache.hpp"
#include "queue/work_queue.hpp"
#include "sssp/atomic_dist.hpp"
#include "sssp/delta_heuristic.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace adds {

namespace {

/// Everything one worker thread needs.
template <WeightType W>
struct WorkerContext {
  const CsrGraph<W>* graph = nullptr;
  WorkQueue* queue = nullptr;
  AtomicDistArray<DistT<W>>* dist = nullptr;
  AssignmentFlag* flag = nullptr;
  uint32_t combine_capacity = 0;  // 0: single-item pushes (combining off)
  WorkStats stats;  // thread-local; merged after join
};

/// Pulls the CSR row bounds of `u` toward the cache ahead of use.
template <WeightType W>
inline void prefetch_row_offsets(const CsrGraph<W>& g, VertexId u) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(g.offsets().data() + u, 0 /*read*/, 3 /*high locality*/);
#else
  (void)g;
  (void)u;
#endif
}

template <WeightType W>
void worker_main(WorkerContext<W>& ctx) {
  using Dist = DistT<W>;
  const CsrGraph<W>& g = *ctx.graph;
  const VertexId* const targets = g.targets().data();
  const W* const weights = g.weights().data();
  TranslationCache<8> cache;
  std::optional<PushCombiner> combiner;
  if (ctx.combine_capacity > 0)
    combiner.emplace(*ctx.queue, ctx.combine_capacity);

  // Relaxes one row; pushes go through the combiner when enabled.
  const auto relax_row = [&](VertexId u) {
    const Dist du = ctx.dist->load(u);
    if (du == DistTraits<W>::infinity()) {
      // Only possible for a corrupt queue; the push that enqueued u set a
      // finite distance first.
      ++ctx.stats.stale_skipped;
      return;
    }
    ++ctx.stats.items_processed;
    const EdgeIndex begin = g.edge_begin(u);
    const EdgeIndex end = g.edge_end(u);
    ctx.stats.relaxations += end - begin;
    for (EdgeIndex e = begin; e < end; ++e) {
      const VertexId v = targets[e];
      const Dist nd = du + Dist(weights[e]);
      if (ctx.dist->fetch_min(v, nd)) {
        ++ctx.stats.improvements;
        ++ctx.stats.pushes;
        if (combiner) {
          combiner->push(v, double(nd));
        } else if (ctx.queue->push(v, double(nd)) !=
                   WorkQueue::kPushAborted) {
          ++ctx.stats.queue_reserve_ops;
          ++ctx.stats.queue_publish_ops;
        }
      }
    }
  };

  while (true) {
    // Event-driven idle wait: the worker parks on its flag and the
    // manager's assign()/terminate() wakes it directly — the handoff no
    // longer pays the old capped-backoff sleep quantum.
    bool should_exit = false;
    const auto assignment = ctx.flag->wait(should_exit);
    if (should_exit) break;
    if (!assignment) continue;
    // Injected worker stall: the assignment sits un-processed (in-flight),
    // exactly like a preempted/wedged WTB. Bounded and abort-observing.
    fault::delay(fault::Site::kWorkerStall, &ctx.queue->abort_flag());

    Bucket& bucket = ctx.queue->physical_bucket(assignment->phys_bucket);
    cache.reset();
    // Row-batched relaxation with one-ahead software prefetch: the next
    // item's vertex id is resolved and its CSR row offsets prefetched
    // while the current row is being relaxed, hiding the offsets-array
    // miss behind the current row's edge work.
    VertexId u = VertexId(cache.read(bucket, assignment->start));
    prefetch_row_offsets(g, u);
    for (uint32_t i = 0; i < assignment->count; ++i) {
      VertexId next = 0;
      if (i + 1 < assignment->count) {
        next = VertexId(cache.read(bucket, assignment->start + i + 1));
        prefetch_row_offsets(g, next);
      }
      relax_row(u);
      u = next;
    }
    // Publication order matters: all pushes above — including every item
    // still staged in the combiner — must be published before the
    // release-increment of the source bucket's CWC, so when the manager
    // observes CWC == resv_ptr it also observes every spawned item.
    if (combiner) combiner->flush_all();
    bucket.complete(assignment->count);
    ctx.flag->done();
  }
  // A worker only exits between assignments, so its lanes are empty; the
  // defensive flush keeps the no-staged-items-while-idle invariant even if
  // termination raced an abort (push_batch no-ops on an aborted queue).
  if (combiner) {
    combiner->flush_all();
    ctx.stats.queue_reserve_ops += combiner->stats().reserve_ops;
    ctx.stats.queue_publish_ops += combiner->stats().publish_ops;
    ctx.stats.batch_flushes += combiner->stats().flushes;
    ctx.stats.combined_items += combiner->stats().flushed_items;
  }
}

}  // namespace

template <WeightType W>
SsspResult<W> adds_host(const CsrGraph<W>& g, VertexId source,
                        const AddsHostOptions& opts) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = "adds-host";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");
  ADDS_REQUIRE(opts.num_workers >= 1, "need at least one worker");

  // --- Construct the queue ----------------------------------------------
  uint32_t pool_blocks = opts.pool_blocks;
  if (pool_blocks == 0)
    pool_blocks =
        auto_pool_blocks(g.num_edges(), opts.block_words, opts.num_buckets);
  BlockPool pool(pool_blocks, opts.block_words);
  WorkQueue::Config qcfg;
  qcfg.num_buckets = opts.num_buckets;
  qcfg.bucket.segment_words = opts.segment_words;
  qcfg.bucket.table_size = 64;
  WorkQueue queue(pool, qcfg);

  const double initial_delta =
      opts.delta > 0.0 ? opts.delta : static_delta(g, opts.heuristic_c);
  queue.set_delta(initial_delta);

  DeltaControllerOptions copts = opts.controller;
  copts.enabled = opts.dynamic_delta;
  copts.max_active_buckets = std::min<uint32_t>(copts.max_active_buckets,
                                                opts.num_buckets - 1);
  // Host-scale saturation: all workers busy with a chunk each.
  DeltaController controller(
      copts, double(opts.num_workers) * double(opts.chunk_items),
      initial_delta);

  AtomicDistArray<Dist> dist(g.num_vertices(), DistTraits<W>::infinity());
  dist.store(source, Dist{0});

  // --- Launch workers ------------------------------------------------------
  // The manager's wakeup event: workers notify it on completion, and a
  // canceller that provides AddsHostOptions::cancel_event shares it so a
  // cancel reaches a parked manager immediately. (An external event must
  // outlive the run; workers are joined before return either way.)
  Event local_wake;
  Event& wake = opts.cancel_event != nullptr ? *opts.cancel_event : local_wake;
  std::vector<AssignmentFlag> flags(opts.num_workers);
  std::vector<WorkerContext<W>> contexts(opts.num_workers);
  std::vector<std::thread> workers;
  workers.reserve(opts.num_workers);
  for (uint32_t i = 0; i < opts.num_workers; ++i) {
    contexts[i].graph = &g;
    contexts[i].queue = &queue;
    contexts[i].dist = &dist;
    contexts[i].flag = &flags[i];
    flags[i].set_done_event(&wake);
    contexts[i].combine_capacity =
        opts.write_combining ? opts.combine_capacity : 0;
    workers.emplace_back(worker_main<W>, std::ref(contexts[i]));
  }
  // Single teardown path for both the normal and the error exit. If the
  // manager loop throws (e.g. BlockPool exhaustion on an undersized pool),
  // the destructor aborts the queue (unblocking writers stuck in
  // wait_allocated) before joining — destroying a joinable std::thread
  // calls std::terminate. The normal exit calls join_workers(false)
  // explicitly; the destructor is then a no-op.
  struct WorkerShutdown {
    WorkQueue* queue;
    std::vector<AssignmentFlag>* flags;
    std::vector<std::thread>* workers;
    bool joined = false;
    void join_workers(bool abort) {
      if (joined) return;
      if (abort) queue->request_abort();
      for (auto& f : *flags) f.terminate();
      for (auto& w : *workers)
        if (w.joinable()) w.join();
      joined = true;
    }
    ~WorkerShutdown() { join_workers(true); }
  } shutdown{&queue, &flags, &workers};

  // Seed the source. Governed mode maps capacity best-effort (a pool
  // smaller than the demand is a survivable state) but the head bucket
  // must be writable for the seed itself.
  if (opts.pool_governor) {
    // Head first — on a pool smaller than one-block-per-bucket the head
    // must win — and with retries, so a transient allocator fault
    // (pool.exhausted injection) cannot kill the run at the doorstep.
    Bucket& head = queue.logical_bucket(0);
    for (uint32_t tries = 0; head.writable_slack() == 0 && tries < 64;
         ++tries)
      head.ensure_capacity(opts.chunk_items * 2, /*best_effort=*/true);
    ADDS_REQUIRE(head.writable_slack() > 0,
                 "adds-host: pool too small to map the head bucket "
                 "(pool_blocks=" +
                     std::to_string(pool_blocks) + ")");
    for (uint32_t l = 1; l < opts.num_buckets; ++l)
      queue.logical_bucket(l).ensure_capacity(opts.chunk_items * 2,
                                              /*best_effort=*/true);
  } else {
    queue.ensure_capacity_all(opts.chunk_items * 2);
  }
  queue.push(source, 0.0);
  ++r.work.pushes;
  ++r.work.queue_reserve_ops;
  ++r.work.queue_publish_ops;

  // --- Manager-side completion-frontier tracking ---------------------------
  //
  // Blocks can only be recycled below an index every worker is finished
  // *reading*. The manager knows exactly which range each worker holds (it
  // assigned it), so it records the range per flag and, when the flag goes
  // idle, feeds it into a per-bucket frontier: blocks wholly below the
  // frontier are recyclable mid-stream. Without this, a bucket whose
  // translation window wraps while reservations are open can wedge its
  // writers (completed blocks would only be freed at full drain).
  struct FlagTrack {
    bool active = false;
    Assignment a;
  };
  std::vector<FlagTrack> tracks(opts.num_workers);
  struct BucketFrontier {
    uint32_t frontier = 0;  // all items below are completed
    std::vector<Assignment> out_of_order;
    void complete(const Assignment& a) {
      out_of_order.push_back(a);
      // Ranges are issued in increasing index order; advance the frontier
      // over every contiguous completed prefix.
      bool advanced = true;
      while (advanced) {
        advanced = false;
        for (size_t i = 0; i < out_of_order.size(); ++i) {
          if (out_of_order[i].start == frontier) {
            frontier += out_of_order[i].count;
            out_of_order[i] = out_of_order.back();
            out_of_order.pop_back();
            advanced = true;
            break;
          }
        }
      }
    }
  };
  std::vector<BucketFrontier> frontiers(opts.num_buckets);

  // --- Pool-pressure governor state ----------------------------------------
  //
  // Free-block watermarks partition pool state into pressure levels:
  // elevated (<= ~1/4 free) rations cold-tail capacity; critical (<= ~1/8
  // free) additionally spills published-but-unassigned tail ranges into a
  // heap-backed store and recycles their blocks, replaying them once the
  // window reaches their priority band. An undersized pool thus degrades
  // to bounded slowdown instead of throwing; the resilient runtime's
  // restart-with-a-bigger-pool remains only as the last resort behind the
  // wedge timeout below.
  const uint32_t full_slack = opts.chunk_items * opts.num_workers + 64;
  const uint32_t elevated_floor = std::max(4u, pool.num_blocks() / 4);
  const uint32_t critical_floor = std::max(2u, pool.num_blocks() / 8);
  SpillStore spill;
  r.health.pool_blocks = pool_blocks;
  r.health.min_free_blocks = pool.free_blocks();
  std::vector<uint32_t> replay_buf;

  const auto classify = [&](uint32_t free) noexcept {
    return free <= critical_floor    ? PoolPressure::kCritical
           : free <= elevated_floor  ? PoolPressure::kElevated
                                     : PoolPressure::kNone;
  };

  // Drains published-but-unassigned ranges from the coldest buckets
  // (highest logical first, never below `floor_logical`, never the head)
  // until the pool recovers to `target_free`. The spilled range is
  // CWC-completed and fed to the completion frontier exactly like an
  // assigned-and-finished range — retirement accounting cannot tell the
  // difference — and its blocks recycle immediately.
  const auto spill_pass = [&](uint32_t target_free, uint32_t floor_logical) {
    uint64_t spilled = 0;
    const uint32_t floor = std::max(floor_logical, 1u);
    for (uint32_t l = opts.num_buckets; l-- > floor;) {
      if (pool.free_blocks() >= target_free) break;
      Bucket& b = queue.logical_bucket(l);
      const uint32_t start = b.read_ptr();
      const uint32_t bound = b.scan_written_bound();
      const uint32_t avail = bound - start;
      if (avail == 0) continue;
      const uint64_t band = queue.window_position() + l;
      for (uint32_t i = 0; i < avail; ++i)
        spill.add(band, b.read_item(start + i));
      b.advance_read(bound);
      b.complete(avail);
      const uint32_t phys = queue.logical_to_physical(l);
      frontiers[phys].complete({phys, start, avail});
      r.health.spilled_blocks_freed +=
          b.recycle_below(frontiers[phys].frontier);
      spilled += avail;
    }
    if (spilled > 0) {
      ++r.health.spill_events;
      r.health.spilled_items += spilled;
    }
    return spilled;
  };

  // Replays spilled items whose band the window has reached (or, when
  // `force`, any items — the endgame where only spilled work remains)
  // into the head bucket. Uses the manager-only non-blocking push: the
  // manager must never wait on capacity that it alone can map. Items a
  // dry pool cannot take back stay spilled for a later sweep.
  const auto replay_pass = [&](bool force) {
    if (spill.empty() || queue.aborted()) return uint64_t{0};
    Bucket& head = queue.logical_bucket(0);
    const uint64_t head_band = queue.window_position();
    uint64_t replayed = 0;
    for (;;) {
      if (!(force ? !spill.empty() : spill.ready(head_band))) break;
      replay_buf.clear();
      const auto take = [&](uint32_t v) { replay_buf.push_back(v); };
      if (force)
        spill.drain_any(opts.chunk_items, take);
      else
        spill.drain_ready(head_band, opts.chunk_items, take);
      if (replay_buf.empty()) break;
      const uint32_t n = uint32_t(replay_buf.size());
      if (head.writable_slack() < n)
        head.ensure_capacity(2 * n, /*best_effort=*/true);
      uint32_t ops = head.try_push_batch(replay_buf.data(), n);
      if (ops == 0) {
        // Racing workers consumed the slack between the check and the
        // reservation CAS; map once more and retry.
        head.ensure_capacity(2 * n, /*best_effort=*/true);
        ops = head.try_push_batch(replay_buf.data(), n);
      }
      if (ops == 0) {
        // The pool cannot back the batch right now: keep the items
        // spilled (parked at the head band so they stay ready).
        for (uint32_t v : replay_buf) spill.add(head_band, v);
        break;
      }
      replayed += n;
      ++r.work.queue_reserve_ops;
      r.work.queue_publish_ops += ops;
    }
    r.health.replayed_items += replayed;
    return replayed;
  };

  // --- Manager loop ---------------------------------------------------------
  uint64_t clean_sweeps = 0;
  double last_progress_ms = timer.elapsed_ms();
  constexpr double kWedgeMs = 250.0;  // overload wedge -> fail-fast bound
  while (true) {
    // External cancellation (watchdog) or a prior abort: tear down. The
    // throw unwinds through WorkerShutdown, which aborts the queue (again,
    // idempotent), terminates the flags and joins the workers.
    if ((opts.cancel != nullptr &&
         opts.cancel->load(std::memory_order_acquire)) ||
        queue.aborted()) {
      queue.request_abort();
      throw Error("adds-host: run aborted (watchdog or external cancel)");
    }
    // Injected manager stall: one sweep goes missing, as if the MTB were
    // preempted. Observes both cancel and queue abort so a multi-second
    // stall cannot out-wait the watchdog's recovery.
    fault::delay(fault::Site::kManagerScanStall, opts.cancel,
                 &queue.abort_flag());

    // Harvest completions: a flag that returned to idle finished its range.
    uint32_t harvested = 0;
    for (uint32_t i = 0; i < opts.num_workers; ++i) {
      if (tracks[i].active && flags[i].is_idle()) {
        frontiers[tracks[i].a.phys_bucket].complete(tracks[i].a);
        tracks[i].active = false;
        ++harvested;
      }
    }
    uint32_t recycled = 0;
    for (uint32_t b = 0; b < opts.num_buckets; ++b)
      recycled += queue.physical_bucket(b).recycle_below(frontiers[b].frontier);

    // Provision write capacity. Ungoverned mode preserves the fail-fast
    // contract: a dry pool throws out of ensure_capacity_all.
    uint64_t spilled = 0;
    uint32_t mapped = 0;
    bool starved_now = false;
    const uint32_t active = std::max(1u, controller.active_buckets());
    if (!opts.pool_governor) {
      queue.ensure_capacity_all(full_slack);
    } else {
      const uint32_t free = pool.free_blocks();
      if (free < r.health.min_free_blocks) r.health.min_free_blocks = free;
      const PoolPressure lvl = classify(free);
      if (lvl > r.health.peak_pressure) r.health.peak_pressure = lvl;
      // Critical pressure: recover free blocks up front from cold tails.
      if (lvl == PoolPressure::kCritical)
        spilled += spill_pass(elevated_floor, active);
      // Under pressure, also reclaim capacity that was mapped ahead of
      // demand on buckets that have since gone cold — slack parked beyond
      // a cold tail's resv_ptr is pool memory nothing will touch until
      // the window gets there, and shrink hands it back safely even
      // against racing writers. A drained bucket additionally pins the
      // block containing its resv_ptr (recycling frees only blocks wholly
      // below the completed bound); realigning it to the block boundary
      // unpins that too, with the skipped pad run through the completion
      // frontier like any finished range.
      const auto reclaim_idle = [&](uint32_t l) -> uint32_t {
        Bucket& b = queue.logical_bucket(l);
        const uint32_t start = b.read_ptr();
        const uint32_t pad = b.realign_drained();
        if (pad == 0) return 0;
        const uint32_t phys = queue.logical_to_physical(l);
        frontiers[phys].complete({phys, start, pad});
        return b.recycle_below(frontiers[phys].frontier);
      };
      uint32_t shrunk = 0;
      if (lvl != PoolPressure::kNone) {
        for (uint32_t l = active + 1; l < opts.num_buckets; ++l) {
          shrunk +=
              queue.logical_bucket(l).shrink_capacity(opts.segment_words);
          shrunk += reclaim_idle(l);
        }
      }
      // Map best-effort: hot buckets (the assignable window) get full
      // slack; under pressure cold tails are rationed to one segment so
      // the head wins the remaining blocks.
      for (uint32_t l = 0; l < opts.num_buckets; ++l) {
        const bool hot = l <= active;
        const uint32_t slack = (hot || lvl == PoolPressure::kNone)
                                   ? full_slack
                                   : opts.segment_words;
        mapped += queue.logical_bucket(l).ensure_capacity(
            slack, /*best_effort=*/true);
      }
      const auto any_starved = [&]() {
        for (uint32_t l = 0; l < opts.num_buckets; ++l)
          if (queue.logical_bucket(l).writers_starved()) return true;
        return false;
      };
      if (any_starved()) {
        // Writers are parked on capacity the pool cannot back: spill
        // everything spillable and strip every non-starved bucket beyond
        // the head down to zero slack (parked writers trump prefetched
        // capacity and schedule quality), then aim the recovered blocks
        // at the starved buckets and the head.
        spilled += spill_pass(pool.num_blocks(), 1);
        for (uint32_t l = 1; l < opts.num_buckets; ++l) {
          Bucket& b = queue.logical_bucket(l);
          if (!b.writers_starved()) {
            shrunk += b.shrink_capacity(0);
            shrunk += reclaim_idle(l);
          }
        }
        for (uint32_t l = 0; l < opts.num_buckets; ++l) {
          Bucket& b = queue.logical_bucket(l);
          if (b.writers_starved())
            mapped += b.ensure_capacity(opts.segment_words,
                                        /*best_effort=*/true);
        }
        mapped += queue.logical_bucket(0).ensure_capacity(
            full_slack, /*best_effort=*/true);
        starved_now = any_starved();
      }
      recycled += shrunk;
    }

    // Retire drained head buckets while work remains elsewhere.
    const uint64_t pending = queue.total_pending();
    const uint64_t in_flight = queue.total_in_flight();
    uint32_t advances = 0;
    while (pending + in_flight > 0 && advances + 1 < opts.num_buckets &&
           queue.logical_bucket(0).pending_estimate() == 0 &&
           queue.head_drained()) {
      queue.advance_window();
      ++r.window_advances;
      ++advances;
    }

    // Replay spilled work whose priority band the window has reached.
    uint64_t replayed = 0;
    if (opts.pool_governor && !spill.empty()) replayed += replay_pass(false);

    // Assign published ranges from the active buckets to idle workers.
    bool assigned_any = false;
    for (uint32_t logical = 0; logical < active; ++logical) {
      Bucket& b = queue.logical_bucket(logical);
      uint32_t bound = b.scan_written_bound();
      uint32_t avail = bound - b.read_ptr();
      if (avail == 0) continue;
      for (uint32_t i = 0; i < opts.num_workers; ++i) {
        if (avail == 0) break;
        if (tracks[i].active || !flags[i].is_idle()) continue;
        const uint32_t k = std::min(avail, opts.chunk_items);
        Assignment a;
        a.phys_bucket = queue.logical_to_physical(logical);
        a.start = b.read_ptr();
        a.count = k;
        b.advance_read(b.read_ptr() + k);
        tracks[i] = {true, a};
        // Injected delivery delay: the range is accounted as handed out but
        // the worker has not seen its flag yet (a late AF write).
        fault::delay(fault::Site::kAfDeliveryDelay, opts.cancel,
                     &queue.abort_flag());
        flags[i].assign(a);
        avail -= k;
        r.work.assigned_items += k;
        assigned_any = true;
      }
    }

    // Dynamic Δ from run-time signals (off by default at host scale).
    DeltaController::Signals sig;
    sig.assigned_edges = double(queue.total_in_flight());
    sig.head_switches = r.window_advances;
    sig.work_pending = queue.total_pending() > 0;
    const uint64_t p2 = queue.total_pending();
    if (p2 > 0)
      sig.tail_share =
          double(queue.pending_of(opts.num_buckets - 1)) / double(p2);
    if (controller.update(sig)) queue.set_delta(controller.delta());

    // Termination: two consecutive clean sweeps (no pending work anywhere,
    // nothing in flight, every worker idle) — and, under governance, an
    // empty spill store: heap-resident items are still live work, so the
    // endgame force-replays them before the queue may be declared done.
    bool all_idle = true;
    for (auto& flag : flags) all_idle &= flag.is_idle();
    bool all_drained = true;
    for (uint32_t i = 0; i < opts.num_buckets; ++i)
      all_drained &= queue.physical_bucket(i).drained();
    if (!assigned_any && all_idle && all_drained) {
      if (opts.pool_governor && !spill.empty()) {
        replayed += replay_pass(true);
        clean_sweeps = 0;
      } else if (++clean_sweeps >= 2) {
        break;
      }
    } else {
      clean_sweeps = 0;
    }

    // Wedge fail-fast: governance is supposed to keep an overloaded run
    // moving. If writers stay starved (or spilled work cannot re-enter)
    // with zero progress of any kind for kWedgeMs, the pool is too small
    // even for spill mode — throw so the resilient runtime's
    // restart-with-resize (its last resort now) takes over. Never fires on
    // non-pool wedges (lost publications etc.); those belong to the
    // watchdog, as before.
    const bool progressed = assigned_any || harvested > 0 || recycled > 0 ||
                            mapped > 0 || spilled > 0 || replayed > 0 ||
                            advances > 0;
    if (progressed) {
      last_progress_ms = timer.elapsed_ms();
    } else if (opts.pool_governor && (starved_now || !spill.empty()) &&
               timer.elapsed_ms() - last_progress_ms > kWedgeMs &&
               !queue.aborted() &&
               (opts.cancel == nullptr ||
                !opts.cancel->load(std::memory_order_acquire))) {
      throw Error(
          "adds-host: pool exhausted beyond spill governance (pool_blocks=" +
          std::to_string(pool_blocks) +
          ", free=" + std::to_string(pool.free_blocks()) +
          ", spilled_items=" + std::to_string(r.health.spilled_items) +
          "): increase pool_blocks");
    }

    // Sweep pacing. While every worker is busy there is nothing to do
    // until a completion: park on the wake event (worker done() and
    // cancel_event notify it) instead of burning a core re-scanning; the
    // timeout keeps the park bounded. In every other state keep the full
    // tick rate — assignment and harvest latency are unaffected, and the
    // clean-sweep exit stays on the yield path.
    bool all_busy = true;
    for (uint32_t i = 0; i < opts.num_workers; ++i)
      all_busy &= tracks[i].active;
    if (!assigned_any && all_busy) {
      wake.await_for(
          [&]() noexcept {
            if ((opts.cancel != nullptr &&
                 opts.cancel->load(std::memory_order_acquire)) ||
                queue.aborted())
              return true;
            for (uint32_t i = 0; i < opts.num_workers; ++i)
              if (tracks[i].active && flags[i].is_idle()) return true;
            return false;
          },
          std::chrono::microseconds(250));
    } else if (!assigned_any) {
      std::this_thread::yield();
    }
  }

  shutdown.join_workers(false);  // clean exit: no abort, idempotent join

  r.health.peak_blocks_in_use = pool.peak_blocks_in_use();
  if (pool.free_blocks() < r.health.min_free_blocks)
    r.health.min_free_blocks = pool.free_blocks();
  r.health.spill_peak_items = spill.peak_size();

  for (const auto& ctx : contexts) r.work.merge(ctx.stats);
  for (VertexId v = 0; v < g.num_vertices(); ++v) r.dist[v] = dist.load(v);
  for (const auto& [sw, d] : controller.history())
    r.delta_history.emplace_back(double(sw), d);
  r.wall_ms = timer.elapsed_ms();
  r.time_us = r.wall_ms * 1e3;  // the host engine's time is real time
  return r;
}

template SsspResult<uint32_t> adds_host<uint32_t>(const CsrGraph<uint32_t>&,
                                                  VertexId,
                                                  const AddsHostOptions&);
template SsspResult<float> adds_host<float>(const CsrGraph<float>&, VertexId,
                                            const AddsHostOptions&);

}  // namespace adds
