// The host-threads ADDS engine: the full queue protocol under real
// concurrency.
//
// One manager thread (MTB) and `num_workers` worker threads (WTBs) execute
// the paper's runtime verbatim at host scale:
//
//   * workers push work items (vertex ids) straight into buckets via
//     atomic resv_ptr reservation and WCC publication;
//   * the manager alone scans segment metadata, computes safely-readable
//     ranges, hands them to idle workers through per-worker assignment
//     flags, performs all block allocation/recycling, rotates the bucket
//     window, and (optionally) adjusts Δ from run-time signals;
//   * termination requires two consecutive manager sweeps that find no
//     pending or in-flight work and all workers idle (paper §5.4).
//
// Distances live in a shared AtomicDistArray with CAS fetch-min. An item is
// just a vertex id (as in the paper); a popped vertex is relaxed against
// its *current* distance, so a stale pop costs redundant-but-correct work.
//
// The engine is packaged as a warm, reusable HostEngine (host_engine.hpp):
// worker threads and the pool/queue pair outlive a single query, and each
// solve() rewinds the queue with the quiesced-only reset() hooks. The
// classic one-shot adds_host() entry point is a thin wrapper that builds a
// throwaway engine.
#include "sssp/host_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "queue/assignment.hpp"
#include "queue/lane_codec.hpp"
#include "queue/push_combiner.hpp"
#include "queue/spill_store.hpp"
#include "queue/translation_cache.hpp"
#include "queue/work_queue.hpp"
#include "sssp/atomic_dist.hpp"
#include "sssp/delta_heuristic.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace adds {

namespace {

/// Everything one worker thread needs. The flag pointer is stable for the
/// worker's lifetime; every other field is per-query: the engine retargets
/// them between queries while the worker is idle-parked, and the
/// assignment flag's release/acquire handshake carries them across.
template <WeightType W>
struct WorkerContext {
  const CsrGraph<W>* graph = nullptr;
  WorkQueue* queue = nullptr;
  AtomicDistArray<DistT<W>>* dist = nullptr;
  AssignmentFlag* flag = nullptr;
  uint32_t combine_capacity = 0;  // 0: single-item pushes (combining off)
  uint64_t fault_domain = 0;      // query's fault domain (util/fault.hpp)
  // Batched multi-source state (null/1 for classic single-source solves).
  // Work items carry their lane in the top bits; dist/parent are lane-major
  // [lane * V + v] so one lane's relaxations walk one contiguous row.
  uint32_t num_lanes = 1;
  const std::atomic<bool>* lane_dead = nullptr;   // [num_lanes] detach flags
  std::atomic<uint64_t>* lane_pushed = nullptr;   // [num_lanes] this worker
  std::atomic<uint64_t>* lane_popped = nullptr;   // [num_lanes] this worker
  std::atomic<VertexId>* parent = nullptr;        // [num_lanes * V] or null
  WorkStats stats;  // per-query; manager zeroes before, reads after
};

/// Pulls the CSR row bounds of `u` toward the cache ahead of use.
template <WeightType W>
inline void prefetch_row_offsets(const CsrGraph<W>& g, VertexId u) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(g.offsets().data() + u, 0 /*read*/, 3 /*high locality*/);
#else
  (void)g;
  (void)u;
#endif
}

/// Persistent worker loop: parks on the assignment flag between ranges —
/// and between whole queries — until the engine terminates the flag at
/// destruction. Per-query pointers are re-read on every assignment.
template <WeightType W>
void worker_main(WorkerContext<W>& ctx) {
  using Dist = DistT<W>;
  TranslationCache<8> cache;
  // The combiner references one WorkQueue; it is rebuilt lazily when the
  // engine swaps queues (pool regrowth for a larger graph). Lanes are
  // always empty while parked, so a stale combiner never holds items.
  std::optional<PushCombiner> combiner;

  while (true) {
    // Event-driven idle wait: the worker parks on its flag and the
    // manager's assign()/terminate() wakes it directly.
    bool should_exit = false;
    const auto assignment = ctx.flag->wait(should_exit);
    if (should_exit) break;
    if (!assignment) continue;

    const CsrGraph<W>& g = *ctx.graph;
    WorkQueue& queue = *ctx.queue;
    AtomicDistArray<Dist>& dist = *ctx.dist;
    // Adopt the query's fault domain for this assignment: domain-restricted
    // fault plans only hit workers executing the tagged query.
    fault::set_thread_domain(ctx.fault_domain);
    const VertexId* const targets = g.targets().data();
    const W* const weights = g.weights().data();
    if (ctx.combine_capacity == 0) {
      combiner.reset();
    } else if (!combiner || combiner->queue() != &queue ||
               combiner->lane_capacity() != ctx.combine_capacity ||
               combiner->query_lanes() != ctx.num_lanes) {
      combiner.emplace(queue, ctx.combine_capacity, ctx.num_lanes);
    }

    // Injected worker stall: the assignment sits un-processed (in-flight),
    // exactly like a preempted/wedged WTB. Bounded and abort-observing.
    fault::delay(fault::Site::kWorkerStall, &queue.abort_flag());

    Bucket& bucket = queue.physical_bucket(assignment->phys_bucket);
    cache.reset();

    // Relaxes one row; pushes go through the combiner when enabled.
    // Batched solves decode (lane, node) from the item and relax against
    // the lane's contiguous dist row; the lane-counter discipline
    // (docs/QUEUE_PROTOCOL.md §"Per-lane termination") is: count a spawned
    // push BEFORE it becomes poppable, count the pop only AFTER the row is
    // fully relaxed — so a lane whose pushed == popped has truly drained.
    const uint32_t num_lanes = ctx.num_lanes;
    const size_t V = g.num_vertices();
    const auto relax_row = [&](uint32_t item) {
      uint32_t lane = 0;
      VertexId u = VertexId(item);
      if (num_lanes > 1) {
        lane = lane_of(item);
        u = VertexId(node_of(item));
      }
      if (ctx.lane_dead != nullptr &&
          ctx.lane_dead[lane].load(std::memory_order_relaxed)) {
        // Detached lane: consume the item without edge work so the lane
        // drains out of the shared queue at pop speed.
        ++ctx.stats.lane_dropped;
        if (ctx.lane_popped != nullptr)
          ctx.lane_popped[lane].fetch_add(1, std::memory_order_release);
        return;
      }
      const size_t base = size_t(lane) * V;
      const Dist du = dist.load(base + u);
      if (du == DistTraits<W>::infinity()) {
        // Only possible for a corrupt queue; the push that enqueued u set a
        // finite distance first.
        ++ctx.stats.stale_skipped;
        if (ctx.lane_popped != nullptr)
          ctx.lane_popped[lane].fetch_add(1, std::memory_order_release);
        return;
      }
      ++ctx.stats.items_processed;
      const EdgeIndex begin = g.edge_begin(u);
      const EdgeIndex end = g.edge_end(u);
      ctx.stats.relaxations += end - begin;
      for (EdgeIndex e = begin; e < end; ++e) {
        const VertexId v = targets[e];
        const Dist nd = du + Dist(weights[e]);
        if (dist.fetch_min(base + v, nd)) {
          if (ctx.parent != nullptr)
            ctx.parent[base + v].store(u, std::memory_order_relaxed);
          ++ctx.stats.improvements;
          ++ctx.stats.pushes;
          const uint32_t out =
              num_lanes > 1 ? lane_encode(lane, uint32_t(v)) : uint32_t(v);
          if (ctx.lane_pushed != nullptr)
            ctx.lane_pushed[lane].fetch_add(1, std::memory_order_relaxed);
          if (combiner) {
            combiner->push(out, double(nd));
          } else if (queue.push(out, double(nd)) != WorkQueue::kPushAborted) {
            ++ctx.stats.queue_reserve_ops;
            ++ctx.stats.queue_publish_ops;
          }
        }
      }
      if (ctx.lane_popped != nullptr)
        ctx.lane_popped[lane].fetch_add(1, std::memory_order_release);
    };

    // Row-batched relaxation with one-ahead software prefetch: the next
    // item's vertex id is resolved and its CSR row offsets prefetched
    // while the current row is being relaxed, hiding the offsets-array
    // miss behind the current row's edge work.
    const auto node_for_prefetch = [num_lanes](uint32_t item) noexcept {
      return VertexId(num_lanes > 1 ? node_of(item) : item);
    };
    uint32_t item = cache.read(bucket, assignment->start);
    prefetch_row_offsets(g, node_for_prefetch(item));
    for (uint32_t i = 0; i < assignment->count; ++i) {
      uint32_t next = 0;
      if (i + 1 < assignment->count) {
        next = cache.read(bucket, assignment->start + i + 1);
        prefetch_row_offsets(g, node_for_prefetch(next));
      }
      relax_row(item);
      item = next;
    }
    // Publication order matters: all pushes above — including every item
    // still staged in the combiner — must be published before the
    // release-increment of the source bucket's CWC, so when the manager
    // observes CWC == resv_ptr it also observes every spawned item.
    if (combiner) {
      combiner->flush_all();
      // Harvest the combiner's atomic-op accounting into this query's
      // stats now: the combiner outlives the query, and counters left in
      // it would leak into the next query's WorkStats.
      const CombinerStats cs = combiner->take_stats();
      ctx.stats.queue_reserve_ops += cs.reserve_ops;
      ctx.stats.queue_publish_ops += cs.publish_ops;
      ctx.stats.batch_flushes += cs.flushes;
      ctx.stats.combined_items += cs.flushed_items;
      ctx.stats.lane_splits += cs.lane_splits;
    }
    bucket.complete(assignment->count);
    ctx.flag->done();
  }
  // A worker only exits between assignments (terminate() is only sent with
  // the engine quiescent), so its lanes are empty and there is nothing to
  // flush or account.
}

}  // namespace

// ---------------------------------------------------------------------------
// HostEngine
// ---------------------------------------------------------------------------

template <WeightType W>
struct HostEngine<W>::Impl {
  using Dist = DistT<W>;

  AddsHostOptions opts_;
  DeltaControllerOptions copts_;  // resolved controller options
  std::unique_ptr<BlockPool> pool_;
  std::unique_ptr<WorkQueue> queue_;
  std::optional<DeltaController> controller_;
  Event engine_wake_;  // completion wake when the query brings no event
  std::vector<AssignmentFlag> flags_;
  std::vector<WorkerContext<W>> contexts_;
  std::vector<std::thread> workers_;
  uint64_t queries_ = 0;
  bool dirty_ = false;  // queue carries a previous query's state
  /// Serializes interrupt() (any thread) against provision()'s queue/pool
  /// swap (the solving thread). Never held across a wait — both critical
  /// sections are a handful of stores.
  std::mutex interrupt_m_;

  explicit Impl(const AddsHostOptions& o)
      : opts_(o), flags_(o.num_workers), contexts_(o.num_workers) {
    copts_ = opts_.controller;
    copts_.enabled = opts_.dynamic_delta;
    copts_.max_active_buckets = std::min<uint32_t>(
        copts_.max_active_buckets, opts_.num_buckets - 1);
    // flags_/contexts_ are never resized after this point: the worker
    // threads hold references into them for the engine's lifetime.
    workers_.reserve(opts_.num_workers);
    for (uint32_t i = 0; i < opts_.num_workers; ++i) {
      contexts_[i].flag = &flags_[i];
      workers_.emplace_back(worker_main<W>, std::ref(contexts_[i]));
    }
  }

  ~Impl() {
    // The engine is quiescent between solves (solve() returns or throws
    // only with every worker idle-parked), so terminate lands on parked
    // workers and the join is immediate.
    for (auto& f : flags_) f.terminate();
    for (auto& w : workers_)
      if (w.joinable()) w.join();
  }

  /// Sizes (or re-sizes) the pool/queue pair for `g` carrying `num_lanes`
  /// concurrent query lanes (a K-lane batch holds up to K times the live
  /// items of one query). Kept across queries; rebuilt only when a larger
  /// graph needs a bigger slab than the current one. Buckets hold a
  /// reference into the pool, so the queue is destroyed first on rebuild.
  void provision(const CsrGraph<W>& g, uint32_t num_lanes) {
    const uint32_t want =
        opts_.pool_blocks != 0
            ? opts_.pool_blocks
            : auto_pool_blocks(g.num_edges() * uint64_t(num_lanes),
                               opts_.block_words, opts_.num_buckets);
    if (pool_ && want <= pool_->num_blocks()) return;
    // The swap is guarded so a concurrent interrupt() never dereferences a
    // queue mid-destruction. interrupt() on the new queue before this solve
    // arms is absorbed by the fresh (un-aborted) state being dirty-reset.
    std::lock_guard<std::mutex> lk(interrupt_m_);
    queue_.reset();
    pool_.reset();
    pool_ = std::make_unique<BlockPool>(want, opts_.block_words);
    WorkQueue::Config qcfg;
    qcfg.num_buckets = opts_.num_buckets;
    qcfg.bucket.segment_words = opts_.segment_words;
    qcfg.bucket.table_size = 64;
    queue_ = std::make_unique<WorkQueue>(*pool_, qcfg);
    dirty_ = false;
  }

  /// Supervisor kill switch: sets the queue's sticky abort from any thread
  /// and wakes a parked manager. The running solve observes the abort on
  /// its next sweep and throws; between queries the next solve's reset()
  /// clears the flag, so a late interrupt can cost at most one spurious
  /// abort of the query it raced with.
  void interrupt() noexcept {
    std::lock_guard<std::mutex> lk(interrupt_m_);
    if (queue_) queue_->request_abort();
    engine_wake_.notify_all();
  }

  /// Error-path quiesce: aborts the queue (parked writers drop out, fault
  /// delays cut short) and waits until every worker is idle-parked, so the
  /// exception leaves solve() with the engine reusable. The threads are
  /// NOT joined — the next solve() resets the queue (clearing the abort
  /// flag) and runs on the same warm pool.
  void quiesce(Event& wake) noexcept {
    queue_->request_abort();
    const auto all_idle = [this]() noexcept {
      for (auto& f : flags_)
        if (!f.is_idle()) return false;
      return true;
    };
    while (!all_idle())
      wake.await_for(all_idle, std::chrono::microseconds(500));
    dirty_ = true;
  }

  /// The one traversal both entry points share. `lanes` carries one source
  /// per query lane; `batched` arms the per-lane machinery (lane counters,
  /// parent recording, settle observation) — solve() passes a single lane
  /// with batched=false, which keeps every lane pointer null and the item
  /// words un-encoded: bit-identical to the classic single-source path.
  /// `repair` (single-lane, non-batched only) switches the run to a
  /// warm-start delta repair: distances initialize from the plan's warm
  /// labels and the seed step pushes the plan's frontier instead of the
  /// source.
  BatchResult<W> run(const CsrGraph<W>& g, const std::vector<LaneQuery>& lanes,
                     const QueryControl& ctl, bool batched,
                     const RepairPlan<W>* repair = nullptr);
};

template <WeightType W>
BatchResult<W> HostEngine<W>::Impl::run(const CsrGraph<W>& g,
                                        const std::vector<LaneQuery>& lanes,
                                        const QueryControl& ctl, bool batched,
                                        const RepairPlan<W>* repair) {
  const AddsHostOptions& opts = opts_;
  WallTimer timer;

  const uint32_t num_lanes = uint32_t(lanes.size());
  const size_t V = g.num_vertices();
  ADDS_REQUIRE(num_lanes >= 1, "solve_batch: need at least one lane");
  ADDS_REQUIRE(num_lanes <= kMaxLanes,
               "solve_batch: at most " + std::to_string(kMaxLanes) +
                   " lanes per batch");
  if (num_lanes > 1)
    ADDS_REQUIRE(uint64_t(V) <= kMaxLaneVertices,
                 "solve_batch: multi-lane batches address at most 2^28 "
                 "vertices (lane bits live in the item's top bits)");

  // `r` is the run's aggregate ledger: the manager loop below accounts all
  // shared-traversal costs into r.work / r.health exactly as the classic
  // single-source solve did. Batched extraction fans it out into
  // BatchResult at the end; the single-source path moves it into lane 0.
  BatchResult<W> br;
  br.lanes.resize(num_lanes);
  SsspResult<W> r;
  r.solver = batched ? "adds-host-batch"
                     : (repair != nullptr ? "adds-host-repair" : "adds-host");
  if (!batched) r.dist.assign(V, DistTraits<W>::infinity());
  if (g.empty()) {
    ++queries_;
    for (auto& o : br.lanes) o.result.solver = r.solver;
    if (!batched) br.lanes[0].result = std::move(r);
    return br;
  }
  for (const LaneQuery& lq : lanes)
    ADDS_REQUIRE(lq.source < g.num_vertices(), "source vertex out of range");

  if (repair != nullptr) {
    ADDS_REQUIRE(!batched && num_lanes == 1,
                 "solve_repair: repair runs are single-lane");
    ADDS_REQUIRE(repair->warm.size() == V,
                 "solve_repair: warm label array does not match the graph");
    ADDS_REQUIRE(repair->warm[lanes[0].source] == Dist{0},
                 "solve_repair: warm labels are not anchored at the source");
    if (repair->frontier.empty()) {
      // Nothing to relax: the warm labels are already exact (plan_repair
      // found no classified change reaching this source's tree). Still an
      // injectable repair — the fault site guards the fast path too.
      fault::ThreadDomainScope fault_domain_scope(ctl.fault_domain);
      if (fault::fire(fault::Site::kDeltaRepair))
        throw Error("adds-host: injected delta-repair fault");
      std::copy(repair->warm.begin(), repair->warm.end(), r.dist.begin());
      r.wall_ms = timer.elapsed_ms();
      r.time_us = r.wall_ms * 1e3;
      br.wall_ms = r.wall_ms;
      br.lanes[0].result = std::move(r);
      ++queries_;
      return br;
    }
  }

  // --- Rewind (or build) the warm queue -----------------------------------
  provision(g, num_lanes);
  WorkQueue& queue = *queue_;
  BlockPool& pool = *pool_;
  if (dirty_) {
    // Reset-safety invariant (docs/QUEUE_PROTOCOL.md §"Reset and reuse"):
    // a quiesced reset returns every mapped block, so each query starts
    // from the freshly-constructed state with a full pool.
    queue.reset();
    ADDS_ASSERT_MSG(pool.blocks_in_use() == 0,
                    "queue reset left blocks mapped");
    dirty_ = false;
  }
  pool.reset_stats();
  dirty_ = true;  // from here on the queue carries this query's state

  const double initial_delta =
      opts.delta > 0.0 ? opts.delta : static_delta(g, opts.heuristic_c);
  queue.set_delta(initial_delta);
  const double saturation =
      double(opts.num_workers) * double(opts.chunk_items);
  if (!controller_)
    controller_.emplace(copts_, saturation, initial_delta);
  else
    controller_->reset(saturation, initial_delta);
  DeltaController& controller = *controller_;

  // Lane-major distances: lane l's row is dist[l*V .. l*V+V). A relaxation
  // only ever touches its own row, so lanes share the traversal but never
  // an address. Parent recording and the per-lane drain counters exist
  // only for batched runs — single-source solves keep every pointer null
  // and pay nothing.
  AtomicDistArray<Dist> dist(size_t(num_lanes) * V, DistTraits<W>::infinity());
  if (repair != nullptr) {
    // Warm start: the plan's labels are over-approximate for the child
    // graph (parent solve with the increase-affected region reset to inf),
    // which is exactly the precondition monotone relaxation needs.
    for (size_t v = 0; v < V; ++v) dist.store(v, repair->warm[v]);
  } else {
    for (uint32_t l = 0; l < num_lanes; ++l)
      dist.store(size_t(l) * V + lanes[l].source, Dist{0});
  }

  std::unique_ptr<std::atomic<VertexId>[]> parent;
  std::unique_ptr<std::atomic<bool>[]> lane_dead;
  // Counter layout: one row of num_lanes per worker plus one manager row
  // (seeds and inline execution), so every writer owns its cells and the
  // manager sums rows without contention.
  std::unique_ptr<std::atomic<uint64_t>[]> lane_pushed;
  std::unique_ptr<std::atomic<uint64_t>[]> lane_popped;
  std::vector<LaneStatus> lane_status(num_lanes, LaneStatus::kOk);
  std::vector<double> lane_settle_ms(num_lanes, 0.0);
  std::vector<bool> lane_settled(num_lanes, false);
  const uint32_t counter_rows = opts.num_workers + 1;
  if (batched) {
    parent = std::make_unique<std::atomic<VertexId>[]>(size_t(num_lanes) * V);
    for (size_t i = 0; i < size_t(num_lanes) * V; ++i)
      parent[i].store(kInvalidVertex, std::memory_order_relaxed);
    lane_dead = std::make_unique<std::atomic<bool>[]>(num_lanes);
    for (uint32_t l = 0; l < num_lanes; ++l)
      lane_dead[l].store(false, std::memory_order_relaxed);
    lane_pushed = std::make_unique<std::atomic<uint64_t>[]>(
        size_t(counter_rows) * num_lanes);
    lane_popped = std::make_unique<std::atomic<uint64_t>[]>(
        size_t(counter_rows) * num_lanes);
    for (size_t i = 0; i < size_t(counter_rows) * num_lanes; ++i) {
      lane_pushed[i].store(0, std::memory_order_relaxed);
      lane_popped[i].store(0, std::memory_order_relaxed);
    }
  }
  // Manager-owned counter row (seeding and inline execution below).
  std::atomic<uint64_t>* const mgr_pushed =
      batched ? lane_pushed.get() + size_t(opts.num_workers) * num_lanes
              : nullptr;
  std::atomic<uint64_t>* const mgr_popped =
      batched ? lane_popped.get() + size_t(opts.num_workers) * num_lanes
              : nullptr;

  // --- Bind the warm workers to this query ---------------------------------
  // The manager's wakeup event: workers notify it on completion, and a
  // canceller that provides QueryControl::cancel_event shares it so a
  // cancel reaches a parked manager immediately. (An external event must
  // outlive the call; the engine quiesces before returning either way.)
  Event& wake = ctl.cancel_event != nullptr ? *ctl.cancel_event : engine_wake_;
  if (ctl.beacon != nullptr) ctl.beacon->begin_solve();
  // The manager loop below runs on this thread: adopt the query's fault
  // domain for its injection sites (scan stall, AF delivery delay).
  fault::ThreadDomainScope fault_domain_scope(ctl.fault_domain);
  for (uint32_t i = 0; i < opts.num_workers; ++i) {
    contexts_[i].graph = &g;
    contexts_[i].queue = &queue;
    contexts_[i].dist = &dist;
    contexts_[i].combine_capacity =
        opts.write_combining ? opts.combine_capacity : 0;
    contexts_[i].fault_domain = ctl.fault_domain;
    contexts_[i].num_lanes = num_lanes;
    contexts_[i].lane_dead = lane_dead.get();
    contexts_[i].lane_pushed =
        batched ? lane_pushed.get() + size_t(i) * num_lanes : nullptr;
    contexts_[i].lane_popped =
        batched ? lane_popped.get() + size_t(i) * num_lanes : nullptr;
    contexts_[i].parent = parent.get();
    contexts_[i].stats.reset();
    flags_[i].set_done_event(&wake);
  }
  // The context writes above happen-before each worker's first wait()
  // acquire via the assign() release store — workers are idle-parked and
  // cannot observe the fields until an assignment arrives.

  // Single teardown path for the error exit. If the manager loop throws
  // (pool wedge, cancel, deadline, injected fault), the guard aborts the
  // queue and waits for every worker to park idle before the exception
  // propagates — the engine stays quiescent and reusable. The clean exit
  // disarms it: termination already implies all-idle.
  struct QuiesceGuard {
    Impl* engine;
    Event* wake;
    bool armed = true;
    ~QuiesceGuard() {
      if (armed) engine->quiesce(*wake);
    }
  } guard{this, &wake};

  // Seed the source. Governed mode maps capacity best-effort (a pool
  // smaller than the demand is a survivable state) but the head bucket
  // must be writable for the seed itself.
  if (opts.pool_governor) {
    // Head first — on a pool smaller than one-block-per-bucket the head
    // must win — and with retries, so a transient allocator fault
    // (pool.exhausted injection) cannot kill the run at the doorstep.
    Bucket& head = queue.logical_bucket(0);
    for (uint32_t tries = 0; head.writable_slack() == 0 && tries < 64;
         ++tries)
      head.ensure_capacity(opts.chunk_items * 2, /*best_effort=*/true);
    ADDS_REQUIRE(head.writable_slack() > 0,
                 "adds-host: pool too small to map the head bucket "
                 "(pool_blocks=" +
                     std::to_string(pool.num_blocks()) + ")");
    for (uint32_t l = 1; l < opts.num_buckets; ++l)
      queue.logical_bucket(l).ensure_capacity(opts.chunk_items * 2,
                                              /*best_effort=*/true);
  } else {
    queue.ensure_capacity_all(opts.chunk_items * 2);
  }
  if (repair != nullptr) {
    // The injectable repair failure: fires between committing to the warm
    // start and publishing the frontier — the worst place to die. The
    // QuiesceGuard above turns the throw into a clean abort (engine
    // reusable); the caller must treat it as "repair failed, cold-solve".
    if (fault::fire(fault::Site::kDeltaRepair))
      throw Error("adds-host: injected delta-repair fault");
    // Rebase the window on the coolest frontier label: every distance a
    // repair can still improve is >= the minimum seed label (positive
    // weights), so starting the head there skips grinding empty windows up
    // from zero. Seeds then bin by their warm labels like any other push.
    double base = std::numeric_limits<double>::infinity();
    for (const RepairSeed<W>& s : repair->frontier)
      base = std::min(base, double(s.label));
    queue.set_base_dist(base);
    for (const RepairSeed<W>& s : repair->frontier) {
      // The manager is the only thread running until the loop below starts
      // assigning, so a full bucket cannot be refilled by anyone else —
      // map capacity on demand instead of blocking in push().
      const uint32_t logical = WorkQueue::logical_index(
          double(s.label), base, queue.delta(), opts.num_buckets);
      Bucket& b = queue.logical_bucket(logical);
      if (b.writable_slack() == 0) b.ensure_capacity(opts.chunk_items * 2);
      queue.push(uint32_t(s.vertex), double(s.label));
      ++r.work.pushes;
      ++r.work.queue_reserve_ops;
      ++r.work.queue_publish_ops;
    }
  } else {
    for (uint32_t l = 0; l < num_lanes; ++l) {
      const uint32_t seed = num_lanes > 1
                                ? lane_encode(l, uint32_t(lanes[l].source))
                                : uint32_t(lanes[l].source);
      if (mgr_pushed != nullptr)
        mgr_pushed[l].fetch_add(1, std::memory_order_relaxed);
      queue.push(seed, 0.0);
      ++r.work.pushes;
      ++r.work.queue_reserve_ops;
      ++r.work.queue_publish_ops;
    }
  }

  // --- Manager-side completion-frontier tracking ---------------------------
  //
  // Blocks can only be recycled below an index every worker is finished
  // *reading*. The manager knows exactly which range each worker holds (it
  // assigned it), so it records the range per flag and, when the flag goes
  // idle, feeds it into a per-bucket frontier: blocks wholly below the
  // frontier are recyclable mid-stream. Without this, a bucket whose
  // translation window wraps while reservations are open can wedge its
  // writers (completed blocks would only be freed at full drain).
  struct FlagTrack {
    bool active = false;
    Assignment a;
  };
  std::vector<FlagTrack> tracks(opts.num_workers);
  struct BucketFrontier {
    uint32_t frontier = 0;  // all items below are completed
    std::vector<Assignment> out_of_order;
    void complete(const Assignment& a) {
      out_of_order.push_back(a);
      // Ranges are issued in increasing index order; advance the frontier
      // over every contiguous completed prefix.
      bool advanced = true;
      while (advanced) {
        advanced = false;
        for (size_t i = 0; i < out_of_order.size(); ++i) {
          if (out_of_order[i].start == frontier) {
            frontier += out_of_order[i].count;
            out_of_order[i] = out_of_order.back();
            out_of_order.pop_back();
            advanced = true;
            break;
          }
        }
      }
    }
  };
  std::vector<BucketFrontier> frontiers(opts.num_buckets);

  // --- Pool-pressure governor state ----------------------------------------
  //
  // Free-block watermarks partition pool state into pressure levels:
  // elevated (<= ~1/4 free) rations cold-tail capacity; critical (<= ~1/8
  // free) additionally spills published-but-unassigned tail ranges into a
  // heap-backed store and recycles their blocks, replaying them once the
  // window reaches their priority band. An undersized pool thus degrades
  // to bounded slowdown instead of throwing; the resilient runtime's
  // restart-with-a-bigger-pool remains only as the last resort behind the
  // wedge timeout below.
  const uint32_t full_slack = opts.chunk_items * opts.num_workers + 64;
  const uint32_t elevated_floor = std::max(4u, pool.num_blocks() / 4);
  const uint32_t critical_floor = std::max(2u, pool.num_blocks() / 8);
  SpillStore spill;
  r.health.pool_blocks = pool.num_blocks();
  r.health.min_free_blocks = pool.free_blocks();
  std::vector<uint32_t> replay_buf;

  const auto classify = [&](uint32_t free) noexcept {
    return free <= critical_floor    ? PoolPressure::kCritical
           : free <= elevated_floor  ? PoolPressure::kElevated
                                     : PoolPressure::kNone;
  };

  // Drains published-but-unassigned ranges from the coldest buckets
  // (highest logical first, never below `floor_logical`, never the head)
  // until the pool recovers to `target_free`. The spilled range is
  // CWC-completed and fed to the completion frontier exactly like an
  // assigned-and-finished range — retirement accounting cannot tell the
  // difference — and its blocks recycle immediately.
  const auto spill_pass = [&](uint32_t target_free, uint32_t floor_logical) {
    uint64_t spilled = 0;
    const uint32_t floor = std::max(floor_logical, 1u);
    for (uint32_t l = opts.num_buckets; l-- > floor;) {
      if (pool.free_blocks() >= target_free) break;
      Bucket& b = queue.logical_bucket(l);
      const uint32_t start = b.read_ptr();
      const uint32_t bound = b.scan_written_bound();
      const uint32_t avail = bound - start;
      if (avail == 0) continue;
      const uint64_t band = queue.window_position() + l;
      for (uint32_t i = 0; i < avail; ++i)
        spill.add(band, b.read_item(start + i));
      b.advance_read(bound);
      b.complete(avail);
      const uint32_t phys = queue.logical_to_physical(l);
      frontiers[phys].complete({phys, start, avail});
      r.health.spilled_blocks_freed +=
          b.recycle_below(frontiers[phys].frontier);
      spilled += avail;
    }
    if (spilled > 0) {
      ++r.health.spill_events;
      r.health.spilled_items += spilled;
    }
    return spilled;
  };

  // Replays spilled items whose band the window has reached (or, when
  // `force`, any items — the endgame where only spilled work remains)
  // into the head bucket. Uses the manager-only non-blocking push: the
  // manager must never wait on capacity that it alone can map. Items a
  // dry pool cannot take back stay spilled for a later sweep.
  const auto replay_pass = [&](bool force) {
    if (spill.empty() || queue.aborted()) return uint64_t{0};
    Bucket& head = queue.logical_bucket(0);
    const uint64_t head_band = queue.window_position();
    uint64_t replayed = 0;
    for (;;) {
      if (!(force ? !spill.empty() : spill.ready(head_band))) break;
      replay_buf.clear();
      const auto take = [&](uint32_t v) { replay_buf.push_back(v); };
      if (force)
        spill.drain_any(opts.chunk_items, take);
      else
        spill.drain_ready(head_band, opts.chunk_items, take);
      if (replay_buf.empty()) break;
      const uint32_t n = uint32_t(replay_buf.size());
      if (head.writable_slack() < n)
        head.ensure_capacity(2 * n, /*best_effort=*/true);
      uint32_t ops = head.try_push_batch(replay_buf.data(), n);
      if (ops == 0) {
        // Racing workers consumed the slack between the check and the
        // reservation CAS; map once more and retry.
        head.ensure_capacity(2 * n, /*best_effort=*/true);
        ops = head.try_push_batch(replay_buf.data(), n);
      }
      if (ops == 0) {
        // The pool cannot back the batch right now: keep the items
        // spilled (parked at the head band so they stay ready).
        for (uint32_t v : replay_buf) spill.add(head_band, v);
        break;
      }
      replayed += n;
      ++r.work.queue_reserve_ops;
      r.work.queue_publish_ops += ops;
    }
    r.health.replayed_items += replayed;
    return replayed;
  };

  // --- Manager-side inline execution (tiny assignments) --------------------
  //
  // When a bucket's leftover safely-readable range is below the inline
  // threshold and every worker is busy, the manager relaxes it itself
  // instead of letting it wait a sweep for a worker to free up. Its pushes
  // are buffered here and published through the non-blocking batch path —
  // the manager must never park in wait_allocated on capacity that only it
  // can map — with leftovers spilled to the heap store (governed mode
  // only, which is why the feature is gated on the governor).
  std::vector<std::pair<uint32_t, double>> inline_out;
  std::vector<uint32_t> inline_batch;
  const auto inline_flush_pushes = [&]() {
    while (!inline_out.empty()) {
      const double base = queue.base_dist();
      const double delta = queue.delta();
      // Peel one logical bucket's worth per round; ranges are tiny.
      const uint32_t want = WorkQueue::logical_index(
          inline_out.front().second, base, delta, opts.num_buckets);
      inline_batch.clear();
      size_t kept = 0;
      for (const auto& [v, d] : inline_out) {
        if (WorkQueue::logical_index(d, base, delta, opts.num_buckets) ==
            want)
          inline_batch.push_back(v);
        else
          inline_out[kept++] = {v, d};
      }
      inline_out.resize(kept);
      Bucket& tb = queue.logical_bucket(want);
      const uint32_t n = uint32_t(inline_batch.size());
      if (tb.writable_slack() < n)
        tb.ensure_capacity(2 * n, /*best_effort=*/true);
      uint32_t ops = tb.try_push_batch(inline_batch.data(), n);
      if (ops == 0) {
        tb.ensure_capacity(2 * n, /*best_effort=*/true);
        ops = tb.try_push_batch(inline_batch.data(), n);
      }
      if (ops == 0) {
        // Dry pool: park the items in the heap store at their band; the
        // replay path feeds them back when blocks free up.
        const uint64_t band = queue.window_position() + want;
        for (uint32_t v : inline_batch) spill.add(band, v);
        r.health.spilled_items += n;
      } else {
        ++r.work.queue_reserve_ops;
        r.work.queue_publish_ops += ops;
      }
    }
  };
  const auto inline_execute = [&](Bucket& b, uint32_t logical,
                                  uint32_t count) {
    const uint32_t start = b.read_ptr();
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t item = b.read_item(start + i);
      const uint32_t lane = num_lanes > 1 ? lane_of(item) : 0;
      const VertexId u =
          num_lanes > 1 ? VertexId(node_of(item)) : VertexId(item);
      if (lane_dead != nullptr &&
          lane_dead[lane].load(std::memory_order_relaxed)) {
        ++r.work.lane_dropped;
        mgr_popped[lane].fetch_add(1, std::memory_order_release);
        continue;
      }
      const size_t base = size_t(lane) * V;
      const Dist du = dist.load(base + u);
      if (du == DistTraits<W>::infinity()) {
        ++r.work.stale_skipped;
        if (mgr_popped != nullptr)
          mgr_popped[lane].fetch_add(1, std::memory_order_release);
        continue;
      }
      ++r.work.items_processed;
      const EdgeIndex begin = g.edge_begin(u);
      const EdgeIndex end = g.edge_end(u);
      r.work.relaxations += end - begin;
      for (EdgeIndex e = begin; e < end; ++e) {
        const VertexId v = g.targets()[e];
        const Dist nd = du + Dist(g.weights()[e]);
        if (dist.fetch_min(base + v, nd)) {
          if (parent != nullptr)
            parent[base + v].store(u, std::memory_order_relaxed);
          ++r.work.improvements;
          ++r.work.pushes;
          if (mgr_pushed != nullptr)
            mgr_pushed[lane].fetch_add(1, std::memory_order_relaxed);
          inline_out.emplace_back(
              num_lanes > 1 ? lane_encode(lane, uint32_t(v)) : uint32_t(v),
              double(nd));
        }
      }
      if (mgr_popped != nullptr)
        mgr_popped[lane].fetch_add(1, std::memory_order_release);
    }
    // Same retirement sequence as a spilled range: read, advance,
    // CWC-complete, frontier — downstream accounting cannot tell an
    // inline-executed range from a worker-executed one.
    b.advance_read(start + count);
    b.complete(count);
    const uint32_t phys = queue.logical_to_physical(logical);
    frontiers[phys].complete({phys, start, count});
    inline_flush_pushes();
    ++r.work.inline_ranges;
    r.work.inline_items += count;
  };

  // --- Manager loop ---------------------------------------------------------
  uint64_t clean_sweeps = 0;
  double last_progress_ms = timer.elapsed_ms();
  constexpr double kWedgeMs = 250.0;  // overload wedge -> fail-fast bound
  while (true) {
    // External cancellation (watchdog) or a prior abort: tear down. The
    // throw unwinds through the quiesce guard, which aborts the queue
    // (again, idempotent) and waits for the workers to park.
    if ((ctl.cancel != nullptr &&
         ctl.cancel->load(std::memory_order_acquire)) ||
        queue.aborted()) {
      queue.request_abort();
      throw Error("adds-host: run aborted (watchdog or external cancel)");
    }
    // Per-query wall-clock budget, enforced on the manager's own sweep
    // cadence — deadline enforcement costs no extra thread.
    if (ctl.deadline_ms > 0.0 && timer.elapsed_ms() > ctl.deadline_ms) {
      queue.request_abort();
      throw DeadlineError("adds-host: query deadline exceeded (" +
                          std::to_string(ctl.deadline_ms) + " ms)");
    }
    // Injected manager stall: one sweep goes missing, as if the MTB were
    // preempted. Observes both cancel and queue abort so a multi-second
    // stall cannot out-wait the watchdog's recovery.
    fault::delay(fault::Site::kManagerScanStall, ctl.cancel,
                 &queue.abort_flag());

    // --- Per-lane control (batched runs only) ------------------------------
    if (batched) {
      // Lane cancellation DETACHES the lane instead of aborting the batch:
      // the dead flag makes every worker consume the lane's queued items
      // without edge work, so the lane drains at pop speed while the other
      // lanes keep solving.
      for (uint32_t l = 0; l < num_lanes; ++l) {
        if (lanes[l].cancel != nullptr &&
            lane_status[l] == LaneStatus::kOk &&
            lanes[l].cancel->load(std::memory_order_acquire)) {
          lane_dead[l].store(true, std::memory_order_release);
          lane_status[l] = LaneStatus::kCancelled;
        }
      }
      // Per-lane settle observation: a lane whose pushed == popped has no
      // item anywhere — staged, published, spilled or in flight (pushes are
      // counted before an item becomes visible, pops only after its row is
      // fully relaxed). Reading every popped cell BEFORE every pushed cell
      // makes the equality a sound snapshot: popped is monotone, pops
      // happen-after their push, and the popped increments are releases —
      // so popped(t1) == pushed(t2) with t1 < t2 pins both counters at t2.
      // This is observability (per-lane completion times); the global
      // two-clean-sweeps termination below stays authoritative.
      for (uint32_t l = 0; l < num_lanes; ++l) {
        if (lane_settled[l]) continue;
        uint64_t popped = 0;
        for (uint32_t w = 0; w < counter_rows; ++w)
          popped += lane_popped[size_t(w) * num_lanes + l].load(
              std::memory_order_acquire);
        uint64_t pushed = 0;
        for (uint32_t w = 0; w < counter_rows; ++w)
          pushed += lane_pushed[size_t(w) * num_lanes + l].load(
              std::memory_order_acquire);
        if (pushed > 0 && pushed == popped) {
          lane_settled[l] = true;
          lane_settle_ms[l] = timer.elapsed_ms();
        }
      }
    }

    // Harvest completions: a flag that returned to idle finished its range.
    uint32_t harvested = 0;
    for (uint32_t i = 0; i < opts.num_workers; ++i) {
      if (tracks[i].active && flags_[i].is_idle()) {
        frontiers[tracks[i].a.phys_bucket].complete(tracks[i].a);
        tracks[i].active = false;
        ++harvested;
      }
    }
    uint32_t recycled = 0;
    for (uint32_t b = 0; b < opts.num_buckets; ++b)
      recycled +=
          queue.physical_bucket(b).recycle_below(frontiers[b].frontier);

    // Provision write capacity. Ungoverned mode preserves the fail-fast
    // contract: a dry pool throws out of ensure_capacity_all.
    uint64_t spilled = 0;
    uint32_t mapped = 0;
    bool starved_now = false;
    const uint32_t active = std::max(1u, controller.active_buckets());
    if (!opts.pool_governor) {
      queue.ensure_capacity_all(full_slack);
    } else {
      const uint32_t free = pool.free_blocks();
      if (free < r.health.min_free_blocks) r.health.min_free_blocks = free;
      const PoolPressure lvl = classify(free);
      if (lvl > r.health.peak_pressure) r.health.peak_pressure = lvl;
      // Critical pressure: recover free blocks up front from cold tails.
      if (lvl == PoolPressure::kCritical)
        spilled += spill_pass(elevated_floor, active);
      // Under pressure, also reclaim capacity that was mapped ahead of
      // demand on buckets that have since gone cold — slack parked beyond
      // a cold tail's resv_ptr is pool memory nothing will touch until
      // the window gets there, and shrink hands it back safely even
      // against racing writers. A drained bucket additionally pins the
      // block containing its resv_ptr (recycling frees only blocks wholly
      // below the completed bound); realigning it to the block boundary
      // unpins that too, with the skipped pad run through the completion
      // frontier like any finished range.
      const auto reclaim_idle = [&](uint32_t l) -> uint32_t {
        Bucket& b = queue.logical_bucket(l);
        const uint32_t start = b.read_ptr();
        const uint32_t pad = b.realign_drained();
        if (pad == 0) return 0;
        const uint32_t phys = queue.logical_to_physical(l);
        frontiers[phys].complete({phys, start, pad});
        return b.recycle_below(frontiers[phys].frontier);
      };
      uint32_t shrunk = 0;
      if (lvl != PoolPressure::kNone) {
        for (uint32_t l = active + 1; l < opts.num_buckets; ++l) {
          shrunk +=
              queue.logical_bucket(l).shrink_capacity(opts.segment_words);
          shrunk += reclaim_idle(l);
        }
      }
      // Map best-effort: hot buckets (the assignable window) get full
      // slack; under pressure cold tails are rationed to one segment so
      // the head wins the remaining blocks.
      for (uint32_t l = 0; l < opts.num_buckets; ++l) {
        const bool hot = l <= active;
        const uint32_t slack = (hot || lvl == PoolPressure::kNone)
                                   ? full_slack
                                   : opts.segment_words;
        mapped += queue.logical_bucket(l).ensure_capacity(
            slack, /*best_effort=*/true);
      }
      const auto any_starved = [&]() {
        for (uint32_t l = 0; l < opts.num_buckets; ++l)
          if (queue.logical_bucket(l).writers_starved()) return true;
        return false;
      };
      if (any_starved()) {
        // Writers are parked on capacity the pool cannot back: spill
        // everything spillable and strip every non-starved bucket beyond
        // the head down to zero slack (parked writers trump prefetched
        // capacity and schedule quality), then aim the recovered blocks
        // at the starved buckets and the head.
        spilled += spill_pass(pool.num_blocks(), 1);
        for (uint32_t l = 1; l < opts.num_buckets; ++l) {
          Bucket& b = queue.logical_bucket(l);
          if (!b.writers_starved()) {
            shrunk += b.shrink_capacity(0);
            shrunk += reclaim_idle(l);
          }
        }
        for (uint32_t l = 0; l < opts.num_buckets; ++l) {
          Bucket& b = queue.logical_bucket(l);
          if (b.writers_starved())
            mapped += b.ensure_capacity(opts.segment_words,
                                        /*best_effort=*/true);
        }
        mapped += queue.logical_bucket(0).ensure_capacity(
            full_slack, /*best_effort=*/true);
        starved_now = any_starved();
      }
      recycled += shrunk;
    }

    // Retire drained head buckets while work remains elsewhere.
    const uint64_t pending = queue.total_pending();
    const uint64_t in_flight = queue.total_in_flight();
    uint32_t advances = 0;
    while (pending + in_flight > 0 && advances + 1 < opts.num_buckets &&
           queue.logical_bucket(0).pending_estimate() == 0 &&
           queue.head_drained()) {
      queue.advance_window();
      ++r.window_advances;
      ++advances;
    }

    // Replay spilled work whose priority band the window has reached.
    uint64_t replayed = 0;
    if (opts.pool_governor && !spill.empty()) replayed += replay_pass(false);

    // Assign published ranges from the active buckets to idle workers.
    bool assigned_any = false;
    for (uint32_t logical = 0; logical < active; ++logical) {
      Bucket& b = queue.logical_bucket(logical);
      uint32_t bound = b.scan_written_bound();
      uint32_t avail = bound - b.read_ptr();
      if (avail == 0) continue;
      for (uint32_t i = 0; i < opts.num_workers; ++i) {
        if (avail == 0) break;
        if (tracks[i].active || !flags_[i].is_idle()) continue;
        const uint32_t k = std::min(avail, opts.chunk_items);
        Assignment a;
        a.phys_bucket = queue.logical_to_physical(logical);
        a.start = b.read_ptr();
        a.count = k;
        b.advance_read(b.read_ptr() + k);
        tracks[i] = {true, a};
        // Injected delivery delay: the range is accounted as handed out but
        // the worker has not seen its flag yet (a late AF write).
        fault::delay(fault::Site::kAfDeliveryDelay, ctl.cancel,
                     &queue.abort_flag());
        flags_[i].assign(a);
        avail -= k;
        r.work.assigned_items += k;
        assigned_any = true;
      }
      // Tiny-assignment self-execution: a sub-threshold leftover with no
      // idle worker (the loop above exhausted them) would otherwise idle a
      // full sweep; the manager relaxes it inline instead.
      if (opts.pool_governor && opts.manager_inline_items > 0 &&
          avail > 0 && avail <= opts.manager_inline_items) {
        inline_execute(b, logical, avail);
        assigned_any = true;
      }
    }

    // Dynamic Δ from run-time signals (off by default at host scale).
    DeltaController::Signals sig;
    sig.assigned_edges = double(queue.total_in_flight());
    sig.head_switches = r.window_advances;
    sig.work_pending = queue.total_pending() > 0;
    const uint64_t p2 = queue.total_pending();
    if (p2 > 0)
      sig.tail_share =
          double(queue.pending_of(opts.num_buckets - 1)) / double(p2);
    if (controller.update(sig)) queue.set_delta(controller.delta());

    // Termination: two consecutive clean sweeps (no pending work anywhere,
    // nothing in flight, every worker idle) — and, under governance, an
    // empty spill store: heap-resident items are still live work, so the
    // endgame force-replays them before the queue may be declared done.
    bool all_idle = true;
    for (auto& flag : flags_) all_idle &= flag.is_idle();
    bool all_drained = true;
    for (uint32_t i = 0; i < opts.num_buckets; ++i)
      all_drained &= queue.physical_bucket(i).drained();
    if (!assigned_any && all_idle && all_drained) {
      if (opts.pool_governor && !spill.empty()) {
        replayed += replay_pass(true);
        clean_sweeps = 0;
      } else if (++clean_sweeps >= 2) {
        break;
      }
    } else {
      clean_sweeps = 0;
    }

    // Wedge fail-fast: governance is supposed to keep an overloaded run
    // moving. If writers stay starved (or spilled work cannot re-enter)
    // with zero progress of any kind for kWedgeMs, the pool is too small
    // even for spill mode — throw so the resilient runtime's
    // restart-with-resize (its last resort now) takes over. Never fires on
    // non-pool wedges (lost publications etc.); those belong to the
    // watchdog, as before.
    const bool progressed = assigned_any || harvested > 0 || recycled > 0 ||
                            mapped > 0 || spilled > 0 || replayed > 0 ||
                            advances > 0;
    // Heartbeat for the external supervisor: sweeps always tick, the pulse
    // only on progress — so "sweeping but pulse frozen" is the wedge
    // signature regardless of *why* the queue is stuck (lost publication,
    // stalled worker, dry pool beyond governance).
    if (ctl.beacon != nullptr) {
      ctl.beacon->sweeps.fetch_add(1, std::memory_order_relaxed);
      if (progressed) ctl.beacon->pulse.fetch_add(1, std::memory_order_relaxed);
      ctl.beacon->window_advances.store(r.window_advances,
                                        std::memory_order_relaxed);
      ctl.beacon->assigned_items.store(r.work.assigned_items,
                                       std::memory_order_relaxed);
    }
    if (progressed) {
      last_progress_ms = timer.elapsed_ms();
    } else if (opts.pool_governor && (starved_now || !spill.empty()) &&
               timer.elapsed_ms() - last_progress_ms > kWedgeMs &&
               !queue.aborted() &&
               (ctl.cancel == nullptr ||
                !ctl.cancel->load(std::memory_order_acquire))) {
      throw Error(
          "adds-host: pool exhausted beyond spill governance (pool_blocks=" +
          std::to_string(pool.num_blocks()) +
          ", free=" + std::to_string(pool.free_blocks()) +
          ", spilled_items=" + std::to_string(r.health.spilled_items) +
          "): increase pool_blocks");
    }

    // Sweep pacing. While every worker is busy there is nothing to do
    // until a completion: park on the wake event (worker done() and
    // cancel_event notify it) instead of burning a core re-scanning; the
    // timeout keeps the park bounded. In every other state keep the full
    // tick rate — assignment and harvest latency are unaffected, and the
    // clean-sweep exit stays on the yield path.
    bool all_busy = true;
    for (uint32_t i = 0; i < opts.num_workers; ++i)
      all_busy &= tracks[i].active;
    if (!assigned_any && all_busy) {
      wake.await_for(
          [&]() noexcept {
            if ((ctl.cancel != nullptr &&
                 ctl.cancel->load(std::memory_order_acquire)) ||
                queue.aborted())
              return true;
            for (uint32_t i = 0; i < opts.num_workers; ++i)
              if (tracks[i].active && flags_[i].is_idle()) return true;
            return false;
          },
          std::chrono::microseconds(250));
    } else if (!assigned_any) {
      std::this_thread::yield();
    }
  }

  // Clean termination implies every worker is idle-parked (the clean-sweep
  // condition checked it), so the engine is already quiescent: disarm the
  // guard instead of aborting the queue.
  guard.armed = false;

  r.health.peak_blocks_in_use = pool.peak_blocks_in_use();
  if (pool.free_blocks() < r.health.min_free_blocks)
    r.health.min_free_blocks = pool.free_blocks();
  r.health.spill_peak_items = spill.peak_size();

  for (const auto& ctx : contexts_) r.work.merge(ctx.stats);
  for (const auto& [sw, d] : controller.history())
    r.delta_history.emplace_back(double(sw), d);
  r.wall_ms = timer.elapsed_ms();
  r.time_us = r.wall_ms * 1e3;  // the host engine's time is real time
  br.window_advances = r.window_advances;
  br.wall_ms = r.wall_ms;

  if (!batched) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) r.dist[v] = dist.load(v);
    br.work = r.work;
    br.health = r.health;
    br.lanes[0].result = std::move(r);
    ++queries_;
    return br;
  }

  // --- Batched extraction ---------------------------------------------------
  //
  // Per-lane dist rows copy out directly. The parent tree needs a certify
  // pass first: parent stores are relaxed side-writes racing with fetch_min
  // winners, so a recorded parent can be a predecessor whose relaxation
  // won an intermediate distance that was later improved again. One O(E)
  // sweep per lane checks every recorded parent for tightness
  // (dist[p] + w(p,v) == dist[v]) and collects a tight fallback for every
  // vertex whose record fails; the repair loop swaps those in. Final
  // distances ARE final shortest distances, so every reached non-source
  // vertex has a tight predecessor and the repaired tree is exact.
  std::vector<uint8_t> certified(V);
  std::vector<VertexId> fallback(V);
  for (uint32_t l = 0; l < num_lanes; ++l) {
    LaneOutcome<W>& o = br.lanes[l];
    o.status = lane_status[l];
    o.settle_ms = lane_settle_ms[l];
    SsspResult<W>& res = o.result;
    res.solver = r.solver;
    if (o.status != LaneStatus::kOk) continue;  // detached: no usable state

    const size_t base = size_t(l) * V;
    res.dist.resize(V);
    for (size_t v = 0; v < V; ++v) res.dist[v] = dist.load(base + v);

    // This lane's slice of the shared traversal (batch-wide costs and the
    // scheduling accounting live on br.work).
    uint64_t popped = 0, pushed = 0;
    for (uint32_t w = 0; w < counter_rows; ++w) {
      popped += lane_popped[size_t(w) * num_lanes + l].load(
          std::memory_order_relaxed);
      pushed += lane_pushed[size_t(w) * num_lanes + l].load(
          std::memory_order_relaxed);
    }
    res.work.items_processed = popped;
    res.work.pushes = pushed;
    res.health = r.health;
    res.window_advances = r.window_advances;
    res.wall_ms = r.wall_ms;
    res.time_us = r.time_us;

    std::fill(certified.begin(), certified.end(), uint8_t{0});
    std::fill(fallback.begin(), fallback.end(), kInvalidVertex);
    for (VertexId u = 0; u < VertexId(V); ++u) {
      const Dist du = res.dist[u];
      if (du == DistTraits<W>::infinity()) continue;
      const EdgeIndex ub = g.edge_begin(u), ue = g.edge_end(u);
      for (EdgeIndex e = ub; e < ue; ++e) {
        const VertexId v = g.targets()[e];
        if (du + Dist(g.weights()[e]) != res.dist[v]) continue;
        if (parent[base + v].load(std::memory_order_relaxed) == u)
          certified[v] = 1;
        else if (fallback[v] == kInvalidVertex)
          fallback[v] = u;
      }
    }
    const VertexId src = lanes[l].source;
    res.parent.assign(V, kInvalidVertex);
    uint64_t repairs = 0;
    for (size_t v = 0; v < V; ++v) {
      if (res.dist[v] == DistTraits<W>::infinity()) continue;
      if (VertexId(v) == src) {
        res.parent[v] = src;
        continue;
      }
      if (certified[v]) {
        res.parent[v] = parent[base + v].load(std::memory_order_relaxed);
      } else {
        res.parent[v] = fallback[v];
        ++repairs;
      }
    }
    res.work.parent_repairs = repairs;
    r.work.parent_repairs += repairs;
  }
  br.work = r.work;
  br.health = r.health;
  ++queries_;
  return br;
}

template <WeightType W>
HostEngine<W>::HostEngine(const AddsHostOptions& opts) {
  ADDS_REQUIRE(opts.num_workers >= 1, "need at least one worker");
  ADDS_REQUIRE(opts.num_buckets >= 2, "need at least two buckets");
  impl_ = std::make_unique<Impl>(opts);
}

template <WeightType W>
HostEngine<W>::~HostEngine() = default;

template <WeightType W>
SsspResult<W> HostEngine<W>::solve(const CsrGraph<W>& g, VertexId source,
                                   const QueryControl& ctl) {
  std::vector<LaneQuery> lanes(1);
  lanes[0].source = source;
  BatchResult<W> br = impl_->run(g, lanes, ctl, /*batched=*/false);
  return std::move(br.lanes[0].result);
}

template <WeightType W>
BatchResult<W> HostEngine<W>::solve_batch(const CsrGraph<W>& g,
                                          const std::vector<LaneQuery>& lanes,
                                          const QueryControl& ctl) {
  return impl_->run(g, lanes, ctl, /*batched=*/true);
}

template <WeightType W>
SsspResult<W> HostEngine<W>::solve_repair(const CsrGraph<W>& g,
                                          VertexId source,
                                          const RepairPlan<W>& plan,
                                          const QueryControl& ctl) {
  std::vector<LaneQuery> lanes(1);
  lanes[0].source = source;
  BatchResult<W> br = impl_->run(g, lanes, ctl, /*batched=*/false, &plan);
  return std::move(br.lanes[0].result);
}

template <WeightType W>
void HostEngine<W>::interrupt() noexcept {
  impl_->interrupt();
}

template <WeightType W>
const AddsHostOptions& HostEngine<W>::options() const noexcept {
  return impl_->opts_;
}

template <WeightType W>
uint64_t HostEngine<W>::queries_served() const noexcept {
  return impl_->queries_;
}

template <WeightType W>
uint32_t HostEngine<W>::pool_blocks() const noexcept {
  return impl_->pool_ ? impl_->pool_->num_blocks() : 0;
}

template class HostEngine<uint32_t>;
template class HostEngine<float>;

// ---------------------------------------------------------------------------
// One-shot entry point
// ---------------------------------------------------------------------------

template <WeightType W>
SsspResult<W> adds_host(const CsrGraph<W>& g, VertexId source,
                        const AddsHostOptions& opts) {
  HostEngine<W> engine(opts);
  QueryControl ctl;
  ctl.cancel = opts.cancel;
  ctl.cancel_event = opts.cancel_event;
  return engine.solve(g, source, ctl);
}

template SsspResult<uint32_t> adds_host<uint32_t>(const CsrGraph<uint32_t>&,
                                                  VertexId,
                                                  const AddsHostOptions&);
template SsspResult<float> adds_host<float>(const CsrGraph<float>&, VertexId,
                                            const AddsHostOptions&);

template <WeightType W>
BatchResult<W> adds_host_batch(const CsrGraph<W>& g,
                               const std::vector<VertexId>& sources,
                               const AddsHostOptions& opts) {
  HostEngine<W> engine(opts);
  std::vector<LaneQuery> lanes(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) lanes[i].source = sources[i];
  QueryControl ctl;
  ctl.cancel = opts.cancel;
  ctl.cancel_event = opts.cancel_event;
  return engine.solve_batch(g, lanes, ctl);
}

template BatchResult<uint32_t> adds_host_batch<uint32_t>(
    const CsrGraph<uint32_t>&, const std::vector<VertexId>&,
    const AddsHostOptions&);
template BatchResult<float> adds_host_batch<float>(const CsrGraph<float>&,
                                                   const std::vector<VertexId>&,
                                                   const AddsHostOptions&);

}  // namespace adds
